module sqlledger

go 1.22
