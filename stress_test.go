package sqlledger_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlledger"
	"sqlledger/internal/simchain"
)

// TestStressConcurrentEverything runs writers, a digest uploader, and
// periodic checkpoints concurrently against small blocks, then verifies
// the whole ledger. It exercises the commit path, the in-memory queue,
// asynchronous block closing and the checkpoint drain under contention.
func TestStressConcurrentEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	db := newTestDB(t, 7) // tiny blocks: constant closing
	lt, err := db.CreateLedgerTable("stress", accountsSchema(), sqlledger.Updateable)
	if err != nil {
		t.Fatal(err)
	}
	store := sqlledger.NewMemoryBlobStore()
	uploader := sqlledger.NewDigestUploader(db, store)
	uploader.Start(3 * time.Millisecond)

	const writers = 6
	const perWriter = 150
	var aborted atomic.Int64
	var wg sync.WaitGroup
	stopCkpt := make(chan struct{})
	wg.Add(1)
	go func() { // checkpointer
		defer wg.Done()
		for {
			select {
			case <-stopCkpt:
				return
			case <-time.After(10 * time.Millisecond):
				if err := db.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tx := db.Begin(fmt.Sprintf("writer-%d", w))
				key := fmt.Sprintf("k-%d-%d", w, i)
				if err := tx.Insert(lt, sqlledger.Row{sqlledger.NVarChar(key), sqlledger.BigInt(int64(i))}); err != nil {
					tx.Rollback()
					aborted.Add(1)
					continue
				}
				// Occasionally touch a shared row to create contention.
				if i%10 == 0 {
					shared := sqlledger.Row{sqlledger.NVarChar("shared"), sqlledger.BigInt(int64(w*1000 + i))}
					if _, ok, _ := tx.Get(lt, sqlledger.NVarChar("shared")); ok {
						if err := tx.Update(lt, shared); err != nil {
							tx.Rollback()
							aborted.Add(1)
							continue
						}
					} else if err := tx.Insert(lt, shared); err != nil {
						tx.Rollback()
						aborted.Add(1)
						continue
					}
				}
				if err := tx.Commit(); err != nil {
					aborted.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stopCkpt)
	wg.Wait()
	uploader.Stop()
	for _, err := range uploader.Errs() {
		t.Fatalf("uploader: %v", err)
	}

	rep, err := db.VerifyFromStore(store, sqlledger.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("stress verification failed (aborted=%d):\n%s", aborted.Load(), rep)
	}
	if rep.TransactionsChecked < writers*perWriter/2 {
		t.Fatalf("too few transactions made it: %d", rep.TransactionsChecked)
	}
	t.Logf("stress: %d txs, %d blocks, %d row versions, %d aborts, %d digests uploaded",
		rep.TransactionsChecked, rep.BlocksChecked, rep.RowVersionsChecked, aborted.Load(), uploader.Uploads())
}

// TestAnchorDigestToPublicBlockchain demonstrates §2.4's strictest digest
// management option: anchoring digests in a public blockchain so even the
// storage provider leaves the trust boundary. The digest (signed, for
// authenticity) is submitted as a blockchain transaction; its presence in
// the hash-chained block history is the escrow.
func TestAnchorDigestToPublicBlockchain(t *testing.T) {
	db := newTestDB(t, 100)
	lt, err := db.CreateLedgerTable("t", accountsSchema(), sqlledger.Updateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin("u")
	if err := tx.Insert(lt, sqlledger.Row{sqlledger.NVarChar("a"), sqlledger.BigInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	d, err := db.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}

	// "Public blockchain": the consensus-ledger simulator with fast
	// parameters.
	chain := simchain.New(simchain.Config{
		Nodes: 4, EndorsementLatency: time.Millisecond,
		ConsensusLatency: 2 * time.Millisecond, ValidationPerTx: 100 * time.Microsecond,
		BlockCutSize: 4, BlockCutInterval: 5 * time.Millisecond,
	})
	defer chain.Stop()
	if err := chain.Submit(d.JSON()); err != nil {
		t.Fatal(err)
	}
	blocks := chain.Blocks()
	if len(blocks) == 0 || !chain.VerifyChain() {
		t.Fatal("digest not anchored")
	}
	// The anchored digest still verifies the database.
	rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{})
	if err != nil || !rep.Ok() {
		t.Fatalf("verify: %v\n%s", err, rep)
	}
}
