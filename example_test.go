package sqlledger_test

import (
	"crypto/ed25519"
	"fmt"
	"log"
	"os"

	"sqlledger"
)

// Example shows the smallest useful flow: create a ledger table, write to
// it, export a digest and verify against it.
func Example() {
	dir, _ := os.MkdirTemp("", "sqlledger-example")
	defer os.RemoveAll(dir)

	db, err := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "bank"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	accounts, err := db.CreateLedgerTable("accounts", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("name", sqlledger.TypeNVarChar),
		sqlledger.Col("balance", sqlledger.TypeBigInt),
	}, "name"), sqlledger.Updateable)
	if err != nil {
		log.Fatal(err)
	}

	tx := db.Begin("alice")
	if err := tx.Insert(accounts, sqlledger.Row{sqlledger.NVarChar("nick"), sqlledger.BigInt(100)}); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	digest, err := db.GenerateDigest()
	if err != nil {
		log.Fatal(err)
	}
	report, err := db.Verify([]sqlledger.Digest{digest}, sqlledger.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified:", report.Ok())
	// Output: verified: true
}

// ExampleLedgerTable_LedgerView shows the generated ledger view: every
// row operation with the transaction that performed it.
func ExampleLedgerTable_LedgerView() {
	dir, _ := os.MkdirTemp("", "sqlledger-example")
	defer os.RemoveAll(dir)
	db, _ := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "bank"})
	defer db.Close()

	accounts, _ := db.CreateLedgerTable("accounts", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("name", sqlledger.TypeNVarChar),
		sqlledger.Col("balance", sqlledger.TypeBigInt),
	}, "name"), sqlledger.Updateable)

	tx := db.Begin("teller")
	tx.Insert(accounts, sqlledger.Row{sqlledger.NVarChar("nick"), sqlledger.BigInt(50)})
	tx.Commit()
	tx = db.Begin("teller")
	tx.Update(accounts, sqlledger.Row{sqlledger.NVarChar("nick"), sqlledger.BigInt(100)})
	tx.Commit()

	for _, vr := range accounts.LedgerView() {
		fmt.Printf("%s %s $%d\n", vr.Operation, vr.Row[0].Str, vr.Row[1].Int())
	}
	// Output:
	// INSERT nick $50
	// DELETE nick $50
	// INSERT nick $100
}

// ExampleVerifyReceipt shows offline receipt verification (§5.1): no
// database access is needed, only the signer's public key.
func ExampleVerifyReceipt() {
	dir, _ := os.MkdirTemp("", "sqlledger-example")
	defer os.RemoveAll(dir)
	pub, priv, _ := ed25519.GenerateKey(nil)

	db, _ := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "bank"})
	deposits, _ := db.CreateLedgerTable("deposits", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("amount", sqlledger.TypeBigInt),
	}, "id"), sqlledger.AppendOnly)

	tx := db.Begin("teller")
	tx.Insert(deposits, sqlledger.Row{sqlledger.BigInt(1), sqlledger.BigInt(1_000_000)})
	txID := tx.ID()
	tx.Commit()
	db.GenerateDigest() // close the block

	receipt, _ := db.GenerateReceipt(txID, priv)
	db.Close() // the ledger can even be destroyed now

	fmt.Println("receipt valid:", sqlledger.VerifyReceipt(receipt, pub) == nil)
	// Output: receipt valid: true
}

// ExampleNewSQLSession shows the SQL surface: ledger DDL, DML, querying
// the generated ledger view, and ledger statements.
func ExampleNewSQLSession() {
	dir, _ := os.MkdirTemp("", "sqlledger-example")
	defer os.RemoveAll(dir)
	db, _ := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "bank"})
	defer db.Close()

	s := sqlledger.NewSQLSession(db, "app")
	defer s.Close()
	script := `
		CREATE TABLE accounts (name NVARCHAR NOT NULL, balance BIGINT NOT NULL,
			PRIMARY KEY (name)) WITH (LEDGER = ON);
		INSERT INTO accounts VALUES ('nick', 100), ('john', 500);
		UPDATE accounts SET balance = 50 WHERE name = 'nick';
	`
	if _, err := s.ExecScript(script); err != nil {
		log.Fatal(err)
	}
	res, err := s.Exec(`SELECT name, balance, operation FROM accounts_ledger`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s %s %s\n", row[2].Str, row[0].Str, row[1].String())
	}
	// Output:
	// INSERT nick 100
	// INSERT john 500
	// DELETE nick 100
	// INSERT nick 50
}

// ExampleSignDigest shows §2.4's digest authenticity signing for sharing
// digests with partners and auditors.
func ExampleSignDigest() {
	dir, _ := os.MkdirTemp("", "sqlledger-example")
	defer os.RemoveAll(dir)
	pub, priv, _ := ed25519.GenerateKey(nil)

	db, _ := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "bank"})
	defer db.Close()
	t, _ := db.CreateLedgerTable("t", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("k", sqlledger.TypeBigInt),
	}, "k"), sqlledger.AppendOnly)
	tx := db.Begin("u")
	tx.Insert(t, sqlledger.Row{sqlledger.BigInt(1)})
	tx.Commit()

	digest, _ := db.GenerateDigest()
	signed := sqlledger.SignDigest(digest, priv)
	// ...the signed JSON travels to an auditor...
	received, _ := sqlledger.ParseSignedDigest(signed.JSON())
	fmt.Println("authentic:", sqlledger.VerifySignedDigest(received, pub) == nil)
	// Output: authentic: true
}
