// Shard-scaling benchmark and gate for the sharded ledger: N engine
// instances, each with its own WAL, group committer, and block chain,
// relieve the single-engine serialization of the apply path, while the
// super-block keeps one signed root over all of them (see DESIGN.md
// decision 12).
package sqlledger_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sqlledger"
	"sqlledger/internal/workload"
)

// shardIngestClients is the fixed client pool driving every shard count,
// so measured speedups come from shard parallelism, not extra drivers.
const shardIngestClients = 4

// openShardedIngestDB opens a sharded ledger database on a logical
// clock, so serial runs that ingest the same rows produce byte-identical
// super-roots regardless of timing.
func openShardedIngestDB(tb testing.TB, dir string, shards int) *sqlledger.ShardedDB {
	tb.Helper()
	var tick atomic.Int64
	tick.Store(1_700_000_000_000_000_000)
	db, err := sqlledger.OpenSharded(sqlledger.Options{
		Dir: dir, Name: "ingest", Shards: shards,
		BlockSize:   sqlledger.DefaultBlockSize,
		LockTimeout: 5 * time.Second,
		Clock:       func() int64 { return tick.Add(1) },
	})
	if err != nil {
		tb.Fatal(err)
	}
	return db
}

// runShardedIngest loads n rows (serial when clients == 0, shard-pure
// parallel otherwise), closes a super-block, and returns the elapsed
// load time plus the signed super-root.
func runShardedIngest(tb testing.TB, dir string, shards, clients, n int) (time.Duration, string) {
	tb.Helper()
	db := openShardedIngestDB(tb, dir, shards)
	defer db.Close()
	loader, err := workload.NewShardedLoader(db, "t")
	if err != nil {
		tb.Fatal(err)
	}
	start := time.Now()
	if clients == 0 {
		err = loader.LoadSerial(n, ingestBatchRows)
	} else {
		err = loader.LoadParallel(n, ingestBatchRows, clients)
	}
	if err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(start)
	sb, err := db.CloseSuperBlock()
	if err != nil {
		tb.Fatal(err)
	}
	return elapsed, sb.Root
}

// BenchmarkIngestSharded measures bulk-load throughput at 1/2/4 shards
// under the same 4-client pool of shard-pure 1000-row transactions. One
// op is one clients×1000-row wave; the custom metric reports rows/s.
// On a multicore box rows/s should improve monotonically with shards:
// each shard is an independent engine, so waves that serialize on one
// engine's apply path and commit sequence spread across N of them.
func BenchmarkIngestSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			db := openShardedIngestDB(b, b.TempDir(), shards)
			defer db.Close()
			loader, err := workload.NewShardedLoader(db, "t")
			if err != nil {
				b.Fatal(err)
			}
			const wave = shardIngestClients * ingestBatchRows
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := loader.LoadParallelRange(i*wave, (i+1)*wave, ingestBatchRows, shardIngestClients); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*wave/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// TestShardIngestScaling gates the sharded ingest path. The
// digest-equality half runs everywhere: a 1-shard database must land on
// the byte-identical digest as the plain single-instance stack, two
// identical serial runs at 2 shards must land on the identical
// super-root, and every shard count must verify green against its
// super-block. The throughput half — parallel ingest must not get slower
// as shards grow 1→2→4 under a fixed client pool — needs real hardware
// parallelism, so it is skipped below 4 CPUs and under the race
// detector.
func TestShardIngestScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	const rows = 20_000
	base := t.TempDir()

	// Shards=1 is byte-compatible with the single-instance stack: same
	// rows, same clock, same digest.
	_, plainHash := runIngest(t, filepath.Join(base, "plain"), 1, rows)
	oneDB := openShardedIngestDB(t, filepath.Join(base, "one"), 1)
	oneLoader, err := workload.NewShardedLoader(oneDB, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := oneLoader.LoadSerial(rows, ingestBatchRows); err != nil {
		t.Fatal(err)
	}
	d, err := oneDB.Shard(0).GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d.Hash != plainHash {
		t.Fatalf("1-shard digest %s != single-instance digest %s", d.Hash, plainHash)
	}
	oneDB.Close()

	// Identical serial histories at 2 shards reach the identical signed
	// super-root, even though every batch commits through 2PC.
	_, rootA := runShardedIngest(t, filepath.Join(base, "two-a"), 2, 0, rows)
	_, rootB := runShardedIngest(t, filepath.Join(base, "two-b"), 2, 0, rows)
	if rootA != rootB {
		t.Fatalf("identical 2-shard runs diverged: %s vs %s", rootA, rootB)
	}

	// Every shard count verifies green against its own super-block.
	for _, shards := range []int{1, 2, 4} {
		dir := filepath.Join(base, fmt.Sprintf("verify-%d", shards))
		db := openShardedIngestDB(t, dir, shards)
		loader, err := workload.NewShardedLoader(db, "t")
		if err != nil {
			t.Fatal(err)
		}
		if err := loader.LoadParallel(rows, ingestBatchRows, shardIngestClients); err != nil {
			t.Fatal(err)
		}
		sb, err := db.CloseSuperBlock()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sqlledger.VerifySuperBlock(db, sb, db.PublicKey(), sqlledger.VerifyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("shards=%d verification failed:\n%s", shards, rep.String())
		}
		db.Close()
	}

	if raceEnabled {
		t.Skip("throughput gate skipped under -race")
	}
	if ncpu := runtime.GOMAXPROCS(0); ncpu < 4 {
		t.Skipf("throughput gate needs >=4 CPUs, have %d", ncpu)
	}
	// Best of three trials per shard count to damp scheduler noise.
	best := map[int]time.Duration{}
	for _, shards := range []int{1, 2, 4} {
		for trial := 0; trial < 3; trial++ {
			dir := filepath.Join(base, fmt.Sprintf("perf-%d-%d", shards, trial))
			dur, _ := runShardedIngest(t, dir, shards, shardIngestClients, rows)
			if cur, ok := best[shards]; !ok || dur < cur {
				best[shards] = dur
			}
		}
		t.Logf("shards=%d: %v best-of-3 (%d rows, %d clients)", shards, best[shards], rows, shardIngestClients)
	}
	if best[2] > best[1] || best[4] > best[2] {
		t.Fatalf("ingest did not scale monotonically: 1 shard %v, 2 shards %v, 4 shards %v",
			best[1], best[2], best[4])
	}
}
