package sqlledger_test

import (
	"testing"
	"time"

	"sqlledger"
)

// TestFacadeValueConstructors pins the facade's re-exported constructors
// against the types they must build — the public API surface examples and
// applications write against.
func TestFacadeValueConstructors(t *testing.T) {
	cases := []struct {
		v    sqlledger.Value
		typ  sqlledger.TypeID
		null bool
	}{
		{sqlledger.Bit(true), sqlledger.TypeBit, false},
		{sqlledger.TinyInt(7), sqlledger.TypeTinyInt, false},
		{sqlledger.SmallInt(-3), sqlledger.TypeSmallInt, false},
		{sqlledger.Int(42), sqlledger.TypeInt, false},
		{sqlledger.BigInt(1 << 40), sqlledger.TypeBigInt, false},
		{sqlledger.Float(2.5), sqlledger.TypeFloat, false},
		{sqlledger.Decimal(12345), sqlledger.TypeDecimal, false},
		{sqlledger.Char("c"), sqlledger.TypeChar, false},
		{sqlledger.VarChar("v"), sqlledger.TypeVarChar, false},
		{sqlledger.NVarChar("n"), sqlledger.TypeNVarChar, false},
		{sqlledger.Binary([]byte{1}), sqlledger.TypeBinary, false},
		{sqlledger.VarBinary([]byte{2}), sqlledger.TypeVarBinary, false},
		{sqlledger.DateTime(time.Now()), sqlledger.TypeDateTime, false},
		{sqlledger.Null(sqlledger.TypeInt), sqlledger.TypeInt, true},
	}
	for i, c := range cases {
		if c.v.Type != c.typ || c.v.Null != c.null {
			t.Errorf("case %d: got (%v,%v), want (%v,%v)", i, c.v.Type, c.v.Null, c.typ, c.null)
		}
	}
}

func TestFacadeSchemaHelpers(t *testing.T) {
	s, err := sqlledger.NewSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.NullableCol("opt", sqlledger.TypeInt),
		sqlledger.VarCol("name", sqlledger.TypeVarChar, 40),
		sqlledger.DecimalCol("price", 10, 2),
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Columns) != 4 || len(s.Key) != 1 {
		t.Fatalf("schema = %+v", s)
	}
	if s.Columns[2].Len != 40 || s.Columns[3].Prec != 10 || s.Columns[3].Scale != 2 {
		t.Fatalf("column attrs lost: %+v", s.Columns)
	}
	if !s.Columns[1].Nullable {
		t.Fatal("NullableCol not nullable")
	}
	if _, err := sqlledger.NewSchema([]sqlledger.Column{sqlledger.Col("a", sqlledger.TypeInt)}, "missing"); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestFacadeBlobStores(t *testing.T) {
	mem := sqlledger.NewMemoryBlobStore()
	if err := mem.Put("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	dirStore, err := sqlledger.NewDirBlobStore(t.TempDir() + "/blobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := dirStore.Put("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := dirStore.Put("x", []byte("2")); err == nil {
		t.Fatal("dir store not immutable")
	}
}

func TestFacadeSchemaChangesAndTruncation(t *testing.T) {
	// Exercise schema-change and truncation methods through the facade.
	db := newTestDB(t, 2)
	lt, err := db.CreateLedgerTable("t", accountsSchema(), sqlledger.Updateable)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tx := db.Begin("u")
		if err := tx.Insert(lt, sqlledger.Row{
			sqlledger.NVarChar(string(rune('a' + i))), sqlledger.BigInt(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddColumn(lt, sqlledger.NullableCol("tag", sqlledger.TypeNVarChar)); err != nil {
		t.Fatal(err)
	}
	if err := db.DropColumn(lt, "tag"); err != nil {
		t.Fatal(err)
	}
	d, err := db.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.TruncateLedger(d.BlockID / 2); err != nil {
		t.Fatal(err)
	}
	rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("facade lifecycle verify:\n%s", rep)
	}
	ops := db.TableOperations()
	if len(ops) == 0 {
		t.Fatal("no table operations recorded")
	}
	if _, ok := db.ViewDefinition(lt.ID()); !ok {
		t.Fatal("view definition missing")
	}
}

func TestFacadeLedgerViewAndInfo(t *testing.T) {
	db := newTestDB(t, 100)
	lt, err := db.CreateLedgerTable("t", accountsSchema(), sqlledger.Updateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin("writer")
	if err := tx.Insert(lt, sqlledger.Row{sqlledger.NVarChar("k"), sqlledger.BigInt(9)}); err != nil {
		t.Fatal(err)
	}
	id := tx.ID()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	view := lt.LedgerView()
	if len(view) != 1 || view[0].Operation != "INSERT" || view[0].TxID != id {
		t.Fatalf("view = %+v", view)
	}
	user, ts, block, ok := db.TransactionInfo(id)
	if !ok || user != "writer" || ts == 0 {
		t.Fatalf("TransactionInfo = %q,%d,%d,%v", user, ts, block, ok)
	}
	if _, _, _, ok := db.TransactionInfo(99999); ok {
		t.Fatal("unknown tx found")
	}
}
