// Receipts: non-repudiation with transaction receipts (§5.1).
//
// A customer makes a large deposit and receives a signed receipt: the
// transaction entry, a Merkle proof that it is part of its block, and the
// bank's signature over the block root (one signature covers every
// transaction in the block). Later the bank "loses" its ledger — yet the
// customer can still prove, offline, that the deposit happened.
//
// Run with: go run ./examples/receipts
package main

import (
	"crypto/ed25519"
	"fmt"
	"log"
	"os"

	"sqlledger"
)

func main() {
	dir, err := os.MkdirTemp("", "sqlledger-receipts")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The bank publishes its receipt-signing public key.
	bankPub, bankPriv, err := ed25519.GenerateKey(nil)
	if err != nil {
		log.Fatal(err)
	}

	db, err := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "bank"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	deposits, err := db.CreateLedgerTable("deposits", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("customer", sqlledger.TypeNVarChar),
		sqlledger.Col("amount", sqlledger.TypeBigInt),
	}, "id"), sqlledger.AppendOnly)
	if err != nil {
		log.Fatal(err)
	}

	// The big deposit, among ordinary traffic.
	tx := db.Begin("teller")
	if err := tx.Insert(deposits, sqlledger.Row{
		sqlledger.BigInt(1), sqlledger.NVarChar("carol"), sqlledger.BigInt(1_000_000),
	}); err != nil {
		log.Fatal(err)
	}
	depositTx := tx.ID()
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	for i := int64(2); i <= 10; i++ {
		tx := db.Begin("teller")
		if err := tx.Insert(deposits, sqlledger.Row{
			sqlledger.BigInt(i), sqlledger.NVarChar("other"), sqlledger.BigInt(100),
		}); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	// Close the block so receipts can be issued.
	if _, err := db.GenerateDigest(); err != nil {
		log.Fatal(err)
	}

	// Carol asks for her receipt.
	receipt, err := db.GenerateReceipt(depositTx, bankPriv)
	if err != nil {
		log.Fatal(err)
	}
	receiptJSON := receipt.JSON()
	fmt.Printf("carol's receipt: tx %d in block %d, %d proof hashes, %d bytes of JSON\n",
		receipt.Entry.TxID, receipt.BlockID, len(receipt.Proof.Siblings), len(receiptJSON))

	// Disaster: the bank's ledger is destroyed.
	db.Close()
	os.RemoveAll(dir)
	fmt.Println("...the bank's ledger is destroyed...")

	// Carol proves the deposit with nothing but the receipt and the
	// bank's public key.
	parsed, err := sqlledger.ParseReceipt(receiptJSON)
	if err != nil {
		log.Fatal(err)
	}
	if err := sqlledger.VerifyReceipt(parsed, bankPub); err != nil {
		log.Fatalf("receipt rejected: %v", err)
	}
	fmt.Printf("receipt verifies offline: %s deposited by tx %d, principal %q — the bank cannot repudiate it\n",
		"$1,000,000", parsed.Entry.TxID, parsed.Entry.User)

	// A forged receipt (claiming ten times the amount via a different
	// table root) does not verify.
	forged := parsed
	forged.Entry.User = "mallory"
	if err := sqlledger.VerifyReceipt(forged, bankPub); err != nil {
		fmt.Println("forged receipt rejected:", err)
	}
}
