// Quickstart: the smallest end-to-end SQL Ledger flow.
//
//  1. Create a ledger table and run ordinary DML on it.
//  2. Extract a database digest (store it somewhere the DBA can't touch).
//  3. Verify — everything checks out.
//  4. An "attacker" edits the data directly in storage.
//  5. Verify again — the tampering is detected and localized.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"sqlledger"
)

func main() {
	dir, err := os.MkdirTemp("", "sqlledger-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// 1. A ledger table behaves like a normal table for applications.
	schema := sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("name", sqlledger.TypeNVarChar),
		sqlledger.Col("balance", sqlledger.TypeBigInt),
	}, "name")
	accounts, err := db.CreateLedgerTable("accounts", schema, sqlledger.Updateable)
	if err != nil {
		log.Fatal(err)
	}

	tx := db.Begin("alice")
	must(tx.Insert(accounts, row("nick", 100)))
	must(tx.Insert(accounts, row("john", 500)))
	must(tx.Commit())

	tx = db.Begin("bob")
	must(tx.Update(accounts, row("nick", 50)))
	must(tx.Commit())

	// 2. A digest captures the state of every ledger table in ~100 bytes.
	digest, err := db.GenerateDigest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digest for block %d: %s...\n", digest.BlockID, digest.Hash[:16])

	// 3. Verification recomputes every hash from current data.
	report, err := db.Verify([]sqlledger.Digest{digest}, sqlledger.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before tampering:", summary(report))

	// 4. The attack: a privileged user rewrites nick's balance directly
	// in storage, bypassing the database APIs entirely.
	var key []byte
	accounts.Table().Scan(func(k []byte, r sqlledger.Row) bool {
		if r[0].Str == "nick" {
			key = append([]byte(nil), k...)
			return false
		}
		return true
	})
	err = db.Engine().TamperUpdateRow(accounts.Table(), key, func(r sqlledger.Row) sqlledger.Row {
		r[1] = sqlledger.BigInt(1_000_000)
		return r
	}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attacker set nick's balance to 1,000,000 directly in storage")

	// 5. The digest proves it.
	report, err = db.Verify([]sqlledger.Digest{digest}, sqlledger.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after tampering: ", summary(report))
	for _, issue := range report.Issues {
		fmt.Println("  ", issue)
	}
}

func row(name string, balance int64) sqlledger.Row {
	return sqlledger.Row{sqlledger.NVarChar(name), sqlledger.BigInt(balance)}
}

func summary(r *sqlledger.Report) string {
	if r.Ok() {
		return fmt.Sprintf("OK (%d row versions verified)", r.RowVersionsChecked)
	}
	return fmt.Sprintf("TAMPERING DETECTED (%d issues)", len(r.Issues))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
