// Banking: the paper's Figure 2 scenario as a running program.
//
// An account-balances ledger table receives inserts, an update and a
// delete; the program then prints the ledger table, the history table and
// the ledger view exactly like Figure 2, shows who performed each
// operation, and demonstrates digest management against (simulated)
// immutable blob storage with a periodic uploader.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"sqlledger"
)

func main() {
	dir, err := os.MkdirTemp("", "sqlledger-banking")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "bank"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("name", sqlledger.TypeNVarChar),
		sqlledger.Col("balance", sqlledger.TypeBigInt),
	}, "name")
	accounts, err := db.CreateLedgerTable("accounts", schema, sqlledger.Updateable)
	if err != nil {
		log.Fatal(err)
	}

	// Digests stream to immutable storage every 50ms while we work —
	// the automation §2.4 describes (every few seconds in production).
	store := sqlledger.NewMemoryBlobStore()
	uploader := sqlledger.NewDigestUploader(db, store)
	uploader.Start(50 * time.Millisecond)

	// The Figure 2 sequence of operations, each by a different teller.
	step(db, accounts, "teller-1", "insert", "Nick", 50)
	step(db, accounts, "teller-2", "insert", "John", 500)
	step(db, accounts, "teller-1", "insert", "Joe", 30)
	step(db, accounts, "teller-3", "insert", "Mary", 200)
	step(db, accounts, "teller-2", "update", "Nick", 100)
	step(db, accounts, "teller-3", "delete", "Joe", 0)

	fmt.Println("\n-- Ledger table (latest data) --")
	fmt.Printf("%-8s %s\n", "Name", "Balance")
	tx := db.Begin("reader")
	tx.Scan(accounts, func(r sqlledger.Row) bool {
		fmt.Printf("%-8s $%d\n", r[0].Str, r[1].Int())
		return true
	})
	tx.Rollback()

	fmt.Println("\n-- History table (earlier versions) --")
	fmt.Printf("%-8s %s\n", "Name", "Balance")
	accounts.History().Scan(func(_ []byte, r sqlledger.Row) bool {
		fmt.Printf("%-8s $%d\n", r[0].Str, r[1].Int())
		return true
	})

	fmt.Println("\n-- Ledger view (all row operations, like Figure 2) --")
	fmt.Printf("%-8s %-8s %-10s %-14s %s\n", "Name", "Balance", "Operation", "Transaction", "Principal")
	for _, vr := range accounts.LedgerView() {
		who, _, _, _ := db.TransactionInfo(vr.TxID)
		fmt.Printf("%-8s $%-7d %-10s %-14d %s\n",
			vr.Row[0].Str, vr.Row[1].Int(), vr.Operation, vr.TxID, who)
	}

	// Give the periodic loop a beat, then flush a final digest so the
	// store definitely covers everything above.
	time.Sleep(120 * time.Millisecond)
	uploader.Stop()
	if _, err := uploader.UploadOnce(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d digests uploaded to immutable storage while we worked\n", uploader.Uploads())

	// Month-end audit: verify against everything in the immutable store.
	report, err := db.VerifyFromStore(store, sqlledger.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("audit:", report)
}

func step(db *sqlledger.DB, lt *sqlledger.LedgerTable, who, op, name string, balance int64) {
	tx := db.Begin(who)
	var err error
	switch op {
	case "insert":
		err = tx.Insert(lt, sqlledger.Row{sqlledger.NVarChar(name), sqlledger.BigInt(balance)})
	case "update":
		err = tx.Update(lt, sqlledger.Row{sqlledger.NVarChar(name), sqlledger.BigInt(balance)})
	case "delete":
		err = tx.Delete(lt, sqlledger.NVarChar(name))
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s %s\n", who, op, name)
}
