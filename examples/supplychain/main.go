// Supplychain: the paper's §2.5.1 forward-integrity story, played out.
//
// Contoso, a car manufacturer, tracks parts in a ledger database. Years
// later a lawsuit alleges defective brake parts went into Bob's car. An
// insider tries to "fix" the records before the audit; the digests Contoso
// had been exporting all along prove the alteration — while the untampered
// records verify cleanly, giving the court cryptographic evidence either
// way. This is forward integrity: the data was trusted when written, and
// protected from that moment on.
//
// Run with: go run ./examples/supplychain
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"sqlledger"
)

func main() {
	dir, err := os.MkdirTemp("", "sqlledger-supplychain")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := sqlledger.Open(sqlledger.Options{Dir: dir, Name: "contoso-parts"})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Parts lifecycle: an updateable ledger table keyed by serial number.
	parts, err := db.CreateLedgerTable("parts", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("serial", sqlledger.TypeNVarChar),
		sqlledger.Col("kind", sqlledger.TypeNVarChar),
		sqlledger.Col("batch", sqlledger.TypeNVarChar),
		sqlledger.Col("installed_in", sqlledger.TypeNVarChar),
		sqlledger.Col("status", sqlledger.TypeNVarChar),
	}, "serial"), sqlledger.Updateable)
	if err != nil {
		log.Fatal(err)
	}
	// Inspections are append-only: an audit trail that even the
	// application cannot rewrite.
	inspections, err := db.CreateLedgerTable("inspections", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("serial", sqlledger.TypeNVarChar),
		sqlledger.Col("result", sqlledger.TypeNVarChar),
		sqlledger.Col("at", sqlledger.TypeDateTime),
	}, "id"), sqlledger.AppendOnly)
	if err != nil {
		log.Fatal(err)
	}

	// 2018: manufacturing. Bob's car gets brakes from the GOOD batch.
	mfg := db.Begin("assembly-line")
	for i, spec := range []struct{ serial, batch, car string }{
		{"BRK-1001", "BATCH-GOOD-07", "VIN-BOB"},
		{"BRK-1002", "BATCH-BAD-13", "VIN-BOB"}, // the part the lawsuit is about
		{"BRK-2001", "BATCH-BAD-13", "VIN-OTHER-1"},
		{"BRK-2002", "BATCH-BAD-13", "VIN-OTHER-2"},
	} {
		must(mfg.Insert(parts, sqlledger.Row{
			sqlledger.NVarChar(spec.serial), sqlledger.NVarChar("brake"),
			sqlledger.NVarChar(spec.batch), sqlledger.NVarChar(spec.car),
			sqlledger.NVarChar("installed"),
		}))
		must(mfg.Insert(inspections, sqlledger.Row{
			sqlledger.BigInt(int64(i + 1)), sqlledger.NVarChar(spec.serial),
			sqlledger.NVarChar("pass"), sqlledger.DateTime(time.Now()),
		}))
	}
	must(mfg.Commit())

	// Digests go to immutable storage continuously; one is also handed to
	// the regulator (outside Microsoft's — here, Contoso's — trust
	// boundary, as §2.4 suggests).
	store := sqlledger.NewMemoryBlobStore()
	digest2018, err := db.UploadDigest(store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2018: parts recorded; digest for block %d escrowed with the regulator\n", digest2018.BlockID)

	// 2019: the recall marks the bad batch.
	recall := db.Begin("recall-team")
	for _, serial := range []string{"BRK-1002", "BRK-2001", "BRK-2002"} {
		r, ok, err := recall.Get(parts, sqlledger.NVarChar(serial))
		if err != nil || !ok {
			log.Fatal(err)
		}
		r[4] = sqlledger.NVarChar("recalled")
		must(recall.Update(parts, r))
	}
	must(recall.Commit())
	if _, err := db.UploadDigest(store); err != nil {
		log.Fatal(err)
	}
	fmt.Println("2019: BATCH-BAD-13 recalled; digest uploaded")

	// 2020: the lawsuit. First, show what an honest audit looks like.
	report, err := db.VerifyFromStore(store, sqlledger.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2020 audit (honest records):", oneLine(report))
	fmt.Println("  court sees: Bob's car's BRK-1002 came from", batchOf(db, parts, "BRK-1002"),
		"(the recalled batch) — verified, reliable evidence.")

	// Liability established, an insider now rewrites history: relabel
	// Bob's bad part as coming from the good batch. They edit the storage
	// directly — no API, no log entry.
	var key []byte
	parts.Table().Scan(func(k []byte, r sqlledger.Row) bool {
		if r[0].Str == "BRK-1002" {
			key = append([]byte(nil), k...)
			return false
		}
		return true
	})
	err = db.Engine().TamperUpdateRow(parts.Table(), key, func(r sqlledger.Row) sqlledger.Row {
		r[2] = sqlledger.NVarChar("BATCH-GOOD-07") // forge the batch
		r[4] = sqlledger.NVarChar("installed")     // and erase the recall mark
		return r
	}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninsider relabels BRK-1002 as BATCH-GOOD-07 directly in storage...")

	report, err = db.VerifyFromStore(store, sqlledger.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2020 audit (tampered records):", oneLine(report))
	for _, issue := range report.Issues {
		fmt.Println("  ", issue)
	}
	fmt.Println("  the escrowed digests expose the alteration: the forgery is thrown out.")
}

func batchOf(db *sqlledger.DB, parts *sqlledger.LedgerTable, serial string) string {
	tx := db.Begin("court")
	defer tx.Rollback()
	r, ok, err := tx.Get(parts, sqlledger.NVarChar(serial))
	if err != nil || !ok {
		log.Fatal(err)
	}
	return r[2].Str
}

func oneLine(r *sqlledger.Report) string {
	if r.Ok() {
		return "VERIFIED"
	}
	return fmt.Sprintf("TAMPERING DETECTED (%d issues)", len(r.Issues))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
