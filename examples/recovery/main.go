// Recovery: repairing a tampered database from a verified backup (§3.7).
//
// A production ledger database is backed up; later an attacker with
// storage access modifies a row, injects another and destroys a piece of
// history. Verification pinpoints the damage; the repair procedure
// restores the production database from the backup, and the ORIGINAL
// digests verify again — possible because the ledger chain itself was
// never forked (the paper's "first category" of tampering).
//
// Run with: go run ./examples/recovery
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"sqlledger"
)

func main() {
	base, err := os.MkdirTemp("", "sqlledger-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	prodDir := filepath.Join(base, "prod")

	db, err := sqlledger.Open(sqlledger.Options{Dir: prodDir, Name: "prod"})
	if err != nil {
		log.Fatal(err)
	}
	grants, err := db.CreateLedgerTable("grants", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("grantee", sqlledger.TypeNVarChar),
		sqlledger.Col("amount", sqlledger.TypeBigInt),
	}, "grantee"), sqlledger.Updateable)
	if err != nil {
		log.Fatal(err)
	}
	for i, g := range []struct {
		name   string
		amount int64
	}{{"asha", 9000}, {"bruno", 5000}, {"chen", 12000}} {
		tx := db.Begin(fmt.Sprintf("officer-%d", i))
		must(tx.Insert(grants, sqlledger.Row{sqlledger.NVarChar(g.name), sqlledger.BigInt(g.amount)}))
		must(tx.Commit())
	}
	digest, err := db.GenerateDigest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("grants recorded; digest exported")

	// Nightly backup: checkpoint, then copy the directory.
	must(db.Checkpoint())
	backupDir := filepath.Join(base, "backup")
	must(copyTree(prodDir, backupDir))
	fmt.Println("backup taken")

	// The attack.
	var ashaKey []byte
	grants.Table().Scan(func(k []byte, r sqlledger.Row) bool {
		if r[0].Str == "asha" {
			ashaKey = append([]byte(nil), k...)
			return false
		}
		return true
	})
	must(db.Engine().TamperUpdateRow(grants.Table(), ashaKey, func(r sqlledger.Row) sqlledger.Row {
		r[1] = sqlledger.BigInt(90_000) // one extra zero
		return r
	}, true))
	_, err = db.Engine().TamperInsertRow(grants.Table(), sqlledger.Row{
		sqlledger.NVarChar("mallory"), sqlledger.BigInt(50_000),
		sqlledger.BigInt(999999), sqlledger.BigInt(1),
		sqlledger.Null(sqlledger.TypeBigInt), sqlledger.Null(sqlledger.TypeBigInt),
	}, true)
	must(err)
	fmt.Println("\nattacker inflates asha's grant and injects one for mallory...")

	report, err := db.Verify([]sqlledger.Digest{digest}, sqlledger.VerifyOptions{})
	must(err)
	fmt.Printf("verification: %d issues found\n", len(report.Issues))
	for _, issue := range report.Issues {
		fmt.Println("  ", issue)
	}

	// The repair: open the backup, verify it, reconcile production.
	backup, err := sqlledger.Open(sqlledger.Options{Dir: backupDir, Name: "prod"})
	must(err)
	defer backup.Close()

	repair, err := sqlledger.RepairFromBackup(db, backup, []sqlledger.Digest{digest}, false)
	must(err)
	fmt.Println("\n" + repair.String())

	report, err = db.Verify([]sqlledger.Digest{digest}, sqlledger.VerifyOptions{})
	must(err)
	if report.Ok() {
		fmt.Println("\nafter repair: the ORIGINAL digest verifies again — the chain was never forked")
	} else {
		fmt.Println("\nrepair incomplete:\n" + report.String())
	}
	db.Close()
}

func copyTree(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			in.Close()
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			in.Close()
			out.Close()
			return err
		}
		in.Close()
		out.Close()
	}
	return nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
