package sqlledger_test

import (
	"crypto/ed25519"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"sqlledger"
)

// TestFullLifecycle drives the public API through a complete deployment
// story: schema DDL, mixed DML, digest streaming to immutable storage,
// receipts, checkpointing, a crash-restart, point-in-time restore, and
// audits at every stage.
func TestFullLifecycle(t *testing.T) {
	baseDir := t.TempDir()
	srcDir := filepath.Join(baseDir, "db")
	store := sqlledger.NewMemoryBlobStore()
	pub, priv, _ := ed25519.GenerateKey(nil)

	db, err := sqlledger.Open(sqlledger.Options{Dir: srcDir, Name: "lifecycle", BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}

	orders, err := db.CreateLedgerTable("orders", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("customer", sqlledger.TypeNVarChar),
		sqlledger.NullableCol("total", sqlledger.TypeBigInt),
		sqlledger.Col("status", sqlledger.TypeNVarChar),
	}, "id"), sqlledger.Updateable)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := db.CreateLedgerTable("audit_log", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("seq", sqlledger.TypeBigInt),
		sqlledger.Col("event", sqlledger.TypeNVarChar),
	}, "seq"), sqlledger.AppendOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Engine().CreateIndex("orders", "ix_orders_customer", "customer"); err != nil {
		t.Fatal(err)
	}

	// Phase 1: business as usual.
	var receiptTx uint64
	for i := int64(1); i <= 20; i++ {
		tx := db.Begin(fmt.Sprintf("clerk-%d", i%3))
		if err := tx.Insert(orders, sqlledger.Row{
			sqlledger.BigInt(i), sqlledger.NVarChar(fmt.Sprintf("cust-%d", i%7)),
			sqlledger.BigInt(i * 100), sqlledger.NVarChar("open"),
		}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert(audit, sqlledger.Row{
			sqlledger.BigInt(i), sqlledger.NVarChar("order placed"),
		}); err != nil {
			t.Fatal(err)
		}
		if i == 13 {
			receiptTx = tx.ID()
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Some updates and deletes.
	for i := int64(1); i <= 10; i++ {
		tx := db.Begin("fulfillment")
		r, ok, err := tx.Get(orders, sqlledger.BigInt(i))
		if err != nil || !ok {
			t.Fatal(err)
		}
		r[3] = sqlledger.NVarChar("shipped")
		if err := tx.Update(orders, r); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx := db.Begin("admin")
	if err := tx.Delete(orders, sqlledger.BigInt(20)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Digest + receipt.
	if _, err := db.UploadDigest(store); err != nil {
		t.Fatal(err)
	}
	receipt, err := db.GenerateReceipt(receiptTx, priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := sqlledger.VerifyReceipt(receipt, pub); err != nil {
		t.Fatal(err)
	}

	// Schema evolution mid-life.
	if err := db.AddColumn(orders, sqlledger.NullableCol("note", sqlledger.TypeNVarChar)); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin("clerk-1")
	if err := tx.Insert(orders, sqlledger.Row{
		sqlledger.BigInt(21), sqlledger.NVarChar("cust-1"),
		sqlledger.BigInt(50), sqlledger.NVarChar("open"), sqlledger.NVarChar("rush"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.UploadDigest(store); err != nil {
		t.Fatal(err)
	}

	// Checkpoint, then crash-restart (close without further checkpoints).
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cutoff := db.Engine().LastCommitTS()
	tx = db.Begin("clerk-2")
	if err := tx.Insert(orders, sqlledger.Row{
		sqlledger.BigInt(22), sqlledger.NVarChar("cust-2"),
		sqlledger.BigInt(60), sqlledger.NVarChar("open"), sqlledger.Null(sqlledger.TypeNVarChar),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db, err = sqlledger.Open(sqlledger.Options{Dir: srcDir, Name: "lifecycle", BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.VerifyFromStore(store, sqlledger.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("post-restart audit failed:\n%s", rep)
	}
	orders, err = db.LedgerTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	if orders.Table().RowCount() != 21 { // 20 inserted + 1 post-ckpt + 1 new - 1 deleted
		t.Fatalf("orders rows after restart = %d", orders.Table().RowCount())
	}
	db.Close()

	// Point-in-time restore to before order 22 existed.
	restoreDir := filepath.Join(baseDir, "restored")
	if err := sqlledger.RestoreToTime(srcDir, restoreDir, cutoff); err != nil {
		t.Fatal(err)
	}
	rdb, err := sqlledger.Open(sqlledger.Options{Dir: restoreDir, Name: "lifecycle", BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	rOrders, err := rdb.LedgerTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	tx = rdb.Begin("auditor")
	if _, ok, _ := tx.Get(rOrders, sqlledger.BigInt(22)); ok {
		t.Fatal("order 22 exists after restore to earlier point")
	}
	if _, ok, _ := tx.Get(rOrders, sqlledger.BigInt(21)); !ok {
		t.Fatal("order 21 missing after restore")
	}
	tx.Rollback()
	rep, err = rdb.VerifyFromStore(store, sqlledger.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("restored-database audit failed:\n%s", rep)
	}
	// The receipt from the original incarnation still verifies offline.
	if err := sqlledger.VerifyReceipt(receipt, pub); err != nil {
		t.Fatal(err)
	}
}

// TestGeoFailoverScenario simulates §3.6's geo-replication: digests are
// gated on replication progress, so a failover to a slightly-behind
// secondary can never invalidate an issued digest.
func TestGeoFailoverScenario(t *testing.T) {
	lag := 10 * time.Millisecond
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: t.TempDir(), Name: "geo", BlockSize: 100,
		ReplicaLag:      func() time.Duration { return lag },
		MaxReplicaDelay: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	lt, err := db.CreateLedgerTable("t", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("k", sqlledger.TypeBigInt),
		sqlledger.Col("v", sqlledger.TypeBigInt),
	}, "k"), sqlledger.Updateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin("u")
	if err := tx.Insert(lt, sqlledger.Row{sqlledger.BigInt(1), sqlledger.BigInt(2)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The digest only returns once the secondary has the data; the data
	// it covers can therefore never be lost to a failover.
	d, err := db.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{})
	if err != nil || !rep.Ok() {
		t.Fatalf("verify: %v\n%s", err, rep)
	}
}

// TestDigestJSONShape pins the JSON document format the API exposes (§2.2
// describes a JSON document with the block hash and metadata).
func TestDigestJSONShape(t *testing.T) {
	db := newTestDB(t, 100)
	lt, err := db.CreateLedgerTable("t", accountsSchema(), sqlledger.Updateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin("u")
	if err := tx.Insert(lt, sqlledger.Row{sqlledger.NVarChar("a"), sqlledger.BigInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	d, err := db.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := sqlledger.ParseDigest(d.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != d {
		t.Fatalf("digest JSON roundtrip: %+v vs %+v", parsed, d)
	}
	if parsed.DatabaseName != "testdb" || parsed.GeneratedAt == 0 || parsed.LastCommitTS == 0 {
		t.Fatalf("digest fields missing: %+v", parsed)
	}
	if _, err := sqlledger.ParseDigest([]byte(`{"hash":"xyz"}`)); err == nil {
		t.Fatal("bad digest accepted")
	}
}
