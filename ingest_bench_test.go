// Ingest-scaling benchmark and gate for the bulk-DML fast path:
// InsertBatch hashes row versions on a worker pool while preserving the
// serial path's Merkle append order, so bulk loads scale with cores
// without changing a single ledger byte (see DESIGN.md decision 10).
package sqlledger_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"sqlledger"
)

// ingestBatchRows is the rows-per-transaction of the bulk load; matches
// the chunk size the workload loaders use.
const ingestBatchRows = 1000

func ingestSchema() *sqlledger.Schema {
	return sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("a", sqlledger.TypeBigInt),
		sqlledger.Col("b", sqlledger.TypeBigInt),
		sqlledger.Col("payload", sqlledger.TypeVarChar),
	}, "id")
}

// ingestRow builds a ~260-byte row, the width the paper's latency
// experiments use.
func ingestRow(id int64) sqlledger.Row {
	payload := make([]byte, 220)
	for i := range payload {
		payload[i] = byte('a' + (id+int64(i))%26)
	}
	return sqlledger.Row{
		sqlledger.BigInt(id), sqlledger.BigInt(id * 3), sqlledger.BigInt(id * 7),
		sqlledger.VarChar(string(payload)),
	}
}

// openIngestDB opens a ledger database on a logical clock, so runs that
// ingest the same rows produce byte-identical digests regardless of
// timing or worker count.
func openIngestDB(tb testing.TB, dir string) *sqlledger.DB {
	tb.Helper()
	var tick atomic.Int64
	tick.Store(1_700_000_000_000_000_000)
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: dir, Name: "ingest",
		BlockSize:   sqlledger.DefaultBlockSize,
		LockTimeout: 5 * time.Second,
		Clock:       func() int64 { return tick.Add(1) },
	})
	if err != nil {
		tb.Fatal(err)
	}
	return db
}

// runIngest loads n rows in ingestBatchRows-row transactions and returns
// the elapsed load time and the final digest hash. workers < 0 selects
// one-at-a-time Inserts; otherwise InsertBatch with that worker count.
func runIngest(tb testing.TB, dir string, workers, n int) (time.Duration, string) {
	tb.Helper()
	db := openIngestDB(tb, dir)
	defer db.Close()
	lt, err := db.CreateLedgerTable("t", ingestSchema(), sqlledger.Updateable)
	if err != nil {
		tb.Fatal(err)
	}
	batch := make([]sqlledger.Row, 0, ingestBatchRows)
	start := time.Now()
	for lo := 0; lo < n; lo += ingestBatchRows {
		batch = batch[:0]
		for j := 0; j < ingestBatchRows && lo+j < n; j++ {
			batch = append(batch, ingestRow(int64(lo+j)))
		}
		tx := db.Begin("load")
		if workers < 0 {
			for _, r := range batch {
				if err := tx.Insert(lt, r); err != nil {
					tb.Fatal(err)
				}
			}
		} else if err := tx.InsertBatchParallel(lt, batch, workers); err != nil {
			tb.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			tb.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	d, err := db.GenerateDigest()
	if err != nil {
		tb.Fatal(err)
	}
	return elapsed, d.Hash
}

// BenchmarkIngest compares bulk-load throughput of serial inserts
// against InsertBatch at 1/2/4/8 hashing workers. One op is one
// 1000-row transaction; the custom metric reports rows/s.
func BenchmarkIngest(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"serial", -1},
		{"batch-1w", 1},
		{"batch-2w", 2},
		{"batch-4w", 4},
		{"batch-8w", 8},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db := openIngestDB(b, b.TempDir())
			defer db.Close()
			lt, err := db.CreateLedgerTable("t", ingestSchema(), sqlledger.Updateable)
			if err != nil {
				b.Fatal(err)
			}
			id := int64(0)
			batch := make([]sqlledger.Row, ingestBatchRows)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					id++
					batch[j] = ingestRow(id)
				}
				tx := db.Begin("load")
				if cfg.workers < 0 {
					for _, r := range batch {
						if err := tx.Insert(lt, r); err != nil {
							b.Fatal(err)
						}
					}
				} else if err := tx.InsertBatchParallel(lt, batch, cfg.workers); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)*ingestBatchRows/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// TestIngestScaling gates the bulk-DML fast path. The digest-equality
// half runs everywhere: a batched load must land on the byte-identical
// digest as a serial load of the same rows. The throughput half — batch
// ingest at 4 workers must be at least 2x serial-insert throughput —
// needs real hardware parallelism, so it is skipped below 4 CPUs and
// under the race detector (which serializes goroutines enough to distort
// wall-clock ratios).
func TestIngestScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	const rows = 20_000
	base := t.TempDir()
	serialDur, serialHash := runIngest(t, filepath.Join(base, "serial"), -1, rows)
	batchDur, batchHash := runIngest(t, filepath.Join(base, "batch4"), 4, rows)
	if batchHash != serialHash {
		t.Fatalf("digest mismatch: serial %s, batch %s", serialHash, batchHash)
	}
	if raceEnabled {
		t.Skip("throughput gate skipped under -race")
	}
	if ncpu := runtime.GOMAXPROCS(0); ncpu < 4 {
		t.Skipf("throughput gate needs >=4 CPUs, have %d", ncpu)
	}
	// Best of three trials per side to damp scheduler noise.
	for trial := 0; trial < 2; trial++ {
		d, _ := runIngest(t, filepath.Join(base, fmt.Sprintf("serial-%d", trial)), -1, rows)
		if d < serialDur {
			serialDur = d
		}
		d, _ = runIngest(t, filepath.Join(base, fmt.Sprintf("batch4-%d", trial)), 4, rows)
		if d < batchDur {
			batchDur = d
		}
	}
	speedup := float64(serialDur) / float64(batchDur)
	t.Logf("serial %v, batch(4 workers) %v, speedup %.2fx", serialDur, batchDur, speedup)
	if speedup < 2.0 {
		t.Fatalf("bulk-load speedup %.2fx at 4 workers, want >= 2x (serial %v, batch %v)",
			speedup, serialDur, batchDur)
	}
}
