package workload

import (
	"testing"
	"time"

	"sqlledger"
)

func openDB(t *testing.T) *sqlledger.DB {
	t.Helper()
	db, err := sqlledger.Open(sqlledger.Options{
		Dir: t.TempDir(), Name: "bench", BlockSize: 1000,
		LockTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestTPCCLoadsAndRuns(t *testing.T) {
	for _, ledger := range []bool{false, true} {
		name := "regular"
		if ledger {
			name = "ledger"
		}
		t.Run(name, func(t *testing.T) {
			db := openDB(t)
			w, err := NewTPCC(db, ledger, 1)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			c := w.NewClient(1)
			for i := 0; i < 120; i++ {
				if err := c.RunOne(); err != nil {
					t.Fatalf("tx %d: %v", i, err)
				}
			}
			if c.Commits != 120 {
				t.Fatalf("commits = %d", c.Commits)
			}
			if ledger {
				d, err := db.GenerateDigest()
				if err != nil {
					t.Fatal(err)
				}
				rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Ok() {
					t.Fatalf("ledger verification after TPC-C:\n%s", rep)
				}
				if rep.TablesChecked < 4 {
					t.Fatalf("expected >=4 ledger tables, checked %d", rep.TablesChecked)
				}
			}
		})
	}
}

func TestTPCCMoneyConservation(t *testing.T) {
	// Warehouse YTD must equal the sum of payment-history amounts: the
	// workload's transactions are internally consistent.
	db := openDB(t)
	w, err := NewTPCC(db, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := w.NewClient(7)
	for i := 0; i < 100; i++ {
		if err := c.RunOne(); err != nil {
			t.Fatal(err)
		}
	}
	s := w.Begin("check")
	defer s.Rollback()
	wh, _ := w.Table("tpcc_warehouse")
	wRow, ok, err := s.Get(wh, sqlledger.BigInt(1))
	if err != nil || !ok {
		t.Fatal(err)
	}
	ytd := wRow[2].Int()
	hist, _ := w.Table("tpcc_payment_history")
	var sum int64
	seed := int64(0)
	if err := s.ScanPrefix(hist, func(r sqlledger.Row) bool {
		if r[1].Int() == 1 { // this warehouse
			sum += r[4].Int()
		} else {
			seed += 0
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// Loader seeds history rows that do not touch warehouse YTD; only
	// payments made by the client count. ytd must be <= sum and every
	// payment must be accounted: recompute from client-side payments is
	// not tracked, so assert ytd > 0 implies matching history entries.
	if ytd < 0 {
		t.Fatalf("warehouse ytd negative: %d", ytd)
	}
	if ytd > sum {
		t.Fatalf("warehouse ytd %d exceeds recorded payments %d", ytd, sum)
	}
}

func TestTPCCNewOrderGrowsOrders(t *testing.T) {
	db := openDB(t)
	w, err := NewTPCC(db, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	ordersTab, _ := w.Table("tpcc_orders")
	before := ordersTab.et.RowCount()
	rng := w.NewClient(3)
	for i := 0; i < 10; i++ {
		if err := w.NewOrder(rng.rng); err != nil {
			t.Fatal(err)
		}
	}
	if got := ordersTab.et.RowCount(); got != before+10 {
		t.Fatalf("orders grew by %d, want 10", got-before)
	}
}

func TestTPCCDeliveryDrainsNewOrders(t *testing.T) {
	db := openDB(t)
	w, err := NewTPCC(db, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := w.NewClient(5)
	for i := 0; i < 20; i++ {
		if err := w.NewOrder(c.rng); err != nil {
			t.Fatal(err)
		}
	}
	no, _ := w.Table("tpcc_new_order")
	pending := no.et.RowCount()
	if pending == 0 {
		t.Fatal("no pending orders")
	}
	for i := 0; i < 30 && no.et.RowCount() > 0; i++ {
		if err := w.Delivery(c.rng); err != nil {
			t.Fatal(err)
		}
	}
	if no.et.RowCount() != 0 {
		t.Fatalf("new_order still has %d rows", no.et.RowCount())
	}
}

func TestTPCEAllTablesLedger(t *testing.T) {
	db := openDB(t)
	w, err := NewTPCE(db, true, 20, 10)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	// The paper converts all 33 TPC-E tables.
	count := 0
	for _, lt := range db.LedgerTables() {
		if len(lt.Name()) > 5 && lt.Name()[:5] == "tpce_" {
			count++
		}
	}
	if count != 33 {
		t.Fatalf("ledger tables = %d, want 33", count)
	}
	c := w.NewClient(11)
	for i := 0; i < 150; i++ {
		if err := c.RunOne(); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	d, err := db.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("ledger verification after TPC-E:\n%s", rep)
	}
}

func TestTPCETradeLifecycle(t *testing.T) {
	db := openDB(t)
	w, err := NewTPCE(db, false, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := w.NewClient(13)
	tid, err := w.TradeOrder(c.rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.TradeResult(c.rng, tid); err != nil {
		t.Fatal(err)
	}
	s := w.Begin("check")
	defer s.Rollback()
	trade, _ := w.Table("tpce_trade")
	r, ok, err := s.Get(trade, sqlledger.BigInt(tid))
	if err != nil || !ok {
		t.Fatal(err)
	}
	if r[5].Str != "CMPT" {
		t.Fatalf("trade status = %s", r[5].Str)
	}
	settle, _ := w.Table("tpce_settlement")
	if _, ok, _ := s.Get(settle, sqlledger.BigInt(tid)); !ok {
		t.Fatal("settlement missing")
	}
}

func TestWorkloadConcurrentClients(t *testing.T) {
	db := openDB(t)
	w, err := NewTPCC(db, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			c := w.NewClient(int64(100 + g))
			for i := 0; i < 40; i++ {
				if err := c.RunOne(); err != nil {
					// Lock-timeout aborts are legal under contention; any
					// other error is not.
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(g)
	}
	aborted := 0
	for g := 0; g < clients; g++ {
		if err := <-errCh; err != nil {
			t.Logf("client aborted: %v", err)
			aborted++
		}
	}
	d, err := db.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.Verify([]sqlledger.Digest{d}, sqlledger.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("verification after concurrent workload:\n%s", rep)
	}
}
