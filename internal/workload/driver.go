package workload

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sqlledger/internal/obs"
)

// Driver metrics. By default they point at nil handles (no-ops); call
// Instrument before Drive/DriveN to route commit and error counts into a
// registry, so a benchmark's /metrics endpoint shows workload progress.
var (
	mCommits *obs.Counter
	mErrors  *obs.Counter
)

// Instrument binds the driver's counters to reg. Call it before starting
// a drive; it is not synchronized with a run in flight.
func Instrument(reg *obs.Registry) {
	mCommits = reg.Counter(obs.WorkloadCommitsTotal)
	mErrors = reg.Counter(obs.WorkloadErrorsTotal)
}

// DriveResult summarizes one concurrent driver run.
type DriveResult struct {
	Commits int64
	Errors  int64
	// Err aggregates per-client failures (errors.Join of each client's
	// first error), so callers see WHAT failed, not just how often.
	Err     error
	Elapsed time.Duration
}

// TPS returns committed transactions per second.
func (r DriveResult) TPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Commits) / r.Elapsed.Seconds()
}

// Drive runs `clients` goroutines for `dur`, each repeatedly invoking the
// op returned by newClient(id). A nil op error counts as a commit,
// anything else as an error. It is the driver behind the commit-scaling
// experiment: the ops are expected to be single transactions, so TPS()
// directly measures commit throughput at the given concurrency.
func Drive(clients int, dur time.Duration, newClient func(id int) func() error) DriveResult {
	return drive(clients, func(stop *atomic.Bool) bool { return !stop.Load() }, dur, newClient)
}

// DriveN is Drive with a shared budget of exactly n ops instead of a
// deadline: clients race to take work until the budget is exhausted.
// Useful under `go test -bench`, where b.N sets the total op count.
func DriveN(clients, n int, newClient func(id int) func() error) DriveResult {
	var budget atomic.Int64
	budget.Store(int64(n))
	return drive(clients, func(*atomic.Bool) bool { return budget.Add(-1) >= 0 }, 0, newClient)
}

func drive(clients int, next func(stop *atomic.Bool) bool, dur time.Duration, newClient func(id int) func() error) DriveResult {
	if clients < 1 {
		clients = 1
	}
	var stop atomic.Bool
	var commits, errs atomic.Int64
	firstErr := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			op := newClient(g)
			for next(&stop) {
				if err := op(); err != nil {
					errs.Add(1)
					mErrors.Inc()
					if firstErr[g] == nil {
						firstErr[g] = fmt.Errorf("client %d: %w", g, err)
					}
				} else {
					commits.Add(1)
					mCommits.Inc()
				}
			}
		}(g)
	}
	if dur > 0 {
		time.Sleep(dur)
		stop.Store(true)
	}
	wg.Wait()
	return DriveResult{
		Commits: commits.Load(), Errors: errs.Load(),
		Err: errors.Join(firstErr...), Elapsed: time.Since(start),
	}
}
