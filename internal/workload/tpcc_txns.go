package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"sqlledger"
)

// errSkip marks a transaction that found nothing to do (e.g. Delivery with
// no pending orders); the driver treats it as a no-op, not a failure.
var errSkip = errors.New("workload: nothing to do")

// NewOrder places an order: bumps the district's next order id, inserts
// the order, its new_order marker and 5–15 order lines, and updates stock
// for each line (the classic update-heavy TPC-C transaction).
func (t *TPCC) NewOrder(rng *rand.Rand) error {
	w := int64(uniform(rng, 1, t.Warehouses))
	d := int64(uniform(rng, 1, tpccDistrictsPerWarehouse))
	cid := int64(nonUniform(rng, 1023, 1, tpccCustomersPerDistrict))
	nLines := uniform(rng, 5, 15)

	s := t.Begin("app").Op("new_order")
	defer s.Rollback()

	dRow, ok, err := s.Get(t.district, sqlledger.BigInt(w), sqlledger.BigInt(d))
	if err != nil || !ok {
		return fmt.Errorf("workload: district (%d,%d): %v", w, d, err)
	}
	oid := dRow[3].Int()
	dRow = dRow.Clone()
	dRow[3] = sqlledger.BigInt(oid + 1)
	if err := s.Update(t.district, dRow); err != nil {
		return err
	}
	if _, ok, err := s.Get(t.customer, sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(cid)); err != nil || !ok {
		return fmt.Errorf("workload: customer (%d,%d,%d): %v", w, d, cid, err)
	}
	if err := s.Insert(t.orders, sqlledger.Row{
		sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(oid),
		sqlledger.BigInt(cid), sqlledger.DateTime(time.Now()),
		sqlledger.Null(sqlledger.TypeBigInt), sqlledger.BigInt(int64(nLines)),
	}); err != nil {
		return err
	}
	if err := s.Insert(t.newOrder, sqlledger.Row{
		sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(oid),
	}); err != nil {
		return err
	}
	for ln := 1; ln <= nLines; ln++ {
		item := int64(nonUniform(rng, 8191, 1, tpccItems))
		qty := int64(uniform(rng, 1, 10))
		iRow, ok, err := s.Get(t.item, sqlledger.BigInt(item))
		if err != nil || !ok {
			return fmt.Errorf("workload: item %d: %v", item, err)
		}
		price := iRow[2].Int()
		sRow, ok, err := s.Get(t.stock, sqlledger.BigInt(w), sqlledger.BigInt(item))
		if err != nil || !ok {
			return fmt.Errorf("workload: stock (%d,%d): %v", w, item, err)
		}
		sRow = sRow.Clone()
		q := sRow[2].Int() - qty
		if q < 10 {
			q += 91
		}
		sRow[2] = sqlledger.BigInt(q)
		sRow[3] = sqlledger.BigInt(sRow[3].Int() + qty)
		sRow[4] = sqlledger.BigInt(sRow[4].Int() + 1)
		if err := s.Update(t.stock, sRow); err != nil {
			return err
		}
		if err := s.Insert(t.orderLine, sqlledger.Row{
			sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(oid), sqlledger.BigInt(int64(ln)),
			sqlledger.BigInt(item), sqlledger.BigInt(qty), sqlledger.BigInt(qty * price),
			sqlledger.Null(sqlledger.TypeDateTime),
		}); err != nil {
			return err
		}
	}
	return s.Commit()
}

// Payment records a customer payment: warehouse and district YTD, the
// customer's balance, and an entry in the (ledger) payment history table.
func (t *TPCC) Payment(rng *rand.Rand) error {
	w := int64(uniform(rng, 1, t.Warehouses))
	d := int64(uniform(rng, 1, tpccDistrictsPerWarehouse))
	cid := int64(nonUniform(rng, 1023, 1, tpccCustomersPerDistrict))
	amount := int64(uniform(rng, 100, 500000))

	s := t.Begin("app").Op("payment")
	defer s.Rollback()

	wRow, ok, err := s.Get(t.warehouse, sqlledger.BigInt(w))
	if err != nil || !ok {
		return fmt.Errorf("workload: warehouse %d: %v", w, err)
	}
	wRow = wRow.Clone()
	wRow[2] = sqlledger.BigInt(wRow[2].Int() + amount)
	if err := s.Update(t.warehouse, wRow); err != nil {
		return err
	}
	dRow, ok, err := s.Get(t.district, sqlledger.BigInt(w), sqlledger.BigInt(d))
	if err != nil || !ok {
		return fmt.Errorf("workload: district (%d,%d): %v", w, d, err)
	}
	dRow = dRow.Clone()
	dRow[4] = sqlledger.BigInt(dRow[4].Int() + amount)
	if err := s.Update(t.district, dRow); err != nil {
		return err
	}
	cRow, ok, err := s.Get(t.customer, sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(cid))
	if err != nil || !ok {
		return fmt.Errorf("workload: customer (%d,%d,%d): %v", w, d, cid, err)
	}
	cRow = cRow.Clone()
	cRow[4] = sqlledger.BigInt(cRow[4].Int() - amount)
	cRow[5] = sqlledger.BigInt(cRow[5].Int() + amount)
	cRow[6] = sqlledger.BigInt(cRow[6].Int() + 1)
	if err := s.Update(t.customer, cRow); err != nil {
		return err
	}
	if err := s.Insert(t.history, sqlledger.Row{
		sqlledger.BigInt(t.nextHistoryID.Add(1)),
		sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(cid),
		sqlledger.BigInt(amount), sqlledger.DateTime(time.Now()),
		sqlledger.NVarChar(fmt.Sprintf("payment w=%d d=%d c=%d", w, d, cid)),
	}); err != nil {
		return err
	}
	return s.Commit()
}

// OrderStatus reads a customer's most recent order and its lines.
func (t *TPCC) OrderStatus(rng *rand.Rand) error {
	w := int64(uniform(rng, 1, t.Warehouses))
	d := int64(uniform(rng, 1, tpccDistrictsPerWarehouse))
	cid := int64(nonUniform(rng, 1023, 1, tpccCustomersPerDistrict))

	s := t.Begin("app").Op("order_status")
	defer s.Rollback()
	if _, ok, err := s.Get(t.customer, sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(cid)); err != nil || !ok {
		return fmt.Errorf("workload: customer (%d,%d,%d): %v", w, d, cid, err)
	}
	var lastOrder int64 = -1
	if err := s.ScanPrefix(t.orders, func(r sqlledger.Row) bool {
		if r[3].Int() == cid {
			lastOrder = r[2].Int()
		}
		return true
	}, sqlledger.BigInt(w), sqlledger.BigInt(d)); err != nil {
		return err
	}
	if lastOrder >= 0 {
		if err := s.ScanPrefix(t.orderLine, func(r sqlledger.Row) bool { return true },
			sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(lastOrder)); err != nil {
			return err
		}
	}
	return s.Commit()
}

// Delivery delivers the oldest undelivered order of one district: removes
// its new_order marker, stamps the order with a carrier and the lines with
// a delivery date, and credits the customer.
func (t *TPCC) Delivery(rng *rand.Rand) error {
	w := int64(uniform(rng, 1, t.Warehouses))
	carrier := int64(uniform(rng, 1, 10))

	s := t.Begin("app").Op("delivery")
	defer s.Rollback()
	delivered := 0
	for d := int64(1); d <= tpccDistrictsPerWarehouse; d++ {
		var oid int64 = -1
		if err := s.ScanPrefix(t.newOrder, func(r sqlledger.Row) bool {
			oid = r[2].Int()
			return false // oldest = first in key order
		}, sqlledger.BigInt(w), sqlledger.BigInt(d)); err != nil {
			return err
		}
		if oid < 0 {
			continue
		}
		if err := s.Delete(t.newOrder, sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(oid)); err != nil {
			return err
		}
		oRow, ok, err := s.Get(t.orders, sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(oid))
		if err != nil || !ok {
			return fmt.Errorf("workload: order (%d,%d,%d): %v", w, d, oid, err)
		}
		oRow = oRow.Clone()
		oRow[5] = sqlledger.BigInt(carrier)
		if err := s.Update(t.orders, oRow); err != nil {
			return err
		}
		cid := oRow[3].Int()
		var lines []sqlledger.Row
		var total int64
		if err := s.ScanPrefix(t.orderLine, func(r sqlledger.Row) bool {
			lines = append(lines, r.Clone())
			total += r[6].Int()
			return true
		}, sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(oid)); err != nil {
			return err
		}
		now := sqlledger.DateTime(time.Now())
		for _, ln := range lines {
			ln[7] = now
			if err := s.Update(t.orderLine, ln); err != nil {
				return err
			}
		}
		cRow, ok, err := s.Get(t.customer, sqlledger.BigInt(w), sqlledger.BigInt(d), sqlledger.BigInt(cid))
		if err != nil || !ok {
			return fmt.Errorf("workload: customer (%d,%d,%d): %v", w, d, cid, err)
		}
		cRow = cRow.Clone()
		cRow[4] = sqlledger.BigInt(cRow[4].Int() + total)
		if err := s.Update(t.customer, cRow); err != nil {
			return err
		}
		delivered++
	}
	if delivered == 0 {
		return s.Commit() // nothing pending anywhere: a cheap no-op
	}
	return s.Commit()
}

// StockLevel counts recently sold items below a stock threshold.
func (t *TPCC) StockLevel(rng *rand.Rand) error {
	w := int64(uniform(rng, 1, t.Warehouses))
	d := int64(uniform(rng, 1, tpccDistrictsPerWarehouse))
	threshold := int64(uniform(rng, 10, 20))

	s := t.Begin("app").Op("stock_level")
	defer s.Rollback()
	items := make(map[int64]bool)
	count := 0
	if err := s.ScanPrefix(t.orderLine, func(r sqlledger.Row) bool {
		items[r[4].Int()] = true
		count++
		return count < 200 // bounded like the spec's "last 20 orders"
	}, sqlledger.BigInt(w), sqlledger.BigInt(d)); err != nil {
		return err
	}
	low := 0
	for item := range items {
		sRow, ok, err := s.Get(t.stock, sqlledger.BigInt(w), sqlledger.BigInt(item))
		if err != nil {
			return err
		}
		if ok && sRow[2].Int() < threshold {
			low++
		}
	}
	return s.Commit()
}
