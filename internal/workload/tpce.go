package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"sqlledger"
)

// TPCE is the TPC-E-like brokerage workload (§4.1.1): read-heavy (~77%
// reads), financial data. The paper converts all 33 TPC-E tables to
// ledger tables; this implementation declares all 33 with simplified
// schemas and drives a simplified mix of the highest-weight transactions.
type TPCE struct {
	*Common
	Customers  int
	Securities int

	customerAcct, trade, tradeHistory, settlement *Table
	cashTransaction, holdingSummary, lastTrade    *Table
	security, broker, customer                    *Table

	nextTradeID atomic.Int64
}

// tpceReferenceTables lists the remaining TPC-E tables, created (and in
// ledger mode, converted) for schema completeness and loaded with a few
// reference rows each.
var tpceReferenceTables = []string{
	"tpce_account_permission", "tpce_address", "tpce_charge",
	"tpce_commission_rate", "tpce_company", "tpce_company_competitor",
	"tpce_customer_taxrate", "tpce_daily_market", "tpce_exchange",
	"tpce_financial", "tpce_holding", "tpce_holding_history",
	"tpce_industry", "tpce_news_item", "tpce_news_xref", "tpce_sector",
	"tpce_status_type", "tpce_taxrate", "tpce_trade_request",
	"tpce_trade_type", "tpce_watch_item", "tpce_watch_list",
	"tpce_zip_code",
}

// NewTPCE creates and loads the TPC-E-like schema.
func NewTPCE(db *sqlledger.DB, ledger bool, customers, securities int) (*TPCE, error) {
	if customers < 1 {
		customers = 100
	}
	if securities < 1 {
		securities = 50
	}
	t := &TPCE{Common: newCommon(db, ledger), Customers: customers, Securities: securities}
	if err := t.createSchema(); err != nil {
		return nil, err
	}
	if err := t.load(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *TPCE) createSchema() error {
	var err error
	mk := func(name string, schema *sqlledger.Schema) *Table {
		if err != nil {
			return nil
		}
		var tab *Table
		tab, err = t.createTable(name, schema, true) // all 33 tables are ledger tables
		return tab
	}
	t.customer = mk("tpce_customer", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("c_id", sqlledger.TypeBigInt),
		sqlledger.Col("c_name", sqlledger.TypeNVarChar),
		sqlledger.Col("c_tier", sqlledger.TypeBigInt),
	}, "c_id"))
	t.customerAcct = mk("tpce_customer_account", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("ca_id", sqlledger.TypeBigInt),
		sqlledger.Col("ca_c_id", sqlledger.TypeBigInt),
		sqlledger.Col("ca_bal", sqlledger.TypeBigInt),
		sqlledger.Col("ca_name", sqlledger.TypeNVarChar),
	}, "ca_id"))
	t.broker = mk("tpce_broker", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("b_id", sqlledger.TypeBigInt),
		sqlledger.Col("b_name", sqlledger.TypeNVarChar),
		sqlledger.Col("b_num_trades", sqlledger.TypeBigInt),
		sqlledger.Col("b_comm_total", sqlledger.TypeBigInt),
	}, "b_id"))
	t.security = mk("tpce_security", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("s_symb", sqlledger.TypeNVarChar),
		sqlledger.Col("s_name", sqlledger.TypeNVarChar),
		sqlledger.Col("s_ex", sqlledger.TypeNVarChar),
	}, "s_symb"))
	t.lastTrade = mk("tpce_last_trade", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("lt_s_symb", sqlledger.TypeNVarChar),
		sqlledger.Col("lt_price", sqlledger.TypeBigInt),
		sqlledger.Col("lt_vol", sqlledger.TypeBigInt),
		sqlledger.Col("lt_dts", sqlledger.TypeDateTime),
	}, "lt_s_symb"))
	t.trade = mk("tpce_trade", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("t_id", sqlledger.TypeBigInt),
		sqlledger.Col("t_ca_id", sqlledger.TypeBigInt),
		sqlledger.Col("t_s_symb", sqlledger.TypeNVarChar),
		sqlledger.Col("t_qty", sqlledger.TypeBigInt),
		sqlledger.Col("t_price", sqlledger.TypeBigInt),
		sqlledger.Col("t_status", sqlledger.TypeNVarChar),
		sqlledger.Col("t_dts", sqlledger.TypeDateTime),
		sqlledger.Col("t_is_buy", sqlledger.TypeBit),
	}, "t_id"))
	t.tradeHistory = mk("tpce_trade_history", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("th_t_id", sqlledger.TypeBigInt),
		sqlledger.Col("th_seq", sqlledger.TypeBigInt),
		sqlledger.Col("th_status", sqlledger.TypeNVarChar),
		sqlledger.Col("th_dts", sqlledger.TypeDateTime),
	}, "th_t_id", "th_seq"))
	t.settlement = mk("tpce_settlement", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("se_t_id", sqlledger.TypeBigInt),
		sqlledger.Col("se_amt", sqlledger.TypeBigInt),
		sqlledger.Col("se_cash_due", sqlledger.TypeDateTime),
	}, "se_t_id"))
	t.cashTransaction = mk("tpce_cash_transaction", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("ct_t_id", sqlledger.TypeBigInt),
		sqlledger.Col("ct_amt", sqlledger.TypeBigInt),
		sqlledger.Col("ct_dts", sqlledger.TypeDateTime),
		sqlledger.Col("ct_name", sqlledger.TypeNVarChar),
	}, "ct_t_id"))
	t.holdingSummary = mk("tpce_holding_summary", sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("hs_ca_id", sqlledger.TypeBigInt),
		sqlledger.Col("hs_s_symb", sqlledger.TypeNVarChar),
		sqlledger.Col("hs_qty", sqlledger.TypeBigInt),
	}, "hs_ca_id", "hs_s_symb"))
	if err != nil {
		return err
	}
	// The remaining 23 tables: generic reference schema.
	for _, name := range tpceReferenceTables {
		mk(name, sqlledger.MustSchema([]sqlledger.Column{
			sqlledger.Col("id", sqlledger.TypeBigInt),
			sqlledger.Col("data", sqlledger.TypeNVarChar),
		}, "id"))
		if err != nil {
			return err
		}
	}
	return err
}

func symb(i int) string { return fmt.Sprintf("SYM%04d", i) }

func (t *TPCE) load() error {
	rng := rand.New(rand.NewSource(7))
	now := time.Now()
	s := t.Begin("loader")
	flush := func() error {
		if err := s.Commit(); err != nil {
			return err
		}
		s = t.Begin("loader")
		return nil
	}
	// Customers and accounts are seeded pairwise; each flush pushes the
	// accumulated rows through InsertBatch so ledger mode hashes them on
	// the worker pool.
	var custBatch, acctBatch []sqlledger.Row
	flushCustomers := func() error {
		if len(custBatch) == 0 {
			return nil
		}
		if err := s.InsertBatch(t.customer, custBatch); err != nil {
			return err
		}
		if err := s.InsertBatch(t.customerAcct, acctBatch); err != nil {
			return err
		}
		custBatch, acctBatch = custBatch[:0], acctBatch[:0]
		return flush()
	}
	for i := 1; i <= t.Customers; i++ {
		custBatch = append(custBatch, sqlledger.Row{
			sqlledger.BigInt(int64(i)),
			sqlledger.NVarChar(fmt.Sprintf("customer-%d", i)),
			sqlledger.BigInt(int64(uniform(rng, 1, 3))),
		})
		acctBatch = append(acctBatch, sqlledger.Row{
			sqlledger.BigInt(int64(i)),
			sqlledger.BigInt(int64(i)),
			sqlledger.BigInt(1_000_000),
			sqlledger.NVarChar(fmt.Sprintf("account-%d %s", i, filler(rng, 20))),
		})
		if i%200 == 0 {
			if err := flushCustomers(); err != nil {
				return err
			}
		}
	}
	if err := flushCustomers(); err != nil {
		return err
	}
	for i := 1; i <= 10; i++ {
		if err := s.Insert(t.broker, sqlledger.Row{
			sqlledger.BigInt(int64(i)),
			sqlledger.NVarChar(fmt.Sprintf("broker-%d", i)),
			sqlledger.BigInt(0), sqlledger.BigInt(0),
		}); err != nil {
			return err
		}
	}
	secBatch := make([]sqlledger.Row, 0, t.Securities)
	tradeBatch := make([]sqlledger.Row, 0, t.Securities)
	for i := 1; i <= t.Securities; i++ {
		secBatch = append(secBatch, sqlledger.Row{
			sqlledger.NVarChar(symb(i)),
			sqlledger.NVarChar(fmt.Sprintf("security-%d %s", i, filler(rng, 16))),
			sqlledger.NVarChar("NYSE"),
		})
		tradeBatch = append(tradeBatch, sqlledger.Row{
			sqlledger.NVarChar(symb(i)),
			sqlledger.BigInt(int64(uniform(rng, 1000, 100000))),
			sqlledger.BigInt(0),
			sqlledger.DateTime(now),
		})
	}
	if err := s.InsertBatch(t.security, secBatch); err != nil {
		return err
	}
	if err := s.InsertBatch(t.lastTrade, tradeBatch); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	for _, name := range tpceReferenceTables {
		tab, err := t.Table(name)
		if err != nil {
			return err
		}
		refBatch := make([]sqlledger.Row, 0, 20)
		for i := 1; i <= 20; i++ {
			refBatch = append(refBatch, sqlledger.Row{
				sqlledger.BigInt(int64(i)),
				sqlledger.NVarChar(filler(rng, 40)),
			})
		}
		if err := s.InsertBatch(tab, refBatch); err != nil {
			return err
		}
		if err := flush(); err != nil {
			return err
		}
	}
	return s.Commit()
}

// TPCEClient drives the TPC-E mix from one goroutine.
type TPCEClient struct {
	t   *TPCE
	rng *rand.Rand
	// pendingTrades holds trades this client ordered but has not settled.
	pendingTrades   []int64
	Commits, Aborts int
}

// NewClient creates a driver client.
func (t *TPCE) NewClient(seed int64) *TPCEClient {
	return &TPCEClient{t: t, rng: rand.New(rand.NewSource(seed))}
}

// RunOne executes one transaction from a simplified TPC-E mix:
// Trade-Order 10%, Trade-Result 10%, Market-Feed 3%, and the remaining
// 77% spread over the read-only transactions (Trade-Status,
// Customer-Position, Market-Watch, Security-Detail).
func (c *TPCEClient) RunOne() error {
	var err error
	switch x := c.rng.Intn(100); {
	case x < 10:
		var tid int64
		tid, err = c.t.TradeOrder(c.rng)
		if err == nil {
			c.pendingTrades = append(c.pendingTrades, tid)
		}
	case x < 20:
		if len(c.pendingTrades) == 0 {
			_, err = c.t.TradeOrder(c.rng)
		} else {
			tid := c.pendingTrades[0]
			c.pendingTrades = c.pendingTrades[1:]
			err = c.t.TradeResult(c.rng, tid)
		}
	case x < 23:
		err = c.t.MarketFeed(c.rng)
	case x < 42:
		err = c.t.TradeStatus(c.rng)
	case x < 61:
		err = c.t.CustomerPosition(c.rng)
	case x < 80:
		err = c.t.MarketWatch(c.rng)
	default:
		err = c.t.SecurityDetail(c.rng)
	}
	if err != nil {
		c.Aborts++
		return err
	}
	c.Commits++
	return nil
}

// TradeOrder submits a trade: inserts the trade and its first history row.
func (t *TPCE) TradeOrder(rng *rand.Rand) (int64, error) {
	tid := t.nextTradeID.Add(1)
	ca := int64(uniform(rng, 1, t.Customers))
	sym := symb(uniform(rng, 1, t.Securities))
	s := t.Begin("app").Op("trade_order")
	defer s.Rollback()
	ltRow, ok, err := s.Get(t.lastTrade, sqlledger.NVarChar(sym))
	if err != nil || !ok {
		return 0, fmt.Errorf("workload: last_trade %s: %v", sym, err)
	}
	price := ltRow[1].Int()
	if err := s.Insert(t.trade, sqlledger.Row{
		sqlledger.BigInt(tid), sqlledger.BigInt(ca), sqlledger.NVarChar(sym),
		sqlledger.BigInt(int64(uniform(rng, 10, 500))), sqlledger.BigInt(price),
		sqlledger.NVarChar("SBMT"), sqlledger.DateTime(time.Now()),
		sqlledger.Bit(rng.Intn(2) == 0),
	}); err != nil {
		return 0, err
	}
	if err := s.Insert(t.tradeHistory, sqlledger.Row{
		sqlledger.BigInt(tid), sqlledger.BigInt(1),
		sqlledger.NVarChar("SBMT"), sqlledger.DateTime(time.Now()),
	}); err != nil {
		return 0, err
	}
	return tid, s.Commit()
}

// TradeResult completes a trade: updates its status, adjusts the account
// balance and holding summary, and records settlement and cash movement.
func (t *TPCE) TradeResult(rng *rand.Rand, tid int64) error {
	s := t.Begin("app").Op("trade_result")
	defer s.Rollback()
	tRow, ok, err := s.Get(t.trade, sqlledger.BigInt(tid))
	if err != nil || !ok {
		return fmt.Errorf("workload: trade %d: %v", tid, err)
	}
	tRow = tRow.Clone()
	tRow[5] = sqlledger.NVarChar("CMPT")
	if err := s.Update(t.trade, tRow); err != nil {
		return err
	}
	if err := s.Insert(t.tradeHistory, sqlledger.Row{
		sqlledger.BigInt(tid), sqlledger.BigInt(2),
		sqlledger.NVarChar("CMPT"), sqlledger.DateTime(time.Now()),
	}); err != nil {
		return err
	}
	ca, qty, price := tRow[1].Int(), tRow[3].Int(), tRow[4].Int()
	sym := tRow[2].Str
	buy := tRow[7].Bool()
	amt := qty * price
	if buy {
		amt = -amt
	}
	aRow, ok, err := s.Get(t.customerAcct, sqlledger.BigInt(ca))
	if err != nil || !ok {
		return fmt.Errorf("workload: account %d: %v", ca, err)
	}
	aRow = aRow.Clone()
	aRow[2] = sqlledger.BigInt(aRow[2].Int() + amt)
	if err := s.Update(t.customerAcct, aRow); err != nil {
		return err
	}
	hsRow, ok, err := s.Get(t.holdingSummary, sqlledger.BigInt(ca), sqlledger.NVarChar(sym))
	delta := qty
	if !buy {
		delta = -qty
	}
	if err != nil {
		return err
	}
	if ok {
		hsRow = hsRow.Clone()
		hsRow[2] = sqlledger.BigInt(hsRow[2].Int() + delta)
		if err := s.Update(t.holdingSummary, hsRow); err != nil {
			return err
		}
	} else if err := s.Insert(t.holdingSummary, sqlledger.Row{
		sqlledger.BigInt(ca), sqlledger.NVarChar(sym), sqlledger.BigInt(delta),
	}); err != nil {
		return err
	}
	if err := s.Insert(t.settlement, sqlledger.Row{
		sqlledger.BigInt(tid), sqlledger.BigInt(amt),
		sqlledger.DateTime(time.Now().Add(48 * time.Hour)),
	}); err != nil {
		return err
	}
	if err := s.Insert(t.cashTransaction, sqlledger.Row{
		sqlledger.BigInt(tid), sqlledger.BigInt(amt), sqlledger.DateTime(time.Now()),
		sqlledger.NVarChar(fmt.Sprintf("settle trade %d", tid)),
	}); err != nil {
		return err
	}
	return s.Commit()
}

// MarketFeed ticks a handful of securities' last trade prices.
func (t *TPCE) MarketFeed(rng *rand.Rand) error {
	s := t.Begin("feed").Op("market_feed")
	defer s.Rollback()
	for i := 0; i < 5; i++ {
		sym := symb(uniform(rng, 1, t.Securities))
		r, ok, err := s.Get(t.lastTrade, sqlledger.NVarChar(sym))
		if err != nil || !ok {
			return fmt.Errorf("workload: last_trade %s: %v", sym, err)
		}
		r = r.Clone()
		r[1] = sqlledger.BigInt(r[1].Int() + int64(uniform(rng, -50, 50)))
		r[2] = sqlledger.BigInt(r[2].Int() + 100)
		r[3] = sqlledger.DateTime(time.Now())
		if err := s.Update(t.lastTrade, r); err != nil {
			return err
		}
	}
	return s.Commit()
}

// TradeStatus reads the history of a recent trade plus the account.
func (t *TPCE) TradeStatus(rng *rand.Rand) error {
	ca := int64(uniform(rng, 1, t.Customers))
	s := t.Begin("app").Op("trade_status")
	defer s.Rollback()
	if max := t.nextTradeID.Load(); max > 0 {
		tid := int64(uniform(rng, 1, int(max)))
		if err := s.ScanPrefix(t.tradeHistory, func(r sqlledger.Row) bool { return true },
			sqlledger.BigInt(tid)); err != nil {
			return err
		}
	}
	if _, _, err := s.Get(t.customerAcct, sqlledger.BigInt(ca)); err != nil {
		return err
	}
	return s.Commit()
}

// CustomerPosition reads a customer's account and holdings.
func (t *TPCE) CustomerPosition(rng *rand.Rand) error {
	ca := int64(uniform(rng, 1, t.Customers))
	s := t.Begin("app").Op("customer_position")
	defer s.Rollback()
	if _, _, err := s.Get(t.customer, sqlledger.BigInt(ca)); err != nil {
		return err
	}
	if _, _, err := s.Get(t.customerAcct, sqlledger.BigInt(ca)); err != nil {
		return err
	}
	if err := s.ScanPrefix(t.holdingSummary, func(r sqlledger.Row) bool { return true },
		sqlledger.BigInt(ca)); err != nil {
		return err
	}
	return s.Commit()
}

// MarketWatch reads last-trade prices for a basket of securities.
func (t *TPCE) MarketWatch(rng *rand.Rand) error {
	s := t.Begin("app").Op("market_watch")
	defer s.Rollback()
	for i := 0; i < 10; i++ {
		sym := symb(uniform(rng, 1, t.Securities))
		if _, _, err := s.Get(t.lastTrade, sqlledger.NVarChar(sym)); err != nil {
			return err
		}
	}
	return s.Commit()
}

// SecurityDetail reads a security and its latest price.
func (t *TPCE) SecurityDetail(rng *rand.Rand) error {
	sym := symb(uniform(rng, 1, t.Securities))
	s := t.Begin("app").Op("security_detail")
	defer s.Rollback()
	if _, _, err := s.Get(t.security, sqlledger.NVarChar(sym)); err != nil {
		return err
	}
	if _, _, err := s.Get(t.lastTrade, sqlledger.NVarChar(sym)); err != nil {
		return err
	}
	return s.Commit()
}
