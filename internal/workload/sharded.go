package workload

import (
	"fmt"
	"sync"

	"sqlledger"
)

// Shard-aware bulk loader: the ingest half of the shard-scaling
// experiment. It loads a deterministic row set into a sharded ledger
// database two ways — serially, where the commit sequence (and so every
// digest) is byte-reproducible under a logical clock, and with a client
// pool of shard-pure transactions, which is the multi-core ingest path
// the sharded architecture exists for.

// shardedSchema is the experiment's table: a bigint key plus a payload
// padding rows to ~260 bytes (the paper's latency-experiment row width).
func shardedSchema() *sqlledger.Schema {
	return sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("a", sqlledger.TypeBigInt),
		sqlledger.Col("b", sqlledger.TypeBigInt),
		sqlledger.Col("payload", sqlledger.TypeVarChar),
	}, "id")
}

// ShardedRow builds the deterministic ~260-byte row for id.
func ShardedRow(id int64) sqlledger.Row {
	payload := make([]byte, 220)
	for i := range payload {
		payload[i] = byte('a' + (id+int64(i))%26)
	}
	return sqlledger.Row{
		sqlledger.BigInt(id), sqlledger.BigInt(id * 3), sqlledger.BigInt(id * 7),
		sqlledger.VarChar(string(payload)),
	}
}

// ShardedLoader bulk-loads rows into one sharded ledger table.
type ShardedLoader struct {
	DB    *sqlledger.ShardedDB
	Table *sqlledger.ShardedTable
}

// NewShardedLoader creates the experiment table on every shard.
func NewShardedLoader(db *sqlledger.ShardedDB, table string) (*ShardedLoader, error) {
	st, err := db.CreateLedgerTable(table, shardedSchema(), sqlledger.Updateable)
	if err != nil {
		return nil, err
	}
	return &ShardedLoader{DB: db, Table: st}, nil
}

// LoadSerial inserts ids [0, n) in order, batch rows per transaction, on
// the calling goroutine. Batches spanning shards commit through 2PC; the
// single-threaded schedule makes digests and super-roots byte-identical
// across runs under a logical clock.
func (l *ShardedLoader) LoadSerial(n, batch int) error { return l.LoadSerialRange(0, n, batch) }

// LoadSerialRange is LoadSerial over ids [lo, hi).
func (l *ShardedLoader) LoadSerialRange(lo, hi, batch int) error {
	rows := make([]sqlledger.Row, 0, batch)
	for base := lo; base < hi; base += batch {
		rows = rows[:0]
		for id := base; id < base+batch && id < hi; id++ {
			rows = append(rows, ShardedRow(int64(id)))
		}
		tx := l.DB.Begin("load")
		if err := tx.InsertBatchParallel(l.Table, rows, 1); err != nil {
			tx.Rollback()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// LoadParallel partitions ids [0, n) into shard-pure batches of at most
// batch rows and drives them through a pool of clients goroutines, one
// single-shard (no-2PC) transaction per batch. Row hashing stays serial
// inside each transaction (workers=1), so measured speedups isolate shard
// parallelism from batch-hashing parallelism.
func (l *ShardedLoader) LoadParallel(n, batch, clients int) error {
	return l.LoadParallelRange(0, n, batch, clients)
}

// LoadParallelRange is LoadParallel over ids [lo, hi).
func (l *ShardedLoader) LoadParallelRange(lo, hi, batch, clients int) error {
	// Route every id up front, then cut shard-pure batches.
	perShard := make([][]sqlledger.Row, l.DB.NumShards())
	for id := lo; id < hi; id++ {
		row := ShardedRow(int64(id))
		s := l.Table.ShardOf(row[0])
		perShard[s] = append(perShard[s], row)
	}
	type job struct{ rows []sqlledger.Row }
	jobs := make(chan job, (hi-lo)/batch+len(perShard)+1)
	for _, rows := range perShard {
		for lo := 0; lo < len(rows); lo += batch {
			hi := lo + batch
			if hi > len(rows) {
				hi = len(rows)
			}
			jobs <- job{rows: rows[lo:hi]}
		}
	}
	close(jobs)

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				tx := l.DB.Begin("load")
				if err := tx.InsertBatchParallel(l.Table, j.rows, 1); err != nil {
					tx.Rollback()
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return fmt.Errorf("workload: sharded load: %w", err)
	default:
		return nil
	}
}
