package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"sqlledger"
)

// ReadMostly is the read-path workload behind the read-scaling experiment:
// a preloaded keyed ledger table, reader clients that run MVCC snapshot
// read transactions (point Gets at random keys), and writer clients that
// keep the 2PL write path busy with single-row updates. Readers never
// touch the lock table, so rows-read/s should scale near-linearly with
// reader count while writers run undisturbed.
type ReadMostly struct {
	DB   *sqlledger.DB
	LT   *sqlledger.LedgerTable
	Rows int

	// RowsRead counts rows returned by reader transactions across all
	// clients (the experiment's primary metric).
	RowsRead atomic.Int64
}

// ReadsPerTx is how many point reads one reader transaction performs.
const ReadsPerTx = 16

func readMostlySchema() *sqlledger.Schema {
	return sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("id", sqlledger.TypeBigInt),
		sqlledger.Col("version", sqlledger.TypeBigInt),
		sqlledger.Col("payload", sqlledger.TypeVarChar),
	}, "id")
}

func readMostlyRow(id, version int64) sqlledger.Row {
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte('a' + (id+version+int64(i))%26)
	}
	return sqlledger.Row{
		sqlledger.BigInt(id), sqlledger.BigInt(version), sqlledger.VarChar(string(payload)),
	}
}

// NewReadMostly creates the workload table and preloads rows keyed
// 0..rows-1 through the bulk ingest path.
func NewReadMostly(db *sqlledger.DB, rows int) (*ReadMostly, error) {
	lt, err := db.CreateLedgerTable("readmostly", readMostlySchema(), sqlledger.Updateable)
	if err != nil {
		return nil, err
	}
	const perTx = 1000
	for lo := 0; lo < rows; lo += perTx {
		hi := lo + perTx
		if hi > rows {
			hi = rows
		}
		batch := make([]sqlledger.Row, 0, hi-lo)
		for id := lo; id < hi; id++ {
			batch = append(batch, readMostlyRow(int64(id), 0))
		}
		tx := db.Begin("load")
		if err := tx.InsertBatch(lt, batch); err != nil {
			tx.Rollback()
			return nil, err
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	return &ReadMostly{DB: db, LT: lt, Rows: rows}, nil
}

// Reader returns a client op running one snapshot read transaction of
// ReadsPerTx random point reads. Suitable for Drive/DriveN.
func (w *ReadMostly) Reader(seed int64) func() error {
	rng := rand.New(rand.NewSource(seed))
	return func() error {
		rtx := w.DB.BeginReadOnly()
		defer rtx.Close()
		for i := 0; i < ReadsPerTx; i++ {
			id := int64(rng.Intn(w.Rows))
			_, ok, err := rtx.Get(w.LT, sqlledger.BigInt(id))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("workload: row %d missing from snapshot", id)
			}
		}
		w.RowsRead.Add(ReadsPerTx)
		return nil
	}
}

// Writer returns a client op running one single-row update transaction at
// a random key, keeping row-version churn and 2PL lock traffic realistic
// while readers run.
func (w *ReadMostly) Writer(seed int64) func() error {
	rng := rand.New(rand.NewSource(seed))
	version := int64(0)
	return func() error {
		version++
		id := int64(rng.Intn(w.Rows))
		tx := w.DB.Begin("writer")
		if err := tx.Update(w.LT, readMostlyRow(id, version)); err != nil {
			tx.Rollback()
			return err
		}
		return tx.Commit()
	}
}
