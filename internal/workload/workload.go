// Package workload implements the two OLTP workloads the paper evaluates
// SQL Ledger with (§4.1): a TPC-C-like order-processing workload (update
// intensive — the worst case for the ledger) and a TPC-E-like brokerage
// workload (a more common read/write ratio). Each workload can run in
// ledger mode (the paper's SQL Ledger configuration) or regular mode (the
// traditional-SQL-Server baseline), so benchmarks can report the relative
// overhead that Figure 7 shows.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"sqlledger"
	"sqlledger/internal/engine"
	"sqlledger/internal/obs"
)

// Table abstracts over ledger and regular tables so workload transaction
// code is identical in both modes.
type Table struct {
	lt *sqlledger.LedgerTable
	et *engine.Table
}

// Session wraps a transaction with mode-dispatching DML.
type Session struct {
	tx *sqlledger.Tx
}

// Begin starts a workload transaction.
func (w *Common) Begin(user string) *Session { return &Session{tx: w.DB.Begin(user)} }

// Op annotates the transaction's trace with the workload operation name
// (e.g. "new_order"), so retained traces and slow-query entries identify
// the workload transaction they came from. Returns the session for
// chaining; a no-op when tracing is off.
func (s *Session) Op(name string) *Session {
	if tr := s.tx.Trace(); tr != nil {
		tr.SetAttr(obs.AttrStatement, name)
	}
	return s
}

// Commit commits the transaction.
func (s *Session) Commit() error { return s.tx.Commit() }

// Rollback abandons the transaction.
func (s *Session) Rollback() error { return s.tx.Rollback() }

// Insert adds a row.
func (s *Session) Insert(t *Table, row sqlledger.Row) error {
	if t.lt != nil {
		return s.tx.Insert(t.lt, row)
	}
	_, err := s.tx.Raw().Insert(t.et, row)
	return err
}

// InsertBatch adds many rows at once. In ledger mode this takes the
// bulk-DML fast path (parallel row hashing with order-preserving Merkle
// appends); regular tables fall back to a plain insert loop.
func (s *Session) InsertBatch(t *Table, rows []sqlledger.Row) error {
	if t.lt != nil {
		return s.tx.InsertBatch(t.lt, rows)
	}
	for _, row := range rows {
		if _, err := s.tx.Raw().Insert(t.et, row); err != nil {
			return err
		}
	}
	return nil
}

// Update replaces the row whose primary key matches row.
func (s *Session) Update(t *Table, row sqlledger.Row) error {
	if t.lt != nil {
		return s.tx.Update(t.lt, row)
	}
	_, err := s.tx.Raw().Update(t.et, row)
	return err
}

// Delete removes a row by primary key values.
func (s *Session) Delete(t *Table, key ...sqlledger.Value) error {
	if t.lt != nil {
		return s.tx.Delete(t.lt, key...)
	}
	_, err := s.tx.Raw().Delete(t.et, key...)
	return err
}

// Get reads a row by primary key values.
func (s *Session) Get(t *Table, key ...sqlledger.Value) (sqlledger.Row, bool, error) {
	if t.lt != nil {
		return s.tx.Get(t.lt, key...)
	}
	return s.tx.Raw().Get(t.et, key...)
}

// ScanPrefix iterates rows whose leading primary-key columns equal vals.
func (s *Session) ScanPrefix(t *Table, fn func(row sqlledger.Row) bool, vals ...sqlledger.Value) error {
	if t.lt != nil {
		return s.tx.ScanPrefix(t.lt, fn, vals...)
	}
	start, end := engine.PrefixRange(vals...)
	return s.tx.Raw().ScanRange(t.et, start, end, func(_ []byte, row sqlledger.Row) bool {
		return fn(row)
	})
}

// Common holds what both workloads share.
type Common struct {
	DB     *sqlledger.DB
	Ledger bool
	tables map[string]*Table
}

func newCommon(db *sqlledger.DB, ledger bool) *Common {
	return &Common{DB: db, Ledger: ledger, tables: make(map[string]*Table)}
}

// createTable creates a table in the configured mode. ledgerKind is
// consulted only when the workload runs in ledger mode AND the table is in
// the workload's ledger set; otherwise a regular table is created.
func (w *Common) createTable(name string, schema *sqlledger.Schema, asLedger bool) (*Table, error) {
	if w.Ledger && asLedger {
		lt, err := w.DB.CreateLedgerTable(name, schema, sqlledger.Updateable)
		if err != nil {
			return nil, err
		}
		t := &Table{lt: lt}
		w.tables[name] = t
		return t, nil
	}
	et, err := w.DB.Engine().CreateTable(engine.CreateTableSpec{Name: name, Schema: schema})
	if err != nil {
		return nil, err
	}
	t := &Table{et: et}
	w.tables[name] = t
	return t, nil
}

// Table returns a workload table by name.
func (w *Common) Table(name string) (*Table, error) {
	t, ok := w.tables[name]
	if !ok {
		return nil, fmt.Errorf("workload: table %q not found", name)
	}
	return t, nil
}

// filler returns a deterministic padding string of length n, used to give
// rows realistic widths (the paper's latency experiments use 260-byte
// rows).
func filler(rng *rand.Rand, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(letters[rng.Intn(len(letters))])
	}
	return b.String()
}

// uniform returns a uniformly random integer in [lo, hi].
func uniform(rng *rand.Rand, lo, hi int) int { return lo + rng.Intn(hi-lo+1) }

// nonUniform implements the TPC-C NURand non-uniform distribution.
func nonUniform(rng *rand.Rand, a, lo, hi int) int {
	c := a / 2
	return (((uniform(rng, 0, a) | uniform(rng, lo, hi)) + c) % (hi - lo + 1)) + lo
}
