package workload

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestDriveN(t *testing.T) {
	var calls atomic.Int64
	var clientsSeen atomic.Int64
	res := DriveN(4, 1000, func(id int) func() error {
		clientsSeen.Add(1)
		return func() error {
			if calls.Add(1)%10 == 0 {
				return errors.New("boom")
			}
			return nil
		}
	})
	if calls.Load() != 1000 {
		t.Fatalf("ops executed = %d, want exactly 1000", calls.Load())
	}
	if res.Commits+res.Errors != 1000 {
		t.Fatalf("commits(%d)+errors(%d) != 1000", res.Commits, res.Errors)
	}
	if res.Errors != 100 {
		t.Fatalf("errors = %d, want 100", res.Errors)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "boom") {
		t.Fatalf("aggregated Err = %v, want to contain the client error", res.Err)
	}
	if clientsSeen.Load() != 4 {
		t.Fatalf("newClient called %d times, want 4", clientsSeen.Load())
	}
	if res.TPS() <= 0 {
		t.Fatalf("TPS = %f, want > 0", res.TPS())
	}
}

func TestDriveDeadline(t *testing.T) {
	res := Drive(2, 20*time.Millisecond, func(id int) func() error {
		return func() error {
			time.Sleep(time.Millisecond)
			return nil
		}
	})
	if res.Commits == 0 {
		t.Fatal("no commits within the deadline")
	}
	if res.Elapsed < 20*time.Millisecond {
		t.Fatalf("elapsed %v shorter than the deadline", res.Elapsed)
	}
}
