package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"sqlledger"
)

// TPCC is the TPC-C-like order-processing workload (§4.1.1). Nine tables;
// in ledger mode the four order/payment-related tables become ledger
// tables, as in the paper: orders, order_line, new_order and the payment
// history table.
type TPCC struct {
	*Common
	Warehouses int

	warehouse, district, customer, history   *Table
	item, stock, orders, newOrder, orderLine *Table

	nextHistoryID atomic.Int64
}

// TPC-C scale constants (scaled down from spec defaults for laptop runs).
const (
	tpccDistrictsPerWarehouse = 10
	tpccCustomersPerDistrict  = 30
	tpccItems                 = 1000
	tpccInitialOrders         = 30
)

// NewTPCC creates and loads the TPC-C-like schema.
func NewTPCC(db *sqlledger.DB, ledger bool, warehouses int) (*TPCC, error) {
	if warehouses < 1 {
		warehouses = 1
	}
	t := &TPCC{Common: newCommon(db, ledger), Warehouses: warehouses}
	if err := t.createSchema(); err != nil {
		return nil, err
	}
	if err := t.load(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *TPCC) createSchema() error {
	var err error
	mk := func(name string, asLedger bool, schema *sqlledger.Schema) *Table {
		if err != nil {
			return nil
		}
		var tab *Table
		tab, err = t.createTable(name, schema, asLedger)
		return tab
	}
	t.warehouse = mk("tpcc_warehouse", false, sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("w_id", sqlledger.TypeBigInt),
		sqlledger.Col("w_name", sqlledger.TypeNVarChar),
		sqlledger.Col("w_ytd", sqlledger.TypeBigInt),
	}, "w_id"))
	t.district = mk("tpcc_district", false, sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("d_w_id", sqlledger.TypeBigInt),
		sqlledger.Col("d_id", sqlledger.TypeBigInt),
		sqlledger.Col("d_name", sqlledger.TypeNVarChar),
		sqlledger.Col("d_next_o_id", sqlledger.TypeBigInt),
		sqlledger.Col("d_ytd", sqlledger.TypeBigInt),
	}, "d_w_id", "d_id"))
	t.customer = mk("tpcc_customer", false, sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("c_w_id", sqlledger.TypeBigInt),
		sqlledger.Col("c_d_id", sqlledger.TypeBigInt),
		sqlledger.Col("c_id", sqlledger.TypeBigInt),
		sqlledger.Col("c_name", sqlledger.TypeNVarChar),
		sqlledger.Col("c_balance", sqlledger.TypeBigInt),
		sqlledger.Col("c_ytd_payment", sqlledger.TypeBigInt),
		sqlledger.Col("c_payment_cnt", sqlledger.TypeBigInt),
		sqlledger.Col("c_data", sqlledger.TypeNVarChar),
	}, "c_w_id", "c_d_id", "c_id"))
	t.item = mk("tpcc_item", false, sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("i_id", sqlledger.TypeBigInt),
		sqlledger.Col("i_name", sqlledger.TypeNVarChar),
		sqlledger.Col("i_price", sqlledger.TypeBigInt),
	}, "i_id"))
	t.stock = mk("tpcc_stock", false, sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("s_w_id", sqlledger.TypeBigInt),
		sqlledger.Col("s_i_id", sqlledger.TypeBigInt),
		sqlledger.Col("s_quantity", sqlledger.TypeBigInt),
		sqlledger.Col("s_ytd", sqlledger.TypeBigInt),
		sqlledger.Col("s_order_cnt", sqlledger.TypeBigInt),
	}, "s_w_id", "s_i_id"))

	// The four order/payment tables the paper converts to ledger tables.
	t.history = mk("tpcc_payment_history", true, sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("h_id", sqlledger.TypeBigInt),
		sqlledger.Col("h_c_w_id", sqlledger.TypeBigInt),
		sqlledger.Col("h_c_d_id", sqlledger.TypeBigInt),
		sqlledger.Col("h_c_id", sqlledger.TypeBigInt),
		sqlledger.Col("h_amount", sqlledger.TypeBigInt),
		sqlledger.Col("h_date", sqlledger.TypeDateTime),
		sqlledger.Col("h_data", sqlledger.TypeNVarChar),
	}, "h_id"))
	t.orders = mk("tpcc_orders", true, sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("o_w_id", sqlledger.TypeBigInt),
		sqlledger.Col("o_d_id", sqlledger.TypeBigInt),
		sqlledger.Col("o_id", sqlledger.TypeBigInt),
		sqlledger.Col("o_c_id", sqlledger.TypeBigInt),
		sqlledger.Col("o_entry_d", sqlledger.TypeDateTime),
		sqlledger.NullableCol("o_carrier_id", sqlledger.TypeBigInt),
		sqlledger.Col("o_ol_cnt", sqlledger.TypeBigInt),
	}, "o_w_id", "o_d_id", "o_id"))
	t.newOrder = mk("tpcc_new_order", true, sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("no_w_id", sqlledger.TypeBigInt),
		sqlledger.Col("no_d_id", sqlledger.TypeBigInt),
		sqlledger.Col("no_o_id", sqlledger.TypeBigInt),
	}, "no_w_id", "no_d_id", "no_o_id"))
	t.orderLine = mk("tpcc_order_line", true, sqlledger.MustSchema([]sqlledger.Column{
		sqlledger.Col("ol_w_id", sqlledger.TypeBigInt),
		sqlledger.Col("ol_d_id", sqlledger.TypeBigInt),
		sqlledger.Col("ol_o_id", sqlledger.TypeBigInt),
		sqlledger.Col("ol_number", sqlledger.TypeBigInt),
		sqlledger.Col("ol_i_id", sqlledger.TypeBigInt),
		sqlledger.Col("ol_quantity", sqlledger.TypeBigInt),
		sqlledger.Col("ol_amount", sqlledger.TypeBigInt),
		sqlledger.NullableCol("ol_delivery_d", sqlledger.TypeDateTime),
	}, "ol_w_id", "ol_d_id", "ol_o_id", "ol_number"))
	return err
}

func (t *TPCC) load() error {
	rng := rand.New(rand.NewSource(42))
	now := time.Now()
	s := t.Begin("loader")
	flush := func() error {
		if err := s.Commit(); err != nil {
			return err
		}
		s = t.Begin("loader")
		return nil
	}
	// Seed rows are ingested in chunks through InsertBatch: one batch per
	// transaction, so in ledger mode row hashing fans out across cores
	// while the Merkle append order stays serial.
	const chunk = 500
	batch := make([]sqlledger.Row, 0, chunk)
	flushBatch := func(tb *Table) error {
		if len(batch) == 0 {
			return nil
		}
		if err := s.InsertBatch(tb, batch); err != nil {
			return err
		}
		batch = batch[:0]
		return flush()
	}
	for i := 1; i <= tpccItems; i++ {
		batch = append(batch, sqlledger.Row{
			sqlledger.BigInt(int64(i)),
			sqlledger.NVarChar(fmt.Sprintf("item-%d-%s", i, filler(rng, 12))),
			sqlledger.BigInt(int64(uniform(rng, 100, 10000))),
		})
		if len(batch) == chunk {
			if err := flushBatch(t.item); err != nil {
				return err
			}
		}
	}
	if err := flushBatch(t.item); err != nil {
		return err
	}
	hID := int64(0)
	for w := 1; w <= t.Warehouses; w++ {
		if err := s.Insert(t.warehouse, sqlledger.Row{
			sqlledger.BigInt(int64(w)),
			sqlledger.NVarChar(fmt.Sprintf("warehouse-%d", w)),
			sqlledger.BigInt(0),
		}); err != nil {
			return err
		}
		for i := 1; i <= tpccItems; i++ {
			batch = append(batch, sqlledger.Row{
				sqlledger.BigInt(int64(w)), sqlledger.BigInt(int64(i)),
				sqlledger.BigInt(int64(uniform(rng, 10, 100))),
				sqlledger.BigInt(0), sqlledger.BigInt(0),
			})
			if len(batch) == chunk {
				if err := flushBatch(t.stock); err != nil {
					return err
				}
			}
		}
		if err := flushBatch(t.stock); err != nil {
			return err
		}
		for d := 1; d <= tpccDistrictsPerWarehouse; d++ {
			if err := s.Insert(t.district, sqlledger.Row{
				sqlledger.BigInt(int64(w)), sqlledger.BigInt(int64(d)),
				sqlledger.NVarChar(fmt.Sprintf("district-%d-%d", w, d)),
				sqlledger.BigInt(tpccInitialOrders + 1),
				sqlledger.BigInt(0),
			}); err != nil {
				return err
			}
			for c := 1; c <= tpccCustomersPerDistrict; c++ {
				batch = append(batch, sqlledger.Row{
					sqlledger.BigInt(int64(w)), sqlledger.BigInt(int64(d)), sqlledger.BigInt(int64(c)),
					sqlledger.NVarChar(fmt.Sprintf("customer-%d-%d-%d", w, d, c)),
					sqlledger.BigInt(-1000), sqlledger.BigInt(1000), sqlledger.BigInt(1),
					sqlledger.NVarChar(filler(rng, 100)),
				})
			}
			if err := flushBatch(t.customer); err != nil {
				return err
			}
			// Seed a few historical payments so deliveries have targets.
			for k := 0; k < 3; k++ {
				hID++
				batch = append(batch, sqlledger.Row{
					sqlledger.BigInt(hID),
					sqlledger.BigInt(int64(w)), sqlledger.BigInt(int64(d)),
					sqlledger.BigInt(int64(uniform(rng, 1, tpccCustomersPerDistrict))),
					sqlledger.BigInt(int64(uniform(rng, 100, 5000))),
					sqlledger.DateTime(now),
					sqlledger.NVarChar(filler(rng, 24)),
				})
			}
			if err := flushBatch(t.history); err != nil {
				return err
			}
		}
	}
	t.nextHistoryID.Store(hID)
	return s.Commit()
}

// State carried across transactions by a single driver goroutine.
type TPCCClient struct {
	t   *TPCC
	rng *rand.Rand
	// Stats
	Commits, Aborts int
}

// NewClient creates a driver client with its own RNG.
func (t *TPCC) NewClient(seed int64) *TPCCClient {
	return &TPCCClient{t: t, rng: rand.New(rand.NewSource(seed))}
}

// RunOne executes one transaction drawn from the standard TPC-C mix
// (45% NewOrder, 43% Payment, 4% OrderStatus, 4% Delivery, 4% StockLevel).
func (c *TPCCClient) RunOne() error {
	var err error
	switch x := c.rng.Intn(100); {
	case x < 45:
		err = c.t.NewOrder(c.rng)
	case x < 88:
		err = c.t.Payment(c.rng)
	case x < 92:
		err = c.t.OrderStatus(c.rng)
	case x < 96:
		err = c.t.Delivery(c.rng)
	default:
		err = c.t.StockLevel(c.rng)
	}
	if err != nil {
		c.Aborts++
		return err
	}
	c.Commits++
	return nil
}
