package blobstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func stores(t *testing.T) map[string]Store {
	t.Helper()
	d, err := NewDir(filepath.Join(t.TempDir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"memory": NewMemory(), "dir": d}
}

func TestPutGetList(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("db/1/block-1.json", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("db/1/block-2.json", []byte("two")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("other/x", []byte("y")); err != nil {
				t.Fatal(err)
			}
			b, err := s.Get("db/1/block-1.json")
			if err != nil || string(b) != "one" {
				t.Fatalf("get = %q, %v", b, err)
			}
			names, err := s.List("db/")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(names) != "[db/1/block-1.json db/1/block-2.json]" {
				t.Fatalf("list = %v", names)
			}
		})
	}
}

func TestImmutability(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("a", []byte("original")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("a", []byte("overwrite")); !errors.Is(err, ErrImmutable) {
				t.Fatalf("overwrite: %v", err)
			}
			b, _ := s.Get("a")
			if string(b) != "original" {
				t.Fatalf("blob changed: %q", b)
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing get: %v", err)
			}
		})
	}
}

func TestCallerCannotMutateStoredBytes(t *testing.T) {
	s := NewMemory()
	data := []byte("abc")
	s.Put("k", data)
	data[0] = 'X' // caller mutates the slice after Put
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("Put did not copy the data")
	}
	got[0] = 'Y' // caller mutates the slice from Get
	got2, _ := s.Get("k")
	if string(got2) != "abc" {
		t.Fatal("Get did not copy the data")
	}
}

func TestDirRejectsEscapingNames(t *testing.T) {
	d, err := NewDir(filepath.Join(t.TempDir(), "root"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("../escape", []byte("x")); err == nil {
		t.Fatal("path escape accepted")
	}
	if err := d.Put("/abs", []byte("x")); err == nil {
		t.Fatal("absolute path accepted")
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := NewMemory()
	var wg sync.WaitGroup
	wins := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins <- s.Put("contested", []byte(fmt.Sprint(i)))
		}(i)
	}
	wg.Wait()
	close(wins)
	ok := 0
	for err := range wins {
		if err == nil {
			ok++
		}
	}
	if ok != 1 {
		t.Fatalf("%d concurrent puts succeeded, want exactly 1", ok)
	}
}

func TestZeroValueMemoryUsable(t *testing.T) {
	var s Memory
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatal("len wrong")
	}
}
