// Package blobstore simulates Azure Immutable Blob Storage (§2.4, §3.6):
// a write-once, append-only blob namespace that rejects any modification
// or deletion after a blob is written — including by the "cloud provider".
// SQL Ledger uploads database digests here so that even an adversary with
// full control of the database server cannot rewrite history undetected.
//
// Two implementations are provided: an in-memory store for tests and
// simulations, and a file-backed store whose trust boundary is a separate
// directory (in a real deployment: a separate service).
package blobstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store errors.
var (
	// ErrImmutable is returned on any attempt to overwrite or delete an
	// existing blob.
	ErrImmutable = errors.New("blobstore: blobs are immutable")
	// ErrNotFound is returned when a blob does not exist.
	ErrNotFound = errors.New("blobstore: blob not found")
)

// Store is an immutable, append-only blob store.
type Store interface {
	// Put writes a new blob. Writing to an existing name fails with
	// ErrImmutable.
	Put(name string, data []byte) error
	// Get reads a blob.
	Get(name string) ([]byte, error)
	// List returns the names of all blobs with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// Memory is an in-memory Store. The zero value is ready to use.
type Memory struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{m: make(map[string][]byte)} }

// Put implements Store.
func (s *Memory) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string][]byte)
	}
	if _, exists := s.m[name]; exists {
		return fmt.Errorf("%w: %s", ErrImmutable, name)
	}
	s.m[name] = append([]byte(nil), data...)
	return nil
}

// Get implements Store.
func (s *Memory) Get(name string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.m[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return append([]byte(nil), b...), nil
}

// List implements Store.
func (s *Memory) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for name := range s.m {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Len returns the number of blobs stored.
func (s *Memory) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Dir is a file-backed Store rooted at a directory. Blob names map to
// file paths; path separators in names create subdirectories. Existing
// files are never overwritten.
type Dir struct {
	root string
	mu   sync.Mutex
}

// NewDir returns a file-backed store rooted at root (created if needed).
func NewDir(root string) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("blobstore: %w", err)
	}
	return &Dir{root: root}, nil
}

func (s *Dir) path(name string) (string, error) {
	clean := filepath.Clean(filepath.FromSlash(name))
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("blobstore: invalid blob name %q", name)
	}
	return filepath.Join(s.root, clean), nil
}

// Put implements Store.
func (s *Dir) Put(name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(p); err == nil {
		return fmt.Errorf("%w: %s", ErrImmutable, name)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o444); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Get implements Store.
func (s *Dir) Get(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return b, err
}

// List implements Store.
func (s *Dir) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.Walk(s.root, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || strings.HasSuffix(p, ".tmp") {
			return err
		}
		rel, rerr := filepath.Rel(s.root, p)
		if rerr != nil {
			return rerr
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
