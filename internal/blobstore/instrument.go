package blobstore

import (
	"errors"
	"time"

	"sqlledger/internal/obs"
)

// instrumented wraps a Store and records per-operation counters, latency
// histograms, byte counts and error counts labelled by op.
type instrumented struct {
	inner  Store
	events *obs.EventLog
	put    opMetrics
	get    opMetrics
	list   opMetrics
}

type opMetrics struct {
	ops     *obs.Counter
	seconds *obs.Histogram
	errors  *obs.Counter
	bytes   *obs.Counter
}

func bindOpMetrics(reg *obs.Registry, op string) opMetrics {
	l := obs.L("op", op)
	return opMetrics{
		ops:     reg.Counter(obs.BlobstoreOpsTotal, l),
		seconds: reg.Histogram(obs.BlobstoreOpSeconds, nil, l),
		errors:  reg.Counter(obs.BlobstoreErrorsTotal, l),
		bytes:   reg.Counter(obs.BlobstoreBytesTotal, l),
	}
}

// Instrument wraps s so every Put/Get/List records into reg. A nil or
// disabled registry still returns a working wrapper whose metrics are
// inert, so callers never branch.
func Instrument(s Store, reg *obs.Registry) Store {
	return &instrumented{
		inner:  s,
		events: reg.Events(),
		put:    bindOpMetrics(reg, "put"),
		get:    bindOpMetrics(reg, "get"),
		list:   bindOpMetrics(reg, "list"),
	}
}

func (s *instrumented) Put(name string, data []byte) error {
	start := time.Now()
	err := s.inner.Put(name, data)
	s.put.seconds.ObserveSince(start)
	s.put.ops.Inc()
	if err != nil {
		s.put.errors.Inc()
		// ErrImmutable is immutability working as intended (digest
		// re-uploads probe for it), not an operational failure.
		if !errors.Is(err, ErrImmutable) {
			s.events.Warn(obs.EventBlobstoreError, "op", "put", "name", name, "err", err.Error())
		}
	} else {
		s.put.bytes.Add(int64(len(data)))
	}
	return err
}

func (s *instrumented) Get(name string) ([]byte, error) {
	start := time.Now()
	b, err := s.inner.Get(name)
	s.get.seconds.ObserveSince(start)
	s.get.ops.Inc()
	if err != nil {
		s.get.errors.Inc()
		if !errors.Is(err, ErrNotFound) {
			s.events.Warn(obs.EventBlobstoreError, "op", "get", "name", name, "err", err.Error())
		}
	} else {
		s.get.bytes.Add(int64(len(b)))
	}
	return b, err
}

func (s *instrumented) List(prefix string) ([]string, error) {
	start := time.Now()
	names, err := s.inner.List(prefix)
	s.list.seconds.ObserveSince(start)
	s.list.ops.Inc()
	if err != nil {
		s.list.errors.Inc()
		s.events.Warn(obs.EventBlobstoreError, "op", "list", "name", prefix, "err", err.Error())
	}
	return names, err
}
