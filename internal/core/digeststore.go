package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sqlledger/internal/blobstore"
)

// Digest management (§2.4, §3.6): digests are periodically uploaded to
// immutable storage, namespaced by database name and incarnation (the
// database "create time"), so that digests survive point-in-time restores
// and users can see when a restore happened.

// digestBlobName builds the blob path for a digest.
func digestBlobName(dbName string, incarnation int64, blockID uint64) string {
	return fmt.Sprintf("%s/%d/block-%016d.json", dbName, incarnation, blockID)
}

// UploadDigest generates a digest and stores it in immutable storage. If
// the latest block's digest was already uploaded (no new transactions),
// it returns the existing digest without writing.
func (l *LedgerDB) UploadDigest(store blobstore.Store) (Digest, error) {
	store = blobstore.Instrument(store, l.obs)
	start := time.Now()
	d, err := l.GenerateDigest()
	if err != nil {
		return Digest{}, err
	}
	defer func() {
		l.m.digestUploadSeconds.ObserveSince(start)
		l.m.digestUploads.Inc()
	}()
	name := digestBlobName(d.DatabaseName, d.Incarnation, d.BlockID)
	if err := store.Put(name, d.JSON()); err != nil {
		if b, gerr := store.Get(name); gerr == nil {
			// Already uploaded for this block; immutability holds as long
			// as the stored digest matches.
			prev, perr := ParseDigest(b)
			if perr == nil && prev.Hash == d.Hash {
				l.noteDigestUploaded(prev, name)
				return prev, nil
			}
			return Digest{}, fmt.Errorf("core: immutable store already holds a DIFFERENT digest for block %d — forked ledger", d.BlockID)
		}
		return Digest{}, err
	}
	l.noteDigestUploaded(d, name)
	return d, nil
}

// StoredDigests loads every digest previously uploaded for this database,
// across all incarnations, sorted by (incarnation, block id). This is the
// input set for verification after restores (§3.6).
func (l *LedgerDB) StoredDigests(store blobstore.Store) ([]Digest, error) {
	store = blobstore.Instrument(store, l.obs)
	names, err := store.List(l.opts.Name + "/")
	if err != nil {
		return nil, err
	}
	out := make([]Digest, 0, len(names))
	for _, n := range names {
		b, err := store.Get(n)
		if err != nil {
			return nil, err
		}
		d, err := ParseDigest(b)
		if err != nil {
			return nil, fmt.Errorf("core: blob %s: %w", n, err)
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Incarnation != out[j].Incarnation {
			return out[i].Incarnation < out[j].Incarnation
		}
		return out[i].BlockID < out[j].BlockID
	})
	return out, nil
}

// VerifyFromStore downloads all stored digests and runs verification with
// them — the automated end of the digest-management loop.
func (l *LedgerDB) VerifyFromStore(store blobstore.Store, opts VerifyOptions) (*Report, error) {
	digests, err := l.StoredDigests(store)
	if err != nil {
		return nil, err
	}
	return l.Verify(digests, opts)
}

// DigestUploader periodically uploads digests to immutable storage — the
// automation the paper describes uploading "every few seconds" (§2.4).
// Each successful upload is also checked for derivability from the
// previous one, catching ledger forks at digest-generation time rather
// than at the next full verification (§3.3.1, requirement 3).
type DigestUploader struct {
	l     *LedgerDB
	store blobstore.Store

	mu      sync.Mutex
	last    *Digest
	stopCh  chan struct{}
	doneCh  chan struct{}
	uploads int
	errs    []error
}

// NewDigestUploader creates an uploader writing to store.
func NewDigestUploader(l *LedgerDB, store blobstore.Store) *DigestUploader {
	return &DigestUploader{l: l, store: store}
}

// UploadOnce generates, fork-checks and uploads a single digest.
func (u *DigestUploader) UploadOnce() (Digest, error) {
	d, err := u.l.UploadDigest(u.store)
	if err != nil {
		return Digest{}, err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.last != nil && u.last.Incarnation == d.Incarnation {
		if err := u.l.VerifyDigestDerivation(*u.last, d); err != nil {
			return Digest{}, fmt.Errorf("core: digest fork check failed: %w", err)
		}
	}
	u.last = &d
	u.uploads++
	return d, nil
}

// Start launches periodic uploads at the given interval; Stop ends them.
func (u *DigestUploader) Start(interval time.Duration) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.stopCh != nil {
		return
	}
	u.stopCh = make(chan struct{})
	u.doneCh = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if _, err := u.UploadOnce(); err != nil && err != ErrEmptyLedger {
					u.mu.Lock()
					u.errs = append(u.errs, err)
					u.mu.Unlock()
				}
			}
		}
	}(u.stopCh, u.doneCh)
}

// Stop halts periodic uploads and waits for the loop to exit.
func (u *DigestUploader) Stop() {
	u.mu.Lock()
	stop, done := u.stopCh, u.doneCh
	u.stopCh, u.doneCh = nil, nil
	u.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Uploads returns the number of successful uploads.
func (u *DigestUploader) Uploads() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.uploads
}

// Errs returns upload errors accumulated by the periodic loop.
func (u *DigestUploader) Errs() []error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return append([]error(nil), u.errs...)
}
