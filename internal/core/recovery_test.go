package core

import (
	"testing"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// TestReopenMidBlock commits into a partially filled block, "crashes"
// (closes without a checkpoint), reopens and checks that the queue is
// rebuilt from COMMIT records and verification passes.
func TestReopenMidBlock(t *testing.T) {
	dir := t.TempDir()
	l := openLedgerAt(t, dir, 10)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	for i := 0; i < 4; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
	}
	l.Close()

	l2 := openLedgerAt(t, dir, 10)
	lt2, err := l2.LedgerTable("accounts")
	if err != nil {
		t.Fatal(err)
	}
	if lt2.Table().RowCount() != 4 {
		t.Fatalf("rows after reopen = %d", lt2.Table().RowCount())
	}
	// All four transactions must still be reachable in the ledger.
	d, err := l2.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l2, []Digest{d})
	// And new transactions continue in the right block position.
	tx := l2.Begin("u")
	tx.Insert(lt2, account("post-crash", 5))
	mustCommit(t, tx)
	d2, err := l2.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.VerifyDigestDerivation(d, d2); err != nil {
		t.Fatalf("chain continuity broken across reopen: %v", err)
	}
	verifyOK(t, l2, []Digest{d, d2})
}

// TestReopenAfterCheckpoint exercises the drain-at-checkpoint path: the
// queue is persisted to the system table inside the snapshot; after reopen
// nothing is lost and no entry is duplicated.
func TestReopenAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l := openLedgerAt(t, dir, 5)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	for i := 0; i < 7; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint commits live only in the WAL.
	for i := 7; i < 9; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
	}
	l.Close()

	l2 := openLedgerAt(t, dir, 5)
	d, err := l2.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	rep := verifyOK(t, l2, []Digest{d})
	// 9 user txs + metadata registration txs; just ensure nothing is
	// missing or duplicated by checking row/entry consistency held.
	if rep.TransactionsChecked < 9 {
		t.Fatalf("transactions checked = %d", rep.TransactionsChecked)
	}
}

// TestDigestSurvivesReopen: a digest generated before a clean reopen still
// verifies afterwards (blocks are durable via the WAL-logged block table).
func TestDigestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l := openLedgerAt(t, dir, 3)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 6)
	l.Close()

	l2 := openLedgerAt(t, dir, 3)
	verifyOK(t, l2, []Digest{d})
}

// TestTamperSurvivesOnlyUntilVerification: tamper, checkpoint (persisting
// the tampered state), reopen — verification still catches it because the
// hashes were recorded before the tampering.
func TestTamperPersistedAcrossReopenStillDetected(t *testing.T) {
	dir := t.TempDir()
	l := openLedgerAt(t, dir, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 5)
	key := firstKeyOf(t, lt.Table())
	l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(666)
		return r
	}, true)
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := openLedgerAt(t, dir, 100)
	verifyFails(t, l2, []Digest{d}, 4)
}

// TestLargeBlockBoundary drives exactly BlockSize transactions and checks
// the block closes with the right count, plus the next tx starts block 2.
func TestBlockBoundary(t *testing.T) {
	l := openTestLedger(t, 4)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	// Metadata registration already used some slots; fill up with user
	// transactions and force closes via digest.
	for i := 0; i < 9; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
	}
	d, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	// All closed blocks must be dense: count recorded == entries present,
	// which verification checks; and the digest block must be the last.
	rep := verifyOK(t, l, []Digest{d})
	if rep.BlocksChecked < 2 {
		t.Fatalf("expected multiple blocks, got %d", rep.BlocksChecked)
	}
	var maxBlock int64 = -1
	l.sysBlocks.Scan(func(_ []byte, r sqltypes.Row) bool {
		if r[0].Int() > maxBlock {
			maxBlock = r[0].Int()
		}
		return true
	})
	if uint64(maxBlock) != d.BlockID {
		t.Fatalf("digest block %d != max block %d", d.BlockID, maxBlock)
	}
}

// TestConcurrentLedgerCommits checks the commit-path block assignment and
// queue under concurrency, then verifies.
func TestConcurrentLedgerCommits(t *testing.T) {
	l := openTestLedger(t, 8)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	const goroutines = 6
	const perG = 20
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				tx := l.Begin("worker")
				if err := tx.Insert(lt, account(acctName(g*100+i)+string(rune('a'+g)), int64(i))); err != nil {
					errCh <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	d, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l, []Digest{d})
}
