package core

import (
	"fmt"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// Schema changes on ledger tables (§3.5). Physical changes (indexes) go
// straight to the engine: hashes cover logical data only. Logical changes
// must preserve every hash already recorded in the ledger:
//
//   - Adding a nullable column is hash-compatible because NULLs are
//     skipped during serialization (§3.5.1).
//   - Dropping a column or table renames/hides the object; the data stays
//     for verification and auditing (§3.5.2).
//   - Altering a column type is drop + add + repopulate (§3.5.3).
//
// Every change is recorded in the ledger metadata system tables, so the
// operations themselves are tamper-evident (Figure 6).

// AddColumn appends a nullable column to a ledger table (and its history
// table). Existing row hashes are unaffected: the new column is NULL for
// existing rows and NULLs never enter the serialization.
func (l *LedgerDB) AddColumn(lt *LedgerTable, col sqltypes.Column) error {
	if !col.Nullable {
		return fmt.Errorf("core: added column %q must be nullable", col.Name)
	}
	if isReservedColumn(col.Name) {
		return fmt.Errorf("core: column name %q is reserved", col.Name)
	}
	if lt.table.Schema().OrdinalOf(col.Name) >= 0 {
		return fmt.Errorf("core: column %q already exists in %s", col.Name, lt.Name())
	}
	addTo := func(tableID uint32) (int, error) {
		var ord int
		err := l.edb.AlterTableMeta(tableID, func(m *engine.TableMeta) error {
			c := col
			c.Ordinal = len(m.Schema.Columns)
			ord = c.Ordinal
			m.Schema.Columns = append(m.Schema.Columns, c)
			return nil
		})
		return ord, err
	}
	ord, err := addTo(lt.table.ID())
	if err != nil {
		return err
	}
	if lt.history != nil {
		hOrd, err := addTo(lt.history.ID())
		if err != nil {
			return err
		}
		if hOrd != ord {
			return fmt.Errorf("core: ledger/history column ordinals diverged (%d vs %d)", ord, hOrd)
		}
	}
	if err := l.storeViewDefinition(lt); err != nil {
		return err
	}
	if lt.table.Meta().System {
		return nil
	}
	tx := l.Begin("system")
	defer tx.Rollback()
	if err := tx.Insert(l.metaColumns, sqltypes.Row{
		sqltypes.NewBigInt(int64(lt.ID())),
		sqltypes.NewBigInt(int64(ord)),
		sqltypes.NewNVarChar(col.Name),
		sqltypes.NewNVarChar(col.Type.String()),
		sqltypes.NewBit(col.Nullable),
	}); err != nil {
		return err
	}
	return tx.Commit()
}

// droppedColumnName mangles a dropped column's name so a future column can
// reuse the original name.
func droppedColumnName(name string, ordinal int) string {
	return fmt.Sprintf("MS_DroppedColumn_%s_%d", name, ordinal)
}

// DropColumn logically drops a column: it is hidden from applications and
// renamed, but its data remains available to verification and the ledger
// views (§3.5.2).
func (l *LedgerDB) DropColumn(lt *LedgerTable, name string) error {
	ord := lt.table.Schema().OrdinalOf(name)
	if ord < 0 {
		return fmt.Errorf("core: column %q not found in %s", name, lt.Name())
	}
	if lt.table.Schema().Columns[ord].Hidden {
		return fmt.Errorf("core: column %q is a system column", name)
	}
	for _, k := range lt.table.Schema().Key {
		if k == ord {
			return fmt.Errorf("core: cannot drop primary-key column %q", name)
		}
	}
	drop := func(tableID uint32) error {
		return l.edb.AlterTableMeta(tableID, func(m *engine.TableMeta) error {
			c := &m.Schema.Columns[ord]
			c.Dropped = true
			c.Name = droppedColumnName(c.Name, ord)
			return nil
		})
	}
	if err := drop(lt.table.ID()); err != nil {
		return err
	}
	if lt.history != nil {
		if err := drop(lt.history.ID()); err != nil {
			return err
		}
	}
	if err := l.storeViewDefinition(lt); err != nil {
		return err
	}
	if lt.table.Meta().System {
		return nil
	}
	// Record the drop: delete the column's metadata row (the deletion
	// itself lands in the metadata table's history — Figure 6 semantics).
	tx := l.Begin("system")
	defer tx.Rollback()
	if err := tx.Delete(l.metaColumns,
		sqltypes.NewBigInt(int64(lt.ID())), sqltypes.NewBigInt(int64(ord))); err != nil {
		return err
	}
	return tx.Commit()
}

// AlterColumnType changes a column's data type by dropping the old column,
// adding a new one with the original name, and repopulating it row by row
// through regular ledger DML using convert (§3.5.3). The repopulation is
// one ledger transaction: every affected row version lands in the history
// table and the ledger like any application update.
func (l *LedgerDB) AlterColumnType(lt *LedgerTable, name string, newType sqltypes.TypeID, convert func(sqltypes.Value) (sqltypes.Value, error)) error {
	if lt.Kind() == engine.LedgerAppendOnly {
		return fmt.Errorf("%w: cannot alter column types of %s", ErrAppendOnly, lt.Name())
	}
	oldOrd := lt.table.Schema().OrdinalOf(name)
	if oldOrd < 0 {
		return fmt.Errorf("core: column %q not found in %s", name, lt.Name())
	}
	if err := l.DropColumn(lt, name); err != nil {
		return err
	}
	if err := l.AddColumn(lt, sqltypes.Column{Name: name, Type: newType, Nullable: true}); err != nil {
		return err
	}
	// New column is appended, so it is the last visible column.
	newVisPos := len(lt.table.Schema().VisibleColumns()) - 1

	// Repopulate: read the pre-change value from the dropped column (it
	// is still stored) and write the converted value through regular DML.
	tx := l.Begin("system")
	defer tx.Rollback()
	var updates []sqltypes.Row
	var convErr error
	err := tx.etx.Scan(lt.table, func(_ []byte, full sqltypes.Row) bool {
		nv, cerr := convert(full[oldOrd])
		if cerr != nil {
			convErr = fmt.Errorf("core: converting %s of row %s: %w", name, full, cerr)
			return false
		}
		// The visible row no longer contains the dropped column; the new
		// column sits at the end.
		nvis := lt.VisibleRow(full).Clone()
		nvis[newVisPos] = nv
		updates = append(updates, nvis)
		return true
	})
	if err != nil {
		return err
	}
	if convErr != nil {
		return convErr
	}
	for _, u := range updates {
		if err := tx.Update(lt, u); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// droppedTableName mangles a dropped table's name (Figure 6 uses the
// MS_DroppedTable_ prefix).
func droppedTableName(name string, id uint32) string {
	return fmt.Sprintf("MS_DroppedTable_%s_%d", name, id)
}

// DropLedgerTable logically drops a ledger table: the table (and its
// history table) is renamed and hidden from the application namespace,
// but its data remains in the database for verification and auditing
// (§3.5.2). The drop is recorded in the metadata ledger so users can
// distinguish an intentional drop from the drop-and-replace attack the
// paper describes.
func (l *LedgerDB) DropLedgerTable(name string) error {
	lt, err := l.LedgerTable(name)
	if err != nil {
		return err
	}
	if lt.table.Meta().System {
		return fmt.Errorf("core: cannot drop system table %s", name)
	}
	rename := func(tableID uint32) error {
		return l.edb.AlterTableMeta(tableID, func(m *engine.TableMeta) error {
			m.Dropped = true
			m.OriginalName = m.Name
			m.Name = droppedTableName(m.Name, m.ID)
			return nil
		})
	}
	if err := rename(lt.table.ID()); err != nil {
		return err
	}
	if lt.history != nil {
		if err := rename(lt.history.ID()); err != nil {
			return err
		}
	}
	// The rename changes the canonical view definition; refresh it so
	// verification does not mistake the legitimate DDL for tampering.
	if err := l.storeViewDefinition(lt); err != nil {
		return err
	}
	// Record the drop in the metadata ledger (Figure 6): delete the
	// table's row and its column rows; the deletions are preserved in the
	// metadata history tables.
	tx := l.Begin("system")
	defer tx.Rollback()
	if err := tx.Delete(l.metaTables, sqltypes.NewBigInt(int64(lt.ID()))); err != nil {
		return err
	}
	var colOrds []int64
	verr := tx.etx.Scan(l.metaColumns.table, func(_ []byte, full sqltypes.Row) bool {
		if uint64(full[0].Int()) == uint64(lt.ID()) {
			colOrds = append(colOrds, full[1].Int())
		}
		return true
	})
	if verr != nil {
		return verr
	}
	for _, ord := range colOrds {
		if err := tx.Delete(l.metaColumns,
			sqltypes.NewBigInt(int64(lt.ID())), sqltypes.NewBigInt(ord)); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// TableOperation is one row of the table-metadata ledger view (Figure 6).
type TableOperation struct {
	TableName string
	TableID   uint32
	Operation string // "CREATE" or "DROP"
	TxID      uint64
}

// TableOperations reports every CREATE/DROP of a ledger table, derived
// from the metadata ledger view — what users consult to detect the
// drop-and-replace attack (§3.5.2).
func (l *LedgerDB) TableOperations() []TableOperation {
	var out []TableOperation
	for _, vr := range l.metaTables.LedgerView() {
		op := "CREATE"
		if vr.Operation == "DELETE" {
			op = "DROP"
		}
		out = append(out, TableOperation{
			TableName: vr.Row[1].Str,
			TableID:   uint32(vr.Row[0].Int()),
			Operation: op,
			TxID:      vr.TxID,
		})
	}
	return out
}
