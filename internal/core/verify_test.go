package core

import (
	"strings"
	"testing"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// seedAccounts commits n single-insert transactions and returns a digest.
func seedAccounts(t *testing.T, l *LedgerDB, lt *LedgerTable, n int) Digest {
	t.Helper()
	for i := 0; i < n; i++ {
		tx := l.Begin("seed")
		if err := tx.Insert(lt, account(acctName(i), int64(i*10))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	d, err := l.GenerateDigest()
	if err != nil {
		t.Fatalf("digest: %v", err)
	}
	return d
}

func acctName(i int) string { return "acct-" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }

func firstKeyOf(t *testing.T, tab *engine.Table) []byte {
	t.Helper()
	var key []byte
	tab.Scan(func(k []byte, _ sqltypes.Row) bool {
		key = append([]byte(nil), k...)
		return false
	})
	if key == nil {
		t.Fatal("table is empty")
	}
	return key
}

func TestVerifyCleanMultiBlock(t *testing.T) {
	l := openTestLedger(t, 3) // tiny blocks: force several
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 10)
	rep := verifyOK(t, l, []Digest{d})
	if rep.BlocksChecked < 3 {
		t.Fatalf("blocks checked = %d, want several", rep.BlocksChecked)
	}
	if rep.TransactionsChecked < 10 {
		t.Fatalf("transactions checked = %d", rep.TransactionsChecked)
	}
	_ = lt
}

// --- Invariant 1: digests vs blocks -------------------------------------

func TestInvariant1DigestMismatch(t *testing.T) {
	l := openTestLedger(t, 4)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 6)
	// Overwrite the digest's block row in storage.
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(d.BlockID)))
	err := l.Engine().TamperUpdateRow(l.sysTx2BlocksTable(), key, func(r sqltypes.Row) sqltypes.Row {
		r[3] = sqltypes.NewBigInt(r[3].Int() + 1) // transaction_count
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, []Digest{d}, 1)
	_ = lt
}

// sysTx2BlocksTable exposes the blocks system table to tests.
func (l *LedgerDB) sysTx2BlocksTable() *engine.Table { return l.sysBlocks }

func TestInvariant1DigestForMissingBlock(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 2)
	d.BlockID += 10
	verifyFails(t, l, []Digest{d}, 1)
	_ = lt
}

func TestInvariant1BadDigestHashString(t *testing.T) {
	l := openTestLedger(t, 100)
	mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	tx := l.Begin("u")
	lt, _ := l.LedgerTable("accounts")
	tx.Insert(lt, account("a", 1))
	mustCommit(t, tx)
	d, _ := l.GenerateDigest()
	d.Hash = "not-hex"
	verifyFails(t, l, []Digest{d}, 1)
}

// --- Invariant 2: block chain -------------------------------------------

func TestInvariant2BrokenChain(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 8)
	// Tamper with a middle block: its recomputed hash no longer matches
	// the next block's previous_block_hash.
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1))
	err := l.Engine().TamperUpdateRow(l.sysBlocks, key, func(r sqltypes.Row) sqltypes.Row {
		b := append([]byte(nil), r[2].Bytes...)
		b[0] ^= 0xFF
		r[2] = sqltypes.NewBinary(b)
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 2)
	_ = lt
}

func TestInvariant2MissingBlock(t *testing.T) {
	l := openTestLedger(t, 2)
	mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	lt, _ := l.LedgerTable("accounts")
	seedAccounts(t, l, lt, 8)
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1))
	if err := l.Engine().TamperDeleteRow(l.sysBlocks, key, true); err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 2)
	_ = lt
}

// --- Invariant 3: block transaction roots --------------------------------

func TestInvariant3TamperedTransactionEntry(t *testing.T) {
	l := openTestLedger(t, 4)
	mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	lt, _ := l.LedgerTable("accounts")
	seedAccounts(t, l, lt, 6)
	l.Checkpoint() // drain the queue so entries live in the system table
	key := firstKeyOf(t, l.sysTx)
	err := l.Engine().TamperUpdateRow(l.sysTx, key, func(r sqltypes.Row) sqltypes.Row {
		r[4] = sqltypes.NewNVarChar("mallory") // rewrite the principal
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 3)
	_ = lt
}

func TestInvariant3DeletedTransactionEntry(t *testing.T) {
	l := openTestLedger(t, 4)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 6)
	l.Checkpoint()
	key := firstKeyOf(t, l.sysTx)
	if err := l.Engine().TamperDeleteRow(l.sysTx, key, true); err != nil {
		t.Fatal(err)
	}
	// Deleting an entry breaks the block root (inv 3) and orphans the
	// table's row versions (inv 4).
	rep := verifyFails(t, l, nil, 3)
	found4 := false
	for _, i := range rep.Issues {
		if i.Invariant == 4 {
			found4 = true
		}
	}
	if !found4 {
		t.Fatalf("expected an invariant-4 issue too:\n%s", rep)
	}
}

// --- Invariant 4: table row versions -------------------------------------

func TestInvariant4TamperedLedgerRow(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 5)
	key := firstKeyOf(t, lt.Table())
	err := l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(1_000_000)
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	rep := verifyFails(t, l, nil, 4)
	if !strings.Contains(rep.String(), "accounts") {
		t.Fatalf("issue should name the table:\n%s", rep)
	}
}

func TestInvariant4TamperedHistoryRow(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 3)
	tx := l.Begin("u")
	tx.Update(lt, account(acctName(0), 777))
	mustCommit(t, tx)
	key := firstKeyOf(t, lt.History())
	err := l.Engine().TamperUpdateRow(lt.History(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(42) // rewrite the historical balance
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 4)
}

func TestInvariant4DeletedHistoryRow(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 3)
	tx := l.Begin("u")
	tx.Delete(lt, sqltypes.NewNVarChar(acctName(1)))
	mustCommit(t, tx)
	key := firstKeyOf(t, lt.History())
	if err := l.Engine().TamperDeleteRow(lt.History(), key, true); err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 4)
}

func TestInvariant4DeletedLedgerRow(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 4)
	key := firstKeyOf(t, lt.Table())
	if err := l.Engine().TamperDeleteRow(lt.Table(), key, true); err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 4)
}

func TestInvariant4InjectedRow(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 3)
	// Inject a row referencing a transaction that never existed.
	full := sqltypes.Row{
		sqltypes.NewNVarChar("mallory"), sqltypes.NewBigInt(1 << 50),
		sqltypes.NewBigInt(999999), sqltypes.NewBigInt(1),
		sqltypes.NewNull(sqltypes.TypeBigInt), sqltypes.NewNull(sqltypes.TypeBigInt),
	}
	if _, err := l.Engine().TamperInsertRow(lt.Table(), full, true); err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 4)
}

func TestInvariant4MetadataTypeSwap(t *testing.T) {
	// The §3.2 attack end-to-end: flip a column's declared type without
	// touching values.
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 3)
	if err := l.Engine().TamperColumnType(lt.Table(), "balance", sqltypes.TypeInt); err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 4)
}

// --- Invariant 5: nonclustered indexes ------------------------------------

func TestInvariant5IndexDesync(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	if _, err := l.Engine().CreateIndex("accounts", "ix_balance", "balance"); err != nil {
		t.Fatal(err)
	}
	seedAccounts(t, l, lt, 5)
	verifyOK(t, l, nil)
	// An attacker rewrites the base row but not the index.
	key := firstKeyOf(t, lt.Table())
	err := l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(31337)
		return r
	}, false /* leave indexes stale */)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.Verify(nil, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	has4, has5 := false, false
	for _, i := range rep.Issues {
		switch i.Invariant {
		case 4:
			has4 = true
		case 5:
			has5 = true
		}
	}
	if !has4 || !has5 {
		t.Fatalf("want invariants 4 and 5 flagged:\n%s", rep)
	}
}

func TestInvariant5IndexEntryTamper(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	ix, err := l.Engine().CreateIndex("accounts", "ix_balance", "balance")
	if err != nil {
		t.Fatal(err)
	}
	seedAccounts(t, l, lt, 5)
	var entryKey []byte
	lt.Table().ScanIndex(ix, func(ek, _ []byte) bool {
		entryKey = append([]byte(nil), ek...)
		return false
	})
	if err := l.Engine().TamperIndexEntry(lt.Table(), ix, entryKey, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 5)
}

// --- View definitions -----------------------------------------------------

func TestViewDefinitionTamper(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 2)
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(lt.ID())))
	err := l.Engine().TamperUpdateRow(l.sysViews, key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewNVarChar("CREATE VIEW accounts_ledger AS SELECT 'fooled you'")
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	verifyFails(t, l, nil, 0)
}

// --- Scoped verification ---------------------------------------------------

func TestVerifySubsetOfTables(t *testing.T) {
	l := openTestLedger(t, 100)
	a := mustLedgerTable(t, l, "table_a", engine.LedgerUpdateable)
	b, err := l.CreateLedgerTable("table_b", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := l.Begin("u")
	tx.Insert(a, account("x", 1))
	tx.Insert(b, account("y", 2))
	mustCommit(t, tx)

	// Tamper with table_b only.
	key := firstKeyOf(t, b.Table())
	l.Engine().TamperUpdateRow(b.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(999)
		return r
	}, true)

	// Scoped to table_a: passes. Scoped to table_b: fails.
	repA, err := l.Verify(nil, VerifyOptions{Tables: []string{"table_a"}})
	if err != nil {
		t.Fatal(err)
	}
	if !repA.Ok() {
		t.Fatalf("table_a verification should pass:\n%s", repA)
	}
	if repA.TablesChecked != 1 {
		t.Fatalf("tables checked = %d", repA.TablesChecked)
	}
	repB, err := l.Verify(nil, VerifyOptions{Tables: []string{"table_b"}})
	if err != nil {
		t.Fatal(err)
	}
	if repB.Ok() {
		t.Fatalf("table_b verification should fail")
	}
}

// --- Digest derivation / fork detection ------------------------------------

func TestDigestDerivation(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d1 := seedAccounts(t, l, lt, 4)
	tx := l.Begin("u")
	tx.Insert(lt, account("late", 1))
	mustCommit(t, tx)
	d2, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if d2.BlockID <= d1.BlockID {
		t.Fatalf("expected a later block: %d <= %d", d2.BlockID, d1.BlockID)
	}
	if err := l.VerifyDigestDerivation(d1, d2); err != nil {
		t.Fatalf("derivation should hold: %v", err)
	}
	if err := l.VerifyDigestDerivation(d2, d1); err == nil {
		t.Fatal("reversed derivation accepted")
	}
}

func TestDigestForkDetected(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d1 := seedAccounts(t, l, lt, 4)
	// Fork: overwrite an old block (rewriting history), then extend.
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(d1.BlockID)))
	err := l.Engine().TamperUpdateRow(l.sysBlocks, key, func(r sqltypes.Row) sqltypes.Row {
		b := append([]byte(nil), r[2].Bytes...)
		b[5] ^= 0x01
		r[2] = sqltypes.NewBinary(b)
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	tx := l.Begin("u")
	tx.Insert(lt, account("fork", 1))
	mustCommit(t, tx)
	d2, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.VerifyDigestDerivation(d1, d2); err == nil {
		t.Fatal("fork not detected by digest derivation check")
	}
}

// --- Sharded / parallel verification ---------------------------------------

// issueStrings renders the (already sorted) issue list for comparison.
func issueStrings(rep *Report) string {
	var b strings.Builder
	for _, i := range rep.Issues {
		b.WriteString(i.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestVerifyParallelMatchesSerial tampers with a database several ways at
// once and checks that Parallelism: 1 and Parallelism: 8 produce
// byte-identical sorted issue lists and identical counters — the sharded
// pipeline must detect exactly what the serial path detects.
func TestVerifyParallelMatchesSerial(t *testing.T) {
	l := openTestLedger(t, 10)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	if _, err := l.Engine().CreateIndex("accounts", "ix_balance", "balance"); err != nil {
		t.Fatal(err)
	}
	d := seedAccounts(t, l, lt, 200)
	for i := 0; i < 40; i++ { // populate the history table
		tx := l.Begin("u")
		tx.Update(lt, account(acctName(i), int64(1000+i)))
		mustCommit(t, tx)
	}
	l.Checkpoint()

	// Tamper 1: rewrite a base row (inv 4; index kept consistent).
	key := firstKeyOf(t, lt.Table())
	if err := l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(1_000_000)
		return r
	}, true); err != nil {
		t.Fatal(err)
	}
	// Tamper 2: rewrite a history row (inv 4).
	hkey := firstKeyOf(t, lt.History())
	if err := l.Engine().TamperUpdateRow(lt.History(), hkey, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(42)
		return r
	}, true); err != nil {
		t.Fatal(err)
	}
	// Tamper 3: corrupt a nonclustered index entry (inv 5).
	ix := lt.Table().Indexes()[0]
	var entryKey []byte
	lt.Table().ScanIndex(ix, func(ek, _ []byte) bool {
		entryKey = append([]byte(nil), ek...)
		return false
	})
	if err := l.Engine().TamperIndexEntry(lt.Table(), ix, entryKey, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	// Tamper 4: delete a transaction entry (inv 3 + orphaned rows inv 4).
	tkey := firstKeyOf(t, l.sysTx)
	if err := l.Engine().TamperDeleteRow(l.sysTx, tkey, true); err != nil {
		t.Fatal(err)
	}

	serial, err := l.Verify([]Digest{d}, VerifyOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := l.Verify([]Digest{d}, VerifyOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Ok() || parallel.Ok() {
		t.Fatal("tampered database verified clean")
	}
	if got, want := issueStrings(parallel), issueStrings(serial); got != want {
		t.Fatalf("issue lists differ between parallelism levels:\nserial:\n%sparallel:\n%s", want, got)
	}
	if serial.RowVersionsChecked != parallel.RowVersionsChecked ||
		serial.IndexesChecked != parallel.IndexesChecked ||
		serial.TablesChecked != parallel.TablesChecked {
		t.Fatalf("counters differ: serial=%+v parallel=%+v", serial, parallel)
	}
	if serial.RowVersionsChecked < 240 {
		t.Fatalf("row versions checked = %d, want >= 240", serial.RowVersionsChecked)
	}
}

// TestVerifyParallelCleanLargeTable checks the single-large-table shape the
// sharded pipeline exists for: one table big enough for many shards, clean,
// verified at high parallelism.
func TestVerifyParallelCleanLargeTable(t *testing.T) {
	l := openTestLedger(t, 25)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 250)
	rep, err := l.Verify([]Digest{d}, VerifyOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("clean database failed parallel verification:\n%s", rep)
	}
	if rep.RowVersionsChecked < 250 {
		t.Fatalf("row versions checked = %d", rep.RowVersionsChecked)
	}
}

// TestVerifyEmptyTableParallel covers the empty-table / empty-shard edges.
func TestVerifyEmptyTableParallel(t *testing.T) {
	l := openTestLedger(t, 100)
	mustLedgerTable(t, l, "empty_tbl", engine.LedgerUpdateable)
	rep, err := l.Verify(nil, VerifyOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("empty table failed verification:\n%s", rep)
	}
}

// TestInvariant5HistoryIndexTamperParallel: the single-pass index check
// still catches a corrupted nonclustered index on the *history* table.
func TestInvariant5HistoryIndexTamperParallel(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 30)
	for i := 0; i < 30; i++ {
		tx := l.Begin("u")
		tx.Update(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
	}
	ix, err := l.Engine().CreateIndex(lt.History().Name(), "ix_hist_balance", "balance")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.Verify(nil, VerifyOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("pre-tamper verification failed:\n%s", rep)
	}
	var entryKey []byte
	lt.History().ScanIndex(ix, func(ek, _ []byte) bool {
		entryKey = append([]byte(nil), ek...)
		return false
	})
	if err := l.Engine().TamperIndexEntry(lt.History(), ix, entryKey, []byte{0xbe, 0xef}); err != nil {
		t.Fatal(err)
	}
	rep, err = l.Verify(nil, VerifyOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range rep.Issues {
		if i.Invariant == 5 && strings.Contains(i.Detail, "ix_hist_balance") {
			found = true
		}
	}
	if !found {
		t.Fatalf("history index corruption not detected:\n%s", rep)
	}
}

// TestVerifyReportsTiming: the Report carries phase timings (observability
// for perf work) and prints them.
func TestVerifyReportsTiming(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 20)
	rep := verifyOK(t, l, []Digest{d})
	if rep.Timing.Total <= 0 {
		t.Fatalf("timing total = %v, want > 0", rep.Timing.Total)
	}
	if rep.Timing.Total < rep.Timing.Chain {
		t.Fatalf("total %v < chain phase %v", rep.Timing.Total, rep.Timing.Chain)
	}
	if !strings.Contains(rep.String(), "timing:") {
		t.Fatalf("report does not print timing:\n%s", rep)
	}
}
