package core

import (
	"os"
	"path/filepath"
	"strconv"
	"time"

	"sqlledger/internal/engine"
)

// RestoreToTime performs a point-in-time restore of the ledger database in
// srcDir into dstDir (§3.6). The restored database is a new *incarnation*:
// it gets a fresh create time, so digests uploaded to immutable storage
// are kept apart from those of the original, and users can see that (and
// when) a restore happened. Digests issued by earlier incarnations remain
// verifiable for the blocks that survive the restore.
func RestoreToTime(srcDir, dstDir string, targetTS int64) error {
	if err := engine.RestoreToTime(srcDir, dstDir, targetTS); err != nil {
		return err
	}
	// New incarnation: a fresh create time.
	return os.WriteFile(filepath.Join(dstDir, incarnationFile),
		[]byte(strconv.FormatInt(time.Now().UnixNano(), 10)), 0o644)
}
