package core

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"sqlledger/internal/blobstore"
	"sqlledger/internal/merkle"
	"sqlledger/internal/obs"
	"sqlledger/internal/serial"
)

// The super-block is the sharded ledger's digest of digests (§2.2 scaled
// out): each shard remains an independent ledger with its own block chain
// and digests, and the coordinator periodically snapshots the N shard
// chain heads, builds a Merkle tree over the shard-head hashes, chains
// the result to the previous super-block and signs it (ed25519). The one
// signed super-root then protects every shard: an auditor holding a
// super-block can demand a Merkle proof for any shard's head digest and
// verify that shard alone, without trusting the other N-1 shards or the
// coordinator's bookkeeping.

// ShardHead is one shard's chain head inside a super-block. Empty marks a
// shard that has no closed blocks yet (its digest is zero-valued); the
// emptiness is part of the signed leaf, so an attacker cannot pass off a
// truncated shard as never-written.
type ShardHead struct {
	Shard  int    `json:"shard"`
	Empty  bool   `json:"empty,omitempty"`
	Digest Digest `json:"digest"`
}

// SuperBlock is a signed digest of all shard digests.
type SuperBlock struct {
	DatabaseName string `json:"database_name"`
	Shards       int    `json:"shards"`
	// SeqNo numbers super-blocks from 1; PreviousHash chains them
	// (hex; zero hash for the first).
	SeqNo        uint64      `json:"seq_no"`
	PreviousHash string      `json:"previous_hash"`
	Heads        []ShardHead `json:"heads"`
	// Root is the hex Merkle root over the shard-head leaf hashes, in
	// shard order.
	Root        string `json:"root"`
	GeneratedAt int64  `json:"generated_at"`
	// Signature is the ed25519 signature over the super-block hash;
	// PublicKey is embedded for convenience (auditors should pin the
	// publicly known key instead of trusting the embedded copy).
	Signature []byte            `json:"signature"`
	PublicKey ed25519.PublicKey `json:"public_key"`
}

// shardHeadLeaf canonicalizes one shard head as a Merkle leaf.
func shardHeadLeaf(h ShardHead) merkle.Hash {
	empty := byte(0)
	if h.Empty {
		empty = 1
	}
	return serial.HashBytes(
		[]byte("sqlledger-shard-head"),
		u64le(uint64(h.Shard)),
		[]byte{empty},
		[]byte(h.Digest.DatabaseName),
		u64le(uint64(h.Digest.Incarnation)),
		u64le(h.Digest.BlockID),
		[]byte(h.Digest.Hash),
		u64le(uint64(h.Digest.LastCommitTS)),
	)
}

// superBlockHash is the chained identity of a super-block: everything an
// auditor relies on, bound under a domain tag. The signature covers it.
func superBlockHash(sb *SuperBlock) merkle.Hash {
	return serial.HashBytes(
		[]byte("sqlledger-superblock"),
		[]byte(sb.DatabaseName),
		u64le(uint64(sb.Shards)),
		u64le(sb.SeqNo),
		[]byte(sb.PreviousHash),
		[]byte(sb.Root),
		u64le(uint64(sb.GeneratedAt)),
	)
}

// Hash returns the super-block's chained hash.
func (sb *SuperBlock) Hash() merkle.Hash { return superBlockHash(sb) }

// headLeaves computes the per-shard leaf hashes in shard order.
func (sb *SuperBlock) headLeaves() []merkle.Hash {
	leaves := make([]merkle.Hash, len(sb.Heads))
	for i, h := range sb.Heads {
		leaves[i] = shardHeadLeaf(h)
	}
	return leaves
}

// JSON renders the super-block as a JSON document.
func (sb *SuperBlock) JSON() []byte {
	b, err := json.Marshal(sb)
	if err != nil {
		panic(fmt.Sprintf("core: super-block marshal: %v", err))
	}
	return b
}

// ParseSuperBlock parses a super-block document.
func ParseSuperBlock(b []byte) (*SuperBlock, error) {
	sb := new(SuperBlock)
	if err := json.Unmarshal(b, sb); err != nil {
		return nil, fmt.Errorf("core: bad super-block: %w", err)
	}
	return sb, nil
}

// CheckSuperBlock verifies a super-block's internal consistency and its
// signature under pub: the Merkle root must equal the root recomputed
// from the shard heads, and the signature must cover the super-block
// hash. It does not touch any shard data — use VerifySuperBlock for that.
func CheckSuperBlock(sb *SuperBlock, pub ed25519.PublicKey) error {
	if len(sb.Heads) != sb.Shards {
		return fmt.Errorf("core: super-block lists %d heads for %d shards", len(sb.Heads), sb.Shards)
	}
	for i, h := range sb.Heads {
		if h.Shard != i {
			return fmt.Errorf("core: super-block head %d claims shard %d", i, h.Shard)
		}
	}
	root := merkle.RootOf(sb.headLeaves())
	if root.String() != sb.Root {
		return fmt.Errorf("core: super-block root does not match its shard heads")
	}
	hash := superBlockHash(sb)
	if !ed25519.Verify(pub, hash[:], sb.Signature) {
		return fmt.Errorf("core: super-block signature is invalid")
	}
	return nil
}

// ShardProof extracts the Merkle proof that shard's head digest is
// covered by the super-block root. Together with the signed root it lets
// an auditor verify a single shard without the other N-1.
func ShardProof(sb *SuperBlock, shard int) (merkle.Proof, error) {
	if shard < 0 || shard >= len(sb.Heads) {
		return merkle.Proof{}, fmt.Errorf("core: no shard %d in super-block", shard)
	}
	return merkle.BuildProof(sb.headLeaves(), uint64(shard))
}

// superBlockFile is the coordinator's watermark: the latest super-block,
// persisted in the sharded database's root directory and reconciled at
// open — every shard must still contain the exact block each signed head
// describes, or the open fails loudly (a shard was forked or rolled back
// behind the last signed state).
const superBlockFile = "superblock.json"

// CloseSuperBlock snapshots every shard's chain head (generating a fresh
// digest per shard, in shard order), builds the Merkle tree over the
// heads, chains and signs the result, and persists it as the new
// watermark. Digest generation is sequential on purpose: closing a block
// draws a close timestamp from the shared clock into the block hash, so
// under a logical clock a fixed shard order is what makes identical
// ingest histories land on the identical super-root. Shards with no
// transactions yet appear as Empty heads, so a super-block can be closed
// at any point in the database's life.
func (s *ShardedDB) CloseSuperBlock() (sb *SuperBlock, err error) {
	start := time.Now()
	sp := s.obs.Tracer().Start("close_superblock")
	defer func() {
		if err == nil {
			s.m.superSeconds.ObserveSince(start)
			s.m.superClosed.Inc()
			sp.Annotate(
				obs.L("seq", strconv.FormatUint(sb.SeqNo, 10)),
				obs.L("shards", strconv.Itoa(sb.Shards)))
		}
		sp.Finish(err)
	}()
	s.smu.Lock()
	defer s.smu.Unlock()

	heads := make([]ShardHead, len(s.shards))
	for i, shard := range s.shards {
		d, derr := shard.GenerateDigest()
		switch {
		case derr == ErrEmptyLedger:
			heads[i] = ShardHead{Shard: i, Empty: true}
		case derr != nil:
			return nil, fmt.Errorf("core: shard %d digest: %w", i, derr)
		default:
			heads[i] = ShardHead{Shard: i, Digest: d}
		}
	}

	seq, prev := uint64(1), merkle.ZeroHash.String()
	if s.lastSuper != nil {
		seq = s.lastSuper.SeqNo + 1
		prev = s.lastSuper.Hash().String()
	}
	sb = &SuperBlock{
		DatabaseName: s.opts.Name,
		Shards:       len(s.shards),
		SeqNo:        seq,
		PreviousHash: prev,
		Heads:        heads,
		GeneratedAt:  s.nowNanos(),
		PublicKey:    append(ed25519.PublicKey(nil), s.priv.Public().(ed25519.PublicKey)...),
	}
	sb.Root = merkle.RootOf(sb.headLeaves()).String()
	hash := superBlockHash(sb)
	sb.Signature = ed25519.Sign(s.priv, hash[:])

	if err := s.saveWatermark(sb); err != nil {
		return nil, err
	}
	s.lastSuper = sb
	s.updateImbalance()
	s.obs.Events().Info(obs.EventSuperBlockClosed,
		"seq", sb.SeqNo, "shards", sb.Shards, "root", sb.Root)
	return sb, nil
}

// saveWatermark persists the super-block atomically (tmp + rename).
func (s *ShardedDB) saveWatermark(sb *SuperBlock) error {
	path := filepath.Join(s.opts.Dir, superBlockFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, sb.JSON(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadWatermark reads the persisted super-block, if any.
func loadWatermark(dir string) (*SuperBlock, error) {
	b, err := os.ReadFile(filepath.Join(dir, superBlockFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return ParseSuperBlock(b)
}

// superBlobName builds the blob path for a super-block: the super chain
// lives under "<db>/super/", beside the per-shard digest namespaces.
func superBlobName(dbName string, seq uint64) string {
	return fmt.Sprintf("%s/super/block-%016d.json", dbName, seq)
}

// UploadSuperBlock closes a super-block and stores it in immutable
// storage, enforcing the same immutability rule as per-shard digest
// uploads: a slot can only ever hold one super-block, and finding a
// different one there means the sharded ledger forked.
func (s *ShardedDB) UploadSuperBlock(store blobstore.Store) (out *SuperBlock, err error) {
	store = blobstore.Instrument(store, s.obs)
	sp := s.obs.Tracer().Start("upload_superblock")
	defer func() { sp.Finish(err) }()
	sb, err := s.CloseSuperBlock()
	if err != nil {
		return nil, err
	}
	sp.Annotate(
		obs.L("seq", strconv.FormatUint(sb.SeqNo, 10)),
		obs.L("shards", strconv.Itoa(sb.Shards)))
	name := superBlobName(sb.DatabaseName, sb.SeqNo)
	if perr := store.Put(name, sb.JSON()); perr != nil {
		if b, gerr := store.Get(name); gerr == nil {
			prev, parseErr := ParseSuperBlock(b)
			if parseErr == nil && prev.Root == sb.Root && prev.SeqNo == sb.SeqNo {
				return prev, nil
			}
			return nil, fmt.Errorf("core: immutable store already holds a DIFFERENT super-block %d — forked ledger", sb.SeqNo)
		}
		return nil, perr
	}
	return sb, nil
}

// ShardReport is one shard's slice of a sharded verification.
type ShardReport struct {
	Shard int
	// HeadErr is non-nil when the shard's current chain no longer
	// matches the signed head digest (or its super-block proof fails) —
	// the super-block check that localizes tampering to a shard even
	// before row-level verification runs.
	HeadErr error
	// Report is the shard's full five-invariant verification report
	// (nil when the shard was empty at super-block time and is skipped).
	Report *Report
}

// ShardedReport aggregates per-shard verification results.
type ShardedReport struct {
	Shards []ShardReport
}

// Ok reports whether every shard passed both the super-block head check
// and its own verification.
func (r *ShardedReport) Ok() bool {
	for _, sr := range r.Shards {
		if sr.HeadErr != nil {
			return false
		}
		if sr.Report != nil && !sr.Report.Ok() {
			return false
		}
	}
	return true
}

func (r *ShardedReport) String() string {
	out := ""
	for _, sr := range r.Shards {
		out += fmt.Sprintf("shard %03d: ", sr.Shard)
		switch {
		case sr.HeadErr != nil:
			out += "FAILED head check: " + sr.HeadErr.Error()
		case sr.Report == nil:
			out += "empty, skipped"
		default:
			out += sr.Report.String()
		}
		out += "\n"
	}
	return out
}

// VerifySuperBlock verifies the sharded ledger against a signed
// super-block: the signature and Merkle root are checked first, then each
// shard is verified in parallel — its head digest must carry a valid
// Merkle proof under the super-root, the shard's chain must still contain
// the exact block the head describes, and the shard's full verification
// (all five invariants) must pass against that digest. A tampered shard
// fails alone; the report localizes the damage while clean shards verify
// green.
func VerifySuperBlock(s *ShardedDB, sb *SuperBlock, pub ed25519.PublicKey, opts VerifyOptions) (*ShardedReport, error) {
	if err := CheckSuperBlock(sb, pub); err != nil {
		return nil, err
	}
	if sb.Shards != len(s.shards) {
		return nil, fmt.Errorf("core: super-block covers %d shards, database has %d", sb.Shards, len(s.shards))
	}
	root, err := merkle.ParseHash(sb.Root)
	if err != nil {
		return nil, err
	}
	leaves := sb.headLeaves()
	proofs, err := merkle.BuildProofs(leaves, allIndices(len(leaves)))
	if err != nil {
		return nil, err
	}

	rep := &ShardedReport{Shards: make([]ShardReport, len(s.shards))}
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sr := &rep.Shards[i]
			sr.Shard = i
			head := sb.Heads[i]
			if !proofs[i].Verify(root, leaves[i]) {
				sr.HeadErr = fmt.Errorf("core: shard %d head proof does not verify under the super-root", i)
				return
			}
			if head.Empty {
				return
			}
			if err := s.shards[i].CheckDigest(head.Digest); err != nil {
				sr.HeadErr = err
				return
			}
			rep, verr := s.shards[i].Verify([]Digest{head.Digest}, opts)
			sr.Report = rep
			if verr != nil {
				sr.HeadErr = verr
			}
		}(i)
	}
	wg.Wait()
	return rep, nil
}

func allIndices(n int) []uint64 {
	ix := make([]uint64, n)
	for i := range ix {
		ix[i] = uint64(i)
	}
	return ix
}
