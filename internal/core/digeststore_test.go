package core

import (
	"errors"
	"testing"
	"time"

	"sqlledger/internal/blobstore"
	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

func TestUploadAndVerifyFromStore(t *testing.T) {
	l := openTestLedger(t, 3)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	store := blobstore.NewMemory()
	u := NewDigestUploader(l, store)

	for i := 0; i < 5; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
		if _, err := u.UploadOnce(); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	if u.Uploads() != 5 {
		t.Fatalf("uploads = %d", u.Uploads())
	}
	digests, err := l.StoredDigests(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) == 0 {
		t.Fatal("no digests stored")
	}
	rep, err := l.VerifyFromStore(store, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("verify from store:\n%s", rep)
	}
	// Tamper, then the stored digests must catch it.
	key := firstKeyOf(t, lt.Table())
	l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(123456)
		return r
	}, true)
	rep, err = l.VerifyFromStore(store, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("tamper not detected from stored digests")
	}
}

func TestUploadIdempotentPerBlock(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	store := blobstore.NewMemory()
	tx := l.Begin("u")
	tx.Insert(lt, account("a", 1))
	mustCommit(t, tx)
	d1, err := l.UploadDigest(store)
	if err != nil {
		t.Fatal(err)
	}
	// No new transactions: same block digest, no immutability violation.
	d2, err := l.UploadDigest(store)
	if err != nil {
		t.Fatal(err)
	}
	if d1.BlockID != d2.BlockID || d1.Hash != d2.Hash {
		t.Fatalf("idempotent upload changed digest: %+v vs %+v", d1, d2)
	}
	if store.Len() != 1 {
		t.Fatalf("blobs = %d", store.Len())
	}
}

func TestUploadDetectsForkAgainstImmutableStore(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	store := blobstore.NewMemory()
	tx := l.Begin("u")
	tx.Insert(lt, account("a", 1))
	mustCommit(t, tx)
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}
	// Rewrite history: tamper with the closed block so a regenerated
	// digest for the same block id differs from the stored one.
	var blockKey []byte
	l.sysBlocks.Scan(func(k []byte, _ sqltypes.Row) bool {
		blockKey = append([]byte(nil), k...)
		return false
	})
	l.Engine().TamperUpdateRow(l.sysBlocks, blockKey, func(r sqltypes.Row) sqltypes.Row {
		b := append([]byte(nil), r[2].Bytes...)
		b[0] ^= 1
		r[2] = sqltypes.NewBinary(b)
		return r
	}, true)
	// Persist the tampered state (checkpoint snapshots storage as-is) and
	// reopen so the in-memory chain head is recomputed from the tampered
	// block row.
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	dir := l.edb.Dir()
	l.Close()
	l2 := openLedgerAt(t, dir, 100)
	if _, err := l2.UploadDigest(store); err == nil {
		t.Fatal("forked digest upload not rejected against immutable store")
	}
}

func TestPeriodicUploader(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	store := blobstore.NewMemory()
	u := NewDigestUploader(l, store)
	u.Start(5 * time.Millisecond)
	defer u.Stop()
	for i := 0; i < 5; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
		time.Sleep(10 * time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for u.Uploads() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	u.Stop()
	if u.Uploads() == 0 {
		t.Fatalf("uploader made no uploads; errs=%v", u.Errs())
	}
	for _, err := range u.Errs() {
		t.Fatalf("uploader error: %v", err)
	}
}

func TestReplicaLagGating(t *testing.T) {
	// A small, constant lag: digest generation waits it out.
	lag := 20 * time.Millisecond
	l, err := Open(Options{
		Dir: t.TempDir(), Name: "geo", BlockSize: 100,
		ReplicaLag:      func() time.Duration { return lag },
		MaxReplicaDelay: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lt, err := l.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := l.Begin("u")
	tx.Insert(lt, account("a", 1))
	mustCommit(t, tx)
	start := time.Now()
	if _, err := l.GenerateDigest(); err != nil {
		t.Fatalf("digest with small lag: %v", err)
	}
	if time.Since(start) < lag/2 {
		t.Fatal("digest did not wait for replication")
	}
	// A hopeless lag: digest generation fails with ErrReplicationBehind.
	lag = time.Hour
	tx = l.Begin("u")
	tx.Insert(lt, account("b", 2))
	mustCommit(t, tx)
	l.opts.MaxReplicaDelay = 30 * time.Millisecond
	if _, err := l.GenerateDigest(); !errors.Is(err, ErrReplicationBehind) {
		t.Fatalf("expected ErrReplicationBehind, got %v", err)
	}
}

func TestRestoreCreatesNewIncarnationAndOldDigestsStillVerify(t *testing.T) {
	srcDir := t.TempDir()
	l := openLedgerAt(t, srcDir, 3)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	store := blobstore.NewMemory()

	// Phase 1: some data, digest uploaded.
	for i := 0; i < 4; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
	}
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}
	cutoff := l.Engine().LastCommitTS()
	oldIncarnation := l.Incarnation()

	// Phase 2: the "mistake" that motivates the restore.
	tx := l.Begin("u")
	tx.Insert(lt, account("mistake", -1))
	mustCommit(t, tx)
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Restore to before the mistake.
	dstDir := t.TempDir() + "/restored"
	if err := RestoreToTime(srcDir, dstDir, cutoff); err != nil {
		t.Fatal(err)
	}
	r := openLedgerAt(t, dstDir, 3)
	if r.Incarnation() == oldIncarnation {
		t.Fatal("restore did not start a new incarnation")
	}
	rlt, err := r.LedgerTable("accounts")
	if err != nil {
		t.Fatal(err)
	}
	if rlt.Table().RowCount() != 4 {
		t.Fatalf("restored rows = %d", rlt.Table().RowCount())
	}
	// Verification with ALL stored digests (across incarnations): digests
	// covering surviving blocks verify; the digest past the restore point
	// is reported as a warning, not tampering (§3.6).
	rep, err := r.VerifyFromStore(store, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("restored database should verify:\n%s", rep)
	}
	warned := false
	for _, i := range rep.Issues {
		if i.Warning {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("expected a warning for the digest past the restore point:\n%s", rep)
	}
	// New incarnation keeps uploading under its own namespace.
	tx = r.Begin("u")
	tx.Insert(rlt, account("post-restore", 9))
	mustCommit(t, tx)
	if _, err := r.UploadDigest(store); err != nil {
		t.Fatalf("upload after restore: %v", err)
	}
	names, _ := store.List("test/")
	if len(names) < 3 {
		t.Fatalf("expected digests across incarnations, got %v", names)
	}
}
