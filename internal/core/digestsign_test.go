package core

import (
	"testing"

	"sqlledger/internal/engine"
)

func TestSignedDigestRoundtrip(t *testing.T) {
	pub, priv := testKeys(t)
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 2)

	sd := SignDigest(d, priv)
	if err := VerifySignedDigest(sd, pub); err != nil {
		t.Fatalf("verify: %v", err)
	}
	back, err := ParseSignedDigest(sd.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySignedDigest(back, pub); err != nil {
		t.Fatalf("verify after JSON roundtrip: %v", err)
	}
	// The verified digest is usable as verification input.
	verifyOK(t, l, []Digest{back.Digest})
}

func TestSignedDigestTamperDetected(t *testing.T) {
	pub, priv := testKeys(t)
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 2)
	sd := SignDigest(d, priv)

	// flipHex replaces the first character with a different hex digit, so
	// the mutation is never a no-op regardless of the actual hash value.
	flipHex := func(s string) string {
		if s[0] == '0' {
			return "1" + s[1:]
		}
		return "0" + s[1:]
	}
	for name, mutate := range map[string]func(*SignedDigest){
		"hash":      func(s *SignedDigest) { s.Digest.Hash = flipHex(s.Digest.Hash) },
		"block":     func(s *SignedDigest) { s.Digest.BlockID++ },
		"name":      func(s *SignedDigest) { s.Digest.DatabaseName = "other" },
		"time":      func(s *SignedDigest) { s.Digest.LastCommitTS++ },
		"signature": func(s *SignedDigest) { s.Signature[0] ^= 1 },
	} {
		bad := sd
		bad.Signature = append([]byte(nil), sd.Signature...)
		mutate(&bad)
		if err := VerifySignedDigest(bad, pub); err == nil {
			t.Errorf("%s tamper accepted", name)
		}
	}
	otherPub, _ := testKeys(t)
	if err := VerifySignedDigest(sd, otherPub); err == nil {
		t.Error("wrong key accepted")
	}
	if _, err := ParseSignedDigest([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
}
