package core

import (
	"fmt"
	"sort"
	"strings"

	"sqlledger/internal/sqltypes"
)

// LedgerViewRow is one row of a table's ledger view (§2.1, Figure 2):
// one entry per row-version operation, joining the visible column values
// with the transaction that performed the operation.
type LedgerViewRow struct {
	Row       sqltypes.Row // visible columns
	Operation string       // "INSERT" or "DELETE"
	TxID      uint64
	Seq       uint64
}

// LedgerView materializes the ledger view of a table from the current
// committed state of the ledger and history tables: every version in the
// ledger table contributes an INSERT entry; every version in the history
// table contributes both its INSERT entry (it was created at some point)
// and its DELETE entry. Results are ordered by (TxID, Seq).
func (lt *LedgerTable) LedgerView() []LedgerViewRow {
	var out []LedgerViewRow
	lt.table.Scan(func(_ []byte, full sqltypes.Row) bool {
		out = append(out, LedgerViewRow{
			Row:       lt.VisibleRow(full),
			Operation: "INSERT",
			TxID:      uint64(full[lt.startTxOrd].Int()),
			Seq:       uint64(full[lt.startSeqOrd].Int()),
		})
		return true
	})
	if lt.history != nil {
		lt.history.Scan(func(_ []byte, full sqltypes.Row) bool {
			vis := lt.VisibleRow(full)
			out = append(out, LedgerViewRow{
				Row:       vis,
				Operation: "INSERT",
				TxID:      uint64(full[lt.startTxOrd].Int()),
				Seq:       uint64(full[lt.startSeqOrd].Int()),
			})
			out = append(out, LedgerViewRow{
				Row:       vis,
				Operation: "DELETE",
				TxID:      uint64(full[lt.endTxOrd].Int()),
				Seq:       uint64(full[lt.endSeqOrd].Int()),
			})
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TxID != out[j].TxID {
			return out[i].TxID < out[j].TxID
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// TransactionInfo returns the ledger entry metadata for a transaction id,
// letting ledger-view consumers retrieve who executed an operation and
// when (§2.1). It consults both the system table and the in-memory queue.
func (l *LedgerDB) TransactionInfo(txID uint64) (user string, commitTS int64, blockID uint64, ok bool) {
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(txID)))
	if r, found := l.sysTx.Lookup(key); found {
		return r[4].Str, r[3].Int(), uint64(r[1].Int()), true
	}
	l.lmu.Lock()
	defer l.lmu.Unlock()
	for _, e := range l.queue {
		if e.TxID == txID {
			return e.User, e.CommitTS, e.BlockID, true
		}
	}
	return "", 0, 0, false
}

// canonicalViewDefinition is the generated definition of a table's ledger
// view. It is stored in sys_ledger_views when the table is created and
// re-derived during verification: a mismatch means the view artifact was
// tampered with (§3.4.2, final step).
func (lt *LedgerTable) canonicalViewDefinition() string {
	s := lt.table.Schema()
	cols := make([]string, 0, len(s.Columns))
	for _, c := range s.Columns {
		if !c.Hidden && !c.Dropped {
			cols = append(cols, c.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE VIEW %s_ledger AS ", lt.table.Name())
	fmt.Fprintf(&b, "SELECT %s, %s AS transaction_id, %s AS sequence_number, 'INSERT' AS operation FROM %s",
		strings.Join(cols, ", "), ColStartTx, ColStartSeq, lt.table.Name())
	if lt.history != nil {
		fmt.Fprintf(&b, " UNION ALL SELECT %s, %s, %s, 'INSERT' FROM %s",
			strings.Join(cols, ", "), ColStartTx, ColStartSeq, lt.history.Name())
		fmt.Fprintf(&b, " UNION ALL SELECT %s, %s, %s, 'DELETE' FROM %s",
			strings.Join(cols, ", "), ColEndTx, ColEndSeq, lt.history.Name())
	}
	return b.String()
}

// storeViewDefinition records (or refreshes) the ledger-view definition
// for a table in the sys_ledger_views system table.
func (l *LedgerDB) storeViewDefinition(lt *LedgerTable) error {
	def := lt.canonicalViewDefinition()
	row := sqltypes.Row{
		sqltypes.NewBigInt(int64(lt.ID())),
		sqltypes.NewNVarChar(def),
	}
	tx := l.edb.Begin("system")
	defer tx.Rollback()
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(lt.ID())))
	if _, ok, _ := tx.GetByKey(l.sysViews, key); ok {
		if _, err := tx.UpdateByKey(l.sysViews, key, row); err != nil {
			return err
		}
	} else if _, err := tx.Insert(l.sysViews, row); err != nil {
		return err
	}
	_, err := l.edb.Commit(tx)
	return err
}

// ViewDefinition returns the stored ledger-view definition for a table.
func (l *LedgerDB) ViewDefinition(tableID uint32) (string, bool) {
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(tableID)))
	r, ok := l.sysViews.Lookup(key)
	if !ok {
		return "", false
	}
	return r[1].Str, true
}
