package core

import (
	"strings"
	"testing"

	"sqlledger/internal/blobstore"
	"sqlledger/internal/engine"
	"sqlledger/internal/obs"
)

// End-to-end check of the observability layer: drive commits, a digest
// upload and a verification through a ledger database, then assert that
// the headline series are populated both in the snapshot API and in the
// Prometheus text rendering.
func TestObservabilityEndToEnd(t *testing.T) {
	l := openTestLedger(t, 2) // tiny blocks so block closes happen
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)

	const commits = 6
	for i := 0; i < commits; i++ {
		tx := l.Begin("alice")
		if err := tx.Insert(lt, account(string(rune('a'+i)), int64(i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	store := blobstore.NewMemory()
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}
	digests, err := l.StoredDigests(store)
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l, digests)

	snap := l.Snapshot()

	// The shims must agree with the registry they now read from.
	stats := l.CommitStats()
	if got := snap.CounterValue(obs.EngineCommitTotal); got != stats.Commits {
		t.Fatalf("commit counter = %d, CommitStats.Commits = %d", got, stats.Commits)
	}
	if got := snap.CounterValue(obs.WALFsyncTotal); got != stats.Fsyncs {
		t.Fatalf("fsync counter = %d, CommitStats.Fsyncs = %d", got, stats.Fsyncs)
	}
	if stats.Commits < commits {
		t.Fatalf("CommitStats.Commits = %d, want >= %d", stats.Commits, commits)
	}

	if n := snap.CounterValue(obs.BlocksClosedTotal); n == 0 {
		t.Fatal("no blocks closed despite block size 2")
	}
	if n := snap.CounterValue(obs.DigestTotal); n == 0 {
		t.Fatal("digest counter not incremented")
	}
	if n := snap.CounterValue(obs.DigestUploadTotal); n != 1 {
		t.Fatalf("digest uploads = %d, want 1", n)
	}
	if n := snap.CounterValue(obs.VerifyTotal); n != 1 {
		t.Fatalf("verifications = %d, want 1", n)
	}
	if n := snap.CounterValue(obs.VerifyIssuesTotal); n != 0 {
		t.Fatalf("verify issues = %d, want 0", n)
	}
	if n := snap.CounterValue(obs.BlobstoreOpsTotal); n == 0 {
		t.Fatal("blobstore ops not counted")
	}
	// Commit stages and verify phases must have one histogram series per
	// label value, all populated.
	for _, stage := range []string{"sequence", "publish", "apply"} {
		h, ok := snap.Histogram(obs.CommitStageSeconds, obs.L("stage", stage))
		if !ok || h.Count == 0 {
			t.Fatalf("commit stage %q not observed (ok=%v)", stage, ok)
		}
	}
	for _, phase := range []string{"chain", "row_versions", "indexes", "views", "total"} {
		h, ok := snap.Histogram(obs.VerifyPhaseSeconds, obs.L("phase", phase))
		if !ok || h.Count == 0 {
			t.Fatalf("verify phase %q not observed (ok=%v)", phase, ok)
		}
	}

	// The Prometheus rendering must expose the acceptance-criteria series.
	var sb strings.Builder
	if err := l.Obs().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		obs.WALFsyncTotal,
		obs.CommitStageSeconds,
		obs.VerifyPhaseSeconds,
		`stage="sequence"`,
		`phase="total"`,
		"# TYPE " + obs.WALFsyncTotal + " counter",
		"# TYPE " + obs.CommitStageSeconds + " histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics text missing %q", want)
		}
	}

	// Spans from block closes, digest generation and verification must be
	// in the ring.
	recent := l.Obs().Tracer().Recent(0)
	seen := map[string]bool{}
	for _, sp := range recent {
		seen[sp.Name] = true
	}
	for _, want := range []string{"close_block", "generate_digest", "verify"} {
		if !seen[want] {
			t.Fatalf("span %q not recorded (got %v)", want, seen)
		}
	}
}

// A disabled registry must stay empty while the database works normally.
func TestObservabilityDisabled(t *testing.T) {
	l, err := Open(Options{
		Dir: t.TempDir(), Name: "test", BlockSize: 4, Obs: obs.Disabled(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	tx := l.Begin("alice")
	if err := tx.Insert(lt, account("a", 1)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	snap := l.Snapshot()
	if n := snap.CounterValue(obs.EngineCommitTotal); n != 0 {
		t.Fatalf("disabled registry recorded %d commits", n)
	}
	// The shims read the (disabled, hence empty) registry.
	if stats := l.CommitStats(); stats.Commits != 0 {
		t.Fatalf("disabled CommitStats.Commits = %d, want 0", stats.Commits)
	}
}
