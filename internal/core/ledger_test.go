package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

func openTestLedger(t *testing.T, blockSize uint32) *LedgerDB {
	t.Helper()
	return openLedgerAt(t, t.TempDir(), blockSize)
}

func openLedgerAt(t *testing.T, dir string, blockSize uint32) *LedgerDB {
	t.Helper()
	l, err := Open(Options{Dir: dir, Name: "test", BlockSize: blockSize, LockTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func accountsSchema() *sqltypes.Schema {
	return sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("name", sqltypes.TypeNVarChar),
		sqltypes.Col("balance", sqltypes.TypeBigInt),
	}, "name")
}

func mustLedgerTable(t *testing.T, l *LedgerDB, name string, kind engine.LedgerKind) *LedgerTable {
	t.Helper()
	lt, err := l.CreateLedgerTable(name, accountsSchema(), kind)
	if err != nil {
		t.Fatalf("create ledger table: %v", err)
	}
	return lt
}

func account(name string, bal int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewNVarChar(name), sqltypes.NewBigInt(bal)}
}

func mustCommit(t *testing.T, tx *Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func verifyOK(t *testing.T, l *LedgerDB, digests []Digest) *Report {
	t.Helper()
	rep, err := l.Verify(digests, VerifyOptions{})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("verification should pass:\n%s", rep)
	}
	return rep
}

func verifyFails(t *testing.T, l *LedgerDB, digests []Digest, invariant int) *Report {
	t.Helper()
	rep, err := l.Verify(digests, VerifyOptions{})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if rep.Ok() {
		t.Fatalf("verification should fail (invariant %d):\n%s", invariant, rep)
	}
	if invariant > 0 {
		for _, i := range rep.Issues {
			if i.Invariant == invariant && !i.Warning {
				return rep
			}
		}
		t.Fatalf("no invariant-%d issue reported:\n%s", invariant, rep)
	}
	return rep
}

// TestFigure2Scenario reproduces the paper's Figure 2: inserts, an update
// and a delete on an account-balances table, checking the ledger table,
// history table and ledger view contents.
func TestFigure2Scenario(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)

	tx := l.Begin("u") // Nick $50
	if err := tx.Insert(lt, account("Nick", 50)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx = l.Begin("u") // John $500
	tx.Insert(lt, account("John", 500))
	mustCommit(t, tx)
	tx = l.Begin("u") // Joe $30
	tx.Insert(lt, account("Joe", 30))
	mustCommit(t, tx)
	tx = l.Begin("u") // Mary $200
	tx.Insert(lt, account("Mary", 200))
	mustCommit(t, tx)
	tx = l.Begin("u") // Nick: 50 -> 100 (update = DELETE + INSERT in the view)
	tx.Update(lt, account("Nick", 100))
	mustCommit(t, tx)
	tx = l.Begin("u") // Joe deleted
	tx.Delete(lt, sqltypes.NewNVarChar("Joe"))
	mustCommit(t, tx)

	// Ledger table holds latest data.
	rtx := l.Begin("r")
	var names []string
	rtx.Scan(lt, func(r sqltypes.Row) bool {
		names = append(names, fmt.Sprintf("%s=%d", r[0].Str, r[1].Int()))
		return true
	})
	rtx.Rollback()
	if fmt.Sprint(names) != "[John=500 Mary=200 Nick=100]" {
		t.Fatalf("latest rows = %v", names)
	}

	// History holds the superseded versions: Nick $50 and Joe $30.
	if lt.History().RowCount() != 2 {
		t.Fatalf("history rows = %d", lt.History().RowCount())
	}

	// Ledger view: 4 INSERTs + (DELETE+INSERT for the update) + DELETE.
	view := lt.LedgerView()
	var ops []string
	for _, vr := range view {
		ops = append(ops, fmt.Sprintf("%s/%s/%d", vr.Row[0].Str, vr.Operation, vr.Row[1].Int()))
	}
	want := "[Nick/INSERT/50 John/INSERT/500 Joe/INSERT/30 Mary/INSERT/200 Nick/DELETE/50 Nick/INSERT/100 Joe/DELETE/30]"
	if fmt.Sprint(ops) != want {
		t.Fatalf("ledger view = %v\nwant %v", ops, want)
	}

	// Transaction metadata is retrievable for every view row.
	for _, vr := range view {
		if user, ts, _, ok := l.TransactionInfo(vr.TxID); !ok || user != "u" || ts == 0 {
			t.Fatalf("TransactionInfo(%d) = %q,%d,%v", vr.TxID, user, ts, ok)
		}
	}
	verifyOK(t, l, nil)
}

func TestHiddenColumnsInvisibleButTracked(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	if got := len(lt.VisibleColumns()); got != 2 {
		t.Fatalf("visible columns = %d", got)
	}
	if got := len(lt.Table().Schema().Columns); got != 6 {
		t.Fatalf("physical columns = %d", got)
	}
	tx := l.Begin("alice")
	tx.Insert(lt, account("a", 1))
	txID := tx.ID()
	mustCommit(t, tx)
	var full sqltypes.Row
	lt.Table().Scan(func(_ []byte, r sqltypes.Row) bool { full = r; return false })
	if uint64(full[2].Int()) != txID || full[3].Int() != 1 {
		t.Fatalf("start columns = %v", full[2:])
	}
	if !full[4].Null || !full[5].Null {
		t.Fatalf("end columns should be NULL in the ledger table: %v", full[4:])
	}
}

func TestMultipleUpdatesSameRowInOneTx(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	tx := l.Begin("u")
	tx.Insert(lt, account("a", 1))
	mustCommit(t, tx)

	tx = l.Begin("u")
	if err := tx.Update(lt, account("a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(lt, account("a", 3)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(lt, sqltypes.NewNVarChar("a")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if lt.History().RowCount() != 3 {
		t.Fatalf("history rows = %d, want 3 versions", lt.History().RowCount())
	}
	verifyOK(t, l, nil)
}

func TestAppendOnlySemantics(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "audit", engine.LedgerAppendOnly)
	if lt.History() != nil {
		t.Fatal("append-only tables must not have history tables")
	}
	tx := l.Begin("u")
	if err := tx.Insert(lt, account("a", 1)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx = l.Begin("u")
	if err := tx.Update(lt, account("a", 2)); !errors.Is(err, ErrAppendOnly) {
		t.Fatalf("update on append-only: %v", err)
	}
	if err := tx.Delete(lt, sqltypes.NewNVarChar("a")); !errors.Is(err, ErrAppendOnly) {
		t.Fatalf("delete on append-only: %v", err)
	}
	tx.Rollback()
	verifyOK(t, l, nil)
}

func TestCreateLedgerTableValidation(t *testing.T) {
	l := openTestLedger(t, 100)
	heapSchema := sqltypes.MustSchema([]sqltypes.Column{sqltypes.Col("v", sqltypes.TypeInt)})
	if _, err := l.CreateLedgerTable("x", heapSchema, engine.LedgerUpdateable); err == nil {
		t.Fatal("updateable ledger table without PK accepted")
	}
	reserved := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("id", sqltypes.TypeInt),
		sqltypes.NullableCol(ColStartTx, sqltypes.TypeBigInt),
	}, "id")
	if _, err := l.CreateLedgerTable("y", reserved, engine.LedgerUpdateable); err == nil {
		t.Fatal("reserved column name accepted")
	}
	if _, err := l.CreateLedgerTable("z", accountsSchema(), engine.LedgerHistory); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if _, err := l.LedgerTable("missing"); err == nil {
		t.Fatal("missing ledger table lookup succeeded")
	}
	// A regular engine table is not a ledger table.
	if _, err := l.Engine().CreateTable(engine.CreateTableSpec{Name: "plain", Schema: accountsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LedgerTable("plain"); !errors.Is(err, ErrNotLedgerTable) {
		t.Fatalf("plain table treated as ledger table: %v", err)
	}
}

func TestSavepointRollbackKeepsLedgerConsistent(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	tx := l.Begin("u")
	tx.Insert(lt, account("keep", 1))
	sp := tx.Savepoint()
	tx.Insert(lt, account("drop1", 2))
	tx.Update(lt, account("keep", 99))
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatal(err)
	}
	tx.Insert(lt, account("after", 3))
	mustCommit(t, tx)

	// The rolled-back operations must not appear anywhere, and the ledger
	// must verify: the Merkle tree was restored alongside the writes.
	rtx := l.Begin("r")
	var names []string
	rtx.Scan(lt, func(r sqltypes.Row) bool { names = append(names, r[0].Str); return true })
	rtx.Rollback()
	if fmt.Sprint(names) != "[after keep]" {
		t.Fatalf("rows = %v", names)
	}
	if lt.History().RowCount() != 0 {
		t.Fatal("rolled-back update leaked into history")
	}
	verifyOK(t, l, nil)
}

func TestNestedSavepoints(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	tx := l.Begin("u")
	tx.Insert(lt, account("a", 1))
	sp1 := tx.Savepoint()
	tx.Insert(lt, account("b", 2))
	sp2 := tx.Savepoint()
	tx.Insert(lt, account("c", 3))
	if err := tx.RollbackTo(sp2); err != nil {
		t.Fatal(err)
	}
	if err := tx.RollbackTo(sp1); err != nil {
		t.Fatal(err)
	}
	// sp2 died with the rollback to sp1.
	if err := tx.RollbackTo(sp2); err == nil {
		t.Fatal("stale savepoint accepted")
	}
	tx.Insert(lt, account("d", 4))
	mustCommit(t, tx)
	verifyOK(t, l, nil)
	rtx := l.Begin("r")
	count := 0
	rtx.Scan(lt, func(sqltypes.Row) bool { count++; return true })
	rtx.Rollback()
	if count != 2 {
		t.Fatalf("rows = %d, want a and d", count)
	}
}

func TestRollbackWholeTxLeavesNoTrace(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	sizeBefore := l.Engine().LogSize()
	tx := l.Begin("u")
	tx.Insert(lt, account("ghost", 1))
	tx.Rollback()
	if l.Engine().LogSize() != sizeBefore {
		t.Fatal("rollback wrote to the WAL")
	}
	if lt.Table().RowCount() != 0 {
		t.Fatal("rollback left rows")
	}
	// The ledger is NOT empty: creating the table registered metadata
	// through the ledger. But the rolled-back tx must not be in it.
	d, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l, []Digest{d})
}

func TestEmptyLedgerDigest(t *testing.T) {
	// A database with no ledger activity at all (bootstrap only creates
	// the meta tables, which is not itself ledger-registered) yields
	// ErrEmptyLedger.
	l := openTestLedger(t, 100)
	if _, err := l.GenerateDigest(); !errors.Is(err, ErrEmptyLedger) {
		t.Fatalf("empty ledger digest: %v", err)
	}
}
