// Package core implements SQL Ledger itself — the paper's primary
// contribution. It layers on the relational engine:
//
//   - Ledger tables (updateable and append-only) whose schema is extended
//     with four hidden system columns, with historical versions preserved
//     in history tables (§2.1, §3.1).
//   - Row hashing into per-transaction, per-table streaming Merkle trees
//     wired into every DML operation (§3.2).
//   - The database ledger: transaction entries appended to an in-memory
//     queue on the commit path, drained to the sys_ledger_transactions
//     system table at checkpoint, grouped into blocks chained by hash in
//     sys_ledger_blocks (§3.3).
//   - Database digests, verification of the five ledger invariants
//     (§3.4), schema changes (§3.5), digest management across restores
//     (§3.6), transaction receipts (§5.1) and ledger truncation (§5.2).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/merkle"
	"sqlledger/internal/obs"
	"sqlledger/internal/serial"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Core errors.
var (
	ErrEmptyLedger       = errors.New("core: ledger has no transactions yet")
	ErrAppendOnly        = errors.New("core: table is append-only")
	ErrNotLedgerTable    = errors.New("core: not a ledger table")
	ErrReplicationBehind = errors.New("core: geo-secondary too far behind to issue a digest")
	ErrBlockNotClosed    = errors.New("core: block not closed yet")
)

// DefaultBlockSize is the paper's production block size (§3.3.1).
const DefaultBlockSize = 100_000

// Options configures Open.
type Options struct {
	// Dir is the database directory.
	Dir string
	// Name identifies the database in digests.
	Name string
	// BlockSize is the number of transactions per ledger block
	// (default DefaultBlockSize).
	BlockSize uint32
	// Sync selects WAL durability.
	Sync wal.SyncMode
	// GroupCommit tunes WAL group commit (zero value: enabled with
	// defaults; set Disabled for the serialized ablation path).
	GroupCommit wal.GroupConfig
	// LockTimeout bounds row-lock waits.
	LockTimeout time.Duration
	// ReplicaLag, if set, simulates asynchronous geo-replication: it
	// returns the current replication lag of the secondary. Digest
	// generation only covers data already replicated (§3.6).
	ReplicaLag func() time.Duration
	// MaxReplicaDelay bounds how long digest generation waits for the
	// secondary before failing with ErrReplicationBehind (default 5s).
	MaxReplicaDelay time.Duration
	// Obs receives metrics and spans from every layer of the database:
	// WAL, commit pipeline, block closing, digests and verification. nil
	// creates a private enabled registry; pass obs.Disabled() to turn
	// recording off.
	Obs *obs.Registry
	// Clock, if set, supplies timestamps (unix nanoseconds) for commit
	// ordering, the database incarnation, block closing and digest
	// generation in place of time.Now. A logical clock makes digests
	// byte-for-byte reproducible across runs; nil uses the wall clock.
	Clock func() int64
	// Shards hash-partitions the ledger across N independent engine/core
	// instances under one signed super-block root (see OpenSharded).
	// 0 and 1 mean the single-instance layout — byte-compatible with
	// databases created before sharding existed. Open rejects values
	// above 1; use OpenSharded for those.
	Shards int
	// VersionGCInterval overrides the engine's background version-GC
	// sweep pace (zero: engine default, 250ms). Sharded opens stagger it
	// per shard so N instances on one box don't tick in lockstep.
	VersionGCInterval time.Duration
	// RecoveryWorkers sets crash-recovery parallelism (WAL decode and
	// redo apply pools, snapshot section codecs). 0 means one per CPU;
	// 1 forces serial replay.
	RecoveryWorkers int
}

// System table names.
const (
	sysTxName       = "sys_ledger_transactions"
	sysBlocksName   = "sys_ledger_blocks"
	sysViewsName    = "sys_ledger_views"
	sysTableMetaN   = "sys_ledger_table_meta"
	sysColumnMetaN  = "sys_ledger_column_meta"
	sysTruncationsN = "sys_ledger_truncations"
	sysTxBlockIndex = "ix_sys_ledger_transactions_block"
)

// Hidden ledger column names (§3.1).
const (
	ColStartTx  = "ledger_start_transaction_id"
	ColStartSeq = "ledger_start_sequence_number"
	ColEndTx    = "ledger_end_transaction_id"
	ColEndSeq   = "ledger_end_sequence_number"
)

// LedgerDB is a database with SQL Ledger enabled.
type LedgerDB struct {
	opts Options
	edb  *engine.DB
	hook *ledgerHook

	sysTx     *engine.Table
	sysBlocks *engine.Table
	sysViews  *engine.Table
	txByBlock *engine.Index

	metaTables  *LedgerTable
	metaColumns *LedgerTable
	truncations *LedgerTable

	// lmu guards block/ordinal assignment and the in-memory queue.
	lmu        sync.Mutex
	queue      []*wal.LedgerEntry
	curBlock   uint64
	curOrdinal uint32

	// closeMu makes block closing single-threaded (§3.3.2).
	closeMu       sync.Mutex
	closedThrough int64 // highest block id persisted to sys_ledger_blocks; -1 = none
	prevHash      merkle.Hash

	tmu    sync.RWMutex
	tables map[uint32]*LedgerTable // by base table id

	incarnation int64 // database create time; changes on restore (§3.6)

	// healthMu guards the operability marks read by the HealthChecker.
	healthMu   sync.Mutex
	lastUpload uploadMark
	lastVerify verifyMark

	// auditor is the registered always-on Auditor, if any; HealthChecker
	// and /debug/audit read its status through this pointer.
	auditor atomic.Pointer[Auditor]

	doneCh   chan struct{}
	closedDB bool

	obs *obs.Registry
	m   ledgerMetrics
}

// hashBatchBuckets sizes the hash_batch_size histogram: batch row counts
// from single-row DML up to bulk loads.
var hashBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}

// ledgerMetrics holds the core's metric handles, resolved once at Open.
type ledgerMetrics struct {
	rowsHashed          *obs.Counter
	hashBatchSize       *obs.Histogram
	blocksClosed        *obs.Counter
	blockCloseSeconds   *obs.Histogram
	queueLength         *obs.Gauge
	digests             *obs.Counter
	digestSeconds       *obs.Histogram
	digestUploads       *obs.Counter
	digestUploadSeconds *obs.Histogram
	verifies            *obs.Counter
	verifyIssues        *obs.Counter
	verifyProgress      *obs.Gauge
	verifyChain         *obs.Histogram
	verifyRowVersions   *obs.Histogram
	verifyIndexes       *obs.Histogram
	verifyViews         *obs.Histogram
	verifyTotal         *obs.Histogram
}

func bindLedgerMetrics(reg *obs.Registry) ledgerMetrics {
	phase := func(p string) *obs.Histogram {
		return reg.Histogram(obs.VerifyPhaseSeconds, nil, obs.L("phase", p))
	}
	return ledgerMetrics{
		rowsHashed:          reg.Counter(obs.RowsHashedTotal),
		hashBatchSize:       reg.Histogram(obs.HashBatchSize, hashBatchBuckets),
		blocksClosed:        reg.Counter(obs.BlocksClosedTotal),
		blockCloseSeconds:   reg.Histogram(obs.BlockCloseSeconds, nil),
		queueLength:         reg.Gauge(obs.LedgerQueueLength),
		digests:             reg.Counter(obs.DigestTotal),
		digestSeconds:       reg.Histogram(obs.DigestGenerateSeconds, nil),
		digestUploads:       reg.Counter(obs.DigestUploadTotal),
		digestUploadSeconds: reg.Histogram(obs.DigestUploadSeconds, nil),
		verifies:            reg.Counter(obs.VerifyTotal),
		verifyIssues:        reg.Counter(obs.VerifyIssuesTotal),
		verifyProgress:      reg.Gauge(obs.VerifyProgressRatio),
		verifyChain:         phase("chain"),
		verifyRowVersions:   phase("row_versions"),
		verifyIndexes:       phase("indexes"),
		verifyViews:         phase("views"),
		verifyTotal:         phase("total"),
	}
}

// ledgerHook receives engine callbacks. It exists separately from LedgerDB
// because recovery runs inside engine.Open, before the LedgerDB is wired.
type ledgerHook struct {
	l         *LedgerDB
	recovered []*wal.LedgerEntry
}

func (h *ledgerHook) OnCommit(txID uint64, commitTS int64, user string, roots []wal.TableRoot) (uint64, uint32) {
	return h.l.assignBlock(txID, commitTS, user, roots)
}

func (h *ledgerHook) BeforeSnapshot() {
	if h.l != nil {
		h.l.drainQueueLocked()
	}
}

func (h *ledgerHook) StateBlob() []byte        { return nil }
func (h *ledgerHook) LoadState(_ []byte) error { return nil }

func (h *ledgerHook) Recovered(entries []*wal.LedgerEntry) { h.recovered = entries }

// Open opens (creating if necessary) a ledger database. Open is the
// single-instance path: Options.Shards of 0 or 1 keeps today's on-disk
// layout exactly; a sharded database (Shards > 1) is opened with
// OpenSharded, which runs this dispatcher once per shard directory.
func Open(opts Options) (*LedgerDB, error) {
	if opts.Shards > 1 {
		return nil, fmt.Errorf("core: Options.Shards=%d requires OpenSharded", opts.Shards)
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = DefaultBlockSize
	}
	if opts.MaxReplicaDelay == 0 {
		opts.MaxReplicaDelay = 5 * time.Second
	}
	if opts.Name == "" {
		opts.Name = filepath.Base(opts.Dir)
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	h := &ledgerHook{}
	edb, err := engine.Open(engine.Options{
		Dir:               opts.Dir,
		Sync:              opts.Sync,
		GroupCommit:       opts.GroupCommit,
		LockTimeout:       opts.LockTimeout,
		Hook:              h,
		Obs:               opts.Obs,
		Clock:             opts.Clock,
		VersionGCInterval: opts.VersionGCInterval,
		RecoveryWorkers:   opts.RecoveryWorkers,
	})
	if err != nil {
		return nil, err
	}
	l := &LedgerDB{
		opts:          opts,
		edb:           edb,
		hook:          h,
		closedThrough: -1,
		tables:        make(map[uint32]*LedgerTable),
		doneCh:        make(chan struct{}),
		obs:           opts.Obs,
		m:             bindLedgerMetrics(opts.Obs),
		lastUpload:    uploadMark{block: -1},
	}
	h.l = l
	if err := l.loadIncarnation(); err != nil {
		edb.Close()
		return nil, err
	}
	if err := l.bootstrap(); err != nil {
		edb.Close()
		return nil, err
	}
	if err := l.reconcile(h.recovered); err != nil {
		edb.Close()
		return nil, err
	}
	h.recovered = nil
	go l.blockCloser()
	return l, nil
}

// Close stops background work and closes the database.
func (l *LedgerDB) Close() error {
	l.lmu.Lock()
	if l.closedDB {
		l.lmu.Unlock()
		return nil
	}
	l.closedDB = true
	l.lmu.Unlock()
	close(l.doneCh)
	return l.edb.Close()
}

// Engine exposes the underlying relational engine (regular tables, DDL,
// checkpointing, tamper simulation).
func (l *LedgerDB) Engine() *engine.DB { return l.edb }

// Name returns the database name used in digests.
func (l *LedgerDB) Name() string { return l.opts.Name }

// Incarnation returns the database create time (unix nanoseconds); it
// changes when the database is restored to a point in time.
func (l *LedgerDB) Incarnation() int64 { return l.incarnation }

// Checkpoint drains the ledger queue into the system tables and writes an
// engine snapshot (§3.3.2).
func (l *LedgerDB) Checkpoint() error {
	_, err := l.edb.Checkpoint()
	return err
}

// CommitStats reports how commit durability is being amortized by the
// staged group-commit pipeline.
type CommitStats struct {
	// Commits is the number of commit batches published to the group
	// committer (zero when group commit is disabled).
	Commits int64
	// Groups is the number of write groups flushed, one WAL flush each;
	// Commits/Groups is the average group size.
	Groups int64
	// Fsyncs is the number of WAL fsyncs since open (nonzero only under
	// wal.SyncFull). Fsyncs per committed transaction is the headline
	// group-commit metric.
	Fsyncs int64
}

// CommitStats returns commit-path durability counters since open. It is
// a shim over the registry's sqlledger_wal_* counters.
func (l *LedgerDB) CommitStats() CommitStats {
	gs := l.edb.GroupCommitStats()
	return CommitStats{Commits: gs.Commits, Groups: gs.Groups, Fsyncs: l.edb.FsyncCount()}
}

// Obs returns the database's metrics registry.
func (l *LedgerDB) Obs() *obs.Registry { return l.obs }

// Snapshot returns a point-in-time copy of every metric the database has
// recorded: WAL appends and fsyncs, group-commit batching, the four
// commit stages, lock waits, block closing, digests and verification.
func (l *LedgerDB) Snapshot() obs.Snapshot { return l.obs.Snapshot() }

const incarnationFile = "createtime"

// nowNanos returns the current time from Options.Clock, or the wall
// clock when none is configured.
func (l *LedgerDB) nowNanos() int64 {
	if l.opts.Clock != nil {
		return l.opts.Clock()
	}
	return time.Now().UnixNano()
}

func (l *LedgerDB) loadIncarnation() error {
	p := filepath.Join(l.opts.Dir, incarnationFile)
	b, err := os.ReadFile(p)
	if err == nil {
		v, perr := strconv.ParseInt(string(b), 10, 64)
		if perr != nil {
			return fmt.Errorf("core: bad incarnation file: %w", perr)
		}
		l.incarnation = v
		return nil
	}
	if !os.IsNotExist(err) {
		return err
	}
	l.incarnation = l.nowNanos()
	if werr := os.WriteFile(p, []byte(strconv.FormatInt(l.incarnation, 10)), 0o644); werr != nil {
		return werr
	}
	l.obs.Events().Info(obs.EventIncarnation, "incarnation", l.incarnation, "dir", l.opts.Dir)
	return nil
}

// --- Bootstrap ---------------------------------------------------------

var sysTxSchema = sqltypes.MustSchema([]sqltypes.Column{
	sqltypes.Col("transaction_id", sqltypes.TypeBigInt),
	sqltypes.Col("block_id", sqltypes.TypeBigInt),
	sqltypes.Col("ordinal_in_block", sqltypes.TypeBigInt),
	sqltypes.Col("commit_ts", sqltypes.TypeDateTime),
	sqltypes.Col("principal", sqltypes.TypeNVarChar),
	sqltypes.Col("table_hashes", sqltypes.TypeVarBinary),
}, "transaction_id")

var sysBlocksSchema = sqltypes.MustSchema([]sqltypes.Column{
	sqltypes.Col("block_id", sqltypes.TypeBigInt),
	sqltypes.Col("previous_block_hash", sqltypes.TypeBinary),
	sqltypes.Col("transactions_root_hash", sqltypes.TypeBinary),
	sqltypes.Col("transaction_count", sqltypes.TypeBigInt),
	sqltypes.Col("closed_ts", sqltypes.TypeDateTime),
}, "block_id")

var sysViewsSchema = sqltypes.MustSchema([]sqltypes.Column{
	sqltypes.Col("table_id", sqltypes.TypeBigInt),
	sqltypes.Col("definition", sqltypes.TypeNVarChar),
}, "table_id")

func (l *LedgerDB) bootstrap() error {
	var err error
	ensure := func(name string, schema *sqltypes.Schema) *engine.Table {
		if err != nil {
			return nil
		}
		if t, terr := l.edb.Table(name); terr == nil {
			return t
		}
		var t *engine.Table
		t, err = l.edb.CreateTable(engine.CreateTableSpec{Name: name, Schema: schema, System: true})
		return t
	}
	l.sysTx = ensure(sysTxName, sysTxSchema)
	l.sysBlocks = ensure(sysBlocksName, sysBlocksSchema)
	l.sysViews = ensure(sysViewsName, sysViewsSchema)
	if err != nil {
		return err
	}
	// Secondary index for fetching a block's transactions efficiently.
	l.txByBlock = nil
	for _, ix := range l.sysTx.Indexes() {
		if ix.Meta().Name == sysTxBlockIndex {
			l.txByBlock = ix
			break
		}
	}
	if l.txByBlock == nil {
		l.txByBlock, err = l.edb.CreateIndex(sysTxName, sysTxBlockIndex, "block_id")
		if err != nil {
			return err
		}
	}

	// Ledger system tables tracking table/column metadata (§3.5.2) and
	// truncation events (§5.2). They are themselves ledger tables; their
	// own metadata is not self-registered to avoid recursion.
	metaTablesSchema := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("table_id", sqltypes.TypeBigInt),
		sqltypes.Col("table_name", sqltypes.TypeNVarChar),
		sqltypes.Col("ledger_kind", sqltypes.TypeNVarChar),
		sqltypes.NullableCol("history_table_id", sqltypes.TypeBigInt),
	}, "table_id")
	metaColumnsSchema := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("table_id", sqltypes.TypeBigInt),
		sqltypes.Col("column_ordinal", sqltypes.TypeBigInt),
		sqltypes.Col("column_name", sqltypes.TypeNVarChar),
		sqltypes.Col("column_type", sqltypes.TypeNVarChar),
		sqltypes.Col("nullable", sqltypes.TypeBit),
	}, "table_id", "column_ordinal")
	truncSchema := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("truncation_id", sqltypes.TypeBigInt),
		sqltypes.Col("before_block", sqltypes.TypeBigInt),
		sqltypes.Col("max_truncated_tx", sqltypes.TypeBigInt),
		sqltypes.Col("performed_ts", sqltypes.TypeDateTime),
	}, "truncation_id")

	mk := func(name string, schema *sqltypes.Schema, kind engine.LedgerKind) *LedgerTable {
		if err != nil {
			return nil
		}
		if t, terr := l.edb.Table(name); terr == nil {
			var lt *LedgerTable
			lt, err = l.wrapLedgerTable(t)
			return lt
		}
		var lt *LedgerTable
		lt, err = l.createLedgerTable(name, schema, kind, true)
		return lt
	}
	l.metaTables = mk(sysTableMetaN, metaTablesSchema, engine.LedgerUpdateable)
	l.metaColumns = mk(sysColumnMetaN, metaColumnsSchema, engine.LedgerUpdateable)
	l.truncations = mk(sysTruncationsN, truncSchema, engine.LedgerAppendOnly)
	if err != nil {
		return err
	}

	// Wrap every pre-existing ledger table from the catalog (reopen path).
	for _, t := range l.edb.Tables() {
		m := t.Meta()
		if m.Ledger == engine.LedgerUpdateable || m.Ledger == engine.LedgerAppendOnly {
			if _, ok := l.tables[m.ID]; !ok {
				if _, werr := l.wrapLedgerTable(t); werr != nil {
					return werr
				}
			}
		}
	}
	return nil
}

// reconcile rebuilds ledger assignment state after recovery: entries whose
// COMMIT records were replayed but that are missing from the system table
// go back on the in-memory queue (§3.3.2).
func (l *LedgerDB) reconcile(recovered []*wal.LedgerEntry) error {
	// Highest closed block and its hash.
	l.sysBlocks.Scan(func(_ []byte, r sqltypes.Row) bool {
		b := int64(r[0].Int())
		if b > l.closedThrough {
			l.closedThrough = b
			l.prevHash = blockHashOfRow(r)
		}
		return true
	})

	// Re-queue entries missing from sys_ledger_transactions, preserving
	// commit order.
	for _, e := range recovered {
		key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(e.TxID)))
		if _, ok := l.sysTx.Lookup(key); !ok {
			l.queue = append(l.queue, e)
		}
	}

	// Next (block, ordinal) assignment: one past the highest assignment
	// observed anywhere.
	maxBlock, maxOrd, any := int64(-1), int64(-1), false
	observe := func(b, o int64) {
		if !any || b > maxBlock || (b == maxBlock && o > maxOrd) {
			maxBlock, maxOrd, any = b, o, true
		}
	}
	l.sysTx.Scan(func(_ []byte, r sqltypes.Row) bool {
		observe(r[1].Int(), r[2].Int())
		return true
	})
	for _, e := range l.queue {
		observe(int64(e.BlockID), int64(e.Ordinal))
	}
	switch {
	case !any:
		l.curBlock, l.curOrdinal = uint64(l.closedThrough+1), 0
	case maxOrd+1 >= int64(l.opts.BlockSize):
		l.curBlock, l.curOrdinal = uint64(maxBlock)+1, 0
	default:
		l.curBlock, l.curOrdinal = uint64(maxBlock), uint32(maxOrd)+1
	}
	if l.curBlock <= uint64(l.closedThrough) && l.closedThrough >= 0 {
		l.curBlock, l.curOrdinal = uint64(l.closedThrough)+1, 0
	}
	return nil
}

// --- Commit path (§3.3.2) ----------------------------------------------

// assignBlock runs inside the engine's commit critical section: it assigns
// the transaction to the current block and appends the entry to the
// in-memory queue. Nothing else happens here — block closing is triggered
// entirely off the commit path, by the blockCloser's periodic sweep or by
// digest generation.
func (l *LedgerDB) assignBlock(txID uint64, commitTS int64, user string, roots []wal.TableRoot) (uint64, uint32) {
	l.lmu.Lock()
	if l.curOrdinal >= l.opts.BlockSize {
		l.curBlock++
		l.curOrdinal = 0
	}
	block, ord := l.curBlock, l.curOrdinal
	l.curOrdinal++
	l.queue = append(l.queue, &wal.LedgerEntry{
		TxID: txID, BlockID: block, Ordinal: ord, CommitTS: commitTS, User: user,
		Roots: append([]wal.TableRoot(nil), roots...),
	})
	qlen := len(l.queue)
	l.lmu.Unlock()
	l.m.queueLength.Set(float64(qlen))
	return block, ord
}

// drainQueueLocked persists queued entries into sys_ledger_transactions.
// Called by the engine under full quiescence just before a snapshot; the
// writes bypass the WAL because the snapshot itself persists them, and
// recovery from any older snapshot rebuilds the queue from COMMIT records.
func (l *LedgerDB) drainQueueLocked() {
	l.lmu.Lock()
	q := l.queue
	l.queue = nil
	l.lmu.Unlock()
	l.m.queueLength.Set(0)
	for _, e := range q {
		if _, err := l.edb.DirectInsert(l.sysTx, entryToRow(e)); err != nil {
			// The only possible failure is a duplicate from a re-drain,
			// which is harmless.
			continue
		}
	}
}

// blockCloseInterval is how often the background closer sweeps for filled
// blocks. The sweep keeps block closing fully off the commit path: commits
// only advance counters, and anything that needs blocks closed *now*
// (digest generation) calls closeBlocksThrough synchronously itself.
const blockCloseInterval = 25 * time.Millisecond

// blockCloser is the single background goroutine that closes filled
// blocks (§3.3.2: "this operation is single-threaded ... and happens
// asynchronously"). Every block below curBlock has all its ordinals
// assigned, so the sweep target is always safe to close.
func (l *LedgerDB) blockCloser() {
	ticker := time.NewTicker(blockCloseInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.doneCh:
			return
		case <-ticker.C:
			l.lmu.Lock()
			target := int64(l.curBlock) - 1
			l.lmu.Unlock()
			if target >= 0 {
				_ = l.closeBlocksThrough(target)
			}
		}
	}
}

// closeBlocksThrough closes every open block with id <= target, in order.
func (l *LedgerDB) closeBlocksThrough(target int64) error {
	l.closeMu.Lock()
	defer l.closeMu.Unlock()
	for b := l.closedThrough + 1; b <= target; b++ {
		if err := l.closeOneBlock(b); err != nil {
			return err
		}
	}
	return nil
}

// closeOneBlock closes block b. Caller holds closeMu and guarantees
// every previous block is closed.
func (l *LedgerDB) closeOneBlock(b int64) (err error) {
	start := time.Now()
	sp := l.obs.Tracer().Start("close_block", obs.L("block", strconv.FormatInt(b, 10)))
	defer func() {
		sp.Finish(err)
		if err == nil {
			l.m.blockCloseSeconds.ObserveSince(start)
			l.m.blocksClosed.Inc()
		}
	}()
	entries := l.entriesOfBlock(uint64(b))
	if len(entries) == 0 {
		return fmt.Errorf("core: block %d has no transactions to close", b)
	}
	var tree merkle.Streaming
	for i, e := range entries {
		if e.Ordinal != uint32(i) {
			return fmt.Errorf("core: block %d has a gap at ordinal %d", b, i)
		}
		tree.Append(entryHash(e))
	}
	root := tree.Root()
	row := sqltypes.Row{
		sqltypes.NewBigInt(b),
		sqltypes.NewBinary(append([]byte(nil), l.prevHash[:]...)),
		sqltypes.NewBinary(append([]byte(nil), root[:]...)),
		sqltypes.NewBigInt(int64(len(entries))),
		sqltypes.Value{Type: sqltypes.TypeDateTime, I64: l.nowNanos()},
	}
	// Persisting the closed block is a regular, WAL-logged table
	// update, so its durability is guaranteed by the engine.
	tx := l.edb.Begin("system")
	if _, err := tx.Insert(l.sysBlocks, row); err != nil {
		tx.Rollback()
		return err
	}
	if _, err := l.edb.Commit(tx); err != nil {
		return err
	}
	l.prevHash = blockHashOfRow(row)
	l.closedThrough = b
	l.obs.Events().Info(obs.EventBlockClosed,
		"block", b, "transactions", len(entries), "hash", l.prevHash.String())
	return nil
}

// entriesOfBlock returns the block's entries from the system table plus
// the in-memory queue, sorted by ordinal.
func (l *LedgerDB) entriesOfBlock(block uint64) []*wal.LedgerEntry {
	var out []*wal.LedgerEntry
	l.sysTx.LookupIndexPrefix(l.txByBlock, []sqltypes.Value{sqltypes.NewBigInt(int64(block))},
		func(_ []byte, r sqltypes.Row) bool {
			out = append(out, rowToEntry(r))
			return true
		})
	l.lmu.Lock()
	for _, e := range l.queue {
		if e.BlockID == block {
			out = append(out, e)
		}
	}
	l.lmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Ordinal < out[j].Ordinal })
	return out
}

// --- Entry and block hashing --------------------------------------------

func rootsBlob(roots []wal.TableRoot) []byte {
	b := binary.AppendUvarint(nil, uint64(len(roots)))
	for _, tr := range roots {
		b = binary.AppendUvarint(b, uint64(tr.TableID))
		b = append(b, tr.Root[:]...)
	}
	return b
}

func parseRootsBlob(b []byte) ([]wal.TableRoot, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("core: bad roots blob")
	}
	pos := sz
	out := make([]wal.TableRoot, 0, n)
	for i := uint64(0); i < n; i++ {
		tid, sz := binary.Uvarint(b[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("core: bad roots blob table id")
		}
		pos += sz
		var tr wal.TableRoot
		tr.TableID = uint32(tid)
		if pos+len(tr.Root) > len(b) {
			return nil, fmt.Errorf("core: truncated roots blob")
		}
		copy(tr.Root[:], b[pos:])
		pos += len(tr.Root)
		out = append(out, tr)
	}
	return out, nil
}

func entryToRow(e *wal.LedgerEntry) sqltypes.Row {
	return sqltypes.Row{
		sqltypes.NewBigInt(int64(e.TxID)),
		sqltypes.NewBigInt(int64(e.BlockID)),
		sqltypes.NewBigInt(int64(e.Ordinal)),
		sqltypes.Value{Type: sqltypes.TypeDateTime, I64: e.CommitTS},
		sqltypes.NewNVarChar(e.User),
		sqltypes.NewVarBinary(rootsBlob(e.Roots)),
	}
}

func rowToEntry(r sqltypes.Row) *wal.LedgerEntry {
	roots, _ := parseRootsBlob(r[5].Bytes)
	return &wal.LedgerEntry{
		TxID:     uint64(r[0].Int()),
		BlockID:  uint64(r[1].Int()),
		Ordinal:  uint32(r[2].Int()),
		CommitTS: r[3].Int(),
		User:     r[4].Str,
		Roots:    roots,
	}
}

func u64le(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// entryHash is the canonical hash of a transaction entry — the leaf of the
// per-block transactions Merkle tree (§3.3.1).
func entryHash(e *wal.LedgerEntry) merkle.Hash {
	return serial.HashBytes(
		u64le(e.TxID),
		u64le(e.BlockID),
		u64le(uint64(e.Ordinal)),
		u64le(uint64(e.CommitTS)),
		[]byte(e.User),
		rootsBlob(e.Roots),
	)
}

// blockHashOfRow is the canonical hash of a sys_ledger_blocks row — the
// value digests capture and the "previous block hash" of the next block.
func blockHashOfRow(r sqltypes.Row) merkle.Hash {
	return serial.HashBytes(
		u64le(uint64(r[0].Int())), // block id
		r[1].Bytes,                // previous block hash
		r[2].Bytes,                // transactions root
		u64le(uint64(r[3].Int())), // transaction count
		u64le(uint64(r[4].Int())), // closed ts
	)
}
