package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/merkle"
	"sqlledger/internal/obs"
	"sqlledger/internal/serial"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Issue is one inconsistency found by verification. Warning-class issues
// (e.g. digests that point past a restore or truncation point) do not fail
// the verification by themselves.
type Issue struct {
	// Invariant is the ledger invariant (1-5, §3.4.1) that failed; 0 for
	// issues outside the numbered invariants (view definitions, inputs).
	Invariant int
	Table     string
	Detail    string
	Warning   bool
}

func (i Issue) String() string {
	kind := "TAMPER"
	if i.Warning {
		kind = "WARNING"
	}
	if i.Table != "" {
		return fmt.Sprintf("[%s inv%d table=%s] %s", kind, i.Invariant, i.Table, i.Detail)
	}
	return fmt.Sprintf("[%s inv%d] %s", kind, i.Invariant, i.Detail)
}

// Timing records where a verification run spent its time. Chain and Views
// are wall-clock phase durations; RowVersions and Indexes are summed over
// tables (and their shard workers run concurrently), so they can exceed
// Total on multi-core runs — read them as work done, not wall time.
type Timing struct {
	Total       time.Duration // whole run, wall clock
	Chain       time.Duration // invariants 1–3: digests, block chain, block roots
	RowVersions time.Duration // invariant 4, summed across tables
	Indexes     time.Duration // invariant 5, summed across tables
	Views       time.Duration // ledger-view definition checks
}

func (t Timing) String() string {
	return fmt.Sprintf("total=%v chain=%v row-versions=%v indexes=%v views=%v",
		t.Total.Round(time.Microsecond), t.Chain.Round(time.Microsecond),
		t.RowVersions.Round(time.Microsecond), t.Indexes.Round(time.Microsecond),
		t.Views.Round(time.Microsecond))
}

// Report is the outcome of a verification run.
type Report struct {
	Issues []Issue

	BlocksChecked       int
	TransactionsChecked int
	RowVersionsChecked  int
	TablesChecked       int
	IndexesChecked      int
	DigestsChecked      int

	Timing Timing
}

// Ok reports whether verification succeeded (no non-warning issues).
func (r *Report) Ok() bool {
	for _, i := range r.Issues {
		if !i.Warning {
			return false
		}
	}
	return true
}

func (r *Report) add(i Issue) { r.Issues = append(r.Issues, i) }

// String summarizes the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verification: blocks=%d txs=%d row-versions=%d tables=%d indexes=%d digests=%d",
		r.BlocksChecked, r.TransactionsChecked, r.RowVersionsChecked, r.TablesChecked, r.IndexesChecked, r.DigestsChecked)
	if r.Ok() {
		b.WriteString(" -- OK")
	} else {
		fmt.Fprintf(&b, " -- FAILED (%d issues)", len(r.Issues))
	}
	fmt.Fprintf(&b, "\n  timing: %s", r.Timing)
	for _, i := range r.Issues {
		b.WriteString("\n  ")
		b.WriteString(i.String())
	}
	return b.String()
}

// VerifyOptions tunes a verification run.
type VerifyOptions struct {
	// Tables restricts invariants 4 and 5 to the named ledger tables
	// (§2.3: "options to verify individual Ledger tables or only a subset
	// of the ledger"). Empty means all ledger tables.
	Tables []string
	// Parallelism bounds the number of goroutines verification may keep
	// busy at once (default GOMAXPROCS). It applies both across ledger
	// tables and *within* one: a single large table is split into shard
	// scans and its per-transaction Merkle roots are recomputed by a
	// worker pool, so a database dominated by one table still scales
	// with cores.
	Parallelism int
	// Progress, if set, receives streaming progress updates as phases
	// and per-table shards complete. Ratios are monotonically
	// non-decreasing and end at exactly 1.0; the callback may run from
	// multiple verification goroutines but calls are serialized.
	Progress func(VerifyProgress)
	// Blocks, if set, restricts verification to ledger blocks in the
	// inclusive range [From, To]: invariants 1-3 only cover in-range
	// blocks (the chain link of block From is still anchored against the
	// recomputed hash of block From-1 when that block exists), and
	// invariant 4 only recomputes the Merkle roots of transactions whose
	// block is in range. Row and index scans still walk whole tables —
	// the range scopes which checks run, not the scan cost; the
	// incremental Auditor is the O(delta) path.
	Blocks *BlockRange
}

// BlockRange is an inclusive range of ledger block ids.
type BlockRange struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// contains reports whether block b is in the range; a nil range contains
// every block.
func (r *BlockRange) contains(b uint64) bool {
	return r == nil || (b >= r.From && b <= r.To)
}

// workerPool bounds verification concurrency with a semaphore of n-1
// slots: submitters run tasks inline when every slot is busy, so the
// submitting goroutine itself is the n-th worker. Because acquisition
// never blocks, nested use (table tasks fanning out into shard tasks)
// cannot deadlock, and Parallelism: 1 degrades to fully serial execution.
type workerPool struct {
	sem chan struct{}
}

func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = 1
	}
	return &workerPool{sem: make(chan struct{}, n-1)}
}

// run executes every task, spawning goroutines while slots are free and
// running tasks inline otherwise, and returns when all have finished.
func (p *workerPool) run(tasks []func()) {
	var wg sync.WaitGroup
	for _, task := range tasks {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(f func()) {
				defer wg.Done()
				defer func() { <-p.sem }()
				f()
			}(task)
		default:
			task()
		}
	}
	wg.Wait()
}

// Verify is the ledger verification process (§3.4): given previously
// generated digests, it recomputes every hash in the database ledger from
// the current state of the ledger, history and system tables, checking
// the five invariants plus the ledger-view definitions. The database
// should be quiescent while verification runs (run it against a restored
// copy or a maintenance window, as the paper suggests).
func (l *LedgerDB) Verify(digests []Digest, opts VerifyOptions) (*Report, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	rep := &Report{}
	sp := l.obs.Tracer().Start("verify",
		obs.L("parallelism", fmt.Sprintf("%d", opts.Parallelism)))
	var prog *progressSink
	if opts.Progress != nil || l.obs.Enabled() {
		prog = newProgressSink(opts.Progress, l.m.verifyProgress)
	}
	l.obs.Events().Info(obs.EventVerifyStarted,
		"digests", len(digests), "parallelism", opts.Parallelism)
	defer func() {
		sp.Finish(nil)
		l.m.verifies.Inc()
		l.m.verifyIssues.Add(int64(len(rep.Issues)))
		l.m.verifyChain.Observe(rep.Timing.Chain.Seconds())
		l.m.verifyRowVersions.Observe(rep.Timing.RowVersions.Seconds())
		l.m.verifyIndexes.Observe(rep.Timing.Indexes.Seconds())
		l.m.verifyViews.Observe(rep.Timing.Views.Seconds())
		l.m.verifyTotal.Observe(rep.Timing.Total.Seconds())
		l.noteVerifyFinished(rep)
	}()

	// Collect all transaction entries: persisted plus still queued.
	entries := make(map[uint64]*wal.LedgerEntry)
	l.sysTx.Scan(func(_ []byte, r sqltypes.Row) bool {
		e := rowToEntry(r)
		entries[e.TxID] = e
		return true
	})
	l.lmu.Lock()
	for _, e := range l.queue {
		if _, dup := entries[e.TxID]; !dup {
			entries[e.TxID] = e
		}
	}
	l.lmu.Unlock()
	truncatedBefore, truncatedMaxTx := l.truncationInfo()

	// A block range scopes invariant 1 to in-range digests and
	// invariant 3 to in-range transaction entries.
	scoped := entries
	if opts.Blocks != nil {
		var inRange []Digest
		for _, d := range digests {
			if opts.Blocks.contains(d.BlockID) {
				inRange = append(inRange, d)
			}
		}
		digests = inRange
		scoped = make(map[uint64]*wal.LedgerEntry)
		for txID, e := range entries {
			if opts.Blocks.contains(e.BlockID) {
				scoped[txID] = e
			}
		}
	}

	// Invariants 1–3 run as query plans over the system tables, the way
	// §3.4.2 expresses them inside the query processor (see
	// verify_queries.go).
	phase := time.Now()
	l.verifyDigestsQuery(digests, truncatedBefore, rep)
	l.verifyChainQuery(truncatedBefore, opts.Blocks, rep)
	l.verifyBlockRootsQuery(scoped, opts.Blocks, rep)
	rep.Timing.Chain = time.Since(phase)
	prog.add(progressChainWeight, "chain", "")

	// Invariants 4 and 5, per ledger table. One worker pool is shared by
	// the table-level fan-out and the shard/root fan-out inside each
	// table, keeping total concurrency at opts.Parallelism whatever the
	// table-size distribution looks like.
	tables := l.LedgerTables()
	if len(opts.Tables) > 0 {
		want := make(map[string]bool, len(opts.Tables))
		for _, n := range opts.Tables {
			want[strings.ToLower(n)] = true
		}
		var filtered []*LedgerTable
		for _, lt := range tables {
			if want[strings.ToLower(lt.Name())] {
				filtered = append(filtered, lt)
			}
		}
		tables = filtered
	}
	// Progress weight per table, proportional to its row-version count
	// so the bar tracks actual scan work rather than table count.
	tableWeight := make([]float64, len(tables))
	var totalRows float64
	for i, lt := range tables {
		n := float64(lt.table.RowCount() + 1)
		if lt.history != nil {
			n += float64(lt.history.RowCount())
		}
		tableWeight[i] = n
		totalRows += n
	}
	for i := range tableWeight {
		tableWeight[i] = progressTablesWeight * tableWeight[i] / totalRows
	}

	pool := newWorkerPool(opts.Parallelism)
	var mu sync.Mutex
	tableTasks := make([]func(), 0, len(tables))
	for ti, lt := range tables {
		lt, w := lt, tableWeight[ti]
		tableTasks = append(tableTasks, func() {
			sub := &Report{}
			t0 := time.Now()
			l.verifyTable(lt, entries, opts.Blocks, truncatedBefore, truncatedMaxTx, opts.Parallelism, pool, sub, prog, w*progressRowsShare)
			rows := time.Since(t0)
			t1 := time.Now()
			l.verifyIndexes(lt, opts.Parallelism, pool, sub, prog, w*progressIndexShare)
			idx := time.Since(t1)
			mu.Lock()
			rep.Issues = append(rep.Issues, sub.Issues...)
			rep.RowVersionsChecked += sub.RowVersionsChecked
			rep.IndexesChecked += sub.IndexesChecked
			rep.TablesChecked++
			rep.Timing.RowVersions += rows
			rep.Timing.Indexes += idx
			mu.Unlock()
		})
	}
	pool.run(tableTasks)

	// Final step (§3.4.2): ledger-view definitions must match their
	// canonical derivation.
	phase = time.Now()
	for _, lt := range tables {
		def, ok := l.ViewDefinition(lt.ID())
		if !ok {
			rep.add(Issue{Table: lt.Name(), Detail: "ledger view definition is missing"})
			continue
		}
		if def != lt.canonicalViewDefinition() {
			rep.add(Issue{Table: lt.Name(), Detail: "ledger view definition has been altered"})
		}
	}
	rep.Timing.Views = time.Since(phase)
	prog.add(progressViewsWeight, "views", "")
	prog.finish()

	// Total order (invariant, table, detail): parallel runs at any
	// Parallelism produce identical issue lists.
	sort.SliceStable(rep.Issues, func(i, j int) bool {
		a, b := rep.Issues[i], rep.Issues[j]
		if a.Invariant != b.Invariant {
			return a.Invariant < b.Invariant
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		return a.Detail < b.Detail
	})
	rep.Timing.Total = time.Since(start)
	return rep, nil
}

// maxIssueEvents caps per-issue audit events from one verification run
// so a badly tampered database cannot flush the whole event ring.
const maxIssueEvents = 16

// noteVerifyFinished records the run for health tracking and emits the
// finish (and per-issue) audit events.
func (l *LedgerDB) noteVerifyFinished(rep *Report) {
	ev := l.obs.Events()
	for i, iss := range rep.Issues {
		if i == maxIssueEvents {
			ev.Warn(obs.EventVerifyIssue, "suppressed", len(rep.Issues)-maxIssueEvents)
			break
		}
		ev.Warn(obs.EventVerifyIssue,
			"invariant", iss.Invariant, "table", iss.Table, "warning", iss.Warning, "detail", iss.Detail)
	}
	ev.Info(obs.EventVerifyFinished,
		"ok", rep.Ok(), "issues", len(rep.Issues),
		"blocks", rep.BlocksChecked, "transactions", rep.TransactionsChecked,
		"row_versions", rep.RowVersionsChecked,
		"duration_seconds", rep.Timing.Total.Seconds())
	l.healthMu.Lock()
	l.lastVerify = verifyMark{
		done: true, at: time.Now(), dur: rep.Timing.Total,
		ok: rep.Ok(), issues: len(rep.Issues),
	}
	l.healthMu.Unlock()
}

// opLeaf is one recomputed row-version hash attributed to a transaction.
type opLeaf struct {
	seq  uint64
	hash merkle.Hash
	// historyInsert marks the insert-side hash of a history-table row.
	// It is the only op class a *truncated* transaction may legitimately
	// still be referenced by: the row itself stays covered by the
	// surviving deleting transaction's root (§5.2).
	historyInsert bool
}

// shardOps is the output of one shard scan: recomputed row-version hashes
// grouped by transaction, plus the shard's row count.
type shardOps struct {
	byTx map[uint64][]opLeaf
	rows int
}

// verifyTable checks invariant 4 for one ledger table: for every
// transaction, the Merkle root recomputed over the row versions it
// created/deleted (in sequence order) matches the root recorded in its
// ledger entry, and no row references an unknown transaction.
//
// The work runs as a two-stage pipeline on the shared pool. Stage one
// splits the base and history trees into ~parallelism contiguous key
// ranges (engine.Table.ScanShards) and re-hashes each shard's rows into a
// per-shard tx→ops map, so one large table keeps every core busy. Stage
// two merges the shards and fans the per-transaction Merkle-root
// recomputation back out over the pool.
func (l *LedgerDB) verifyTable(lt *LedgerTable, entries map[uint64]*wal.LedgerEntry, blocks *BlockRange, truncatedBefore, truncatedMaxTx uint64, parallelism int, pool *workerPool, rep *Report, prog *progressSink, weight float64) {
	s := lt.table.Schema()
	name := lt.Name()

	var (
		tasks  []func()
		shards []*shardOps
	)
	addScans := func(t *engine.Table, history bool) {
		for _, kr := range t.ScanShards(parallelism) {
			kr := kr
			res := &shardOps{byTx: make(map[uint64][]opLeaf)}
			shards = append(shards, res)
			tasks = append(tasks, func() {
				t.ScanRange(kr.Start, kr.End, func(_ []byte, full sqltypes.Row) bool {
					tx := uint64(full[lt.startTxOrd].Int())
					seq := uint64(full[lt.startSeqOrd].Int())
					h := serial.HashRow(s, full, serial.OpInsert, lt.skipEnd)
					res.byTx[tx] = append(res.byTx[tx], opLeaf{seq: seq, hash: h, historyInsert: history})
					res.rows++
					if history {
						endTx := uint64(full[lt.endTxOrd].Int())
						endSeq := uint64(full[lt.endSeqOrd].Int())
						dh := serial.HashRow(s, full, serial.OpDelete, nil)
						res.byTx[endTx] = append(res.byTx[endTx], opLeaf{seq: endSeq, hash: dh})
					}
					return true
				})
			})
		}
	}
	addScans(lt.table, false)
	if lt.history != nil {
		addScans(lt.history, true)
	}
	// Shard scans carry most of a table's row-version cost; the Merkle
	// root recomputation below gets the rest.
	pool.run(wrapProgress(tasks, prog, weight*0.7, "row_versions", name))

	// Adopt the first shard's map and merge the rest into it, so the
	// common serial case (one shard, no history) merges nothing.
	byTx := shards[0].byTx
	rep.RowVersionsChecked += shards[0].rows
	for _, res := range shards[1:] {
		rep.RowVersionsChecked += res.rows
		for tx, ops := range res.byTx {
			byTx[tx] = append(byTx[tx], ops...)
		}
	}

	// Per-transaction Merkle roots, fanned out in contiguous chunks; each
	// chunk worker reuses one leaves buffer across its transactions.
	txIDs := make([]uint64, 0, len(byTx))
	for txID := range byTx {
		txIDs = append(txIDs, txID)
	}
	sort.Slice(txIDs, func(i, j int) bool { return txIDs[i] < txIDs[j] })
	chunks := chunkTxIDs(txIDs, parallelism)
	subs := make([]*Report, len(chunks))
	rootTasks := make([]func(), 0, len(chunks))
	for ci, chunk := range chunks {
		ci, chunk := ci, chunk
		subs[ci] = &Report{}
		rootTasks = append(rootTasks, func() {
			sub := subs[ci]
			var leaves []merkle.Hash
			for _, txID := range chunk {
				ops := byTx[txID]
				e, ok := entries[txID]
				if !ok {
					if txID <= truncatedMaxTx && allHistoryInserts(ops) {
						// Legitimately truncated: only the insert side of
						// surviving history rows may point here; those rows
						// are still covered by their deleting transaction's
						// root.
						continue
					}
					sub.add(Issue{Invariant: 4, Table: name,
						Detail: fmt.Sprintf("row versions reference transaction %d which is not recorded in the ledger", txID)})
					continue
				}
				if !blocks.contains(e.BlockID) {
					// Out-of-range transactions keep their rows; a block
					// range only scopes which roots are recomputed.
					continue
				}
				var recorded *merkle.Hash
				for i := range e.Roots {
					if e.Roots[i].TableID == lt.ID() {
						recorded = &e.Roots[i].Root
						break
					}
				}
				if recorded == nil {
					sub.add(Issue{Invariant: 4, Table: name,
						Detail: fmt.Sprintf("transaction %d has row versions in this table but no recorded Merkle root for it", txID)})
					continue
				}
				// Shard merge order is arbitrary; the hash tiebreak keeps
				// the recomputed root deterministic even for (tampered)
				// duplicate sequence numbers.
				sort.Slice(ops, func(i, j int) bool {
					if ops[i].seq != ops[j].seq {
						return ops[i].seq < ops[j].seq
					}
					return bytes.Compare(ops[i].hash[:], ops[j].hash[:]) < 0
				})
				if cap(leaves) < len(ops) {
					leaves = make([]merkle.Hash, 0, len(ops)*2)
				}
				leaves = leaves[:0]
				for _, op := range ops {
					leaves = append(leaves, op.hash)
				}
				if got := merkle.RootOf(leaves); got != *recorded {
					sub.add(Issue{Invariant: 4, Table: name,
						Detail: fmt.Sprintf("transaction %d Merkle root mismatch: recorded=%s computed=%s", txID, recorded, got)})
				}
			}
		})
	}
	pool.run(wrapProgress(rootTasks, prog, weight*0.3, "row_versions", name))
	for _, sub := range subs {
		rep.Issues = append(rep.Issues, sub.Issues...)
	}

	// Completeness: entries claiming updates to this table must have row
	// versions backing them (unless truncation legitimately removed them).
	for txID, e := range entries {
		if _, seen := byTx[txID]; seen {
			continue
		}
		if e.BlockID < truncatedBefore || !blocks.contains(e.BlockID) {
			continue
		}
		for _, tr := range e.Roots {
			if tr.TableID == lt.ID() {
				rep.add(Issue{Invariant: 4, Table: name,
					Detail: fmt.Sprintf("transaction %d recorded updates to this table but no row versions remain", txID)})
			}
		}
	}
}

// chunkTxIDs splits ids into at most n contiguous, near-equal chunks.
func chunkTxIDs(ids []uint64, n int) [][]uint64 {
	if len(ids) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(ids) {
		n = len(ids)
	}
	chunks := make([][]uint64, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(ids)/n, (i+1)*len(ids)/n
		chunks = append(chunks, ids[lo:hi])
	}
	return chunks
}

// allHistoryInserts reports whether every op is a history-row insert hash.
func allHistoryInserts(ops []opLeaf) bool {
	for _, op := range ops {
		if !op.historyInsert {
			return false
		}
	}
	return true
}

// verifyIndexes checks invariant 5: every nonclustered index of the
// ledger table and its history table must be equivalent to the base data.
//
// Equivalence is a multiset comparison of (entry key, clustered key)
// pairs: each index is shard-scanned into a mergeable order-independent
// accumulator (merkle.Accumulator) with an explicit ascending-order check
// per shard, while ONE sharded pass over the base table recomputes every
// index's entry key per row and feeds per-index accumulators. That
// replaces the per-index base re-scan (O(indexes × rows)) and the
// O(n log n) sort of recomputed pairs of the serial implementation.
func (l *LedgerDB) verifyIndexes(lt *LedgerTable, parallelism int, pool *workerPool, rep *Report, prog *progressSink, weight float64) {
	type tableRef struct {
		name string
		t    *engine.Table
	}
	tables := []tableRef{{lt.table.Name(), lt.table}}
	if lt.history != nil {
		tables = append(tables, tableRef{lt.history.Name(), lt.history})
	}
	perRef := weight / float64(len(tables))
	for _, tr := range tables {
		ixs := tr.t.Indexes()
		if len(ixs) == 0 {
			prog.add(perRef, "indexes", tr.name)
			continue
		}
		rep.IndexesChecked += len(ixs)

		type indexShard struct {
			ixi     int
			acc     merkle.Accumulator
			ordered bool
		}
		var (
			tasks       []func()
			indexShards []*indexShard
			baseShards  []*[]merkle.Accumulator
		)
		for ixi, ix := range ixs {
			for _, kr := range tr.t.ScanIndexShards(ix, parallelism) {
				ixi, ix, kr := ixi, ix, kr
				res := &indexShard{ixi: ixi, ordered: true}
				indexShards = append(indexShards, res)
				tasks = append(tasks, func() {
					var prev []byte
					first := true
					tr.t.ScanIndexRange(ix, kr.Start, kr.End, func(entryKey, clusteredKey []byte) bool {
						if !first && bytes.Compare(prev, entryKey) > 0 {
							res.ordered = false
						}
						first = false
						prev = append(prev[:0], entryKey...)
						res.acc.Add(serial.HashBytes(entryKey, clusteredKey))
						return true
					})
				})
			}
		}
		for _, kr := range tr.t.ScanShards(parallelism) {
			kr := kr
			accs := make([]merkle.Accumulator, len(ixs))
			baseShards = append(baseShards, &accs)
			tasks = append(tasks, func() {
				tr.t.ScanRange(kr.Start, kr.End, func(ck []byte, row sqltypes.Row) bool {
					for ixi, ix := range ixs {
						accs[ixi].Add(serial.HashBytes(ix.EntryKey(ck, row), ck))
					}
					return true
				})
			})
		}
		pool.run(wrapProgress(tasks, prog, perRef, "indexes", tr.name))

		actual := make([]merkle.Accumulator, len(ixs))
		ordered := make([]bool, len(ixs))
		for i := range ordered {
			ordered[i] = true
		}
		for _, res := range indexShards {
			actual[res.ixi].Merge(res.acc)
			if !res.ordered {
				ordered[res.ixi] = false
			}
		}
		expected := make([]merkle.Accumulator, len(ixs))
		for _, accs := range baseShards {
			for i := range expected {
				expected[i].Merge((*accs)[i])
			}
		}
		for ixi, ix := range ixs {
			// Shard ranges are disjoint and ascending, so per-shard
			// ordering implies whole-index ordering — the property the
			// order-independent accumulator itself cannot observe.
			if !ordered[ixi] {
				rep.add(Issue{Invariant: 5, Table: tr.name,
					Detail: fmt.Sprintf("nonclustered index %s entries are out of order", ix.Meta().Name)})
			}
			if !actual[ixi].Equal(expected[ixi]) {
				rep.add(Issue{Invariant: 5, Table: tr.name,
					Detail: fmt.Sprintf("nonclustered index %s is not equivalent to the base table data", ix.Meta().Name)})
			}
		}
	}
}
