package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"sqlledger/internal/engine"
	"sqlledger/internal/merkle"
	"sqlledger/internal/serial"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Issue is one inconsistency found by verification. Warning-class issues
// (e.g. digests that point past a restore or truncation point) do not fail
// the verification by themselves.
type Issue struct {
	// Invariant is the ledger invariant (1-5, §3.4.1) that failed; 0 for
	// issues outside the numbered invariants (view definitions, inputs).
	Invariant int
	Table     string
	Detail    string
	Warning   bool
}

func (i Issue) String() string {
	kind := "TAMPER"
	if i.Warning {
		kind = "WARNING"
	}
	if i.Table != "" {
		return fmt.Sprintf("[%s inv%d table=%s] %s", kind, i.Invariant, i.Table, i.Detail)
	}
	return fmt.Sprintf("[%s inv%d] %s", kind, i.Invariant, i.Detail)
}

// Report is the outcome of a verification run.
type Report struct {
	Issues []Issue

	BlocksChecked       int
	TransactionsChecked int
	RowVersionsChecked  int
	TablesChecked       int
	IndexesChecked      int
	DigestsChecked      int
}

// Ok reports whether verification succeeded (no non-warning issues).
func (r *Report) Ok() bool {
	for _, i := range r.Issues {
		if !i.Warning {
			return false
		}
	}
	return true
}

func (r *Report) add(i Issue) { r.Issues = append(r.Issues, i) }

// String summarizes the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verification: blocks=%d txs=%d row-versions=%d tables=%d indexes=%d digests=%d",
		r.BlocksChecked, r.TransactionsChecked, r.RowVersionsChecked, r.TablesChecked, r.IndexesChecked, r.DigestsChecked)
	if r.Ok() {
		b.WriteString(" -- OK")
	} else {
		fmt.Fprintf(&b, " -- FAILED (%d issues)", len(r.Issues))
	}
	for _, i := range r.Issues {
		b.WriteString("\n  ")
		b.WriteString(i.String())
	}
	return b.String()
}

// VerifyOptions tunes a verification run.
type VerifyOptions struct {
	// Tables restricts invariants 4 and 5 to the named ledger tables
	// (§2.3: "options to verify individual Ledger tables or only a subset
	// of the ledger"). Empty means all ledger tables.
	Tables []string
	// Parallelism bounds the number of tables verified concurrently
	// (default GOMAXPROCS).
	Parallelism int
}

// Verify is the ledger verification process (§3.4): given previously
// generated digests, it recomputes every hash in the database ledger from
// the current state of the ledger, history and system tables, checking
// the five invariants plus the ledger-view definitions. The database
// should be quiescent while verification runs (run it against a restored
// copy or a maintenance window, as the paper suggests).
func (l *LedgerDB) Verify(digests []Digest, opts VerifyOptions) (*Report, error) {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	rep := &Report{}

	// Collect all transaction entries: persisted plus still queued.
	entries := make(map[uint64]*wal.LedgerEntry)
	l.sysTx.Scan(func(_ []byte, r sqltypes.Row) bool {
		e := rowToEntry(r)
		entries[e.TxID] = e
		return true
	})
	l.lmu.Lock()
	for _, e := range l.queue {
		if _, dup := entries[e.TxID]; !dup {
			entries[e.TxID] = e
		}
	}
	l.lmu.Unlock()
	truncatedBefore, truncatedMaxTx := l.truncationInfo()

	// Invariants 1–3 run as query plans over the system tables, the way
	// §3.4.2 expresses them inside the query processor (see
	// verify_queries.go).
	l.verifyDigestsQuery(digests, truncatedBefore, rep)
	l.verifyChainQuery(truncatedBefore, rep)
	l.verifyBlockRootsQuery(entries, rep)

	// Invariants 4 and 5, per ledger table, in parallel.
	tables := l.LedgerTables()
	if len(opts.Tables) > 0 {
		want := make(map[string]bool, len(opts.Tables))
		for _, n := range opts.Tables {
			want[strings.ToLower(n)] = true
		}
		var filtered []*LedgerTable
		for _, lt := range tables {
			if want[strings.ToLower(lt.Name())] {
				filtered = append(filtered, lt)
			}
		}
		tables = filtered
	}
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, opts.Parallelism)
	)
	for _, lt := range tables {
		wg.Add(1)
		sem <- struct{}{}
		go func(lt *LedgerTable) {
			defer wg.Done()
			defer func() { <-sem }()
			sub := &Report{}
			l.verifyTable(lt, entries, truncatedMaxTx, sub)
			l.verifyIndexes(lt, sub)
			mu.Lock()
			rep.Issues = append(rep.Issues, sub.Issues...)
			rep.RowVersionsChecked += sub.RowVersionsChecked
			rep.IndexesChecked += sub.IndexesChecked
			rep.TablesChecked++
			mu.Unlock()
		}(lt)
	}
	wg.Wait()

	// Final step (§3.4.2): ledger-view definitions must match their
	// canonical derivation.
	for _, lt := range tables {
		def, ok := l.ViewDefinition(lt.ID())
		if !ok {
			rep.add(Issue{Table: lt.Name(), Detail: "ledger view definition is missing"})
			continue
		}
		if def != lt.canonicalViewDefinition() {
			rep.add(Issue{Table: lt.Name(), Detail: "ledger view definition has been altered"})
		}
	}

	sort.SliceStable(rep.Issues, func(i, j int) bool { return rep.Issues[i].Invariant < rep.Issues[j].Invariant })
	return rep, nil
}

// opLeaf is one recomputed row-version hash attributed to a transaction.
type opLeaf struct {
	seq  uint64
	hash merkle.Hash
	// historyInsert marks the insert-side hash of a history-table row.
	// It is the only op class a *truncated* transaction may legitimately
	// still be referenced by: the row itself stays covered by the
	// surviving deleting transaction's root (§5.2).
	historyInsert bool
}

// verifyTable checks invariant 4 for one ledger table: for every
// transaction, the Merkle root recomputed over the row versions it
// created/deleted (in sequence order) matches the root recorded in its
// ledger entry, and no row references an unknown transaction.
func (l *LedgerDB) verifyTable(lt *LedgerTable, entries map[uint64]*wal.LedgerEntry, truncatedMaxTx uint64, rep *Report) {
	s := lt.table.Schema()
	byTx := make(map[uint64][]opLeaf)
	name := lt.Name()

	noteInsert := func(full sqltypes.Row, history bool) {
		tx := uint64(full[lt.startTxOrd].Int())
		seq := uint64(full[lt.startSeqOrd].Int())
		h := serial.HashRow(s, full, serial.OpInsert, lt.skipEndColumns)
		byTx[tx] = append(byTx[tx], opLeaf{seq: seq, hash: h, historyInsert: history})
		rep.RowVersionsChecked++
	}
	lt.table.Scan(func(_ []byte, full sqltypes.Row) bool {
		noteInsert(full, false)
		return true
	})
	if lt.history != nil {
		lt.history.Scan(func(_ []byte, full sqltypes.Row) bool {
			noteInsert(full, true)
			endTx := uint64(full[lt.endTxOrd].Int())
			endSeq := uint64(full[lt.endSeqOrd].Int())
			h := serial.HashRow(s, full, serial.OpDelete, nil)
			byTx[endTx] = append(byTx[endTx], opLeaf{seq: endSeq, hash: h})
			return true
		})
	}

	truncated, _ := l.truncationInfo()
	for txID, ops := range byTx {
		e, ok := entries[txID]
		if !ok {
			if txID <= truncatedMaxTx && allHistoryInserts(ops) {
				// Legitimately truncated: only the insert side of
				// surviving history rows may point here; those rows are
				// still covered by their deleting transaction's root.
				continue
			}
			rep.add(Issue{Invariant: 4, Table: name,
				Detail: fmt.Sprintf("row versions reference transaction %d which is not recorded in the ledger", txID)})
			continue
		}
		var recorded *merkle.Hash
		for i := range e.Roots {
			if e.Roots[i].TableID == lt.ID() {
				recorded = &e.Roots[i].Root
				break
			}
		}
		if recorded == nil {
			rep.add(Issue{Invariant: 4, Table: name,
				Detail: fmt.Sprintf("transaction %d has row versions in this table but no recorded Merkle root for it", txID)})
			continue
		}
		sort.Slice(ops, func(i, j int) bool { return ops[i].seq < ops[j].seq })
		leaves := make([]merkle.Hash, len(ops))
		for i, op := range ops {
			leaves[i] = op.hash
		}
		if got := merkle.RootOf(leaves); got != *recorded {
			rep.add(Issue{Invariant: 4, Table: name,
				Detail: fmt.Sprintf("transaction %d Merkle root mismatch: recorded=%s computed=%s", txID, recorded, got)})
		}
	}
	// Completeness: entries claiming updates to this table must have row
	// versions backing them (unless truncation legitimately removed them).
	for txID, e := range entries {
		if _, seen := byTx[txID]; seen {
			continue
		}
		if e.BlockID < truncated {
			continue
		}
		for _, tr := range e.Roots {
			if tr.TableID == lt.ID() {
				rep.add(Issue{Invariant: 4, Table: name,
					Detail: fmt.Sprintf("transaction %d recorded updates to this table but no row versions remain", txID)})
			}
		}
	}
}

// allHistoryInserts reports whether every op is a history-row insert hash.
func allHistoryInserts(ops []opLeaf) bool {
	for _, op := range ops {
		if !op.historyInsert {
			return false
		}
	}
	return true
}

// verifyIndexes checks invariant 5: every nonclustered index of the
// ledger table and its history table must be equivalent to the base data.
// Equivalence is checked by comparing a Merkle root over the index's
// (entry key, clustered key) pairs in index order with a root over the
// pairs recomputed from the base table and sorted the same way.
func (l *LedgerDB) verifyIndexes(lt *LedgerTable, rep *Report) {
	type tableRef struct {
		name string
		t    *engine.Table
	}
	tables := []tableRef{{lt.table.Name(), lt.table}}
	if lt.history != nil {
		tables = append(tables, tableRef{lt.history.Name(), lt.history})
	}
	for _, tr := range tables {
		for _, ix := range tr.t.Indexes() {
			rep.IndexesChecked++
			var actual merkle.Streaming
			tr.t.ScanIndex(ix, func(entryKey, clusteredKey []byte) bool {
				actual.Append(serial.HashBytes(entryKey, clusteredKey))
				return true
			})
			type pair struct{ ek, ck []byte }
			var expected []pair
			tr.t.Scan(func(ck []byte, row sqltypes.Row) bool {
				expected = append(expected, pair{ix.EntryKey(ck, row), ck})
				return true
			})
			sort.Slice(expected, func(i, j int) bool {
				return string(expected[i].ek) < string(expected[j].ek)
			})
			var want merkle.Streaming
			for _, p := range expected {
				want.Append(serial.HashBytes(p.ek, p.ck))
			}
			if actual.Root() != want.Root() || actual.Count() != want.Count() {
				rep.add(Issue{Invariant: 5, Table: tr.name,
					Detail: fmt.Sprintf("nonclustered index %s is not equivalent to the base table data", ix.Meta().Name)})
			}
		}
	}
}
