package core

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
)

// Sharded ledger: the single-instance stack (engine + WAL + group
// committer + block chain) scaled across N independent instances under
// one signed super-root. Rows are hash-partitioned by primary key, so the
// common case — a transaction whose rows all map to one shard — runs the
// existing single-instance commit pipeline untouched; transactions that
// straddle shards commit with two-phase commit over the per-shard WALs
// (twopc.go); and the digest of digests (superblock.go) folds the N chain
// heads back into one verifiable root.
//
// Shards = 1 is the degenerate layout: one shard living directly in
// Options.Dir with the database's own name, byte-compatible with a
// database created by plain Open.

// ErrTxUsed is returned when a finished sharded transaction is reused.
var ErrTxUsed = errors.New("core: sharded transaction already finished")

// --- Routing -----------------------------------------------------------

// fnv64a is FNV-1a, inlined so routing adds no dependency and no
// allocation to the ingest path.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// shardRouter deterministically maps encoded primary keys to shards.
// Determinism matters beyond correctness: it makes sharded digests
// byte-reproducible across runs under a logical clock, which is what the
// digest-equality experiment pins.
type shardRouter struct{ n int }

func (r shardRouter) shardOfKey(encKey []byte) int {
	if r.n <= 1 {
		return 0
	}
	return int(fnv64a(encKey) % uint64(r.n))
}

// --- ShardedDB ---------------------------------------------------------

// shardMetrics holds the sharded coordinator's metric handles.
type shardMetrics struct {
	commits      []*obs.Counter // per shard, label shard="NNN"
	ingestRows   []*obs.Counter
	imbalance    *obs.Gauge
	crossTx      *obs.Counter
	superSeconds *obs.Histogram
	superClosed  *obs.Counter
}

func bindShardMetrics(reg *obs.Registry, n int) shardMetrics {
	m := shardMetrics{
		imbalance:    reg.Gauge(obs.ShardImbalanceRatio),
		crossTx:      reg.Counter(obs.CrossShardTxTotal),
		superSeconds: reg.Histogram(obs.SuperblockCloseSeconds, nil),
		superClosed:  reg.Counter(obs.SuperblocksClosedTotal),
	}
	for i := 0; i < n; i++ {
		lbl := obs.L("shard", fmt.Sprintf("%03d", i))
		m.commits = append(m.commits, reg.Counter(obs.ShardCommitsTotal, lbl))
		m.ingestRows = append(m.ingestRows, reg.Counter(obs.ShardIngestRowsTotal, lbl))
	}
	return m
}

// ShardedDB is a ledger database hash-partitioned across N shard
// instances, each a full LedgerDB with its own engine, WAL, group
// committer and block chain, coordinated under one signed super-root.
type ShardedDB struct {
	opts   Options
	router shardRouter
	shards []*LedgerDB

	// Cross-shard 2PC coordination (nil / unused when Shards == 1).
	dlog *decisionLog
	gid  atomic.Uint64

	// Super-block signing key and watermark.
	priv      ed25519.PrivateKey
	smu       sync.Mutex
	lastSuper *SuperBlock

	// rowCounts tracks per-shard ingested rows since open, feeding the
	// shard-imbalance gauge.
	rowCounts []atomic.Int64

	// Test-only crash hooks on the cross-shard commit path: invoked with
	// every participant prepared (before the commit decision is durable)
	// and right after the decision is logged (before phase 2 applies).
	hookAfterPrepare  func()
	hookAfterDecision func()

	// auditor is the registered sharded auditor, if any; the sharded
	// ops surface reads its status through this pointer.
	auditor atomic.Pointer[ShardedAuditor]

	obs *obs.Registry
	m   shardMetrics
}

// superKeyFile persists the ed25519 seed that signs super-blocks, hex
// encoded, in the sharded database's root directory.
const superKeyFile = "superblock.key"

func loadOrCreateSuperKey(dir string) (ed25519.PrivateKey, error) {
	path := filepath.Join(dir, superKeyFile)
	b, err := os.ReadFile(path)
	if err == nil {
		seed, derr := hex.DecodeString(string(b))
		if derr != nil || len(seed) != ed25519.SeedSize {
			return nil, fmt.Errorf("core: bad super-block key file %s", path)
		}
		return ed25519.NewKeyFromSeed(seed), nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	seed := make([]byte, ed25519.SeedSize)
	if _, err := rand.Read(seed); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, []byte(hex.EncodeToString(seed)), 0o600); err != nil {
		return nil, err
	}
	return ed25519.NewKeyFromSeed(seed), nil
}

// shardDirName names shard i's subdirectory.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// OpenSharded opens (creating if necessary) a sharded ledger database.
// Options.Shards of 0 or 1 opens a single shard directly in Options.Dir —
// the exact on-disk layout plain Open produces, so existing databases can
// be wrapped without conversion. Shards > 1 lays out one subdirectory per
// shard. After each shard recovers its own WAL independently, the
// coordinator resolves in-doubt cross-shard transactions against its
// decision log (presumed abort) and reconciles the super-block watermark:
// every signed shard head must still be present in its shard's chain.
func OpenSharded(opts Options) (*ShardedDB, error) {
	n := opts.Shards
	if n == 0 {
		n = 1
	}
	if n < 0 {
		return nil, fmt.Errorf("core: invalid shard count %d", opts.Shards)
	}
	if opts.Name == "" {
		opts.Name = filepath.Base(opts.Dir)
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	priv, err := loadOrCreateSuperKey(opts.Dir)
	if err != nil {
		return nil, err
	}
	s := &ShardedDB{
		opts:      opts,
		router:    shardRouter{n: n},
		priv:      priv,
		rowCounts: make([]atomic.Int64, n),
		obs:       opts.Obs,
		m:         bindShardMetrics(opts.Obs, n),
	}
	closeAll := func() {
		for _, l := range s.shards {
			if l != nil {
				l.Close()
			}
		}
		s.dlog.Close()
	}

	if n > 1 {
		s.dlog, err = openDecisionLog(opts.Dir, opts.Sync)
		if err != nil {
			return nil, err
		}
	}

	// Open the shards concurrently: each is an independent LedgerDB whose
	// recovery replays its own WAL, so N shards restart in the wall-clock
	// time of the slowest one instead of the sum. Version-GC sweeps are
	// staggered so N instances on one box don't tick in lockstep.
	s.shards = make([]*LedgerDB, n)
	openErrs := make([]error, n)
	var owg sync.WaitGroup
	for i := 0; i < n; i++ {
		sopts := opts
		sopts.Shards = 0
		if n > 1 {
			sopts.Dir = filepath.Join(opts.Dir, shardDirName(i))
			sopts.Name = fmt.Sprintf("%s/%s", opts.Name, shardDirName(i))
			if sopts.VersionGCInterval == 0 {
				sopts.VersionGCInterval = 250 * time.Millisecond
			}
			sopts.VersionGCInterval += time.Duration(i) * 7 * time.Millisecond
		}
		owg.Add(1)
		go func(i int, sopts Options) {
			defer owg.Done()
			s.shards[i], openErrs[i] = Open(sopts)
		}(i, sopts)
	}
	owg.Wait()
	for i, oerr := range openErrs {
		if oerr != nil {
			closeAll()
			return nil, fmt.Errorf("core: opening shard %d: %w", i, oerr)
		}
	}

	// Resolve in-doubt cross-shard transactions: commit the gids whose
	// decision is durable, presume abort for the rest.
	maxGid := uint64(0)
	if s.dlog != nil {
		maxGid = s.dlog.maxGid
	}
	for i, shard := range s.shards {
		var committed map[uint64]bool
		if s.dlog != nil {
			committed = s.dlog.committed
		}
		mg, rerr := shard.resolveInDoubt(committed)
		if rerr != nil {
			closeAll()
			return nil, fmt.Errorf("core: shard %d: %w", i, rerr)
		}
		if mg > maxGid {
			maxGid = mg
		}
	}
	s.gid.Store(maxGid)

	// Reconcile the super-block watermark: each signed head must still
	// match its shard's chain, or the shard forked behind signed state.
	sb, werr := loadWatermark(opts.Dir)
	if werr != nil {
		closeAll()
		return nil, werr
	}
	if sb != nil {
		if sb.Shards != n {
			closeAll()
			return nil, fmt.Errorf("core: super-block watermark covers %d shards, database opened with %d", sb.Shards, n)
		}
		for _, h := range sb.Heads {
			if h.Empty {
				continue
			}
			if cerr := s.shards[h.Shard].CheckDigest(h.Digest); cerr != nil {
				closeAll()
				return nil, fmt.Errorf("core: shard %d diverged from super-block watermark %d: %w", h.Shard, sb.SeqNo, cerr)
			}
		}
		s.lastSuper = sb
	}
	return s, nil
}

// Close closes every shard and the coordinator state.
func (s *ShardedDB) Close() error {
	var first error
	for _, l := range s.shards {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.dlog.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// NumShards returns the shard count.
func (s *ShardedDB) NumShards() int { return s.router.n }

// Shard exposes one shard's LedgerDB (per-shard digests, verification,
// tamper simulation, engine access).
func (s *ShardedDB) Shard(i int) *LedgerDB { return s.shards[i] }

// Name returns the sharded database's name (shards are named
// "<name>/shard-NNN").
func (s *ShardedDB) Name() string { return s.opts.Name }

// Obs returns the shared metrics registry (all shards bind into it).
func (s *ShardedDB) Obs() *obs.Registry { return s.obs }

// PublicKey returns the super-block verification key.
func (s *ShardedDB) PublicKey() ed25519.PublicKey {
	return append(ed25519.PublicKey(nil), s.priv.Public().(ed25519.PublicKey)...)
}

// LastSuperBlock returns the latest closed super-block, if any.
func (s *ShardedDB) LastSuperBlock() *SuperBlock {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.lastSuper
}

// Checkpoint checkpoints every shard.
func (s *ShardedDB) Checkpoint() error {
	for i, l := range s.shards {
		if err := l.Checkpoint(); err != nil {
			return fmt.Errorf("core: checkpoint shard %d: %w", i, err)
		}
	}
	return nil
}

func (s *ShardedDB) nowNanos() int64 {
	if s.opts.Clock != nil {
		return s.opts.Clock()
	}
	return time.Now().UnixNano()
}

// updateImbalance recomputes the shard-imbalance gauge:
// max(rows)/mean(rows) over shards, 1.0 when perfectly balanced.
func (s *ShardedDB) updateImbalance() {
	if len(s.rowCounts) < 2 {
		s.m.imbalance.Set(1)
		return
	}
	var total, max int64
	for i := range s.rowCounts {
		v := s.rowCounts[i].Load()
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		s.m.imbalance.Set(1)
		return
	}
	mean := float64(total) / float64(len(s.rowCounts))
	s.m.imbalance.Set(float64(max) / mean)
}

// --- Sharded tables ----------------------------------------------------

// ShardedTable is a ledger table partitioned across every shard: the same
// name, schema and kind on each, with rows routed by primary key.
type ShardedTable struct {
	name   string
	router shardRouter
	parts  []*LedgerTable

	// keyOrds are the primary-key ordinals within the visible columns
	// (ledger schemas put user columns first, so engine key ordinals
	// index the visible prefix directly). Empty for keyless append-only
	// tables, which route on the whole row.
	keyOrds []int
}

// Name returns the table name.
func (st *ShardedTable) Name() string { return st.name }

// Part returns the table's slice on shard i.
func (st *ShardedTable) Part(i int) *LedgerTable { return st.parts[i] }

func (s *ShardedDB) wrapShardedTable(name string, parts []*LedgerTable) *ShardedTable {
	return &ShardedTable{
		name:    name,
		router:  s.router,
		parts:   parts,
		keyOrds: parts[0].table.Schema().Key,
	}
}

// CreateLedgerTable creates the table on every shard.
func (s *ShardedDB) CreateLedgerTable(name string, userSchema *sqltypes.Schema, kind engine.LedgerKind) (*ShardedTable, error) {
	parts := make([]*LedgerTable, len(s.shards))
	for i, l := range s.shards {
		lt, err := l.CreateLedgerTable(name, userSchema, kind)
		if err != nil {
			return nil, fmt.Errorf("core: creating %s on shard %d: %w", name, i, err)
		}
		parts[i] = lt
	}
	return s.wrapShardedTable(name, parts), nil
}

// LedgerTable resolves an existing sharded ledger table by name.
func (s *ShardedDB) LedgerTable(name string) (*ShardedTable, error) {
	parts := make([]*LedgerTable, len(s.shards))
	for i, l := range s.shards {
		lt, err := l.LedgerTable(name)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		parts[i] = lt
	}
	return s.wrapShardedTable(name, parts), nil
}

// shardOfRow routes a visible row by its primary-key columns (or the
// whole row for keyless tables).
func (st *ShardedTable) shardOfRow(visible sqltypes.Row, buf []sqltypes.Value) (int, error) {
	if st.router.n <= 1 {
		return 0, nil
	}
	vals := buf[:0]
	if len(st.keyOrds) > 0 {
		for _, ord := range st.keyOrds {
			if ord >= len(visible) {
				return 0, fmt.Errorf("core: row for %s is missing key column %d", st.name, ord)
			}
			vals = append(vals, visible[ord])
		}
	} else {
		vals = append(vals, visible...)
	}
	return st.router.shardOfKey(sqltypes.EncodeKey(nil, vals...)), nil
}

// shardOfKey routes explicit primary-key values.
func (st *ShardedTable) shardOfKey(keyVals []sqltypes.Value) int {
	if st.router.n <= 1 {
		return 0
	}
	return st.router.shardOfKey(sqltypes.EncodeKey(nil, keyVals...))
}

// ShardOf returns the shard that stores the row with the given
// primary-key values. Exposed so loaders and benchmarks can construct
// shard-pure (single-shard, no-2PC) transactions.
func (st *ShardedTable) ShardOf(keyVals ...sqltypes.Value) int { return st.shardOfKey(keyVals) }

// --- Sharded transactions ----------------------------------------------

// ShardedTx is a transaction over a sharded ledger database. Shard
// participants are created lazily on first touch; at Commit, a
// transaction that touched one shard commits through that shard's
// ordinary pipeline (no coordination), while a multi-shard transaction
// runs two-phase commit: prepare everywhere, log the decision, commit
// everywhere — atomic across shards even through a crash.
type ShardedTx struct {
	s    *ShardedDB
	user string
	txs  []*Tx // index = shard; nil until touched
	done bool

	// trace is the coordinator-owned trace shared by every participant,
	// so one trace ID spans both shard prepares and the decision log of a
	// cross-shard commit. nil when tracing is off.
	trace *obs.Trace

	keyBuf [8]sqltypes.Value // routing scratch
}

// Begin starts a sharded transaction on behalf of user.
func (s *ShardedDB) Begin(user string) *ShardedTx {
	return &ShardedTx{s: s, user: user, txs: make([]*Tx, len(s.shards)), trace: s.obs.NewTrace("tx")}
}

// Trace returns the transaction's trace (nil when tracing is off).
func (stx *ShardedTx) Trace() *obs.Trace { return stx.trace }

// finishTrace ends the coordinator-owned trace. Participants drop their
// references during their own commit/abort/rollback, so by the time either
// Commit or Rollback calls this, the coordinator holds the last one.
func (stx *ShardedTx) finishTrace(err error) {
	if stx.trace != nil {
		stx.trace.Finish(err)
		stx.trace = nil
	}
}

// at returns (creating if needed) the participant on shard i.
func (stx *ShardedTx) at(i int) *Tx {
	if stx.txs[i] == nil {
		stx.txs[i] = stx.s.shards[i].beginWithTrace(stx.user, stx.trace)
	}
	return stx.txs[i]
}

// Insert routes and inserts one row.
func (stx *ShardedTx) Insert(st *ShardedTable, visible sqltypes.Row) error {
	if stx.done {
		return ErrTxUsed
	}
	i, err := st.shardOfRow(visible, stx.keyBuf[:])
	if err != nil {
		return err
	}
	if err := stx.at(i).Insert(st.parts[i], visible); err != nil {
		return err
	}
	stx.s.rowCounts[i].Add(1)
	stx.s.m.ingestRows[i].Inc()
	return nil
}

// InsertBatch routes a batch of rows and bulk-inserts each shard's slice
// through the per-shard batched path, preserving the original row order
// within every shard (so routing is order-insensitive and digests are
// reproducible).
func (stx *ShardedTx) InsertBatch(st *ShardedTable, rows []sqltypes.Row) error {
	return stx.InsertBatchParallel(st, rows, 0)
}

// InsertBatchParallel is InsertBatch with an explicit per-shard hashing
// worker count (0 = one per CPU, 1 = serial hashing). The scaling
// benchmarks pin workers to 1 so measured speedups isolate shard
// parallelism from batch-hashing parallelism.
func (stx *ShardedTx) InsertBatchParallel(st *ShardedTable, rows []sqltypes.Row, workers int) error {
	if stx.done {
		return ErrTxUsed
	}
	if stx.s.router.n <= 1 {
		if err := stx.at(0).InsertBatchParallel(st.parts[0], rows, workers); err != nil {
			return err
		}
		stx.s.rowCounts[0].Add(int64(len(rows)))
		stx.s.m.ingestRows[0].Add(int64(len(rows)))
		return nil
	}
	perShard := make([][]sqltypes.Row, stx.s.router.n)
	for _, r := range rows {
		i, err := st.shardOfRow(r, stx.keyBuf[:])
		if err != nil {
			return err
		}
		perShard[i] = append(perShard[i], r)
	}
	for i, chunk := range perShard {
		if len(chunk) == 0 {
			continue
		}
		if err := stx.at(i).InsertBatchParallel(st.parts[i], chunk, workers); err != nil {
			return err
		}
		stx.s.rowCounts[i].Add(int64(len(chunk)))
		stx.s.m.ingestRows[i].Add(int64(len(chunk)))
	}
	return nil
}

// Update routes and updates one row by its primary key.
func (stx *ShardedTx) Update(st *ShardedTable, visible sqltypes.Row) error {
	if stx.done {
		return ErrTxUsed
	}
	i, err := st.shardOfRow(visible, stx.keyBuf[:])
	if err != nil {
		return err
	}
	return stx.at(i).Update(st.parts[i], visible)
}

// Delete routes and deletes one row by primary-key values.
func (stx *ShardedTx) Delete(st *ShardedTable, keyVals ...sqltypes.Value) error {
	if stx.done {
		return ErrTxUsed
	}
	i := st.shardOfKey(keyVals)
	return stx.at(i).Delete(st.parts[i], keyVals...)
}

// Get routes and reads one row by primary-key values.
func (stx *ShardedTx) Get(st *ShardedTable, keyVals ...sqltypes.Value) (sqltypes.Row, bool, error) {
	if stx.done {
		return nil, false, ErrTxUsed
	}
	i := st.shardOfKey(keyVals)
	return stx.at(i).Get(st.parts[i], keyVals...)
}

// Scan iterates the table's visible rows shard by shard (rows are ordered
// within a shard, not globally).
func (stx *ShardedTx) Scan(st *ShardedTable, fn func(row sqltypes.Row) bool) error {
	if stx.done {
		return ErrTxUsed
	}
	stop := false
	for i := range stx.s.shards {
		if err := stx.at(i).Scan(st.parts[i], func(r sqltypes.Row) bool {
			if !fn(r) {
				stop = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// Commit finishes the transaction atomically across every touched shard.
func (stx *ShardedTx) Commit() error {
	if stx.done {
		return ErrTxUsed
	}
	stx.done = true
	err := stx.commit()
	stx.finishTrace(err)
	return err
}

// commit is Commit's body; the caller finishes the trace with its result.
func (stx *ShardedTx) commit() error {
	var writers, readers []int
	for i, tx := range stx.txs {
		if tx == nil {
			continue
		}
		if tx.etx.WriteCount() > 0 {
			writers = append(writers, i)
		} else {
			readers = append(readers, i)
		}
	}
	// Read-only participants hold no ledger state worth a commit record;
	// releasing them is cheaper and leaves every shard's chain untouched.
	for _, i := range readers {
		stx.txs[i].Rollback()
	}

	switch len(writers) {
	case 0:
		return nil
	case 1:
		// Single-shard fast path: the ordinary commit pipeline, no
		// coordination, no decision log.
		i := writers[0]
		if err := stx.txs[i].Commit(); err != nil {
			return err
		}
		stx.s.m.commits[i].Inc()
		return nil
	}

	// Cross-shard path: two-phase commit with a presumed-abort decision
	// log. Phase 1 makes every participant's write set durable with its
	// locks held; the decision-log append is the commit point; phase 2
	// runs each shard's commit-pipeline tail. Each leg is a span on the
	// coordinator's trace (the engine records no stage spans on the
	// prepared path, so these wrappers are the trace's view of 2PC time).
	s := stx.s
	s.m.crossTx.Inc()
	gid := s.gid.Add(1)
	tr := stx.trace
	span := func(name string, start time.Time, attrs ...obs.Label) {
		if tr != nil {
			tr.Record(name, 0, start, time.Since(start), attrs...)
		}
	}
	now := func() (t time.Time) {
		if tr != nil {
			t = time.Now()
		}
		return
	}
	if tr != nil {
		tr.SetAttr("gid", strconv.FormatUint(gid, 10))
		tr.SetAttr("shards", strconv.Itoa(len(writers)))
	}
	for n, i := range writers {
		start := now()
		err := stx.txs[i].prepare(gid)
		span(obs.SpanShardPrepare, start, obs.L("shard", strconv.Itoa(i)))
		if err != nil {
			for _, j := range writers[:n] {
				stx.txs[j].abortPrepared()
			}
			stx.txs[i].Rollback()
			for _, j := range writers[n+1:] {
				stx.txs[j].Rollback()
			}
			return fmt.Errorf("core: cross-shard prepare on shard %d: %w", i, err)
		}
	}
	if s.hookAfterPrepare != nil {
		s.hookAfterPrepare()
	}
	decideStart := now()
	if err := s.dlog.commit(gid); err != nil {
		// The decision never became durable: presumed abort.
		span(obs.SpanShardDecide, decideStart)
		for _, j := range writers {
			stx.txs[j].abortPrepared()
		}
		return fmt.Errorf("core: cross-shard decision log: %w", err)
	}
	span(obs.SpanShardDecide, decideStart)
	if s.hookAfterDecision != nil {
		s.hookAfterDecision()
	}
	var first error
	for _, i := range writers {
		commitStart := now()
		_, err := stx.txs[i].commitPrepared()
		span(obs.SpanShardCommit, commitStart, obs.L("shard", strconv.Itoa(i)))
		if err != nil && first == nil {
			// The decision is durable; recovery will finish this shard.
			first = fmt.Errorf("core: cross-shard commit on shard %d: %w", i, err)
			continue
		}
		s.m.commits[i].Inc()
	}
	if first == nil {
		s.obs.Events().Info(obs.EventCrossShardCommit,
			"gid", gid, "shards", strconv.Itoa(len(writers)))
	}
	return first
}

// Rollback abandons every participant.
func (stx *ShardedTx) Rollback() error {
	if stx.done {
		return nil
	}
	stx.done = true
	var first error
	for _, tx := range stx.txs {
		if tx == nil {
			continue
		}
		if err := tx.Rollback(); err != nil && first == nil {
			first = err
		}
	}
	stx.finishTrace(nil)
	return first
}
