package core

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"

	"sqlledger/internal/merkle"
	"sqlledger/internal/serial"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Receipt proves that a transaction is part of the ledger (§5.1,
// non-repudiation): it carries the transaction entry, a Merkle inclusion
// proof of the entry in its block's transactions tree, and a signature
// over the block root. One signing operation covers every transaction in
// the block, so generating receipts stays cheap even at the paper's 100K
// transactions per block.
//
// A receipt is verifiable offline — even after the ledger has been
// tampered with or destroyed — with only the signer's public key.
type Receipt struct {
	DatabaseName string            `json:"database_name"`
	Entry        ReceiptEntry      `json:"transaction"`
	BlockID      uint64            `json:"block_id"`
	BlockRoot    string            `json:"block_transactions_root"`
	Proof        ReceiptProof      `json:"merkle_proof"`
	Signature    []byte            `json:"signature"`
	PublicKey    ed25519.PublicKey `json:"public_key"`
}

// ReceiptEntry is the transaction entry embedded in a receipt.
type ReceiptEntry struct {
	TxID     uint64             `json:"transaction_id"`
	Ordinal  uint32             `json:"ordinal_in_block"`
	CommitTS int64              `json:"commit_time"`
	User     string             `json:"principal"`
	Roots    []ReceiptTableRoot `json:"table_roots"`
}

// ReceiptTableRoot is a per-table Merkle root inside a receipt.
type ReceiptTableRoot struct {
	TableID uint32 `json:"table_id"`
	Root    string `json:"root"`
}

// ReceiptProof is the Merkle inclusion proof inside a receipt.
type ReceiptProof struct {
	Index     uint64   `json:"index"`
	LeafCount uint64   `json:"leaf_count"`
	Siblings  []string `json:"siblings"`
}

// JSON renders the receipt.
func (r Receipt) JSON() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("core: receipt marshal: %v", err))
	}
	return b
}

// ParseReceipt parses a receipt JSON document.
func ParseReceipt(b []byte) (Receipt, error) {
	var r Receipt
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("core: bad receipt: %w", err)
	}
	return r, nil
}

// signedMessage is what the block signer signs: the database name, block
// id and transactions root, bound together canonically.
func signedMessage(dbName string, blockID uint64, root merkle.Hash) []byte {
	h := serial.HashBytes([]byte("sqlledger-block-receipt"), []byte(dbName), u64le(blockID), root[:])
	return h[:]
}

// entryOfTx returns txID's ledger entry, from the system table if the
// entry was persisted or from the in-memory queue otherwise.
func (l *LedgerDB) entryOfTx(txID uint64) (*wal.LedgerEntry, error) {
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(txID)))
	if row, ok := l.sysTx.Lookup(key); ok {
		return rowToEntry(row), nil
	}
	var e *wal.LedgerEntry
	l.lmu.Lock()
	for _, q := range l.queue {
		if q.TxID == txID {
			e = q.Clone()
			break
		}
	}
	l.lmu.Unlock()
	if e == nil {
		return nil, fmt.Errorf("core: transaction %d is not in the ledger", txID)
	}
	return e, nil
}

// toReceiptEntry converts a ledger entry to its receipt form.
func toReceiptEntry(e *wal.LedgerEntry) ReceiptEntry {
	roots := make([]ReceiptTableRoot, len(e.Roots))
	for i, tr := range e.Roots {
		roots[i] = ReceiptTableRoot{TableID: tr.TableID, Root: tr.Root.String()}
	}
	return ReceiptEntry{TxID: e.TxID, Ordinal: e.Ordinal, CommitTS: e.CommitTS, User: e.User, Roots: roots}
}

// encodeProof converts a Merkle proof to its receipt form.
func encodeProof(p merkle.Proof) ReceiptProof {
	sibs := make([]string, len(p.Siblings))
	for i, s := range p.Siblings {
		sibs[i] = s.String()
	}
	return ReceiptProof{Index: p.Index, LeafCount: p.LeafCount, Siblings: sibs}
}

// decodeProof parses a receipt proof back to a Merkle proof.
func decodeProof(p ReceiptProof) (merkle.Proof, error) {
	sibs := make([]merkle.Hash, len(p.Siblings))
	for i, s := range p.Siblings {
		h, err := merkle.ParseHash(s)
		if err != nil {
			return merkle.Proof{}, err
		}
		sibs[i] = h
	}
	return merkle.Proof{Index: p.Index, LeafCount: p.LeafCount, Siblings: sibs}, nil
}

// GenerateReceipt produces a receipt for txID, signing the block root with
// priv. The transaction's block must already be closed (generate a digest
// first to force-close the current block).
func (l *LedgerDB) GenerateReceipt(txID uint64, priv ed25519.PrivateKey) (Receipt, error) {
	e, err := l.entryOfTx(txID)
	if err != nil {
		return Receipt{}, err
	}
	l.closeMu.Lock()
	closed := l.closedThrough
	l.closeMu.Unlock()
	if int64(e.BlockID) > closed {
		return Receipt{}, fmt.Errorf("%w: transaction %d is in open block %d", ErrBlockNotClosed, txID, e.BlockID)
	}
	es := l.entriesOfBlock(e.BlockID)
	leaves := make([]merkle.Hash, len(es))
	for i, be := range es {
		leaves[i] = entryHash(be)
	}
	proof, err := merkle.BuildProof(leaves, uint64(e.Ordinal))
	if err != nil {
		return Receipt{}, err
	}
	root := merkle.RootOf(leaves)
	return Receipt{
		DatabaseName: l.opts.Name,
		Entry:        toReceiptEntry(e),
		BlockID:      e.BlockID,
		BlockRoot:    root.String(),
		Proof:        encodeProof(proof),
		Signature:    ed25519.Sign(priv, signedMessage(l.opts.Name, e.BlockID, root)),
		PublicKey:    append(ed25519.PublicKey(nil), priv.Public().(ed25519.PublicKey)...),
	}, nil
}

// VerifyReceipt checks a receipt offline: the signature over the block
// root must verify under pub, and the Merkle proof must link the
// transaction entry to that root. It needs no database access.
func VerifyReceipt(r Receipt, pub ed25519.PublicKey) error {
	root, err := merkle.ParseHash(r.BlockRoot)
	if err != nil {
		return err
	}
	if !ed25519.Verify(pub, signedMessage(r.DatabaseName, r.BlockID, root), r.Signature) {
		return fmt.Errorf("core: receipt signature is invalid")
	}
	roots := make([]wal.TableRoot, len(r.Entry.Roots))
	for i, tr := range r.Entry.Roots {
		h, err := merkle.ParseHash(tr.Root)
		if err != nil {
			return err
		}
		roots[i] = wal.TableRoot{TableID: tr.TableID, Root: h}
	}
	leaf := entryHash(&wal.LedgerEntry{
		TxID: r.Entry.TxID, BlockID: r.BlockID, Ordinal: r.Entry.Ordinal,
		CommitTS: r.Entry.CommitTS, User: r.Entry.User, Roots: roots,
	})
	proof, err := decodeProof(r.Proof)
	if err != nil {
		return err
	}
	if !proof.Verify(root, leaf) {
		return fmt.Errorf("core: receipt Merkle proof does not verify")
	}
	return nil
}
