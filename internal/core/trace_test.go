package core

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
)

// TestCrossShardCommitOneTrace: a cross-shard 2PC commit must produce
// ONE trace — the coordinator's — whose spans cover both shards' prepare
// legs, the decision-log write, and both commit legs. The shard
// participants share the coordinator's trace rather than opening their
// own.
func TestCrossShardCommitOneTrace(t *testing.T) {
	s := openSharded(t, t.TempDir(), 2)
	defer s.Close()
	ts := s.Obs().Traces()
	// Ignore setup transactions (table creation); retain only the
	// cross-shard commit under test.
	ts.SetSlowThreshold(time.Hour)
	ts.SetSampleRate(0)

	st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	ts.SetSlowThreshold(0) // retain every trace from here on

	// Find one key routed to each shard so the commit is genuinely
	// cross-shard.
	keys := make([]string, s.NumShards())
	found := 0
	for i := 0; found < len(keys) && i < 10_000; i++ {
		name := fmt.Sprintf("acct-%04d", i)
		if sh := st.ShardOf(sqltypes.NewNVarChar(name)); keys[sh] == "" {
			keys[sh] = name
			found++
		}
	}
	if found != len(keys) {
		t.Fatalf("could not find keys for all %d shards", len(keys))
	}

	tx := s.Begin("teller")
	id := tx.Trace().ID()
	if id == 0 {
		t.Fatal("sharded transaction has no trace")
	}
	for i, name := range keys {
		if err := tx.Insert(st, acct(name, int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Both participant transactions must observe the coordinator's trace,
	// not one of their own.
	for i, ptx := range tx.txs {
		if ptx == nil {
			continue
		}
		if got := ptx.Trace().ID(); got != id {
			t.Fatalf("shard %d participant trace %s, want coordinator's %s", i, got, id)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	rec, ok := ts.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	prepared := map[string]bool{}
	committed := map[string]bool{}
	decided := 0
	for _, sp := range rec.Spans {
		switch sp.Name {
		case obs.SpanShardPrepare, obs.SpanShardCommit:
			var shard string
			for _, a := range sp.Attrs {
				if a.Key == "shard" {
					shard = a.Value
				}
			}
			if shard == "" {
				t.Fatalf("%s span has no shard attribute: %+v", sp.Name, sp)
			}
			if sp.Name == obs.SpanShardPrepare {
				prepared[shard] = true
			} else {
				committed[shard] = true
			}
		case obs.SpanShardDecide:
			decided++
		}
	}
	for i := 0; i < s.NumShards(); i++ {
		sh := strconv.Itoa(i)
		if !prepared[sh] {
			t.Fatalf("no shard_prepare span for shard %s (spans: %+v)", sh, rec.Spans)
		}
		if !committed[sh] {
			t.Fatalf("no shard_commit span for shard %s (spans: %+v)", sh, rec.Spans)
		}
	}
	if decided != 1 {
		t.Fatalf("%d 2pc_decide spans, want 1", decided)
	}
	if gid := attrOf(rec, "gid"); gid == "" {
		t.Fatalf("trace carries no gid attribute: %+v", rec.Attrs)
	}
	if n := attrOf(rec, "shards"); n != "2" {
		t.Fatalf("trace shards attribute %q, want 2", n)
	}

	// Exactly one trace was retained for the whole 2PC commit: the shard
	// legs did not finish traces of their own.
	if got := len(ts.Recent(0)); got != 1 {
		t.Fatalf("%d traces retained for one cross-shard commit", got)
	}
}

func attrOf(rec *obs.TraceRecord, key string) string {
	for _, a := range rec.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestSingleShardTraceStages: a routed single-shard commit takes the
// fast path and its trace must still show the engine commit stages
// (row hashing, WAL encode, durability wait) under the one trace ID.
func TestSingleShardTraceStages(t *testing.T) {
	s := openSharded(t, t.TempDir(), 2)
	defer s.Close()
	ts := s.Obs().Traces()
	ts.SetSlowThreshold(0)

	st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := s.Begin("teller")
	id := tx.Trace().ID()
	if err := tx.Insert(st, acct("acct-0001", 100)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rec, ok := ts.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{obs.SpanRowHash, obs.SpanWALEncode, obs.SpanCommitSequence, obs.SpanCommitWait, obs.SpanCommitApply} {
		if !names[want] {
			t.Fatalf("single-shard trace missing %s span (have %v)", want, names)
		}
	}
	// The single-shard fast path runs no 2PC: no prepare/decide spans.
	if names[obs.SpanShardPrepare] || names[obs.SpanShardDecide] {
		t.Fatalf("single-shard commit recorded 2PC spans: %v", names)
	}
}

// TestTraceFailedCommitRetained: a commit that fails finishes its trace
// as an error at commit time (not when the caller rolls back), and the
// tail sampler always keeps error traces. The failure is forced by
// closing the database under an open transaction, so the group
// committer rejects the publish.
func TestTraceFailedCommitRetained(t *testing.T) {
	l := openLedgerAt(t, t.TempDir(), DefaultBlockSize)
	ts := l.Obs().Traces()
	ts.SetSlowThreshold(time.Hour) // only the error path may retain
	ts.SetSampleRate(0)

	lt, err := l.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := l.Begin("writer")
	id := tx.Trace().ID()
	if id == 0 {
		t.Fatal("transaction has no trace")
	}
	if err := tx.Insert(lt, acct("a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit against a closed database succeeded")
	}
	rec, ok := ts.Get(id)
	if !ok {
		t.Fatalf("error trace %s not retained", id)
	}
	if rec.Decision != "error" || rec.Err == "" {
		t.Fatalf("decision=%q err=%q, want error retention", rec.Decision, rec.Err)
	}
}
