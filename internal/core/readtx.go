package core

import (
	"crypto/ed25519"
	"errors"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// ErrReceiptNotRequested is returned by CloseWithReceipt on a read
// transaction that was begun with BeginReadOnly rather than
// BeginReadOnlyForReceipt, so no read set was accumulated.
var ErrReceiptNotRequested = errors.New("core: read set not accumulated; begin with BeginReadOnlyForReceipt")

// ReadTx is a ledger-aware snapshot read transaction. It wraps the
// engine's MVCC read path (engine.ReadTx): reads are served from the
// newest row version at or below the pinned snapshot timestamp and never
// touch the lock table, so readers scale with client count while writers
// run 2PL + group commit undisturbed.
//
// When begun with BeginReadOnlyForReceipt, every row returned from a
// ledger table is accumulated into a read set; at close the read set can
// be turned into a ReadReceipt — an offline-verifiable proof that each
// returned row is committed ledger content (readreceipt.go, §5.1 extended
// to query results). Plain BeginReadOnly skips the accumulation entirely:
// a full-table scan then clones nothing, instead of materializing a
// second copy of the table that Close would just throw away.
//
// ReadTx is not safe for concurrent use by multiple goroutines.
type ReadTx struct {
	l    *LedgerDB
	rtx  *engine.ReadTx
	done bool

	// collect is set by BeginReadOnlyForReceipt; when false, record is a
	// no-op and CloseWithReceipt refuses.
	collect bool
	// reads is the accumulated read set: one cloned full storage row per
	// distinct row version returned to the caller.
	reads []readRecord
	seen  map[readVersionKey]struct{}
}

// readRecord is one read-set entry: the ledger table and the full storage
// row (hidden columns included) as returned by the snapshot.
type readRecord struct {
	lt   *LedgerTable
	full sqltypes.Row
}

// readVersionKey identifies a row version for read-set deduplication: the
// creating (transaction, sequence) pair is unique per version.
type readVersionKey struct {
	tableID uint32
	txID    uint64
	seq     uint32
}

// BeginReadOnly starts a snapshot read transaction pinned at the engine's
// applied-through watermark. No read set is accumulated; end it with
// Close. Use BeginReadOnlyForReceipt when the reads must be provable.
func (l *LedgerDB) BeginReadOnly() *ReadTx {
	return &ReadTx{l: l, rtx: l.edb.BeginReadOnly()}
}

// BeginReadOnlyForReceipt is BeginReadOnly with read-set accumulation:
// every distinct row version returned is cloned into the read set so
// CloseWithReceipt can prove it. Callers that only want the snapshot
// should use BeginReadOnly and skip the copies.
func (l *LedgerDB) BeginReadOnlyForReceipt() *ReadTx {
	return &ReadTx{l: l, rtx: l.edb.BeginReadOnly(), collect: true, seen: make(map[readVersionKey]struct{})}
}

// SnapshotTS returns the pinned snapshot timestamp (unix nanoseconds).
func (rt *ReadTx) SnapshotTS() int64 { return rt.rtx.TS() }

// Raw exposes the underlying engine read transaction for snapshot reads
// on regular (non-ledger) tables; those reads carry no receipt coverage.
func (rt *ReadTx) Raw() *engine.ReadTx { return rt.rtx }

// record adds a returned row version to the read set (deduplicated).
// A no-op unless the transaction was begun with BeginReadOnlyForReceipt.
func (rt *ReadTx) record(lt *LedgerTable, full sqltypes.Row) {
	if !rt.collect {
		return
	}
	k := readVersionKey{
		tableID: lt.ID(),
		txID:    uint64(full[lt.startTxOrd].Int()),
		seq:     uint32(full[lt.startSeqOrd].Int()),
	}
	if _, dup := rt.seen[k]; dup {
		return
	}
	rt.seen[k] = struct{}{}
	rt.reads = append(rt.reads, readRecord{lt: lt, full: full.Clone()})
}

// Get returns the visible row with the given primary-key values as of the
// snapshot.
func (rt *ReadTx) Get(lt *LedgerTable, keyVals ...sqltypes.Value) (sqltypes.Row, bool, error) {
	full, ok, err := rt.rtx.Get(lt.table, keyVals...)
	if err != nil || !ok {
		return nil, ok, err
	}
	rt.record(lt, full)
	return lt.VisibleRow(full), true, nil
}

// Scan iterates the visible rows of a ledger table as of the snapshot, in
// primary-key order. Rows passed to fn may alias storage and are only
// valid during the callback: Clone before mutating or retaining them.
func (rt *ReadTx) Scan(lt *LedgerTable, fn func(row sqltypes.Row) bool) error {
	return rt.scanRange(lt, nil, nil, fn)
}

// ScanPrefix iterates the visible rows whose leading primary-key columns
// equal vals as of the snapshot. The callback contract is as for Scan.
func (rt *ReadTx) ScanPrefix(lt *LedgerTable, fn func(row sqltypes.Row) bool, vals ...sqltypes.Value) error {
	start, end := engine.PrefixRange(vals...)
	return rt.scanRange(lt, start, end, fn)
}

func (rt *ReadTx) scanRange(lt *LedgerTable, start, end []byte, fn func(row sqltypes.Row) bool) error {
	project := lt.visibleProjector()
	return rt.rtx.ScanRange(lt.table, start, end, func(_ []byte, full sqltypes.Row) bool {
		rt.record(lt, full)
		return fn(project(full))
	})
}

// ReadSetSize returns the number of distinct row versions accumulated.
func (rt *ReadTx) ReadSetSize() int { return len(rt.reads) }

// Close unpins the snapshot without producing a receipt. Idempotent.
func (rt *ReadTx) Close() {
	if rt.done {
		return
	}
	rt.done = true
	rt.rtx.Close()
	rt.reads = nil
	rt.seen = nil
}

// CloseWithReceipt turns the read set into an offline-verifiable
// ReadReceipt signed with priv, then closes the transaction. The snapshot
// stays pinned while the receipt is assembled, so version GC cannot
// reclaim the proven versions mid-build. The transaction must have been
// begun with BeginReadOnlyForReceipt; otherwise ErrReceiptNotRequested is
// returned (and the transaction stays open, since nothing was consumed).
func (rt *ReadTx) CloseWithReceipt(priv ed25519.PrivateKey) (ReadReceipt, error) {
	if rt.done {
		return ReadReceipt{}, engine.ErrTxDone
	}
	if !rt.collect {
		return ReadReceipt{}, ErrReceiptNotRequested
	}
	r, err := rt.l.buildReadReceipt(rt.reads, rt.rtx.TS(), priv)
	rt.Close()
	return r, err
}
