package core

import (
	"math"
	"sync"

	"sqlledger/internal/obs"
)

// VerifyProgress is one streaming progress update from a verification
// run. Ratio is the overall completion estimate in [0, 1]; successive
// callbacks never see it decrease, and the final callback reports
// exactly 1.0 with Phase "done".
type VerifyProgress struct {
	Phase string  `json:"phase"` // chain, row_versions, indexes, views, done
	Table string  `json:"table,omitempty"`
	Ratio float64 `json:"ratio"`
}

// Progress weights. Invariants 1–3 and the view checks only touch
// system-table metadata, while invariants 4–5 scan every row version,
// so the per-table work gets nearly the whole bar. Within one table the
// row-version pipeline dominates the index accumulators.
const (
	progressChainWeight  = 0.05
	progressTablesWeight = 0.90
	progressViewsWeight  = 0.05
	progressRowsShare    = 0.70 // of one table's weight
	progressIndexShare   = 0.30
)

// progressSink aggregates weighted completion deltas from concurrent
// verification workers into one monotone ratio, fanned out to the
// optional callback and the sqlledger_verify_progress_ratio gauge.
// Callbacks run under the sink's mutex so observers see non-decreasing
// ratios even when shards finish concurrently. A nil sink is inert.
type progressSink struct {
	mu    sync.Mutex
	ratio float64
	cb    func(VerifyProgress)
	gauge *obs.Gauge
}

func newProgressSink(cb func(VerifyProgress), gauge *obs.Gauge) *progressSink {
	gauge.Set(0)
	return &progressSink{cb: cb, gauge: gauge}
}

// add advances the ratio by delta and notifies observers. Non-finite
// deltas are dropped: weights are ratios of estimated work, and a
// partial run (VerifyOptions.Blocks, empty table sets) must never poison
// the monotone ratio with NaN — finish() still pins the bar at 1.0.
func (p *progressSink) add(delta float64, phase, table string) {
	if p == nil || delta <= 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
		return
	}
	p.mu.Lock()
	p.ratio += delta
	if p.ratio > 1 {
		p.ratio = 1
	}
	p.notify(phase, table)
	p.mu.Unlock()
}

// finish pins the ratio to exactly 1.0 (weights are estimates; rounding
// must not leave the bar at 0.999) and emits the terminal update.
func (p *progressSink) finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.ratio = 1
	p.notify("done", "")
	p.mu.Unlock()
}

// notify runs under p.mu.
func (p *progressSink) notify(phase, table string) {
	p.gauge.Set(p.ratio)
	if p.cb != nil {
		p.cb(VerifyProgress{Phase: phase, Table: table, Ratio: p.ratio})
	}
}

// wrapProgress spreads delta evenly across tasks, advancing the sink as
// each finishes. With no tasks the whole delta is credited immediately
// so empty tables still move the bar.
func wrapProgress(tasks []func(), prog *progressSink, delta float64, phase, table string) []func() {
	if prog == nil {
		return tasks
	}
	if len(tasks) == 0 {
		prog.add(delta, phase, table)
		return tasks
	}
	per := delta / float64(len(tasks))
	out := make([]func(), len(tasks))
	for i, task := range tasks {
		task := task
		out[i] = func() { task(); prog.add(per, phase, table) }
	}
	return out
}
