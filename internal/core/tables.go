package core

import (
	"fmt"
	"sort"
	"strings"

	"sqlledger/internal/engine"
	"sqlledger/internal/serial"
	"sqlledger/internal/sqltypes"
)

// LedgerTable is the handle through which applications operate on a
// ledger table. DML must go through LedgerDB transactions (tx.go), which
// maintain the history table and the transaction Merkle trees.
type LedgerTable struct {
	l       *LedgerDB
	table   *engine.Table
	history *engine.Table // nil for append-only tables

	// Ordinals of the four hidden system columns (§3.1).
	startTxOrd, startSeqOrd, endTxOrd, endSeqOrd int

	// skipEnd is the precomputed skip mask excluding the end-transaction
	// system columns from a version's insert-time hash: they were NULL
	// when the version was created, so excluding them makes the hash
	// recomputable after the version moves to the history table with the
	// end columns populated (§3.1, §3.4). A bitmask instead of a closure
	// keeps the per-row hash path allocation-free.
	skipEnd serial.SkipMask
}

// Name returns the table name.
func (lt *LedgerTable) Name() string { return lt.table.Name() }

// ID returns the base table id.
func (lt *LedgerTable) ID() uint32 { return lt.table.ID() }

// Kind returns whether the table is updateable or append-only.
func (lt *LedgerTable) Kind() engine.LedgerKind { return lt.table.Meta().Ledger }

// Table exposes the underlying engine table (used by verification and
// tamper simulation).
func (lt *LedgerTable) Table() *engine.Table { return lt.table }

// History exposes the history table (nil for append-only tables).
func (lt *LedgerTable) History() *engine.Table { return lt.history }

// VisibleColumns returns the application-visible columns.
func (lt *LedgerTable) VisibleColumns() []sqltypes.Column {
	return lt.table.Schema().VisibleColumns()
}

// isReservedColumn reports whether a column name collides with one of the
// hidden system columns.
func isReservedColumn(name string) bool {
	switch strings.ToLower(name) {
	case ColStartTx, ColStartSeq, ColEndTx, ColEndSeq:
		return true
	}
	return false
}

// historyName derives the history table name for a ledger table.
func historyName(base string) string { return base + "__ledger_history" }

// hiddenLedgerColumns returns the four system columns appended to every
// ledger table schema.
func hiddenLedgerColumns() []sqltypes.Column {
	return []sqltypes.Column{
		{Name: ColStartTx, Type: sqltypes.TypeBigInt, Hidden: true},
		{Name: ColStartSeq, Type: sqltypes.TypeBigInt, Hidden: true},
		{Name: ColEndTx, Type: sqltypes.TypeBigInt, Nullable: true, Hidden: true},
		{Name: ColEndSeq, Type: sqltypes.TypeBigInt, Nullable: true, Hidden: true},
	}
}

// CreateLedgerTable creates a ledger table (and, for updateable tables,
// its history table), registers its metadata in the ledger system tables
// and records its ledger-view definition. The schema must not contain
// columns named like the hidden system columns. Updateable tables require
// a primary key.
func (l *LedgerDB) CreateLedgerTable(name string, userSchema *sqltypes.Schema, kind engine.LedgerKind) (*LedgerTable, error) {
	return l.createLedgerTable(name, userSchema, kind, false)
}

func (l *LedgerDB) createLedgerTable(name string, userSchema *sqltypes.Schema, kind engine.LedgerKind, bootstrapping bool) (*LedgerTable, error) {
	switch kind {
	case engine.LedgerUpdateable, engine.LedgerAppendOnly:
	default:
		return nil, fmt.Errorf("core: invalid ledger kind %q", kind)
	}
	if kind == engine.LedgerUpdateable && len(userSchema.Key) == 0 {
		return nil, fmt.Errorf("core: updateable ledger table %s requires a primary key", name)
	}
	for _, c := range userSchema.Columns {
		if isReservedColumn(c.Name) {
			return nil, fmt.Errorf("core: column name %q is reserved", c.Name)
		}
	}
	cols := append(append([]sqltypes.Column(nil), userSchema.Columns...), hiddenLedgerColumns()...)
	keyNames := make([]string, len(userSchema.Key))
	for i, ord := range userSchema.Key {
		keyNames[i] = userSchema.Columns[ord].Name
	}
	full, err := sqltypes.NewSchema(cols, keyNames...)
	if err != nil {
		return nil, err
	}
	t, err := l.edb.CreateTable(engine.CreateTableSpec{
		Name: name, Schema: full, Ledger: kind, System: bootstrapping,
	})
	if err != nil {
		return nil, err
	}
	var hist *engine.Table
	if kind == engine.LedgerUpdateable {
		// The history table mirrors the columns but is a heap: superseded
		// versions of different rows may collide on the user key.
		hSchema, err := sqltypes.NewSchema(cols)
		if err != nil {
			return nil, err
		}
		hist, err = l.edb.CreateTable(engine.CreateTableSpec{
			Name: historyName(name), Schema: hSchema, Ledger: engine.LedgerHistory, System: bootstrapping,
		})
		if err != nil {
			return nil, err
		}
		histID := hist.ID()
		baseID := t.ID()
		if err := l.edb.AlterTableMeta(baseID, func(m *engine.TableMeta) error {
			m.HistoryTableID = histID
			return nil
		}); err != nil {
			return nil, err
		}
		if err := l.edb.AlterTableMeta(histID, func(m *engine.TableMeta) error {
			m.BaseTableID = baseID
			return nil
		}); err != nil {
			return nil, err
		}
	}
	lt, err := l.wrapLedgerTable(t)
	if err != nil {
		return nil, err
	}
	if err := l.storeViewDefinition(lt); err != nil {
		return nil, err
	}
	if !bootstrapping {
		if err := l.registerTableMetadata(lt); err != nil {
			return nil, err
		}
	}
	return lt, nil
}

// wrapLedgerTable builds the runtime handle for an existing ledger table.
func (l *LedgerDB) wrapLedgerTable(t *engine.Table) (*LedgerTable, error) {
	m := t.Meta()
	if m.Ledger != engine.LedgerUpdateable && m.Ledger != engine.LedgerAppendOnly {
		return nil, fmt.Errorf("%w: %s", ErrNotLedgerTable, m.Name)
	}
	lt := &LedgerTable{l: l, table: t}
	s := t.Schema()
	named := func(name string) (int, error) {
		for _, c := range s.Columns {
			if c.Hidden && strings.EqualFold(c.Name, name) {
				return c.Ordinal, nil
			}
		}
		return 0, fmt.Errorf("core: table %s is missing system column %s", m.Name, name)
	}
	var err error
	if lt.startTxOrd, err = named(ColStartTx); err != nil {
		return nil, err
	}
	if lt.startSeqOrd, err = named(ColStartSeq); err != nil {
		return nil, err
	}
	if lt.endTxOrd, err = named(ColEndTx); err != nil {
		return nil, err
	}
	if lt.endSeqOrd, err = named(ColEndSeq); err != nil {
		return nil, err
	}
	lt.skipEnd = serial.NewSkipMask(lt.endTxOrd, lt.endSeqOrd)
	if m.Ledger == engine.LedgerUpdateable {
		if lt.history, err = l.edb.TableByID(m.HistoryTableID); err != nil {
			return nil, fmt.Errorf("core: history table of %s: %w", m.Name, err)
		}
	}
	l.tmu.Lock()
	l.tables[m.ID] = lt
	l.tmu.Unlock()
	return lt, nil
}

// LedgerTable returns the handle for a ledger table by name.
func (l *LedgerDB) LedgerTable(name string) (*LedgerTable, error) {
	t, err := l.edb.Table(name)
	if err != nil {
		return nil, err
	}
	l.tmu.RLock()
	lt, ok := l.tables[t.ID()]
	l.tmu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotLedgerTable, name)
	}
	return lt, nil
}

// LedgerTables returns handles for all ledger tables (including dropped
// and system ones), ordered by table id.
func (l *LedgerDB) LedgerTables() []*LedgerTable {
	l.tmu.RLock()
	defer l.tmu.RUnlock()
	out := make([]*LedgerTable, 0, len(l.tables))
	for _, lt := range l.tables {
		out = append(out, lt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// fullRow expands an application row (visible columns, in visible order)
// into a storage row: hidden columns receive the transaction/sequence
// values, dropped columns receive NULL.
func (lt *LedgerTable) fullRow(visible sqltypes.Row, txID uint64, seq uint32) (sqltypes.Row, error) {
	return lt.fullRowInto(make(sqltypes.Row, len(lt.table.Schema().Columns)), visible, txID, seq)
}

// fullRowInto is fullRow writing into caller-provided storage (len must
// equal the physical column count). Batched ingest carves per-row
// destinations out of one slab so a bulk load costs one allocation
// instead of one per row.
func (lt *LedgerTable) fullRowInto(out sqltypes.Row, visible sqltypes.Row, txID uint64, seq uint32) (sqltypes.Row, error) {
	s := lt.table.Schema()
	vi := 0
	for i, c := range s.Columns {
		switch {
		case c.Hidden:
			switch i {
			case lt.startTxOrd:
				out[i] = sqltypes.NewBigInt(int64(txID))
			case lt.startSeqOrd:
				out[i] = sqltypes.NewBigInt(int64(seq))
			default:
				out[i] = sqltypes.NewNull(sqltypes.TypeBigInt)
			}
		case c.Dropped:
			out[i] = sqltypes.NewNull(c.Type)
		default:
			if vi >= len(visible) {
				return nil, fmt.Errorf("core: row for %s has %d values, want %d", lt.Name(), len(visible), len(s.VisibleColumns()))
			}
			out[i] = visible[vi]
			vi++
		}
	}
	if vi != len(visible) {
		return nil, fmt.Errorf("core: row for %s has %d values, want %d", lt.Name(), len(visible), vi)
	}
	return out, nil
}

// VisibleRow projects a storage row onto the application-visible columns.
// The result is a fresh slice safe for the caller to modify and pass back
// to Update.
func (lt *LedgerTable) VisibleRow(full sqltypes.Row) sqltypes.Row {
	s := lt.table.Schema()
	out := make(sqltypes.Row, 0, len(full))
	for i, c := range s.Columns {
		if !c.Hidden && !c.Dropped {
			out = append(out, full[i])
		}
	}
	return out
}

// densePrefix returns n > 0 when the visible columns are exactly the
// first n schema columns (the common case: user columns followed by the
// four hidden system columns, no drops, no post-creation additions), or
// -1 otherwise. Scans use it to project rows by subslicing instead of
// allocating — reads on ledger tables must cost the same as on regular
// tables, as in the paper.
func (lt *LedgerTable) densePrefix() int {
	s := lt.table.Schema()
	n := -1
	for i, c := range s.Columns {
		visible := !c.Hidden && !c.Dropped
		switch {
		case visible && n == -1:
			// still in the visible prefix
		case !visible && n == -1:
			n = i // first invisible column ends the prefix
		case visible && n != -1:
			return -1 // visible column after an invisible one: not dense
		}
	}
	if n == -1 {
		n = len(s.Columns)
	}
	if n == 0 {
		return -1
	}
	return n
}

// visibleProjector returns the cheapest projection for scan callbacks.
// Rows it returns may alias storage and are only valid during the
// callback; callers must Clone before mutating or retaining them (the
// same contract as engine.Table.Scan).
func (lt *LedgerTable) visibleProjector() func(sqltypes.Row) sqltypes.Row {
	if n := lt.densePrefix(); n > 0 {
		return func(full sqltypes.Row) sqltypes.Row { return full[:n] }
	}
	return lt.VisibleRow
}

// endedRow returns a copy of a version row with the end-transaction
// columns populated — the form inserted into the history table.
func (lt *LedgerTable) endedRow(full sqltypes.Row, txID uint64, seq uint32) sqltypes.Row {
	out := full.Clone()
	out[lt.endTxOrd] = sqltypes.NewBigInt(int64(txID))
	out[lt.endSeqOrd] = sqltypes.NewBigInt(int64(seq))
	return out
}

// registerTableMetadata records the table and its columns in the ledger
// metadata system tables (§3.5.2, Figure 6), via a regular ledger
// transaction so the operations themselves are tamper-evident.
func (l *LedgerDB) registerTableMetadata(lt *LedgerTable) error {
	tx := l.Begin("system")
	defer tx.Rollback()
	m := lt.table.Meta()
	metaRow := sqltypes.Row{
		sqltypes.NewBigInt(int64(m.ID)),
		sqltypes.NewNVarChar(m.Name),
		sqltypes.NewNVarChar(string(m.Ledger)),
		sqltypes.NewNull(sqltypes.TypeBigInt),
	}
	if m.HistoryTableID != 0 {
		metaRow[3] = sqltypes.NewBigInt(int64(m.HistoryTableID))
	}
	if err := tx.Insert(l.metaTables, metaRow); err != nil {
		return err
	}
	for _, c := range lt.table.Schema().Columns {
		if c.Hidden {
			continue
		}
		if err := tx.Insert(l.metaColumns, sqltypes.Row{
			sqltypes.NewBigInt(int64(m.ID)),
			sqltypes.NewBigInt(int64(c.Ordinal)),
			sqltypes.NewNVarChar(c.Name),
			sqltypes.NewNVarChar(c.Type.String()),
			sqltypes.NewBit(c.Nullable),
		}); err != nil {
			return err
		}
	}
	return tx.Commit()
}
