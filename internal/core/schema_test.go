package core

import (
	"fmt"
	"testing"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// TestAddColumnKeepsOldDigestsValid is the heart of §3.5.1: hashes
// recorded before the column existed must still verify afterwards.
func TestAddColumnKeepsOldDigestsValid(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 4)

	if err := l.AddColumn(lt, sqltypes.NullableCol("note", sqltypes.TypeNVarChar)); err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l, []Digest{d})

	// New rows can use the column; old digest still verifies alongside a
	// fresh one.
	tx := l.Begin("u")
	if err := tx.Insert(lt, sqltypes.Row{
		sqltypes.NewNVarChar("withnote"), sqltypes.NewBigInt(5), sqltypes.NewNVarChar("hello"),
	}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	d2, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l, []Digest{d, d2})

	// Updating an OLD row under the new schema also stays consistent: its
	// history version (written pre-column) must still hash correctly.
	tx = l.Begin("u")
	if err := tx.Update(lt, sqltypes.Row{
		sqltypes.NewNVarChar(acctName(0)), sqltypes.NewBigInt(111), sqltypes.NewNull(sqltypes.TypeNVarChar),
	}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	d3, _ := l.GenerateDigest()
	verifyOK(t, l, []Digest{d, d2, d3})
}

func TestAddColumnValidation(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	if err := l.AddColumn(lt, sqltypes.Col("x", sqltypes.TypeInt)); err == nil {
		t.Fatal("non-nullable added column accepted")
	}
	if err := l.AddColumn(lt, sqltypes.NullableCol(ColEndTx, sqltypes.TypeBigInt)); err == nil {
		t.Fatal("reserved name accepted")
	}
	if err := l.AddColumn(lt, sqltypes.NullableCol("balance", sqltypes.TypeInt)); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestDropColumnRetainsDataAndVerifies(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 3)
	if err := l.DropColumn(lt, "balance"); err != nil {
		t.Fatal(err)
	}
	// Application no longer sees the column...
	if len(lt.VisibleColumns()) != 1 {
		t.Fatalf("visible columns = %v", lt.VisibleColumns())
	}
	// ...but old hashes (which cover the data) still verify.
	verifyOK(t, l, []Digest{d})
	// New inserts work with the narrower visible schema and verify too.
	tx := l.Begin("u")
	if err := tx.Insert(lt, sqltypes.Row{sqltypes.NewNVarChar("slim")}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	d2, _ := l.GenerateDigest()
	verifyOK(t, l, []Digest{d, d2})
}

func TestDropColumnValidation(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	if err := l.DropColumn(lt, "name"); err == nil {
		t.Fatal("dropping a PK column accepted")
	}
	if err := l.DropColumn(lt, ColStartTx); err == nil {
		t.Fatal("dropping a system column accepted")
	}
	if err := l.DropColumn(lt, "ghost"); err == nil {
		t.Fatal("dropping a missing column accepted")
	}
}

func TestAlterColumnType(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 3)
	// BIGINT -> NVARCHAR, converting values to strings.
	err := l.AlterColumnType(lt, "balance", sqltypes.TypeNVarChar, func(v sqltypes.Value) (sqltypes.Value, error) {
		if v.Null {
			return sqltypes.NewNull(sqltypes.TypeNVarChar), nil
		}
		return sqltypes.NewNVarChar(fmt.Sprintf("$%d", v.Int())), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Visible schema: name + balance(NVARCHAR).
	vis := lt.VisibleColumns()
	if len(vis) != 2 || vis[1].Name != "balance" || vis[1].Type != sqltypes.TypeNVarChar {
		t.Fatalf("visible after alter = %+v", vis)
	}
	// Data was converted.
	rtx := l.Begin("r")
	var got []string
	rtx.Scan(lt, func(r sqltypes.Row) bool {
		got = append(got, r[1].Str)
		return true
	})
	rtx.Rollback()
	if len(got) != 3 || got[0][0] != '$' {
		t.Fatalf("converted values = %v", got)
	}
	// The repopulation went through the ledger: old digest + new digest
	// both verify, and the pre-conversion versions are in history.
	if lt.History().RowCount() != 3 {
		t.Fatalf("history rows = %d", lt.History().RowCount())
	}
	d2, _ := l.GenerateDigest()
	verifyOK(t, l, []Digest{d, d2})
}

func TestDropLedgerTableFigure6(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "customers", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 2)
	d, _ := l.GenerateDigest()

	if err := l.DropLedgerTable("customers"); err != nil {
		t.Fatal(err)
	}
	// Gone from the application namespace...
	if _, err := l.LedgerTable("customers"); err == nil {
		t.Fatal("dropped table still reachable by name")
	}
	// ...but physically present and still verified (by id).
	verifyOK(t, l, []Digest{d})

	// A new table can reuse the name (the drop-and-replace scenario).
	lt2, err := l.CreateLedgerTable("customers", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := l.Begin("u")
	tx.Insert(lt2, account("fresh", 1))
	mustCommit(t, tx)
	d2, _ := l.GenerateDigest()
	verifyOK(t, l, []Digest{d, d2})

	// Figure 6: the metadata ledger view shows CREATE, DROP, CREATE with
	// distinct table ids, letting users detect the replacement.
	ops := l.TableOperations()
	var créate, drop int
	var ids []uint32
	for _, op := range ops {
		if op.TableName == "customers" {
			ids = append(ids, op.TableID)
			switch op.Operation {
			case "CREATE":
				créate++
			case "DROP":
				drop++
			}
		}
	}
	if créate != 2 || drop != 1 {
		t.Fatalf("table ops: create=%d drop=%d (%+v)", créate, drop, ops)
	}
	if ids[0] == lt2.ID() {
		t.Fatal("old and new table share an id")
	}
	if err := l.DropLedgerTable(sysTableMetaN); err == nil {
		t.Fatal("dropping a system table accepted")
	}
}

func TestDropTableThenTamperOldDataStillDetected(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "secrets", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 3)
	if err := l.DropLedgerTable("secrets"); err != nil {
		t.Fatal(err)
	}
	// Attacker edits the dropped table's data: verification still covers
	// dropped objects (§3.5.2).
	key := firstKeyOf(t, lt.Table())
	l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(31337)
		return r
	}, true)
	verifyFails(t, l, []Digest{d}, 4)
}

func TestSchemaChangesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	l := openLedgerAt(t, dir, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 2)
	if err := l.AddColumn(lt, sqltypes.NullableCol("extra", sqltypes.TypeInt)); err != nil {
		t.Fatal(err)
	}
	if err := l.DropLedgerTable("accounts"); err != nil {
		t.Fatal(err)
	}
	d, _ := l.GenerateDigest()
	l.Close()

	l2 := openLedgerAt(t, dir, 100)
	if _, err := l2.LedgerTable("accounts"); err == nil {
		t.Fatal("dropped table resurrected by recovery")
	}
	verifyOK(t, l2, []Digest{d})
}
