package core

import (
	"crypto/ed25519"
	"errors"
	"testing"

	"sqlledger/internal/engine"
)

func testKeys(t *testing.T) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

// commitOne runs one insert transaction and returns its tx id.
func commitOne(t *testing.T, l *LedgerDB, lt *LedgerTable, name string) uint64 {
	t.Helper()
	tx := l.Begin("u")
	if err := tx.Insert(lt, account(name, 1)); err != nil {
		t.Fatal(err)
	}
	id := tx.ID()
	mustCommit(t, tx)
	return id
}

func TestReceiptRoundtrip(t *testing.T) {
	pub, priv := testKeys(t)
	l := openTestLedger(t, 4)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	var txIDs []uint64
	for i := 0; i < 7; i++ {
		txIDs = append(txIDs, commitOne(t, l, lt, acctName(i)))
	}
	if _, err := l.GenerateDigest(); err != nil { // closes blocks
		t.Fatal(err)
	}
	for _, id := range txIDs {
		r, err := l.GenerateReceipt(id, priv)
		if err != nil {
			t.Fatalf("receipt for %d: %v", id, err)
		}
		if err := VerifyReceipt(r, pub); err != nil {
			t.Fatalf("verify receipt for %d: %v", id, err)
		}
		// JSON roundtrip.
		back, err := ParseReceipt(r.JSON())
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyReceipt(back, pub); err != nil {
			t.Fatalf("verify after JSON roundtrip: %v", err)
		}
	}
}

func TestReceiptSurvivesLedgerDestruction(t *testing.T) {
	// §5.1: a receipt proves the transaction happened even if the ledger
	// is later destroyed — verification is offline.
	pub, priv := testKeys(t)
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	id := commitOne(t, l, lt, "deposit")
	if _, err := l.GenerateDigest(); err != nil {
		t.Fatal(err)
	}
	r, err := l.GenerateReceipt(id, priv)
	if err != nil {
		t.Fatal(err)
	}
	l.Close() // ledger gone
	if err := VerifyReceipt(r, pub); err != nil {
		t.Fatalf("offline verification failed: %v", err)
	}
}

func TestReceiptTamperDetected(t *testing.T) {
	pub, priv := testKeys(t)
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	id := commitOne(t, l, lt, "deposit")
	l.GenerateDigest()
	r, err := l.GenerateReceipt(id, priv)
	if err != nil {
		t.Fatal(err)
	}
	// Claim a different principal.
	r2 := r
	r2.Entry.User = "mallory"
	if err := VerifyReceipt(r2, pub); err == nil {
		t.Fatal("tampered principal accepted")
	}
	// Claim a different commit time.
	r3 := r
	r3.Entry.CommitTS++
	if err := VerifyReceipt(r3, pub); err == nil {
		t.Fatal("tampered commit time accepted")
	}
	// Forged signature.
	r4 := r
	r4.Signature = append([]byte(nil), r.Signature...)
	r4.Signature[0] ^= 1
	if err := VerifyReceipt(r4, pub); err == nil {
		t.Fatal("forged signature accepted")
	}
	// Wrong public key.
	otherPub, _ := testKeys(t)
	if err := VerifyReceipt(r, otherPub); err == nil {
		t.Fatal("wrong key accepted")
	}
	// Different database name (signature binds it).
	r5 := r
	r5.DatabaseName = "other-db"
	if err := VerifyReceipt(r5, pub); err == nil {
		t.Fatal("receipt transplanted to another database accepted")
	}
}

func TestReceiptRequiresClosedBlock(t *testing.T) {
	_, priv := testKeys(t)
	l := openTestLedger(t, 1000)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	id := commitOne(t, l, lt, "pending")
	if _, err := l.GenerateReceipt(id, priv); !errors.Is(err, ErrBlockNotClosed) {
		t.Fatalf("open-block receipt: %v", err)
	}
	if _, err := l.GenerateDigest(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.GenerateReceipt(id, priv); err != nil {
		t.Fatalf("receipt after close: %v", err)
	}
}

func TestReceiptUnknownTransaction(t *testing.T) {
	_, priv := testKeys(t)
	l := openTestLedger(t, 10)
	mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	if _, err := l.GenerateReceipt(999999, priv); err == nil {
		t.Fatal("receipt for unknown transaction")
	}
}

func TestReceiptAmortizedSignature(t *testing.T) {
	// Receipts for different transactions in the same block share the
	// same signed message (block root) — one signature per block.
	pub, priv := testKeys(t)
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	id1 := commitOne(t, l, lt, "a")
	id2 := commitOne(t, l, lt, "b")
	l.GenerateDigest()
	r1, err := l.GenerateReceipt(id1, priv)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.GenerateReceipt(id2, priv)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BlockID != r2.BlockID {
		t.Skip("transactions landed in different blocks")
	}
	if string(r1.Signature) != string(r2.Signature) {
		t.Fatal("same-block receipts should reuse one signature")
	}
	if err := VerifyReceipt(r1, pub); err != nil {
		t.Fatal(err)
	}
	if err := VerifyReceipt(r2, pub); err != nil {
		t.Fatal(err)
	}
}
