package core

import (
	"fmt"

	"sqlledger/internal/query"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// The first three verification invariants, expressed as query plans over
// the system tables — the way §3.4.2 implements them inside SQL Server's
// query processor:
//
//	1. OPENJSON(digests) LEFT JOIN blocks ON block_id,
//	   comparing the digest hash with LEDGERHASH(block).
//	2. blocks ORDER BY block_id with LAG, comparing each block's recorded
//	   previous hash with LEDGERHASH(previous block).
//	3. transactions GROUP BY block_id ORDER BY ordinal with
//	   MERKLETREEAGG(LEDGERHASH(transaction)) OUTER JOIN blocks.
//
// The LEDGERHASH intrinsic appears as Project steps computing hash
// columns; MERKLETREEAGG is the order-sensitive aggregate from
// internal/query.

// blocksRelation scans sys_ledger_blocks and appends the computed block
// hash: [block_id, prev_hash, root, count, closed_ts, LEDGERHASH(block)].
func (l *LedgerDB) blocksRelation() query.Iterator {
	return query.Sort(query.Project(query.Scan(l.sysBlocks), func(r sqltypes.Row) sqltypes.Row {
		h := blockHashOfRow(r)
		return append(append(sqltypes.Row{}, r...), sqltypes.NewVarBinary(append([]byte(nil), h[:]...)))
	}), 0)
}

// blocksRelationRange is blocksRelation restricted to a block range.
// anchored additionally includes block From-1 so the LAG chain check can
// still verify block From's previous-hash link.
func (l *LedgerDB) blocksRelationRange(blocks *BlockRange, anchored bool) query.Iterator {
	it := l.blocksRelation()
	if blocks == nil {
		return it
	}
	lo := int64(blocks.From)
	if anchored && lo > 0 {
		lo--
	}
	hi := int64(blocks.To)
	return query.Filter(it, func(r sqltypes.Row) bool {
		id := r[0].Int()
		return id >= lo && id <= hi
	})
}

// verifyDigestsQuery checks invariant 1.
func (l *LedgerDB) verifyDigestsQuery(digests []Digest, truncatedBefore uint64, rep *Report) {
	rep.DigestsChecked = len(digests)
	// Digest relation: [block_id, digest_hash, incarnation].
	var digestRows []sqltypes.Row
	for _, d := range digests {
		h, err := d.BlockHash()
		if err != nil {
			rep.add(Issue{Invariant: 1, Detail: fmt.Sprintf("digest for block %d: %v", d.BlockID, err)})
			continue
		}
		digestRows = append(digestRows, sqltypes.Row{
			sqltypes.NewBigInt(int64(d.BlockID)),
			sqltypes.NewVarBinary(append([]byte(nil), h[:]...)),
			sqltypes.NewBigInt(d.Incarnation),
		})
	}
	// LEFT JOIN with the blocks relation on block_id. Output:
	// digest(0..2) ++ block(3..8); unmatched digests get NULL block cols.
	joined := query.HashJoin(query.Values(digestRows), l.blocksRelation(), []int{0}, []int{0}, query.LeftJoin, 6)
	for {
		r, ok := joined.Next()
		if !ok {
			break
		}
		blockID := uint64(r[0].Int())
		if r[3].Null { // no matching block
			switch {
			case blockID < truncatedBefore:
				rep.add(Issue{Invariant: 1, Warning: true,
					Detail: fmt.Sprintf("digest for block %d predates ledger truncation (before_block=%d); not verifiable", blockID, truncatedBefore)})
			case r[2].Int() != l.incarnation:
				rep.add(Issue{Invariant: 1, Warning: true,
					Detail: fmt.Sprintf("digest for block %d was issued for incarnation %d and points past the restore point", blockID, r[2].Int())})
			default:
				rep.add(Issue{Invariant: 1, Detail: fmt.Sprintf("digest references block %d which is not present in the ledger", blockID)})
			}
			continue
		}
		if string(r[1].Bytes) != string(r[8].Bytes) {
			rep.add(Issue{Invariant: 1, Detail: fmt.Sprintf("digest hash mismatch for block %d: digest=%x computed=%x", blockID, r[1].Bytes, r[8].Bytes)})
		}
	}
}

// verifyChainQuery checks invariant 2 with the LAG formulation.
func (l *LedgerDB) verifyChainQuery(truncatedBefore uint64, blocks *BlockRange, rep *Report) {
	// Each output row is prev(0..5) ++ cur(6..11). With a block range the
	// relation also carries block From-1 as a link anchor; that row is
	// not itself checked or counted.
	it := query.Lag(l.blocksRelationRange(blocks, true), 6)
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		curID := uint64(r[6].Int())
		if !blocks.contains(curID) {
			continue // range anchor row
		}
		rep.BlocksChecked++
		if r[0].Null { // first block of the chain (or range)
			switch {
			case curID == 0 && !allZero(r[7].Bytes):
				rep.add(Issue{Invariant: 2, Detail: "block 0 must have a null previous hash"})
			case curID > 0 && curID != truncatedBefore && blocks == nil:
				rep.add(Issue{Invariant: 2, Detail: fmt.Sprintf("chain starts at block %d with no truncation record covering it", curID)})
			case curID > 0 && blocks != nil && curID > blocks.From && curID != truncatedBefore:
				// Mid-range gap: the range's first present block is past
				// From, so blocks are missing inside the range.
				rep.add(Issue{Invariant: 2, Detail: fmt.Sprintf("block range [%d,%d] starts at block %d: earlier range blocks are missing", blocks.From, blocks.To, curID)})
			}
			continue
		}
		prevID := uint64(r[0].Int())
		if curID != prevID+1 {
			rep.add(Issue{Invariant: 2, Detail: fmt.Sprintf("block gap: %d follows %d", curID, prevID)})
			continue
		}
		// Current block's recorded previous hash vs. LEDGERHASH(prev).
		if string(r[7].Bytes) != string(r[5].Bytes) {
			rep.add(Issue{Invariant: 2, Detail: fmt.Sprintf("block %d previous-hash mismatch: recorded=%x computed-over-block-%d=%x", curID, r[7].Bytes, prevID, r[5].Bytes)})
		}
	}
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// verifyBlockRootsQuery checks invariant 3: group the transaction entries
// by block, aggregate their hashes with MERKLETREEAGG in ordinal order,
// and outer-join against the blocks relation.
func (l *LedgerDB) verifyBlockRootsQuery(entries map[uint64]*wal.LedgerEntry, blocks *BlockRange, rep *Report) {
	rep.TransactionsChecked = len(entries)
	// Entry relation: [tx_id, block_id, ordinal, LEDGERHASH(entry)].
	rows := make([]sqltypes.Row, 0, len(entries))
	for _, e := range entries {
		h := entryHash(e)
		rows = append(rows, sqltypes.Row{
			sqltypes.NewBigInt(int64(e.TxID)),
			sqltypes.NewBigInt(int64(e.BlockID)),
			sqltypes.NewBigInt(int64(e.Ordinal)),
			sqltypes.NewVarBinary(append([]byte(nil), h[:]...)),
		})
	}
	// ORDER BY block_id, ordinal; GROUP BY block_id with MERKLETREEAGG
	// and COUNT; then FULL-ish join both ways against blocks.
	grouped := query.Collect(query.GroupBy(
		query.Sort(query.Values(rows), 1, 2),
		[]int{1},
		&query.MerkleTreeAgg{HashCol: 3},
		&query.CountAgg{},
		&query.MaxAgg{Col: 2},
	)) // -> [block_id, root, count, max_ordinal]

	// Side A: every closed block must match its group's root and count.
	joined := query.HashJoin(l.blocksRelationRange(blocks, false), query.Values(grouped), []int{0}, []int{0}, query.LeftJoin, 4)
	var maxClosed int64 = -1
	for {
		r, ok := joined.Next()
		if !ok {
			break
		}
		// block(0..5) ++ group(6..9)
		blockID := r[0].Int()
		if blockID > maxClosed {
			maxClosed = blockID
		}
		if r[6].Null {
			rep.add(Issue{Invariant: 3, Detail: fmt.Sprintf("block %d has no transactions in the system", blockID)})
			continue
		}
		count, maxOrd := r[8].Int(), r[9].Int()
		if count != r[3].Int() {
			rep.add(Issue{Invariant: 3, Detail: fmt.Sprintf("block %d records %d transactions but %d are present", blockID, r[3].Int(), count)})
		}
		if maxOrd != count-1 {
			rep.add(Issue{Invariant: 3, Detail: fmt.Sprintf("block %d transaction ordinals are not contiguous", blockID)})
			continue
		}
		if string(r[7].Bytes) != string(r[2].Bytes) {
			rep.add(Issue{Invariant: 3, Detail: fmt.Sprintf("block %d transactions root mismatch: recorded=%x computed=%x", blockID, r[2].Bytes, r[7].Bytes)})
		}
	}
	// Side B: every transaction in a closed block must belong to a block
	// that exists (later transactions are still awaiting block close).
	missing := query.Filter(
		query.HashJoin(query.Values(grouped), l.blocksRelationRange(blocks, false), []int{0}, []int{0}, query.LeftJoin, 6),
		func(r sqltypes.Row) bool { return r[4].Null && r[0].Int() <= maxClosed },
	)
	for {
		r, ok := missing.Next()
		if !ok {
			break
		}
		rep.add(Issue{Invariant: 3, Detail: fmt.Sprintf("transactions reference block %d which is not present", r[0].Int())})
	}
}
