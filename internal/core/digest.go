package core

import (
	"encoding/json"
	"fmt"
	"time"

	"sqlledger/internal/merkle"
	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
)

// Digest is a database digest (§2.2): the hash of the latest block of the
// database ledger plus metadata, serialized as JSON. Stored outside the
// database (immutable storage, WORM device, a public blockchain, ...), a
// digest later proves that the data it covers was not tampered with.
type Digest struct {
	DatabaseName string `json:"database_name"`
	// Incarnation is the database create time; restores start a new
	// incarnation (§3.6).
	Incarnation int64  `json:"database_create_time"`
	BlockID     uint64 `json:"block_id"`
	// Hash is the hex-encoded SHA-256 hash of the block.
	Hash string `json:"hash"`
	// LastCommitTS is the commit timestamp (unix nanoseconds) of the last
	// transaction in the block.
	LastCommitTS int64 `json:"last_transaction_commit_time"`
	// GeneratedAt is when the digest was produced (unix nanoseconds).
	GeneratedAt int64 `json:"digest_time"`
}

// BlockHash decodes the digest's hash.
func (d Digest) BlockHash() (merkle.Hash, error) { return merkle.ParseHash(d.Hash) }

// JSON renders the digest as the JSON document the API exposes.
func (d Digest) JSON() []byte {
	b, err := json.Marshal(d)
	if err != nil {
		panic(fmt.Sprintf("core: digest marshal: %v", err)) // static type: cannot fail
	}
	return b
}

// ParseDigest parses a digest JSON document.
func ParseDigest(b []byte) (Digest, error) {
	var d Digest
	if err := json.Unmarshal(b, &d); err != nil {
		return d, fmt.Errorf("core: bad digest: %w", err)
	}
	if _, err := d.BlockHash(); err != nil {
		return d, err
	}
	return d, nil
}

// GenerateDigest closes the current block (if it holds any transactions)
// and returns the digest of the latest closed block. Digest generation is
// cheap — it only hashes recently appended blocks — which is what lets
// digests be extracted every few seconds (§2.2).
//
// When geo-replication is simulated (Options.ReplicaLag), the digest is
// delayed until the covered data has been replicated; if the secondary
// stays behind for longer than MaxReplicaDelay, ErrReplicationBehind is
// returned, mirroring §3.6.
func (l *LedgerDB) GenerateDigest() (d Digest, err error) {
	start := time.Now()
	sp := l.obs.Tracer().Start("generate_digest")
	defer func() {
		sp.Finish(err)
		if err == nil {
			l.m.digestSeconds.ObserveSince(start)
			l.m.digests.Inc()
		}
	}()
	l.lmu.Lock()
	if l.curOrdinal > 0 {
		// Force-close the partially filled block so the digest covers
		// every committed transaction.
		l.curBlock++
		l.curOrdinal = 0
	}
	target := int64(l.curBlock) - 1
	l.lmu.Unlock()

	if target >= 0 {
		if err := l.waitForReplication(target); err != nil {
			return Digest{}, err
		}
		if err := l.closeBlocksThrough(target); err != nil {
			return Digest{}, err
		}
	}
	l.closeMu.Lock()
	latest := l.closedThrough
	hash := l.prevHash
	l.closeMu.Unlock()
	if latest < 0 {
		return Digest{}, ErrEmptyLedger
	}
	if _, ok := l.sysBlocks.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(latest))); !ok {
		return Digest{}, fmt.Errorf("core: closed block %d missing from %s", latest, sysBlocksName)
	}
	lastTS := l.lastCommitOfBlock(uint64(latest))
	l.obs.Events().Info(obs.EventDigestGenerated, "block", latest, "hash", hash.String())
	return Digest{
		DatabaseName: l.opts.Name,
		Incarnation:  l.incarnation,
		BlockID:      uint64(latest),
		Hash:         hash.String(),
		LastCommitTS: lastTS,
		GeneratedAt:  l.nowNanos(),
	}, nil
}

func (l *LedgerDB) lastCommitOfBlock(block uint64) int64 {
	var ts int64
	for _, e := range l.entriesOfBlock(block) {
		if e.CommitTS > ts {
			ts = e.CommitTS
		}
	}
	return ts
}

// waitForReplication blocks until the simulated geo-secondary has applied
// every transaction the digest would cover (§3.6: "SQL Ledger will only
// issue Database Digests for data that has been replicated").
func (l *LedgerDB) waitForReplication(targetBlock int64) error {
	if l.opts.ReplicaLag == nil {
		return nil
	}
	lastTS := l.lastCommitOfBlock(uint64(targetBlock))
	deadline := time.Now().Add(l.opts.MaxReplicaDelay)
	for {
		applied := time.Now().Add(-l.opts.ReplicaLag()).UnixNano()
		if applied >= lastTS {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: lag %v", ErrReplicationBehind, l.opts.ReplicaLag())
		}
		time.Sleep(time.Millisecond)
	}
}

// CheckDigest checks that a digest still matches this database's chain:
// same name and incarnation, and the digest's block is present in
// sys_ledger_blocks with exactly the hash the digest recorded. It is the
// cheap point check the sharded super-block reconciliation and
// verification use to pin each shard head before (or without) a full
// five-invariant verification.
func (l *LedgerDB) CheckDigest(d Digest) error {
	if d.DatabaseName != l.opts.Name {
		return fmt.Errorf("core: digest names database %q, this is %q", d.DatabaseName, l.opts.Name)
	}
	if d.Incarnation != l.incarnation {
		return fmt.Errorf("core: digest is for incarnation %d, database is at %d (restored?)", d.Incarnation, l.incarnation)
	}
	want, err := d.BlockHash()
	if err != nil {
		return err
	}
	row, ok := l.sysBlocks.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(d.BlockID))))
	if !ok {
		return fmt.Errorf("core: digest block %d is not closed in this database", d.BlockID)
	}
	if blockHashOfRow(row) != want {
		return fmt.Errorf("core: block %d hash does not match the digest (forked ledger)", d.BlockID)
	}
	return nil
}

// VerifyDigestDerivation checks that digest newer can be derived from
// digest older using the current block chain (§3.3.1, requirement 3):
// both digests must match the recomputed hashes of their blocks, and the
// chain must link older's block to newer's. A failure means earlier data
// was overwritten and newer represents a forked state. This catches forks
// as soon as a new digest is generated, without a full verification.
func (l *LedgerDB) VerifyDigestDerivation(older, newer Digest) error {
	if older.BlockID > newer.BlockID {
		return fmt.Errorf("core: digest for block %d is not older than block %d", older.BlockID, newer.BlockID)
	}
	oldHash, err := older.BlockHash()
	if err != nil {
		return err
	}
	newHash, err := newer.BlockHash()
	if err != nil {
		return err
	}
	prev := merkle.ZeroHash
	for b := older.BlockID; b <= newer.BlockID; b++ {
		row, ok := l.sysBlocks.Lookup(sqltypes.EncodeKey(nil, sqltypes.NewBigInt(int64(b))))
		if !ok {
			return fmt.Errorf("core: block %d missing while deriving digest chain", b)
		}
		h := blockHashOfRow(row)
		switch {
		case b == older.BlockID && h != oldHash:
			return fmt.Errorf("core: block %d hash does not match the older digest (forked ledger)", b)
		case b > older.BlockID:
			var stored merkle.Hash
			copy(stored[:], row[1].Bytes)
			if stored != prev {
				return fmt.Errorf("core: block %d previous-hash link broken while deriving digest chain", b)
			}
		}
		prev = h
	}
	if prev != newHash {
		return fmt.Errorf("core: derived hash for block %d does not match the newer digest (forked ledger)", newer.BlockID)
	}
	return nil
}
