// Operational surface for sharded databases: /healthz, /debug/ledger and
// /debug/audit over the whole shard set, with the super-block state —
// the signed digest-of-digests that makes N shards one ledger — surfaced
// next to the per-shard chain positions.
package core

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"sqlledger/internal/obs"
)

// SuperBlockHealth is the super-root slice of a sharded /healthz and
// /debug/ledger response.
type SuperBlockHealth struct {
	SeqNo      uint64  `json:"seq_no"` // 0 = none closed yet
	Root       string  `json:"root,omitempty"`
	Shards     int     `json:"shards,omitempty"`
	AgeSeconds float64 `json:"age_seconds,omitempty"`
}

func (s *ShardedDB) superBlockHealth() *SuperBlockHealth {
	sb := s.LastSuperBlock()
	if sb == nil {
		return &SuperBlockHealth{}
	}
	// Age is measured on the database clock (Options.Clock when set) —
	// GeneratedAt comes from the same clock, so the two stay comparable
	// under logical clocks too.
	return &SuperBlockHealth{
		SeqNo:      sb.SeqNo,
		Root:       sb.Root,
		Shards:     sb.Shards,
		AgeSeconds: time.Duration(s.nowNanos() - sb.GeneratedAt).Seconds(),
	}
}

// ShardedHealth is the typed status served at a sharded /healthz: the
// worst shard state wins, with the super-block watermark and the sharded
// audit summary alongside the per-shard reports.
type ShardedHealth struct {
	Status     HealthState       `json:"status"`
	Reasons    []string          `json:"reasons,omitempty"`
	SuperBlock *SuperBlockHealth `json:"super_block"`
	Audit      *AuditHealth      `json:"audit,omitempty"`
	Shards     []Health          `json:"shards"`
	CheckedAt  int64             `json:"checked_at_unix_nano"`
}

// ShardedDebug is the sharded /debug/ledger snapshot.
type ShardedDebug struct {
	Name       string            `json:"name"`
	Shards     int               `json:"shards"`
	SuperBlock *SuperBlockHealth `json:"super_block"`
	Instances  []LedgerDebug     `json:"instances"`
}

// DebugInfo captures every shard's shape plus the super-block watermark.
func (s *ShardedDB) DebugInfo() ShardedDebug {
	d := ShardedDebug{
		Name:       s.opts.Name,
		Shards:     len(s.shards),
		SuperBlock: s.superBlockHealth(),
	}
	for _, shard := range s.shards {
		d.Instances = append(d.Instances, shard.DebugInfo())
	}
	sort.Slice(d.Instances, func(i, j int) bool { return d.Instances[i].Name < d.Instances[j].Name })
	return d
}

// ShardedHealthChecker evaluates a ShardedDB: each shard through its own
// HealthChecker, plus super-block freshness and the sharded auditor.
type ShardedHealthChecker struct {
	s   *ShardedDB
	thr HealthThresholds
	hcs []*HealthChecker
}

// NewHealthChecker builds a checker spanning every shard.
func (s *ShardedDB) NewHealthChecker(thr HealthThresholds) *ShardedHealthChecker {
	shc := &ShardedHealthChecker{s: s, thr: thr.withDefaults()}
	for _, shard := range s.shards {
		shc.hcs = append(shc.hcs, shard.NewHealthChecker(thr))
	}
	return shc
}

// Check evaluates the sharded database's health right now.
func (shc *ShardedHealthChecker) Check() ShardedHealth {
	now := time.Now()
	h := ShardedHealth{
		Status:     HealthHealthy,
		SuperBlock: shc.s.superBlockHealth(),
		CheckedAt:  now.UnixNano(),
	}
	degrade := func(to HealthState, reason string) {
		if to == HealthUnhealthy || h.Status == HealthHealthy {
			h.Status = to
		}
		h.Reasons = append(h.Reasons, reason)
	}
	for i, hc := range shc.hcs {
		sh := hc.Check()
		h.Shards = append(h.Shards, sh)
		if sh.Status != HealthHealthy {
			for _, r := range sh.Reasons {
				degrade(sh.Status, shardDirName(i)+": "+r)
			}
		}
	}
	if sa := shc.s.Auditor(); sa != nil {
		st := sa.Status()
		// Fold the shard statuses into one headline: the lowest verified
		// watermark and the stalest cycle bound what "verified" means for
		// the whole ledger.
		agg := AuditStatus{Shard: -1, Ok: st.Ok, VerifiedThroughBlock: -1}
		for _, ss := range st.Shards {
			if agg.VerifiedThroughBlock < 0 || ss.VerifiedThroughBlock < agg.VerifiedThroughBlock {
				agg.VerifiedThroughBlock = ss.VerifiedThroughBlock
			}
			if ss.AgeSeconds > agg.AgeSeconds {
				agg.AgeSeconds = ss.AgeSeconds
			}
			if ss.LagBlocks > agg.LagBlocks {
				agg.LagBlocks = ss.LagBlocks
			}
			agg.Cycles += ss.Cycles
			if ss.LastCycleAt > agg.LastCycleAt {
				agg.LastCycleAt = ss.LastCycleAt
			}
			if agg.LastReport == nil {
				agg.LastReport = ss.LastReport
			}
		}
		if st.HeadReport != nil {
			agg.LastReport = st.HeadReport
			agg.Ok = false
		}
		h.Audit = auditHealthOf(agg)
		if !h.Audit.Ok {
			degrade(HealthUnhealthy, "auditor localized tampering: "+h.Audit.Tamper.String())
		}
	}
	if shc.thr.MaxSuperBlockAge > 0 {
		switch {
		case h.SuperBlock.SeqNo == 0:
			degrade(HealthDegraded, "no super-block has been closed")
		case h.SuperBlock.AgeSeconds > shc.thr.MaxSuperBlockAge.Seconds():
			degrade(HealthDegraded, fmt.Sprintf("super-block %d is %.1fs old (max %v)",
				h.SuperBlock.SeqNo, h.SuperBlock.AgeSeconds, shc.thr.MaxSuperBlockAge))
		}
	}
	return h
}

// OpsHandler returns the sharded operational HTTP surface on the
// coordinator's shared registry: /metrics and the /debug endpoints plus
// sharded /healthz, /debug/ledger and /debug/audit. hc may be nil for a
// checker with default thresholds.
func (s *ShardedDB) OpsHandler(hc *ShardedHealthChecker) http.Handler {
	if hc == nil {
		hc = s.NewHealthChecker(HealthThresholds{})
	}
	mux := obs.Mux(s.obs)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := hc.Check()
		w.Header().Set("Content-Type", "application/json")
		if h.Status == HealthUnhealthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeIndentedJSON(w, h)
	})
	mux.HandleFunc("/debug/ledger", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeIndentedJSON(w, s.DebugInfo())
	})
	mux.HandleFunc("/debug/audit", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		sa := s.Auditor()
		if sa == nil {
			writeIndentedJSON(w, map[string]bool{"enabled": false})
			return
		}
		writeIndentedJSON(w, sa.Status())
	})
	return mux
}

// StartOpsServer serves OpsHandler (with default thresholds) on addr.
func (s *ShardedDB) StartOpsServer(addr string) (*obs.Server, error) {
	return obs.StartServerHandler(addr, s.OpsHandler(nil))
}
