// Ledger health and debug introspection. The paper's trust story needs
// operators to *see* the ledger working — digests leaving the trust
// boundary on schedule, verification completing against the chain head —
// so the HealthChecker folds chain height, digest lag, queue depth and
// the last verification outcome into one typed status served at
// /healthz, with /debug/ledger exposing the full chain/table snapshot.
package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sqlledger/internal/obs"
)

// HealthState is the coarse status served at /healthz.
type HealthState string

// Health states, from good to bad.
const (
	HealthHealthy   HealthState = "healthy"
	HealthDegraded  HealthState = "degraded"
	HealthUnhealthy HealthState = "unhealthy"
)

// healthCode maps a state onto the sqlledger_health_status gauge.
func healthCode(s HealthState) float64 {
	switch s {
	case HealthDegraded:
		return 1
	case HealthUnhealthy:
		return 2
	default:
		return 0
	}
}

// HealthThresholds tunes when the checker reports degraded/unhealthy.
// The zero value uses the defaults noted per field.
type HealthThresholds struct {
	// DegradedDigestLag is how many closed blocks may lack an uploaded
	// digest before the status degrades (default 4). Blocks not covered
	// by a digest in immutable storage are blocks an attacker with
	// database access could still rewrite silently (§2.2).
	DegradedDigestLag int64
	// UnhealthyDigestLag is the digest lag at which the status becomes
	// unhealthy (default 16).
	UnhealthyDigestLag int64
	// MaxQueueDepth is how many ledger entries may sit in the in-memory
	// queue before the status degrades (default 100000 — one default
	// block).
	MaxQueueDepth int
	// MaxVerifyAge degrades the status when the last verification is
	// older than this (or has never run). Zero disables the check.
	MaxVerifyAge time.Duration
	// MaxVerifiedLag degrades the status when a registered auditor's
	// last completed cycle is older than this — the always-on
	// verification has fallen behind, so the "verified up to block K"
	// claim is going stale. Zero disables the check. A tamper report
	// from the auditor makes the status unhealthy regardless.
	MaxVerifiedLag time.Duration
	// MaxSuperBlockAge (sharded databases only) degrades the status when
	// the newest signed super-block is older than this: shard chains are
	// growing without the digest-of-digests pinning them. Zero disables
	// the check.
	MaxSuperBlockAge time.Duration
}

func (t HealthThresholds) withDefaults() HealthThresholds {
	if t.DegradedDigestLag <= 0 {
		t.DegradedDigestLag = 4
	}
	if t.UnhealthyDigestLag <= 0 {
		t.UnhealthyDigestLag = 16
	}
	if t.UnhealthyDigestLag < t.DegradedDigestLag {
		t.UnhealthyDigestLag = t.DegradedDigestLag
	}
	if t.MaxQueueDepth <= 0 {
		t.MaxQueueDepth = DefaultBlockSize
	}
	return t
}

// uploadMark records the most recent digest upload for health tracking.
type uploadMark struct {
	block int64 // highest uploaded block id; -1 = never
	at    time.Time
}

// verifyMark records the most recent verification outcome.
type verifyMark struct {
	done   bool
	at     time.Time
	dur    time.Duration
	ok     bool
	issues int
}

// VerifyHealth summarizes the last verification run for /healthz.
type VerifyHealth struct {
	Ok              bool    `json:"ok"`
	Issues          int     `json:"issues"`
	AgeSeconds      float64 `json:"age_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// AuditHealth folds the always-on auditor's state into /healthz: how far
// continuous verification has advanced, how stale it is, and whether it
// has localized tampering.
type AuditHealth struct {
	VerifiedThroughBlock int64   `json:"verified_through_block"`
	LagBlocks            int64   `json:"lag_blocks"`
	AgeSeconds           float64 `json:"age_seconds"`
	Cycles               int64   `json:"cycles"`
	Ok                   bool    `json:"ok"`
	// Summary is the operator-facing one-liner, e.g.
	// "verified up to block 41, 0.8 seconds ago".
	Summary string        `json:"summary"`
	Tamper  *TamperReport `json:"tamper,omitempty"`
}

func auditHealthOf(st AuditStatus) *AuditHealth {
	ah := &AuditHealth{
		VerifiedThroughBlock: st.VerifiedThroughBlock,
		LagBlocks:            st.LagBlocks,
		AgeSeconds:           st.AgeSeconds,
		Cycles:               st.Cycles,
		Ok:                   st.Ok,
		Tamper:               st.LastReport,
	}
	switch {
	case st.LastCycleAt == 0:
		ah.Summary = "auditor has not completed a cycle"
	case st.VerifiedThroughBlock < 0:
		ah.Summary = fmt.Sprintf("no blocks closed yet; last audit cycle %.1f seconds ago", st.AgeSeconds)
	default:
		ah.Summary = fmt.Sprintf("verified up to block %d, %.1f seconds ago", st.VerifiedThroughBlock, st.AgeSeconds)
	}
	return ah
}

// Health is the typed status served as JSON at /healthz.
type Health struct {
	Status  HealthState `json:"status"`
	Reasons []string    `json:"reasons,omitempty"`

	ChainHeight   int64  `json:"chain_height"` // closed blocks in sys_ledger_blocks
	ChainHeadHash string `json:"chain_head_hash,omitempty"`
	Incarnation   int64  `json:"incarnation"`
	CurrentBlock  uint64 `json:"current_block"` // block now receiving transactions
	QueueDepth    int    `json:"queue_depth"`

	DigestLagBlocks            int64   `json:"digest_lag_blocks"`
	LastDigestUploadBlock      int64   `json:"last_digest_upload_block"` // -1 = never
	LastDigestUploadAgeSeconds float64 `json:"last_digest_upload_age_seconds,omitempty"`

	LastVerify *VerifyHealth `json:"last_verify,omitempty"`
	Audit      *AuditHealth  `json:"audit,omitempty"`

	CheckedAt int64 `json:"checked_at_unix_nano"`
}

// HealthChecker evaluates a LedgerDB against thresholds. Each Check
// also updates the sqlledger_health_status gauge and emits a
// health_changed event on state transitions.
type HealthChecker struct {
	l     *LedgerDB
	thr   HealthThresholds
	gauge *obs.Gauge

	mu   sync.Mutex
	prev HealthState
}

// NewHealthChecker builds a checker for this database.
func (l *LedgerDB) NewHealthChecker(thr HealthThresholds) *HealthChecker {
	return &HealthChecker{
		l:     l,
		thr:   thr.withDefaults(),
		gauge: l.obs.Gauge(obs.HealthStatus),
	}
}

// Check evaluates the database's health right now.
func (hc *HealthChecker) Check() Health {
	l := hc.l
	now := time.Now()

	l.closeMu.Lock()
	closed := l.closedThrough
	head := l.prevHash
	l.closeMu.Unlock()
	l.lmu.Lock()
	queue := len(l.queue)
	curBlock := l.curBlock
	l.lmu.Unlock()
	l.healthMu.Lock()
	up := l.lastUpload
	lv := l.lastVerify
	l.healthMu.Unlock()

	h := Health{
		Status:                HealthHealthy,
		ChainHeight:           closed + 1,
		Incarnation:           l.incarnation,
		CurrentBlock:          curBlock,
		QueueDepth:            queue,
		LastDigestUploadBlock: -1,
		CheckedAt:             now.UnixNano(),
	}
	if closed >= 0 {
		h.ChainHeadHash = head.String()
	}
	if up.block >= 0 {
		h.DigestLagBlocks = closed - up.block
		h.LastDigestUploadBlock = up.block
		h.LastDigestUploadAgeSeconds = now.Sub(up.at).Seconds()
	} else {
		// Never uploaded: every closed block is uncovered.
		h.DigestLagBlocks = closed + 1
	}
	if lv.done {
		h.LastVerify = &VerifyHealth{
			Ok:              lv.ok,
			Issues:          lv.issues,
			AgeSeconds:      now.Sub(lv.at).Seconds(),
			DurationSeconds: lv.dur.Seconds(),
		}
	}
	if a := l.Auditor(); a != nil {
		h.Audit = auditHealthOf(a.Status())
	}

	degrade := func(to HealthState, reason string) {
		if to == HealthUnhealthy || h.Status == HealthHealthy {
			h.Status = to
		}
		h.Reasons = append(h.Reasons, reason)
	}
	switch {
	case h.DigestLagBlocks >= hc.thr.UnhealthyDigestLag:
		degrade(HealthUnhealthy, fmt.Sprintf("digest lag %d blocks >= unhealthy threshold %d", h.DigestLagBlocks, hc.thr.UnhealthyDigestLag))
	case h.DigestLagBlocks >= hc.thr.DegradedDigestLag:
		degrade(HealthDegraded, fmt.Sprintf("digest lag %d blocks >= degraded threshold %d", h.DigestLagBlocks, hc.thr.DegradedDigestLag))
	}
	if queue > hc.thr.MaxQueueDepth {
		degrade(HealthDegraded, fmt.Sprintf("ledger queue depth %d > %d", queue, hc.thr.MaxQueueDepth))
	}
	if lv.done && !lv.ok {
		degrade(HealthUnhealthy, fmt.Sprintf("last verification found %d issues", lv.issues))
	}
	if hc.thr.MaxVerifyAge > 0 {
		switch {
		case !lv.done:
			degrade(HealthDegraded, "no verification has run")
		case now.Sub(lv.at) > hc.thr.MaxVerifyAge:
			degrade(HealthDegraded, fmt.Sprintf("last verification is %v old (max %v)", now.Sub(lv.at).Round(time.Second), hc.thr.MaxVerifyAge))
		}
	}
	if h.Audit != nil {
		if !h.Audit.Ok {
			degrade(HealthUnhealthy, "auditor localized tampering: "+h.Audit.Tamper.String())
		}
		if hc.thr.MaxVerifiedLag > 0 {
			switch {
			case h.Audit.Cycles == 0:
				degrade(HealthDegraded, "auditor has not completed a cycle")
			case h.Audit.AgeSeconds > hc.thr.MaxVerifiedLag.Seconds():
				degrade(HealthDegraded, fmt.Sprintf("audit verification is %.1fs behind (max %v): %s",
					h.Audit.AgeSeconds, hc.thr.MaxVerifiedLag, h.Audit.Summary))
			}
		}
	}

	hc.gauge.Set(healthCode(h.Status))
	hc.mu.Lock()
	prev := hc.prev
	hc.prev = h.Status
	hc.mu.Unlock()
	if prev != "" && prev != h.Status {
		l.obs.Events().Warn(obs.EventHealthChanged,
			"from", string(prev), "to", string(h.Status), "reasons", strings.Join(h.Reasons, "; "))
	}
	return h
}

// noteDigestUploaded records a successful digest upload for health
// tracking and emits the audit event.
func (l *LedgerDB) noteDigestUploaded(d Digest, blob string) {
	l.healthMu.Lock()
	if int64(d.BlockID) > l.lastUpload.block {
		l.lastUpload = uploadMark{block: int64(d.BlockID), at: time.Now()}
	}
	l.healthMu.Unlock()
	l.obs.Events().Info(obs.EventDigestUploaded, "block", d.BlockID, "blob", blob, "hash", d.Hash)
}

// TableDebug is one ledger table in the /debug/ledger snapshot.
type TableDebug struct {
	Name        string `json:"name"`
	ID          uint32 `json:"id"`
	Kind        string `json:"kind"`
	Rows        int    `json:"rows"`
	HistoryRows int    `json:"history_rows"`
	Indexes     int    `json:"indexes"`
}

// LedgerDebug is the /debug/ledger snapshot: where the chain stands and
// how big each ledger table is.
type LedgerDebug struct {
	Name           string       `json:"name"`
	Incarnation    int64        `json:"incarnation"`
	BlockSize      uint32       `json:"block_size"`
	ChainHeight    int64        `json:"chain_height"`
	ChainHeadHash  string       `json:"chain_head_hash,omitempty"`
	CurrentBlock   uint64       `json:"current_block"`
	CurrentOrdinal uint32       `json:"current_ordinal"`
	QueueDepth     int          `json:"queue_depth"`
	LastCommitTS   int64        `json:"last_commit_ts_unix_nano"`
	Tables         []TableDebug `json:"tables"`
}

// DebugInfo captures the ledger's current shape for /debug/ledger.
func (l *LedgerDB) DebugInfo() LedgerDebug {
	l.closeMu.Lock()
	closed := l.closedThrough
	head := l.prevHash
	l.closeMu.Unlock()
	l.lmu.Lock()
	queue := len(l.queue)
	curBlock, curOrdinal := l.curBlock, l.curOrdinal
	l.lmu.Unlock()

	d := LedgerDebug{
		Name:           l.opts.Name,
		Incarnation:    l.incarnation,
		BlockSize:      l.opts.BlockSize,
		ChainHeight:    closed + 1,
		CurrentBlock:   curBlock,
		CurrentOrdinal: curOrdinal,
		QueueDepth:     queue,
		LastCommitTS:   l.edb.LastCommitTS(),
	}
	if closed >= 0 {
		d.ChainHeadHash = head.String()
	}
	for _, lt := range l.LedgerTables() {
		td := TableDebug{
			Name:    lt.Name(),
			ID:      lt.ID(),
			Kind:    string(lt.Kind()),
			Rows:    lt.Table().RowCount(),
			Indexes: len(lt.Table().Indexes()),
		}
		if ht := lt.History(); ht != nil {
			td.HistoryRows = ht.RowCount()
		}
		d.Tables = append(d.Tables, td)
	}
	sort.Slice(d.Tables, func(i, j int) bool { return d.Tables[i].Name < d.Tables[j].Name })
	return d
}

// OpsHandler returns the database's operational HTTP surface: the
// registry endpoints (/metrics, /debug/spans, /debug/events,
// /debug/pprof) plus /healthz and /debug/ledger. hc may be nil for a
// checker with default thresholds. /healthz answers 200 for healthy and
// degraded, 503 for unhealthy.
func (l *LedgerDB) OpsHandler(hc *HealthChecker) http.Handler {
	if hc == nil {
		hc = l.NewHealthChecker(HealthThresholds{})
	}
	mux := obs.Mux(l.obs)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		h := hc.Check()
		w.Header().Set("Content-Type", "application/json")
		if h.Status == HealthUnhealthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeIndentedJSON(w, h)
	})
	mux.HandleFunc("/debug/ledger", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeIndentedJSON(w, l.DebugInfo())
	})
	mux.HandleFunc("/debug/audit", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		a := l.Auditor()
		if a == nil {
			writeIndentedJSON(w, map[string]bool{"enabled": false})
			return
		}
		writeIndentedJSON(w, a.Status())
	})
	return mux
}

func writeIndentedJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// StartOpsServer serves OpsHandler (with default thresholds) on addr,
// e.g. "127.0.0.1:0" for an ephemeral port.
func (l *LedgerDB) StartOpsServer(addr string) (*obs.Server, error) {
	return obs.StartServerHandler(addr, l.OpsHandler(nil))
}
