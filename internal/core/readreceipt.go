package core

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"

	"sqlledger/internal/merkle"
	"sqlledger/internal/serial"
	"sqlledger/internal/wal"
)

// ReadReceipt proves that every row a snapshot read returned is committed
// ledger content (§5.1 extended from transactions to query results). The
// proof chains three levels, all checkable offline with only the signer's
// public key:
//
//	row bytes → (transaction, table) Merkle root   (Rows[i].Proof)
//	transaction entry → block transactions root    (Entries[i].Proof)
//	block root → ed25519 signature                 (Blocks[i].Signature)
//
// Rows carry the canonical insert-operation serialization of each row
// version; its hash is the exact leaf the creating transaction committed
// to, so altering any returned byte breaks the chain. Entries and Blocks
// are deduplicated: rows created by one transaction share an entry, and
// entries in one block share a root signature.
type ReadReceipt struct {
	DatabaseName string            `json:"database_name"`
	SnapshotTS   int64             `json:"snapshot_time"`
	Rows         []ReadReceiptRow  `json:"rows"`
	Entries      []ReadReceiptTx   `json:"transactions"`
	Blocks       []ReadReceiptBlk  `json:"blocks"`
	PublicKey    ed25519.PublicKey `json:"public_key"`
}

// ReadReceiptRow proves one returned row version: RowData is the canonical
// insert-op serialization (hidden ledger columns included, end columns
// skipped), and Proof links its hash into the creating transaction's
// per-table Merkle tree, whose root is recorded in Entries[Entry].
type ReadReceiptRow struct {
	Table   string       `json:"table"`
	TableID uint32       `json:"table_id"`
	RowData []byte       `json:"row_data"`
	Entry   int          `json:"transaction_index"`
	Proof   ReceiptProof `json:"merkle_proof"`
}

// ReadReceiptTx is a deduplicated transaction entry plus its inclusion
// proof in the transactions tree of Blocks[Block].
type ReadReceiptTx struct {
	Entry ReceiptEntry `json:"transaction"`
	Block int          `json:"block_index"`
	Proof ReceiptProof `json:"merkle_proof"`
}

// ReadReceiptBlk is a signed block transactions root.
type ReadReceiptBlk struct {
	BlockID   uint64 `json:"block_id"`
	Root      string `json:"transactions_root"`
	Signature []byte `json:"signature"`
}

// JSON renders the read receipt.
func (r ReadReceipt) JSON() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("core: read receipt marshal: %v", err))
	}
	return b
}

// ParseReadReceipt parses a read receipt JSON document.
func ParseReadReceipt(b []byte) (ReadReceipt, error) {
	var r ReadReceipt
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("core: bad read receipt: %w", err)
	}
	return r, nil
}

// buildReadReceipt assembles the receipt for a snapshot read set. The
// caller still holds the snapshot pin, so version GC cannot reclaim the
// proven versions while the Merkle trees are rebuilt.
func (l *LedgerDB) buildReadReceipt(reads []readRecord, snapTS int64, priv ed25519.PrivateKey) (ReadReceipt, error) {
	r := ReadReceipt{
		DatabaseName: l.opts.Name,
		SnapshotTS:   snapTS,
		PublicKey:    append(ed25519.PublicKey(nil), priv.Public().(ed25519.PublicKey)...),
	}
	if len(reads) == 0 {
		return r, nil
	}

	// Force-close the open block so every read row's creating transaction
	// lives in a closed, signable block (same move as digest generation).
	l.lmu.Lock()
	if l.curOrdinal > 0 {
		l.curBlock++
		l.curOrdinal = 0
	}
	target := int64(l.curBlock) - 1
	l.lmu.Unlock()
	if target >= 0 {
		if err := l.closeBlocksThrough(target); err != nil {
			return ReadReceipt{}, err
		}
	}

	// Group the read set by (table, creating transaction): rows of one
	// group are proven against one rebuilt Merkle tree in one pass.
	type txTable struct {
		tableID uint32
		txID    uint64
	}
	groups := make(map[txTable][]int)
	var groupOrder []txTable
	for i, rec := range reads {
		k := txTable{tableID: rec.lt.ID(), txID: uint64(rec.full[rec.lt.startTxOrd].Int())}
		if _, ok := groups[k]; !ok {
			groupOrder = append(groupOrder, k)
		}
		groups[k] = append(groups[k], i)
	}

	// Resolve each distinct creating transaction's ledger entry, then
	// prove all entries of one block in a single tree construction.
	entryIdx := make(map[uint64]int)
	entries := make(map[uint64]*wal.LedgerEntry)
	byBlock := make(map[uint64][]uint64) // block → txIDs, first-seen order
	var blockOrder []uint64
	for _, k := range groupOrder {
		if _, ok := entries[k.txID]; ok {
			continue
		}
		e, err := l.entryOfTx(k.txID)
		if err != nil {
			return ReadReceipt{}, err
		}
		entries[k.txID] = e
		if _, ok := byBlock[e.BlockID]; !ok {
			blockOrder = append(blockOrder, e.BlockID)
		}
		byBlock[e.BlockID] = append(byBlock[e.BlockID], k.txID)
	}
	for _, blockID := range blockOrder {
		es := l.entriesOfBlock(blockID)
		leaves := make([]merkle.Hash, len(es))
		for i, be := range es {
			leaves[i] = entryHash(be)
		}
		root := merkle.RootOf(leaves)
		r.Blocks = append(r.Blocks, ReadReceiptBlk{
			BlockID:   blockID,
			Root:      root.String(),
			Signature: ed25519.Sign(priv, signedMessage(l.opts.Name, blockID, root)),
		})
		bi := len(r.Blocks) - 1
		txIDs := byBlock[blockID]
		indices := make([]uint64, len(txIDs))
		for i, txID := range txIDs {
			indices[i] = uint64(entries[txID].Ordinal)
		}
		proofs, err := merkle.BuildProofs(leaves, indices)
		if err != nil {
			return ReadReceipt{}, err
		}
		for i, txID := range txIDs {
			r.Entries = append(r.Entries, ReadReceiptTx{
				Entry: toReceiptEntry(entries[txID]),
				Block: bi,
				Proof: encodeProof(proofs[i]),
			})
			entryIdx[txID] = len(r.Entries) - 1
		}
	}

	// Prove every read row inside its (transaction, table) tree. The tree
	// is rebuilt from current table content — the same recomputation
	// verification's invariant 4 performs — and cross-checked against the
	// root recorded in the ledger entry before any proof is emitted.
	r.Rows = make([]ReadReceiptRow, len(reads))
	for _, k := range groupOrder {
		e := entries[k.txID]
		var lt *LedgerTable
		for _, i := range groups[k] {
			lt = reads[i].lt
			break
		}
		leaves := txTableLeaves(lt, k.txID)
		var want merkle.Hash
		wantFound := false
		for _, tr := range e.Roots {
			if tr.TableID == k.tableID {
				want, wantFound = tr.Root, true
				break
			}
		}
		if !wantFound || merkle.RootOf(leaves) != want {
			return ReadReceipt{}, fmt.Errorf(
				"core: table %s content does not match transaction %d's recorded Merkle root",
				lt.Name(), k.txID)
		}
		idxs := make([]uint64, len(groups[k]))
		for gi, i := range groups[k] {
			rowData := serial.SerializeRow(nil, lt.table.Schema(), reads[i].full, serial.OpInsert, lt.skipEnd)
			h := merkle.HashLeaf(rowData)
			pos := -1
			for li, leaf := range leaves {
				if leaf == h {
					pos = li
					break
				}
			}
			if pos < 0 {
				return ReadReceipt{}, fmt.Errorf(
					"core: row read from %s is not covered by transaction %d's Merkle tree",
					lt.Name(), k.txID)
			}
			idxs[gi] = uint64(pos)
			r.Rows[i] = ReadReceiptRow{
				Table:   lt.Name(),
				TableID: k.tableID,
				RowData: rowData,
				Entry:   entryIdx[k.txID],
			}
		}
		proofs, err := merkle.BuildProofs(leaves, idxs)
		if err != nil {
			return ReadReceipt{}, err
		}
		for gi, i := range groups[k] {
			r.Rows[i].Proof = encodeProof(proofs[gi])
		}
	}
	return r, nil
}

// txTableLeaves recomputes, in commit sequence order, the Merkle leaves of
// one transaction's tree for one ledger table: insert-op hashes of rows
// the transaction created (base or history) and delete-op hashes of
// history rows it ended — the per-transaction slice of the invariant-4
// recomputation, shared with the auditor's bisection (txTableOps).
func txTableLeaves(lt *LedgerTable, txID uint64) []merkle.Hash {
	ops := txTableOps(lt, txID, nil)
	leaves := make([]merkle.Hash, len(ops))
	for i, o := range ops {
		leaves[i] = o.hash
	}
	return leaves
}

// VerifyReadReceipt checks a read receipt offline: every block root
// signature must verify under pub, every transaction entry must prove into
// its signed block root, and every row's data hash must prove into its
// transaction's recorded per-table root. It needs no database access.
func VerifyReadReceipt(r ReadReceipt, pub ed25519.PublicKey) error {
	blockRoots := make([]merkle.Hash, len(r.Blocks))
	for i, b := range r.Blocks {
		root, err := merkle.ParseHash(b.Root)
		if err != nil {
			return err
		}
		if !ed25519.Verify(pub, signedMessage(r.DatabaseName, b.BlockID, root), b.Signature) {
			return fmt.Errorf("core: read receipt: block %d signature is invalid", b.BlockID)
		}
		blockRoots[i] = root
	}
	for _, en := range r.Entries {
		if en.Block < 0 || en.Block >= len(r.Blocks) {
			return fmt.Errorf("core: read receipt: transaction %d references unknown block index %d",
				en.Entry.TxID, en.Block)
		}
		roots := make([]wal.TableRoot, len(en.Entry.Roots))
		for j, tr := range en.Entry.Roots {
			h, err := merkle.ParseHash(tr.Root)
			if err != nil {
				return err
			}
			roots[j] = wal.TableRoot{TableID: tr.TableID, Root: h}
		}
		leaf := entryHash(&wal.LedgerEntry{
			TxID: en.Entry.TxID, BlockID: r.Blocks[en.Block].BlockID, Ordinal: en.Entry.Ordinal,
			CommitTS: en.Entry.CommitTS, User: en.Entry.User, Roots: roots,
		})
		p, err := decodeProof(en.Proof)
		if err != nil {
			return err
		}
		if !p.Verify(blockRoots[en.Block], leaf) {
			return fmt.Errorf("core: read receipt: transaction %d proof does not verify", en.Entry.TxID)
		}
	}
	for i, row := range r.Rows {
		if row.Entry < 0 || row.Entry >= len(r.Entries) {
			return fmt.Errorf("core: read receipt: row %d references unknown transaction index %d",
				i, row.Entry)
		}
		en := r.Entries[row.Entry]
		var tableRoot merkle.Hash
		found := false
		for _, tr := range en.Entry.Roots {
			if tr.TableID == row.TableID {
				h, err := merkle.ParseHash(tr.Root)
				if err != nil {
					return err
				}
				tableRoot, found = h, true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: read receipt: transaction %d recorded no root for table %d",
				en.Entry.TxID, row.TableID)
		}
		p, err := decodeProof(row.Proof)
		if err != nil {
			return err
		}
		if !p.Verify(tableRoot, merkle.HashLeaf(row.RowData)) {
			return fmt.Errorf("core: read receipt: row %d of table %s does not verify", i, row.Table)
		}
	}
	return nil
}
