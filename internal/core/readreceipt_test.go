package core

import (
	"testing"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// seedReadLedger commits three transactions: a 3-row insert, a 2-row
// insert, and an update of one of the second batch's rows. Returns the
// table.
func seedReadLedger(t *testing.T, l *LedgerDB) *LedgerTable {
	t.Helper()
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	tx := l.Begin("alice")
	for _, name := range []string{"a1", "a2", "a3"} {
		if err := tx.Insert(lt, account(name, 10)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	tx = l.Begin("bob")
	for _, name := range []string{"b1", "b2"} {
		if err := tx.Insert(lt, account(name, 20)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	tx = l.Begin("carol")
	if err := tx.Update(lt, account("b2", 99)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	return lt
}

// readAll snapshot-reads every row (one Get plus a full Scan) under a
// receipt-collecting transaction and returns it still open.
func readAll(t *testing.T, l *LedgerDB, lt *LedgerTable) *ReadTx {
	t.Helper()
	rt := l.BeginReadOnlyForReceipt()
	row, ok, err := rt.Get(lt, sqltypes.NewNVarChar("a1"))
	if err != nil || !ok {
		t.Fatalf("snapshot get: ok=%v err=%v", ok, err)
	}
	if len(row) != 2 {
		t.Fatalf("snapshot get returned %d columns, want 2 visible", len(row))
	}
	n := 0
	if err := rt.Scan(lt, func(sqltypes.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("snapshot scan saw %d rows, want 5", n)
	}
	// The Get duplicated one scan row; the read set dedups it.
	if rt.ReadSetSize() != 5 {
		t.Fatalf("read set has %d rows, want 5", rt.ReadSetSize())
	}
	return rt
}

func TestReadReceiptRoundTrip(t *testing.T) {
	pub, priv := testKeys(t)
	l := openTestLedger(t, 4)
	lt := seedReadLedger(t, l)

	rt := readAll(t, l, lt)
	r, err := rt.CloseWithReceipt(priv)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("receipt has %d rows, want 5", len(r.Rows))
	}
	// Rows created by one transaction share its entry: the read set spans
	// exactly the three seeded user transactions.
	if len(r.Entries) != 3 {
		t.Fatalf("receipt has %d transaction entries, want 3 (deduplicated)", len(r.Entries))
	}
	if err := VerifyReadReceipt(r, pub); err != nil {
		t.Fatalf("verify: %v", err)
	}
	back, err := ParseReadReceipt(r.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReadReceipt(back, pub); err != nil {
		t.Fatalf("verify after JSON roundtrip: %v", err)
	}
	// A second CloseWithReceipt on the same (now closed) tx must fail.
	if _, err := rt.CloseWithReceipt(priv); err == nil {
		t.Fatal("CloseWithReceipt on a closed read tx succeeded")
	}
}

func TestReadReceiptOfSupersededVersion(t *testing.T) {
	// Pin a snapshot, then update and delete rows it read AFTER the pin:
	// the receipt, built last, must still prove the old versions (their
	// insert hashes now live in the history table).
	pub, priv := testKeys(t)
	l := openTestLedger(t, 4)
	lt := seedReadLedger(t, l)

	rt := readAll(t, l, lt)
	tx := l.Begin("mallory")
	if err := tx.Update(lt, account("a1", -1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(lt, sqltypes.NewNVarChar("a2")); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	r, err := rt.CloseWithReceipt(priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReadReceipt(r, pub); err != nil {
		t.Fatalf("receipt for superseded versions: %v", err)
	}
}

func TestReadReceiptSurvivesLedgerDestruction(t *testing.T) {
	pub, priv := testKeys(t)
	l := openTestLedger(t, 4)
	lt := seedReadLedger(t, l)
	rt := readAll(t, l, lt)
	r, err := rt.CloseWithReceipt(priv)
	if err != nil {
		t.Fatal(err)
	}
	l.Close() // ledger gone; verification is fully offline
	if err := VerifyReadReceipt(r, pub); err != nil {
		t.Fatalf("offline verification failed: %v", err)
	}
}

func TestReadReceiptEmptyReadSet(t *testing.T) {
	pub, priv := testKeys(t)
	l := openTestLedger(t, 4)
	seedReadLedger(t, l)
	rt := l.BeginReadOnlyForReceipt()
	r, err := rt.CloseWithReceipt(priv)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 0 || len(r.Entries) != 0 || len(r.Blocks) != 0 {
		t.Fatal("empty read set produced a non-empty receipt")
	}
	if err := VerifyReadReceipt(r, pub); err != nil {
		t.Fatal(err)
	}
}

// TestPlainReadOnlySkipsReadSet: a transaction begun with BeginReadOnly
// accumulates nothing (a full scan clones zero rows) and refuses to mint
// a receipt, while the reads themselves work normally.
func TestPlainReadOnlySkipsReadSet(t *testing.T) {
	_, priv := testKeys(t)
	l := openTestLedger(t, 4)
	lt := seedReadLedger(t, l)

	rt := l.BeginReadOnly()
	defer rt.Close()
	n := 0
	if err := rt.Scan(lt, func(sqltypes.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("snapshot scan saw %d rows, want 5", n)
	}
	if _, ok, err := rt.Get(lt, sqltypes.NewNVarChar("a1")); err != nil || !ok {
		t.Fatalf("snapshot get: ok=%v err=%v", ok, err)
	}
	if rt.ReadSetSize() != 0 {
		t.Fatalf("plain read-only tx accumulated %d rows, want 0", rt.ReadSetSize())
	}
	if _, err := rt.CloseWithReceipt(priv); err != ErrReceiptNotRequested {
		t.Fatalf("CloseWithReceipt on plain read tx: err=%v, want ErrReceiptNotRequested", err)
	}
	// The refusal left the transaction open; reads still work.
	if _, ok, err := rt.Get(lt, sqltypes.NewNVarChar("b1")); err != nil || !ok {
		t.Fatalf("snapshot get after refused receipt: ok=%v err=%v", ok, err)
	}
}

// reparse deep-copies a receipt through its JSON form so tamper tests
// never alias the original's slices.
func reparse(t *testing.T, r ReadReceipt) ReadReceipt {
	t.Helper()
	back, err := ParseReadReceipt(r.JSON())
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestReadReceiptTamperDetected(t *testing.T) {
	pub, priv := testKeys(t)
	l := openTestLedger(t, 4)
	lt := seedReadLedger(t, l)
	rt := readAll(t, l, lt)
	r, err := rt.CloseWithReceipt(priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReadReceipt(r, pub); err != nil {
		t.Fatal(err)
	}

	// Any altered row byte breaks the row's leaf hash.
	bad := reparse(t, r)
	bad.Rows[0].RowData[len(bad.Rows[0].RowData)-1] ^= 0x01
	if err := VerifyReadReceipt(bad, pub); err == nil {
		t.Fatal("tampered row data accepted")
	}

	// A corrupted row-proof sibling breaks the path to the table root.
	bad = reparse(t, r)
	tampered := false
	for i := range bad.Rows {
		if len(bad.Rows[i].Proof.Siblings) > 0 {
			s := []byte(bad.Rows[i].Proof.Siblings[0])
			s[0] ^= 0x01
			if s[0] == 'x' { // keep it valid hex
				s[0] = '0'
			}
			bad.Rows[i].Proof.Siblings[0] = string(s)
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no row proof with siblings to tamper (read set too small)")
	}
	if err := VerifyReadReceipt(bad, pub); err == nil {
		t.Fatal("tampered row proof accepted")
	}

	// Re-pointing a row at another transaction's entry must fail.
	bad = reparse(t, r)
	bad.Rows[0].Entry = (bad.Rows[0].Entry + 1) % len(bad.Entries)
	if err := VerifyReadReceipt(bad, pub); err == nil {
		t.Fatal("row re-attributed to another transaction accepted")
	}
	bad.Rows[0].Entry = len(bad.Entries)
	if err := VerifyReadReceipt(bad, pub); err == nil {
		t.Fatal("out-of-range transaction index accepted")
	}

	// A tampered entry (different principal) breaks the entry hash.
	bad = reparse(t, r)
	bad.Entries[0].Entry.User = "mallory"
	if err := VerifyReadReceipt(bad, pub); err == nil {
		t.Fatal("tampered principal accepted")
	}

	// A tampered recorded table root breaks the entry hash too — the root
	// is part of what the block tree commits to.
	bad = reparse(t, r)
	root := []byte(bad.Entries[0].Entry.Roots[0].Root)
	if root[0] == '0' {
		root[0] = '1'
	} else {
		root[0] = '0'
	}
	bad.Entries[0].Entry.Roots[0].Root = string(root)
	if err := VerifyReadReceipt(bad, pub); err == nil {
		t.Fatal("tampered table root accepted")
	}

	// A forged block signature fails immediately.
	bad = reparse(t, r)
	bad.Blocks[0].Signature[0] ^= 0x01
	if err := VerifyReadReceipt(bad, pub); err == nil {
		t.Fatal("forged block signature accepted")
	}

	// The wrong public key rejects the whole receipt.
	otherPub, _ := testKeys(t)
	if err := VerifyReadReceipt(r, otherPub); err == nil {
		t.Fatal("wrong public key accepted")
	}

	// A receipt transplanted to another database name fails (the name is
	// bound into the signed message).
	bad = reparse(t, r)
	bad.DatabaseName = "other-db"
	if err := VerifyReadReceipt(bad, pub); err == nil {
		t.Fatal("receipt transplanted to another database accepted")
	}
}
