package core

import (
	"testing"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

func countRows(tab *engine.Table) int { return tab.RowCount() }

func TestTruncateLedger(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	// Build up history: inserts, then updates so history rows accumulate.
	for i := 0; i < 4; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
	}
	for i := 0; i < 4; i++ {
		tx := l.Begin("u")
		tx.Update(lt, account(acctName(i), int64(100+i)))
		mustCommit(t, tx)
	}
	d1, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	blocksBefore := countRows(l.sysBlocks)
	txsBefore := countRows(l.sysTx) + len(l.queue)
	historyBefore := countRows(lt.History())
	if historyBefore != 4 {
		t.Fatalf("history rows = %d", historyBefore)
	}

	// Truncate everything before the middle of the chain.
	cut := d1.BlockID / 2
	if cut == 0 {
		t.Fatalf("need more blocks (have up to %d)", d1.BlockID)
	}
	if err := l.TruncateLedger(cut); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	// Blocks below the cut are gone; the chain starts exactly at it.
	var minBlock int64 = 1 << 62
	l.sysBlocks.Scan(func(_ []byte, r sqltypes.Row) bool {
		if r[0].Int() < minBlock {
			minBlock = r[0].Int()
		}
		return true
	})
	if uint64(minBlock) != cut {
		t.Fatalf("chain should start at the cut: min=%d cut=%d", minBlock, cut)
	}
	_ = blocksBefore
	_ = txsBefore

	// The truncation is recorded in the audit ledger table.
	if countRows(l.truncations.Table()) != 1 {
		t.Fatal("truncation not recorded")
	}

	// A fresh digest verifies; the pre-truncation digest is reported as a
	// warning (not verifiable), not as tampering.
	d2, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.Verify([]Digest{d2}, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("post-truncation verification failed:\n%s", rep)
	}
	if cut > 0 {
		repOld, err := l.Verify([]Digest{d1}, VerifyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// d1's block may or may not survive depending on where the cut
		// fell; if it is gone it must be a warning only.
		if !repOld.Ok() {
			t.Fatalf("old digest should warn, not fail:\n%s", repOld)
		}
	}

	// Current data still fully present.
	rtx := l.Begin("r")
	n := 0
	rtx.Scan(lt, func(r sqltypes.Row) bool {
		if r[1].Int() < 100 {
			t.Fatalf("stale row version surfaced: %v", r)
		}
		n++
		return true
	})
	rtx.Rollback()
	if n != 4 {
		t.Fatalf("rows after truncation = %d", n)
	}
}

func TestTruncateRefusesWhenTampered(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 6)
	key := firstKeyOf(t, lt.Table())
	l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(999)
		return r
	}, true)
	if err := l.TruncateLedger(1); err == nil {
		t.Fatal("truncation must refuse to destroy tampering evidence")
	}
}

func TestTruncateBeyondClosedBlocksRejected(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 2)
	if err := l.TruncateLedger(50); err == nil {
		t.Fatal("truncating past the chain accepted")
	}
}

func TestTruncateThenContinueAndVerify(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	for i := 0; i < 6; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
	}
	d, _ := l.GenerateDigest()
	if err := l.TruncateLedger(d.BlockID / 2); err != nil {
		t.Fatal(err)
	}
	// Keep working after truncation.
	for i := 6; i < 9; i++ {
		tx := l.Begin("u")
		tx.Insert(lt, account(acctName(i), int64(i)))
		mustCommit(t, tx)
	}
	d2, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := l.Verify([]Digest{d2}, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("verification after truncation + new work:\n%s", rep)
	}
}
