package core

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"

	"sqlledger/internal/serial"
)

// Digest signing (§2.4): "Database Digests can be ... signed with the
// company's private/public key pair, to guarantee their authenticity, and
// shared with any customers, partners or auditors who can later use them
// to verify the corresponding data." A SignedDigest binds the digest's
// contents under an ed25519 signature so recipients can check it came
// from the key holder before trusting it as verification input.

// SignedDigest is a digest plus an authenticity signature.
type SignedDigest struct {
	Digest    Digest            `json:"digest"`
	Signature []byte            `json:"signature"`
	PublicKey ed25519.PublicKey `json:"public_key"`
}

// digestMessage canonicalizes the signed content: every field of the
// digest, bound with length prefixes.
func digestMessage(d Digest) []byte {
	h := serial.HashBytes(
		[]byte("sqlledger-digest"),
		[]byte(d.DatabaseName),
		u64le(uint64(d.Incarnation)),
		u64le(d.BlockID),
		[]byte(d.Hash),
		u64le(uint64(d.LastCommitTS)),
		u64le(uint64(d.GeneratedAt)),
	)
	return h[:]
}

// SignDigest signs a digest with the organization's private key.
func SignDigest(d Digest, priv ed25519.PrivateKey) SignedDigest {
	return SignedDigest{
		Digest:    d,
		Signature: ed25519.Sign(priv, digestMessage(d)),
		PublicKey: append(ed25519.PublicKey(nil), priv.Public().(ed25519.PublicKey)...),
	}
}

// VerifySignedDigest checks the signature under pub (use the publicly
// known key, not the embedded one, when authenticity matters).
func VerifySignedDigest(sd SignedDigest, pub ed25519.PublicKey) error {
	if !ed25519.Verify(pub, digestMessage(sd.Digest), sd.Signature) {
		return fmt.Errorf("core: digest signature is invalid")
	}
	return nil
}

// JSON renders the signed digest as a JSON document.
func (sd SignedDigest) JSON() []byte {
	b, err := json.Marshal(sd)
	if err != nil {
		panic(fmt.Sprintf("core: signed digest marshal: %v", err))
	}
	return b
}

// ParseSignedDigest parses a signed digest document.
func ParseSignedDigest(b []byte) (SignedDigest, error) {
	var sd SignedDigest
	if err := json.Unmarshal(b, &sd); err != nil {
		return sd, fmt.Errorf("core: bad signed digest: %w", err)
	}
	return sd, nil
}
