package core

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sqlledger/internal/blobstore"
	"sqlledger/internal/engine"
	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
)

func commitAccounts(t *testing.T, l *LedgerDB, lt *LedgerTable, names ...string) {
	t.Helper()
	for i, name := range names {
		tx := l.Begin("alice")
		if err := tx.Insert(lt, account(name, int64(i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
}

// End-to-end acceptance test for the health layer: a ledger that keeps
// its digests current is healthy; one that closes blocks without
// uploading degrades and then goes unhealthy as the lag crosses the
// thresholds.
func TestHealthEndToEnd(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	commitAccounts(t, l, lt, "a", "b", "c", "d", "e", "f")

	store := blobstore.NewMemory()
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}

	hc := l.NewHealthChecker(HealthThresholds{DegradedDigestLag: 2, UnhealthyDigestLag: 100})
	h := hc.Check()
	l.closeMu.Lock()
	closed := l.closedThrough
	l.closeMu.Unlock()
	if closed < 0 {
		t.Fatal("no blocks closed despite block size 2")
	}
	if h.Status != HealthHealthy {
		t.Fatalf("status = %s (%v), want healthy", h.Status, h.Reasons)
	}
	if h.ChainHeight != closed+1 {
		t.Fatalf("ChainHeight = %d, want %d", h.ChainHeight, closed+1)
	}
	if h.DigestLagBlocks != 0 {
		t.Fatalf("DigestLagBlocks = %d, want 0 right after upload", h.DigestLagBlocks)
	}
	if h.LastDigestUploadBlock != closed {
		t.Fatalf("LastDigestUploadBlock = %d, want %d", h.LastDigestUploadBlock, closed)
	}
	if h.ChainHeadHash == "" || h.Incarnation == 0 || h.CheckedAt == 0 {
		t.Fatalf("incomplete health: %+v", h)
	}
	if g, ok := l.obs.Snapshot().GaugeValue(obs.HealthStatus); !ok || g != 0 {
		t.Fatalf("health gauge = %v, %v, want 0", g, ok)
	}

	// Close more blocks without uploading: digest lag grows past the
	// degraded threshold.
	commitAccounts(t, l, lt, "g", "h", "i", "j", "k", "m")
	if _, err := l.GenerateDigest(); err != nil { // closes blocks, no upload
		t.Fatal(err)
	}
	h = hc.Check()
	if h.Status != HealthDegraded {
		t.Fatalf("status = %s (%v), want degraded", h.Status, h.Reasons)
	}
	if h.DigestLagBlocks < 2 {
		t.Fatalf("DigestLagBlocks = %d, want >= 2", h.DigestLagBlocks)
	}
	if len(h.Reasons) == 0 || !strings.Contains(h.Reasons[0], "digest lag") {
		t.Fatalf("reasons = %v", h.Reasons)
	}
	if g, _ := l.obs.Snapshot().GaugeValue(obs.HealthStatus); g != 1 {
		t.Fatalf("health gauge = %v, want 1", g)
	}
	// The healthy -> degraded transition must be audited.
	changed := l.obs.Events().RecentOfType(obs.EventHealthChanged, 0)
	if len(changed) != 1 {
		t.Fatalf("health_changed events = %d, want 1", len(changed))
	}

	// A checker with tighter thresholds sees the same lag as unhealthy.
	tight := l.NewHealthChecker(HealthThresholds{DegradedDigestLag: 1, UnhealthyDigestLag: 2})
	if h := tight.Check(); h.Status != HealthUnhealthy {
		t.Fatalf("tight status = %s (%v), want unhealthy", h.Status, h.Reasons)
	}

	// Catching up on uploads restores health.
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}
	if h := hc.Check(); h.Status != HealthHealthy || h.DigestLagBlocks != 0 {
		t.Fatalf("after catch-up: %+v", h)
	}
}

// A fresh database with nothing closed and nothing uploaded is healthy:
// there is nothing a digest could cover yet.
func TestHealthFreshDatabase(t *testing.T) {
	l := openTestLedger(t, 1000)
	h := l.NewHealthChecker(HealthThresholds{}).Check()
	if h.Status != HealthHealthy {
		t.Fatalf("fresh status = %s (%v)", h.Status, h.Reasons)
	}
	if h.ChainHeight != 0 || h.DigestLagBlocks != 0 || h.LastDigestUploadBlock != -1 {
		t.Fatalf("fresh health: %+v", h)
	}
}

func TestHealthVerifyMarks(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	commitAccounts(t, l, lt, "a", "b", "c", "d")
	store := blobstore.NewMemory()
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}
	digests, err := l.StoredDigests(store)
	if err != nil {
		t.Fatal(err)
	}

	hc := l.NewHealthChecker(HealthThresholds{MaxVerifyAge: time.Hour})
	if h := hc.Check(); h.Status != HealthDegraded || h.LastVerify != nil {
		t.Fatalf("before any verify: %+v", h)
	}
	verifyOK(t, l, digests)
	h := hc.Check()
	if h.Status != HealthHealthy {
		t.Fatalf("after verify: %s (%v)", h.Status, h.Reasons)
	}
	if h.LastVerify == nil || !h.LastVerify.Ok || h.LastVerify.Issues != 0 {
		t.Fatalf("LastVerify = %+v", h.LastVerify)
	}

	// A failed verification flips the status to unhealthy.
	key := firstKeyOf(t, lt.Table())
	l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(999999)
		return r
	}, true)
	rep, err := l.Verify(digests, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("verification should fail after tampering")
	}
	h = hc.Check()
	if h.Status != HealthUnhealthy || h.LastVerify.Ok {
		t.Fatalf("after failed verify: %+v", h)
	}
	if n := len(l.obs.Events().RecentOfType(obs.EventVerifyIssue, 0)); n == 0 {
		t.Fatal("no verify_issue events after failed verification")
	}
}

// Verification progress must be monotonically non-decreasing, cover the
// phases, and end at exactly 1.0 — with the matching gauge and audit
// event pair.
func TestVerifyProgress(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	commitAccounts(t, l, lt, "a", "b", "c", "d", "e", "f")
	store := blobstore.NewMemory()
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}
	digests, err := l.StoredDigests(store)
	if err != nil {
		t.Fatal(err)
	}

	var updates []VerifyProgress
	rep, err := l.Verify(digests, VerifyOptions{
		Parallelism: 4,
		Progress:    func(p VerifyProgress) { updates = append(updates, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("verify failed:\n%s", rep)
	}
	if len(updates) < 3 {
		t.Fatalf("only %d progress updates", len(updates))
	}
	phases := map[string]bool{}
	for i, p := range updates {
		if p.Ratio < 0 || p.Ratio > 1 {
			t.Fatalf("update %d out of range: %+v", i, p)
		}
		if i > 0 && p.Ratio < updates[i-1].Ratio {
			t.Fatalf("progress went backwards at %d: %v -> %v", i, updates[i-1].Ratio, p.Ratio)
		}
		phases[p.Phase] = true
	}
	last := updates[len(updates)-1]
	if last.Ratio != 1 || last.Phase != "done" {
		t.Fatalf("final update = %+v, want ratio exactly 1.0 and phase done", last)
	}
	for _, want := range []string{"chain", "row_versions", "indexes", "views", "done"} {
		if !phases[want] {
			t.Fatalf("phase %q never reported (got %v)", want, phases)
		}
	}
	if g, ok := l.obs.Snapshot().GaugeValue(obs.VerifyProgressRatio); !ok || g != 1 {
		t.Fatalf("progress gauge = %v, %v, want 1", g, ok)
	}

	// The audit trail must hold a started/finished pair, in order.
	started := l.obs.Events().RecentOfType(obs.EventVerifyStarted, 0)
	finished := l.obs.Events().RecentOfType(obs.EventVerifyFinished, 0)
	if len(started) == 0 || len(finished) == 0 {
		t.Fatalf("verify events missing: started=%d finished=%d", len(started), len(finished))
	}
	if started[0].Seq >= finished[0].Seq {
		t.Fatalf("verify_started (seq %d) not before verify_finished (seq %d)", started[0].Seq, finished[0].Seq)
	}
}

// The full audit-event trail of a ledger session: incarnation assignment,
// block closes, digest generation and upload.
func TestAuditEventTrail(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	commitAccounts(t, l, lt, "a", "b", "c", "d")
	store := blobstore.NewMemory()
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}
	ev := l.obs.Events()
	for _, typ := range []string{
		obs.EventIncarnation,
		obs.EventBlockClosed,
		obs.EventDigestGenerated,
		obs.EventDigestUploaded,
	} {
		if len(ev.RecentOfType(typ, 0)) == 0 {
			t.Fatalf("no %s event recorded", typ)
		}
	}
	// block_closed events carry the block id and transaction count.
	bc := ev.RecentOfType(obs.EventBlockClosed, 1)[0]
	keys := map[string]bool{}
	for _, a := range bc.Attrs {
		keys[a.Key] = true
	}
	if !keys["block"] || !keys["transactions"] || !keys["hash"] {
		t.Fatalf("block_closed attrs = %+v", bc.Attrs)
	}
}

// The ops HTTP surface end to end: /healthz, /debug/ledger,
// /debug/events and /metrics all answer with the expected content, and
// /healthz flips to 503 when the checker reports unhealthy.
func TestOpsServerEndpoints(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	commitAccounts(t, l, lt, "a", "b", "c", "d", "e", "f")
	store := blobstore.NewMemory()
	if _, err := l.UploadDigest(store); err != nil {
		t.Fatal(err)
	}

	srv, err := l.StartOpsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var h Health
	resp := mustGet(t, base+"/healthz", http.StatusOK)
	if err := json.Unmarshal(resp, &h); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, resp)
	}
	if h.Status != HealthHealthy || h.ChainHeight < 1 {
		t.Fatalf("healthz = %+v", h)
	}

	var dbg LedgerDebug
	resp = mustGet(t, base+"/debug/ledger", http.StatusOK)
	if err := json.Unmarshal(resp, &dbg); err != nil {
		t.Fatalf("debug/ledger JSON: %v\n%s", err, resp)
	}
	if dbg.Name != "test" || dbg.ChainHeight != h.ChainHeight {
		t.Fatalf("debug/ledger = %+v (healthz height %d)", dbg, h.ChainHeight)
	}
	var accounts *TableDebug
	for i := range dbg.Tables {
		if dbg.Tables[i].Name == "accounts" {
			accounts = &dbg.Tables[i]
		}
	}
	if accounts == nil || accounts.Rows != 6 || accounts.Kind != "updateable" {
		t.Fatalf("debug/ledger tables = %+v", dbg.Tables)
	}

	var events []obs.Event
	resp = mustGet(t, base+"/debug/events?type=digest_uploaded", http.StatusOK)
	if err := json.Unmarshal(resp, &events); err != nil {
		t.Fatalf("debug/events JSON: %v\n%s", err, resp)
	}
	if len(events) != 1 || events[0].Type != obs.EventDigestUploaded {
		t.Fatalf("debug/events = %+v", events)
	}

	metrics := string(mustGet(t, base+"/metrics", http.StatusOK))
	for _, want := range []string{
		obs.HealthStatus,
		obs.BlocksClosedTotal,
		obs.RuntimeGoroutines, // sampled by the /metrics handler itself
		obs.RuntimeHeapAllocBytes,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// An unhealthy checker turns /healthz into a 503.
	commitAccounts(t, l, lt, "g", "h", "i", "j")
	if _, err := l.GenerateDigest(); err != nil {
		t.Fatal(err)
	}
	tight := httptest.NewServer(l.OpsHandler(l.NewHealthChecker(HealthThresholds{DegradedDigestLag: 1, UnhealthyDigestLag: 2})))
	defer tight.Close()
	resp = mustGet(t, tight.URL+"/healthz", http.StatusServiceUnavailable)
	if err := json.Unmarshal(resp, &h); err != nil || h.Status != HealthUnhealthy {
		t.Fatalf("unhealthy healthz = %+v err=%v", h, err)
	}
}

func mustGet(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d\n%s", url, resp.StatusCode, wantStatus, body)
	}
	return body
}
