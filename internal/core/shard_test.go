package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

func openSharded(t *testing.T, dir string, shards int) *ShardedDB {
	t.Helper()
	s, err := OpenSharded(Options{
		Dir: dir, Name: "bank", Shards: shards,
		LockTimeout: 5 * time.Second,
		Clock:       logicalClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func acct(name string, bal int64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewNVarChar(name), sqltypes.NewBigInt(bal)}
}

// loadAccounts inserts n accounts named acct-0000..acct-n in one
// transaction per chunk of 50.
func loadAccounts(t *testing.T, s *ShardedDB, st *ShardedTable, n int) {
	t.Helper()
	for lo := 0; lo < n; lo += 50 {
		tx := s.Begin("loader")
		for i := lo; i < lo+50 && i < n; i++ {
			if err := tx.Insert(st, acct(fmt.Sprintf("acct-%04d", i), int64(100+i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedBasicOps exercises routed DML, point reads, cross-shard
// scans and the routing invariants on a 4-shard database.
func TestShardedBasicOps(t *testing.T) {
	s := openSharded(t, t.TempDir(), 4)
	defer s.Close()
	st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	loadAccounts(t, s, st, n)

	// Every shard should own a nonempty slice of a 200-row FNV partition.
	perShard := make([]int, s.NumShards())
	for i := 0; i < n; i++ {
		perShard[st.ShardOf(sqltypes.NewNVarChar(fmt.Sprintf("acct-%04d", i)))]++
	}
	for i, c := range perShard {
		if c == 0 {
			t.Fatalf("shard %d owns no rows of a %d-row partition", i, n)
		}
	}

	// Point reads route to the owning shard and see every row.
	tx := s.Begin("reader")
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("acct-%04d", i)
		row, ok, err := tx.Get(st, sqltypes.NewNVarChar(name))
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", name, ok, err)
		}
		if row[1].Int() != int64(100+i) {
			t.Fatalf("Get(%s): balance %d", name, row[1].Int())
		}
	}
	// A sharded scan visits all rows exactly once.
	seen := 0
	if err := tx.Scan(st, func(sqltypes.Row) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("scan saw %d rows, want %d", seen, n)
	}
	tx.Rollback()

	// Update + delete route like inserts; a cross-shard read-back agrees.
	tx = s.Begin("teller")
	if err := tx.Update(st, acct("acct-0000", 9_999)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(st, sqltypes.NewNVarChar("acct-0001")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin("reader")
	row, ok, _ := tx.Get(st, sqltypes.NewNVarChar("acct-0000"))
	if !ok || row[1].Int() != 9_999 {
		t.Fatalf("updated row: ok=%v row=%v", ok, row)
	}
	if _, ok, _ := tx.Get(st, sqltypes.NewNVarChar("acct-0001")); ok {
		t.Fatal("deleted row still visible")
	}
	tx.Rollback()
}

// TestShardedSuperBlock closes super-blocks, checks their chaining,
// signature and per-shard proofs, and runs the full sharded verification.
func TestShardedSuperBlock(t *testing.T) {
	dir := t.TempDir()
	s := openSharded(t, dir, 3)
	defer s.Close()
	st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	loadAccounts(t, s, st, 120)

	sb1, err := s.CloseSuperBlock()
	if err != nil {
		t.Fatal(err)
	}
	if sb1.SeqNo != 1 || sb1.Shards != 3 || len(sb1.Heads) != 3 {
		t.Fatalf("super-block 1: %+v", sb1)
	}
	if err := CheckSuperBlock(sb1, s.PublicKey()); err != nil {
		t.Fatal(err)
	}
	// JSON round trip preserves the signed identity.
	rt, err := ParseSuperBlock(sb1.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSuperBlock(rt, s.PublicKey()); err != nil {
		t.Fatalf("round-tripped super-block: %v", err)
	}
	// A tampered head must break the root check or the signature.
	bad := *rt
	bad.Heads = append([]ShardHead(nil), rt.Heads...)
	bad.Heads[1].Digest.Hash = strings.Repeat("00", 32)
	if err := CheckSuperBlock(&bad, s.PublicKey()); err == nil {
		t.Fatal("tampered head passed CheckSuperBlock")
	}
	// Per-shard proofs verify under the super-root.
	root, _ := sb1.Hash(), sb1.Root
	_ = root
	for i := 0; i < 3; i++ {
		p, err := ShardProof(sb1, i)
		if err != nil {
			t.Fatal(err)
		}
		r, err := parseHashT(t, sb1.Root)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Verify(r, shardHeadLeaf(sb1.Heads[i])) {
			t.Fatalf("shard %d proof failed", i)
		}
	}

	// More writes, second super-block: chained to the first.
	loadAccounts2 := func(base int) {
		tx := s.Begin("loader")
		for i := 0; i < 30; i++ {
			if err := tx.Insert(st, acct(fmt.Sprintf("more-%d-%04d", base, i), 1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	loadAccounts2(1)
	sb2, err := s.CloseSuperBlock()
	if err != nil {
		t.Fatal(err)
	}
	if sb2.SeqNo != 2 || sb2.PreviousHash != sb1.Hash().String() {
		t.Fatalf("super-block 2 not chained: seq %d prev %s", sb2.SeqNo, sb2.PreviousHash)
	}

	// Full sharded verification against the latest super-block.
	rep, err := VerifySuperBlock(s, sb2, s.PublicKey(), VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("sharded verification failed:\n%s", rep)
	}

	// Reopen: watermark reconciles, last super-block is restored.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenSharded(Options{Dir: dir, Name: "bank", Shards: 3, Clock: logicalClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	last := s2.LastSuperBlock()
	if last == nil || last.SeqNo != 2 || last.Root != sb2.Root {
		t.Fatalf("watermark not restored: %+v", last)
	}
	// Data survived the reopen on every shard.
	tx := s2.Begin("reader")
	stR, err := s2.LedgerTable("accounts")
	if err != nil {
		t.Fatal(err)
	}
	if row, ok, _ := tx.Get(stR, sqltypes.NewNVarChar("acct-0042")); !ok || row[1].Int() != 142 {
		t.Fatalf("row lost across reopen: ok=%v row=%v", ok, row)
	}
	tx.Rollback()
}

func parseHashT(t *testing.T, hexs string) (h [32]byte, err error) {
	t.Helper()
	d := Digest{Hash: hexs}
	return d.BlockHash()
}

// TestShardedCrossShardAtomicity commits transactions spanning shards and
// checks both sides land (and roll back) together.
func TestShardedCrossShardAtomicity(t *testing.T) {
	s := openSharded(t, t.TempDir(), 2)
	defer s.Close()
	st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	// Find two names on different shards.
	a, b := "", ""
	for i := 0; a == "" || b == ""; i++ {
		name := fmt.Sprintf("acct-%04d", i)
		switch st.ShardOf(sqltypes.NewNVarChar(name)) {
		case 0:
			if a == "" {
				a = name
			}
		case 1:
			if b == "" {
				b = name
			}
		}
	}

	tx := s.Begin("teller")
	if err := tx.Insert(st, acct(a, 10)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(st, acct(b, 20)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Rollback discards both sides.
	tx = s.Begin("teller")
	if err := tx.Update(st, acct(a, 11)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(st, acct(b, 21)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin("reader")
	ra, _, _ := tx.Get(st, sqltypes.NewNVarChar(a))
	rb, _, _ := tx.Get(st, sqltypes.NewNVarChar(b))
	if ra[1].Int() != 10 || rb[1].Int() != 20 {
		t.Fatalf("rolled-back cross-shard tx leaked: %v %v", ra, rb)
	}
	tx.Rollback()

	// The cross-shard counter observed the 2PC commit.
	snap := s.Obs().Snapshot()
	if got := snap.CounterValue("sqlledger_cross_shard_tx_total"); got < 1 {
		t.Fatalf("cross_shard_tx_total = %v, want >= 1", got)
	}

	// Ledger state is still fully verifiable.
	sb, err := s.CloseSuperBlock()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifySuperBlock(s, sb, s.PublicKey(), VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("verification after cross-shard txs:\n%s", rep)
	}
}

// copyTree copies a directory tree (the crash image).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardedTwoPhaseCommitCrash is the all-or-nothing crash matrix: a
// crash image captured between the two 2PC phases (all participants
// prepared, no durable decision) must recover with the transaction
// aborted everywhere; an image captured right after the decision log
// append must recover with it committed everywhere.
func TestShardedTwoPhaseCommitCrash(t *testing.T) {
	for _, tc := range []struct {
		name       string
		afterPhase string // "prepare" or "decision"
		wantRows   bool
	}{
		{"crash-before-decision-aborts", "prepare", false},
		{"crash-after-decision-commits", "decision", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := t.TempDir()
			dir := filepath.Join(base, "live")
			img := filepath.Join(base, "img")
			s, err := OpenSharded(Options{
				Dir: dir, Name: "bank", Shards: 2,
				Sync:        wal.SyncFull, // decisions and prepares must be durable in the image
				LockTimeout: time.Second,
				Clock:       logicalClock(),
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
			if err != nil {
				t.Fatal(err)
			}
			// Make the pre-transaction state durable in its own right.
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}

			// Two rows on two different shards.
			a, b := "", ""
			for i := 0; a == "" || b == ""; i++ {
				name := fmt.Sprintf("x-%04d", i)
				if st.ShardOf(sqltypes.NewNVarChar(name)) == 0 {
					if a == "" {
						a = name
					}
				} else if b == "" {
					b = name
				}
			}

			hook := func() { copyTree(t, dir, img) }
			if tc.afterPhase == "prepare" {
				s.hookAfterPrepare = hook
			} else {
				s.hookAfterDecision = hook
			}
			tx := s.Begin("teller")
			if err := tx.Insert(st, acct(a, 1)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Insert(st, acct(b, 2)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			// Recover the crash image. In-doubt transactions resolve at
			// open against the decision log (presumed abort without it).
			s2, err := OpenSharded(Options{
				Dir: img, Name: "bank", Shards: 2,
				LockTimeout: time.Second,
				Clock:       logicalClock(),
			})
			if err != nil {
				t.Fatalf("recover crash image: %v", err)
			}
			defer s2.Close()
			st2, err := s2.LedgerTable("accounts")
			if err != nil {
				t.Fatal(err)
			}
			rtx := s2.Begin("reader")
			_, okA, _ := rtx.Get(st2, sqltypes.NewNVarChar(a))
			_, okB, _ := rtx.Get(st2, sqltypes.NewNVarChar(b))
			rtx.Rollback()
			if okA != okB {
				t.Fatalf("atomicity broken across shards: shard0 present=%v shard1 present=%v", okA, okB)
			}
			if okA != tc.wantRows {
				t.Fatalf("crash after %s: rows present=%v, want %v", tc.afterPhase, okA, tc.wantRows)
			}

			// Either way the recovered database verifies end to end.
			sb, err := s2.CloseSuperBlock()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := VerifySuperBlock(s2, sb, s2.PublicKey(), VerifyOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("recovered image fails verification:\n%s", rep)
			}
		})
	}
}

// TestShardedTamperLocalization is the tamper matrix of satellite 6: a
// row tampered in one shard must fail verification in exactly that shard
// — the others verify clean — and the super-block head check must flag
// the mismatched shard root once the tampered shard's chain diverges.
func TestShardedTamperLocalization(t *testing.T) {
	s := openSharded(t, t.TempDir(), 3)
	defer s.Close()
	st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	loadAccounts(t, s, st, 150)
	sb, err := s.CloseSuperBlock()
	if err != nil {
		t.Fatal(err)
	}

	// Pick a row on shard 1 and tamper with it via direct storage access.
	victim := ""
	for i := 0; victim == ""; i++ {
		name := fmt.Sprintf("acct-%04d", i)
		if st.ShardOf(sqltypes.NewNVarChar(name)) == 1 {
			victim = name
		}
	}
	shard := s.Shard(1)
	key := sqltypes.EncodeKey(nil, sqltypes.NewNVarChar(victim))
	if err := shard.Engine().TamperUpdateRow(st.Part(1).Table(), key, func(r sqltypes.Row) sqltypes.Row {
		out := r.Clone()
		out[1] = sqltypes.NewBigInt(1_000_000)
		return out
	}, true); err != nil {
		t.Fatal(err)
	}

	rep, err := VerifySuperBlock(s, sb, s.PublicKey(), VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("tampered database passed sharded verification")
	}
	for _, sr := range rep.Shards {
		tamperedShard := sr.Shard == 1
		failed := sr.HeadErr != nil || (sr.Report != nil && !sr.Report.Ok())
		if failed != tamperedShard {
			t.Fatalf("shard %d: failed=%v, want failure only on shard 1 (report: %+v, headErr: %v)",
				sr.Shard, failed, sr.Report, sr.HeadErr)
		}
	}

	// The super-block head check localizes a *chain* fork too: grow shard
	// 1's chain on top of the tampered state, then verify the OLD
	// super-block — shard 1's signed head must still check out (the chain
	// is append-only), but a verification against it must keep failing in
	// shard 1 only.
	grow := ""
	for i := 0; grow == ""; i++ {
		name := fmt.Sprintf("post-%04d", i)
		if st.ShardOf(sqltypes.NewNVarChar(name)) == 1 {
			grow = name
		}
	}
	tx := s.Begin("teller")
	if err := tx.Insert(st, acct(grow, 7)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rep2, err := VerifySuperBlock(s, sb, s.PublicKey(), VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range rep2.Shards {
		failed := sr.HeadErr != nil || (sr.Report != nil && !sr.Report.Ok())
		if failed != (sr.Shard == 1) {
			t.Fatalf("after growth, shard %d failed=%v, want failure only on shard 1", sr.Shard, failed)
		}
	}
}

// TestShardedSingleShardCompat pins the Shards=1 compatibility contract:
// a database created by plain Open opens unchanged through OpenSharded,
// and an identical deterministic load produces the byte-identical digest
// through either door.
func TestShardedSingleShardCompat(t *testing.T) {
	base := t.TempDir()
	load := func(begin func() *Tx, lt *LedgerTable) {
		for lo := 0; lo < 100; lo += 50 {
			tx := begin()
			for i := lo; i < lo+50; i++ {
				if err := tx.Insert(lt, acct(fmt.Sprintf("acct-%04d", i), int64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Plain Open.
	dirA := filepath.Join(base, "plain")
	la, err := Open(Options{Dir: dirA, Name: "bank", Clock: logicalClock()})
	if err != nil {
		t.Fatal(err)
	}
	lta, err := la.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	load(func() *Tx { return la.Begin("loader") }, lta)
	da, err := la.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}

	// OpenSharded with Shards=1 over a fresh directory: identical digest.
	dirB := filepath.Join(base, "sharded1")
	sb, err := OpenSharded(Options{Dir: dirB, Name: "bank", Shards: 1, Clock: logicalClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	stb, err := sb.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	load(func() *Tx { return sb.Begin("loader").at(0) }, stb.Part(0))
	db, err := sb.Shard(0).GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if da.Hash != db.Hash || da.BlockID != db.BlockID {
		t.Fatalf("Shards=1 digest differs from plain Open: %s vs %s", db.Hash, da.Hash)
	}

	// The plain-created database opens through OpenSharded unchanged.
	if err := la.Close(); err != nil {
		t.Fatal(err)
	}
	sa, err := OpenSharded(Options{Dir: dirA, Name: "bank", Shards: 1, Clock: logicalClock()})
	if err != nil {
		t.Fatalf("OpenSharded over plain layout: %v", err)
	}
	defer sa.Close()
	sta, err := sa.LedgerTable("accounts")
	if err != nil {
		t.Fatal(err)
	}
	tx := sa.Begin("reader")
	if row, ok, _ := tx.Get(sta, sqltypes.NewNVarChar("acct-0099")); !ok || row[1].Int() != 99 {
		t.Fatalf("plain-created row unreadable through sharded door: ok=%v row=%v", ok, row)
	}
	tx.Rollback()
	// And its super-block path works over the wrapped instance.
	sb1, err := sa.CloseSuperBlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSuperBlock(sb1, sa.PublicKey()); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRejectsShardsWithoutDispatcher pins the Open guard.
func TestOpenRejectsShardsWithoutDispatcher(t *testing.T) {
	_, err := Open(Options{Dir: t.TempDir(), Name: "x", Shards: 4})
	if err == nil || !strings.Contains(err.Error(), "OpenSharded") {
		t.Fatalf("Open(Shards=4) = %v, want OpenSharded guidance", err)
	}
}

// TestShardedConcurrentIngestAndSuperBlocks races super-block closes
// against live multi-client ingest: four writers hammer both shards
// (every third transaction spans shards, forcing 2PC) while the main
// goroutine closes super-blocks in a loop. Closes must chain seq numbers
// without error mid-ingest, and the quiesced database must verify green
// against a final super-block. `make test-race-shard` runs this under
// the race detector.
func TestShardedConcurrentIngestAndSuperBlocks(t *testing.T) {
	s := openSharded(t, t.TempDir(), 2)
	defer s.Close()
	st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				tx := s.Begin("writer")
				if err := tx.Insert(st, acct(fmt.Sprintf("w%d-%06d", w, i), 1)); err != nil {
					tx.Rollback()
					t.Error(err)
					return
				}
				if i%3 == 0 {
					// A second row that lands on the other shard often
					// enough keeps the 2PC path hot under the closes.
					if err := tx.Insert(st, acct(fmt.Sprintf("w%d-%06d-b", w, i), 2)); err != nil {
						tx.Rollback()
						t.Error(err)
						return
					}
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		sb, err := s.CloseSuperBlock()
		if err != nil {
			t.Errorf("CloseSuperBlock mid-ingest: %v", err)
			return
		}
		if sb.SeqNo <= lastSeq {
			t.Errorf("super-block seq did not advance: %d after %d", sb.SeqNo, lastSeq)
			return
		}
		lastSeq = sb.SeqNo
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	sb, err := s.CloseSuperBlock()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifySuperBlock(s, sb, s.PublicKey(), VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("verification after concurrent ingest + closes failed:\n%s", rep.String())
	}
}
