package core

import (
	"fmt"
	"sort"

	"sqlledger/internal/engine"
	"sqlledger/internal/merkle"
	"sqlledger/internal/serial"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Tx is a ledger-aware transaction. DML on ledger tables transparently
// maintains the history table, assigns the hidden transaction/sequence
// columns, and streams row-version hashes into per-table Merkle trees
// whose roots become the transaction's ledger entry at commit (§3.2).
//
// Regular (non-ledger) tables are reachable through Raw().
type Tx struct {
	l   *LedgerDB
	etx *engine.Tx

	// trees holds the per-ledger-table streaming Merkle tree of row
	// versions updated by this transaction.
	trees map[uint32]*merkle.Streaming
	// spSnaps[token] captures the state of every tree when savepoint
	// token was created, aligned with the engine's savepoint stack.
	spSnaps [][]treeSnap
}

type treeSnap struct {
	tableID uint32
	snap    merkle.Snapshot
}

// Begin starts a ledger transaction on behalf of user.
func (l *LedgerDB) Begin(user string) *Tx {
	return &Tx{l: l, etx: l.edb.Begin(user), trees: make(map[uint32]*merkle.Streaming)}
}

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return tx.etx.ID() }

// Raw exposes the underlying engine transaction for DML on regular
// tables. Do not use it to modify ledger tables directly: that bypasses
// history and hashing and is exactly the class of modification the
// verification process exists to detect.
func (tx *Tx) Raw() *engine.Tx { return tx.etx }

func (tx *Tx) tree(lt *LedgerTable) *merkle.Streaming {
	t := tx.trees[lt.ID()]
	if t == nil {
		t = &merkle.Streaming{}
		tx.trees[lt.ID()] = t
	}
	return t
}

// Insert adds a row (visible columns only, in visible-column order) to a
// ledger table.
func (tx *Tx) Insert(lt *LedgerTable, visible sqltypes.Row) error {
	seq := tx.etx.NextSeq()
	full, err := lt.fullRow(visible, tx.etx.ID(), seq)
	if err != nil {
		return err
	}
	if _, err := tx.etx.Insert(lt.table, full); err != nil {
		return err
	}
	tx.tree(lt).Append(serial.HashRow(lt.table.Schema(), full, serial.OpInsert, lt.skipEndColumns))
	return nil
}

// Delete removes the row with the given primary-key values, moving the
// deleted version to the history table.
func (tx *Tx) Delete(lt *LedgerTable, keyVals ...sqltypes.Value) error {
	if lt.Kind() == engine.LedgerAppendOnly {
		return fmt.Errorf("%w: %s", ErrAppendOnly, lt.Name())
	}
	before, err := tx.etx.Delete(lt.table, keyVals...)
	if err != nil {
		return err
	}
	endSeq := tx.etx.NextSeq()
	ended := lt.endedRow(before, tx.etx.ID(), endSeq)
	if _, err := tx.etx.Insert(lt.history, ended); err != nil {
		return err
	}
	tx.tree(lt).Append(serial.HashRow(lt.table.Schema(), ended, serial.OpDelete, nil))
	return nil
}

// Update replaces the row whose primary key matches visible, preserving
// the superseded version in the history table. Hashing order follows the
// operation: the deleted old version first, then the new version.
func (tx *Tx) Update(lt *LedgerTable, visible sqltypes.Row) error {
	if lt.Kind() == engine.LedgerAppendOnly {
		return fmt.Errorf("%w: %s", ErrAppendOnly, lt.Name())
	}
	endSeq := tx.etx.NextSeq()
	newSeq := tx.etx.NextSeq()
	newFull, err := lt.fullRow(visible, tx.etx.ID(), newSeq)
	if err != nil {
		return err
	}
	key := sqltypes.EncodeRowKey(lt.table.Schema(), newFull)
	before, err := tx.etx.UpdateByKey(lt.table, key, newFull)
	if err != nil {
		return err
	}
	ended := lt.endedRow(before, tx.etx.ID(), endSeq)
	if _, err := tx.etx.Insert(lt.history, ended); err != nil {
		return err
	}
	tr := tx.tree(lt)
	tr.Append(serial.HashRow(lt.table.Schema(), ended, serial.OpDelete, nil))
	tr.Append(serial.HashRow(lt.table.Schema(), newFull, serial.OpInsert, lt.skipEndColumns))
	return nil
}

// refreshRow rewrites a current row version in place under a fresh start
// transaction/sequence and hashes it as an insert operation of this
// transaction. Used exclusively by ledger truncation (§5.2) to move a
// row's digest out of a block about to be deleted; unlike Update it does
// not write a history row, because a history row would keep referencing
// the truncated transaction through its insert-side hash.
func (tx *Tx) refreshRow(lt *LedgerTable, key []byte) error {
	full, ok, err := tx.etx.GetByKey(lt.table, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: refresh target vanished in %s", lt.Name())
	}
	seq := tx.etx.NextSeq()
	next := full.Clone()
	next[lt.startTxOrd] = sqltypes.NewBigInt(int64(tx.etx.ID()))
	next[lt.startSeqOrd] = sqltypes.NewBigInt(int64(seq))
	if _, err := tx.etx.UpdateByKey(lt.table, key, next); err != nil {
		return err
	}
	tx.tree(lt).Append(serial.HashRow(lt.table.Schema(), next, serial.OpInsert, lt.skipEndColumns))
	return nil
}

// Get returns the visible row with the given primary-key values.
func (tx *Tx) Get(lt *LedgerTable, keyVals ...sqltypes.Value) (sqltypes.Row, bool, error) {
	full, ok, err := tx.etx.Get(lt.table, keyVals...)
	if err != nil || !ok {
		return nil, ok, err
	}
	return lt.VisibleRow(full), true, nil
}

// Scan iterates the visible rows of a ledger table in primary-key order.
// Rows passed to fn may alias storage and are only valid during the
// callback: Clone before mutating or retaining them.
func (tx *Tx) Scan(lt *LedgerTable, fn func(row sqltypes.Row) bool) error {
	project := lt.visibleProjector()
	return tx.etx.Scan(lt.table, func(_ []byte, full sqltypes.Row) bool {
		return fn(project(full))
	})
}

// ScanPrefix iterates the visible rows whose leading primary-key columns
// equal vals, in primary-key order. The callback contract is as for Scan.
func (tx *Tx) ScanPrefix(lt *LedgerTable, fn func(row sqltypes.Row) bool, vals ...sqltypes.Value) error {
	project := lt.visibleProjector()
	start, end := engine.PrefixRange(vals...)
	return tx.etx.ScanRange(lt.table, start, end, func(_ []byte, full sqltypes.Row) bool {
		return fn(project(full))
	})
}

// Savepoint creates a savepoint, snapshotting the O(log N) state of every
// transaction Merkle tree (§3.2.1).
func (tx *Tx) Savepoint() int {
	token := tx.etx.Savepoint()
	snaps := make([]treeSnap, 0, len(tx.trees))
	for tid, tr := range tx.trees {
		snaps = append(snaps, treeSnap{tableID: tid, snap: tr.Snapshot()})
	}
	if token != len(tx.spSnaps) {
		// Engine and core savepoint stacks must advance in lockstep.
		panic(fmt.Sprintf("core: savepoint stacks diverged (%d != %d)", token, len(tx.spSnaps)))
	}
	tx.spSnaps = append(tx.spSnaps, snaps)
	return token
}

// RollbackTo rolls the transaction back to a savepoint, restoring both
// the engine write buffer and the Merkle tree state.
func (tx *Tx) RollbackTo(token int) error {
	if token < 0 || token >= len(tx.spSnaps) {
		return fmt.Errorf("core: invalid savepoint %d", token)
	}
	if err := tx.etx.RollbackTo(token); err != nil {
		return err
	}
	snaps := tx.spSnaps[token]
	tx.spSnaps = tx.spSnaps[:token+1]
	restored := make(map[uint32]bool, len(snaps))
	for _, s := range snaps {
		if tr := tx.trees[s.tableID]; tr != nil {
			tr.Restore(s.snap)
			restored[s.tableID] = true
		}
	}
	for tid, tr := range tx.trees {
		if !restored[tid] {
			tr.Reset() // tree created after the savepoint
		}
	}
	return nil
}

// Commit finalizes the per-table Merkle roots, hands them to the engine
// (which builds the ledger entry inside the commit critical section) and
// commits. Returns the commit timestamp in unix nanoseconds.
func (tx *Tx) Commit() error {
	_, err := tx.CommitTS()
	return err
}

// CommitTS is Commit returning the commit timestamp.
func (tx *Tx) CommitTS() (int64, error) {
	var roots []wal.TableRoot
	for tid, tr := range tx.trees {
		if tr.Count() > 0 {
			roots = append(roots, wal.TableRoot{TableID: tid, Root: tr.Root()})
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].TableID < roots[j].TableID })
	tx.etx.Roots = roots
	return tx.l.edb.Commit(tx.etx)
}

// Rollback abandons the transaction.
func (tx *Tx) Rollback() error {
	err := tx.etx.Rollback()
	if err == engine.ErrTxDone {
		return nil
	}
	return err
}
