package core

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/merkle"
	"sqlledger/internal/obs"
	"sqlledger/internal/serial"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Tx is a ledger-aware transaction. DML on ledger tables transparently
// maintains the history table, assigns the hidden transaction/sequence
// columns, and streams row-version hashes into per-table Merkle trees
// whose roots become the transaction's ledger entry at commit (§3.2).
//
// Regular (non-ledger) tables are reachable through Raw().
type Tx struct {
	l   *LedgerDB
	etx *engine.Tx

	// state holds the per-transaction ledger bookkeeping (Merkle trees,
	// savepoint snapshots, the commit-time roots buffer). It is nil until
	// the first ledger DML or savepoint, so read-only ledger transactions
	// allocate none of it, and it is recycled through txStatePool when the
	// transaction finishes.
	state *txState

	// trace is the transaction's end-to-end trace (nil when tracing is
	// off). ownsTrace marks the transaction that created it and must
	// finish it; a 2PC participant shares the coordinator's trace and
	// never finishes it.
	trace     *obs.Trace
	ownsTrace bool
}

// txState is the pooled ledger bookkeeping of one transaction.
type txState struct {
	// trees holds the per-ledger-table streaming Merkle tree of row
	// versions updated by this transaction.
	trees map[uint32]*merkle.Streaming
	// spSnaps[token] captures the state of every tree when savepoint
	// token was created, aligned with the engine's savepoint stack.
	spSnaps [][]treeSnap
	// roots is the commit-time scratch buffer for the sorted per-table
	// roots. Safe to reuse across transactions: the engine serializes it
	// into the WAL commit record during Commit and the ledger hook copies
	// it into the queued entry (assignBlock), so nothing aliases it after
	// Commit returns.
	roots []wal.TableRoot
}

var txStatePool = sync.Pool{New: func() any {
	return &txState{trees: make(map[uint32]*merkle.Streaming)}
}}

type treeSnap struct {
	tableID uint32
	snap    merkle.Snapshot
}

// Begin starts a ledger transaction on behalf of user. When tracing is
// enabled the transaction gets a fresh trace rooted here: the engine and
// WAL contribute child spans (lock waits, row hashing, encode, group
// commit, apply), and Commit/Rollback decide retention (tail sampling).
func (l *LedgerDB) Begin(user string) *Tx {
	tx := &Tx{l: l, etx: l.edb.Begin(user)}
	if tr := l.obs.NewTrace("tx"); tr != nil {
		tx.trace = tr
		tx.ownsTrace = true
		tx.etx.SetTrace(tr)
	}
	return tx
}

// beginWithTrace starts a transaction that records into tr without owning
// it — the 2PC participant path, where the sharded coordinator holds one
// trace spanning every shard's legs.
func (l *LedgerDB) beginWithTrace(user string, tr *obs.Trace) *Tx {
	tx := &Tx{l: l, etx: l.edb.Begin(user)}
	if tr != nil {
		tx.trace = tr
		tx.etx.SetTrace(tr)
	}
	return tx
}

// Trace returns the transaction's trace (nil when tracing is off). Callers
// may annotate it with statement or application context.
func (tx *Tx) Trace() *obs.Trace { return tx.trace }

// finishTrace ends the transaction's trace if this transaction owns it,
// and drops every reference to it either way (a finished trace is recycled;
// the engine transaction must not record into it afterwards). Idempotent:
// a failed Commit finishes the error trace, and the caller's deferred
// Rollback then finds nothing left to finish.
func (tx *Tx) finishTrace(err error) {
	if tx.trace == nil {
		return
	}
	if tx.ownsTrace {
		tx.trace.SetAttr(obs.AttrRows, strconv.Itoa(tx.etx.WriteCount()))
		tx.trace.Finish(err)
	}
	tx.trace = nil
	tx.etx.SetTrace(nil)
}

// hashRow hashes one row version, accumulating the time spent into the
// transaction's row_hash span when tracing.
func (tx *Tx) hashRow(s *sqltypes.Schema, r sqltypes.Row, op serial.OpType, skip serial.SkipMask) merkle.Hash {
	if tx.trace == nil {
		return serial.HashRow(s, r, op, skip)
	}
	start := time.Now()
	h := serial.HashRow(s, r, op, skip)
	tx.trace.AddTimed(obs.SpanRowHash, start, time.Since(start))
	return h
}

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return tx.etx.ID() }

// Raw exposes the underlying engine transaction for DML on regular
// tables. Do not use it to modify ledger tables directly: that bypasses
// history and hashing and is exactly the class of modification the
// verification process exists to detect.
func (tx *Tx) Raw() *engine.Tx { return tx.etx }

// ensureState materializes the pooled ledger bookkeeping.
func (tx *Tx) ensureState() *txState {
	if tx.state == nil {
		tx.state = txStatePool.Get().(*txState)
	}
	return tx.state
}

// releaseState recycles the transaction's Merkle trees and bookkeeping.
// Called exactly once, when the transaction finishes (commit or rollback);
// both paths run on the transaction's own goroutine, so the caller's
// deferred Rollback after a successful Commit observes state == nil and
// does not double-release.
func (tx *Tx) releaseState() {
	st := tx.state
	if st == nil {
		return
	}
	tx.state = nil
	tx.etx.Roots = nil // drop the alias into st.roots before recycling
	for id, tr := range st.trees {
		merkle.PutStreaming(tr)
		delete(st.trees, id)
	}
	for i := range st.spSnaps {
		st.spSnaps[i] = nil
	}
	st.spSnaps = st.spSnaps[:0]
	st.roots = st.roots[:0]
	txStatePool.Put(st)
}

func (tx *Tx) tree(lt *LedgerTable) *merkle.Streaming {
	st := tx.ensureState()
	t := st.trees[lt.ID()]
	if t == nil {
		t = merkle.GetStreaming()
		st.trees[lt.ID()] = t
	}
	return t
}

// Insert adds a row (visible columns only, in visible-column order) to a
// ledger table.
func (tx *Tx) Insert(lt *LedgerTable, visible sqltypes.Row) error {
	seq := tx.etx.NextSeq()
	full, err := lt.fullRow(visible, tx.etx.ID(), seq)
	if err != nil {
		return err
	}
	if _, err := tx.etx.Insert(lt.table, full); err != nil {
		return err
	}
	tx.tree(lt).Append(tx.hashRow(lt.table.Schema(), full, serial.OpInsert, lt.skipEnd))
	tx.l.m.rowsHashed.Inc()
	return nil
}

// batchParallelMin is the smallest batch hashed on worker goroutines;
// below it the fan-out overhead exceeds the hashing work.
const batchParallelMin = 16

// prepared holds one row's results from the parallel hashing phase of
// InsertBatch: the expanded storage row, its clustered key, the row
// version hash and the pre-assigned sequence number.
type prepared struct {
	full sqltypes.Row
	key  []byte
	enc  []byte // pre-encoded WAL payload
	hash merkle.Hash
	seq  uint32
	err  error
}

// prepPool recycles the per-batch prepared slices: a 1000-row batch's
// slice is ~100KB, and allocating (and zeroing) one per call dominated
// the batch fast path's allocation profile.
var prepPool = sync.Pool{New: func() any { return new([]prepared) }}

// InsertBatch adds many rows to a ledger table, serializing and hashing
// the row versions on a worker pool while preserving the exact Merkle
// append order, engine write order and sequence numbers of the equivalent
// one-at-a-time Inserts — so per-table roots, ledger entries and digests
// are byte-identical to the serial path (pinned by
// TestInsertBatchEquivalence). Uses one worker per CPU.
//
// On error the transaction's ledger state is consistent (hashes for the
// rows inserted before the failure are appended, as with serial Inserts),
// but the sequence counter may have advanced past the failed row; roll
// back the transaction, or to a prior savepoint, before committing.
func (tx *Tx) InsertBatch(lt *LedgerTable, rows []sqltypes.Row) error {
	return tx.InsertBatchParallel(lt, rows, 0)
}

// InsertBatchParallel is InsertBatch with an explicit worker count
// (0 = one per CPU). Exposed for the ingest-scaling benchmarks.
func (tx *Tx) InsertBatchParallel(lt *LedgerTable, rows []sqltypes.Row, workers int) error {
	n := len(rows)
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 || n < batchParallelMin || lt.table.Meta().Heap {
		for _, r := range rows {
			if err := tx.Insert(lt, r); err != nil {
				return err
			}
		}
		tx.l.m.hashBatchSize.Observe(float64(n))
		return nil
	}

	schema := lt.table.Schema()
	txID := tx.etx.ID()

	// Sequence numbers are assigned serially, in row order, before the
	// fan-out — they are part of the hashed row content and must match
	// the serial path exactly. The prepared slice is recycled across
	// batches; every field of every element is written below, so stale
	// pool contents never leak into a batch.
	pp := prepPool.Get().(*[]prepared)
	preps := *pp
	if cap(preps) < n {
		preps = make([]prepared, n)
	} else {
		preps = preps[:n]
	}
	defer func() {
		clear(preps)
		*pp = preps
		prepPool.Put(pp)
	}()
	for i := range preps {
		preps[i].seq = tx.etx.NextSeq()
	}

	// All storage rows for the batch are carved out of one value slab
	// (one allocation instead of n); the rows keep transaction lifetime
	// through the engine overlay, as with serial inserts.
	ncols := len(schema.Columns)
	slab := make([]sqltypes.Value, n*ncols)

	// A batch contributes one accumulated row_hash span covering the whole
	// parallel phase (per-row timing at this rate would cost more clock
	// reads than hashing).
	var hashStart time.Time
	if tx.trace != nil {
		hashStart = time.Now()
	}

	// Workers pull row indices off a shared counter and do the expensive
	// per-row work: storage-row construction, validation, clustered-key
	// encoding and SHA-256 row hashing.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				p := &preps[i]
				dst := slab[i*ncols : (i+1)*ncols : (i+1)*ncols]
				full, err := lt.fullRowInto(dst, rows[i], txID, p.seq)
				p.full, p.key, p.err = nil, nil, err
				if err != nil {
					continue
				}
				if err := schema.Validate(full); err != nil {
					p.err = err
					continue
				}
				p.full = full
				p.key = lt.table.KeyFor(full)
				p.enc = wal.AppendDML(nil, wal.RecInsert, wal.DMLPayload{
					TableID: lt.table.ID(), Key: p.key, After: full,
				})
				p.hash = serial.HashRow(schema, full, serial.OpInsert, lt.skipEnd)
			}
		}()
	}
	wg.Wait()
	if tx.trace != nil {
		tx.trace.AddTimed(obs.SpanRowHash, hashStart, time.Since(hashStart))
	}

	// Apply serially in row order: engine write, then Merkle append —
	// the same per-row order as Insert, so WAL records and tree leaves
	// are identical to the serial path.
	tx.etx.ReserveWrites(lt.table, n)
	tr := tx.tree(lt)
	hashed := 0
	defer func() {
		tx.l.m.rowsHashed.Add(int64(hashed))
		tx.l.m.hashBatchSize.Observe(float64(n))
	}()
	for i := range preps {
		p := &preps[i]
		if p.err != nil {
			return p.err
		}
		if err := tx.etx.InsertPrepared(lt.table, p.key, p.full, p.enc); err != nil {
			return err
		}
		tr.Append(p.hash)
		hashed++
	}
	return nil
}

// Delete removes the row with the given primary-key values, moving the
// deleted version to the history table.
func (tx *Tx) Delete(lt *LedgerTable, keyVals ...sqltypes.Value) error {
	if lt.Kind() == engine.LedgerAppendOnly {
		return fmt.Errorf("%w: %s", ErrAppendOnly, lt.Name())
	}
	before, err := tx.etx.Delete(lt.table, keyVals...)
	if err != nil {
		return err
	}
	endSeq := tx.etx.NextSeq()
	ended := lt.endedRow(before, tx.etx.ID(), endSeq)
	if _, err := tx.etx.Insert(lt.history, ended); err != nil {
		return err
	}
	tx.tree(lt).Append(tx.hashRow(lt.table.Schema(), ended, serial.OpDelete, nil))
	tx.l.m.rowsHashed.Inc()
	return nil
}

// Update replaces the row whose primary key matches visible, preserving
// the superseded version in the history table. Hashing order follows the
// operation: the deleted old version first, then the new version.
func (tx *Tx) Update(lt *LedgerTable, visible sqltypes.Row) error {
	if lt.Kind() == engine.LedgerAppendOnly {
		return fmt.Errorf("%w: %s", ErrAppendOnly, lt.Name())
	}
	endSeq := tx.etx.NextSeq()
	newSeq := tx.etx.NextSeq()
	newFull, err := lt.fullRow(visible, tx.etx.ID(), newSeq)
	if err != nil {
		return err
	}
	key := sqltypes.EncodeRowKey(lt.table.Schema(), newFull)
	before, err := tx.etx.UpdateByKey(lt.table, key, newFull)
	if err != nil {
		return err
	}
	ended := lt.endedRow(before, tx.etx.ID(), endSeq)
	if _, err := tx.etx.Insert(lt.history, ended); err != nil {
		return err
	}
	tr := tx.tree(lt)
	tr.Append(tx.hashRow(lt.table.Schema(), ended, serial.OpDelete, nil))
	tr.Append(tx.hashRow(lt.table.Schema(), newFull, serial.OpInsert, lt.skipEnd))
	tx.l.m.rowsHashed.Add(2)
	return nil
}

// refreshRow rewrites a current row version in place under a fresh start
// transaction/sequence and hashes it as an insert operation of this
// transaction. Used exclusively by ledger truncation (§5.2) to move a
// row's digest out of a block about to be deleted; unlike Update it does
// not write a history row, because a history row would keep referencing
// the truncated transaction through its insert-side hash.
func (tx *Tx) refreshRow(lt *LedgerTable, key []byte) error {
	full, ok, err := tx.etx.GetByKey(lt.table, key)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: refresh target vanished in %s", lt.Name())
	}
	seq := tx.etx.NextSeq()
	next := full.Clone()
	next[lt.startTxOrd] = sqltypes.NewBigInt(int64(tx.etx.ID()))
	next[lt.startSeqOrd] = sqltypes.NewBigInt(int64(seq))
	if _, err := tx.etx.UpdateByKey(lt.table, key, next); err != nil {
		return err
	}
	tx.tree(lt).Append(tx.hashRow(lt.table.Schema(), next, serial.OpInsert, lt.skipEnd))
	tx.l.m.rowsHashed.Inc()
	return nil
}

// Get returns the visible row with the given primary-key values.
func (tx *Tx) Get(lt *LedgerTable, keyVals ...sqltypes.Value) (sqltypes.Row, bool, error) {
	full, ok, err := tx.etx.Get(lt.table, keyVals...)
	if err != nil || !ok {
		return nil, ok, err
	}
	return lt.VisibleRow(full), true, nil
}

// Scan iterates the visible rows of a ledger table in primary-key order.
// Rows passed to fn may alias storage and are only valid during the
// callback: Clone before mutating or retaining them.
func (tx *Tx) Scan(lt *LedgerTable, fn func(row sqltypes.Row) bool) error {
	project := lt.visibleProjector()
	return tx.etx.Scan(lt.table, func(_ []byte, full sqltypes.Row) bool {
		return fn(project(full))
	})
}

// ScanPrefix iterates the visible rows whose leading primary-key columns
// equal vals, in primary-key order. The callback contract is as for Scan.
func (tx *Tx) ScanPrefix(lt *LedgerTable, fn func(row sqltypes.Row) bool, vals ...sqltypes.Value) error {
	project := lt.visibleProjector()
	start, end := engine.PrefixRange(vals...)
	return tx.etx.ScanRange(lt.table, start, end, func(_ []byte, full sqltypes.Row) bool {
		return fn(project(full))
	})
}

// Savepoint creates a savepoint, snapshotting the O(log N) state of every
// transaction Merkle tree (§3.2.1).
func (tx *Tx) Savepoint() int {
	token := tx.etx.Savepoint()
	st := tx.ensureState()
	snaps := make([]treeSnap, 0, len(st.trees))
	for tid, tr := range st.trees {
		snaps = append(snaps, treeSnap{tableID: tid, snap: tr.Snapshot()})
	}
	if token != len(st.spSnaps) {
		// Engine and core savepoint stacks must advance in lockstep.
		panic(fmt.Sprintf("core: savepoint stacks diverged (%d != %d)", token, len(st.spSnaps)))
	}
	st.spSnaps = append(st.spSnaps, snaps)
	return token
}

// RollbackTo rolls the transaction back to a savepoint, restoring both
// the engine write buffer and the Merkle tree state.
func (tx *Tx) RollbackTo(token int) error {
	st := tx.state
	if st == nil || token < 0 || token >= len(st.spSnaps) {
		return fmt.Errorf("core: invalid savepoint %d", token)
	}
	if err := tx.etx.RollbackTo(token); err != nil {
		return err
	}
	snaps := st.spSnaps[token]
	st.spSnaps = st.spSnaps[:token+1]
	restored := make(map[uint32]bool, len(snaps))
	for _, s := range snaps {
		if tr := st.trees[s.tableID]; tr != nil {
			tr.Restore(s.snap)
			restored[s.tableID] = true
		}
	}
	for tid, tr := range st.trees {
		if !restored[tid] {
			tr.Reset() // tree created after the savepoint
		}
	}
	return nil
}

// Commit finalizes the per-table Merkle roots, hands them to the engine
// (which builds the ledger entry inside the commit critical section) and
// commits. Returns the commit timestamp in unix nanoseconds.
func (tx *Tx) Commit() error {
	_, err := tx.CommitTS()
	return err
}

// CommitTS is Commit returning the commit timestamp.
func (tx *Tx) CommitTS() (int64, error) {
	tx.finalizeRoots()
	ts, err := tx.l.edb.Commit(tx.etx)
	if err == nil {
		// A failed commit leaves the engine transaction open; Rollback
		// releases the state then.
		tx.releaseState()
	}
	// Finish the trace either way: a failed commit's trace is retained as
	// an error trace now, not when the caller eventually rolls back.
	tx.finishTrace(err)
	return ts, err
}

// finalizeRoots computes the sorted per-table Merkle roots and installs
// them on the engine transaction — the last ledger step before the engine
// sees the commit (or the prepare, on the cross-shard path).
func (tx *Tx) finalizeRoots() {
	st := tx.state
	if st == nil {
		return
	}
	roots := st.roots[:0]
	for tid, tr := range st.trees {
		if tr.Count() > 0 {
			roots = append(roots, wal.TableRoot{TableID: tid, Root: tr.Root()})
		}
	}
	slices.SortFunc(roots, func(a, b wal.TableRoot) int { return cmp.Compare(a.TableID, b.TableID) })
	st.roots = roots
	if len(roots) > 0 {
		tx.etx.Roots = roots
	}
}

// prepare runs 2PC phase 1 on this participant: finalize the Merkle
// roots, then durably log the write set plus a PREPARE record carrying
// gid. Locks stay held; the ledger state stays allocated until the
// decision is applied.
func (tx *Tx) prepare(gid uint64) error {
	tx.finalizeRoots()
	return tx.l.edb.Prepare(tx.etx, gid)
}

// commitPrepared applies a commit decision to a prepared participant.
func (tx *Tx) commitPrepared() (int64, error) {
	ts, err := tx.l.edb.CommitPrepared(tx.etx)
	if err == nil {
		tx.releaseState()
	}
	tx.finishTrace(err)
	return ts, err
}

// abortPrepared applies an abort decision to a prepared participant.
func (tx *Tx) abortPrepared() error {
	err := tx.l.edb.AbortPrepared(tx.etx)
	tx.releaseState()
	tx.finishTrace(err)
	return err
}

// Rollback abandons the transaction.
func (tx *Tx) Rollback() error {
	err := tx.etx.Rollback()
	tx.releaseState()
	tx.finishTrace(nil)
	if err == engine.ErrTxDone {
		return nil
	}
	return err
}
