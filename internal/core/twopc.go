package core

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"sqlledger/internal/wal"
)

// Cross-shard transaction coordination. A transaction touching more than
// one shard commits with two-phase commit over the per-shard WALs: every
// participating shard durably prepares (engine.Prepare), the coordinator
// makes the commit decision durable in its own decision log, and then the
// participants are committed (engine.CommitPrepared). The protocol is
// presumed-abort: only COMMIT decisions are logged, so a prepared
// transaction found without one after a crash is aborted.
//
// The decision log is deliberately tiny — one line per committed
// cross-shard transaction ("C <gid>") — because single-shard transactions
// (the common case under hash partitioning) bypass it entirely.

// decisionLogName is the coordinator's commit-decision log, stored in the
// sharded database's root directory next to the shard subdirectories.
const decisionLogName = "2pc.log"

type decisionLog struct {
	mu   sync.Mutex // serializes concurrent cross-shard coordinators
	f    *os.File
	w    *bufio.Writer
	sync bool // fsync every decision (wal.SyncFull)

	committed map[uint64]bool
	maxGid    uint64
}

// openDecisionLog opens (creating if necessary) the decision log and
// replays it. A torn final line — a crash mid-write — is ignored: the
// decision was not durable, so presumed-abort applies.
func openDecisionLog(dir string, mode wal.SyncMode) (*decisionLog, error) {
	path := dir + string(os.PathSeparator) + decisionLogName
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	dl := &decisionLog{
		sync:      mode == wal.SyncFull,
		committed: make(map[uint64]bool),
	}
	for _, line := range strings.Split(string(b), "\n") {
		rest, ok := strings.CutPrefix(line, "C ")
		if !ok {
			continue // empty trailer or torn tail
		}
		gid, perr := strconv.ParseUint(rest, 10, 64)
		if perr != nil {
			continue // torn tail
		}
		dl.committed[gid] = true
		if gid > dl.maxGid {
			dl.maxGid = gid
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	dl.f = f
	dl.w = bufio.NewWriter(f)
	return dl, nil
}

// commit makes a COMMIT decision durable. Once it returns, recovery will
// commit every prepared participant of gid; before it returns, recovery
// aborts them. Concurrent cross-shard coordinators serialize here.
func (dl *decisionLog) commit(gid uint64) error {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if _, err := fmt.Fprintf(dl.w, "C %d\n", gid); err != nil {
		return err
	}
	if err := dl.w.Flush(); err != nil {
		return err
	}
	if dl.sync {
		if err := dl.f.Sync(); err != nil {
			return err
		}
	}
	dl.committed[gid] = true
	if gid > dl.maxGid {
		dl.maxGid = gid
	}
	return nil
}

func (dl *decisionLog) Close() error {
	if dl == nil || dl.f == nil {
		return nil
	}
	dl.w.Flush()
	return dl.f.Close()
}

// resolveInDoubt finishes transactions a shard recovered in the prepared
// state: committed gids (per the coordinator's decision log) complete,
// everything else is presumed aborted. Runs single-threaded at open,
// before user traffic starts.
func (l *LedgerDB) resolveInDoubt(committed map[uint64]bool) (maxGid uint64, err error) {
	for _, etx := range l.edb.PreparedTxs() {
		gid := etx.Gid()
		if gid > maxGid {
			maxGid = gid
		}
		if committed[gid] {
			_, err = l.edb.CommitPrepared(etx)
		} else {
			err = l.edb.AbortPrepared(etx)
		}
		if err != nil {
			return maxGid, fmt.Errorf("core: resolving in-doubt gid %d: %w", gid, err)
		}
	}
	return maxGid, nil
}
