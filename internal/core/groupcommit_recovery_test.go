package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// TestGroupCommitCrashRecoveryPrefix simulates a crash in the middle of a
// concurrent group-committed workload by snapshotting the WAL file while
// writers are still running, then recovering from that image. Because the
// WAL is append-only and commit records are written in ledger-ordinal
// order, any byte prefix of it is a valid crash state: every commit that
// made it into the prefix must come back with its ledger entry
// reconstructed on the queue, each client's commits must survive as a
// dense prefix of what it submitted, and verification must pass.
func TestGroupCommitCrashRecoveryPrefix(t *testing.T) {
	dir := t.TempDir()
	l1, err := Open(Options{
		Dir: dir, Name: "crash", BlockSize: 8,
		LockTimeout: 250 * time.Millisecond,
		// A small linger makes multi-commit write groups the common case.
		GroupCommit: wal.GroupConfig{MaxDelay: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	lt, err := l1.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}

	// Ledger entries already queued by bootstrap and CreateLedgerTable;
	// they are durable, so the crash image always recovers them too.
	l1.lmu.Lock()
	baseQ := len(l1.queue)
	l1.lmu.Unlock()

	const clients, perClient = 4, 60
	var committed atomic.Int64
	snapCh := make(chan []byte, 1)
	go func() {
		// Grab the crash image mid-stream, once enough commits are durable.
		for committed.Load() < 40 {
			time.Sleep(100 * time.Microsecond)
		}
		img, err := os.ReadFile(filepath.Join(dir, "wal.log"))
		if err != nil {
			t.Errorf("snapshot wal: %v", err)
		}
		snapCh <- img
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				tx := l1.Begin(fmt.Sprintf("g%d", c))
				if err := tx.Insert(lt, account(fmt.Sprintf("g%d-%04d", c, i), int64(i))); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				committed.Add(1)
			}
		}(c)
	}
	wg.Wait()
	img := <-snapCh
	if len(img) == 0 {
		t.Fatal("empty WAL snapshot")
	}

	// Rebuild the crash image in a fresh directory: the WAL prefix plus
	// the incarnation file. No snapshot ever existed, so recovery must
	// reconstruct the whole ledger queue from COMMIT records (§3.3.2).
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "wal.log"), img, 0o644); err != nil {
		t.Fatal(err)
	}
	inc, err := os.ReadFile(filepath.Join(dir, incarnationFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, incarnationFile), inc, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir2, Name: "crash", BlockSize: 8, LockTimeout: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("recover from crash image: %v", err)
	}
	defer l2.Close()

	lt2, err := l2.LedgerTable("accounts")
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]map[int]bool, clients)
	for c := range seen {
		seen[c] = make(map[int]bool)
	}
	rows := 0
	rtx := l2.Begin("r")
	rtx.Scan(lt2, func(r sqltypes.Row) bool {
		rows++
		var c, i int
		if _, err := fmt.Sscanf(r[0].Str, "g%d-%04d", &c, &i); err != nil {
			t.Errorf("unexpected key %q", r[0].Str)
			return false
		}
		seen[c][i] = true
		return true
	})
	rtx.Rollback()

	// The snapshot was taken after >= 40 commits were durable, so at
	// least that many must survive the crash.
	if rows < 40 {
		t.Fatalf("recovered %d rows, want >= 40", rows)
	}
	// Prefix durability per client: a client's commits are sequential, so
	// the recovered set must be a dense prefix 0..n-1 of what it sent.
	for c := range seen {
		n := len(seen[c])
		for i := 0; i < n; i++ {
			if !seen[c][i] {
				t.Fatalf("client %d: recovered %d commits but commit %d is missing (not a prefix)", c, n, i)
			}
		}
	}

	// Every recovered commit has its ledger entry back on the queue (no
	// checkpoint ran, so none were drained to sys_ledger_transactions).
	l2.lmu.Lock()
	qlen := len(l2.queue)
	l2.lmu.Unlock()
	if qlen != baseQ+rows {
		t.Fatalf("ledger queue holds %d entries after recovery, want %d (%d bootstrap + %d rows)",
			qlen, baseQ+rows, baseQ, rows)
	}

	d, err := l2.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l2, []Digest{d})
}

// TestConcurrentCommitLedgerDML drives mixed inserts, updates and deletes
// from many goroutines and then checks the ordering invariant the
// recovery protocol depends on: ledger entries appear in the WAL in
// exactly the order their (block, ordinal) positions were assigned, with
// no gaps. Run under -race by `make test-race-commit`.
func TestConcurrentCommitLedgerDML(t *testing.T) {
	dir := t.TempDir()
	l := openLedgerAt(t, dir, 16)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)

	const clients, perClient = 8, 30
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			user := fmt.Sprintf("g%d", c)
			for i := 0; i < perClient; i++ {
				name := fmt.Sprintf("g%d-%04d", c, i)
				tx := l.Begin(user)
				if err := tx.Insert(lt, account(name, int64(i))); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit insert: %v", err)
					return
				}
				switch i % 3 {
				case 0:
					tx = l.Begin(user)
					if err := tx.Update(lt, account(name, int64(i)*10)); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					if err := tx.Commit(); err != nil {
						t.Errorf("commit update: %v", err)
						return
					}
				case 1:
					tx = l.Begin(user)
					if err := tx.Delete(lt, sqltypes.NewNVarChar(name)); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					if err := tx.Commit(); err != nil {
						t.Errorf("commit delete: %v", err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	// perClient=30: i%3==1 rows (10 per client) were deleted.
	wantRows := clients * (perClient - perClient/3)
	rows := 0
	rtx := l.Begin("r")
	rtx.Scan(lt, func(sqltypes.Row) bool { rows++; return true })
	rtx.Rollback()
	if rows != wantRows {
		t.Fatalf("row count = %d, want %d", rows, wantRows)
	}

	// WAL order must equal ledger ordinal order, densely: each commit
	// entry is either the next ordinal of the same block or ordinal 0 of
	// the next block. Recovery's queue reconstruction assumes this.
	r, err := wal.NewReader(filepath.Join(dir, "wal.log"), 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var entries []*wal.LedgerEntry
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("wal read: %v", err)
		}
		if rec.Type != wal.RecCommit {
			continue
		}
		p, err := wal.DecodeCommit(rec.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if p.Entry != nil {
			entries = append(entries, p.Entry)
		}
	}
	if len(entries) < clients*perClient {
		t.Fatalf("found %d ledger commit records, want >= %d", len(entries), clients*perClient)
	}
	if e := entries[0]; e.BlockID != 0 || e.Ordinal != 0 {
		t.Fatalf("first ledger entry at (%d,%d), want (0,0)", e.BlockID, e.Ordinal)
	}
	for i := 1; i < len(entries); i++ {
		prev, cur := entries[i-1], entries[i]
		sameBlock := cur.BlockID == prev.BlockID && cur.Ordinal == prev.Ordinal+1
		nextBlock := cur.BlockID == prev.BlockID+1 && cur.Ordinal == 0
		if !sameBlock && !nextBlock {
			t.Fatalf("WAL entry %d at (%d,%d) does not follow (%d,%d): order or density violated",
				i, cur.BlockID, cur.Ordinal, prev.BlockID, prev.Ordinal)
		}
	}

	d, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l, []Digest{d})
}
