package core

import (
	"os"
	"path/filepath"
	"testing"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// makeBackup checkpoints the database and opens an independent copy of
// its directory as the "restored backup" (§3.7 assumes earlier backups
// can be restored and verified).
func makeBackup(t *testing.T, l *LedgerDB, blockSize uint32) *LedgerDB {
	t.Helper()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	src := l.edb.Dir()
	dst := filepath.Join(t.TempDir(), "backup")
	copyDir(t, src, dst)
	return openLedgerAt(t, dst, blockSize)
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(src, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mkdirAll(dst); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := readFile(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFile(filepath.Join(dst, filepath.Base(e)), b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRepairFromBackup(t *testing.T) {
	l := openTestLedger(t, 4)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 6)
	// Create some history too.
	tx := l.Begin("u")
	if err := tx.Update(lt, account(acctName(0), 777)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	d2, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	digests := []Digest{d, d2}
	backup := makeBackup(t, l, 4)
	verifyOK(t, backup, digests)

	// The attack: modify a row, inject a row, delete a history row, and
	// overwrite a block header.
	key := firstKeyOf(t, lt.Table())
	l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(31337)
		return r
	}, true)
	l.Engine().TamperInsertRow(lt.Table(), sqltypes.Row{
		sqltypes.NewNVarChar("mallory"), sqltypes.NewBigInt(1),
		sqltypes.NewBigInt(999), sqltypes.NewBigInt(1),
		sqltypes.NewNull(sqltypes.TypeBigInt), sqltypes.NewNull(sqltypes.TypeBigInt),
	}, true)
	hKey := firstKeyOf(t, lt.History())
	l.Engine().TamperDeleteRow(lt.History(), hKey, true)
	bKey := firstKeyOf(t, l.sysBlocks)
	l.Engine().TamperUpdateRow(l.sysBlocks, bKey, func(r sqltypes.Row) sqltypes.Row {
		r[3] = sqltypes.NewBigInt(r[3].Int() + 7)
		return r
	}, true)
	verifyFails(t, l, digests, 0)

	// Dry run reports without fixing.
	rep, err := RepairFromBackup(l, backup, digests, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Actions) < 4 {
		t.Fatalf("dry run found %d actions, want >= 4:\n%s", len(rep.Actions), rep)
	}
	verifyFails(t, l, digests, 0) // still broken

	// Real repair restores everything the digests cover.
	rep, err = RepairFromBackup(l, backup, digests, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BackupVerified || len(rep.Actions) < 4 {
		t.Fatalf("repair report:\n%s", rep)
	}
	verifyOK(t, l, digests)

	// Repair is idempotent: a second run finds nothing.
	rep, err = RepairFromBackup(l, backup, digests, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Actions) != 0 {
		t.Fatalf("second repair found %d actions:\n%s", len(rep.Actions), rep)
	}
}

func TestRepairRefusesTamperedBackup(t *testing.T) {
	l := openTestLedger(t, 4)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	d := seedAccounts(t, l, lt, 3)
	backup := makeBackup(t, l, 4)
	// Tamper the BACKUP: repairing from it must be refused.
	bLT, err := backup.LedgerTable("accounts")
	if err != nil {
		t.Fatal(err)
	}
	key := firstKeyOf(t, bLT.Table())
	backup.Engine().TamperUpdateRow(bLT.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(666)
		return r
	}, true)
	if _, err := RepairFromBackup(l, backup, []Digest{d}, false); err == nil {
		t.Fatal("repair accepted a tampered backup")
	}
}

func mkdirAll(p string) error            { return os.MkdirAll(p, 0o755) }
func readFile(p string) ([]byte, error)  { return os.ReadFile(p) }
func writeFile(p string, b []byte) error { return os.WriteFile(p, b, 0o644) }
