package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// newAuditor builds an auditor with sampling at full strength so every
// cycle re-checks all cold history — the deterministic setting for
// tamper-localization tests.
func newAuditor(t *testing.T, l *LedgerDB, fraction float64) *Auditor {
	t.Helper()
	a, err := l.NewAuditor(AuditorOptions{SampleFraction: fraction})
	if err != nil {
		t.Fatalf("new auditor: %v", err)
	}
	return a
}

func cycleOK(t *testing.T, a *Auditor) AuditStatus {
	t.Helper()
	st := a.RunCycle()
	if !st.Ok {
		t.Fatalf("audit cycle found tampering on a clean ledger: %v", st.LastReport)
	}
	return st
}

func cycleFinds(t *testing.T, a *Auditor) *TamperReport {
	t.Helper()
	st := a.RunCycle()
	if st.Ok {
		t.Fatal("audit cycle missed the injected tamper")
	}
	return st.LastReport
}

// TestAuditorIncrementalWatermark checks the O(K) contract through the
// auditor's own counters: the first cycle pays for the whole chain once,
// and each later cycle checks exactly the blocks closed since the
// watermark.
func TestAuditorIncrementalWatermark(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 10) // 5 full blocks
	a := newAuditor(t, l, 0)

	st := cycleOK(t, a)
	if st.VerifiedThroughBlock != st.ChainHeadBlock {
		t.Fatalf("watermark %d should reach the head %d", st.VerifiedThroughBlock, st.ChainHeadBlock)
	}
	first := st.BlocksCheckedInc
	if first != st.ChainHeadBlock+1 {
		t.Fatalf("catch-up checked %d blocks, want %d", first, st.ChainHeadBlock+1)
	}

	// Idle cycles are free.
	st = cycleOK(t, a)
	if st.BlocksCheckedInc != first {
		t.Fatalf("idle cycle checked %d blocks", st.BlocksCheckedInc-first)
	}

	// K new blocks cost exactly K.
	head := st.ChainHeadBlock
	for i := 0; i < 4; i++ {
		tx := l.Begin("more")
		if err := tx.Insert(lt, account(fmt.Sprintf("extra-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	if _, err := l.GenerateDigest(); err != nil { // close the tail block
		t.Fatal(err)
	}
	st = cycleOK(t, a)
	if delta := st.BlocksCheckedInc - first; delta != st.ChainHeadBlock-head {
		t.Fatalf("incremental cycle checked %d blocks, want %d", delta, st.ChainHeadBlock-head)
	}
}

// TestAuditorWatermarkPersistsAcrossReopen closes and reopens the
// database: the new auditor must resume from the persisted watermark
// instead of re-verifying history.
func TestAuditorWatermarkPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l := openLedgerAt(t, dir, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 8)
	a := newAuditor(t, l, 0)
	wm := cycleOK(t, a).VerifiedThroughBlock
	if wm < 3 {
		t.Fatalf("watermark = %d, want several blocks", wm)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openLedgerAt(t, dir, 2)
	a2 := newAuditor(t, l2, 0)
	if got := a2.Status().VerifiedThroughBlock; got != wm {
		t.Fatalf("reopened watermark = %d, want %d", got, wm)
	}
	st := cycleOK(t, a2)
	if st.BlocksCheckedInc != 0 {
		t.Fatalf("reopened auditor re-checked %d blocks, want 0", st.BlocksCheckedInc)
	}
}

// TestAuditorWatermarkNotTrusted tampers with the verified-through block
// AFTER it was verified: the re-anchor check must refuse the stored
// watermark and localize, instead of treating verified history as safe.
func TestAuditorWatermarkNotTrusted(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 8)
	a := newAuditor(t, l, 0)
	wm := cycleOK(t, a).VerifiedThroughBlock

	// Rewrite the watermark block's recorded transaction root.
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(wm))
	err := l.Engine().TamperUpdateRow(l.sysBlocks, key, func(r sqltypes.Row) sqltypes.Row {
		b := append([]byte(nil), r[2].Bytes...)
		b[0] ^= 0xFF
		r[2] = sqltypes.NewBinary(b)
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	rep := cycleFinds(t, a)
	if rep.Mode != "watermark" {
		t.Fatalf("mode = %q, want watermark", rep.Mode)
	}
	if rep.Block != wm {
		t.Fatalf("localized block %d, want %d", rep.Block, wm)
	}
}

// TestAuditorDiscardsForeignWatermark writes an audit.json from another
// incarnation; the auditor must start from scratch, not trust it.
func TestAuditorDiscardsForeignWatermark(t *testing.T) {
	dir := t.TempDir()
	l := openLedgerAt(t, dir, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 4)

	wm := auditWatermark{DatabaseName: "test", Incarnation: l.incarnation + 1, VerifiedThrough: 99}
	b, _ := json.Marshal(wm)
	if err := os.WriteFile(filepath.Join(dir, auditFile), b, 0o644); err != nil {
		t.Fatal(err)
	}
	a := newAuditor(t, l, 0)
	if got := a.Status().VerifiedThroughBlock; got != -1 {
		t.Fatalf("foreign watermark was trusted: verified-through = %d", got)
	}
	cycleOK(t, a)
}

// TestAuditorTamperMatrix injects one mutation per ledger surface and
// asserts the auditor's bisection pins each to the right place.
func TestAuditorTamperMatrix(t *testing.T) {
	setup := func(t *testing.T) (*LedgerDB, *LedgerTable, *Auditor) {
		l := openTestLedger(t, 3)
		lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
		seedAccounts(t, l, lt, 9)
		l.Checkpoint() // entries into sys_ledger_transactions for direct tampering
		a := newAuditor(t, l, 1)
		cycleOK(t, a)
		return l, lt, a
	}

	t.Run("block body", func(t *testing.T) {
		l, _, a := setup(t)
		key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(1))
		err := l.Engine().TamperUpdateRow(l.sysBlocks, key, func(r sqltypes.Row) sqltypes.Row {
			r[3] = sqltypes.NewBigInt(r[3].Int() + 1) // transaction_count
			return r
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		rep := cycleFinds(t, a)
		if rep.Block != 1 {
			t.Fatalf("localized %v, want block 1", rep)
		}
	})

	t.Run("tx payload", func(t *testing.T) {
		l, lt, a := setup(t)
		// Pick a seed transaction (block >= 2): it touched only the
		// accounts table, so the bisection must name both tx and table.
		var key []byte
		l.sysTx.Scan(func(k []byte, r sqltypes.Row) bool {
			if r[1].Int() >= 2 {
				key = append([]byte(nil), k...)
				return false
			}
			return true
		})
		if key == nil {
			t.Fatal("no seed transaction in sys_ledger_transactions")
		}
		var txID int64
		err := l.Engine().TamperUpdateRow(l.sysTx, key, func(r sqltypes.Row) sqltypes.Row {
			txID = r[0].Int()
			b := append([]byte(nil), r[5].Bytes...) // table_hashes
			b[len(b)-1] ^= 0xFF                     // flip a root byte, still decodable
			r[5] = sqltypes.NewBinary(b)
			return r
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		rep := cycleFinds(t, a)
		if rep.TxID != uint64(txID) || rep.Table != lt.Name() {
			t.Fatalf("localized %v, want tx %d in %s", rep, txID, lt.Name())
		}
	})

	t.Run("single row", func(t *testing.T) {
		l, lt, a := setup(t)
		key := firstKeyOf(t, lt.Table())
		err := l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
			r[1] = sqltypes.NewBigInt(1_000_000)
			return r
		}, true)
		if err != nil {
			t.Fatal(err)
		}
		rep := cycleFinds(t, a)
		if rep.Table != lt.Name() || rep.TxID == 0 {
			t.Fatalf("localized %v, want a transaction in %s", rep, lt.Name())
		}
		// Each seed transaction wrote exactly one row, so the bisection
		// can name it.
		if rep.Key == "" || !strings.Contains(rep.Key, "acct-") {
			t.Fatalf("report did not name the damaged row: %v", rep)
		}
	})

	t.Run("deleted row", func(t *testing.T) {
		l, lt, a := setup(t)
		key := firstKeyOf(t, lt.Table())
		if err := l.Engine().TamperDeleteRow(lt.Table(), key, true); err != nil {
			t.Fatal(err)
		}
		rep := cycleFinds(t, a)
		if rep.Table != lt.Name() || !strings.Contains(rep.Detail, "no row versions remain") {
			t.Fatalf("localized %v, want completeness failure in %s", rep, lt.Name())
		}
	})

	t.Run("index entry", func(t *testing.T) {
		l, lt, a := setup(t)
		ix, err := l.Engine().CreateIndex("accounts", "ix_balance", "balance")
		if err != nil {
			t.Fatal(err)
		}
		cycleOK(t, a) // clean after index build
		var entryKey []byte
		lt.Table().ScanIndex(ix, func(ek, _ []byte) bool {
			entryKey = append([]byte(nil), ek...)
			return false
		})
		if err := l.Engine().TamperIndexEntry(lt.Table(), ix, entryKey, []byte{0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		rep := cycleFinds(t, a)
		if rep.Table != "accounts" || rep.Key == "" {
			t.Fatalf("localized %v, want an index entry in accounts", rep)
		}
	})
}

// TestShardedAuditorLocalizesShard tampers one shard's chain head and
// asserts the sharded auditor names that shard — via the signed
// super-block head pins, before any block-level bisection.
func TestShardedAuditorLocalizesShard(t *testing.T) {
	s := openSharded(t, t.TempDir(), 3)
	defer s.Close()
	st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	loadAccounts(t, s, st, 120)
	if _, err := s.CloseSuperBlock(); err != nil {
		t.Fatal(err)
	}
	sa, err := s.NewAuditor(AuditorOptions{SampleFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sa.RunCycle(); !got.Ok {
		t.Fatalf("clean sharded ledger failed audit: %+v", got)
	}

	// Rewrite shard 1's head block root: the super-block pin breaks.
	shard := s.Shard(1)
	head := shard.DebugInfo().ChainHeight - 1
	key := sqltypes.EncodeKey(nil, sqltypes.NewBigInt(head))
	err = shard.Engine().TamperUpdateRow(shard.sysBlocks, key, func(r sqltypes.Row) sqltypes.Row {
		b := append([]byte(nil), r[2].Bytes...)
		b[0] ^= 0xFF
		r[2] = sqltypes.NewBinary(b)
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	got := sa.RunCycle()
	if got.Ok {
		t.Fatal("sharded auditor missed the tampered shard head")
	}
	var rep *TamperReport
	if got.HeadReport != nil {
		rep = got.HeadReport
	} else {
		for _, ss := range got.Shards {
			if ss.LastReport != nil {
				rep = ss.LastReport
				break
			}
		}
	}
	if rep == nil || rep.Shard != 1 {
		t.Fatalf("localized %v, want shard 1", rep)
	}
	for i, ss := range got.Shards {
		if i != 1 && ss.LastReport != nil {
			t.Fatalf("clean shard %d reported: %v", i, ss.LastReport)
		}
	}
}

// TestAuditorLiveWriters runs full-strength sampling cycles concurrently
// with committing writers: snapshot pinning must prevent false tamper
// reports. Run under -race this also exercises the scan/commit
// interleavings.
func TestAuditorLiveWriters(t *testing.T) {
	l := openTestLedger(t, 5)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 10)
	a := newAuditor(t, l, 1)

	// A bounded writer keeps the ledger small enough that the
	// full-strength sampling cycles stay cheap while still overlapping
	// dozens of commits with each scan.
	const writerTxs = 400
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < writerTxs; i++ {
			tx := l.Begin("writer")
			name := acctName(i % 10)
			if i%3 == 0 {
				_ = tx.Update(lt, account(name, int64(i)))
			} else {
				_ = tx.Insert(lt, account(fmt.Sprintf("live-%d", i), int64(i)))
			}
			if err := tx.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
	}()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		if st := a.RunCycle(); !st.Ok {
			wg.Wait()
			t.Fatalf("false tamper report under live writers: %v", st.LastReport)
		}
	}
	wg.Wait()
	cycleOK(t, a)
}

// TestVerifyProgressBlockRange is the regression for partial
// verification progress: a Blocks-scoped run must still drive a
// monotone ratio ending at exactly 1.0.
func TestVerifyProgressBlockRange(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 8)

	var got []VerifyProgress
	rep, err := l.Verify(nil, VerifyOptions{
		Blocks:   &BlockRange{From: 1, To: 2},
		Progress: func(p VerifyProgress) { got = append(got, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("scoped verify failed:\n%s", rep)
	}
	if len(got) == 0 {
		t.Fatal("no progress callbacks")
	}
	prev := -1.0
	for _, p := range got {
		if p.Ratio < prev {
			t.Fatalf("progress went backwards: %v -> %v", prev, p.Ratio)
		}
		prev = p.Ratio
	}
	last := got[len(got)-1]
	if last.Ratio != 1.0 || last.Phase != "done" {
		t.Fatalf("final progress = %+v, want ratio exactly 1.0 with phase done", last)
	}
}

// TestVerifyBlockRangeScopesIssues: tampering inside the range is
// caught, tampering outside is not — the range genuinely scopes work.
func TestVerifyBlockRangeScopesIssues(t *testing.T) {
	l := openTestLedger(t, 2)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 8)
	l.Checkpoint()

	// Tamper a transaction entry in block 1.
	var victim []byte
	l.sysTx.Scan(func(k []byte, r sqltypes.Row) bool {
		if r[1].Int() == 1 {
			victim = append([]byte(nil), k...)
			return false
		}
		return true
	})
	err := l.Engine().TamperUpdateRow(l.sysTx, victim, func(r sqltypes.Row) sqltypes.Row {
		r[4] = sqltypes.NewNVarChar("mallory")
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := l.Verify(nil, VerifyOptions{Blocks: &BlockRange{From: 2, To: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("out-of-range tamper should not be flagged:\n%s", rep)
	}
	rep, err = l.Verify(nil, VerifyOptions{Blocks: &BlockRange{From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("in-range tamper missed")
	}
}

// TestAuditOpsSurface drives the HTTP surface end to end: /debug/audit
// reports the watermark, and a localized tamper flips /healthz to 503
// with the report inline.
func TestAuditOpsSurface(t *testing.T) {
	l := openTestLedger(t, 3)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	seedAccounts(t, l, lt, 6)
	a := newAuditor(t, l, 1)
	cycleOK(t, a)

	srv := httptest.NewServer(l.OpsHandler(nil))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	code, body := get("/debug/audit")
	if code != http.StatusOK {
		t.Fatalf("/debug/audit status %d", code)
	}
	var st AuditStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decode /debug/audit: %v\n%s", err, body)
	}
	if !st.Ok || st.VerifiedThroughBlock < 1 {
		t.Fatalf("audit status %+v", st)
	}

	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d\n%s", code, body)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Audit == nil || !strings.Contains(h.Audit.Summary, "verified up to block") {
		t.Fatalf("healthz audit summary missing: %+v", h.Audit)
	}

	// Tamper a row, localize it, and the surface must flip.
	key := firstKeyOf(t, lt.Table())
	err := l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(666)
		return r
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	cycleFinds(t, a)

	code, body = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz status %d after tamper, want 503\n%s", code, body)
	}
	code, body = get("/debug/audit")
	if code != http.StatusOK {
		t.Fatalf("/debug/audit status %d", code)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Ok || st.LastReport == nil || st.LastReport.Table != "accounts" || st.LastReport.Key == "" {
		t.Fatalf("/debug/audit did not name the damaged row: %+v", st.LastReport)
	}
}

// TestShardedOpsSurface checks satellite wiring: the sharded
// /debug/ledger and /healthz expose super-block seq/age.
func TestShardedOpsSurface(t *testing.T) {
	s := openSharded(t, t.TempDir(), 2)
	defer s.Close()
	st, err := s.CreateLedgerTable("accounts", accountsSchema(), engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	loadAccounts(t, s, st, 60)
	sb, err := s.CloseSuperBlock()
	if err != nil {
		t.Fatal(err)
	}

	d := s.DebugInfo()
	if d.SuperBlock == nil || d.SuperBlock.SeqNo != sb.SeqNo {
		t.Fatalf("debug super-block = %+v, want seq %d", d.SuperBlock, sb.SeqNo)
	}
	if len(d.Instances) != 2 {
		t.Fatalf("instances = %d", len(d.Instances))
	}

	hc := s.NewHealthChecker(HealthThresholds{MaxSuperBlockAge: time.Hour})
	h := hc.Check()
	if h.SuperBlock.SeqNo != sb.SeqNo || len(h.Shards) != 2 {
		t.Fatalf("sharded health %+v", h)
	}
	if h.Status != HealthHealthy {
		t.Fatalf("status %s: %v", h.Status, h.Reasons)
	}

	// No super-block within the age bound → degraded.
	hcTight := s.NewHealthChecker(HealthThresholds{MaxSuperBlockAge: time.Nanosecond})
	if got := hcTight.Check(); got.Status != HealthDegraded {
		t.Fatalf("stale super-block status = %s", got.Status)
	}
}
