package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// applyRandomOps drives a random but valid DML sequence (inserts, updates,
// deletes, savepoint rollbacks, whole-transaction rollbacks) against a
// ledger table, tracking the expected visible state in a model map.
func applyRandomOps(t *testing.T, l *LedgerDB, lt *LedgerTable, rng *rand.Rand, nTx int) map[string]int64 {
	t.Helper()
	model := make(map[string]int64)
	keys := func() []string {
		out := make([]string, 0, len(model))
		for k := range model {
			out = append(out, k)
		}
		return out
	}
	// Resume key numbering past anything this table has ever seen, so
	// repeated calls against the same table never collide.
	nextKey := 0
	bump := func(_ []byte, full sqltypes.Row) bool {
		var n int
		if _, err := fmt.Sscanf(full[0].Str, "key-%d", &n); err == nil && n > nextKey {
			nextKey = n
		}
		return true
	}
	lt.Table().Scan(bump)
	if lt.History() != nil {
		lt.History().Scan(bump)
	}
	for txi := 0; txi < nTx; txi++ {
		tx := l.Begin(fmt.Sprintf("u%d", txi%3))
		local := make(map[string]int64, len(model))
		for k, v := range model {
			local[k] = v
		}
		type snap struct {
			token int
			state map[string]int64
		}
		var snaps []snap
		nOps := rng.Intn(6) + 1
		abort := rng.Intn(10) == 0
		for op := 0; op < nOps; op++ {
			switch choice := rng.Intn(10); {
			case choice < 4: // insert
				nextKey++
				k := fmt.Sprintf("key-%04d", nextKey)
				v := rng.Int63n(10000)
				if err := tx.Insert(lt, account(k, v)); err != nil {
					t.Fatalf("insert: %v", err)
				}
				local[k] = v
			case choice < 7: // update
				ks := make([]string, 0, len(local))
				for k := range local {
					ks = append(ks, k)
				}
				if len(ks) == 0 {
					continue
				}
				k := ks[rng.Intn(len(ks))]
				v := rng.Int63n(10000)
				if err := tx.Update(lt, account(k, v)); err != nil {
					t.Fatalf("update: %v", err)
				}
				local[k] = v
			case choice < 8: // delete
				ks := make([]string, 0, len(local))
				for k := range local {
					ks = append(ks, k)
				}
				if len(ks) == 0 {
					continue
				}
				k := ks[rng.Intn(len(ks))]
				if err := tx.Delete(lt, sqltypes.NewNVarChar(k)); err != nil {
					t.Fatalf("delete: %v", err)
				}
				delete(local, k)
			case choice < 9: // savepoint
				st := make(map[string]int64, len(local))
				for k, v := range local {
					st[k] = v
				}
				snaps = append(snaps, snap{token: tx.Savepoint(), state: st})
			default: // rollback to a random savepoint
				if len(snaps) == 0 {
					continue
				}
				i := rng.Intn(len(snaps))
				if err := tx.RollbackTo(snaps[i].token); err != nil {
					t.Fatalf("rollback to savepoint: %v", err)
				}
				local = make(map[string]int64, len(snaps[i].state))
				for k, v := range snaps[i].state {
					local[k] = v
				}
				snaps = snaps[:i+1]
			}
		}
		if abort {
			tx.Rollback()
			continue
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		model = local
	}
	_ = keys
	return model
}

// TestPropertyRandomWorkloadsAlwaysVerify: whatever valid sequence of
// operations an application runs — including partial rollbacks — the
// ledger must be internally consistent and match its digests.
func TestPropertyRandomWorkloadsAlwaysVerify(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			blockSize := uint32(rng.Intn(7) + 1)
			l := openTestLedger(t, blockSize)
			lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
			model := applyRandomOps(t, l, lt, rng, 30)

			// Visible state matches the model.
			got := make(map[string]int64)
			rtx := l.Begin("check")
			rtx.Scan(lt, func(r sqltypes.Row) bool {
				got[r[0].Str] = r[1].Int()
				return true
			})
			rtx.Rollback()
			if len(got) != len(model) {
				t.Fatalf("visible rows = %d, model = %d", len(got), len(model))
			}
			for k, v := range model {
				if got[k] != v {
					t.Fatalf("key %s = %d, model %d", k, got[k], v)
				}
			}
			d, err := l.GenerateDigest()
			if err != nil {
				t.Fatal(err)
			}
			verifyOK(t, l, []Digest{d})

			// And again after a crash-restart.
			dir := l.edb.Dir()
			l.Close()
			l2 := openLedgerAt(t, dir, blockSize)
			verifyOK(t, l2, []Digest{d})
		})
	}
}

// TestPropertyAnySingleTamperIsDetected: flip one value anywhere in the
// ledger/history data and verification must fail.
func TestPropertyAnySingleTamperIsDetected(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 97))
			l := openTestLedger(t, 4)
			lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
			applyRandomOps(t, l, lt, rng, 25)
			d, err := l.GenerateDigest()
			if err != nil {
				t.Fatal(err)
			}
			verifyOK(t, l, []Digest{d})

			// Pick a random row from the ledger or history table.
			target := lt.Table()
			if rng.Intn(2) == 0 && lt.History().RowCount() > 0 {
				target = lt.History()
			}
			if target.RowCount() == 0 {
				t.Skip("no rows to tamper with")
			}
			victim := rng.Intn(target.RowCount())
			var key []byte
			i := 0
			target.Scan(func(k []byte, _ sqltypes.Row) bool {
				if i == victim {
					key = append([]byte(nil), k...)
					return false
				}
				i++
				return true
			})
			err = l.Engine().TamperUpdateRow(target, key, func(r sqltypes.Row) sqltypes.Row {
				r[1] = sqltypes.NewBigInt(r[1].Int() + 1) // minimal change
				return r
			}, true)
			if err != nil {
				t.Fatal(err)
			}
			verifyFails(t, l, []Digest{d}, 4)
		})
	}
}

// TestPropertyDigestChainAlwaysDerivable: every digest in a sequence must
// be derivable from every earlier one on an honest ledger.
func TestPropertyDigestChainAlwaysDerivable(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	l := openTestLedger(t, 3)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	var digests []Digest
	for round := 0; round < 6; round++ {
		applyRandomOps(t, l, lt, rng, 5)
		d, err := l.GenerateDigest()
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	for i := 0; i < len(digests); i++ {
		for j := i; j < len(digests); j++ {
			if err := l.VerifyDigestDerivation(digests[i], digests[j]); err != nil {
				t.Fatalf("derivation %d->%d: %v", i, j, err)
			}
		}
	}
	verifyOK(t, l, digests)
}
