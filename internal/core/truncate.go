package core

import (
	"fmt"
	"time"

	"sqlledger/internal/sqltypes"
)

// TruncateLedger deletes ledger history older than block beforeBlock
// (§5.2), bounding database growth while preserving verifiability of
// current data:
//
//  1. Verification runs first and must pass — truncation must never
//     destroy the evidence of an undetected tampering.
//  2. Every current ledger-table row whose digest lives in a block about
//     to be truncated is refreshed — rewritten under a fresh transaction,
//     moving its digest into a new block (the paper's "dummy update") so
//     current data stays cryptographically covered.
//  3. History rows whose deleting transaction is older than the cut are
//     deleted outright. History rows whose deleting transaction survives
//     are kept: they remain covered by the surviving transaction's Merkle
//     root (the delete-side hash spans every column), even though their
//     creating transaction is being truncated. Verification excuses the
//     dangling insert-side reference using the audited truncation record;
//     malicious deletion of a *surviving* entry is still caught by the
//     block-root check (invariant 3), so no protection is lost.
//  4. Transaction entries and blocks below the cut are deleted.
//  5. A truncation record — the cut point and the highest truncated
//     transaction id — is appended to the append-only truncation ledger
//     table, so the operation itself is audited (and tamper-evident).
func (l *LedgerDB) TruncateLedger(beforeBlock uint64) error {
	rep, err := l.Verify(nil, VerifyOptions{})
	if err != nil {
		return err
	}
	if !rep.Ok() {
		return fmt.Errorf("core: refusing to truncate: verification failed:\n%s", rep)
	}
	l.closeMu.Lock()
	closed := l.closedThrough
	l.closeMu.Unlock()
	if int64(beforeBlock) > closed {
		return fmt.Errorf("core: cannot truncate before block %d: only %d blocks are closed", beforeBlock, closed+1)
	}

	// Which transactions live below the cut? (System table plus queue.)
	oldTx := make(map[uint64]bool)
	var maxTruncatedTx uint64
	note := func(txID, block uint64) {
		if block < beforeBlock {
			oldTx[txID] = true
			if txID > maxTruncatedTx {
				maxTruncatedTx = txID
			}
		}
	}
	l.sysTx.Scan(func(_ []byte, r sqltypes.Row) bool {
		note(uint64(r[0].Int()), uint64(r[1].Int()))
		return true
	})
	l.lmu.Lock()
	for _, e := range l.queue {
		note(e.TxID, e.BlockID)
	}
	l.lmu.Unlock()
	if len(oldTx) == 0 {
		return nil // nothing below the cut
	}

	// The paper's "dummy update": refresh current rows still anchored in
	// old transactions so their digests move into new transactions and
	// blocks. The refresh rewrites the version in place — deliberately
	// without a history row, which would just re-anchor in the old chain.
	for _, lt := range l.LedgerTables() {
		var refresh [][]byte
		lt.table.Scan(func(key []byte, full sqltypes.Row) bool {
			if oldTx[uint64(full[lt.startTxOrd].Int())] {
				refresh = append(refresh, append([]byte(nil), key...))
			}
			return true
		})
		if len(refresh) == 0 {
			continue
		}
		tx := l.Begin("system")
		for _, key := range refresh {
			if err := tx.refreshRow(lt, key); err != nil {
				tx.Rollback()
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}

	// Delete history rows fully settled below the cut.
	for _, lt := range l.LedgerTables() {
		if lt.history == nil {
			continue
		}
		var victims [][]byte
		lt.history.Scan(func(key []byte, full sqltypes.Row) bool {
			if oldTx[uint64(full[lt.endTxOrd].Int())] {
				victims = append(victims, append([]byte(nil), key...))
			}
			return true
		})
		for _, k := range victims {
			if err := l.edb.TamperDeleteRow(lt.history, k, true); err != nil {
				return err
			}
		}
	}

	// Delete old transaction entries — from the queue, then the system
	// table — and old blocks. This is direct system-table surgery; the
	// truncation record below makes the operation auditable.
	l.lmu.Lock()
	kept := l.queue[:0]
	for _, e := range l.queue {
		if e.BlockID >= beforeBlock {
			kept = append(kept, e)
		}
	}
	l.queue = kept
	l.lmu.Unlock()
	var txKeys [][]byte
	l.sysTx.Scan(func(key []byte, r sqltypes.Row) bool {
		if uint64(r[1].Int()) < beforeBlock {
			txKeys = append(txKeys, append([]byte(nil), key...))
		}
		return true
	})
	for _, k := range txKeys {
		if err := l.edb.TamperDeleteRow(l.sysTx, k, true); err != nil {
			return err
		}
	}
	var blockKeys [][]byte
	l.sysBlocks.Scan(func(key []byte, r sqltypes.Row) bool {
		if uint64(r[0].Int()) < beforeBlock {
			blockKeys = append(blockKeys, append([]byte(nil), key...))
		}
		return true
	})
	for _, k := range blockKeys {
		if err := l.edb.TamperDeleteRow(l.sysBlocks, k, true); err != nil {
			return err
		}
	}

	// Audit record, written through the ledger itself.
	tx := l.Begin("system")
	defer tx.Rollback()
	if err := tx.Insert(l.truncations, sqltypes.Row{
		sqltypes.NewBigInt(int64(l.nextTruncationID())),
		sqltypes.NewBigInt(int64(beforeBlock)),
		sqltypes.NewBigInt(int64(maxTruncatedTx)),
		sqltypes.NewDateTime(time.Now()),
	}); err != nil {
		return err
	}
	return tx.Commit()
}

func (l *LedgerDB) nextTruncationID() uint64 {
	var max uint64
	l.truncations.table.Scan(func(_ []byte, r sqltypes.Row) bool {
		if id := uint64(r[0].Int()); id > max {
			max = id
		}
		return true
	})
	return max + 1
}

// truncationInfo returns the highest truncation point and the highest
// truncated transaction id (both 0 when the ledger was never truncated),
// read from the audited truncation ledger table.
func (l *LedgerDB) truncationInfo() (beforeBlock, maxTx uint64) {
	l.truncations.table.Scan(func(_ []byte, r sqltypes.Row) bool {
		if b := uint64(r[1].Int()); b > beforeBlock {
			beforeBlock = b
		}
		if m := uint64(r[2].Int()); m > maxTx {
			maxTx = m
		}
		return true
	})
	return beforeBlock, maxTx
}
