package core

import (
	"fmt"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

// Recovery from tampering (§3.7). The paper does not automate this — it
// describes the manual procedure — but the mechanical part can be guided:
// given a restored backup that verifies cleanly, rows of the production
// database that diverge from the backup can be identified and repaired in
// place. This implements the paper's first category (tampered data that
// does not affect how future transactions execute): the production ledger
// itself was never forked, so after repairing the damaged rows the
// original digests verify again. The second category (tampered data that
// later transactions read) requires re-executing transactions and is left
// to the application, as in the paper.

// RepairAction describes one divergence found (and optionally fixed)
// between the tampered database and the verified backup.
type RepairAction struct {
	Table string
	// Kind is "restored" (row overwritten from backup), "removed"
	// (injected row deleted) or "reinserted" (deleted row brought back).
	Kind string
	Key  string
}

// RepairReport summarizes a repair run.
type RepairReport struct {
	Actions []RepairAction
	// BackupVerified confirms the backup passed verification before any
	// repair was attempted.
	BackupVerified bool
}

func (r *RepairReport) String() string {
	s := fmt.Sprintf("repair: %d actions (backup verified: %v)", len(r.Actions), r.BackupVerified)
	for _, a := range r.Actions {
		s += fmt.Sprintf("\n  %-10s %s %s", a.Kind, a.Table, a.Key)
	}
	return s
}

// RepairFromBackup repairs l in place using backup as the reference
// (§3.7): the backup is verified first with the provided digests and must
// pass; then, for every ledger table (matched by table id), rows that
// were modified, injected or deleted in l are restored to the backup's
// state. Ledger system tables (transactions, blocks) are repaired the
// same way, which un-forks any overwritten chain state. If dryRun is set,
// divergences are reported but not fixed.
//
// After a successful repair, rerun Verify on l: it should pass with the
// same digests, because the repaired data is exactly the data the digests
// were computed over. Rows legitimately written to l AFTER the backup was
// taken will be reported as divergences too — take a fresh backup (or use
// digests covering the tail) before repairing a live database.
func RepairFromBackup(l, backup *LedgerDB, digests []Digest, dryRun bool) (*RepairReport, error) {
	rep := &RepairReport{}
	backupReport, err := backup.Verify(digests, VerifyOptions{})
	if err != nil {
		return nil, err
	}
	if !backupReport.Ok() {
		return nil, fmt.Errorf("core: backup does not verify; refusing to repair from it:\n%s", backupReport)
	}
	rep.BackupVerified = true

	// Pair tables by id: ledger tables, their history tables, and the
	// ledger system tables.
	for _, lt := range l.LedgerTables() {
		blt, err := backup.edb.TableByID(lt.ID())
		if err != nil {
			return nil, fmt.Errorf("core: table %s (id %d) missing from backup: %w", lt.Name(), lt.ID(), err)
		}
		if err := repairTable(l, rep, lt.Name(), lt.table, blt, dryRun); err != nil {
			return nil, err
		}
		if lt.history != nil {
			bh, err := backup.edb.TableByID(lt.history.ID())
			if err != nil {
				return nil, fmt.Errorf("core: history table of %s missing from backup: %w", lt.Name(), err)
			}
			if err := repairTable(l, rep, lt.history.Name(), lt.history, bh, dryRun); err != nil {
				return nil, err
			}
		}
	}
	for _, pair := range []struct {
		name string
		cur  uint32
	}{{sysTxName, l.sysTx.ID()}, {sysBlocksName, l.sysBlocks.ID()}, {sysViewsName, l.sysViews.ID()}} {
		cur, err := l.edb.TableByID(pair.cur)
		if err != nil {
			return nil, err
		}
		bak, err := backup.edb.TableByID(pair.cur)
		if err != nil {
			return nil, fmt.Errorf("core: system table %s missing from backup: %w", pair.name, err)
		}
		if err := repairTable(l, rep, pair.name, cur, bak, dryRun); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// repairTable diffs two tables by clustered key and reconciles l's copy
// to match the backup's.
func repairTable(l *LedgerDB, rep *RepairReport, name string, et, bak *engine.Table, dryRun bool) error {
	type entry struct {
		key []byte
		row sqltypes.Row
	}
	collect := func(t *engine.Table) map[string]entry {
		m := make(map[string]entry)
		t.Scan(func(k []byte, r sqltypes.Row) bool {
			m[string(k)] = entry{key: append([]byte(nil), k...), row: r.Clone()}
			return true
		})
		return m
	}
	curRows := collect(et)
	bakRows := collect(bak)

	for k, b := range bakRows {
		c, present := curRows[k]
		switch {
		case !present:
			rep.Actions = append(rep.Actions, RepairAction{Table: name, Kind: "reinserted", Key: fmt.Sprintf("%x", b.key)})
			if !dryRun {
				if err := l.edb.TamperInsertRowAt(et, b.key, b.row, true); err != nil {
					return fmt.Errorf("core: reinsert into %s: %w", name, err)
				}
			}
		case !c.row.Equal(b.row):
			rep.Actions = append(rep.Actions, RepairAction{Table: name, Kind: "restored", Key: fmt.Sprintf("%x", b.key)})
			if !dryRun {
				if err := l.edb.TamperUpdateRow(et, b.key, func(sqltypes.Row) sqltypes.Row {
					return b.row.Clone()
				}, true); err != nil {
					return fmt.Errorf("core: restore row in %s: %w", name, err)
				}
			}
		}
	}
	for k, c := range curRows {
		if _, present := bakRows[k]; !present {
			rep.Actions = append(rep.Actions, RepairAction{Table: name, Kind: "removed", Key: fmt.Sprintf("%x", c.key)})
			if !dryRun {
				if err := l.edb.TamperDeleteRow(et, c.key, true); err != nil {
					return fmt.Errorf("core: remove injected row from %s: %w", name, err)
				}
			}
		}
	}
	return nil
}
