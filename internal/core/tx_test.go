package core

import (
	"fmt"
	"testing"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
)

func TestTxGetAndScanPrefix(t *testing.T) {
	l := openTestLedger(t, 100)
	if l.Name() != "test" {
		t.Fatalf("Name = %q", l.Name())
	}
	schema := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("region", sqltypes.TypeNVarChar),
		sqltypes.Col("id", sqltypes.TypeBigInt),
		sqltypes.Col("amount", sqltypes.TypeBigInt),
	}, "region", "id")
	lt, err := l.CreateLedgerTable("sales", schema, engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := l.Begin("u")
	for _, region := range []string{"east", "west"} {
		for i := int64(1); i <= 3; i++ {
			if err := tx.Insert(lt, sqltypes.Row{
				sqltypes.NewNVarChar(region), sqltypes.NewBigInt(i), sqltypes.NewBigInt(i * 10),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	mustCommit(t, tx)

	tx = l.Begin("r")
	defer tx.Rollback()
	// Point get on a composite key returns visible columns only.
	r, ok, err := tx.Get(lt, sqltypes.NewNVarChar("west"), sqltypes.NewBigInt(2))
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if len(r) != 3 || r[2].Int() != 20 {
		t.Fatalf("row = %v", r)
	}
	if _, ok, _ := tx.Get(lt, sqltypes.NewNVarChar("north"), sqltypes.NewBigInt(1)); ok {
		t.Fatal("phantom row")
	}
	// Prefix scan over the first key column.
	var got []int64
	if err := tx.ScanPrefix(lt, func(r sqltypes.Row) bool {
		got = append(got, r[1].Int())
		return true
	}, sqltypes.NewNVarChar("east")); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("prefix scan = %v", got)
	}
	verifyOK(t, l, nil)
}

func TestTxRawForRegularTables(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	plain, err := l.Engine().CreateTable(engine.CreateTableSpec{
		Name: "scratch", Schema: accountsSchema(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// One transaction touching both a ledger table and a regular table:
	// only the ledger table contributes to the entry.
	tx := l.Begin("u")
	if err := tx.Insert(lt, account("ledgered", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Raw().Insert(plain, account("plain", 2)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if plain.RowCount() != 1 {
		t.Fatal("regular-table write lost")
	}
	d, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l, []Digest{d})
	// Tampering with the regular table is invisible to the ledger — by
	// design, it is not a ledger table.
	key := firstKeyOf(t, plain)
	l.Engine().TamperUpdateRow(plain, key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewBigInt(999)
		return r
	}, true)
	verifyOK(t, l, []Digest{d})
}

func TestLedgerTableWithNullValues(t *testing.T) {
	l := openTestLedger(t, 100)
	schema := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("id", sqltypes.TypeBigInt),
		sqltypes.NullableCol("note", sqltypes.TypeNVarChar),
		sqltypes.NullableCol("score", sqltypes.TypeFloat),
	}, "id")
	lt, err := l.CreateLedgerTable("nullable", schema, engine.LedgerUpdateable)
	if err != nil {
		t.Fatal(err)
	}
	tx := l.Begin("u")
	if err := tx.Insert(lt, sqltypes.Row{
		sqltypes.NewBigInt(1), sqltypes.NewNull(sqltypes.TypeNVarChar), sqltypes.NewFloat(1.5),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(lt, sqltypes.Row{
		sqltypes.NewBigInt(2), sqltypes.NewNVarChar("x"), sqltypes.NewNull(sqltypes.TypeFloat),
	}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	// NULL-flipping updates must hash/verify correctly.
	tx = l.Begin("u")
	if err := tx.Update(lt, sqltypes.Row{
		sqltypes.NewBigInt(1), sqltypes.NewNVarChar("now set"), sqltypes.NewNull(sqltypes.TypeFloat),
	}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	d, err := l.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	verifyOK(t, l, []Digest{d})
	// Swapping which column is NULL in storage must be detected (the
	// NULL-remap attack, §3.5.1).
	var key []byte
	lt.Table().Scan(func(k []byte, r sqltypes.Row) bool {
		if r[0].Int() == 2 {
			key = append([]byte(nil), k...)
			return false
		}
		return true
	})
	l.Engine().TamperUpdateRow(lt.Table(), key, func(r sqltypes.Row) sqltypes.Row {
		r[1] = sqltypes.NewNull(sqltypes.TypeNVarChar)
		r[2] = sqltypes.NewFloat(0) // move the "present" flag to the other column
		return r
	}, true)
	verifyFails(t, l, []Digest{d}, 4)
}

func TestCommitTSReturnsTimestamp(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	tx := l.Begin("u")
	if err := tx.Insert(lt, account("a", 1)); err != nil {
		t.Fatal(err)
	}
	ts, err := tx.CommitTS()
	if err != nil || ts == 0 {
		t.Fatalf("CommitTS = %d, %v", ts, err)
	}
	if got := l.Engine().LastCommitTS(); got != ts {
		t.Fatalf("LastCommitTS = %d, want %d", got, ts)
	}
}
