// The always-on auditor: continuous, incremental ledger verification.
//
// A full verification (verify.go) rescans every row version — O(N) work
// that in practice runs rarely, so integrity is only as observable as
// the last manual audit. The Auditor turns verification into a standing
// background process with three mechanisms:
//
//   - A persisted verified-through watermark (audit.json, written
//     atomically like superblock.json): each cycle re-verifies only
//     blocks closed since the watermark — the chain invariants 1-3 cost
//     O(delta blocks), not O(history), because a block's transactions
//     are fetched through the block secondary index.
//   - Optional sampling sweeps: each cycle re-checks a configurable
//     fraction of cold (already-verified) blocks at row level
//     (invariant 4) with ONE snapshot scan per ledger table — the scan
//     is a cheap pointer walk; hashing cost is proportional to the
//     sampled rows — plus a round-robin slice of the index-equivalence
//     checks (invariant 5). Silent corruption of old data is caught
//     probabilistically without ever paying a full rescan.
//   - Bisection on mismatch: block digest → per-transaction Merkle
//     subtree → row, producing a structured TamperReport instead of a
//     bare "digest mismatch".
//
// The watermark itself is NOT trusted: audit.json records the hash of
// the verified-through block, and every cycle re-anchors it by
// recomputing that block's hash from sys_ledger_blocks. A mismatch means
// history below the watermark changed after it was verified; the auditor
// then localizes the damage with a one-off scan of the verified prefix.
package core

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/merkle"
	"sqlledger/internal/obs"
	"sqlledger/internal/serial"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// auditFile is the auditor's persisted watermark, beside the database.
const auditFile = "audit.json"

// AuditorOptions tunes an always-on auditor.
type AuditorOptions struct {
	// Interval is the background cycle period (default 1s).
	Interval time.Duration
	// SampleFraction is the fraction of cold (already verified) blocks
	// re-checked at row level per cycle, in [0, 1]. 0 disables sampling;
	// 1 re-checks every block every cycle. The same fraction drives the
	// round-robin index-equivalence sweep (ceil(fraction × tables) ledger
	// tables per cycle).
	SampleFraction float64
	// SampleSeed seeds the deterministic sampling stream (default 1).
	SampleSeed uint64
}

func (o AuditorOptions) withDefaults() AuditorOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.SampleFraction < 0 {
		o.SampleFraction = 0
	}
	if o.SampleFraction > 1 {
		o.SampleFraction = 1
	}
	if o.SampleSeed == 0 {
		o.SampleSeed = 1
	}
	return o
}

// TamperReport localizes a detected ledger mutation: which shard (for
// sharded databases; -1 single-instance), block, transaction, table and
// row the mismatch bisected down to. Zero/empty fields mean the damage
// could not be narrowed further in that dimension.
type TamperReport struct {
	Shard int    `json:"shard"`
	Block int64  `json:"block"` // -1 when unknown
	TxID  uint64 `json:"tx_id,omitempty"`
	Table string `json:"table,omitempty"`
	// Key names the damaged row (decoded primary key, or hex-encoded
	// engine key for index entries).
	Key string `json:"key,omitempty"`
	// Mode records which audit pass detected it: incremental, sampled,
	// watermark or superblock.
	Mode       string `json:"mode"`
	Detail     string `json:"detail"`
	DetectedAt int64  `json:"detected_at_unix_nano"`
}

func (r *TamperReport) String() string {
	if r == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tamper[%s]", r.Mode)
	if r.Shard >= 0 {
		fmt.Fprintf(&b, " shard=%d", r.Shard)
	}
	if r.Block >= 0 {
		fmt.Fprintf(&b, " block=%d", r.Block)
	}
	if r.TxID != 0 {
		fmt.Fprintf(&b, " tx=%d", r.TxID)
	}
	if r.Table != "" {
		fmt.Fprintf(&b, " table=%s", r.Table)
	}
	if r.Key != "" {
		fmt.Fprintf(&b, " key=%s", r.Key)
	}
	return b.String() + ": " + r.Detail
}

// sameSite reports whether two reports localize the same damage (used to
// emit tamper_localized events only on change, not every cycle).
func (r *TamperReport) sameSite(o *TamperReport) bool {
	if r == nil || o == nil {
		return r == o
	}
	return r.Shard == o.Shard && r.Block == o.Block && r.TxID == o.TxID &&
		r.Table == o.Table && r.Key == o.Key && r.Detail == o.Detail
}

// auditWatermark is the audit.json document. BlockHash re-anchors the
// watermark: the file is plain mutable state, so the auditor never
// trusts it — each cycle recomputes block VerifiedThrough's hash from
// sys_ledger_blocks and compares.
type auditWatermark struct {
	DatabaseName    string `json:"database_name"`
	Incarnation     int64  `json:"database_create_time"`
	VerifiedThrough int64  `json:"verified_through_block"` // -1 = none
	BlockHash       string `json:"block_hash,omitempty"`
	UpdatedAt       int64  `json:"updated_at_unix_nano"`
}

// AuditStatus is a point-in-time snapshot of an auditor, served at
// /debug/audit and folded into /healthz.
type AuditStatus struct {
	Shard                int           `json:"shard"` // -1 single-instance
	Running              bool          `json:"running"`
	VerifiedThroughBlock int64         `json:"verified_through_block"`
	ChainHeadBlock       int64         `json:"chain_head_block"`
	LagBlocks            int64         `json:"lag_blocks"`
	Cycles               int64         `json:"cycles"`
	BlocksCheckedInc     int64         `json:"incremental_blocks_checked"`
	BlocksCheckedSampled int64         `json:"sampled_blocks_checked"`
	LastCycleAt          int64         `json:"last_cycle_at_unix_nano"` // 0 = never
	LastCycleSeconds     float64       `json:"last_cycle_seconds"`
	AgeSeconds           float64       `json:"age_seconds"`
	Ok                   bool          `json:"ok"`
	LastReport           *TamperReport `json:"last_report,omitempty"`
}

// Auditor is the background verification subsystem for one LedgerDB.
// Create with NewAuditor, drive explicitly with RunCycle or continuously
// with Start/Stop. All methods are safe for concurrent use; cycles
// themselves are serialized.
type Auditor struct {
	l     *LedgerDB
	opts  AuditorOptions
	shard int
	path  string

	// runMu serializes cycles; mu guards the status fields below and is
	// never held across a scan.
	runMu sync.Mutex
	mu    sync.Mutex

	wm           auditWatermark
	cycles       int64
	incChecked   int64
	sampChecked  int64
	lastCycleAt  time.Time
	lastCycleDur time.Duration
	lastReport   *TamperReport

	rng      uint64
	ixCursor int

	loopMu  sync.Mutex
	stopCh  chan struct{}
	wg      sync.WaitGroup
	running bool

	mVerified     *obs.Gauge
	mLag          *obs.Gauge
	mCycles       *obs.Counter
	mIncBlocks    *obs.Counter
	mSampBlocks   *obs.Counter
	mCycleSeconds *obs.Histogram
}

// NewAuditor builds (and registers) the database's always-on auditor.
// The persisted watermark is loaded from audit.json in the database
// directory; a file from another database or incarnation (restore) is
// discarded and auditing restarts from block 0. The returned auditor is
// not running yet — call Start for the background loop or RunCycle to
// drive it manually.
func (l *LedgerDB) NewAuditor(opts AuditorOptions) (*Auditor, error) {
	return l.newAuditorAt(opts, -1)
}

func (l *LedgerDB) newAuditorAt(opts AuditorOptions, shard int) (*Auditor, error) {
	opts = opts.withDefaults()
	a := &Auditor{
		l:     l,
		opts:  opts,
		shard: shard,
		path:  filepath.Join(l.opts.Dir, auditFile),
		wm: auditWatermark{
			DatabaseName:    l.opts.Name,
			Incarnation:     l.incarnation,
			VerifiedThrough: -1,
		},
		rng: opts.SampleSeed,
	}
	var lbl []obs.Label
	if shard >= 0 {
		lbl = append(lbl, obs.L("shard", fmt.Sprintf("%03d", shard)))
	}
	reg := l.obs
	a.mVerified = reg.Gauge(obs.VerifiedThroughBlock, lbl...)
	a.mLag = reg.Gauge(obs.AuditLagSeconds, lbl...)
	a.mCycles = reg.Counter(obs.AuditCyclesTotal, lbl...)
	a.mIncBlocks = reg.Counter(obs.AuditBlocksCheckedTotal, append([]obs.Label{obs.L("mode", "incremental")}, lbl...)...)
	a.mSampBlocks = reg.Counter(obs.AuditBlocksCheckedTotal, append([]obs.Label{obs.L("mode", "sampled")}, lbl...)...)
	a.mCycleSeconds = reg.Histogram(obs.AuditCycleSeconds, nil, lbl...)

	if err := a.loadWatermark(); err != nil {
		return nil, err
	}
	a.mVerified.Set(float64(a.wm.VerifiedThrough))
	l.auditor.Store(a)
	return a, nil
}

// Auditor returns the registered auditor, or nil.
func (l *LedgerDB) Auditor() *Auditor { return l.auditor.Load() }

// loadWatermark reads audit.json. Corrupt or mismatched files are
// discarded (with a warning event), not trusted and not fatal: the
// re-anchor check protects against a *tampered* watermark anyway, and a
// fresh auditor simply re-verifies from the chain start.
func (a *Auditor) loadWatermark() error {
	b, err := os.ReadFile(a.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var wm auditWatermark
	if jerr := json.Unmarshal(b, &wm); jerr != nil {
		a.l.obs.Events().Warn(obs.EventAuditPassStart,
			"discarded_watermark", a.path, "reason", jerr.Error())
		return nil
	}
	if wm.DatabaseName != a.l.opts.Name || wm.Incarnation != a.l.incarnation {
		// Another database, or a restore started a new incarnation:
		// everything must be re-verified under the new chain.
		return nil
	}
	if wm.VerifiedThrough < -1 {
		wm.VerifiedThrough = -1
	}
	a.wm = wm
	return nil
}

// saveWatermark persists the watermark atomically (tmp + rename), the
// same pattern superblock.json uses.
func (a *Auditor) saveWatermark() error {
	b, err := json.MarshalIndent(a.wm, "", "  ")
	if err != nil {
		return err
	}
	tmp := a.path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, a.path)
}

// Status snapshots the auditor and refreshes the lag gauge.
func (a *Auditor) Status() AuditStatus {
	a.l.closeMu.Lock()
	head := a.l.closedThrough
	a.l.closeMu.Unlock()

	a.mu.Lock()
	st := AuditStatus{
		Shard:                a.shard,
		VerifiedThroughBlock: a.wm.VerifiedThrough,
		ChainHeadBlock:       head,
		LagBlocks:            head - a.wm.VerifiedThrough,
		Cycles:               a.cycles,
		BlocksCheckedInc:     a.incChecked,
		BlocksCheckedSampled: a.sampChecked,
		Ok:                   a.lastReport == nil,
		LastReport:           a.lastReport,
		LastCycleSeconds:     a.lastCycleDur.Seconds(),
	}
	if !a.lastCycleAt.IsZero() {
		st.LastCycleAt = a.lastCycleAt.UnixNano()
		st.AgeSeconds = time.Since(a.lastCycleAt).Seconds()
	}
	a.mu.Unlock()

	a.loopMu.Lock()
	st.Running = a.running
	a.loopMu.Unlock()

	if st.LastCycleAt != 0 {
		a.mLag.Set(st.AgeSeconds)
	}
	return st
}

// Start launches the background audit loop. It stops on Stop or when
// the database closes.
func (a *Auditor) Start() {
	a.loopMu.Lock()
	defer a.loopMu.Unlock()
	if a.running {
		return
	}
	a.running = true
	a.stopCh = make(chan struct{})
	a.wg.Add(1)
	go func(stop chan struct{}) {
		defer a.wg.Done()
		ticker := time.NewTicker(a.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-a.l.doneCh:
				return
			case <-ticker.C:
				a.RunCycle()
			}
		}
	}(a.stopCh)
}

// Stop halts the background loop (idempotent; RunCycle stays usable).
func (a *Auditor) Stop() {
	a.loopMu.Lock()
	if !a.running {
		a.loopMu.Unlock()
		return
	}
	a.running = false
	close(a.stopCh)
	a.loopMu.Unlock()
	a.wg.Wait()
}

// xorshift64star advances the deterministic sampling stream.
func (a *Auditor) rand01() float64 {
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	return float64(a.rng>>11) / float64(uint64(1)<<53)
}

// RunCycle executes one audit cycle synchronously: re-anchor the
// watermark, incrementally verify blocks closed since it, then (if
// configured) run a sampling sweep over cold history. It returns the
// status after the cycle.
func (a *Auditor) RunCycle() AuditStatus {
	a.runMu.Lock()
	defer a.runMu.Unlock()
	start := time.Now()

	l := a.l
	sp := l.obs.Tracer().Start("audit_cycle")
	truncatedBefore, truncatedMaxTx := l.truncationInfo()
	l.closeMu.Lock()
	target := l.closedThrough
	l.closeMu.Unlock()

	a.mu.Lock()
	wmBefore := a.wm.VerifiedThrough
	a.mu.Unlock()

	var report *TamperReport
	var incChecked, sampChecked int64

	// Phase 0: re-anchor. The persisted watermark is untrusted; the
	// verified-through block's hash must still recompute to what the
	// auditor saw when it verified it.
	anchor, anchored, rep := a.reanchor(truncatedBefore)
	report = rep

	// Phase 1: incremental. Only blocks closed since the watermark are
	// checked — O(delta), using the block index for each block's
	// transactions.
	if report == nil {
		var verified int64
		anchor, verified, incChecked, report = a.incrementalPass(anchor, anchored, target, truncatedBefore, truncatedMaxTx)
		if verified > wmBefore {
			a.mu.Lock()
			a.wm.VerifiedThrough = verified
			a.wm.BlockHash = anchor.String()
			a.wm.UpdatedAt = time.Now().UnixNano()
			a.mu.Unlock()
			if err := a.saveWatermark(); err != nil {
				l.obs.Events().Warn(obs.EventAuditPassFinish, "watermark_save_error", err.Error())
			}
			a.mVerified.Set(float64(verified))
		}
	}

	// Phase 2: sampling sweep over cold history (blocks at or below the
	// watermark), row-level invariant 4 plus round-robin invariant 5.
	if report == nil && a.opts.SampleFraction > 0 {
		sampChecked, report = a.sampledPass(truncatedBefore, truncatedMaxTx)
	}

	dur := time.Since(start)
	a.mu.Lock()
	a.cycles++
	a.incChecked += incChecked
	a.sampChecked += sampChecked
	a.lastCycleAt = time.Now()
	a.lastCycleDur = dur
	prevReport := a.lastReport
	if report != nil {
		a.lastReport = report
	}
	wmAfter := a.wm.VerifiedThrough
	a.mu.Unlock()

	a.mCycles.Inc()
	a.mIncBlocks.Add(incChecked)
	a.mSampBlocks.Add(sampChecked)
	a.mCycleSeconds.Observe(dur.Seconds())
	a.mLag.Set(0)

	// Events and spans: only cycles that did work (or found damage) are
	// recorded, so an idle 1s loop does not flush the bounded rings.
	if incChecked > 0 || sampChecked > 0 || report != nil {
		sp.Annotate(
			obs.L("incremental_blocks", strconv.FormatInt(incChecked, 10)),
			obs.L("sampled_blocks", strconv.FormatInt(sampChecked, 10)),
			obs.L("ok", strconv.FormatBool(report == nil)))
		sp.Finish(nil)
		ev := l.obs.Events()
		ev.Info(obs.EventAuditPassStart,
			"watermark", wmBefore, "target", target, "sample_fraction", a.opts.SampleFraction)
		ev.Info(obs.EventAuditPassFinish,
			"verified_through", wmAfter, "incremental_blocks", incChecked,
			"sampled_blocks", sampChecked, "ok", report == nil,
			"duration_seconds", dur.Seconds())
	}
	if report != nil && !report.sameSite(prevReport) {
		l.obs.Events().Error(obs.EventTamperLocalized,
			"mode", report.Mode, "shard", report.Shard, "block", report.Block,
			"tx", report.TxID, "table", report.Table, "key", report.Key,
			"detail", report.Detail)
	}
	return a.Status()
}

// blockKey encodes a sys_ledger_blocks primary key.
func blockKey(b int64) []byte {
	return sqltypes.EncodeKey(nil, sqltypes.NewBigInt(b))
}

// reanchor validates the persisted watermark against the live chain.
// Returns the recomputed hash of the verified-through block (the link
// anchor for the incremental pass), whether an anchor exists, and a
// TamperReport when history below the watermark no longer matches.
func (a *Auditor) reanchor(truncatedBefore uint64) (merkle.Hash, bool, *TamperReport) {
	a.mu.Lock()
	wm := a.wm
	a.mu.Unlock()
	if wm.VerifiedThrough < 0 {
		return merkle.ZeroHash, false, nil
	}
	if uint64(wm.VerifiedThrough) < truncatedBefore {
		// Ledger truncation removed the watermark block; restart the
		// incremental pass at the truncation point.
		a.mu.Lock()
		a.wm.VerifiedThrough = int64(truncatedBefore) - 1
		a.wm.BlockHash = ""
		a.mu.Unlock()
		return merkle.ZeroHash, false, nil
	}
	row, ok := a.l.sysBlocks.Lookup(blockKey(wm.VerifiedThrough))
	if !ok {
		return merkle.ZeroHash, false, a.newReport("watermark", wm.VerifiedThrough, 0, "", "",
			fmt.Sprintf("verified block %d is missing from %s", wm.VerifiedThrough, sysBlocksName))
	}
	want, err := merkle.ParseHash(wm.BlockHash)
	if err != nil {
		// Unreadable stored hash: treat as no watermark rather than
		// trusting it.
		a.mu.Lock()
		a.wm.VerifiedThrough = -1
		a.wm.BlockHash = ""
		a.mu.Unlock()
		return merkle.ZeroHash, false, nil
	}
	got := blockHashOfRow(row)
	if got != want {
		return merkle.ZeroHash, false, a.localizeBelowWatermark(wm.VerifiedThrough, want, truncatedBefore)
	}
	return got, true, nil
}

// localizeBelowWatermark runs when the re-anchor fails: some block at or
// below the watermark changed after it was verified. This is the one
// place the auditor pays for a scan of the verified prefix — it only
// runs after tampering is already detected — walking the chain from the
// truncation point to find the first broken link or transaction root.
func (a *Auditor) localizeBelowWatermark(wm int64, want merkle.Hash, truncatedBefore uint64) *TamperReport {
	prev, havePrev := merkle.ZeroHash, false
	for b := int64(truncatedBefore); b <= wm; b++ {
		hash, rep := a.checkBlock(b, prev, havePrev, truncatedBefore, "watermark")
		if rep != nil {
			return rep
		}
		prev, havePrev = hash, true
	}
	// The prefix is internally consistent yet hashes to something else:
	// the chain below the watermark was rewritten wholesale.
	return a.newReport("watermark", wm, 0, "", "",
		fmt.Sprintf("chain below the verification watermark was rewritten: block %d recomputes to %s, watermark recorded %s", wm, prev, want))
}

// incrementalPass verifies blocks (watermark, target] against invariants
// 2 and 3: each block's row must exist, link to the recomputed hash of
// its predecessor, and carry the Merkle root and count of its
// transaction entries. Cost is O(blocks in the delta + their
// transactions); no table scans. Returns the new anchor hash, the
// highest verified block, how many blocks were checked, and the first
// tamper report.
func (a *Auditor) incrementalPass(anchor merkle.Hash, anchored bool, target int64, truncatedBefore, truncatedMaxTx uint64) (merkle.Hash, int64, int64, *TamperReport) {
	a.mu.Lock()
	verified := a.wm.VerifiedThrough
	a.mu.Unlock()
	start := verified + 1
	if start < int64(truncatedBefore) {
		start = int64(truncatedBefore)
	}
	var checked int64
	prev, havePrev := anchor, anchored
	for b := start; b <= target; b++ {
		hash, rep := a.checkBlock(b, prev, havePrev, truncatedBefore, "incremental")
		checked++
		if rep != nil {
			return prev, verified, checked, rep
		}
		prev, havePrev = hash, true
		verified = b
	}
	return prev, verified, checked, nil
}

// checkBlock verifies one block: presence, previous-hash link (when an
// anchor is available), transaction count, ordinal contiguity and the
// transactions Merkle root. A root mismatch bisects into per-transaction
// deep checks so the report names the damaged transaction — and row,
// when it can be pinned — rather than just the block.
func (a *Auditor) checkBlock(b int64, prev merkle.Hash, havePrev bool, truncatedBefore uint64, mode string) (merkle.Hash, *TamperReport) {
	l := a.l
	row, ok := l.sysBlocks.Lookup(blockKey(b))
	if !ok {
		return merkle.ZeroHash, a.newReport(mode, b, 0, "", "",
			fmt.Sprintf("closed block %d is missing from %s", b, sysBlocksName))
	}
	switch {
	case b == 0:
		if !allZero(row[1].Bytes) {
			return merkle.ZeroHash, a.newReport(mode, b, 0, "", "", "block 0 must have a null previous hash")
		}
	case uint64(b) == truncatedBefore:
		// First block after a truncation: its recorded previous hash
		// points at a removed block and cannot be recomputed.
	case havePrev:
		if !bytes.Equal(row[1].Bytes, prev[:]) {
			return merkle.ZeroHash, a.newReport(mode, b, 0, "", "",
				fmt.Sprintf("block %d previous-hash mismatch: recorded=%x computed-over-block-%d=%s", b, row[1].Bytes, b-1, prev))
		}
	}
	entries := l.entriesOfBlock(uint64(b))
	if int64(len(entries)) != row[3].Int() {
		return merkle.ZeroHash, a.newReport(mode, b, 0, "", "",
			fmt.Sprintf("block %d records %d transactions but %d are present", b, row[3].Int(), len(entries)))
	}
	var tree merkle.Streaming
	for i, e := range entries {
		if e.Ordinal != uint32(i) {
			return merkle.ZeroHash, a.newReport(mode, b, e.TxID, "", "",
				fmt.Sprintf("block %d transaction ordinals are not contiguous at %d", b, i))
		}
		tree.Append(entryHash(e))
	}
	root := tree.Root()
	if !bytes.Equal(row[2].Bytes, root[:]) {
		// Bisect: an entry's hash changed (its system-table row was
		// edited) or the recorded root itself was. Deep-check each
		// transaction's per-table Merkle roots against the rows.
		for _, e := range entries {
			if rep := a.deepCheckTx(e, mode); rep != nil {
				return merkle.ZeroHash, rep
			}
		}
		return merkle.ZeroHash, a.newReport(mode, b, 0, "", "",
			fmt.Sprintf("block %d transactions root mismatch: recorded=%x computed=%s (entry metadata or the recorded root was altered)", b, row[2].Bytes, root))
	}
	return blockHashOfRow(row), nil
}

// auditOp is one recomputed row-version hash with its clustered key —
// what bisection needs to name the damaged row.
type auditOp struct {
	seq  uint64
	hash merkle.Hash
	key  []byte
	del  bool
}

func sortOps(ops []auditOp) {
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].seq != ops[j].seq {
			return ops[i].seq < ops[j].seq
		}
		return bytes.Compare(ops[i].hash[:], ops[j].hash[:]) < 0
	})
}

func opsRoot(ops []auditOp) merkle.Hash {
	var tree merkle.Streaming
	for _, op := range ops {
		tree.Append(op.hash)
	}
	return tree.Root()
}

// txTableOps recomputes one transaction's row-version ops (hash + key)
// for one ledger table, scanning base and history. With a non-nil rtx
// the scans read the pinned snapshot, which makes the result consistent
// under concurrent writers; nil reads latest-committed (fine on a
// quiescent database).
func txTableOps(lt *LedgerTable, txID uint64, rtx *engine.ReadTx) []auditOp {
	s := lt.table.Schema()
	var ops []auditOp
	collect := func(t *engine.Table, history bool) {
		scan := func(fn func(k []byte, full sqltypes.Row) bool) {
			if rtx != nil {
				_ = rtx.Scan(t, fn)
			} else {
				t.Scan(fn)
			}
		}
		scan(func(k []byte, full sqltypes.Row) bool {
			if uint64(full[lt.startTxOrd].Int()) == txID {
				ops = append(ops, auditOp{
					seq:  uint64(full[lt.startSeqOrd].Int()),
					hash: serial.HashRow(s, full, serial.OpInsert, lt.skipEnd),
					key:  append([]byte(nil), k...),
				})
			}
			if history && uint64(full[lt.endTxOrd].Int()) == txID {
				ops = append(ops, auditOp{
					seq:  uint64(full[lt.endSeqOrd].Int()),
					hash: serial.HashRow(s, full, serial.OpDelete, nil),
					key:  append([]byte(nil), k...),
					del:  true,
				})
			}
			return true
		})
	}
	collect(lt.table, false)
	if lt.history != nil {
		collect(lt.history, true)
	}
	sortOps(ops)
	return ops
}

// ledgerTableByID resolves a registered ledger table by base-table id.
func (l *LedgerDB) ledgerTableByID(id uint32) *LedgerTable {
	l.tmu.RLock()
	defer l.tmu.RUnlock()
	return l.tables[id]
}

// deepCheckTx re-verifies one transaction's recorded per-table Merkle
// roots against the row versions now in the database (invariant 4 for a
// single transaction). It pins a fresh snapshot so the check cannot be
// confused by concurrent writers. The report pins the exact row when the
// transaction touched a single row in the damaged table.
func (a *Auditor) deepCheckTx(e *wal.LedgerEntry, mode string) *TamperReport {
	rtx := a.l.edb.BeginReadOnly()
	defer rtx.Close()
	for _, tr := range e.Roots {
		lt := a.l.ledgerTableByID(tr.TableID)
		if lt == nil {
			continue
		}
		ops := txTableOps(lt, e.TxID, rtx)
		if rep := a.checkTxTable(e, lt, tr.Root, ops, mode); rep != nil {
			return rep
		}
	}
	return nil
}

// checkTxTable compares a transaction's recorded root for one table with
// the root recomputed from ops, localizing as far as possible.
func (a *Auditor) checkTxTable(e *wal.LedgerEntry, lt *LedgerTable, recorded merkle.Hash, ops []auditOp, mode string) *TamperReport {
	if len(ops) == 0 {
		return a.newReport(mode, int64(e.BlockID), e.TxID, lt.Name(), "",
			fmt.Sprintf("transaction %d recorded updates to %s but no row versions remain", e.TxID, lt.Name()))
	}
	if opsRoot(ops) == recorded {
		return nil
	}
	key := ""
	if len(ops) == 1 {
		key = lt.keyString(ops[0].key)
	}
	return a.newReport(mode, int64(e.BlockID), e.TxID, lt.Name(), key,
		fmt.Sprintf("transaction %d Merkle root mismatch in %s: recorded=%s computed=%s over %d row versions", e.TxID, lt.Name(), recorded, opsRoot(ops), len(ops)))
}

// keyString renders a clustered key for a report: decoded primary-key
// values when possible, hex otherwise.
func (lt *LedgerTable) keyString(key []byte) string {
	s := lt.table.Schema()
	if len(s.Key) > 0 {
		types := make([]sqltypes.TypeID, len(s.Key))
		for i, ord := range s.Key {
			types[i] = s.Columns[ord].Type
		}
		if vals, err := sqltypes.DecodeKey(key, types); err == nil {
			parts := make([]string, len(vals))
			for i, v := range vals {
				parts[i] = v.String()
			}
			return strings.Join(parts, ",")
		}
	}
	return hex.EncodeToString(key)
}

// sampledPass re-checks a deterministic pseudo-random fraction of cold
// blocks at row level: invariant 3 and the chain link for each sampled
// block, then invariant 4 for every transaction in the sampled blocks
// using ONE snapshot scan per ledger table — the scan visits every row
// (a pointer walk), but hashing only happens for rows belonging to
// sampled transactions, so the dominant cost is proportional to the
// sample. A slice of the index-equivalence checks (invariant 5) rotates
// through the ledger tables round-robin.
func (a *Auditor) sampledPass(truncatedBefore, truncatedMaxTx uint64) (int64, *TamperReport) {
	l := a.l
	a.mu.Lock()
	wm := a.wm.VerifiedThrough
	a.mu.Unlock()
	if wm < int64(truncatedBefore) {
		return 0, nil
	}

	// Pick the sample. fraction >= 1 short-circuits the RNG so "check
	// everything every cycle" is exact, not probabilistic.
	var sampled []int64
	for b := int64(truncatedBefore); b <= wm; b++ {
		if a.opts.SampleFraction >= 1 || a.rand01() < a.opts.SampleFraction {
			sampled = append(sampled, b)
		}
	}
	if len(sampled) == 0 {
		return 0, a.indexSweep(truncatedBefore)
	}

	// Pin a snapshot: every row version visible at ts is exactly the set
	// a quiescent verification would see for transactions committed at
	// or before ts, so sampling stays consistent under live writers.
	rtx := l.edb.BeginReadOnly()
	defer rtx.Close()
	ts := rtx.TS()

	type txTableKey struct {
		tx    uint64
		table uint32
	}
	entries := make(map[uint64]*wal.LedgerEntry)
	var checked int64
	for _, b := range sampled {
		es := l.entriesOfBlock(uint64(b))
		applied := true
		for _, e := range es {
			if e.CommitTS > ts {
				applied = false
				break
			}
		}
		if !applied {
			// A block this young still has writes ahead of the snapshot;
			// it was verified incrementally and will be sampled later.
			continue
		}
		checked++
		// Chain link spot-check: the next block's recorded previous
		// hash must match this block's recomputed hash, which detects
		// any edit of the sampled block's header row.
		row, ok := l.sysBlocks.Lookup(blockKey(b))
		if !ok {
			return checked, a.newReport("sampled", b, 0, "", "",
				fmt.Sprintf("closed block %d is missing from %s", b, sysBlocksName))
		}
		if next, nok := l.sysBlocks.Lookup(blockKey(b + 1)); nok {
			h := blockHashOfRow(row)
			if !bytes.Equal(next[1].Bytes, h[:]) {
				return checked, a.newReport("sampled", b, 0, "", "",
					fmt.Sprintf("block %d hash no longer matches block %d's recorded previous hash", b, b+1))
			}
		}
		// Invariant 3 for the sampled block.
		if _, rep := a.checkBlock(b, merkle.ZeroHash, false, truncatedBefore, "sampled"); rep != nil {
			return checked, rep
		}
		for _, e := range es {
			entries[e.TxID] = e
		}
	}
	if len(entries) == 0 {
		return checked, a.indexSweep(truncatedBefore)
	}

	// One snapshot scan per ledger table (base + history), accumulating
	// ops only for sampled transactions.
	acc := make(map[txTableKey][]auditOp)
	for _, lt := range l.LedgerTables() {
		s := lt.table.Schema()
		tid := lt.ID()
		collect := func(t *engine.Table, history bool) {
			_ = rtx.Scan(t, func(k []byte, full sqltypes.Row) bool {
				if tx := uint64(full[lt.startTxOrd].Int()); entries[tx] != nil {
					kk := txTableKey{tx, tid}
					acc[kk] = append(acc[kk], auditOp{
						seq:  uint64(full[lt.startSeqOrd].Int()),
						hash: serial.HashRow(s, full, serial.OpInsert, lt.skipEnd),
						key:  append([]byte(nil), k...),
					})
				}
				if history {
					if tx := uint64(full[lt.endTxOrd].Int()); entries[tx] != nil {
						kk := txTableKey{tx, tid}
						acc[kk] = append(acc[kk], auditOp{
							seq:  uint64(full[lt.endSeqOrd].Int()),
							hash: serial.HashRow(s, full, serial.OpDelete, nil),
							key:  append([]byte(nil), k...),
							del:  true,
						})
					}
				}
				return true
			})
		}
		collect(lt.table, false)
		if lt.history != nil {
			collect(lt.history, true)
		}
	}

	// Compare every sampled transaction's recorded roots.
	txIDs := make([]uint64, 0, len(entries))
	for tx := range entries {
		txIDs = append(txIDs, tx)
	}
	sort.Slice(txIDs, func(i, j int) bool { return txIDs[i] < txIDs[j] })
	for _, tx := range txIDs {
		e := entries[tx]
		for _, tr := range e.Roots {
			lt := l.ledgerTableByID(tr.TableID)
			if lt == nil {
				continue
			}
			ops := acc[txTableKey{tx, tr.TableID}]
			sortOps(ops)
			if rep := a.checkTxTable(e, lt, tr.Root, ops, "sampled"); rep != nil {
				// Confirm on a fresh snapshot before reporting: the
				// original scan cannot race, but the deep check also
				// re-localizes with the newest data.
				if confirmed := a.deepCheckTx(e, "sampled"); confirmed != nil {
					return checked, confirmed
				}
			}
		}
	}
	return checked, a.indexSweep(truncatedBefore)
}

// indexSweep runs invariant 5 (index/base equivalence) for a round-robin
// slice of the ledger tables: ceil(fraction × tables) tables per cycle.
// Index trees are not versioned, so a mismatch under live writers is
// re-checked until the same divergence shows up twice before it becomes
// a report.
func (a *Auditor) indexSweep(truncatedBefore uint64) *TamperReport {
	tables := a.l.LedgerTables()
	if len(tables) == 0 {
		return nil
	}
	n := int(a.opts.SampleFraction*float64(len(tables)) + 0.999999)
	if n <= 0 {
		return nil
	}
	if n > len(tables) {
		n = len(tables)
	}
	a.mu.Lock()
	cursor := a.ixCursor
	a.ixCursor = (a.ixCursor + n) % len(tables)
	a.mu.Unlock()
	for i := 0; i < n; i++ {
		lt := tables[(cursor+i)%len(tables)]
		if rep := a.checkTableIndexes(lt); rep != nil {
			return rep
		}
	}
	return nil
}

// checkTableIndexes diffs each nonclustered index of the table (and its
// history table) against entry keys recomputed from the base rows.
func (a *Auditor) checkTableIndexes(lt *LedgerTable) *TamperReport {
	check := func(t *engine.Table) *TamperReport {
		for _, ix := range t.Indexes() {
			var rep *TamperReport
			// Two matching diffs in a row distinguish real divergence
			// from a scan racing a concurrent writer.
			for attempt := 0; attempt < 3; attempt++ {
				next := a.diffIndex(t, ix)
				if next == nil {
					rep = nil
					break
				}
				if rep != nil && rep.sameSite(next) {
					return next
				}
				rep = next
			}
			if rep != nil {
				return rep
			}
		}
		return nil
	}
	if rep := check(lt.table); rep != nil {
		return rep
	}
	if lt.history != nil {
		return check(lt.history)
	}
	return nil
}

// diffIndex compares one index's (entry key → clustered key) map with
// the mapping recomputed from the base rows, returning a report naming
// the first divergent entry (in entry-key order), or nil.
func (a *Auditor) diffIndex(t *engine.Table, ix *engine.Index) *TamperReport {
	expected := make(map[string]string)
	t.Scan(func(ck []byte, row sqltypes.Row) bool {
		expected[string(ix.EntryKey(ck, row))] = string(ck)
		return true
	})
	var bad *TamperReport
	var seen int
	t.ScanIndex(ix, func(entryKey, ck []byte) bool {
		seen++
		want, ok := expected[string(entryKey)]
		switch {
		case !ok:
			bad = a.newReport("sampled", -1, 0, t.Name(), hex.EncodeToString(entryKey),
				fmt.Sprintf("index %s holds entry %x that no base row produces", ix.Meta().Name, entryKey))
		case want != string(ck):
			bad = a.newReport("sampled", -1, 0, t.Name(), hex.EncodeToString(entryKey),
				fmt.Sprintf("index %s entry %x points at the wrong row", ix.Meta().Name, entryKey))
		default:
			delete(expected, string(entryKey))
			return true
		}
		return false
	})
	if bad != nil {
		return bad
	}
	if len(expected) > 0 {
		// Deterministic pick of a missing entry.
		keys := make([]string, 0, len(expected))
		for k := range expected {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return a.newReport("sampled", -1, 0, t.Name(), hex.EncodeToString([]byte(keys[0])),
			fmt.Sprintf("index %s is missing %d entries for existing base rows", ix.Meta().Name, len(expected)))
	}
	return nil
}

// newReport stamps a TamperReport with the auditor's shard and clock.
func (a *Auditor) newReport(mode string, block int64, tx uint64, table, key, detail string) *TamperReport {
	return &TamperReport{
		Shard:      a.shard,
		Block:      block,
		TxID:       tx,
		Table:      table,
		Key:        key,
		Mode:       mode,
		Detail:     detail,
		DetectedAt: time.Now().UnixNano(),
	}
}

// ClearReport drops the remembered tamper report (for tests and for
// operators who repaired the database out of band).
func (a *Auditor) ClearReport() {
	a.mu.Lock()
	a.lastReport = nil
	a.mu.Unlock()
}

// --- Sharded auditing ---------------------------------------------------

// ShardedAuditor fans one auditor out per shard under the super-block
// root: each shard keeps its own audit.json watermark inside its shard
// directory, and every cycle first pins each signed super-block head
// against its shard's live chain (CheckDigest) so a forked or rolled
// back shard is localized by shard even before block-level bisection.
type ShardedAuditor struct {
	s    *ShardedDB
	auds []*Auditor
	opts AuditorOptions

	mu         sync.Mutex
	headReport *TamperReport
	headCycles int64

	loopMu  sync.Mutex
	stopCh  chan struct{}
	wg      sync.WaitGroup
	running bool
}

// NewAuditor builds one auditor per shard (registered on each shard's
// LedgerDB) plus the super-block head pinning that ties them together.
func (s *ShardedDB) NewAuditor(opts AuditorOptions) (*ShardedAuditor, error) {
	sa := &ShardedAuditor{s: s, opts: opts.withDefaults()}
	for i, shard := range s.shards {
		a, err := shard.newAuditorAt(opts, i)
		if err != nil {
			return nil, fmt.Errorf("core: auditor for shard %d: %w", i, err)
		}
		sa.auds = append(sa.auds, a)
	}
	s.auditor.Store(sa)
	return sa, nil
}

// Auditor returns the registered sharded auditor, or nil.
func (s *ShardedDB) Auditor() *ShardedAuditor { return s.auditor.Load() }

// Shard returns shard i's auditor.
func (sa *ShardedAuditor) Shard(i int) *Auditor { return sa.auds[i] }

// RunCycle audits every shard once: super-block head checks first, then
// each shard's incremental + sampled cycle.
func (sa *ShardedAuditor) RunCycle() ShardedAuditStatus {
	if sb := sa.s.LastSuperBlock(); sb != nil {
		for _, h := range sb.Heads {
			if h.Empty {
				continue
			}
			if err := sa.s.shards[h.Shard].CheckDigest(h.Digest); err != nil {
				rep := &TamperReport{
					Shard:      h.Shard,
					Block:      int64(h.Digest.BlockID),
					Mode:       "superblock",
					Detail:     fmt.Sprintf("signed super-block %d head check failed: %v", sb.SeqNo, err),
					DetectedAt: time.Now().UnixNano(),
				}
				sa.mu.Lock()
				changed := !rep.sameSite(sa.headReport)
				sa.headReport = rep
				sa.mu.Unlock()
				if changed {
					sa.s.obs.Events().Error(obs.EventTamperLocalized,
						"mode", rep.Mode, "shard", rep.Shard, "block", rep.Block, "detail", rep.Detail)
				}
			}
		}
	}
	sa.mu.Lock()
	sa.headCycles++
	sa.mu.Unlock()
	for _, a := range sa.auds {
		a.RunCycle()
	}
	return sa.Status()
}

// ShardedAuditStatus aggregates the per-shard audit state.
type ShardedAuditStatus struct {
	Shards []AuditStatus `json:"shards"`
	// HeadReport is a failed super-block head pin, if any — tampering
	// localized to a shard by the signed super-root alone.
	HeadReport *TamperReport `json:"head_report,omitempty"`
	Ok         bool          `json:"ok"`
}

// Status snapshots every shard auditor plus the head-pin state.
func (sa *ShardedAuditor) Status() ShardedAuditStatus {
	st := ShardedAuditStatus{Ok: true}
	sa.mu.Lock()
	st.HeadReport = sa.headReport
	sa.mu.Unlock()
	if st.HeadReport != nil {
		st.Ok = false
	}
	for _, a := range sa.auds {
		s := a.Status()
		if !s.Ok {
			st.Ok = false
		}
		st.Shards = append(st.Shards, s)
	}
	return st
}

// Start launches one background loop driving full sharded cycles.
func (sa *ShardedAuditor) Start() {
	sa.loopMu.Lock()
	defer sa.loopMu.Unlock()
	if sa.running {
		return
	}
	sa.running = true
	sa.stopCh = make(chan struct{})
	sa.wg.Add(1)
	go func(stop chan struct{}) {
		defer sa.wg.Done()
		ticker := time.NewTicker(sa.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				sa.RunCycle()
			}
		}
	}(sa.stopCh)
}

// Stop halts the background loop.
func (sa *ShardedAuditor) Stop() {
	sa.loopMu.Lock()
	if !sa.running {
		sa.loopMu.Unlock()
		return
	}
	sa.running = false
	close(sa.stopCh)
	sa.loopMu.Unlock()
	sa.wg.Wait()
}
