package core

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"sqlledger/internal/engine"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// logicalClock returns a deterministic Options.Clock: a strictly
// increasing nanosecond counter from a fixed epoch. Two ledgers driven
// through the same sequence of operations with separate logical clocks
// produce byte-identical entries, block hashes and digests.
func logicalClock() func() int64 {
	var c atomic.Int64
	c.Store(1_700_000_000_000_000_000)
	return func() int64 { return c.Add(1) }
}

func openDeterministicLedger(t *testing.T, blockSize uint32) *LedgerDB {
	t.Helper()
	l, err := Open(Options{
		Dir:         t.TempDir(),
		Name:        "test",
		BlockSize:   blockSize,
		LockTimeout: 250 * time.Millisecond,
		Clock:       logicalClock(),
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// ingestScenario drives one ledger through a fixed sequence of inserts,
// either one row at a time (batch=false) or through InsertBatch. The
// scenario deliberately covers: a batch below the parallel threshold, a
// savepoint/rollback in the middle of a transaction with re-ingest of
// the same rows, a large parallel batch, and a keyless append-only
// (heap) table that takes the serial fallback inside InsertBatch.
func ingestScenario(t *testing.T, l *LedgerDB, batch bool) (*LedgerTable, *LedgerTable) {
	t.Helper()
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	heapSchema := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("msg", sqltypes.TypeNVarChar),
		sqltypes.Col("v", sqltypes.TypeBigInt),
	})
	audit, err := l.CreateLedgerTable("audit", heapSchema, engine.LedgerAppendOnly)
	if err != nil {
		t.Fatalf("create audit table: %v", err)
	}
	insert := func(tx *Tx, target *LedgerTable, rows []sqltypes.Row) {
		t.Helper()
		if batch {
			if err := tx.InsertBatchParallel(target, rows, 4); err != nil {
				t.Fatalf("insert batch: %v", err)
			}
			return
		}
		for _, r := range rows {
			if err := tx.Insert(target, r); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
	}
	rows := make([]sqltypes.Row, 64)
	for i := range rows {
		rows[i] = account(fmt.Sprintf("acct-%03d", i), int64(i*7-100))
	}

	// tx1: small batch — below batchParallelMin in batch mode.
	tx := l.Begin("loader")
	insert(tx, lt, rows[:5])
	mustCommit(t, tx)

	// tx2: savepoint taken mid-transaction, a batch rolled back, then the
	// same rows re-ingested. The Merkle trees must rewind with the writes.
	tx = l.Begin("loader")
	insert(tx, lt, rows[5:10])
	sp := tx.Savepoint()
	insert(tx, lt, rows[10:40])
	if err := tx.RollbackTo(sp); err != nil {
		t.Fatalf("rollback to savepoint: %v", err)
	}
	insert(tx, lt, rows[10:40])
	mustCommit(t, tx)

	// tx3: a large parallel batch plus the heap-table fallback in one tx.
	heapRows := make([]sqltypes.Row, 20)
	for i := range heapRows {
		heapRows[i] = sqltypes.Row{
			sqltypes.NewNVarChar(fmt.Sprintf("event-%d", i)),
			sqltypes.NewBigInt(int64(i)),
		}
	}
	tx = l.Begin("loader")
	insert(tx, lt, rows[40:])
	insert(tx, audit, heapRows)
	mustCommit(t, tx)
	return lt, audit
}

func collectEntries(t *testing.T, l *LedgerDB) []*wal.LedgerEntry {
	t.Helper()
	l.closeMu.Lock()
	latest := l.closedThrough
	l.closeMu.Unlock()
	var out []*wal.LedgerEntry
	for b := int64(0); b <= latest; b++ {
		out = append(out, l.entriesOfBlock(uint64(b))...)
	}
	return out
}

// TestInsertBatchEquivalence is the property pinning the bulk-DML fast
// path: the same rows ingested through InsertBatch must produce ledger
// artifacts byte-identical to one-at-a-time inserts — per-table Merkle
// roots, ledger entries, block hashes and database digests. Both ledgers
// run on logical clocks so even commit timestamps line up.
func TestInsertBatchEquivalence(t *testing.T) {
	serialL := openDeterministicLedger(t, 100)
	batchL := openDeterministicLedger(t, 100)
	ingestScenario(t, serialL, false)
	ingestScenario(t, batchL, true)

	ds, err := serialL.GenerateDigest()
	if err != nil {
		t.Fatalf("serial digest: %v", err)
	}
	db, err := batchL.GenerateDigest()
	if err != nil {
		t.Fatalf("batch digest: %v", err)
	}
	if string(ds.JSON()) != string(db.JSON()) {
		t.Fatalf("digests differ:\nserial: %s\nbatch:  %s", ds.JSON(), db.JSON())
	}

	se := collectEntries(t, serialL)
	be := collectEntries(t, batchL)
	if len(se) == 0 || len(se) != len(be) {
		t.Fatalf("entry counts: serial=%d batch=%d", len(se), len(be))
	}
	for i := range se {
		// Per-table Merkle roots first, for a sharper failure message.
		if !reflect.DeepEqual(se[i].Roots, be[i].Roots) {
			t.Errorf("tx %d: table roots differ:\nserial: %v\nbatch:  %v",
				se[i].TxID, se[i].Roots, be[i].Roots)
		}
		if !reflect.DeepEqual(se[i], be[i]) {
			t.Errorf("ledger entry %d differs:\nserial: %+v\nbatch:  %+v", i, se[i], be[i])
		}
	}

	// A second digest after more activity pins the block chain linkage.
	for _, l := range []*LedgerDB{serialL, batchL} {
		lt, err := l.LedgerTable("accounts")
		if err != nil {
			t.Fatal(err)
		}
		tx := l.Begin("loader")
		if err := tx.Update(lt, account("acct-000", 999)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	ds2, err := serialL.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := batchL.GenerateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if string(ds2.JSON()) != string(db2.JSON()) {
		t.Fatalf("second digests differ:\nserial: %s\nbatch:  %s", ds2.JSON(), db2.JSON())
	}
	if err := serialL.VerifyDigestDerivation(ds, ds2); err != nil {
		t.Fatal(err)
	}
	if err := batchL.VerifyDigestDerivation(db, db2); err != nil {
		t.Fatal(err)
	}
	verifyOK(t, serialL, []Digest{ds, ds2})
	verifyOK(t, batchL, []Digest{db, db2})
}

// TestInsertBatchDuplicateKey checks the error path: a duplicate key in
// the middle of a batch surfaces the engine error, and rolling the
// transaction back leaves a ledger that still verifies.
func TestInsertBatchDuplicateKey(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	rows := make([]sqltypes.Row, 32)
	for i := range rows {
		rows[i] = account(fmt.Sprintf("acct-%03d", i), int64(i))
	}
	rows[20] = account("acct-003", 99) // duplicates rows[3]

	tx := l.Begin("loader")
	if err := tx.InsertBatch(lt, rows); err == nil {
		t.Fatal("duplicate key in batch accepted")
	}
	if err := tx.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if lt.Table().RowCount() != 0 {
		t.Fatalf("rows leaked past rollback: %d", lt.Table().RowCount())
	}

	// The ledger remains usable and consistent afterwards.
	tx = l.Begin("loader")
	if err := tx.InsertBatch(lt, rows[:20]); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	verifyOK(t, l, nil)
}

// TestReadOnlyTxAllocatesNoState pins the lazy txState: a ledger
// transaction that only reads must never materialize the per-table
// Merkle tree map or touch the state pool.
func TestReadOnlyTxAllocatesNoState(t *testing.T) {
	l := openTestLedger(t, 100)
	lt := mustLedgerTable(t, l, "accounts", engine.LedgerUpdateable)
	tx := l.Begin("w")
	if tx.state != nil {
		t.Fatal("fresh tx allocated ledger state before any write")
	}
	if err := tx.Insert(lt, account("a", 1)); err != nil {
		t.Fatal(err)
	}
	if tx.state == nil {
		t.Fatal("write did not materialize ledger state")
	}
	mustCommit(t, tx)
	if tx.state != nil {
		t.Fatal("commit did not release ledger state to the pool")
	}

	rtx := l.Begin("r")
	if _, ok, err := rtx.Get(lt, sqltypes.NewNVarChar("a")); err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	count := 0
	if err := rtx.Scan(lt, func(sqltypes.Row) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("scan rows = %d", count)
	}
	if rtx.state != nil {
		t.Fatal("read-only tx allocated ledger state")
	}
	if err := rtx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Rollback-only path releases state too.
	wtx := l.Begin("w")
	wtx.Insert(lt, account("b", 2))
	wtx.Rollback()
	if wtx.state != nil {
		t.Fatal("rollback did not release ledger state")
	}
}
