package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Handler returns an http.Handler serving the registry:
//
//	/metrics      Prometheus text exposition
//	/debug/spans  recent finished spans as JSON (?n=N limits the count)
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		spans := r.Tracer().Recent(n)
		if spans == nil {
			spans = []SpanRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	return mux
}

// Server is a running metrics HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. "127.0.0.1:0" for an ephemeral
// port) and serves Handler(r) in a background goroutine.
func StartServer(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, usable in a URL.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
