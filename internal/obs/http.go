package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Mux returns the observability ServeMux for a registry:
//
//	/metrics       Prometheus text exposition (runtime-sampled per scrape)
//	/debug/spans   recent finished spans as JSON (?n=N limits the count)
//	/debug/events  recent audit events as JSON (?n=N, ?type=T filter)
//	/debug/trace   one retained trace by ?id= (waterfall; ?format=text
//	               renders it as indented text); without id, recent
//	               retained traces (?n=N)
//	/debug/slow    recent slow-query log entries as JSON (?n=N)
//	/debug/pprof/  Go profiling endpoints (heap, goroutine, profile, …)
//
// Callers that serve additional endpoints (core's /healthz and
// /debug/ledger) register them on the returned mux.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		SampleRuntime(r) // scrape-time freshness for the runtime gauges
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, req *http.Request) {
		spans := r.Tracer().Recent(queryInt(req, "n"))
		if spans == nil {
			spans = []SpanRecord{}
		}
		writeJSON(w, spans)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		var events []Event
		if typ := req.URL.Query().Get("type"); typ != "" {
			events = r.Events().RecentOfType(typ, queryInt(req, "n"))
		} else {
			events = r.Events().Recent(queryInt(req, "n"))
		}
		if events == nil {
			events = []Event{}
		}
		writeJSON(w, events)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		idStr := req.URL.Query().Get("id")
		if idStr == "" {
			traces := r.Traces().Recent(queryInt(req, "n"))
			if traces == nil {
				traces = []*TraceRecord{}
			}
			writeJSON(w, traces)
			return
		}
		id, err := ParseTraceID(idStr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec, ok := r.Traces().Get(id)
		if !ok {
			http.Error(w, "trace not retained (evicted, sampled out, or never existed)", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteWaterfall(w, rec)
			return
		}
		writeJSON(w, rec)
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, req *http.Request) {
		slow := r.Traces().RecentSlow(queryInt(req, "n"))
		if slow == nil {
			slow = []*SlowQuery{}
		}
		writeJSON(w, slow)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Handler returns an http.Handler serving the registry (see Mux).
func Handler(r *Registry) http.Handler { return Mux(r) }

func queryInt(req *http.Request, key string) int {
	if s := req.URL.Query().Get(key); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return 0
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. "127.0.0.1:0" for an ephemeral
// port) and serves Handler(r) in a background goroutine.
func StartServer(addr string, r *Registry) (*Server, error) {
	return StartServerHandler(addr, Handler(r))
}

// StartServerHandler is StartServer for an arbitrary handler — used by
// core to serve /healthz and /debug/ledger alongside the registry
// endpoints.
func StartServerHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, usable in a URL.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
