package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestSampleRuntime(t *testing.T) {
	r := NewRegistry()
	runtime.GC() // guarantee at least one completed GC cycle
	SampleRuntime(r)
	snap := r.Snapshot()
	if g, ok := snap.GaugeValue(RuntimeGoroutines); !ok || g < 1 {
		t.Fatalf("goroutines gauge = %v, %v", g, ok)
	}
	if g, ok := snap.GaugeValue(RuntimeHeapAllocBytes); !ok || g <= 0 {
		t.Fatalf("heap alloc gauge = %v, %v", g, ok)
	}
	if g, ok := snap.GaugeValue(RuntimeHeapSysBytes); !ok || g <= 0 {
		t.Fatalf("heap sys gauge = %v, %v", g, ok)
	}
	if c := snap.CounterValue(RuntimeGCTotal); c < 1 {
		t.Fatalf("gc total = %d, want >= 1", c)
	}
	hs, ok := snap.Histogram(RuntimeGCPauseSeconds)
	if !ok || hs.Count < 1 {
		t.Fatalf("gc pause histogram missing or empty: %+v", hs)
	}

	// A second sample with no new GC cycles must not double-count pauses.
	before := hs.Count
	gcBefore := snap.CounterValue(RuntimeGCTotal)
	SampleRuntime(r)
	snap = r.Snapshot()
	hs, _ = snap.Histogram(RuntimeGCPauseSeconds)
	extraGC := snap.CounterValue(RuntimeGCTotal) - gcBefore
	if hs.Count-before != extraGC {
		t.Fatalf("pause observations (%d) != fresh GC cycles (%d)", hs.Count-before, extraGC)
	}
}

func TestSampleRuntimeDisabled(t *testing.T) {
	SampleRuntime(nil)
	d := Disabled()
	SampleRuntime(d)
	if _, ok := d.Snapshot().GaugeValue(RuntimeGoroutines); ok {
		t.Fatal("disabled registry recorded runtime gauges")
	}
}

func TestStartRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g, ok := r.Snapshot().GaugeValue(RuntimeGoroutines); ok && g > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never wrote the goroutine gauge")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // stop must be idempotent

	// Inert variants must not start goroutines or panic.
	StartRuntimeSampler(nil, time.Millisecond)()
	StartRuntimeSampler(Disabled(), time.Millisecond)()
	StartRuntimeSampler(r, 0)()
}
