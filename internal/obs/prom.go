package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry's current state in the Prometheus
// text exposition format (version 0.0.4): one `# TYPE` line per metric
// family, series sorted by name then labels, histograms expanded into
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return writePrometheus(w, r.Snapshot())
}

func writePrometheus(w io.Writer, snap Snapshot) error {
	type series struct {
		kind  string // "counter", "gauge", "histogram"
		lines []string
	}
	families := map[string]*series{}
	add := func(name, kind, line string) {
		f, ok := families[name]
		if !ok {
			f = &series{kind: kind}
			families[name] = f
		}
		f.lines = append(f.lines, line)
	}

	for _, c := range snap.Counters {
		add(c.Name, "counter", fmt.Sprintf("%s%s %d", c.Name, labelString(c.Labels, "", 0), c.Value))
	}
	for _, g := range snap.Gauges {
		add(g.Name, "gauge", fmt.Sprintf("%s%s %s", g.Name, labelString(g.Labels, "", 0), formatFloat(g.Value)))
	}
	for _, h := range snap.Histograms {
		for _, b := range h.Buckets {
			line := fmt.Sprintf("%s_bucket%s %d",
				h.Name, labelString(h.Labels, "le", b.UpperBound), b.Count)
			if b.Exemplar != nil {
				// OpenMetrics exemplar syntax (the timestamp is optional
				// and omitted so the exposition stays deterministic).
				line += fmt.Sprintf(" # {trace_id=\"%s\"} %s",
					b.Exemplar.TraceID, formatFloat(b.Exemplar.Value))
			}
			add(h.Name, "histogram", line)
		}
		add(h.Name, "histogram", fmt.Sprintf("%s_sum%s %s", h.Name, labelString(h.Labels, "", 0), formatFloat(h.Sum)))
		add(h.Name, "histogram", fmt.Sprintf("%s_count%s %d", h.Name, labelString(h.Labels, "", 0), h.Count))
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := families[name]
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		for _, line := range f.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// labelString renders {k1="v1",k2="v2"}, optionally appending an le
// label (used for histogram buckets). Returns "" when there are no
// labels at all.
func labelString(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		if math.IsInf(le, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
