// Package obs is the unified observability layer: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket latency
// histograms) plus lightweight span tracing. Every hot layer of the
// system — WAL appends and fsyncs, the staged commit pipeline, block
// closing, digest generation, verification phases and blobstore I/O —
// records into one Registry, which can be read three ways: a typed
// Snapshot, a Prometheus text-format dump, and a live HTTP endpoint
// (/metrics and /debug/spans).
//
// The paper's headline claims are quantitative (ledger overhead per
// transaction, digest latency, verification throughput), so the hot-path
// cost of measuring them must be negligible: metric handles are resolved
// once at open time (no map lookups on the hot path), recording is a few
// atomic operations, and a disabled Registry reduces every recording to
// a single predictable branch — the ablation baseline for measuring the
// instrumentation overhead itself.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {stage, sequence}.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefBuckets are the default latency buckets in seconds: 1µs to 10s,
// roughly logarithmic. They bracket everything from a single atomic
// append (sub-µs) to a full verification run (seconds).
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are power-of-two count buckets (group sizes, batch sizes).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing metric.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Int64
	on     bool
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || !c.on {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	name   string
	labels []Label
	v      atomicFloat
	on     bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on {
		return
	}
	g.v.Store(v)
}

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.on {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Observations are assigned to
// the first bucket whose upper bound is >= the value (Prometheus
// "le" semantics); an implicit +Inf bucket catches the rest.
type Histogram struct {
	name   string
	labels []Label
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Int64
	exem   []bucketExemplar // one per bucket, parallel to counts
	sum    atomicFloat
	on     bool
}

// bucketExemplar remembers the most recent traced observation that
// landed in its bucket — the link from a histogram bucket back to a
// full trace. Last write wins; each field is an independent atomic, so
// a concurrent reader can pair a value with a neighboring write's trace
// ID, which is acceptable for a debugging affordance.
type bucketExemplar struct {
	id    atomic.Uint64 // TraceID, 0 = none
	vbits atomic.Uint64 // float64 bits of the observed value
	tsns  atomic.Int64  // observation time, unix nanos
}

// Observe records one value. Every observation lands in exactly one
// (non-cumulative) bucket, so the total count is derived from the bucket
// counts at read time rather than maintained as a third atomic here.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || !h.on {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// ObserveTraced records one value and stamps the bucket's exemplar with
// the observing trace's ID, so /metrics links the bucket to a concrete
// trace. A zero id degrades to a plain Observe.
func (h *Histogram) ObserveTraced(v float64, id TraceID) {
	if h == nil || !h.on {
		return
	}
	if id == 0 {
		h.Observe(v)
		return
	}
	h.observeTraced(v, id, time.Now())
}

func (h *Histogram) observeTraced(v float64, id TraceID, now time.Time) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	if id != 0 {
		e := &h.exem[i]
		e.id.Store(uint64(id))
		e.vbits.Store(math.Float64bits(v))
		e.tsns.Store(now.UnixNano())
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// LapTimer measures consecutive stages of a pipeline with one clock
// read per stage boundary. The zero value (or one built from a disabled
// registry) records nothing and never reads the clock.
type LapTimer struct {
	on   bool
	last time.Time
}

// Lap observes the time since the previous lap (or construction) into h
// and restarts the clock.
func (t *LapTimer) Lap(h *Histogram) {
	if !t.on {
		return
	}
	now := time.Now()
	h.Observe(now.Sub(t.last).Seconds())
	t.last = now
}

// Skip restarts the clock without observing — for optional stages.
func (t *LapTimer) Skip() {
	if t.on {
		t.last = time.Now()
	}
}

// LapSpan is Lap plus tracing: the stage duration is observed into h
// (stamping the bucket exemplar with the trace ID) and recorded as a
// top-level child span on tr, all from a single clock read. Returns the
// new span's ID so callers can attach children (tr nil → plain Lap).
func (t *LapTimer) LapSpan(h *Histogram, tr *Trace, name string) SpanID {
	if !t.on {
		return 0
	}
	now := time.Now()
	d := now.Sub(t.last)
	var id SpanID
	if tr != nil {
		h.observeTraced(d.Seconds(), tr.ID(), now)
		id = tr.Record(name, 0, t.last, d)
	} else {
		h.Observe(d.Seconds())
	}
	t.last = now
	return id
}

// Registry is a named collection of metrics plus a span tracer. The nil
// Registry and the Disabled() registry are both valid: every metric they
// produce is inert, so instrumented code never branches on registry
// presence.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   *Tracer
	events   *EventLog
	traces   *TraceStore
	enabled  bool

	// runtime sampler state (see runtime.go)
	rtMu     sync.Mutex
	rtLastGC uint32
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   newTracer(defaultSpanRing, true),
		events:   newEventLog(defaultEventRing, true),
		enabled:  true,
	}
	r.traces = newTraceStore(r, true)
	return r
}

// Disabled returns a registry whose metrics, tracer and event log are
// inert. It is the metrics-off ablation baseline: recording costs one
// branch.
func Disabled() *Registry {
	r := NewRegistry()
	r.enabled = false
	r.tracer = newTracer(0, false)
	r.events = newEventLog(0, false)
	r.traces = newTraceStore(r, false)
	return r
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil && r.enabled }

// Timer starts a LapTimer bound to this registry's enabled state.
func (r *Registry) Timer() LapTimer {
	if !r.Enabled() {
		return LapTimer{}
	}
	return LapTimer{on: true, last: time.Now()}
}

// Tracer returns the registry's span tracer (inert for nil/disabled
// registries).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Events returns the registry's structured event log (inert for
// nil/disabled registries).
func (r *Registry) Events() *EventLog {
	if r == nil {
		return nil
	}
	return r.events
}

// Traces returns the registry's transaction trace store (inert for
// nil/disabled registries).
func (r *Registry) Traces() *TraceStore {
	if r == nil {
		return nil
	}
	return r.traces
}

// NewTrace starts a per-transaction trace, or returns nil when the
// registry is nil/disabled or tracing is turned off — a nil *Trace is
// safe everywhere downstream.
func (r *Registry) NewTrace(name string) *Trace {
	if r == nil {
		return nil
	}
	return r.traces.New(name)
}

// seriesKey identifies one (name, labels) series. Labels are sorted by
// key at registration so equivalent label sets collide.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter returns (creating if needed) the counter for (name, labels).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, labels: labels, on: r.enabled}
	r.counters[key] = c
	return c
}

// Gauge returns (creating if needed) the gauge for (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, labels: labels, on: r.enabled}
	r.gauges[key] = g
	return g
}

// Histogram returns (creating if needed) the histogram for (name,
// labels). buckets are ascending upper bounds in the observed unit; nil
// means DefBuckets. The first registration of a series fixes its
// buckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
		}
	}
	h := &Histogram{
		name:   name,
		labels: labels,
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
		exem:   make([]bucketExemplar, len(buckets)+1),
		on:     r.enabled,
	}
	r.hists[key] = h
	return h
}

// --- Snapshot ----------------------------------------------------------

// CounterSnapshot is one counter series at a point in time.
type CounterSnapshot struct {
	Name   string
	Labels []Label
	Value  int64
}

// GaugeSnapshot is one gauge series at a point in time.
type GaugeSnapshot struct {
	Name   string
	Labels []Label
	Value  float64
}

// BucketSnapshot is one cumulative histogram bucket: the count of
// observations <= UpperBound.
type BucketSnapshot struct {
	UpperBound float64 // math.Inf(1) for the +Inf bucket
	Count      int64
	// Exemplar is the most recent traced observation that landed in this
	// bucket's (non-cumulative) range, nil if none.
	Exemplar *Exemplar
}

// Exemplar links a histogram bucket to one concrete trace.
type Exemplar struct {
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	Time    time.Time `json:"time"`
}

// HistogramSnapshot is one histogram series at a point in time, with
// precomputed latency quantiles.
type HistogramSnapshot struct {
	Name          string
	Labels        []Label
	Count         int64
	Sum           float64
	P50, P95, P99 float64
	Buckets       []BucketSnapshot // cumulative, ending at +Inf
}

// Quantile estimates the q-quantile (0 < q < 1) from the cumulative
// buckets by linear interpolation within the bucket holding the target
// rank — the same estimate Prometheus's histogram_quantile computes.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	target := q * float64(h.Count)
	var prevCum int64
	prevBound := 0.0
	for _, b := range h.Buckets {
		if float64(b.Count) >= target {
			if math.IsInf(b.UpperBound, 1) {
				return prevBound // highest finite bound
			}
			in := b.Count - prevCum
			if in <= 0 {
				return b.UpperBound
			}
			frac := (target - float64(prevCum)) / float64(in)
			return prevBound + (b.UpperBound-prevBound)*frac
		}
		prevCum = b.Count
		if !math.IsInf(b.UpperBound, 1) {
			prevBound = b.UpperBound
		}
	}
	return prevBound
}

// Snapshot is a point-in-time copy of every metric in a registry, sorted
// by (name, labels) so output is deterministic.
type Snapshot struct {
	TakenAt    time.Time
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

// CounterValue sums the named counter across its label sets.
func (s Snapshot) CounterValue(name string) int64 {
	var v int64
	for _, c := range s.Counters {
		if c.Name == name {
			v += c.Value
		}
	}
	return v
}

// GaugeValue returns the named gauge (first label set) and whether it
// exists.
func (s Snapshot) GaugeValue(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// HistogramCount sums observation counts of the named histogram across
// its label sets.
func (s Snapshot) HistogramCount(name string) int64 {
	var v int64
	for _, h := range s.Histograms {
		if h.Name == name {
			v += h.Count
		}
	}
	return v
}

// Histogram returns the named histogram series with exactly the given
// labels.
func (s Snapshot) Histogram(name string, labels ...Label) (HistogramSnapshot, bool) {
	labels = sortLabels(labels)
	want := seriesKey(name, labels)
	for _, h := range s.Histograms {
		if seriesKey(h.Name, h.Labels) == want {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// Snapshot captures every metric. Values across metrics are not read
// atomically with respect to each other (the registry stays hot while
// being read), but each individual value is a consistent atomic read.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{TakenAt: time.Now()}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	for _, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: c.name, Labels: c.labels, Value: c.v.Load()})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: g.name, Labels: g.labels, Value: g.v.Load()})
	}
	for _, h := range hists {
		hs := HistogramSnapshot{Name: h.name, Labels: h.labels, Sum: h.sum.Load()}
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			bound := math.Inf(1)
			if i < len(h.bounds) {
				bound = h.bounds[i]
			}
			bs := BucketSnapshot{UpperBound: bound, Count: cum}
			if id := h.exem[i].id.Load(); id != 0 {
				bs.Exemplar = &Exemplar{
					TraceID: TraceID(id).String(),
					Value:   math.Float64frombits(h.exem[i].vbits.Load()),
					Time:    time.Unix(0, h.exem[i].tsns.Load()),
				}
			}
			hs.Buckets = append(hs.Buckets, bs)
		}
		hs.Count = cum
		hs.P50 = hs.Quantile(0.50)
		hs.P95 = hs.Quantile(0.95)
		hs.P99 = hs.Quantile(0.99)
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Counters, func(i, j int) bool {
		return seriesLess(snap.Counters[i].Name, snap.Counters[i].Labels, snap.Counters[j].Name, snap.Counters[j].Labels)
	})
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return seriesLess(snap.Gauges[i].Name, snap.Gauges[i].Labels, snap.Gauges[j].Name, snap.Gauges[j].Labels)
	})
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return seriesLess(snap.Histograms[i].Name, snap.Histograms[i].Labels, snap.Histograms[j].Name, snap.Histograms[j].Labels)
	})
	return snap
}

func seriesLess(an string, al []Label, bn string, bl []Label) bool {
	if an != bn {
		return an < bn
	}
	return seriesKey(an, al) < seriesKey(bn, bl)
}
