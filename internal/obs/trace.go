package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// defaultSpanRing is how many finished spans the tracer retains.
const defaultSpanRing = 512

// Span is an in-flight traced operation. Finish it exactly once.
// A nil Span (from a disabled tracer) is safe to finish.
type Span struct {
	tracer *Tracer
	name   string
	labels []Label
	start  time.Time
}

// SpanRecord is one finished span in the tracer's ring buffer.
type SpanRecord struct {
	Name     string        `json:"name"`
	Labels   []Label       `json:"labels,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Err      string        `json:"err,omitempty"`
}

// Tracer records finished spans into a fixed-size ring buffer so the
// most recent operations (block closes, digests, verification phases)
// can be inspected via /debug/spans without unbounded memory growth.
type Tracer struct {
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
	seq  atomic.Int64
	on   bool
}

func newTracer(size int, on bool) *Tracer {
	return &Tracer{ring: make([]SpanRecord, size), on: on && size > 0}
}

// Start begins a span. Returns nil when tracing is disabled; all Span
// methods tolerate a nil receiver.
func (t *Tracer) Start(name string, labels ...Label) *Span {
	if t == nil || !t.on {
		return nil
	}
	return &Span{tracer: t, name: name, labels: labels, start: time.Now()}
}

// Annotate appends key/value labels to the span before it finishes —
// for results only known at the end (blocks checked, rows reclaimed).
func (s *Span) Annotate(labels ...Label) {
	if s == nil {
		return
	}
	s.labels = append(s.labels, labels...)
}

// Finish records the span. err may be nil.
func (s *Span) Finish(err error) {
	if s == nil {
		return
	}
	rec := SpanRecord{
		Name:     s.name,
		Labels:   s.labels,
		Start:    s.start,
		Duration: time.Since(s.start),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	t := s.tracer
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
	t.seq.Add(1)
}

// Recorded returns the total number of spans finished since creation.
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Recent returns up to the last n finished spans, newest first.
// n <= 0 means the whole ring.
func (t *Tracer) Recent(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.full {
		size = len(t.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]SpanRecord, 0, n)
	// Walk backwards from the most recently written slot.
	for i := 1; i <= n; i++ {
		idx := t.next - i
		if idx < 0 {
			idx += len(t.ring)
		}
		out = append(out, t.ring[idx])
	}
	return out
}
