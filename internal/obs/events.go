package obs

import (
	"context"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// defaultEventRing is how many events the log retains for /debug/events.
const defaultEventRing = 1024

// Canonical ledger audit event types. These are the structured record of
// the ledger doing its job — blocks closing, digests leaving the trust
// boundary, verifications running — and are what an operator greps for
// in /debug/events or a downstream slog sink.
const (
	EventBlockClosed      = "block_closed"
	EventDigestGenerated  = "digest_generated"
	EventDigestUploaded   = "digest_uploaded"
	EventIncarnation      = "incarnation_assigned"
	EventVerifyStarted    = "verify_started"
	EventVerifyFinished   = "verify_finished"
	EventVerifyIssue      = "verify_issue"
	EventRecoveryReplay   = "recovery_replayed"
	EventWALCheckpoint    = "wal_checkpoint"
	EventWALTornTail      = "wal_torn_tail_truncated"
	EventBlobstoreError   = "blobstore_error"
	EventHealthChanged    = "health_changed"
	EventSuperBlockClosed = "superblock_closed"
	EventCrossShardCommit = "cross_shard_commit"
	EventAuditPassStart   = "audit_pass_started"
	EventAuditPassFinish  = "audit_pass_finished"
	EventTamperLocalized  = "tamper_localized"
	EventSlowQuery        = "slow_query"
)

// EventAttr is one key/value attribute of an event.
type EventAttr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Event is one structured audit record.
type Event struct {
	Seq   int64       `json:"seq"`
	Time  time.Time   `json:"time"`
	Level slog.Level  `json:"level"`
	Type  string      `json:"type"`
	Attrs []EventAttr `json:"attrs,omitempty"`
}

// EventLog is a leveled, bounded structured event log. Events land in a
// fixed-size ring (served at /debug/events) and are optionally mirrored
// to a slog.Logger for durable/external logging. Like the rest of the
// obs package it is dependency-free, safe for concurrent use, and a nil
// or disabled EventLog makes every emit a single branch.
type EventLog struct {
	on   bool
	mu   sync.Mutex
	ring []Event
	next int
	full bool
	seq  atomic.Int64
	out  atomic.Pointer[slog.Logger]
}

func newEventLog(size int, on bool) *EventLog {
	return &EventLog{ring: make([]Event, size), on: on && size > 0}
}

// SetLogger mirrors every event to lg (in addition to the ring). Pass
// nil to stop mirroring.
func (e *EventLog) SetLogger(lg *slog.Logger) {
	if e == nil {
		return
	}
	e.out.Store(lg)
}

// Enabled reports whether the log records anything.
func (e *EventLog) Enabled() bool { return e != nil && e.on }

// Info emits an informational event. kv are alternating key/value pairs.
func (e *EventLog) Info(typ string, kv ...any) { e.emit(slog.LevelInfo, typ, kv) }

// Warn emits a warning event.
func (e *EventLog) Warn(typ string, kv ...any) { e.emit(slog.LevelWarn, typ, kv) }

// Error emits an error event.
func (e *EventLog) Error(typ string, kv ...any) { e.emit(slog.LevelError, typ, kv) }

func (e *EventLog) emit(level slog.Level, typ string, kv []any) {
	if e == nil || !e.on {
		return
	}
	ev := Event{
		Seq:   e.seq.Add(1),
		Time:  time.Now(),
		Level: level,
		Type:  typ,
		Attrs: pairAttrs(kv),
	}
	e.mu.Lock()
	e.ring[e.next] = ev
	e.next++
	if e.next == len(e.ring) {
		e.next = 0
		e.full = true
	}
	e.mu.Unlock()
	if lg := e.out.Load(); lg != nil {
		lg.Log(context.Background(), level, typ, kv...)
	}
}

// pairAttrs converts alternating key/value arguments into attrs,
// following slog's convention for a dangling value.
func pairAttrs(kv []any) []EventAttr {
	if len(kv) == 0 {
		return nil
	}
	attrs := make([]EventAttr, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		if i+1 >= len(kv) {
			attrs = append(attrs, EventAttr{Key: "!BADKEY", Value: kv[i]})
			break
		}
		key, ok := kv[i].(string)
		if !ok {
			key = "!BADKEY"
		}
		attrs = append(attrs, EventAttr{Key: key, Value: kv[i+1]})
	}
	return attrs
}

// Recorded returns the total number of events emitted since creation
// (including those already evicted from the ring).
func (e *EventLog) Recorded() int64 {
	if e == nil {
		return 0
	}
	return e.seq.Load()
}

// Recent returns up to the last n events, newest first. n <= 0 means
// the whole ring.
func (e *EventLog) Recent(n int) []Event {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	size := e.next
	if e.full {
		size = len(e.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := 1; i <= n; i++ {
		idx := e.next - i
		if idx < 0 {
			idx += len(e.ring)
		}
		out = append(out, e.ring[idx])
	}
	return out
}

// RecentOfType returns up to the last n events of the given type,
// newest first. n <= 0 means no limit (bounded by the ring).
func (e *EventLog) RecentOfType(typ string, n int) []Event {
	all := e.Recent(0)
	var out []Event
	for _, ev := range all {
		if ev.Type != typ {
			continue
		}
		out = append(out, ev)
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}
