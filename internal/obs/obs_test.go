package obs

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

// Observations must land in the first bucket whose upper bound is >= v
// (Prometheus le semantics: bounds are inclusive).
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})

	cases := []struct {
		v    float64
		want []int64 // cumulative counts for le=1,2,4,+Inf after this obs alone
	}{
		{0.5, []int64{1, 1, 1, 1}},
		{1, []int64{1, 1, 1, 1}}, // exactly on a bound -> inclusive
		{1.5, []int64{0, 1, 1, 1}},
		{2, []int64{0, 1, 1, 1}},
		{4, []int64{0, 0, 1, 1}},
		{4.0001, []int64{0, 0, 0, 1}}, // past the last bound -> +Inf only
		{100, []int64{0, 0, 0, 1}},
	}
	var cum []int64 = make([]int64, 4)
	for _, c := range cases {
		h.Observe(c.v)
		for i := range cum {
			cum[i] += c.want[i]
		}
		hs, ok := r.Snapshot().Histogram("h")
		if !ok {
			t.Fatal("histogram missing from snapshot")
		}
		for i, b := range hs.Buckets {
			if b.Count != cum[i] {
				t.Fatalf("after Observe(%v): bucket %d = %d, want %d", c.v, i, b.Count, cum[i])
			}
		}
	}
	hs, _ := r.Snapshot().Histogram("h")
	if hs.Count != int64(len(cases)) {
		t.Fatalf("Count = %d, want %d", hs.Count, len(cases))
	}
	if !math.IsInf(hs.Buckets[len(hs.Buckets)-1].UpperBound, 1) {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 20, 40})
	// 100 observations uniform in (0,10]: p50 should interpolate to ~5.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	hs, _ := r.Snapshot().Histogram("q")
	if got := hs.Quantile(0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5 (linear interpolation within [0,10])", got)
	}
	// Push 100 more into (20,40]; p99 lands in that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(30)
	}
	hs, _ = r.Snapshot().Histogram("q")
	p99 := hs.Quantile(0.99)
	if p99 <= 20 || p99 > 40 {
		t.Fatalf("p99 = %v, want in (20,40]", p99)
	}
	if hs.P50 == 0 || hs.P95 == 0 || hs.P99 != p99 {
		t.Fatalf("precomputed quantiles not populated: %+v", hs)
	}
}

// Same-name+labels lookups must return the same series; label order must
// not matter.
func TestRegistrySeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", L("x", "1"), L("y", "2"))
	b := r.Counter("c", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order created distinct series")
	}
	if r.Counter("c", L("x", "1")) == a {
		t.Fatal("different label sets collided")
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc")
	g := r.Gauge("gauge")
	h := r.Histogram("hist", []float64{0.5, 1})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); math.Abs(got-0.25*workers*per) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, 0.25*workers*per)
	}
}

// Disabled registries and nil handles must be inert and crash-free.
func TestDisabledAndNil(t *testing.T) {
	d := Disabled()
	c := d.Counter("c")
	c.Inc()
	d.Gauge("g").Set(5)
	d.Histogram("h", nil).Observe(1)
	snap := d.Snapshot()
	if v := snap.CounterValue("c"); v != 0 {
		t.Fatalf("disabled counter recorded %d", v)
	}
	sp := d.Tracer().Start("op")
	sp.Finish(nil)
	if n := d.Tracer().Recorded(); n != 0 {
		t.Fatalf("disabled tracer recorded %d spans", n)
	}
	lt := d.Timer()
	lt.Lap(d.Histogram("h", nil)) // must not read the clock or panic

	var nilReg *Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("x").Set(1)
	nilReg.Histogram("x", nil).Observe(1)
	nilReg.Tracer().Start("x").Finish(errors.New("e"))
	_ = nilReg.Snapshot()
	if nilReg.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
}

func TestTracerRing(t *testing.T) {
	tr := newTracer(4, true)
	for i := 0; i < 6; i++ {
		sp := tr.Start("op", L("i", string(rune('a'+i))))
		time.Sleep(time.Millisecond)
		if i%2 == 0 {
			sp.Finish(errors.New("boom"))
		} else {
			sp.Finish(nil)
		}
	}
	if tr.Recorded() != 6 {
		t.Fatalf("Recorded = %d, want 6", tr.Recorded())
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(recent))
	}
	// Newest first: last finished span had i=5 -> label "f", no error.
	if recent[0].Labels[0].Value != "f" || recent[0].Err != "" {
		t.Fatalf("unexpected newest span: %+v", recent[0])
	}
	if recent[1].Err != "boom" {
		t.Fatalf("expected error on second-newest span: %+v", recent[1])
	}
	if got := tr.Recent(2); len(got) != 2 {
		t.Fatalf("Recent(2) returned %d", len(got))
	}
	for _, sp := range recent {
		if sp.Duration <= 0 {
			t.Fatalf("span without duration: %+v", sp)
		}
	}
}

// Observations above the top finite bound must land only in the implicit
// +Inf bucket, and quantiles that fall there must cap at the highest
// finite bound rather than extrapolating to infinity.
func TestHistogramAboveTopBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("top", []float64{1, 2})
	for _, v := range []float64{0.5, 2, 5, 500} {
		h.Observe(v)
	}
	hs, ok := r.Snapshot().Histogram("top")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 4 {
		t.Fatalf("Count = %d, want 4", hs.Count)
	}
	if got := hs.Sum; got != 507.5 {
		t.Fatalf("Sum = %v, want 507.5", got)
	}
	// Cumulative: le=1 -> 1, le=2 -> 2, +Inf -> 4.
	wantCum := []int64{1, 2, 4}
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if got := hs.Quantile(0.99); got != 2 {
		t.Fatalf("p99 = %v, want 2 (capped at highest finite bound)", got)
	}
	if got := hs.Quantile(0.25); got != 1 {
		t.Fatalf("p25 = %v, want 1", got)
	}
}

// A ring overwritten more than twice must still report totals and return
// the newest spans in order.
func TestTracerRingWraparound(t *testing.T) {
	tr := newTracer(4, true)
	for i := 0; i < 10; i++ {
		tr.Start("op", L("i", string(rune('a'+i)))).Finish(nil)
	}
	if tr.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", tr.Recorded())
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(recent))
	}
	// Newest first: i=9 ("j") down to i=6 ("g").
	for i, sp := range recent {
		if want := string(rune('j' - i)); sp.Labels[0].Value != want {
			t.Fatalf("recent[%d] label = %q, want %q", i, sp.Labels[0].Value, want)
		}
	}
	if got := tr.Recent(100); len(got) != 4 {
		t.Fatalf("Recent(100) returned %d spans", len(got))
	}
}

func TestLapTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("laps", nil)
	lt := r.Timer()
	time.Sleep(2 * time.Millisecond)
	lt.Lap(h)
	lt.Skip()
	lt.Lap(h)
	hs, _ := r.Snapshot().Histogram("laps")
	if hs.Count != 2 {
		t.Fatalf("lap count = %d, want 2", hs.Count)
	}
	if hs.Sum < 0.002 {
		t.Fatalf("lap sum = %v, want >= 2ms", hs.Sum)
	}
}
