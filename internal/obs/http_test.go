package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerMetricsAndSpans(t *testing.T) {
	r := NewRegistry()
	r.Counter("sqlledger_http_test_total").Add(3)
	sp := r.Tracer().Start("close_block", L("block", "1"))
	sp.Finish(nil)

	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(string(body), "sqlledger_http_test_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/spans?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "close_block" {
		t.Fatalf("unexpected spans: %+v", spans)
	}
}
