package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerMetricsAndSpans(t *testing.T) {
	r := NewRegistry()
	r.Counter("sqlledger_http_test_total").Add(3)
	sp := r.Tracer().Start("close_block", L("block", "1"))
	sp.Finish(nil)

	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(string(body), "sqlledger_http_test_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/debug/spans?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "close_block" {
		t.Fatalf("unexpected spans: %+v", spans)
	}
}

func TestServerEventsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Events().Info(EventBlockClosed, "block", 1)
	r.Events().Warn(EventVerifyIssue, "invariant", "I3")
	r.Events().Info(EventBlockClosed, "block", 2)

	srv, err := StartServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s decode: %v", path, err)
		}
	}

	var events []Event
	getJSON("/debug/events", &events)
	if len(events) != 3 || events[0].Type != EventBlockClosed || events[0].Seq != 3 {
		t.Fatalf("unexpected events: %+v", events)
	}
	var limited []Event
	getJSON("/debug/events?n=1", &limited)
	if len(limited) != 1 || limited[0].Seq != 3 {
		t.Fatalf("n=1 returned %+v", limited)
	}
	var filtered []Event
	getJSON("/debug/events?type="+EventVerifyIssue, &filtered)
	if len(filtered) != 1 || filtered[0].Type != EventVerifyIssue {
		t.Fatalf("type filter returned %+v", filtered)
	}

	// pprof must be mounted; the index page is cheap to fetch.
	resp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %q", resp.StatusCode, body)
	}
}
