package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden test for the Prometheus text exposition format. All observed
// values are integral so float formatting is exact and deterministic.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sqlledger_test_commits_total").Add(42)
	r.Counter("sqlledger_test_ops_total", L("op", "put")).Add(7)
	r.Counter("sqlledger_test_ops_total", L("op", "get")).Add(3)
	r.Gauge("sqlledger_test_queue_length").Set(5)
	h := r.Histogram("sqlledger_test_stage_seconds", []float64{1, 2, 4}, L("stage", "apply"))
	for _, v := range []float64{1, 1, 2, 3, 8} {
		h.Observe(v)
	}
	r.Histogram("sqlledger_test_empty_seconds", []float64{1})
	r.Gauge("sqlledger_test_escaped", L("path", `C:\data "hot"`)).Set(1)
	// Only the implicit +Inf bucket receives these observations.
	over := r.Histogram("sqlledger_test_over_seconds", []float64{1, 2})
	over.Observe(16)
	over.Observe(32)
	// The PR-4 operational names render like any other series.
	r.Gauge(HealthStatus).Set(1)
	r.Gauge(VerifyProgressRatio).Set(0.5)
	r.Counter(RuntimeGCTotal).Add(9)
	// The PR-5 ingest fast-path names.
	r.Counter(RowsHashedTotal).Add(3000)
	hb := r.Histogram(HashBatchSize, []float64{1, 16, 64, 256, 1024, 4096})
	hb.Observe(500)
	hb.Observe(1000)
	hb.Observe(1000)
	// The PR-6 MVCC read-path names.
	r.Counter(SnapshotReadsTotal).Add(1200)
	r.Gauge(VersionsLive).Set(84)
	r.Counter(VersionGCReclaimedTotal).Add(16)
	lag := r.Histogram(ReadSnapshotLagSeconds, []float64{1, 2, 4})
	lag.Observe(1)
	lag.Observe(3)
	// The PR-8 always-on auditor names.
	r.Gauge(VerifiedThroughBlock).Set(41)
	r.Gauge(AuditLagSeconds).Set(2)
	r.Counter(AuditCyclesTotal).Add(12)
	r.Counter(AuditBlocksCheckedTotal, L("mode", "incremental")).Add(40)
	r.Counter(AuditBlocksCheckedTotal, L("mode", "sampled")).Add(8)
	cyc := r.Histogram(AuditCycleSeconds, []float64{1, 2})
	cyc.Observe(1)
	// The PR-10 recovery and checkpoint names.
	r.Counter(RecoveryRecordsReplayedTotal).Add(50000)
	rec := r.Histogram(RecoverySeconds, []float64{1, 2, 4}, L("phase", "replay"))
	rec.Observe(2)
	cp := r.Histogram(CheckpointSeconds, []float64{1, 2})
	cp.Observe(1)
	qz := r.Histogram(CheckpointQuiesceSeconds, []float64{1})
	qz.Observe(0)
	// The PR-9 tracing names: traced observations stamp their bucket
	// with an OpenMetrics exemplar carrying the trace ID.
	ex := r.Histogram("sqlledger_test_traced_seconds", []float64{1, 2, 4})
	ex.ObserveTraced(1, TraceID(0xabcdef0123456789))
	ex.ObserveTraced(3, TraceID(0x1122334455667788))
	ex.Observe(2) // untraced: must not disturb its bucket's exemplar

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus output mismatch\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
