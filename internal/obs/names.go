package obs

// Canonical metric names. Instrumented packages and tests share these
// constants so the exposition surface is greppable in one place.
const (
	// WAL (internal/wal)
	WALFsyncTotal        = "sqlledger_wal_fsync_total"
	WALFsyncSeconds      = "sqlledger_wal_fsync_seconds"
	WALFlushTotal        = "sqlledger_wal_flush_total"
	WALAppendRecords     = "sqlledger_wal_append_records_total"
	WALAppendBytes       = "sqlledger_wal_append_bytes_total"
	WALGroupCommits      = "sqlledger_wal_group_commits_total"
	WALGroups            = "sqlledger_wal_groups_total"
	WALGroupRecords      = "sqlledger_wal_group_records_total"
	WALGroupSize         = "sqlledger_wal_group_size"
	WALGroupFlushSeconds = "sqlledger_wal_group_flush_seconds"

	// Engine commit pipeline (internal/engine)
	EngineCommitTotal   = "sqlledger_engine_commit_total"
	EngineRollbackTotal = "sqlledger_engine_rollback_total"
	CommitStageSeconds  = "sqlledger_commit_stage_seconds" // label: stage
	LockWaitSeconds     = "sqlledger_lock_wait_seconds"
	LockTimeoutTotal    = "sqlledger_lock_timeout_total"

	// Engine MVCC read path (internal/engine/readtx.go).
	// SnapshotReadsTotal counts rows returned by snapshot (read-only)
	// transactions; VersionsLive tracks stored row versions, live and
	// superseded; VersionGCReclaimedTotal counts versions reclaimed by the
	// background GC; ReadSnapshotLagSeconds observes, at read-tx close,
	// how far the applied-commit watermark advanced past the pinned
	// snapshot while it was held (zero on an idle database).
	SnapshotReadsTotal      = "sqlledger_snapshot_reads_total"
	VersionsLive            = "sqlledger_versions_live"
	VersionGCReclaimedTotal = "sqlledger_version_gc_reclaimed_total"
	ReadSnapshotLagSeconds  = "sqlledger_read_snapshot_lag_seconds"

	// Ledger core (internal/core)
	// RowsHashedTotal counts row versions hashed on the DML ingest path
	// (inserts, updates, deletes and batched ingest; verification's
	// re-hashing is not counted). HashBatchSize observes the row count of
	// each InsertBatch call.
	RowsHashedTotal       = "sqlledger_rows_hashed_total"
	HashBatchSize         = "sqlledger_hash_batch_size"
	BlocksClosedTotal     = "sqlledger_blocks_closed_total"
	BlockCloseSeconds     = "sqlledger_block_close_seconds"
	LedgerQueueLength     = "sqlledger_ledger_queue_length"
	DigestTotal           = "sqlledger_digest_total"
	DigestGenerateSeconds = "sqlledger_digest_generate_seconds"
	DigestUploadTotal     = "sqlledger_digest_upload_total"
	DigestUploadSeconds   = "sqlledger_digest_upload_seconds"
	VerifyTotal           = "sqlledger_verify_total"
	VerifyIssuesTotal     = "sqlledger_verify_issues_total"
	VerifyPhaseSeconds    = "sqlledger_verify_phase_seconds" // label: phase
	VerifyProgressRatio   = "sqlledger_verify_progress_ratio"

	// Sharded ledger (internal/core/shard.go, superblock.go). Per-shard
	// series carry a shard="NNN" label. ShardImbalanceRatio is
	// max(per-shard rows)/mean(per-shard rows) since open — 1.0 is a
	// perfectly balanced hash partition.
	ShardCommitsTotal      = "sqlledger_shard_commits_total"
	ShardIngestRowsTotal   = "sqlledger_shard_ingest_rows_total"
	ShardImbalanceRatio    = "sqlledger_shard_imbalance_ratio"
	CrossShardTxTotal      = "sqlledger_cross_shard_tx_total"
	SuperblockCloseSeconds = "sqlledger_superblock_close_seconds"
	SuperblocksClosedTotal = "sqlledger_superblocks_closed_total"

	// Always-on auditor (internal/core/auditor.go).
	// VerifiedThroughBlock is the persisted verification watermark: the
	// highest block whose chain invariants the auditor has re-verified.
	// AuditLagSeconds is how long ago the last audit cycle completed
	// (refreshed per cycle and per health check). AuditBlocksCheckedTotal
	// carries mode="incremental" for delta blocks and mode="sampled" for
	// cold-history sweeps.
	VerifiedThroughBlock    = "sqlledger_verified_through_block"
	AuditLagSeconds         = "sqlledger_audit_lag_seconds"
	AuditCyclesTotal        = "sqlledger_audit_cycles_total"
	AuditBlocksCheckedTotal = "sqlledger_audit_blocks_checked_total" // label: mode
	AuditCycleSeconds       = "sqlledger_audit_cycle_seconds"

	// Health (internal/core): 0 healthy, 1 degraded, 2 unhealthy.
	HealthStatus = "sqlledger_health_status"

	// Go runtime (internal/obs/runtime.go)
	RuntimeGoroutines     = "sqlledger_runtime_goroutines"
	RuntimeHeapAllocBytes = "sqlledger_runtime_heap_alloc_bytes"
	RuntimeHeapSysBytes   = "sqlledger_runtime_heap_sys_bytes"
	RuntimeGCTotal        = "sqlledger_runtime_gc_total"
	RuntimeGCPauseSeconds = "sqlledger_runtime_gc_pause_seconds"

	// Blobstore I/O (internal/blobstore), labelled op=put|get|list
	BlobstoreOpsTotal    = "sqlledger_blobstore_ops_total"
	BlobstoreOpSeconds   = "sqlledger_blobstore_op_seconds"
	BlobstoreErrorsTotal = "sqlledger_blobstore_errors_total"
	BlobstoreBytesTotal  = "sqlledger_blobstore_bytes_total"

	// Workload driver (internal/workload)
	WorkloadCommitsTotal = "sqlledger_workload_commits_total"
	WorkloadErrorsTotal  = "sqlledger_workload_errors_total"

	// Recovery and checkpointing (internal/engine).
	// RecoverySeconds observes the phases of crash recovery (label:
	// phase=snapshot|replay|install); RecoveryRecordsReplayedTotal counts
	// WAL records scanned by redo. CheckpointSeconds is the end-to-end
	// checkpoint duration; CheckpointQuiesceSeconds is just the window
	// the global quiesce lock was held to pin the cut — the part writers
	// actually wait for.
	RecoverySeconds              = "sqlledger_recovery_seconds" // label: phase
	RecoveryRecordsReplayedTotal = "sqlledger_recovery_records_replayed_total"
	CheckpointSeconds            = "sqlledger_checkpoint_seconds"
	CheckpointQuiesceSeconds     = "sqlledger_checkpoint_quiesce_seconds"

	// Transaction tracing (internal/obs/txtrace.go).
	// TracesTotal counts finished traces by retention decision
	// (decision=slow|error|sampled|dropped). StatementSeconds observes
	// end-to-end latency per statement fingerprint (label: stmt) and
	// carries trace exemplars, as does CommitStageSeconds.
	TracesTotal      = "sqlledger_traces_total"      // label: decision
	StatementSeconds = "sqlledger_statement_seconds" // label: stmt
)
