package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A minimal parser for the Prometheus text format plus the OpenMetrics
// exemplar suffix this package emits. It exists so the golden file is
// checked as *parseable telemetry*, not just as frozen bytes: every
// line must round-trip through the parsed form unchanged, and every
// exemplar must carry a well-formed trace ID that a reader could feed
// to /debug/trace?id=.

type promLine struct {
	name    string // metric or family name; "" for a TYPE line
	typ     string // set for "# TYPE" lines
	labels  string // raw {...} label block, "" if none
	value   string
	exemID  string // exemplar trace_id, "" if none
	exemVal string
}

func (p promLine) render() string {
	if p.typ != "" {
		return fmt.Sprintf("# TYPE %s %s", p.name, p.typ)
	}
	s := p.name + p.labels + " " + p.value
	if p.exemID != "" {
		s += fmt.Sprintf(" # {trace_id=%q} %s", p.exemID, p.exemVal)
	}
	return s
}

func parsePromLine(t *testing.T, line string) promLine {
	t.Helper()
	if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
		name, typ, ok := strings.Cut(rest, " ")
		if !ok {
			t.Fatalf("malformed TYPE line %q", line)
		}
		switch typ {
		case "counter", "gauge", "histogram":
		default:
			t.Fatalf("unknown family type %q in %q", typ, line)
		}
		return promLine{name: name, typ: typ}
	}

	series, exem, hasExem := strings.Cut(line, " # ")
	var p promLine
	if i := strings.IndexByte(series, '{'); i >= 0 {
		j := strings.LastIndexByte(series, '}')
		if j < i {
			t.Fatalf("unbalanced label block in %q", line)
		}
		p.name, p.labels, p.value = series[:i], series[i:j+1], strings.TrimSpace(series[j+1:])
	} else {
		name, val, ok := strings.Cut(series, " ")
		if !ok {
			t.Fatalf("malformed series line %q", line)
		}
		p.name, p.value = name, val
	}
	if p.value == "" || strings.ContainsAny(p.value, " ") {
		t.Fatalf("malformed value in %q", line)
	}

	if hasExem {
		// OpenMetrics exemplar: {trace_id="<16 hex>"} <value>
		labels, val, ok := strings.Cut(exem, "} ")
		if !ok || !strings.HasPrefix(labels, `{trace_id="`) || !strings.HasSuffix(labels, `"`) {
			t.Fatalf("malformed exemplar in %q", line)
		}
		p.exemID = strings.TrimSuffix(strings.TrimPrefix(labels, `{trace_id="`), `"`)
		p.exemVal = val
		if _, err := ParseTraceID(p.exemID); err != nil {
			t.Fatalf("exemplar trace id in %q: %v", line, err)
		}
		if len(p.exemID) != 16 {
			t.Fatalf("exemplar trace id %q is not 16 hex digits", p.exemID)
		}
	}
	return p
}

// TestPrometheusExemplarRoundTrip parses the golden exposition and
// re-renders it byte-for-byte, proving the exemplar syntax survives a
// parse/print cycle; it also pins down which buckets carry exemplars.
func TestPrometheusExemplarRoundTrip(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "prom.golden"))
	if err != nil {
		t.Fatal(err)
	}
	exemplars := map[string]string{} // "name{labels}" -> trace id
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		p := parsePromLine(t, line)
		if got := p.render(); got != line {
			t.Fatalf("round trip changed line:\n got %q\nwant %q", got, line)
		}
		if p.exemID != "" {
			if !strings.HasSuffix(p.name, "_bucket") {
				t.Fatalf("exemplar on non-bucket series %q", line)
			}
			exemplars[p.name+p.labels] = p.exemID
		}
	}

	// The fixture's traced observations must surface on exactly the
	// buckets their values fall into, with the IDs they were given.
	want := map[string]string{
		`sqlledger_test_traced_seconds_bucket{le="1"}`: TraceID(0xabcdef0123456789).String(),
		`sqlledger_test_traced_seconds_bucket{le="4"}`: TraceID(0x1122334455667788).String(),
	}
	for series, id := range want {
		if exemplars[series] != id {
			t.Fatalf("exemplar for %s = %q, want %q (all: %v)", series, exemplars[series], id, exemplars)
		}
	}
	if id, ok := exemplars[`sqlledger_test_traced_seconds_bucket{le="2"}`]; ok {
		t.Fatalf("untraced bucket grew an exemplar %q", id)
	}
}

// TestExemplarLiveRegistry checks the exemplar path end to end on a
// fresh registry: ObserveTraced stamps the bucket, and the rendered
// exposition parses back to the same trace ID.
func TestExemplarLiveRegistry(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sqlledger_live_seconds", []float64{1})
	id := TraceID(0xdeadbeefcafef00d)
	h.ObserveTraced(0.5, id)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		p := parsePromLine(t, line)
		if p.exemID == "" {
			continue
		}
		got, err := ParseTraceID(p.exemID)
		if err != nil {
			t.Fatal(err)
		}
		if got == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace id %s not reachable from exposition:\n%s", id, sb.String())
	}
}
