package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Hierarchical per-transaction tracing. Every transaction gets a Trace
// (a TraceID plus a tree of child spans); the layers it passes through —
// sql, engine lock/hash/WAL-encode, the WAL group committer, apply —
// each record where the time went. Retention is tail-based: the decision
// to keep a trace is made at Finish, when its duration and outcome are
// known. Slow and failed traces are always kept (and surface as
// slow_query events and /debug/slow entries); fast traces are kept with
// a small sampling probability so the ring always holds representative
// baseline traces too. Kept traces are reachable by ID via /debug/trace
// and from histogram exemplars in /metrics.

// Span names used on the transaction commit path. Shared constants so
// tests and the waterfall renderer agree with the instrumented layers.
const (
	SpanLockWait       = "lock_wait"       // accumulated 2PL lock acquisition waits
	SpanRowHash        = "row_hash"        // accumulated per-row ledger hashing
	SpanWALEncode      = "wal_encode"      // WAL record encoding into the commit arena
	SpanCommitSequence = "commit_sequence" // ordinal assignment + ledger entry build
	SpanCommitPublish  = "commit_publish"  // handoff to the group committer
	SpanCommitWait     = "commit_wait"     // waiting for the group's durability
	SpanWALGroupForm   = "wal_group_form"  // enqueue → group flush start (child of commit_wait)
	SpanWALFlush       = "wal_flush"       // group append + fsync (child of commit_wait)
	SpanCommitApply    = "commit_apply"    // version-chain apply + lock release
	SpanShardPrepare   = "shard_prepare"   // 2PC phase one on one shard
	SpanShardDecide    = "2pc_decide"      // coordinator decision-log write
	SpanShardCommit    = "shard_commit"    // 2PC phase two on one shard
	SpanStatement      = "statement"       // one SQL statement inside the session
)

// Trace attribute keys with shared meaning.
const (
	AttrStatement = "statement" // statement fingerprint, e.g. "INSERT accounts"
	AttrTables    = "tables"    // comma-joined tables the transaction touched
	AttrRows      = "rows"      // rows touched (decimal string)
)

// TraceID identifies one trace; rendered as 16 lowercase hex digits.
// The zero ID means "no trace".
type TraceID uint64

func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q", s)
	}
	return TraceID(v), nil
}

// SpanID identifies a span within its trace (index+1). The zero SpanID
// names the trace's implicit root span: passing it as a parent makes a
// top-level child, so top-level children partition the root's duration.
type SpanID int32

// maxTraceSpans bounds one trace's span count so a pathological
// transaction (a million-row batch) cannot balloon memory; overflow is
// counted and reported on the retained record instead.
const maxTraceSpans = 192

// TraceSpan is one finished span inside a trace.
type TraceSpan struct {
	ID       SpanID        `json:"id"`
	Parent   SpanID        `json:"parent"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	// Count > 1 marks an accumulator span: Duration is the sum of Count
	// contributions (e.g. every lock wait in the transaction).
	Count int64   `json:"count,omitempty"`
	Attrs []Label `json:"attrs,omitempty"`
	Err   string  `json:"err,omitempty"`
}

// Trace is an in-flight transaction trace. All methods tolerate a nil
// receiver (tracing disabled), so instrumented code never branches on
// registry presence. A Trace is pooled: after Finish it must not be
// touched again.
type Trace struct {
	store *TraceStore
	id    TraceID
	name  string
	start time.Time

	mu      sync.Mutex
	spans   []TraceSpan
	attrs   []Label
	dropped int
}

// ID returns the trace's ID (zero for nil).
func (tr *Trace) ID() TraceID {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Start returns when the trace began.
func (tr *Trace) Start() time.Time {
	if tr == nil {
		return time.Time{}
	}
	return tr.start
}

// Record appends a finished span with explicit timing. parent 0 makes a
// top-level child of the root. Returns the new span's ID (0 if the
// trace is nil or full).
func (tr *Trace) Record(name string, parent SpanID, start time.Time, dur time.Duration, attrs ...Label) SpanID {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.spans) >= maxTraceSpans {
		tr.dropped++
		return 0
	}
	id := SpanID(len(tr.spans) + 1)
	tr.spans = append(tr.spans, TraceSpan{
		ID: id, Parent: parent, Name: name, Start: start, Duration: dur, Attrs: attrs,
	})
	return id
}

// RecordErr is Record for a span that failed.
func (tr *Trace) RecordErr(name string, parent SpanID, start time.Time, dur time.Duration, err error) SpanID {
	id := tr.Record(name, parent, start, dur)
	if id != 0 && err != nil {
		tr.mu.Lock()
		tr.spans[id-1].Err = err.Error()
		tr.mu.Unlock()
	}
	return id
}

// AddTimed folds one contribution into the named top-level accumulator
// span, creating it on first use. Repeated operations (per-row hashing,
// per-key lock waits) stay one span per trace instead of one per call.
func (tr *Trace) AddTimed(name string, start time.Time, dur time.Duration) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.spans {
		if tr.spans[i].Count > 0 && tr.spans[i].Name == name {
			tr.spans[i].Duration += dur
			tr.spans[i].Count++
			return
		}
	}
	if len(tr.spans) >= maxTraceSpans {
		tr.dropped++
		return
	}
	id := SpanID(len(tr.spans) + 1)
	tr.spans = append(tr.spans, TraceSpan{
		ID: id, Parent: 0, Name: name, Start: start, Duration: dur, Count: 1,
	})
}

// Annotate appends key/value attributes to span id (0 = the trace
// itself).
func (tr *Trace) Annotate(id SpanID, attrs ...Label) {
	if tr == nil || len(attrs) == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if id == 0 {
		tr.attrs = append(tr.attrs, attrs...)
		return
	}
	if int(id) <= len(tr.spans) {
		tr.spans[id-1].Attrs = append(tr.spans[id-1].Attrs, attrs...)
	}
}

// SetAttr sets a trace-level attribute, replacing an earlier value for
// the same key (a retried statement overwrites, not duplicates).
func (tr *Trace) SetAttr(key, value string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for i := range tr.attrs {
		if tr.attrs[i].Key == key {
			tr.attrs[i].Value = value
			return
		}
	}
	tr.attrs = append(tr.attrs, Label{Key: key, Value: value})
}

// Attr returns the trace-level attribute for key ("" if unset).
func (tr *Trace) Attr(key string) string {
	if tr == nil {
		return ""
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, a := range tr.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Finish ends the trace, applies the tail-sampling retention decision,
// and returns the trace to the pool. The *Trace must not be used after.
func (tr *Trace) Finish(err error) {
	if tr == nil {
		return
	}
	tr.store.finish(tr, time.Since(tr.start), err)
}

// TraceRecord is one retained (finished) trace.
type TraceRecord struct {
	ID       string        `json:"id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	// Decision records why the trace was kept: "slow", "error" or
	// "sampled".
	Decision string      `json:"decision"`
	Err      string      `json:"err,omitempty"`
	Attrs    []Label     `json:"attrs,omitempty"`
	Spans    []TraceSpan `json:"spans"`
	Dropped  int         `json:"dropped_spans,omitempty"`
}

// SlowQuery is one structured slow-query log entry, derived from a slow
// or failed trace at Finish time.
type SlowQuery struct {
	TraceID   string        `json:"trace_id"`
	Time      time.Time     `json:"time"`
	Duration  time.Duration `json:"duration"`
	Statement string        `json:"statement,omitempty"`
	Tables    string        `json:"tables,omitempty"`
	Rows      int64         `json:"rows,omitempty"`
	LockWait  time.Duration `json:"lock_wait,omitempty"`
	FsyncWait time.Duration `json:"fsync_wait,omitempty"`
	Err       string        `json:"err,omitempty"`
}

// Retention ring sizes: enough recent history to chase an exemplar or a
// slow-query report without unbounded growth.
const (
	defaultTraceRing = 256
	defaultSlowRing  = 256
)

// TraceStore owns trace creation, tail-based retention and lookup. It
// hangs off a Registry; a disabled registry's store never creates
// traces.
type TraceStore struct {
	on        atomic.Bool
	slowNanos atomic.Int64  // retention threshold
	rateBits  atomic.Uint64 // float64 bits of the fast-trace sample rate
	rng       atomic.Uint64 // xorshift64 state: IDs + sampling decisions

	pool sync.Pool

	mu       sync.Mutex
	ring     []*TraceRecord // retained traces, oldest overwritten first
	next     int
	byID     map[TraceID]*TraceRecord
	slowRing []*SlowQuery
	slowNext int

	events                          *EventLog
	cSlow, cErr, cSampled, cDropped *Counter
	onFinish                        atomic.Pointer[func(*TraceRecord)]
}

func newTraceStore(r *Registry, on bool) *TraceStore {
	s := &TraceStore{
		ring:     make([]*TraceRecord, defaultTraceRing),
		byID:     make(map[TraceID]*TraceRecord),
		slowRing: make([]*SlowQuery, defaultSlowRing),
		events:   r.events,
		cSlow:    r.Counter(TracesTotal, L("decision", "slow")),
		cErr:     r.Counter(TracesTotal, L("decision", "error")),
		cSampled: r.Counter(TracesTotal, L("decision", "sampled")),
		cDropped: r.Counter(TracesTotal, L("decision", "dropped")),
	}
	s.pool.New = func() any { return &Trace{spans: make([]TraceSpan, 0, 32)} }
	s.on.Store(on)
	s.slowNanos.Store(int64(100 * time.Millisecond))
	s.rateBits.Store(math.Float64bits(0.01))
	s.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return s
}

// Enabled reports whether new traces are being created.
func (s *TraceStore) Enabled() bool { return s != nil && s.on.Load() }

// SetEnabled turns trace creation on or off at runtime. In-flight
// traces finish normally either way.
func (s *TraceStore) SetEnabled(on bool) {
	if s != nil {
		s.on.Store(on)
	}
}

// SetSlowThreshold sets the duration at or above which a finished trace
// is always retained and logged as a slow query. d <= 0 retains every
// trace (useful for smoke tests).
func (s *TraceStore) SetSlowThreshold(d time.Duration) {
	if s != nil {
		s.slowNanos.Store(int64(d))
	}
}

// SlowThreshold returns the current slow-trace retention threshold.
func (s *TraceStore) SlowThreshold() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.slowNanos.Load())
}

// SetSampleRate sets the probability (0..1) that a fast, successful
// trace is retained anyway.
func (s *TraceStore) SetSampleRate(p float64) {
	if s == nil {
		return
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s.rateBits.Store(math.Float64bits(p))
}

// SeedRNG reseeds the sampling/ID generator — tests use a fixed seed so
// the tail-sampling decision sequence is deterministic.
func (s *TraceStore) SeedRNG(seed uint64) {
	if s != nil {
		s.rng.Store(seed | 1)
	}
}

// SetOnFinish installs a hook called with every retained trace record
// (tests use it to observe retention synchronously). Pass nil to clear.
func (s *TraceStore) SetOnFinish(fn func(*TraceRecord)) {
	if s == nil {
		return
	}
	if fn == nil {
		s.onFinish.Store(nil)
		return
	}
	s.onFinish.Store(&fn)
}

func (s *TraceStore) rand64() uint64 {
	for {
		old := s.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if s.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// New starts a trace. Returns nil when tracing is off.
func (s *TraceStore) New(name string) *Trace {
	if s == nil || !s.on.Load() {
		return nil
	}
	tr := s.pool.Get().(*Trace)
	tr.store = s
	tr.id = TraceID(s.rand64() | 1)
	tr.name = name
	tr.start = time.Now()
	tr.spans = tr.spans[:0]
	tr.attrs = tr.attrs[:0]
	tr.dropped = 0
	return tr
}

func (s *TraceStore) finish(tr *Trace, dur time.Duration, err error) {
	slow := dur >= time.Duration(s.slowNanos.Load())
	var decision string
	switch {
	case err != nil:
		decision = "error"
		s.cErr.Inc()
	case slow:
		decision = "slow"
		s.cSlow.Inc()
	default:
		rate := math.Float64frombits(s.rateBits.Load())
		if rate > 0 && float64(s.rand64()>>11)/(1<<53) < rate {
			decision = "sampled"
			s.cSampled.Inc()
		} else {
			s.cDropped.Inc()
			s.release(tr)
			return
		}
	}

	rec := &TraceRecord{
		ID:       tr.id.String(),
		Name:     tr.name,
		Start:    tr.start,
		Duration: dur,
		Decision: decision,
		Attrs:    append([]Label(nil), tr.attrs...),
		Spans:    append([]TraceSpan(nil), tr.spans...),
		Dropped:  tr.dropped,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	id := tr.id
	s.release(tr)

	var sq *SlowQuery
	if decision != "sampled" {
		sq = buildSlowQuery(rec)
	}

	s.mu.Lock()
	if old := s.ring[s.next]; old != nil {
		if oldID, perr := ParseTraceID(old.ID); perr == nil {
			delete(s.byID, oldID)
		}
	}
	s.ring[s.next] = rec
	s.next = (s.next + 1) % len(s.ring)
	s.byID[id] = rec
	if sq != nil {
		s.slowRing[s.slowNext] = sq
		s.slowNext = (s.slowNext + 1) % len(s.slowRing)
	}
	s.mu.Unlock()

	if sq != nil {
		s.events.Warn(EventSlowQuery,
			"trace_id", sq.TraceID,
			"duration_ms", float64(sq.Duration)/float64(time.Millisecond),
			"statement", sq.Statement,
			"tables", sq.Tables,
			"rows", sq.Rows,
			"lock_wait_ms", float64(sq.LockWait)/float64(time.Millisecond),
			"fsync_wait_ms", float64(sq.FsyncWait)/float64(time.Millisecond),
			"err", sq.Err,
		)
	}
	if fp := s.onFinish.Load(); fp != nil {
		(*fp)(rec)
	}
}

func (s *TraceStore) release(tr *Trace) {
	tr.store = nil
	tr.id = 0
	s.pool.Put(tr)
}

func buildSlowQuery(rec *TraceRecord) *SlowQuery {
	sq := &SlowQuery{
		TraceID:  rec.ID,
		Time:     rec.Start,
		Duration: rec.Duration,
		Err:      rec.Err,
	}
	for _, a := range rec.Attrs {
		switch a.Key {
		case AttrStatement:
			sq.Statement = a.Value
		case AttrTables:
			sq.Tables = a.Value
		case AttrRows:
			if n, err := strconv.ParseInt(a.Value, 10, 64); err == nil {
				sq.Rows = n
			}
		}
	}
	for _, sp := range rec.Spans {
		switch sp.Name {
		case SpanLockWait:
			sq.LockWait += sp.Duration
		case SpanWALFlush:
			sq.FsyncWait += sp.Duration
		}
	}
	return sq
}

// Get returns the retained trace with the given ID, if still in the
// ring.
func (s *TraceStore) Get(id TraceID) (*TraceRecord, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[id]
	return rec, ok
}

// Recent returns up to the last n retained traces, newest first.
// n <= 0 means the whole ring.
func (s *TraceStore) Recent(n int) []*TraceRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*TraceRecord, 0, len(s.ring))
	for i := 1; i <= len(s.ring); i++ {
		idx := (s.next - i + len(s.ring)) % len(s.ring)
		if s.ring[idx] == nil {
			break
		}
		out = append(out, s.ring[idx])
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}

// RecentSlow returns up to the last n slow-query entries, newest first.
// n <= 0 means the whole ring.
func (s *TraceStore) RecentSlow(n int) []*SlowQuery {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*SlowQuery, 0, len(s.slowRing))
	for i := 1; i <= len(s.slowRing); i++ {
		idx := (s.slowNext - i + len(s.slowRing)) % len(s.slowRing)
		if s.slowRing[idx] == nil {
			break
		}
		out = append(out, s.slowRing[idx])
		if n > 0 && len(out) == n {
			break
		}
	}
	return out
}

// WriteWaterfall renders a retained trace as an indented text waterfall:
// each span's offset from the trace start, duration, and share of the
// root, children nested under parents and siblings sorted by start.
func WriteWaterfall(w io.Writer, rec *TraceRecord) {
	fmt.Fprintf(w, "trace %s %s %s decision=%s", rec.ID, rec.Name, rec.Duration.Round(time.Microsecond), rec.Decision)
	for _, a := range rec.Attrs {
		fmt.Fprintf(w, " %s=%q", a.Key, a.Value)
	}
	if rec.Err != "" {
		fmt.Fprintf(w, " err=%q", rec.Err)
	}
	fmt.Fprintln(w)

	children := make(map[SpanID][]int, len(rec.Spans))
	for i, sp := range rec.Spans {
		children[sp.Parent] = append(children[sp.Parent], i)
	}
	for _, idxs := range children {
		sort.Slice(idxs, func(a, b int) bool {
			return rec.Spans[idxs[a]].Start.Before(rec.Spans[idxs[b]].Start)
		})
	}
	var walk func(parent SpanID, depth int)
	walk = func(parent SpanID, depth int) {
		for _, i := range children[parent] {
			sp := rec.Spans[i]
			pct := 0.0
			if rec.Duration > 0 {
				pct = 100 * float64(sp.Duration) / float64(rec.Duration)
			}
			fmt.Fprintf(w, "%s%-16s +%-10s %-10s %5.1f%%",
				strings.Repeat("  ", depth+1), sp.Name,
				sp.Start.Sub(rec.Start).Round(time.Microsecond),
				sp.Duration.Round(time.Microsecond), pct)
			if sp.Count > 1 {
				fmt.Fprintf(w, " x%d", sp.Count)
			}
			for _, a := range sp.Attrs {
				fmt.Fprintf(w, " %s=%q", a.Key, a.Value)
			}
			if sp.Err != "" {
				fmt.Fprintf(w, " err=%q", sp.Err)
			}
			fmt.Fprintln(w)
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
	if rec.Dropped > 0 {
		fmt.Fprintf(w, "  (%d spans dropped past the per-trace cap)\n", rec.Dropped)
	}
}
