package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// retainedRate runs n fast (sub-threshold) successful traces through a
// fresh store seeded with seed and returns how many were retained.
func retainedRate(t *testing.T, seed uint64, rate float64, n int) int {
	t.Helper()
	r := NewRegistry()
	ts := r.Traces()
	ts.SeedRNG(seed)
	ts.SetSlowThreshold(time.Hour) // nothing is "slow"
	ts.SetSampleRate(rate)
	kept := 0
	ts.SetOnFinish(func(*TraceRecord) { kept++ })
	for i := 0; i < n; i++ {
		tr := ts.New("tx")
		if tr == nil {
			t.Fatal("tracing unexpectedly disabled")
		}
		tr.Finish(nil)
	}
	return kept
}

// TestTailSamplingDeterministic checks the three retention tiers: every
// slow trace is kept, every failed trace is kept, and fast successful
// traces are kept at roughly the configured sample rate — exactly
// reproducibly so under a fixed RNG seed.
func TestTailSamplingDeterministic(t *testing.T) {
	const n = 2000

	// Fast successful traces: ~1% kept, deterministic under a fixed seed.
	kept := retainedRate(t, 0xfeedface, 0.01, n)
	if again := retainedRate(t, 0xfeedface, 0.01, n); again != kept {
		t.Fatalf("same seed, different retention: %d then %d", kept, again)
	}
	// ~1% of 2000 = 20; allow generous slack but catch 0% and 100%.
	if kept < 5 || kept > 60 {
		t.Fatalf("sampled retention %d/%d traces, want ≈1%%", kept, n)
	}
	if diff := retainedRate(t, 0xdecade, 0.01, n); diff == kept {
		// Different seeds giving identical counts is possible but means
		// the test would not notice a stuck RNG; re-check with a third.
		if retainedRate(t, 0xabcdef, 0.01, n) == kept {
			t.Fatalf("retention count %d invariant across seeds: RNG stuck?", kept)
		}
	}

	// Rate 0: fast successful traces are never kept.
	if kept := retainedRate(t, 1, 0, 500); kept != 0 {
		t.Fatalf("rate 0 retained %d traces", kept)
	}

	// Threshold <= 0: everything counts as slow, 100% retained.
	r := NewRegistry()
	ts := r.Traces()
	ts.SetSlowThreshold(0)
	ts.SetSampleRate(0)
	for i := 0; i < 100; i++ {
		ts.New("tx").Finish(nil)
	}
	if got := len(ts.Recent(0)); got != 100 {
		t.Fatalf("threshold 0 retained %d/100", got)
	}
	for _, rec := range ts.Recent(0) {
		if rec.Decision != "slow" {
			t.Fatalf("decision %q, want slow", rec.Decision)
		}
	}
	if got := len(ts.RecentSlow(0)); got != 100 {
		t.Fatalf("slow-query log has %d/100 entries", got)
	}

	// Errors are always retained, even when fast and sampling is off.
	r2 := NewRegistry()
	ts2 := r2.Traces()
	ts2.SetSlowThreshold(time.Hour)
	ts2.SetSampleRate(0)
	tr := ts2.New("tx")
	id := tr.ID()
	tr.Finish(errors.New("lock timeout"))
	rec, ok := ts2.Get(id)
	if !ok {
		t.Fatal("error trace not retained")
	}
	if rec.Decision != "error" || rec.Err != "lock timeout" {
		t.Fatalf("decision=%q err=%q", rec.Decision, rec.Err)
	}
	if sq := ts2.RecentSlow(1); len(sq) != 1 || sq[0].Err != "lock timeout" {
		t.Fatalf("slow-query log for error trace: %+v", sq)
	}
}

// TestTraceSpansAndSlowQuery exercises span recording, accumulator
// folding, attributes, and the derived slow-query fields.
func TestTraceSpansAndSlowQuery(t *testing.T) {
	r := NewRegistry()
	ts := r.Traces()
	ts.SetSlowThreshold(0)

	tr := ts.New("tx")
	id := tr.ID()
	base := tr.Start()
	// Two lock waits fold into one accumulator span.
	tr.AddTimed(SpanLockWait, base, 3*time.Millisecond)
	tr.AddTimed(SpanLockWait, base.Add(time.Millisecond), 2*time.Millisecond)
	wait := tr.Record(SpanCommitWait, 0, base.Add(5*time.Millisecond), 10*time.Millisecond)
	tr.Record(SpanWALFlush, wait, base.Add(6*time.Millisecond), 7*time.Millisecond)
	tr.SetAttr(AttrStatement, "insert accounts")
	tr.SetAttr(AttrTables, "accounts")
	tr.SetAttr(AttrRows, "4")
	tr.Finish(nil)

	rec, ok := ts.Get(id)
	if !ok {
		t.Fatal("trace not retained")
	}
	byName := map[string]TraceSpan{}
	for _, sp := range rec.Spans {
		byName[sp.Name] = sp
	}
	lw := byName[SpanLockWait]
	if lw.Count != 2 || lw.Duration != 5*time.Millisecond {
		t.Fatalf("lock_wait accumulator: count=%d dur=%v", lw.Count, lw.Duration)
	}
	if fl := byName[SpanWALFlush]; fl.Parent != wait {
		t.Fatalf("wal_flush parent %d, want %d", fl.Parent, wait)
	}

	sq := ts.RecentSlow(1)
	if len(sq) != 1 {
		t.Fatal("no slow-query entry")
	}
	q := sq[0]
	if q.TraceID != id.String() || q.Statement != "insert accounts" ||
		q.Tables != "accounts" || q.Rows != 4 ||
		q.LockWait != 5*time.Millisecond || q.FsyncWait != 7*time.Millisecond {
		t.Fatalf("slow query fields: %+v", q)
	}

	var buf bytes.Buffer
	WriteWaterfall(&buf, rec)
	out := buf.String()
	for _, want := range []string{id.String(), SpanLockWait + " ", "x2", SpanWALFlush, `statement="insert accounts"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	// The wal_flush child must be indented one level deeper than its
	// commit_wait parent.
	var waitIndent, flushIndent int
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, SpanCommitWait) {
			waitIndent = len(line) - len(trimmed)
		}
		if strings.HasPrefix(trimmed, SpanWALFlush) {
			flushIndent = len(line) - len(trimmed)
		}
	}
	if flushIndent <= waitIndent {
		t.Fatalf("wal_flush indent %d not deeper than commit_wait %d:\n%s", flushIndent, waitIndent, out)
	}
}

// TestTraceNilSafety: every Trace method must tolerate the nil receiver
// tracing-off returns, and a disabled store must hand out no traces.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != 0 {
		t.Fatal("nil trace has nonzero ID")
	}
	tr.Record("x", 0, time.Now(), time.Second)
	tr.AddTimed("x", time.Now(), time.Second)
	tr.Annotate(0, L("k", "v"))
	tr.SetAttr("k", "v")
	if tr.Attr("k") != "" {
		t.Fatal("nil trace returned an attribute")
	}
	tr.Finish(nil)

	if Disabled().NewTrace("tx") != nil {
		t.Fatal("disabled registry created a trace")
	}
	var ts *TraceStore
	ts.SetEnabled(true)
	ts.SetSlowThreshold(0)
	ts.SetSampleRate(1)
	ts.SeedRNG(1)
	if _, ok := ts.Get(1); ok {
		t.Fatal("nil store returned a trace")
	}
	if ts.Recent(1) != nil || ts.RecentSlow(1) != nil {
		t.Fatal("nil store returned records")
	}

	// Runtime toggle: off stops new traces, on resumes.
	r := NewRegistry()
	r.Traces().SetEnabled(false)
	if r.NewTrace("tx") != nil {
		t.Fatal("disabled store created a trace")
	}
	r.Traces().SetEnabled(true)
	tr2 := r.NewTrace("tx")
	if tr2 == nil {
		t.Fatal("re-enabled store created no trace")
	}
	tr2.Finish(nil)
}

// TestTraceRingEviction: the retention ring is bounded; the oldest
// record falls out of ID lookup once overwritten.
func TestTraceRingEviction(t *testing.T) {
	r := NewRegistry()
	ts := r.Traces()
	ts.SetSlowThreshold(0)
	var first TraceID
	for i := 0; i < defaultTraceRing+10; i++ {
		tr := ts.New("tx")
		if i == 0 {
			first = tr.ID()
		}
		tr.Finish(nil)
	}
	if _, ok := ts.Get(first); ok {
		t.Fatal("evicted trace still reachable by ID")
	}
	if got := len(ts.Recent(0)); got != defaultTraceRing {
		t.Fatalf("ring holds %d records, want %d", got, defaultTraceRing)
	}
}
