package obs

import (
	"runtime"
	"sync"
	"time"
)

// gcPauseBuckets bracket GC stop-the-world pauses: 10µs to 100ms.
var gcPauseBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
}

// SampleRuntime takes one Go runtime sample into the registry: live
// goroutines, heap alloc/sys gauges, cumulative GC count, and the GC
// pause histogram (fed from the pauses that completed since the last
// sample). It is a no-op on a nil or disabled registry. The /metrics
// handler calls it before rendering so scrapes always see fresh values.
func SampleRuntime(r *Registry) {
	if !r.Enabled() {
		return
	}
	r.Gauge(RuntimeGoroutines).Set(float64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge(RuntimeHeapAllocBytes).Set(float64(ms.HeapAlloc))
	r.Gauge(RuntimeHeapSysBytes).Set(float64(ms.HeapSys))

	r.rtMu.Lock()
	defer r.rtMu.Unlock()
	if ms.NumGC <= r.rtLastGC {
		return
	}
	fresh := ms.NumGC - r.rtLastGC
	// PauseNs is a 256-entry ring indexed by GC cycle; older pauses than
	// that are gone, so cap how far back we walk.
	if fresh > uint32(len(ms.PauseNs)) {
		fresh = uint32(len(ms.PauseNs))
	}
	pauses := r.Histogram(RuntimeGCPauseSeconds, gcPauseBuckets)
	for i := uint32(0); i < fresh; i++ {
		idx := (ms.NumGC - i + 255) % 256
		pauses.Observe(float64(ms.PauseNs[idx]) / 1e9)
	}
	r.Counter(RuntimeGCTotal).Add(int64(ms.NumGC - r.rtLastGC))
	r.rtLastGC = ms.NumGC
}

// StartRuntimeSampler samples the runtime into r every interval until
// the returned stop function is called. On a nil or disabled registry
// it starts nothing and returns an inert stop.
func StartRuntimeSampler(r *Registry, every time.Duration) (stop func()) {
	if !r.Enabled() || every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime(r)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
