package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// The ring must keep only the newest events while Recorded counts all of
// them, and Recent must walk newest-first across the wrap point.
func TestEventLogRingWraparound(t *testing.T) {
	e := newEventLog(4, true)
	for i := 0; i < 10; i++ {
		e.Info("tick", "i", i)
	}
	if e.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", e.Recorded())
	}
	recent := e.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(recent))
	}
	for i, ev := range recent {
		wantSeq := int64(10 - i)
		if ev.Seq != wantSeq {
			t.Fatalf("recent[%d].Seq = %d, want %d (newest first)", i, ev.Seq, wantSeq)
		}
		if ev.Attrs[0].Key != "i" || ev.Attrs[0].Value != 9-i {
			t.Fatalf("recent[%d] attrs = %+v", i, ev.Attrs)
		}
	}
	if got := e.Recent(2); len(got) != 2 || got[0].Seq != 10 {
		t.Fatalf("Recent(2) = %+v", got)
	}
	if got := e.Recent(100); len(got) != 4 {
		t.Fatalf("Recent(100) returned %d events", len(got))
	}
}

func TestEventLogLevelsAndTypes(t *testing.T) {
	e := newEventLog(16, true)
	e.Info(EventBlockClosed, "block", int64(1))
	e.Warn(EventVerifyIssue, "invariant", "I2")
	e.Error(EventBlobstoreError, "op", "put")
	e.Info(EventBlockClosed, "block", int64(2))

	recent := e.Recent(0)
	wantLevels := []slog.Level{slog.LevelInfo, slog.LevelError, slog.LevelWarn, slog.LevelInfo}
	for i, ev := range recent {
		if ev.Level != wantLevels[i] {
			t.Fatalf("recent[%d].Level = %v, want %v", i, ev.Level, wantLevels[i])
		}
		if ev.Time.IsZero() {
			t.Fatalf("event without timestamp: %+v", ev)
		}
	}
	closed := e.RecentOfType(EventBlockClosed, 0)
	if len(closed) != 2 || closed[0].Attrs[0].Value != int64(2) {
		t.Fatalf("RecentOfType(block_closed) = %+v", closed)
	}
	if got := e.RecentOfType(EventBlockClosed, 1); len(got) != 1 {
		t.Fatalf("RecentOfType limit ignored: %+v", got)
	}
	if got := e.RecentOfType("nope", 0); len(got) != 0 {
		t.Fatalf("RecentOfType(nope) = %+v", got)
	}
}

// Odd argument counts and non-string keys must follow slog's !BADKEY
// convention instead of panicking.
func TestEventLogBadKeys(t *testing.T) {
	e := newEventLog(4, true)
	e.Info("odd", "key", 1, "dangling")
	e.Info("nonstring", 42, "value")
	recent := e.Recent(0)
	odd := recent[1]
	if len(odd.Attrs) != 2 || odd.Attrs[1].Key != "!BADKEY" || odd.Attrs[1].Value != "dangling" {
		t.Fatalf("odd kv attrs = %+v", odd.Attrs)
	}
	ns := recent[0]
	if len(ns.Attrs) != 1 || ns.Attrs[0].Key != "!BADKEY" {
		t.Fatalf("non-string key attrs = %+v", ns.Attrs)
	}
}

// Disabled and nil event logs must be inert and crash-free, mirroring the
// registry-wide contract.
func TestEventLogDisabledAndNil(t *testing.T) {
	d := Disabled().Events()
	d.Info("x", "k", "v")
	d.Warn("x")
	d.Error("x")
	if d.Enabled() || d.Recorded() != 0 || len(d.Recent(0)) != 0 {
		t.Fatalf("disabled event log recorded something")
	}

	var nilLog *EventLog
	nilLog.Info("x")
	nilLog.SetLogger(slog.Default())
	if nilLog.Enabled() || nilLog.Recorded() != 0 {
		t.Fatal("nil event log reports activity")
	}
	if nilLog.Recent(5) != nil || nilLog.RecentOfType("x", 5) != nil {
		t.Fatal("nil event log returned events")
	}

	var nilReg *Registry
	nilReg.Events().Info("x", "k", "v")
}

// Events must mirror to an attached slog sink and stop when detached.
func TestEventLogSlogMirror(t *testing.T) {
	e := newEventLog(8, true)
	var buf bytes.Buffer
	e.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	e.Info(EventDigestUploaded, "block", 7)
	if out := buf.String(); !strings.Contains(out, "msg=digest_uploaded") || !strings.Contains(out, "block=7") {
		t.Fatalf("slog mirror missing event: %q", out)
	}
	e.SetLogger(nil)
	buf.Reset()
	e.Info(EventBlockClosed, "block", 8)
	if buf.Len() != 0 {
		t.Fatalf("detached logger still received: %q", buf.String())
	}
	if e.Recorded() != 2 {
		t.Fatalf("Recorded = %d, want 2", e.Recorded())
	}
}

func TestEventLogConcurrent(t *testing.T) {
	e := newEventLog(32, true)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				e.Info("tick", "worker", fmt.Sprint(w))
			}
		}(i)
	}
	wg.Wait()
	if e.Recorded() != workers*per {
		t.Fatalf("Recorded = %d, want %d", e.Recorded(), workers*per)
	}
	recent := e.Recent(0)
	if len(recent) != 32 {
		t.Fatalf("ring holds %d, want 32", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].Seq >= recent[i-1].Seq {
			t.Fatalf("ring order broken at %d: %d then %d", i, recent[i-1].Seq, recent[i].Seq)
		}
	}
}
