// Package sql implements a small SQL dialect over the ledger database:
// enough of SQL Server's surface for applications and operators to use
// ledger tables the way the paper presents them — CREATE TABLE ... WITH
// (LEDGER = ON), ordinary DML, SELECT with predicates and ordering,
// querying the generated ledger views, transactions with savepoints, and
// the ledger-specific statements (digest generation and verification).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkSymbol // ( ) , ; * = < > <= >= <>
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "LEDGER": true, "WITH": true, "ON": true,
	"OFF": true, "APPEND_ONLY": true, "PRIMARY": true, "KEY": true,
	"NOT": true, "NULL": true, "DROP": true, "ALTER": true, "ADD": true,
	"COLUMN": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "FROM": true,
	"SELECT": true, "WHERE": true, "AND": true, "ORDER": true, "BY": true,
	"ASC": true, "DESC": true, "LIMIT": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "TRANSACTION": true, "SAVE": true, "SAVEPOINT": true,
	"TO": true, "TRUE": true, "FALSE": true, "AS": true, "COUNT": true,
	"GENERATE": true, "DIGEST": true, "VERIFY": true, "INDEX": true,
	"BIT": true, "TINYINT": true, "SMALLINT": true, "INT": true,
	"BIGINT": true, "FLOAT": true, "DECIMAL": true, "CHAR": true,
	"VARCHAR": true, "NVARCHAR": true, "BINARY": true, "VARBINARY": true,
	"DATETIME": true, "UNIQUEIDENTIFIER": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) error(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) lex() ([]token, error) {
	var toks []token
	for {
		for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
			l.pos++
		}
		if l.pos >= len(l.src) {
			toks = append(toks, token{kind: tkEOF, pos: l.pos})
			return toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(c):
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			word := l.src[start:l.pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tkKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tkIdent, text: word, pos: start})
			}
		case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			l.pos++
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			toks = append(toks, token{kind: tkNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, l.error(start, "unterminated string literal")
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'') // escaped quote
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			toks = append(toks, token{kind: tkString, text: sb.String(), pos: start})
		case c == '<' || c == '>':
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
				l.pos++
			}
			toks = append(toks, token{kind: tkSymbol, text: l.src[start:l.pos], pos: start})
		case strings.IndexByte("(),;*=", c) >= 0:
			l.pos++
			toks = append(toks, token{kind: tkSymbol, text: string(c), pos: start})
		default:
			return nil, l.error(start, "unexpected character %q", c)
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
