package sql

import (
	"fmt"
	"strconv"

	"sqlledger/internal/sqltypes"
)

// Parse parses one SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	toks, err := (&lexer{src: src}).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tkSymbol, ";")
	if !p.at(tkEOF, "") {
		return nil, p.errorf("unexpected %q after statement", p.cur().text)
	}
	return st, nil
}

// ParseScript splits src on semicolons (respecting string literals) and
// parses each non-empty statement.
func ParseScript(src string) ([]Statement, error) {
	var out []Statement
	for _, part := range splitStatements(src) {
		st, err := Parse(part)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func splitStatements(src string) []string {
	var parts []string
	depth := false // inside a string
	start := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\'':
			depth = !depth
		case ';':
			if !depth {
				if s := trimSpace(src[start:i]); s != "" {
					parts = append(parts, s)
				}
				start = i + 1
			}
		}
	}
	if s := trimSpace(src[start:]); s != "" {
		parts = append(parts, s)
	}
	return parts
}

func trimSpace(s string) string {
	i, j := 0, len(s)
	for i < j && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	for j > i && (s[j-1] == ' ' || s[j-1] == '\t' || s[j-1] == '\n' || s[j-1] == '\r') {
		j--
	}
	return s[i:j]
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errorf("expected %s, got %q", want, p.cur().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) ident() (string, error) {
	if p.at(tkIdent, "") {
		return p.next().text, nil
	}
	return "", p.errorf("expected identifier, got %q", p.cur().text)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.accept(tkKeyword, "CREATE"):
		if p.accept(tkKeyword, "INDEX") {
			return p.createIndex()
		}
		if _, err := p.expect(tkKeyword, "TABLE"); err != nil {
			return nil, err
		}
		return p.createTable()
	case p.accept(tkKeyword, "DROP"):
		if _, err := p.expect(tkKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.accept(tkKeyword, "ALTER"):
		return p.alter()
	case p.accept(tkKeyword, "INSERT"):
		return p.insert()
	case p.accept(tkKeyword, "UPDATE"):
		return p.update()
	case p.accept(tkKeyword, "DELETE"):
		return p.delete()
	case p.accept(tkKeyword, "SELECT"):
		return p.selectStmt()
	case p.accept(tkKeyword, "BEGIN"):
		p.accept(tkKeyword, "TRANSACTION")
		return &BeginStmt{}, nil
	case p.accept(tkKeyword, "COMMIT"):
		p.accept(tkKeyword, "TRANSACTION")
		return &CommitStmt{}, nil
	case p.accept(tkKeyword, "ROLLBACK"):
		p.accept(tkKeyword, "TRANSACTION")
		if p.accept(tkKeyword, "TO") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &RollbackToStmt{Name: name}, nil
		}
		return &RollbackStmt{}, nil
	case p.accept(tkKeyword, "SAVE"):
		p.accept(tkKeyword, "TRANSACTION")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &SavepointStmt{Name: name}, nil
	case p.accept(tkKeyword, "SAVEPOINT"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &SavepointStmt{Name: name}, nil
	case p.accept(tkKeyword, "GENERATE"):
		if _, err := p.expect(tkKeyword, "DIGEST"); err != nil {
			return nil, err
		}
		return &GenerateDigest{}, nil
	case p.accept(tkKeyword, "VERIFY"):
		p.accept(tkKeyword, "LEDGER")
		return &VerifyStmt{}, nil
	default:
		return nil, p.errorf("unexpected %q at start of statement", p.cur().text)
	}
}

func (p *parser) createIndex() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.identList()
	if err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols}, nil
}

// identList parses "( a, b, c )".
func (p *parser) identList() ([]string, error) {
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.accept(tkSymbol, ",") {
			continue
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

var typeNames = map[string]sqltypes.TypeID{
	"BIT": sqltypes.TypeBit, "TINYINT": sqltypes.TypeTinyInt,
	"SMALLINT": sqltypes.TypeSmallInt, "INT": sqltypes.TypeInt,
	"BIGINT": sqltypes.TypeBigInt, "FLOAT": sqltypes.TypeFloat,
	"DECIMAL": sqltypes.TypeDecimal, "CHAR": sqltypes.TypeChar,
	"VARCHAR": sqltypes.TypeVarChar, "NVARCHAR": sqltypes.TypeNVarChar,
	"BINARY": sqltypes.TypeBinary, "VARBINARY": sqltypes.TypeVarBinary,
	"DATETIME": sqltypes.TypeDateTime, "UNIQUEIDENTIFIER": sqltypes.TypeUniqueID,
}

func (p *parser) columnType() (sqltypes.TypeID, int, int, int, error) {
	t := p.cur()
	if t.kind != tkKeyword {
		return 0, 0, 0, 0, p.errorf("expected a type name, got %q", t.text)
	}
	typ, ok := typeNames[t.text]
	if !ok {
		return 0, 0, 0, 0, p.errorf("unknown type %q", t.text)
	}
	p.next()
	var l, prec, scale int
	if p.accept(tkSymbol, "(") {
		n1, err := p.number()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if typ == sqltypes.TypeDecimal {
			prec = int(n1)
			if p.accept(tkSymbol, ",") {
				n2, err := p.number()
				if err != nil {
					return 0, 0, 0, 0, err
				}
				scale = int(n2)
			}
		} else {
			l = int(n1)
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	return typ, l, prec, scale, nil
}

func (p *parser) number() (int64, error) {
	t := p.cur()
	if t.kind != tkNumber {
		return 0, p.errorf("expected a number, got %q", t.text)
	}
	p.next()
	return strconv.ParseInt(t.text, 10, 64)
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	for {
		if p.accept(tkKeyword, "PRIMARY") {
			if _, err := p.expect(tkKeyword, "KEY"); err != nil {
				return nil, err
			}
			ct.PrimaryKey, err = p.identList()
			if err != nil {
				return nil, err
			}
		} else {
			cd, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, cd)
		}
		if p.accept(tkSymbol, ",") {
			continue
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		break
	}
	if p.accept(tkKeyword, "WITH") {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		for {
			opt, err := p.expectKeywordAny("LEDGER", "APPEND_ONLY")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, "="); err != nil {
				return nil, err
			}
			on, err := p.expectKeywordAny("ON", "OFF")
			if err != nil {
				return nil, err
			}
			switch opt {
			case "LEDGER":
				ct.Ledger = on == "ON"
			case "APPEND_ONLY":
				ct.AppendOnly = on == "ON"
			}
			if p.accept(tkSymbol, ",") {
				continue
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	return ct, nil
}

func (p *parser) expectKeywordAny(names ...string) (string, error) {
	for _, n := range names {
		if p.accept(tkKeyword, n) {
			return n, nil
		}
	}
	return "", p.errorf("expected one of %v, got %q", names, p.cur().text)
}

func (p *parser) columnDef() (ColumnDef, error) {
	var cd ColumnDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	cd.Type, cd.Len, cd.Prec, cd.Scale, err = p.columnType()
	if err != nil {
		return cd, err
	}
	switch {
	case p.accept(tkKeyword, "NOT"):
		if _, err := p.expect(tkKeyword, "NULL"); err != nil {
			return cd, err
		}
	case p.accept(tkKeyword, "NULL"):
		cd.Nullable = true
	}
	return cd, nil
}

func (p *parser) alter() (Statement, error) {
	if _, err := p.expect(tkKeyword, "TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept(tkKeyword, "ADD"):
		p.accept(tkKeyword, "COLUMN")
		cd, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		return &AlterAddColumn{Table: table, Column: cd}, nil
	case p.accept(tkKeyword, "DROP"):
		if _, err := p.expect(tkKeyword, "COLUMN"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &AlterDropColumn{Table: table, Column: col}, nil
	}
	return nil, p.errorf("expected ADD or DROP after ALTER TABLE")
}

func (p *parser) literal() (Literal, error) {
	t := p.cur()
	switch {
	case t.kind == tkKeyword && t.text == "NULL":
		p.next()
		return Literal{IsNull: true}, nil
	case t.kind == tkKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.next()
		return Literal{IsBool: true, Bool: t.text == "TRUE"}, nil
	case t.kind == tkNumber:
		p.next()
		return Literal{Text: t.text}, nil
	case t.kind == tkString:
		p.next()
		return Literal{IsString: true, Text: t.text}, nil
	}
	return Literal{}, p.errorf("expected a literal, got %q", t.text)
}

func (p *parser) insert() (Statement, error) {
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.at(tkSymbol, "(") {
		ins.Columns, err = p.identList()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var row []Literal
		for {
			lit, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, lit)
			if p.accept(tkSymbol, ",") {
				continue
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(tkSymbol, ",") {
			continue
		}
		return ins, nil
	}
}

func (p *parser) where() ([]Condition, error) {
	if !p.accept(tkKeyword, "WHERE") {
		return nil, nil
	}
	var out []Condition
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tkSymbol || (t.text != "=" && t.text != "<" && t.text != ">" && t.text != "<=" && t.text != ">=" && t.text != "<>") {
			return nil, p.errorf("expected a comparison operator, got %q", t.text)
		}
		p.next()
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		out = append(out, Condition{Column: col, Op: t.text, Value: lit})
		if p.accept(tkKeyword, "AND") {
			continue
		}
		return out, nil
	}
}

func (p *parser) update() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		lit, err := p.literal()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, struct {
			Column string
			Value  Literal
		}{col, lit})
		if p.accept(tkSymbol, ",") {
			continue
		}
		break
	}
	up.Where, err = p.where()
	if err != nil {
		return nil, err
	}
	return up, nil
}

func (p *parser) delete() (Statement, error) {
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	del.Where, err = p.where()
	if err != nil {
		return nil, err
	}
	return del, nil
}

func (p *parser) selectStmt() (Statement, error) {
	sel := &Select{}
	switch {
	case p.accept(tkSymbol, "*"):
	case p.accept(tkKeyword, "COUNT"):
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		sel.CountAll = true
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, col)
			if p.accept(tkSymbol, ",") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	sel.Where, err = p.where()
	if err != nil {
		return nil, err
	}
	if p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		sel.OrderBy, err = p.ident()
		if err != nil {
			return nil, err
		}
		if p.accept(tkKeyword, "DESC") {
			sel.Desc = true
		} else {
			p.accept(tkKeyword, "ASC")
		}
	}
	if p.accept(tkKeyword, "LIMIT") {
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		sel.Limit = int(n)
	}
	return sel, nil
}
