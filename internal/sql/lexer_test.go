package sql

import "testing"

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	toks, err := (&lexer{src: src}).lex()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func TestLexerBasics(t *testing.T) {
	toks := lexAll(t, `SELECT a, b2 FROM t WHERE a >= 10 AND b2 <> 'it''s'`)
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ",", "b2", "FROM", "t", "WHERE", "a", ">=", "10", "AND", "b2", "<>", "it's", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != tkKeyword || kinds[1] != tkIdent || kinds[9] != tkNumber || kinds[13] != tkString || kinds[14] != tkEOF {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestLexerComments(t *testing.T) {
	toks := lexAll(t, "SELECT -- trailing comment\n1")
	if len(toks) != 3 || toks[1].text != "1" {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexerNegativeNumbers(t *testing.T) {
	toks := lexAll(t, "VALUES (-42, -3.5)")
	if toks[2].text != "-42" || toks[4].text != "-3.5" {
		t.Fatalf("tokens = %+v", toks)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "SELECT @x", "a ! b"} {
		if _, err := (&lexer{src: src}).lex(); err == nil {
			t.Errorf("lexed %q without error", src)
		}
	}
}

func TestLexerCaseInsensitiveKeywords(t *testing.T) {
	toks := lexAll(t, "select From wHeRe")
	for i, want := range []string{"SELECT", "FROM", "WHERE"} {
		if toks[i].kind != tkKeyword || toks[i].text != want {
			t.Fatalf("token %d = %+v", i, toks[i])
		}
	}
}

func TestSplitStatements(t *testing.T) {
	parts := splitStatements(`a; b 'x;y'; ; c`)
	if len(parts) != 3 || parts[0] != "a" || parts[1] != "b 'x;y'" || parts[2] != "c" {
		t.Fatalf("parts = %q", parts)
	}
}

func TestParserRoundtripShapes(t *testing.T) {
	cases := map[string]string{
		`CREATE TABLE t (a INT NOT NULL, PRIMARY KEY (a)) WITH (LEDGER = ON)`: "*sql.CreateTable",
		`CREATE TABLE t (a INT NOT NULL)`:                                     "*sql.CreateTable",
		`CREATE INDEX ix ON t (a, b)`:                                         "*sql.CreateIndex",
		`DROP TABLE t`:                                                        "*sql.DropTable",
		`ALTER TABLE t ADD c NVARCHAR NULL`:                                   "*sql.AlterAddColumn",
		`ALTER TABLE t DROP COLUMN c`:                                         "*sql.AlterDropColumn",
		`INSERT INTO t VALUES (1)`:                                            "*sql.Insert",
		`UPDATE t SET a = 1 WHERE b = 2`:                                      "*sql.Update",
		`DELETE FROM t`:                                                       "*sql.Delete",
		`SELECT * FROM t`:                                                     "*sql.Select",
		`SELECT COUNT(*) FROM t`:                                              "*sql.Select",
		`SELECT a FROM t WHERE b > 1 AND c <= 2 ORDER BY a DESC LIMIT 5;`:     "*sql.Select",
		`BEGIN`:               "*sql.BeginStmt",
		`COMMIT`:              "*sql.CommitStmt",
		`ROLLBACK`:            "*sql.RollbackStmt",
		`ROLLBACK TO sp`:      "*sql.RollbackToStmt",
		`SAVE TRANSACTION sp`: "*sql.SavepointStmt",
		`SAVEPOINT sp`:        "*sql.SavepointStmt",
		`GENERATE DIGEST`:     "*sql.GenerateDigest",
		`VERIFY LEDGER`:       "*sql.VerifyStmt",
		`CREATE TABLE t (d DECIMAL(10,2) NULL, v VARCHAR(40) NOT NULL)`: "*sql.CreateTable",
		`INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, TRUE)`:            "*sql.Insert",
	}
	for src, wantType := range cases {
		st, err := Parse(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		if got := typeName(st); got != wantType {
			t.Errorf("parse %q = %s, want %s", src, got, wantType)
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *CreateTable:
		return "*sql.CreateTable"
	case *CreateIndex:
		return "*sql.CreateIndex"
	case *DropTable:
		return "*sql.DropTable"
	case *AlterAddColumn:
		return "*sql.AlterAddColumn"
	case *AlterDropColumn:
		return "*sql.AlterDropColumn"
	case *Insert:
		return "*sql.Insert"
	case *Update:
		return "*sql.Update"
	case *Delete:
		return "*sql.Delete"
	case *Select:
		return "*sql.Select"
	case *BeginStmt:
		return "*sql.BeginStmt"
	case *CommitStmt:
		return "*sql.CommitStmt"
	case *RollbackStmt:
		return "*sql.RollbackStmt"
	case *RollbackToStmt:
		return "*sql.RollbackToStmt"
	case *SavepointStmt:
		return "*sql.SavepointStmt"
	case *GenerateDigest:
		return "*sql.GenerateDigest"
	case *VerifyStmt:
		return "*sql.VerifyStmt"
	default:
		return "unknown"
	}
}

func TestParserCreateTableDetails(t *testing.T) {
	st, err := Parse(`CREATE TABLE orders (
		id BIGINT NOT NULL,
		memo NVARCHAR NULL,
		price DECIMAL(12, 4) NULL,
		tag VARCHAR(16) NOT NULL,
		PRIMARY KEY (id)
	) WITH (LEDGER = ON, APPEND_ONLY = ON)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "orders" || !ct.Ledger || !ct.AppendOnly {
		t.Fatalf("create = %+v", ct)
	}
	if len(ct.Columns) != 4 || ct.Columns[1].Nullable != true || ct.Columns[0].Nullable {
		t.Fatalf("columns = %+v", ct.Columns)
	}
	if ct.Columns[2].Prec != 12 || ct.Columns[2].Scale != 4 || ct.Columns[3].Len != 16 {
		t.Fatalf("type params = %+v", ct.Columns)
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "id" {
		t.Fatalf("pk = %v", ct.PrimaryKey)
	}
}

func TestParserSelectDetails(t *testing.T) {
	st, err := Parse(`SELECT a, b FROM t WHERE a = 'x' AND b >= 3 ORDER BY b DESC LIMIT 7`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*Select)
	if len(sel.Columns) != 2 || sel.Table != "t" || len(sel.Where) != 2 {
		t.Fatalf("select = %+v", sel)
	}
	if sel.Where[0].Op != "=" || !sel.Where[0].Value.IsString || sel.Where[1].Op != ">=" {
		t.Fatalf("where = %+v", sel.Where)
	}
	if sel.OrderBy != "b" || !sel.Desc || sel.Limit != 7 {
		t.Fatalf("order/limit = %+v", sel)
	}
}
