package sql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"sqlledger/internal/core"
	"sqlledger/internal/engine"
	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
)

// Result is the outcome of executing one statement.
type Result struct {
	// Columns/Rows are set for SELECT (and GENERATE DIGEST, which returns
	// a one-row relation holding the JSON document).
	Columns []string
	Rows    []sqltypes.Row
	// RowsAffected is set for DML.
	RowsAffected int
	// Message carries DDL/transaction-control acknowledgements.
	Message string
}

// Session executes SQL against a ledger database. Statements outside an
// explicit BEGIN ... COMMIT run in autocommit mode. A Session is not safe
// for concurrent use (like a database connection).
type Session struct {
	db   *core.LedgerDB
	user string

	tx         *core.Tx
	savepoints map[string]int

	// stmtHists caches the per-statement-fingerprint latency histograms
	// (sqlledger_statement_seconds{stmt="..."}) so repeated statements
	// skip the registry lookup. Fingerprint cardinality is verb × table.
	stmtHists map[string]*obs.Histogram
}

// NewSession opens a SQL session for user.
func NewSession(db *core.LedgerDB, user string) *Session {
	return &Session{db: db, user: user, savepoints: make(map[string]int)}
}

// Exec parses and executes one statement.
func (s *Session) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return s.ExecStatement(st)
}

// ExecScript executes a semicolon-separated script, returning the result
// of each statement. Execution stops at the first error.
func (s *Session) ExecScript(src string) ([]*Result, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, st := range stmts {
		r, err := s.ExecStatement(st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil }

// Close rolls back any open transaction.
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Rollback()
		s.tx = nil
	}
}

// begin returns the transaction to run one statement in and a done
// function that commits in autocommit mode (or keeps the explicit
// transaction open). verb and table identify the statement: its
// fingerprint ("insert accounts") keys the per-statement latency
// histogram and annotates the transaction's trace, so a slow-query entry
// can say which statement ran against which tables.
func (s *Session) begin(verb, table string) (*core.Tx, func(error) error) {
	tbl := strings.ToLower(table)
	fp := verb + " " + tbl
	start := time.Now()
	tx := s.tx
	autocommit := tx == nil
	if autocommit {
		tx = s.db.Begin(s.user)
	}
	if tr := tx.Trace(); tr != nil {
		noteStatement(tr, fp, tbl)
	}
	return tx, func(err error) error {
		// The statement span and the trace ID must be taken before the
		// autocommit below: Commit finishes the trace.
		var tid obs.TraceID
		if tr := tx.Trace(); tr != nil {
			tid = tr.ID()
			tr.Record(obs.SpanStatement, 0, start, time.Since(start), obs.L(obs.AttrStatement, fp))
		}
		if autocommit {
			if err != nil {
				tx.Rollback()
			} else {
				err = tx.Commit()
			}
		}
		// The histogram sees the full statement latency, commit included,
		// with the trace ID as the bucket's exemplar.
		s.stmtHist(fp).ObserveTraced(time.Since(start).Seconds(), tid)
		return err
	}
}

// noteStatement accumulates statement context onto the trace: the
// fingerprint list and the set of tables touched, rendered into slow-query
// entries when the trace is retained.
func noteStatement(tr *obs.Trace, fp, table string) {
	if prev := tr.Attr(obs.AttrStatement); prev == "" {
		tr.SetAttr(obs.AttrStatement, fp)
	} else if prev != fp {
		tr.SetAttr(obs.AttrStatement, prev+"; "+fp)
	}
	if prev := tr.Attr(obs.AttrTables); prev == "" {
		tr.SetAttr(obs.AttrTables, table)
	} else if !strings.Contains(","+prev+",", ","+table+",") {
		tr.SetAttr(obs.AttrTables, prev+","+table)
	}
}

// stmtHist returns (caching per session) the latency histogram for one
// statement fingerprint.
func (s *Session) stmtHist(fp string) *obs.Histogram {
	h := s.stmtHists[fp]
	if h == nil {
		if s.stmtHists == nil {
			s.stmtHists = make(map[string]*obs.Histogram)
		}
		h = s.db.Obs().Histogram(obs.StatementSeconds, nil, obs.L("stmt", fp))
		s.stmtHists[fp] = h
	}
	return h
}

// ExecStatement executes a parsed statement.
func (s *Session) ExecStatement(st Statement) (*Result, error) {
	switch st := st.(type) {
	case *CreateTable:
		return s.createTable(st)
	case *DropTable:
		if err := s.db.DropLedgerTable(st.Name); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s dropped (data retained for verification)", st.Name)}, nil
	case *AlterAddColumn:
		lt, err := s.db.LedgerTable(st.Table)
		if err != nil {
			return nil, err
		}
		col := sqltypes.Column{
			Name: st.Column.Name, Type: st.Column.Type, Len: st.Column.Len,
			Prec: st.Column.Prec, Scale: st.Column.Scale, Nullable: st.Column.Nullable,
		}
		if err := s.db.AddColumn(lt, col); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("column %s added to %s", st.Column.Name, st.Table)}, nil
	case *AlterDropColumn:
		lt, err := s.db.LedgerTable(st.Table)
		if err != nil {
			return nil, err
		}
		if err := s.db.DropColumn(lt, st.Column); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("column %s dropped from %s (data retained)", st.Column, st.Table)}, nil
	case *CreateIndex:
		if _, err := s.db.Engine().CreateIndex(st.Table, st.Name, st.Columns...); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("index %s created on %s", st.Name, st.Table)}, nil
	case *Insert:
		return s.insert(st)
	case *Update:
		return s.update(st)
	case *Delete:
		return s.delete(st)
	case *Select:
		return s.selectStmt(st)
	case *BeginStmt:
		if s.tx != nil {
			return nil, fmt.Errorf("sql: a transaction is already open")
		}
		s.tx = s.db.Begin(s.user)
		s.savepoints = make(map[string]int)
		return &Result{Message: "transaction started"}, nil
	case *CommitStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("sql: no open transaction")
		}
		err := s.tx.Commit()
		s.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{Message: "committed"}, nil
	case *RollbackStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("sql: no open transaction")
		}
		s.tx.Rollback()
		s.tx = nil
		return &Result{Message: "rolled back"}, nil
	case *SavepointStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("sql: SAVE TRANSACTION requires an open transaction")
		}
		s.savepoints[strings.ToLower(st.Name)] = s.tx.Savepoint()
		return &Result{Message: fmt.Sprintf("savepoint %s", st.Name)}, nil
	case *RollbackToStmt:
		if s.tx == nil {
			return nil, fmt.Errorf("sql: ROLLBACK TO requires an open transaction")
		}
		tok, ok := s.savepoints[strings.ToLower(st.Name)]
		if !ok {
			return nil, fmt.Errorf("sql: unknown savepoint %q", st.Name)
		}
		if err := s.tx.RollbackTo(tok); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("rolled back to %s", st.Name)}, nil
	case *GenerateDigest:
		d, err := s.db.GenerateDigest()
		if err != nil {
			return nil, err
		}
		return &Result{
			Columns: []string{"digest"},
			Rows:    []sqltypes.Row{{sqltypes.NewNVarChar(string(d.JSON()))}},
		}, nil
	case *VerifyStmt:
		rep, err := s.db.Verify(nil, core.VerifyOptions{})
		if err != nil {
			return nil, err
		}
		return &Result{Message: rep.String()}, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

func (s *Session) createTable(st *CreateTable) (*Result, error) {
	cols := make([]sqltypes.Column, len(st.Columns))
	for i, cd := range st.Columns {
		cols[i] = sqltypes.Column{
			Name: cd.Name, Type: cd.Type, Len: cd.Len, Prec: cd.Prec,
			Scale: cd.Scale, Nullable: cd.Nullable,
		}
	}
	schema, err := sqltypes.NewSchema(cols, st.PrimaryKey...)
	if err != nil {
		return nil, err
	}
	if !st.Ledger {
		if _, err := s.db.Engine().CreateTable(engine.CreateTableSpec{Name: st.Name, Schema: schema}); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s created", st.Name)}, nil
	}
	kind := engine.LedgerUpdateable
	if st.AppendOnly {
		kind = engine.LedgerAppendOnly
	}
	if _, err := s.db.CreateLedgerTable(st.Name, schema, kind); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("ledger table %s created (%s)", st.Name, kind)}, nil
}

// resolve finds the target of a DML/SELECT statement: a ledger table, a
// regular table, or (SELECT only) a ledger view named "<table>_ledger".
type target struct {
	lt   *core.LedgerTable
	et   *engine.Table
	view bool
}

func (s *Session) resolve(name string, allowView bool) (target, error) {
	if allowView {
		if base, ok := strings.CutSuffix(strings.ToLower(name), "_ledger"); ok {
			if lt, err := s.db.LedgerTable(base); err == nil {
				return target{lt: lt, view: true}, nil
			}
		}
	}
	if lt, err := s.db.LedgerTable(name); err == nil {
		return target{lt: lt}, nil
	}
	et, err := s.db.Engine().Table(name)
	if err != nil {
		return target{}, fmt.Errorf("sql: table %q not found", name)
	}
	return target{et: et}, nil
}

// visibleColumns returns the queryable columns of a target.
func (t target) visibleColumns() []sqltypes.Column {
	if t.lt != nil {
		cols := t.lt.VisibleColumns()
		if t.view {
			n := len(cols)
			cols = append(append([]sqltypes.Column(nil), cols...),
				sqltypes.Column{Name: "operation", Type: sqltypes.TypeNVarChar, Ordinal: n},
				sqltypes.Column{Name: "transaction_id", Type: sqltypes.TypeBigInt, Ordinal: n + 1},
				sqltypes.Column{Name: "sequence_number", Type: sqltypes.TypeBigInt, Ordinal: n + 2},
			)
		}
		// Re-number positionally: visible rows are dense.
		for i := range cols {
			cols[i].Ordinal = i
		}
		return cols
	}
	return t.et.Schema().VisibleColumns()
}

// coerce converts a literal to a value of the column's type.
func coerce(col sqltypes.Column, lit Literal) (sqltypes.Value, error) {
	if lit.IsNull {
		return sqltypes.NewNull(col.Type), nil
	}
	switch {
	case lit.IsBool:
		if col.Type != sqltypes.TypeBit {
			return sqltypes.Value{}, fmt.Errorf("sql: boolean literal for non-BIT column %s", col.Name)
		}
		return sqltypes.NewBit(lit.Bool), nil
	case lit.IsString:
		switch {
		case col.Type.IsString():
			return sqltypes.Value{Type: col.Type, Str: lit.Text}, nil
		case col.Type == sqltypes.TypeDateTime:
			t, err := time.Parse(time.RFC3339, lit.Text)
			if err != nil {
				return sqltypes.Value{}, fmt.Errorf("sql: column %s: %v", col.Name, err)
			}
			return sqltypes.NewDateTime(t), nil
		case col.Type.IsBytes():
			return sqltypes.Value{Type: col.Type, Bytes: []byte(lit.Text)}, nil
		}
		return sqltypes.Value{}, fmt.Errorf("sql: string literal for %s column %s", col.Type, col.Name)
	default: // number
		switch {
		case col.Type == sqltypes.TypeFloat:
			f, err := strconv.ParseFloat(lit.Text, 64)
			if err != nil {
				return sqltypes.Value{}, fmt.Errorf("sql: column %s: %v", col.Name, err)
			}
			return sqltypes.NewFloat(f), nil
		case col.Type.IsInteger() || col.Type == sqltypes.TypeDecimal:
			n, err := strconv.ParseInt(lit.Text, 10, 64)
			if err != nil {
				return sqltypes.Value{}, fmt.Errorf("sql: column %s: %v", col.Name, err)
			}
			return sqltypes.Value{Type: col.Type, I64: n}, nil
		}
		return sqltypes.Value{}, fmt.Errorf("sql: numeric literal for %s column %s", col.Type, col.Name)
	}
}

// compilePredicate turns WHERE conditions into a row predicate over the
// target's visible columns.
func compilePredicate(cols []sqltypes.Column, where []Condition) (func(sqltypes.Row) bool, error) {
	type check struct {
		pos int
		op  string
		val sqltypes.Value
	}
	var checks []check
	for _, c := range where {
		pos := -1
		for i, col := range cols {
			if strings.EqualFold(col.Name, c.Column) {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("sql: unknown column %q in WHERE", c.Column)
		}
		v, err := coerce(cols[pos], c.Value)
		if err != nil {
			return nil, err
		}
		checks = append(checks, check{pos: pos, op: c.Op, val: v})
	}
	return func(r sqltypes.Row) bool {
		for _, c := range checks {
			cell := r[c.pos]
			if cell.Null || c.val.Null {
				// SQL ternary logic: comparisons with NULL are not true.
				return false
			}
			cmp := cell.Compare(c.val)
			ok := false
			switch c.op {
			case "=":
				ok = cmp == 0
			case "<>":
				ok = cmp != 0
			case "<":
				ok = cmp < 0
			case ">":
				ok = cmp > 0
			case "<=":
				ok = cmp <= 0
			case ">=":
				ok = cmp >= 0
			}
			if !ok {
				return false
			}
		}
		return true
	}, nil
}

func (s *Session) insert(st *Insert) (*Result, error) {
	tgt, err := s.resolve(st.Table, false)
	if err != nil {
		return nil, err
	}
	cols := tgt.visibleColumns()
	// Map the named column list (or default order) onto visible columns.
	order := make([]int, len(cols))
	if len(st.Columns) == 0 {
		for i := range order {
			order[i] = i
		}
	} else {
		for i := range order {
			order[i] = -1
		}
		for li, name := range st.Columns {
			pos := -1
			for i, c := range cols {
				if strings.EqualFold(c.Name, name) {
					pos = i
					break
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("sql: unknown column %q", name)
			}
			order[pos] = li
		}
	}
	tx, done := s.begin("insert", st.Table)
	n := 0
	for _, litRow := range st.Rows {
		if len(st.Columns) == 0 && len(litRow) != len(cols) {
			return nil, done(fmt.Errorf("sql: %d values for %d columns", len(litRow), len(cols)))
		}
		if len(st.Columns) != 0 && len(litRow) != len(st.Columns) {
			return nil, done(fmt.Errorf("sql: %d values for %d named columns", len(litRow), len(st.Columns)))
		}
		row := make(sqltypes.Row, len(cols))
		for i, c := range cols {
			if order[i] < 0 {
				row[i] = sqltypes.NewNull(c.Type)
				continue
			}
			v, err := coerce(c, litRow[order[i]])
			if err != nil {
				return nil, done(err)
			}
			row[i] = v
		}
		if tgt.lt != nil {
			err = tx.Insert(tgt.lt, row)
		} else {
			_, err = tx.Raw().Insert(tgt.et, row)
		}
		if err != nil {
			return nil, done(err)
		}
		n++
	}
	if err := done(nil); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: n}, nil
}

// scanVisible iterates the visible rows of a target inside tx.
func scanVisible(tx *core.Tx, tgt target, fn func(sqltypes.Row) bool) error {
	if tgt.view {
		for _, vr := range tgt.lt.LedgerView() {
			row := append(append(sqltypes.Row{}, vr.Row...),
				sqltypes.NewNVarChar(vr.Operation),
				sqltypes.NewBigInt(int64(vr.TxID)),
				sqltypes.NewBigInt(int64(vr.Seq)),
			)
			if !fn(row) {
				return nil
			}
		}
		return nil
	}
	if tgt.lt != nil {
		return tx.Scan(tgt.lt, fn)
	}
	return tx.Raw().Scan(tgt.et, func(_ []byte, r sqltypes.Row) bool {
		return fn(visibleOf(tgt.et, r))
	})
}

func visibleOf(et *engine.Table, full sqltypes.Row) sqltypes.Row {
	s := et.Schema()
	out := make(sqltypes.Row, 0, len(full))
	for i, c := range s.Columns {
		if !c.Hidden && !c.Dropped {
			out = append(out, full[i])
		}
	}
	return out
}

func (s *Session) update(st *Update) (*Result, error) {
	tgt, err := s.resolve(st.Table, false)
	if err != nil {
		return nil, err
	}
	if tgt.lt == nil {
		return nil, fmt.Errorf("sql: UPDATE on regular tables is supported through the Go API only")
	}
	cols := tgt.visibleColumns()
	pred, err := compilePredicate(cols, st.Where)
	if err != nil {
		return nil, err
	}
	type setOp struct {
		pos int
		val sqltypes.Value
	}
	var sets []setOp
	for _, set := range st.Set {
		pos := -1
		for i, c := range cols {
			if strings.EqualFold(c.Name, set.Column) {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("sql: unknown column %q in SET", set.Column)
		}
		v, err := coerce(cols[pos], set.Value)
		if err != nil {
			return nil, err
		}
		sets = append(sets, setOp{pos: pos, val: v})
	}
	tx, done := s.begin("update", st.Table)
	var matches []sqltypes.Row
	if err := scanVisible(tx, tgt, func(r sqltypes.Row) bool {
		if pred(r) {
			matches = append(matches, r.Clone())
		}
		return true
	}); err != nil {
		return nil, done(err)
	}
	for _, row := range matches {
		for _, set := range sets {
			row[set.pos] = set.val
		}
		if err := tx.Update(tgt.lt, row); err != nil {
			return nil, done(err)
		}
	}
	if err := done(nil); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(matches)}, nil
}

func (s *Session) delete(st *Delete) (*Result, error) {
	tgt, err := s.resolve(st.Table, false)
	if err != nil {
		return nil, err
	}
	if tgt.lt == nil {
		return nil, fmt.Errorf("sql: DELETE on regular tables is supported through the Go API only")
	}
	cols := tgt.visibleColumns()
	pred, err := compilePredicate(cols, st.Where)
	if err != nil {
		return nil, err
	}
	// Collect the primary-key values of matching rows.
	keyOrds := tgt.lt.Table().Schema().Key
	visOfOrd := make(map[int]int) // schema ordinal -> visible position
	for i, c := range tgt.lt.VisibleColumns() {
		visOfOrd[c.Ordinal] = i
	}
	// Recompute against the original (non-renumbered) visible columns.
	visPos := make([]int, len(keyOrds))
	for i, ord := range keyOrds {
		p, ok := visOfOrd[ord]
		if !ok {
			return nil, fmt.Errorf("sql: primary key column is not visible")
		}
		visPos[i] = p
	}
	tx, done := s.begin("delete", st.Table)
	var keys [][]sqltypes.Value
	if err := scanVisible(tx, tgt, func(r sqltypes.Row) bool {
		if pred(r) {
			kv := make([]sqltypes.Value, len(visPos))
			for i, p := range visPos {
				kv[i] = r[p].Clone()
			}
			keys = append(keys, kv)
		}
		return true
	}); err != nil {
		return nil, done(err)
	}
	for _, kv := range keys {
		if err := tx.Delete(tgt.lt, kv...); err != nil {
			return nil, done(err)
		}
	}
	if err := done(nil); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(keys)}, nil
}

func (s *Session) selectStmt(st *Select) (*Result, error) {
	tgt, err := s.resolve(st.Table, true)
	if err != nil {
		return nil, err
	}
	cols := tgt.visibleColumns()
	pred, err := compilePredicate(cols, st.Where)
	if err != nil {
		return nil, err
	}
	// Projection list.
	var proj []int
	var outCols []string
	if st.CountAll {
		outCols = []string{"count"}
	} else if len(st.Columns) == 0 {
		for i, c := range cols {
			proj = append(proj, i)
			outCols = append(outCols, c.Name)
		}
	} else {
		for _, name := range st.Columns {
			pos := -1
			for i, c := range cols {
				if strings.EqualFold(c.Name, name) {
					pos = i
					break
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("sql: unknown column %q", name)
			}
			proj = append(proj, pos)
			outCols = append(outCols, cols[pos].Name)
		}
	}
	orderPos := -1
	if st.OrderBy != "" {
		for i, c := range cols {
			if strings.EqualFold(c.Name, st.OrderBy) {
				orderPos = i
				break
			}
		}
		if orderPos < 0 {
			return nil, fmt.Errorf("sql: unknown column %q in ORDER BY", st.OrderBy)
		}
	}

	tx, done := s.begin("select", st.Table)
	var matched []sqltypes.Row
	if err := scanVisible(tx, tgt, func(r sqltypes.Row) bool {
		if pred(r) {
			matched = append(matched, r.Clone())
		}
		return true
	}); err != nil {
		return nil, done(err)
	}
	if err := done(nil); err != nil {
		return nil, err
	}
	if st.CountAll {
		return &Result{Columns: outCols, Rows: []sqltypes.Row{{sqltypes.NewBigInt(int64(len(matched)))}}}, nil
	}
	if orderPos >= 0 {
		sort.SliceStable(matched, func(i, j int) bool {
			c := matched[i][orderPos].Compare(matched[j][orderPos])
			if st.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if st.Limit > 0 && len(matched) > st.Limit {
		matched = matched[:st.Limit]
	}
	rows := make([]sqltypes.Row, len(matched))
	for i, r := range matched {
		out := make(sqltypes.Row, len(proj))
		for j, p := range proj {
			out[j] = r[p]
		}
		rows[i] = out
	}
	return &Result{Columns: outCols, Rows: rows}, nil
}
