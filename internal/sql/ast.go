package sql

import "sqlledger/internal/sqltypes"

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef is one column in a CREATE TABLE.
type ColumnDef struct {
	Name     string
	Type     sqltypes.TypeID
	Len      int
	Prec     int
	Scale    int
	Nullable bool
}

// CreateTable is CREATE TABLE name (cols..., PRIMARY KEY (a, b))
// [WITH (LEDGER = ON [, APPEND_ONLY = ON])].
type CreateTable struct {
	Name       string
	Columns    []ColumnDef
	PrimaryKey []string
	Ledger     bool
	AppendOnly bool
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// AlterAddColumn is ALTER TABLE t ADD [COLUMN] c TYPE NULL.
type AlterAddColumn struct {
	Table  string
	Column ColumnDef
}

// AlterDropColumn is ALTER TABLE t DROP COLUMN c.
type AlterDropColumn struct {
	Table  string
	Column string
}

// CreateIndex is CREATE INDEX name ON table (cols...).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
}

// Literal is a parsed literal value (typed lazily against the schema).
type Literal struct {
	IsNull   bool
	IsString bool
	IsBool   bool
	Bool     bool
	Text     string // number or string payload
}

// Insert is INSERT INTO t [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // empty = all visible columns
	Rows    [][]Literal
}

// Condition is "col op literal"; Where clauses are conjunctions of these.
type Condition struct {
	Column string
	Op     string // = <> < > <= >=
	Value  Literal
}

// Update is UPDATE t SET c = v, ... [WHERE ...].
type Update struct {
	Table string
	Set   []struct {
		Column string
		Value  Literal
	}
	Where []Condition
}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where []Condition
}

// Select is SELECT cols|*|COUNT(*) FROM t [WHERE ...] [ORDER BY c [DESC]]
// [LIMIT n]. The FROM target may be a ledger view ("<table>_ledger").
type Select struct {
	Columns  []string // nil = *
	CountAll bool
	Table    string
	Where    []Condition
	OrderBy  string
	Desc     bool
	Limit    int // 0 = no limit
}

// Begin/Commit/Rollback control explicit transactions; SavepointStmt and
// RollbackTo give partial rollback.
type (
	// BeginStmt is BEGIN [TRANSACTION].
	BeginStmt struct{}
	// CommitStmt is COMMIT.
	CommitStmt struct{}
	// RollbackStmt is ROLLBACK.
	RollbackStmt struct{}
	// SavepointStmt is SAVE TRANSACTION name / SAVEPOINT name.
	SavepointStmt struct{ Name string }
	// RollbackToStmt is ROLLBACK TO name.
	RollbackToStmt struct{ Name string }
	// GenerateDigest is GENERATE DIGEST.
	GenerateDigest struct{}
	// VerifyStmt is VERIFY [LEDGER].
	VerifyStmt struct{}
)

func (*CreateTable) stmt()     {}
func (*DropTable) stmt()       {}
func (*AlterAddColumn) stmt()  {}
func (*AlterDropColumn) stmt() {}
func (*CreateIndex) stmt()     {}
func (*Insert) stmt()          {}
func (*Update) stmt()          {}
func (*Delete) stmt()          {}
func (*Select) stmt()          {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}
func (*SavepointStmt) stmt()   {}
func (*RollbackToStmt) stmt()  {}
func (*GenerateDigest) stmt()  {}
func (*VerifyStmt) stmt()      {}
