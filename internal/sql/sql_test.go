package sql

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sqlledger/internal/core"
	"sqlledger/internal/sqltypes"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	db, err := core.Open(core.Options{Dir: t.TempDir(), Name: "sqltest", BlockSize: 100, LockTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := NewSession(db, "sql-user")
	t.Cleanup(s.Close)
	return s
}

func mustExec(t *testing.T, s *Session, q string) *Result {
	t.Helper()
	r, err := s.Exec(q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return r
}

func renderRows(r *Result) string {
	var parts []string
	for _, row := range r.Rows {
		var cells []string
		for _, v := range row {
			cells = append(cells, v.String())
		}
		parts = append(parts, strings.Join(cells, "|"))
	}
	return strings.Join(parts, ";")
}

const createAccounts = `CREATE TABLE accounts (
	name NVARCHAR NOT NULL,
	balance BIGINT NOT NULL,
	PRIMARY KEY (name)
) WITH (LEDGER = ON)`

func TestSQLEndToEnd(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, createAccounts)
	r := mustExec(t, s, `INSERT INTO accounts VALUES ('nick', 100), ('john', 500), ('mary', 200)`)
	if r.RowsAffected != 3 {
		t.Fatalf("inserted %d", r.RowsAffected)
	}
	r = mustExec(t, s, `UPDATE accounts SET balance = 50 WHERE name = 'nick'`)
	if r.RowsAffected != 1 {
		t.Fatalf("updated %d", r.RowsAffected)
	}
	r = mustExec(t, s, `DELETE FROM accounts WHERE name = 'john'`)
	if r.RowsAffected != 1 {
		t.Fatalf("deleted %d", r.RowsAffected)
	}
	r = mustExec(t, s, `SELECT name, balance FROM accounts ORDER BY balance DESC`)
	if got := renderRows(r); got != "mary|200;nick|50" {
		t.Fatalf("select = %q", got)
	}
	r = mustExec(t, s, `SELECT COUNT(*) FROM accounts`)
	if got := renderRows(r); got != "2" {
		t.Fatalf("count = %q", got)
	}
	// The ledger view is queryable as <table>_ledger.
	r = mustExec(t, s, `SELECT name, balance, operation FROM accounts_ledger`)
	want := "nick|100|INSERT;john|500|INSERT;mary|200|INSERT;nick|100|DELETE;nick|50|INSERT;john|500|DELETE"
	if got := renderRows(r); got != want {
		t.Fatalf("ledger view =\n%q want\n%q", got, want)
	}
	// Digest + verify via SQL.
	r = mustExec(t, s, `GENERATE DIGEST`)
	if len(r.Rows) != 1 || !strings.Contains(r.Rows[0][0].Str, `"block_id"`) {
		t.Fatalf("digest = %v", r.Rows)
	}
	r = mustExec(t, s, `VERIFY LEDGER`)
	if !strings.Contains(r.Message, "OK") {
		t.Fatalf("verify = %q", r.Message)
	}
}

func TestSQLWherePredicates(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, createAccounts)
	mustExec(t, s, `INSERT INTO accounts VALUES ('a', 10), ('b', 20), ('c', 30), ('d', 40)`)
	cases := map[string]string{
		`SELECT name FROM accounts WHERE balance > 20`:                   "c;d",
		`SELECT name FROM accounts WHERE balance >= 20 AND balance < 40`: "b;c",
		`SELECT name FROM accounts WHERE balance <> 20`:                  "a;c;d",
		`SELECT name FROM accounts WHERE name = 'b'`:                     "b",
		`SELECT name FROM accounts WHERE balance <= 10`:                  "a",
		`SELECT name FROM accounts ORDER BY name LIMIT 2`:                "a;b",
	}
	for q, want := range cases {
		if got := renderRows(mustExec(t, s, q)); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestSQLTransactionsAndSavepoints(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, createAccounts)
	mustExec(t, s, `BEGIN TRANSACTION`)
	mustExec(t, s, `INSERT INTO accounts VALUES ('keep', 1)`)
	mustExec(t, s, `SAVE TRANSACTION sp1`)
	mustExec(t, s, `INSERT INTO accounts VALUES ('drop', 2)`)
	mustExec(t, s, `ROLLBACK TO sp1`)
	mustExec(t, s, `COMMIT`)
	if got := renderRows(mustExec(t, s, `SELECT name FROM accounts`)); got != "keep" {
		t.Fatalf("rows = %q", got)
	}
	// Uncommitted work is invisible and discardable.
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO accounts VALUES ('ghost', 3)`)
	mustExec(t, s, `ROLLBACK`)
	if got := renderRows(mustExec(t, s, `SELECT COUNT(*) FROM accounts`)); got != "1" {
		t.Fatalf("count = %q", got)
	}
	r := mustExec(t, s, `VERIFY`)
	if !strings.Contains(r.Message, "OK") {
		t.Fatalf("verify after savepoints: %q", r.Message)
	}
}

func TestSQLAppendOnlyAndSchemaChanges(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE audit (id BIGINT NOT NULL, event NVARCHAR NOT NULL, PRIMARY KEY (id)) WITH (LEDGER = ON, APPEND_ONLY = ON)`)
	mustExec(t, s, `INSERT INTO audit VALUES (1, 'created')`)
	if _, err := s.Exec(`UPDATE audit SET event = 'forged' WHERE id = 1`); err == nil {
		t.Fatal("update on append-only table accepted")
	}
	if _, err := s.Exec(`DELETE FROM audit WHERE id = 1`); err == nil {
		t.Fatal("delete on append-only table accepted")
	}
	mustExec(t, s, createAccounts)
	mustExec(t, s, `INSERT INTO accounts VALUES ('a', 1)`)
	mustExec(t, s, `ALTER TABLE accounts ADD note NVARCHAR NULL`)
	mustExec(t, s, `INSERT INTO accounts (name, balance, note) VALUES ('b', 2, 'hello')`)
	r := mustExec(t, s, `SELECT name, note FROM accounts ORDER BY name`)
	if got := renderRows(r); got != "a|NULL;b|hello" {
		t.Fatalf("after add column = %q", got)
	}
	mustExec(t, s, `ALTER TABLE accounts DROP COLUMN note`)
	if _, err := s.Exec(`SELECT note FROM accounts`); err == nil {
		t.Fatal("dropped column still selectable")
	}
	mustExec(t, s, `DROP TABLE accounts`)
	if _, err := s.Exec(`SELECT * FROM accounts`); err == nil {
		t.Fatal("dropped table still queryable")
	}
	if !strings.Contains(mustExec(t, s, `VERIFY`).Message, "OK") {
		t.Fatal("verify after schema changes failed")
	}
}

func TestSQLCreateIndexAndRegularTables(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE plain (k BIGINT NOT NULL, v NVARCHAR NOT NULL, PRIMARY KEY (k))`)
	mustExec(t, s, `INSERT INTO plain VALUES (1, 'x'), (2, 'y')`)
	mustExec(t, s, `CREATE INDEX ix_v ON plain (v)`)
	r := mustExec(t, s, `SELECT v FROM plain WHERE k = 2`)
	if renderRows(r) != "y" {
		t.Fatalf("select = %q", renderRows(r))
	}
}

func TestSQLInsertNamedColumnsAndNulls(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (id BIGINT NOT NULL, a NVARCHAR NULL, b BIGINT NULL, PRIMARY KEY (id)) WITH (LEDGER = ON)`)
	mustExec(t, s, `INSERT INTO t (id, b) VALUES (1, 42)`)
	mustExec(t, s, `INSERT INTO t (b, id, a) VALUES (NULL, 2, 'set')`)
	r := mustExec(t, s, `SELECT id, a, b FROM t ORDER BY id`)
	if got := renderRows(r); got != "1|NULL|42;2|set|NULL" {
		t.Fatalf("rows = %q", got)
	}
}

func TestSQLScript(t *testing.T) {
	s := newSession(t)
	results, err := s.ExecScript(`
		-- a small script with comments
		CREATE TABLE accounts (name NVARCHAR NOT NULL, balance BIGINT NOT NULL,
			PRIMARY KEY (name)) WITH (LEDGER = ON);
		INSERT INTO accounts VALUES ('x', 1);
		INSERT INTO accounts VALUES ('it''s quoted; really', 2);
		SELECT name FROM accounts ORDER BY balance DESC LIMIT 1;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	if got := renderRows(results[3]); got != "it's quoted; really" {
		t.Fatalf("quoted name = %q", got)
	}
}

func TestSQLParseErrors(t *testing.T) {
	s := newSession(t)
	for _, q := range []string{
		`SELEC * FROM t`,
		`CREATE TABLE`,
		`INSERT INTO t VALUES (`,
		`SELECT * FROM t WHERE a !! 1`,
		`UPDATE t SET`,
		`CREATE TABLE t (a FOO)`,
		`SELECT * FROM t; extra`,
		`INSERT INTO t VALUES ('unterminated)`,
	} {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestSQLRuntimeErrors(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, createAccounts)
	for _, q := range []string{
		`SELECT * FROM nope`,
		`SELECT missing FROM accounts`,
		`INSERT INTO accounts VALUES ('x')`,
		`INSERT INTO accounts (name, nope) VALUES ('x', 1)`,
		`UPDATE accounts SET nope = 1`,
		`SELECT * FROM accounts WHERE nope = 1`,
		`COMMIT`,
		`ROLLBACK`,
		`SAVE TRANSACTION sp`,
		`INSERT INTO accounts VALUES ('x', 'not-a-number')`,
	} {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
	// Duplicate key surfaces as an error and autocommit rolls back.
	mustExec(t, s, `INSERT INTO accounts VALUES ('dup', 1)`)
	if _, err := s.Exec(`INSERT INTO accounts VALUES ('dup', 2)`); err == nil {
		t.Fatal("duplicate accepted")
	}
	if got := renderRows(mustExec(t, s, `SELECT balance FROM accounts WHERE name = 'dup'`)); got != "1" {
		t.Fatalf("balance after failed insert = %q", got)
	}
}

func TestSQLValuesAllTypes(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE types (
		id BIGINT NOT NULL,
		flag BIT NULL, tiny TINYINT NULL, small SMALLINT NULL, i INT NULL,
		f FLOAT NULL, d DECIMAL(10,2) NULL, vc VARCHAR(20) NULL,
		nvc NVARCHAR NULL, vb VARBINARY NULL, ts DATETIME NULL,
		PRIMARY KEY (id)) WITH (LEDGER = ON)`)
	mustExec(t, s, `INSERT INTO types VALUES (1, TRUE, 200, -5, 100000, 2.5, 12345, 'ascii', 'uni', 'bytes', '2026-07-05T10:00:00Z')`)
	r := mustExec(t, s, `SELECT flag, tiny, small, i, f, d, vc, nvc FROM types WHERE id = 1`)
	if got := renderRows(r); got != "1|200|-5|100000|2.5|12345|ascii|uni" {
		t.Fatalf("types roundtrip = %q", got)
	}
	if !strings.Contains(mustExec(t, s, `VERIFY`).Message, "OK") {
		t.Fatal("verify failed")
	}
}

func TestSQLConcurrentSessions(t *testing.T) {
	db, err := core.Open(core.Options{Dir: t.TempDir(), Name: "multi", BlockSize: 50, LockTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	setup := NewSession(db, "ddl")
	if _, err := setup.Exec(createAccounts); err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	errCh := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		go func(g int) {
			s := NewSession(db, fmt.Sprintf("user-%d", g))
			defer s.Close()
			for i := 0; i < 25; i++ {
				q := fmt.Sprintf(`INSERT INTO accounts VALUES ('u%d-%d', %d)`, g, i, i)
				if _, err := s.Exec(q); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(g)
	}
	for g := 0; g < sessions; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	r, err := setup.Exec(`SELECT COUNT(*) FROM accounts`)
	if err != nil || renderRows(r) != "100" {
		t.Fatalf("count = %v, %v", renderRows(r), err)
	}
	if !strings.Contains(mustExec(t, setup, `VERIFY`).Message, "OK") {
		t.Fatal("verify failed after concurrent sessions")
	}
}

func TestSQLTypeCoercionErrors(t *testing.T) {
	col := func(typ sqltypes.TypeID) sqltypes.Column { return sqltypes.Column{Name: "c", Type: typ} }
	if _, err := coerce(col(sqltypes.TypeInt), Literal{IsString: true, Text: "x"}); err == nil {
		t.Error("string into INT accepted")
	}
	if _, err := coerce(col(sqltypes.TypeNVarChar), Literal{Text: "5"}); err == nil {
		t.Error("number into NVARCHAR accepted")
	}
	if _, err := coerce(col(sqltypes.TypeInt), Literal{IsBool: true}); err == nil {
		t.Error("bool into INT accepted")
	}
	if _, err := coerce(col(sqltypes.TypeDateTime), Literal{IsString: true, Text: "noon"}); err == nil {
		t.Error("bad datetime accepted")
	}
	if v, err := coerce(col(sqltypes.TypeVarBinary), Literal{IsString: true, Text: "b"}); err != nil || string(v.Bytes) != "b" {
		t.Error("string into VARBINARY should work")
	}
}
