package merkle

import (
	"fmt"
	"reflect"
	"testing"
)

// Shard-root-scale proof tests: the sharded ledger's super-block builds a
// tree over N shard-head hashes where N is tiny (1, 2, 4, ...), so the
// degenerate tree shapes — single leaf, one combine, promotion of an odd
// leaf — are exactly the shapes auditors verify shard proofs against.

func shardLeaf(i int) Hash { return HashLeaf([]byte(fmt.Sprintf("shard-head-%d", i))) }

// TestProofSingleLeafTree: a 1-shard super-block. The root IS the leaf
// and the proof has no siblings.
func TestProofSingleLeafTree(t *testing.T) {
	leaves := []Hash{shardLeaf(0)}
	root := RootOf(leaves)
	if root != leaves[0] {
		t.Fatalf("1-leaf root %s != leaf %s", root, leaves[0])
	}
	p, err := BuildProof(leaves, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Siblings) != 0 {
		t.Fatalf("1-leaf proof has %d siblings, want 0", len(p.Siblings))
	}
	if !p.Verify(root, leaves[0]) {
		t.Fatal("1-leaf proof does not verify")
	}
	if p.Verify(root, shardLeaf(1)) {
		t.Fatal("1-leaf proof verified a different leaf")
	}
}

// TestProofTwoLeafTree: a 2-shard super-block. Each proof carries exactly
// the other shard's head as its single sibling.
func TestProofTwoLeafTree(t *testing.T) {
	leaves := []Hash{shardLeaf(0), shardLeaf(1)}
	root := RootOf(leaves)
	for i := uint64(0); i < 2; i++ {
		p, err := BuildProof(leaves, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Siblings) != 1 {
			t.Fatalf("2-leaf proof %d has %d siblings, want 1", i, len(p.Siblings))
		}
		if p.Siblings[0] != leaves[1-i] {
			t.Fatalf("2-leaf proof %d sibling is not the other shard's head", i)
		}
		if !p.Verify(root, leaves[i]) {
			t.Fatalf("2-leaf proof %d does not verify", i)
		}
		if p.Verify(root, leaves[1-i]) {
			t.Fatalf("2-leaf proof %d verified the wrong shard's head", i)
		}
	}
}

// TestProofDuplicateLeaves: two shards can legitimately have identical
// head hashes (e.g. both empty). Each position still proves independently
// — inclusion is positional, not value-based — and a proof built for one
// position must carry that position's index.
func TestProofDuplicateLeaves(t *testing.T) {
	dup := shardLeaf(7)
	for _, leaves := range [][]Hash{
		{dup, dup},
		{dup, dup, dup},
		{shardLeaf(0), dup, dup, shardLeaf(3)},
	} {
		root := RootOf(leaves)
		for i := range leaves {
			p, err := BuildProof(leaves, uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			if p.Index != uint64(i) || p.LeafCount != uint64(len(leaves)) {
				t.Fatalf("proof metadata (%d,%d), want (%d,%d)", p.Index, p.LeafCount, i, len(leaves))
			}
			if !p.Verify(root, leaves[i]) {
				t.Fatalf("n=%d: proof for duplicate leaf %d does not verify", len(leaves), i)
			}
		}
	}
}

// TestBuildProofsEquivalenceAtShardScale: BuildProofs over every index of
// a small tree returns byte-identical proofs to per-index BuildProof
// calls, for every super-block size the sharded ledger produces.
func TestBuildProofsEquivalenceAtShardScale(t *testing.T) {
	for n := 1; n <= 9; n++ {
		leaves := make([]Hash, n)
		indices := make([]uint64, n)
		for i := range leaves {
			leaves[i] = shardLeaf(i)
			indices[i] = uint64(i)
		}
		batch, err := BuildProofs(leaves, indices)
		if err != nil {
			t.Fatal(err)
		}
		root := RootOf(leaves)
		for i := range indices {
			single, err := BuildProof(leaves, uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batch[i], single) {
				t.Fatalf("n=%d index %d: BuildProofs %+v != BuildProof %+v", n, i, batch[i], single)
			}
			if !batch[i].Verify(root, leaves[i]) {
				t.Fatalf("n=%d index %d: batch proof does not verify", n, i)
			}
		}
	}
}
