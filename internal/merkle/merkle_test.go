package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func leaves(n int, seed int64) []Hash {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Hash, n)
	for i := range out {
		rng.Read(out[i][:])
	}
	return out
}

func TestEmptyTreeRoot(t *testing.T) {
	var s Streaming
	if got := s.Root(); !got.IsZero() {
		t.Fatalf("empty tree root = %s, want zero", got)
	}
	if RootOf(nil) != ZeroHash {
		t.Fatalf("RootOf(nil) should be zero")
	}
}

func TestSingleLeafRootIsLeaf(t *testing.T) {
	l := HashLeaf([]byte("x"))
	var s Streaming
	s.Append(l)
	if s.Root() != l {
		t.Fatalf("single-leaf root must be the leaf (promotion rule)")
	}
}

// referenceRoot builds the tree level by level, promoting odd nodes, as
// the paper defines — an independent implementation to check Streaming.
func referenceRoot(ls []Hash) Hash {
	if len(ls) == 0 {
		return ZeroHash
	}
	level := append([]Hash(nil), ls...)
	for len(level) > 1 {
		var next []Hash
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, combine(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

func TestStreamingMatchesReference(t *testing.T) {
	for n := 0; n <= 70; n++ {
		ls := leaves(n, int64(n))
		var s Streaming
		for _, l := range ls {
			s.Append(l)
		}
		if s.Root() != referenceRoot(ls) {
			t.Fatalf("streaming root mismatch at n=%d", n)
		}
		if s.Count() != uint64(n) {
			t.Fatalf("count = %d, want %d", s.Count(), n)
		}
	}
}

func TestStreamingMatchesReferenceQuick(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 1000)
		ls := leaves(n, seed)
		var s Streaming
		for _, l := range ls {
			s.Append(l)
		}
		return s.Root() == referenceRoot(ls) && RootOf(ls) == s.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRootIsIncrementalNotConsuming(t *testing.T) {
	ls := leaves(10, 1)
	var s Streaming
	for i, l := range ls {
		s.Append(l)
		if got, want := s.Root(), referenceRoot(ls[:i+1]); got != want {
			t.Fatalf("root after %d appends = %s, want %s", i+1, got, want)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	ls := leaves(37, 2)
	var s Streaming
	for _, l := range ls[:20] {
		s.Append(l)
	}
	snap := s.Snapshot()
	rootAt20 := s.Root()
	for _, l := range ls[20:] {
		s.Append(l)
	}
	if s.Root() == rootAt20 {
		t.Fatalf("root should change after more appends")
	}
	s.Restore(snap)
	if s.Root() != rootAt20 || s.Count() != 20 {
		t.Fatalf("restore did not bring back the snapshot state")
	}
	// Appending after restore must behave as if the later leaves never
	// happened.
	s.Append(ls[20])
	if s.Root() != referenceRoot(ls[:21]) {
		t.Fatalf("appends after restore diverge from reference")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var s Streaming
	s.Append(HashLeaf([]byte("a")))
	snap := s.Snapshot()
	s.Append(HashLeaf([]byte("b")))
	var s2 Streaming
	s2.Restore(snap)
	if s2.Count() != 1 {
		t.Fatalf("snapshot mutated by later appends")
	}
}

func TestNestedSavepointPattern(t *testing.T) {
	ls := leaves(9, 3)
	var s Streaming
	s.Append(ls[0])
	sp1 := s.Snapshot()
	s.Append(ls[1])
	sp2 := s.Snapshot()
	s.Append(ls[2])
	s.Restore(sp2)
	s.Append(ls[3])
	s.Restore(sp1)
	s.Append(ls[4])
	if s.Root() != referenceRoot([]Hash{ls[0], ls[4]}) {
		t.Fatalf("nested savepoint rollback produced wrong tree")
	}
}

func TestReset(t *testing.T) {
	var s Streaming
	s.Append(HashLeaf([]byte("a")))
	s.Reset()
	if s.Count() != 0 || !s.Root().IsZero() {
		t.Fatalf("reset did not clear the tree")
	}
}

func TestProofAllPositions(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n, int64(100+n))
		root := RootOf(ls)
		for i := 0; i < n; i++ {
			p, err := BuildProof(ls, uint64(i))
			if err != nil {
				t.Fatalf("BuildProof(n=%d,i=%d): %v", n, i, err)
			}
			if !p.Verify(root, ls[i]) {
				t.Fatalf("proof failed for n=%d i=%d", n, i)
			}
		}
	}
}

func TestProofRejectsWrongLeaf(t *testing.T) {
	ls := leaves(17, 5)
	root := RootOf(ls)
	p, _ := BuildProof(ls, 4)
	if p.Verify(root, ls[5]) {
		t.Fatalf("proof verified a different leaf")
	}
	var bad Hash
	if p.Verify(root, bad) {
		t.Fatalf("proof verified a zero leaf")
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	ls := leaves(9, 6)
	p, _ := BuildProof(ls, 2)
	other := RootOf(leaves(9, 7))
	if p.Verify(other, ls[2]) {
		t.Fatalf("proof verified against a different root")
	}
}

func TestProofRejectsTamperedSiblings(t *testing.T) {
	ls := leaves(12, 8)
	root := RootOf(ls)
	p, _ := BuildProof(ls, 3)
	if len(p.Siblings) == 0 {
		t.Fatalf("expected siblings")
	}
	p.Siblings[0][0] ^= 0xFF
	if p.Verify(root, ls[3]) {
		t.Fatalf("proof verified with a corrupted sibling")
	}
}

func TestProofOutOfRange(t *testing.T) {
	ls := leaves(3, 9)
	if _, err := BuildProof(ls, 3); err == nil {
		t.Fatalf("expected error for out-of-range index")
	}
	p := Proof{Index: 5, LeafCount: 3}
	if p.Verify(RootOf(ls), ls[0]) {
		t.Fatalf("out-of-range proof must not verify")
	}
}

func TestProofQuick(t *testing.T) {
	f := func(seed int64, nRaw, iRaw uint16) bool {
		n := int(nRaw%500) + 1
		i := uint64(iRaw) % uint64(n)
		ls := leaves(n, seed)
		p, err := BuildProof(ls, i)
		if err != nil {
			return false
		}
		return p.Verify(RootOf(ls), ls[i])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseHash(t *testing.T) {
	h := HashLeaf([]byte("hello"))
	got, err := ParseHash(h.String())
	if err != nil || got != h {
		t.Fatalf("ParseHash roundtrip failed: %v", err)
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Fatalf("expected error for bad hex")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Fatalf("expected error for short hash")
	}
}

func BenchmarkStreamingAppend(b *testing.B) {
	l := HashLeaf([]byte("leaf"))
	var s Streaming
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Append(l)
	}
}

// --- Accumulator (order-independent multiset, mergeable) -------------------

func TestAccumulatorOrderIndependent(t *testing.T) {
	hashes := make([]Hash, 50)
	for i := range hashes {
		hashes[i] = HashLeaf([]byte{byte(i), byte(i >> 8)})
	}
	var fwd, rev Accumulator
	for _, h := range hashes {
		fwd.Add(h)
	}
	for i := len(hashes) - 1; i >= 0; i-- {
		rev.Add(hashes[i])
	}
	if !fwd.Equal(rev) {
		t.Fatal("accumulator depends on insertion order")
	}
	if fwd.Count() != 50 {
		t.Fatalf("count = %d", fwd.Count())
	}
}

func TestAccumulatorMergeEquivalentToAdds(t *testing.T) {
	var whole Accumulator
	parts := make([]Accumulator, 4)
	for i := 0; i < 100; i++ {
		h := HashLeaf([]byte{byte(i)})
		whole.Add(h)
		parts[i%4].Add(h)
	}
	var merged Accumulator
	for _, p := range parts {
		merged.Merge(p)
	}
	if !merged.Equal(whole) {
		t.Fatal("merge of shard accumulators != single accumulator")
	}
}

func TestAccumulatorDetectsDifferences(t *testing.T) {
	var a, b Accumulator
	a.Add(HashLeaf([]byte("x")))
	b.Add(HashLeaf([]byte("y")))
	if a.Equal(b) {
		t.Fatal("different sets compare equal")
	}
	// Same sum, different count must not compare equal.
	var empty, twice Accumulator
	twice.Add(ZeroHash)
	twice.Add(ZeroHash)
	if empty.Sum() != twice.Sum() {
		t.Fatal("zero hashes should sum to zero")
	}
	if empty.Equal(twice) {
		t.Fatal("count mismatch not detected")
	}
	// A duplicated element must not cancel out (unlike XOR).
	var one, three Accumulator
	h := HashLeaf([]byte("dup"))
	one.Add(h)
	three.Add(h)
	three.Add(h)
	three.Add(h)
	if one.Sum() == three.Sum() {
		t.Fatal("duplicate additions cancelled")
	}
}

func TestAccumulatorCarryPropagation(t *testing.T) {
	var all1 Hash
	for i := range all1 {
		all1[i] = 0xFF
	}
	var a Accumulator
	a.Add(all1)
	a.Add(all1) // 2*(2^256-1) mod 2^256 = 2^256-2: ...FFFE
	sum := a.Sum()
	for i := 0; i < len(sum)-1; i++ {
		if sum[i] != 0xFF {
			t.Fatalf("byte %d = %x, want ff", i, sum[i])
		}
	}
	if sum[len(sum)-1] != 0xFE {
		t.Fatalf("last byte = %x, want fe", sum[len(sum)-1])
	}
}

func TestStreamingPoolReuse(t *testing.T) {
	s := GetStreaming()
	if s.Count() != 0 || !s.Root().IsZero() {
		t.Fatal("pooled Streaming not empty")
	}
	leaves := []Hash{HashLeaf([]byte("a")), HashLeaf([]byte("b")), HashLeaf([]byte("c"))}
	for _, l := range leaves {
		s.Append(l)
	}
	want := RootOf(leaves)
	if s.Root() != want {
		t.Fatal("pooled Streaming computes wrong root")
	}
	PutStreaming(s)
	// A recycled tree must behave exactly like a fresh one.
	s2 := GetStreaming()
	if s2.Count() != 0 || !s2.Root().IsZero() {
		t.Fatal("recycled Streaming not reset")
	}
	for _, l := range leaves {
		s2.Append(l)
	}
	if s2.Root() != want {
		t.Fatal("recycled Streaming computes wrong root")
	}
	PutStreaming(s2)
}

// TestBuildProofsMatchesBuildProof: the batched construction must produce
// byte-identical proofs to the one-at-a-time construction, for every
// index, at every tree size including promotion-heavy ones.
func TestBuildProofsMatchesBuildProof(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n, int64(300+n))
		root := RootOf(ls)
		indices := make([]uint64, n)
		for i := range indices {
			indices[i] = uint64(i)
		}
		ps, err := BuildProofs(ls, indices)
		if err != nil {
			t.Fatalf("BuildProofs(n=%d): %v", n, err)
		}
		for i, p := range ps {
			want, _ := BuildProof(ls, uint64(i))
			if p.Index != want.Index || p.LeafCount != want.LeafCount || len(p.Siblings) != len(want.Siblings) {
				t.Fatalf("n=%d i=%d: batched proof shape differs", n, i)
			}
			for j := range p.Siblings {
				if p.Siblings[j] != want.Siblings[j] {
					t.Fatalf("n=%d i=%d: sibling %d differs", n, i, j)
				}
			}
			if !p.Verify(root, ls[i]) {
				t.Fatalf("n=%d i=%d: batched proof does not verify", n, i)
			}
		}
	}
}

// TestBuildProofsDuplicateAndUnordered: indices may repeat and arrive in
// any order; out-of-range indices fail the whole batch.
func TestBuildProofsDuplicateAndUnordered(t *testing.T) {
	ls := leaves(11, 42)
	root := RootOf(ls)
	ps, err := BuildProofs(ls, []uint64{7, 0, 7, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range []uint64{7, 0, 7, 10} {
		if ps[i].Index != idx || !ps[i].Verify(root, ls[idx]) {
			t.Fatalf("proof %d (leaf %d) does not verify", i, idx)
		}
	}
	if _, err := BuildProofs(ls, []uint64{0, 11}); err == nil {
		t.Fatal("expected error for out-of-range index in batch")
	}
}
