// Package merkle implements the Merkle-tree machinery that SQL Ledger
// builds on: the streaming root computation from §3.2.1 of the paper
// (O(N) time, O(log N) space, with snapshot/restore support for partial
// transaction rollbacks), full-tree construction, and Merkle inclusion
// proofs used by block verification and transaction receipts (§5.1).
package merkle

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Hash is a SHA-256 digest.
type Hash [sha256.Size]byte

// ZeroHash is the all-zero hash, used as the "previous block" reference of
// block 0 in the database ledger.
var ZeroHash Hash

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether the hash is all zeroes.
func (h Hash) IsZero() bool { return h == ZeroHash }

// ParseHash parses a lowercase/uppercase hex digest.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("merkle: bad hash: %w", err)
	}
	if len(b) != sha256.Size {
		return h, fmt.Errorf("merkle: hash must be %d bytes, got %d", sha256.Size, len(b))
	}
	copy(h[:], b)
	return h, nil
}

// HashLeaf hashes raw leaf content.
func HashLeaf(content []byte) Hash { return sha256.Sum256(content) }

// combine hashes an interior node from its two children.
func combine(left, right Hash) Hash {
	var buf [2 * sha256.Size]byte
	copy(buf[:sha256.Size], left[:])
	copy(buf[sha256.Size:], right[:])
	return sha256.Sum256(buf[:])
}

// Streaming computes the root of a Merkle tree over a stream of leaf
// hashes without materializing the tree. Per §3.2.1 it keeps, for every
// level, the last node appended to that level; when a node gains a sibling
// the pair is hashed and propagated to the parent level. At finalization a
// node without a sibling is promoted unchanged to its parent level.
//
// The zero Streaming is an empty tree ready for use.
type Streaming struct {
	// levels[l] holds the pending (sibling-less) node of level l, valid
	// when the l-th bit of count's binary representation tracks it; we
	// track presence explicitly with has[l].
	levels []Hash
	has    []bool
	count  uint64
}

// Append adds a leaf hash to the tree.
func (s *Streaming) Append(leaf Hash) {
	node := leaf
	level := 0
	for {
		if level == len(s.levels) {
			s.levels = append(s.levels, node)
			s.has = append(s.has, true)
			break
		}
		if !s.has[level] {
			s.levels[level] = node
			s.has[level] = true
			break
		}
		// The pending node of this level gains a sibling: combine and
		// carry to the parent level.
		node = combine(s.levels[level], node)
		s.has[level] = false
		level++
	}
	s.count++
}

// AppendContent hashes content and appends the resulting leaf.
func (s *Streaming) AppendContent(content []byte) {
	s.Append(HashLeaf(content))
}

// Count returns the number of leaves appended so far.
func (s *Streaming) Count() uint64 { return s.count }

// Root finalizes and returns the root over the leaves appended so far.
// Per the paper, a node without a sibling is promoted as its own parent.
// The root of an empty tree is ZeroHash. Root does not consume the
// streaming state; more leaves may be appended afterwards.
func (s *Streaming) Root() Hash {
	var acc Hash
	have := false
	for l := 0; l < len(s.levels); l++ {
		if !s.has[l] {
			continue
		}
		if !have {
			acc = s.levels[l] // promoted up to this level unchanged
			have = true
			continue
		}
		acc = combine(s.levels[l], acc)
	}
	if !have {
		return ZeroHash
	}
	return acc
}

// Snapshot captures the current streaming state. Snapshots back the
// savepoint support described in §3.2.1: the O(log N) state makes copies
// cheap even for transactions holding many savepoints.
type Snapshot struct {
	levels []Hash
	has    []bool
	count  uint64
}

// Snapshot returns a copy of the current state.
func (s *Streaming) Snapshot() Snapshot {
	return Snapshot{
		levels: append([]Hash(nil), s.levels...),
		has:    append([]bool(nil), s.has...),
		count:  s.count,
	}
}

// Restore brings the tree back to a previously captured state.
func (s *Streaming) Restore(snap Snapshot) {
	s.levels = append(s.levels[:0], snap.levels...)
	s.has = append(s.has[:0], snap.has...)
	s.count = snap.count
}

// Reset returns the tree to empty.
func (s *Streaming) Reset() {
	s.levels = s.levels[:0]
	s.has = s.has[:0]
	s.count = 0
}

// streamingPool recycles Streaming trees and their O(log N) level slices
// across transactions: every ledger transaction needs one tree per touched
// table, and the ingest fast path must not pay an allocation for it.
var streamingPool = sync.Pool{New: func() any { return new(Streaming) }}

// GetStreaming returns an empty Streaming from the pool.
func GetStreaming() *Streaming { return streamingPool.Get().(*Streaming) }

// PutStreaming resets s and returns it to the pool. The caller must not
// use s afterwards.
func PutStreaming(s *Streaming) {
	s.Reset()
	streamingPool.Put(s)
}

// Accumulator is an order-independent multiset accumulator over leaf
// hashes: it sums hashes as 256-bit big-endian integers mod 2^256 and
// counts them (the additive "MSet-Add-Hash" construction). Two
// accumulators compare Equal iff they absorbed the same multiset of
// hashes, under the usual additive-accumulator collision assumptions.
//
// Unlike Streaming, whose state depends on leaf order and cannot be
// combined across partial streams, Accumulator is mergeable: disjoint
// shards of a scan can accumulate independently and Merge their states,
// which the sharded single-pass index verification (invariant 5) relies
// on. Callers that need an ordering guarantee must check it separately —
// the accumulator, by design, cannot see order.
//
// The zero Accumulator is empty and ready for use.
type Accumulator struct {
	sum   Hash
	count uint64
}

// Add absorbs one leaf hash.
func (a *Accumulator) Add(h Hash) {
	addInto(&a.sum, h)
	a.count++
}

// Merge absorbs another accumulator's state, as if every hash added to b
// had been added to a.
func (a *Accumulator) Merge(b Accumulator) {
	addInto(&a.sum, b.sum)
	a.count += b.count
}

// Count returns the number of hashes absorbed.
func (a Accumulator) Count() uint64 { return a.count }

// Equal reports whether both accumulators absorbed the same multiset of
// hashes (same sum and same count).
func (a Accumulator) Equal(b Accumulator) bool {
	return a.count == b.count && a.sum == b.sum
}

// Sum returns the current 256-bit sum (not a preimage-resistant digest of
// the multiset on its own; pair it with Count when reporting).
func (a Accumulator) Sum() Hash { return a.sum }

// addInto adds b into a as 256-bit big-endian integers mod 2^256.
func addInto(a *Hash, b Hash) {
	var carry uint16
	for i := sha256.Size - 1; i >= 0; i-- {
		s := uint16(a[i]) + uint16(b[i]) + carry
		a[i] = byte(s)
		carry = s >> 8
	}
}

// RootOf computes the Merkle root over a slice of leaf hashes using the
// same promotion rule as Streaming. It is the MERKLETREEAGG analogue used
// by the verification queries.
func RootOf(leaves []Hash) Hash {
	var s Streaming
	for _, l := range leaves {
		s.Append(l)
	}
	return s.Root()
}

// Proof is a Merkle inclusion proof for the leaf at Index within a tree of
// LeafCount leaves. Siblings lists the sibling hashes from the leaf level
// toward the root; levels where the node was promoted (no sibling) are
// skipped, which the verifier reconstructs from Index and LeafCount.
type Proof struct {
	Index     uint64
	LeafCount uint64
	Siblings  []Hash
}

// BuildProof constructs the inclusion proof for leaves[index].
func BuildProof(leaves []Hash, index uint64) (Proof, error) {
	n := uint64(len(leaves))
	if index >= n {
		return Proof{}, fmt.Errorf("merkle: index %d out of range (%d leaves)", index, n)
	}
	p := Proof{Index: index, LeafCount: n}
	level := append([]Hash(nil), leaves...)
	pos := index
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, combine(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // promotion
			}
		}
		sib := pos ^ 1
		if sib < uint64(len(level)) {
			p.Siblings = append(p.Siblings, level[sib])
		}
		pos /= 2
		level = next
	}
	return p, nil
}

// BuildProofs constructs inclusion proofs for several leaves of the same
// tree in one pass. BuildProof recomputes every tree level per call, so
// proving k rows of one transaction costs k full tree constructions;
// BuildProofs computes the levels once and extracts all k sibling paths
// from them. Read receipts use it to prove every row a snapshot read
// touched within a (transaction, table) tree, and every entry within a
// block tree.
func BuildProofs(leaves []Hash, indices []uint64) ([]Proof, error) {
	n := uint64(len(leaves))
	proofs := make([]Proof, len(indices))
	pos := make([]uint64, len(indices))
	for i, idx := range indices {
		if idx >= n {
			return nil, fmt.Errorf("merkle: index %d out of range (%d leaves)", idx, n)
		}
		proofs[i] = Proof{Index: idx, LeafCount: n}
		pos[i] = idx
	}
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		for i := range proofs {
			if sib := pos[i] ^ 1; sib < uint64(len(level)) {
				proofs[i].Siblings = append(proofs[i].Siblings, level[sib])
			}
			pos[i] /= 2
		}
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, combine(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // promotion
			}
		}
		level = next
	}
	return proofs, nil
}

// Verify checks that leaf at p.Index is included in the tree whose root is
// root, given the proof.
func (p Proof) Verify(root, leaf Hash) bool {
	if p.Index >= p.LeafCount || p.LeafCount == 0 {
		return false
	}
	node := leaf
	pos := p.Index
	width := p.LeafCount
	si := 0
	for width > 1 {
		if pos^1 < width { // node has a sibling at this level
			if si >= len(p.Siblings) {
				return false
			}
			sib := p.Siblings[si]
			si++
			if pos&1 == 0 {
				node = combine(node, sib)
			} else {
				node = combine(sib, node)
			}
		}
		// else: promoted unchanged
		pos /= 2
		width = (width + 1) / 2
	}
	return si == len(p.Siblings) && node == root
}
