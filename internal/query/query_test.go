package query

import (
	"fmt"
	"math/rand"
	"testing"

	"sqlledger/internal/engine"
	"sqlledger/internal/merkle"
	"sqlledger/internal/sqltypes"
)

func intRow(vals ...int64) sqltypes.Row {
	r := make(sqltypes.Row, len(vals))
	for i, v := range vals {
		r[i] = sqltypes.NewBigInt(v)
	}
	return r
}

func rows(vals ...[]int64) []sqltypes.Row {
	out := make([]sqltypes.Row, len(vals))
	for i, v := range vals {
		out[i] = intRow(v...)
	}
	return out
}

func render(rs []sqltypes.Row) string {
	s := ""
	for _, r := range rs {
		s += r.String()
	}
	return s
}

func TestValuesAndCollect(t *testing.T) {
	in := rows([]int64{1, 2}, []int64{3, 4})
	got := Collect(Values(in))
	if render(got) != "(1, 2)(3, 4)" {
		t.Fatalf("got %s", render(got))
	}
	if got := Collect(Values(nil)); len(got) != 0 {
		t.Fatalf("empty relation returned %d rows", len(got))
	}
}

func TestFilterProject(t *testing.T) {
	in := Values(rows([]int64{1}, []int64{2}, []int64{3}, []int64{4}))
	out := Collect(Project(
		Filter(in, func(r sqltypes.Row) bool { return r[0].Int()%2 == 0 }),
		func(r sqltypes.Row) sqltypes.Row {
			return append(r, sqltypes.NewBigInt(r[0].Int()*10))
		}))
	if render(out) != "(2, 20)(4, 40)" {
		t.Fatalf("got %s", render(out))
	}
}

func TestSortMultiColumn(t *testing.T) {
	in := Values(rows([]int64{2, 1}, []int64{1, 2}, []int64{1, 1}, []int64{2, 0}))
	out := Collect(Sort(in, 0, 1))
	if render(out) != "(1, 1)(1, 2)(2, 0)(2, 1)" {
		t.Fatalf("got %s", render(out))
	}
}

func TestLag(t *testing.T) {
	in := Values(rows([]int64{10}, []int64{20}, []int64{30}))
	out := Collect(Lag(in, 1))
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	if !out[0][0].Null {
		t.Fatal("first row should have NULL predecessor")
	}
	if out[1][0].Int() != 10 || out[1][1].Int() != 20 {
		t.Fatalf("lag pairing wrong: %s", out[1])
	}
	if out[2][0].Int() != 20 || out[2][1].Int() != 30 {
		t.Fatalf("lag pairing wrong: %s", out[2])
	}
}

func TestHashJoinInner(t *testing.T) {
	left := Values(rows([]int64{1, 100}, []int64{2, 200}, []int64{3, 300}))
	right := Values(rows([]int64{2, -2}, []int64{3, -3}, []int64{3, -33}, []int64{4, -4}))
	out := Collect(Sort(HashJoin(left, right, []int{0}, []int{0}, InnerJoin, 0), 0, 3))
	if render(out) != "(2, 200, 2, -2)(3, 300, 3, -33)(3, 300, 3, -3)" {
		t.Fatalf("got %s", render(out))
	}
}

func TestHashJoinLeft(t *testing.T) {
	left := Values(rows([]int64{1}, []int64{2}))
	right := Values(rows([]int64{2, 20}))
	out := Collect(Sort(HashJoin(left, right, []int{0}, []int{0}, LeftJoin, 2), 0))
	if len(out) != 2 {
		t.Fatalf("rows = %d", len(out))
	}
	if !out[0][1].Null || !out[0][2].Null {
		t.Fatalf("unmatched left row not NULL-padded: %s", out[0])
	}
	if out[1][2].Int() != 20 {
		t.Fatalf("matched row wrong: %s", out[1])
	}
}

func TestGroupByCountMax(t *testing.T) {
	in := Values(rows(
		[]int64{1, 5}, []int64{1, 9}, []int64{2, 3}, []int64{1, 7}, []int64{2, 8},
	))
	out := Collect(Sort(GroupBy(in, []int{0}, &CountAgg{}, &MaxAgg{Col: 1}), 0))
	if render(out) != "(1, 3, 9)(2, 2, 8)" {
		t.Fatalf("got %s", render(out))
	}
}

func TestGroupByPreservesInputOrderWithinGroup(t *testing.T) {
	// MERKLETREEAGG is order-sensitive; verify via hashes.
	mkHash := func(b byte) sqltypes.Value {
		h := merkle.HashLeaf([]byte{b})
		return sqltypes.NewVarBinary(h[:])
	}
	in := Values([]sqltypes.Row{
		{sqltypes.NewBigInt(1), mkHash(1)},
		{sqltypes.NewBigInt(1), mkHash(2)},
		{sqltypes.NewBigInt(1), mkHash(3)},
	})
	out := Collect(GroupBy(in, []int{0}, &MerkleTreeAgg{HashCol: 1}))
	want := merkle.RootOf([]merkle.Hash{
		merkle.HashLeaf([]byte{1}), merkle.HashLeaf([]byte{2}), merkle.HashLeaf([]byte{3}),
	})
	if string(out[0][1].Bytes) != string(want[:]) {
		t.Fatal("MerkleTreeAgg does not match merkle.RootOf")
	}
	// Different order, different root.
	in2 := Values([]sqltypes.Row{
		{sqltypes.NewBigInt(1), mkHash(3)},
		{sqltypes.NewBigInt(1), mkHash(2)},
		{sqltypes.NewBigInt(1), mkHash(1)},
	})
	out2 := Collect(GroupBy(in2, []int{0}, &MerkleTreeAgg{HashCol: 1}))
	if string(out2[0][1].Bytes) == string(want[:]) {
		t.Fatal("MerkleTreeAgg ignored input order")
	}
}

func TestMaxAggEmptyAndClone(t *testing.T) {
	m := &MaxAgg{Col: 0}
	if !m.Result().Null {
		t.Fatal("empty max should be NULL")
	}
	m.Add(intRow(5))
	c := m.Clone().(*MaxAgg)
	if !c.Result().Null {
		t.Fatal("clone must be fresh")
	}
}

func TestScanEngineTable(t *testing.T) {
	db, err := engine.Open(engine.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("k", sqltypes.TypeBigInt),
		sqltypes.Col("v", sqltypes.TypeBigInt),
	}, "k")
	tab, err := db.CreateTable(engine.CreateTableSpec{Name: "t", Schema: s})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin("u")
	for i := int64(3); i >= 1; i-- {
		if _, err := tx.Insert(tab, intRow(i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Commit(tx); err != nil {
		t.Fatal(err)
	}
	out := Collect(Scan(tab))
	if render(out) != "(1, 10)(2, 20)(3, 30)" {
		t.Fatalf("scan = %s", render(out))
	}
}

// TestGroupByAgainstNaive cross-checks GroupBy on random data against a
// naive recomputation.
func TestGroupByAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var in []sqltypes.Row
	naiveCount := map[int64]int64{}
	naiveMax := map[int64]int64{}
	for i := 0; i < 500; i++ {
		g := int64(rng.Intn(10))
		v := rng.Int63n(1000)
		in = append(in, intRow(g, v))
		naiveCount[g]++
		if v > naiveMax[g] {
			naiveMax[g] = v
		}
	}
	out := Collect(GroupBy(Values(in), []int{0}, &CountAgg{}, &MaxAgg{Col: 1}))
	if len(out) != len(naiveCount) {
		t.Fatalf("groups = %d, want %d", len(out), len(naiveCount))
	}
	for _, r := range out {
		g := r[0].Int()
		if r[1].Int() != naiveCount[g] || r[2].Int() != naiveMax[g] {
			t.Fatalf("group %d: got (%d,%d), want (%d,%d)", g, r[1].Int(), r[2].Int(), naiveCount[g], naiveMax[g])
		}
	}
}

func TestJoinCompositeKeys(t *testing.T) {
	left := Values(rows([]int64{1, 1, 100}, []int64{1, 2, 200}))
	right := Values(rows([]int64{1, 2, -1}))
	out := Collect(HashJoin(left, right, []int{0, 1}, []int{0, 1}, InnerJoin, 0))
	if len(out) != 1 || out[0][2].Int() != 200 {
		t.Fatalf("composite join = %v", out)
	}
}

func ExampleGroupBy() {
	in := Values(rows([]int64{1, 10}, []int64{1, 20}, []int64{2, 30}))
	for _, r := range Collect(GroupBy(in, []int{0}, &CountAgg{})) {
		fmt.Println(r)
	}
	// Output:
	// (1, 2)
	// (2, 1)
}
