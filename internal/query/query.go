// Package query implements a small volcano-style query-operator layer
// over engine tables: scans, filters, projections, sorts, hash joins
// (inner and left), window LAG access and grouped aggregation.
//
// SQL Ledger's verification is expressed through the database's own query
// processor (§3.4.2): the row serialization/hashing logic is exposed as
// the LEDGERHASH intrinsic and the Merkle root computation as the
// MERKLETREEAGG aggregate, and the five invariants become queries over the
// ledger, history and system tables. This package provides those operators
// and functions; internal/core builds the verification plans from them.
package query

import (
	"sort"

	"sqlledger/internal/engine"
	"sqlledger/internal/merkle"
	"sqlledger/internal/sqltypes"
)

// Iterator is the volcano-model operator interface: Next returns the next
// row, or false when the stream is exhausted.
type Iterator interface {
	Next() (sqltypes.Row, bool)
}

// Collect drains an iterator into a slice.
func Collect(it Iterator) []sqltypes.Row {
	var out []sqltypes.Row
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// --- Sources ----------------------------------------------------------------

type sliceIter struct {
	rows []sqltypes.Row
	pos  int
}

func (s *sliceIter) Next() (sqltypes.Row, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true
}

// Values returns an iterator over a literal relation (the OPENJSON
// analogue: verification turns the input digest array into a relation).
func Values(rows []sqltypes.Row) Iterator { return &sliceIter{rows: rows} }

// Scan returns an iterator over a table in clustered-key order. The scan
// materializes under the table read lock, so the iterator sees a
// consistent snapshot.
func Scan(t *engine.Table) Iterator {
	var rows []sqltypes.Row
	t.Scan(func(_ []byte, r sqltypes.Row) bool {
		rows = append(rows, r)
		return true
	})
	return &sliceIter{rows: rows}
}

// --- Row transforms -----------------------------------------------------------

type filterIter struct {
	in   Iterator
	pred func(sqltypes.Row) bool
}

func (f *filterIter) Next() (sqltypes.Row, bool) {
	for {
		r, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(r) {
			return r, true
		}
	}
}

// Filter keeps rows satisfying pred.
func Filter(in Iterator, pred func(sqltypes.Row) bool) Iterator {
	return &filterIter{in: in, pred: pred}
}

type projectIter struct {
	in Iterator
	fn func(sqltypes.Row) sqltypes.Row
}

func (p *projectIter) Next() (sqltypes.Row, bool) {
	r, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	return p.fn(r), true
}

// Project maps each row through fn (computed columns, scalar functions —
// LEDGERHASH appears here as a fn producing a VARBINARY hash column).
func Project(in Iterator, fn func(sqltypes.Row) sqltypes.Row) Iterator {
	return &projectIter{in: in, fn: fn}
}

// Sort materializes the input and sorts it by the given column ordinals.
func Sort(in Iterator, by ...int) Iterator {
	rows := Collect(in)
	sort.SliceStable(rows, func(i, j int) bool {
		for _, ord := range by {
			if c := rows[i][ord].Compare(rows[j][ord]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return &sliceIter{rows: rows}
}

// Lag pairs every row with its predecessor (NULL-padded for the first
// row), the SQL LAG window function the chain-verification query uses:
// the output row is prev ++ current.
func Lag(in Iterator, arity int) Iterator {
	rows := Collect(in)
	out := make([]sqltypes.Row, len(rows))
	for i, r := range rows {
		prev := make(sqltypes.Row, arity)
		if i == 0 {
			for j := range prev {
				prev[j] = sqltypes.NewNull(sqltypes.TypeVarBinary)
			}
		} else {
			copy(prev, rows[i-1])
		}
		out[i] = append(append(sqltypes.Row{}, prev...), r...)
	}
	return &sliceIter{rows: out}
}

// --- Joins ---------------------------------------------------------------------

// JoinKind selects inner or left-outer semantics.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	// LeftJoin emits unmatched left rows padded with NULLs of the right
	// arity (rightArity must be provided).
	LeftJoin
)

// HashJoin joins left and right on equality of the key columns given by
// leftKey/rightKey ordinals. Output rows are left ++ right. For LeftJoin,
// rightArity gives the padding width for unmatched left rows.
func HashJoin(left, right Iterator, leftKey, rightKey []int, kind JoinKind, rightArity int) Iterator {
	build := make(map[string][]sqltypes.Row)
	for {
		r, ok := right.Next()
		if !ok {
			break
		}
		build[keyOf(r, rightKey)] = append(build[keyOf(r, rightKey)], r)
	}
	var out []sqltypes.Row
	for {
		l, ok := left.Next()
		if !ok {
			break
		}
		matches := build[keyOf(l, leftKey)]
		if len(matches) == 0 {
			if kind == LeftJoin {
				pad := make(sqltypes.Row, rightArity)
				for i := range pad {
					pad[i] = sqltypes.NewNull(sqltypes.TypeVarBinary)
				}
				out = append(out, append(append(sqltypes.Row{}, l...), pad...))
			}
			continue
		}
		for _, m := range matches {
			out = append(out, append(append(sqltypes.Row{}, l...), m...))
		}
	}
	return &sliceIter{rows: out}
}

func keyOf(r sqltypes.Row, ords []int) string {
	return string(sqltypes.EncodeKey(nil, pick(r, ords)...))
}

func pick(r sqltypes.Row, ords []int) []sqltypes.Value {
	out := make([]sqltypes.Value, len(ords))
	for i, o := range ords {
		out[i] = r[o]
	}
	return out
}

// --- Aggregation ------------------------------------------------------------------

// Aggregate accumulates rows of a group and produces a value.
type Aggregate interface {
	Add(sqltypes.Row)
	Result() sqltypes.Value
	// Clone returns a fresh accumulator of the same kind.
	Clone() Aggregate
}

// GroupBy groups the input by the key ordinals and emits, per group, the
// key values followed by each aggregate's result. Input order within a
// group is preserved (MERKLETREEAGG is order-sensitive, so callers Sort
// first, exactly as the verification queries ORDER BY ordinal/sequence).
func GroupBy(in Iterator, key []int, aggs ...Aggregate) Iterator {
	type group struct {
		key  []sqltypes.Value
		accs []Aggregate
	}
	order := make([]string, 0, 16)
	groups := make(map[string]*group)
	for {
		r, ok := in.Next()
		if !ok {
			break
		}
		k := keyOf(r, key)
		g := groups[k]
		if g == nil {
			g = &group{key: pick(r, key), accs: make([]Aggregate, len(aggs))}
			for i, a := range aggs {
				g.accs[i] = a.Clone()
			}
			groups[k] = g
			order = append(order, k)
		}
		for _, a := range g.accs {
			a.Add(r)
		}
	}
	rows := make([]sqltypes.Row, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := append(sqltypes.Row{}, g.key...)
		for _, a := range g.accs {
			row = append(row, a.Result())
		}
		rows = append(rows, row)
	}
	return &sliceIter{rows: rows}
}

// MerkleTreeAgg is the MERKLETREEAGG aggregate function (§3.4.2): it
// consumes a VARBINARY hash column (by ordinal) in input order and
// produces the Merkle tree root over those hashes.
type MerkleTreeAgg struct {
	HashCol int
	tree    merkle.Streaming
}

// Add implements Aggregate.
func (m *MerkleTreeAgg) Add(r sqltypes.Row) {
	var h merkle.Hash
	copy(h[:], r[m.HashCol].Bytes)
	m.tree.Append(h)
}

// Result implements Aggregate.
func (m *MerkleTreeAgg) Result() sqltypes.Value {
	root := m.tree.Root()
	return sqltypes.NewVarBinary(append([]byte(nil), root[:]...))
}

// Clone implements Aggregate.
func (m *MerkleTreeAgg) Clone() Aggregate { return &MerkleTreeAgg{HashCol: m.HashCol} }

// CountAgg counts rows in the group.
type CountAgg struct{ n int64 }

// Add implements Aggregate.
func (c *CountAgg) Add(sqltypes.Row) { c.n++ }

// Result implements Aggregate.
func (c *CountAgg) Result() sqltypes.Value { return sqltypes.NewBigInt(c.n) }

// Clone implements Aggregate.
func (c *CountAgg) Clone() Aggregate { return &CountAgg{} }

// MaxAgg tracks the maximum of a column.
type MaxAgg struct {
	Col int
	cur *sqltypes.Value
}

// Add implements Aggregate.
func (m *MaxAgg) Add(r sqltypes.Row) {
	v := r[m.Col]
	if m.cur == nil || m.cur.Compare(v) < 0 {
		c := v.Clone()
		m.cur = &c
	}
}

// Result implements Aggregate.
func (m *MaxAgg) Result() sqltypes.Value {
	if m.cur == nil {
		return sqltypes.NewNull(sqltypes.TypeBigInt)
	}
	return *m.cur
}

// Clone implements Aggregate.
func (m *MaxAgg) Clone() Aggregate { return &MaxAgg{Col: m.Col} }
