package wal

import (
	"io"
	"sync"
)

// Pipelined log reading for recovery. Replay cost splits into three very
// different kinds of work: pulling record bytes off disk (sequential I/O +
// CRC), decoding payloads (allocation-heavy: row decode, key copies), and
// applying write sets. A single-threaded loop pays them in series; the
// PipelinedReader overlaps them — a read-ahead goroutine fetches raw
// records in batches, a worker pool decodes batches concurrently, and the
// consumer reassembles batches by sequence number so records are always
// delivered in strict log order. The redo loop downstream stays order-
// dependent and never knows the decode ran out of order.

// DecodedRecord is a log record with its payload eagerly decoded. Exactly
// one of DML, Commit, Prepare is non-nil for the record types the decode
// stage understands (DML records, COMMIT, PREPARE); other types (DDL,
// CHECKPOINT, BEGIN, ABORT) pass through with only the raw payload, since
// they are rare and their interpretation belongs to the engine.
type DecodedRecord struct {
	Record
	DML     *DMLPayload
	Commit  *CommitPayload
	Prepare *PreparePayload
}

// decodeRecord eagerly decodes the payload kinds the pipeline understands.
func decodeRecord(rec Record) (DecodedRecord, error) {
	out := DecodedRecord{Record: rec}
	switch rec.Type {
	case RecInsert, RecDelete, RecUpdate:
		p, err := DecodeDML(rec.Type, rec.Payload)
		if err != nil {
			return out, err
		}
		out.DML = &p
	case RecCommit:
		p, err := DecodeCommit(rec.Payload)
		if err != nil {
			return out, err
		}
		out.Commit = &p
	case RecPrepare:
		p, err := DecodePrepare(rec.Payload)
		if err != nil {
			return out, err
		}
		out.Prepare = &p
	}
	return out, nil
}

// pipelineBatchRecords is how many raw records the read-ahead stage groups
// into one decode unit. Large enough to amortize channel traffic, small
// enough that reassembly never holds more than a few MB per in-flight
// batch.
const pipelineBatchRecords = 256

// rawBatch is a sequence-numbered group of raw records headed for the
// decode pool. readErr (io.EOF excluded) is the reader error that ended
// the scan; it is delivered after the batch's records, in log order.
type rawBatch struct {
	seq     int
	recs    []Record
	readErr error
}

// decodedBatch is a decoded rawBatch. If a record failed to decode,
// failErr is set and failIdx is its index; records past it are undecoded
// and must not be consumed.
type decodedBatch struct {
	seq     int
	recs    []DecodedRecord
	failIdx int
	failErr error
	readErr error
}

// PipelinedReader reads log records through a read-ahead stage and a
// parallel payload-decode pool, delivering DecodedRecords in strict log
// order. workers <= 1 degrades to a fully serial read-decode loop with no
// goroutines — the baseline the recovery scaling gate measures against.
// Not safe for concurrent use.
type PipelinedReader struct {
	workers int

	// Serial path.
	serial *Reader

	// Pipelined path.
	decCh   chan decodedBatch
	stop    chan struct{}
	pending map[int]decodedBatch
	nextSeq int
	cur     *decodedBatch
	curIdx  int
	done    bool
	closed  bool
}

// NewPipelinedReader opens a pipelined reader over the log at path,
// scanning [start, end) like NewReader. workers sets the decode
// parallelism; values <= 1 select the serial path.
func NewPipelinedReader(path string, start, end int64, workers int) (*PipelinedReader, error) {
	r, err := NewReader(path, start, end)
	if err != nil {
		return nil, err
	}
	p := &PipelinedReader{workers: workers}
	if workers <= 1 {
		p.serial = r
		return p, nil
	}
	rawCh := make(chan rawBatch, workers*2)
	p.decCh = make(chan decodedBatch, workers*2)
	p.stop = make(chan struct{})
	p.pending = make(map[int]decodedBatch)

	// Read-ahead stage: batch raw records off the private file handle.
	go func() {
		defer r.Close()
		seq := 0
		batch := make([]Record, 0, pipelineBatchRecords)
		flush := func(readErr error) bool {
			b := rawBatch{seq: seq, recs: batch, readErr: readErr}
			seq++
			select {
			case rawCh <- b:
				batch = make([]Record, 0, pipelineBatchRecords)
				return true
			case <-p.stop:
				return false
			}
		}
		for {
			rec, err := r.Next()
			if err != nil {
				if err == io.EOF {
					err = nil
				}
				flush(err)
				close(rawCh)
				return
			}
			batch = append(batch, rec)
			if len(batch) >= pipelineBatchRecords {
				if !flush(nil) {
					close(rawCh)
					return
				}
			}
		}
	}()

	// Decode pool: payloads decode concurrently; batch order is restored
	// by the consumer via sequence numbers.
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rb := range rawCh {
				db := decodedBatch{seq: rb.seq, failIdx: -1, readErr: rb.readErr}
				db.recs = make([]DecodedRecord, 0, len(rb.recs))
				for j, rec := range rb.recs {
					dec, err := decodeRecord(rec)
					if err != nil {
						db.failIdx, db.failErr = j, err
						break
					}
					db.recs = append(db.recs, dec)
				}
				select {
				case p.decCh <- db:
				case <-p.stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(p.decCh)
	}()
	return p, nil
}

// Next returns the next decoded record in log order, io.EOF at the end of
// the scan range, or the first read/decode error at the log position where
// it occurred.
func (p *PipelinedReader) Next() (DecodedRecord, error) {
	if p.serial != nil {
		rec, err := p.serial.Next()
		if err != nil {
			return DecodedRecord{}, err
		}
		return decodeRecord(rec)
	}
	for {
		if p.done {
			return DecodedRecord{}, io.EOF
		}
		if p.cur != nil {
			if p.curIdx < len(p.cur.recs) {
				rec := p.cur.recs[p.curIdx]
				p.curIdx++
				return rec, nil
			}
			if p.cur.failErr != nil {
				return DecodedRecord{}, p.cur.failErr
			}
			if p.cur.readErr != nil {
				return DecodedRecord{}, p.cur.readErr
			}
			p.cur = nil
		}
		// Reassemble: pull batches until the next sequence number shows up.
		for p.cur == nil {
			if b, ok := p.pending[p.nextSeq]; ok {
				delete(p.pending, p.nextSeq)
				p.nextSeq++
				p.cur, p.curIdx = &b, 0
				break
			}
			b, ok := <-p.decCh
			if !ok {
				p.done = true
				return DecodedRecord{}, io.EOF
			}
			p.pending[b.seq] = b
		}
	}
}

// Close stops the pipeline and releases the underlying file handle. Safe
// to call after an error or mid-scan.
func (p *PipelinedReader) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	if p.serial != nil {
		return p.serial.Close()
	}
	close(p.stop)
	// Drain until the workers close decCh so none is stuck sending.
	for range p.decCh {
	}
	return nil
}
