package wal

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTestLogMode(t *testing.T, mode SyncMode) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, mode)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

// commitBatch builds a tiny DML+COMMIT batch tagged with txID.
func commitBatch(txID uint64) []Record {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], txID)
	return []Record{
		{Type: RecInsert, TxID: txID, Payload: p[:]},
		{Type: RecCommit, TxID: txID, Payload: p[:]},
	}
}

// TestGroupCommitOrderMatchesEnqueue pins the ordering invariant the
// engine depends on: batches land in the log in enqueue order, whatever
// the flusher's grouping.
func TestGroupCommitOrderMatchesEnqueue(t *testing.T) {
	l, path := openTestLogMode(t, SyncBuffered)
	g := NewGroupCommitter(l, GroupConfig{MaxBatch: 3})
	const n = 100
	tickets := make([]*Ticket, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := uint64(0)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Sequence + enqueue under one lock, as the engine does
				// under commitMu.
				mu.Lock()
				if next >= n {
					mu.Unlock()
					return
				}
				id := next
				next++
				tk := g.Enqueue(commitBatch(id))
				mu.Unlock()
				if _, err := tk.Wait(); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				tickets[id] = tk
			}
		}()
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, path)
	if len(recs) != 2*n {
		t.Fatalf("got %d records, want %d", len(recs), 2*n)
	}
	for i, rec := range recs {
		wantTx := uint64(i / 2)
		if rec.TxID != wantTx {
			t.Fatalf("record %d: txID %d, want %d (log order != enqueue order)", i, rec.TxID, wantTx)
		}
	}
	// Ticket LSNs must agree with where the batches actually landed.
	for id, tk := range tickets {
		lsn, _ := tk.Wait()
		if lsn != recs[2*id].LSN {
			t.Fatalf("tx %d: ticket LSN %d, log LSN %d", id, lsn, recs[2*id].LSN)
		}
	}
	st := g.Stats()
	if st.Commits != n || st.Records != 2*n {
		t.Fatalf("stats = %+v, want %d commits / %d records", st, n, 2*n)
	}
	if st.Groups < (n+2)/3 {
		t.Fatalf("groups = %d, below minimum for MaxBatch=3", st.Groups)
	}
}

// TestGroupCommitAmortizesFsync checks the whole point: under SyncFull
// with concurrent committers, fsyncs per commit fall well below one.
func TestGroupCommitAmortizesFsync(t *testing.T) {
	l, _ := openTestLogMode(t, SyncFull)
	g := NewGroupCommitter(l, GroupConfig{MaxDelay: 2 * time.Millisecond})
	defer g.Close()
	const clients, perClient = 4, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				tk := g.Enqueue(commitBatch(uint64(c*perClient + i)))
				if _, err := tk.Wait(); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	total := int64(clients * perClient)
	if syncs := l.SyncCount(); syncs*2 >= total {
		t.Fatalf("%d fsyncs for %d commits: group commit is not amortizing", syncs, total)
	}
}

// TestGroupCommitSyncModes runs the committer under every SyncMode and
// checks the records read back intact.
func TestGroupCommitSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncNone, SyncBuffered, SyncFull} {
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			l, path := openTestLogMode(t, mode)
			g := NewGroupCommitter(l, GroupConfig{})
			for i := 0; i < 10; i++ {
				if _, err := g.Enqueue(commitBatch(uint64(i))).Wait(); err != nil {
					t.Fatal(err)
				}
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil { // SyncNone buffers until close
				t.Fatal(err)
			}
			if got := len(readAll(t, path)); got != 20 {
				t.Fatalf("read back %d records, want 20", got)
			}
		})
	}
}

// TestGroupCommitClose drains pending work on Close and rejects later
// enqueues.
func TestGroupCommitClose(t *testing.T) {
	l, path := openTestLogMode(t, SyncBuffered)
	g := NewGroupCommitter(l, GroupConfig{MaxDelay: 50 * time.Millisecond})
	tk := g.Enqueue(commitBatch(1))
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatalf("pending commit dropped at close: %v", err)
	}
	if _, err := g.Enqueue(commitBatch(2)).Wait(); err != ErrCommitterClosed {
		t.Fatalf("enqueue after close: err = %v, want ErrCommitterClosed", err)
	}
	if err := g.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := len(readAll(t, path)); got != 2 {
		t.Fatalf("read back %d records, want 2", got)
	}
}
