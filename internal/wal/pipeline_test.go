package wal

import (
	"fmt"
	"io"
	"os"
	"testing"

	"sqlledger/internal/sqltypes"
)

// writePipelineLog appends n committed single-insert transactions and
// returns the log path plus the flushed size.
func writePipelineLog(t *testing.T, n int) (string, int64) {
	t.Helper()
	l, path := openTestLog(t)
	for i := 0; i < n; i++ {
		tx := uint64(i + 1)
		key := []byte(fmt.Sprintf("key-%06d", i))
		row := sqltypes.Row{sqltypes.NewBigInt(int64(i))}
		if _, err := l.Append(RecInsert, tx, EncodeDML(RecInsert, DMLPayload{TableID: 1, Key: key, After: row})); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(RecCommit, tx, EncodeCommit(CommitPayload{CommitTS: int64(i + 1), User: "t"})); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	return path, l.Size()
}

func drainPipelined(t *testing.T, path string, end int64, workers int) []DecodedRecord {
	t.Helper()
	p, err := NewPipelinedReader(path, 0, end, workers)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var out []DecodedRecord
	for {
		rec, err := p.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("next (workers=%d): %v", workers, err)
		}
		out = append(out, rec)
	}
}

// TestPipelinedReaderMatchesSerial proves the parallel decode delivers the
// exact record sequence of the serial path, payloads included, for enough
// records to span many batches.
func TestPipelinedReaderMatchesSerial(t *testing.T) {
	const n = 3000 // ~23 batches of 256 at 2 records/tx
	path, end := writePipelineLog(t, n)
	serial := drainPipelined(t, path, end, 1)
	if len(serial) != 2*n {
		t.Fatalf("serial read %d records, want %d", len(serial), 2*n)
	}
	for _, workers := range []int{2, 4, 8} {
		par := drainPipelined(t, path, end, workers)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d read %d records, want %d", workers, len(par), len(serial))
		}
		for i := range serial {
			s, p := serial[i], par[i]
			if s.LSN != p.LSN || s.Type != p.Type || s.TxID != p.TxID {
				t.Fatalf("workers=%d record %d header mismatch: %+v vs %+v", workers, i, s.Record, p.Record)
			}
			switch s.Type {
			case RecInsert:
				if p.DML == nil || string(p.DML.Key) != string(s.DML.Key) {
					t.Fatalf("workers=%d record %d DML mismatch", workers, i)
				}
			case RecCommit:
				if p.Commit == nil || p.Commit.CommitTS != s.Commit.CommitTS {
					t.Fatalf("workers=%d record %d commit mismatch", workers, i)
				}
			}
		}
	}
}

// TestPipelinedReaderDecodeError proves a payload that fails to decode
// surfaces as an error at its log position, after every earlier record was
// delivered intact.
func TestPipelinedReaderDecodeError(t *testing.T) {
	l, path := openTestLog(t)
	const good = 700
	for i := 0; i < good; i++ {
		l.Append(RecInsert, uint64(i+1), EncodeDML(RecInsert, DMLPayload{TableID: 1, Key: []byte("k"), After: sqltypes.Row{sqltypes.NewBigInt(1)}}))
	}
	// A commit payload that is valid WAL framing but garbage to DecodeCommit.
	l.Append(RecCommit, good+1, []byte{0xff})
	l.Flush()
	for _, workers := range []int{1, 4} {
		p, err := NewPipelinedReader(path, 0, l.Size(), workers)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for {
			_, err := p.Next()
			if err == io.EOF {
				t.Fatalf("workers=%d: reached EOF without decode error", workers)
			}
			if err != nil {
				break
			}
			seen++
		}
		if seen != good {
			t.Fatalf("workers=%d: delivered %d records before error, want %d", workers, seen, good)
		}
		p.Close()
	}
}

// TestPipelinedReaderEarlyClose proves Close mid-scan shuts the pipeline
// down without deadlocking or leaking the file handle.
func TestPipelinedReaderEarlyClose(t *testing.T) {
	path, end := writePipelineLog(t, 4000)
	p, err := NewPipelinedReader(path, 0, end, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := p.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatalf("remove after close: %v", err)
	}
}
