// Package wal implements the write-ahead log that gives the engine
// ARIES-style atomicity and durability (§3.3.2 of the SQL Ledger paper).
//
// The log is a sequence of CRC-protected, length-prefixed records. Commit
// records carry the ledger transaction entry (per-table Merkle roots plus
// the assigned block id and ordinal) so that the in-memory database-ledger
// queue can be reconstructed during recovery, exactly as the paper
// describes: "the Analysis phase of recovery will process the COMMIT log
// records since the last successful checkpoint and reconstruct the state
// of the in-memory queue".
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"sqlledger/internal/obs"
)

// RecordType identifies a log record.
type RecordType byte

// Log record types.
const (
	RecBegin RecordType = iota + 1
	RecInsert
	RecDelete
	RecUpdate
	RecCommit
	RecAbort
	RecCheckpoint
	RecDDL
	// RecPrepare marks a transaction as prepared under a global (cross-
	// shard) transaction id: its DML records are durable but the commit
	// decision belongs to the 2PC coordinator. A later RecCommit or
	// RecAbort for the same transaction resolves it; neither means the
	// transaction is in doubt at recovery.
	RecPrepare
)

// String names the record type.
func (t RecordType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecInsert:
		return "INSERT"
	case RecDelete:
		return "DELETE"
	case RecUpdate:
		return "UPDATE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCheckpoint:
		return "CHECKPOINT"
	case RecDDL:
		return "DDL"
	case RecPrepare:
		return "PREPARE"
	}
	return fmt.Sprintf("REC(%d)", byte(t))
}

// Record is a decoded log record. Payload interpretation depends on Type;
// the engine encodes/decodes payloads with the helpers in payload.go.
type Record struct {
	LSN     int64 // byte offset of the record in the log
	Type    RecordType
	TxID    uint64
	Payload []byte
}

// SyncMode controls when the log is flushed to stable storage.
type SyncMode int

// Sync modes.
const (
	// SyncBuffered flushes to the OS on commit but does not fsync. This is
	// the default used by benchmarks; a crash of the process loses nothing,
	// a crash of the OS can lose the tail of the log.
	SyncBuffered SyncMode = iota
	// SyncFull fsyncs on every commit.
	SyncFull
	// SyncNone leaves records in the user-space buffer until Flush.
	SyncNone
)

// Log is an append-only write-ahead log backed by a single file. All
// methods are safe for concurrent use; Append serializes internally so
// LSNs reflect append order.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	size int64
	mode SyncMode
	m    logMetrics
	torn int64 // bytes truncated from a torn tail at Open; reported once
}

// logMetrics holds the log's metric handles, resolved once so the append
// path never does a registry lookup.
type logMetrics struct {
	fsyncTotal        *obs.Counter
	fsyncSeconds      *obs.Histogram
	flushTotal        *obs.Counter
	appendRecords     *obs.Counter
	appendBytes       *obs.Counter
	groupCommits      *obs.Counter
	groups            *obs.Counter
	groupRecords      *obs.Counter
	groupSize         *obs.Histogram
	groupFlushSeconds *obs.Histogram
}

func bindLogMetrics(reg *obs.Registry) logMetrics {
	return logMetrics{
		fsyncTotal:        reg.Counter(obs.WALFsyncTotal),
		fsyncSeconds:      reg.Histogram(obs.WALFsyncSeconds, nil),
		flushTotal:        reg.Counter(obs.WALFlushTotal),
		appendRecords:     reg.Counter(obs.WALAppendRecords),
		appendBytes:       reg.Counter(obs.WALAppendBytes),
		groupCommits:      reg.Counter(obs.WALGroupCommits),
		groups:            reg.Counter(obs.WALGroups),
		groupRecords:      reg.Counter(obs.WALGroupRecords),
		groupSize:         reg.Histogram(obs.WALGroupSize, obs.SizeBuckets),
		groupFlushSeconds: reg.Histogram(obs.WALGroupFlushSeconds, nil),
	}
}

const headerLen = 4 + 4 + 1 + 8 // len + crc + type + txid

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Open opens (creating if necessary) the log file at path.
func Open(path string, mode SyncMode) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat: %w", err)
	}
	// Scan for a torn tail and truncate it so appends resume at a clean
	// record boundary.
	valid, err := validPrefix(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	torn := int64(0)
	if valid < st.Size() {
		torn = st.Size() - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{
		f:    f,
		w:    bufio.NewWriterSize(f, 1<<20),
		size: valid,
		mode: mode,
		torn: torn,
		// A private registry keeps SyncCount and friends working for logs
		// opened standalone; Instrument rebinds onto a shared one.
		m: bindLogMetrics(obs.NewRegistry()),
	}, nil
}

// Instrument rebinds the log's metrics onto reg. Call it right after
// Open, before the log sees concurrent traffic; counts recorded before
// the rebind stay on the previous registry. If Open truncated a torn
// tail, the first Instrument reports it as an audit event — a crash
// mid-write is expected with buffered durability but worth a record.
func (l *Log) Instrument(reg *obs.Registry) {
	l.mu.Lock()
	l.m = bindLogMetrics(reg)
	torn, valid := l.torn, l.size
	l.torn = 0
	l.mu.Unlock()
	if torn > 0 {
		reg.Events().Warn(obs.EventWALTornTail, "bytes", torn, "valid_prefix", valid)
	}
}

// validPrefix returns the length of the longest prefix of the file that
// consists of whole, CRC-valid records.
func validPrefix(f *os.File, size int64) (int64, error) {
	r := bufio.NewReaderSize(io.NewSectionReader(f, 0, size), 1<<20)
	var off int64
	var hdr [headerLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if int64(plen) > size-off-headerLen {
			return off, nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil
		}
		sum := crc32.Update(0, castagnoli, hdr[8:])
		sum = crc32.Update(sum, castagnoli, payload)
		if sum != crc {
			return off, nil
		}
		off += headerLen + int64(plen)
	}
}

// Append writes a record and returns its LSN. Durability follows the
// log's SyncMode; commit records additionally honor forceSync.
func (l *Log) Append(t RecordType, txID uint64, payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(t, txID, payload)
}

func (l *Log) appendLocked(t RecordType, txID uint64, payload []byte) (int64, error) {
	lsn, err := l.writeRecordLocked(t, txID, payload)
	if err != nil {
		return 0, err
	}
	if t == RecCommit || t == RecCheckpoint || t == RecPrepare {
		if err := l.flushLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// writeRecordLocked encodes one record into the buffered writer without
// flushing; callers decide when durability happens.
func (l *Log) writeRecordLocked(t RecordType, txID uint64, payload []byte) (int64, error) {
	lsn := l.size
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[8] = byte(t)
	binary.LittleEndian.PutUint64(hdr[9:], txID)
	sum := crc32.Update(0, castagnoli, hdr[8:])
	sum = crc32.Update(sum, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], sum)
	if _, err := l.w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += headerLen + int64(len(payload))
	l.m.appendRecords.Inc()
	l.m.appendBytes.Add(headerLen + int64(len(payload)))
	return lsn, nil
}

// AppendBatch writes several records atomically with respect to other
// appenders and returns the LSN of the first.
func (l *Log) AppendBatch(recs []Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	first := l.size
	for _, r := range recs {
		if _, err := l.appendLocked(r.Type, r.TxID, r.Payload); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// AppendGroup appends the record batches of a whole commit group and
// flushes once at the end, so every commit in the group shares a single
// flush (one fsync under SyncFull). Batches are written in slice order;
// the returned slice holds the first LSN of each batch.
func (l *Log) AppendGroup(batches [][]Record) ([]int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsns := make([]int64, len(batches))
	for i, recs := range batches {
		lsns[i] = l.size
		for _, r := range recs {
			if _, err := l.writeRecordLocked(r.Type, r.TxID, r.Payload); err != nil {
				return nil, err
			}
		}
	}
	if err := l.flushLocked(); err != nil {
		return nil, err
	}
	return lsns, nil
}

func (l *Log) flushLocked() error {
	switch l.mode {
	case SyncNone:
		return nil
	case SyncBuffered:
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		l.m.flushTotal.Inc()
		return nil
	case SyncFull:
		if err := l.w.Flush(); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.m.fsyncSeconds.ObserveSince(start)
		l.m.fsyncTotal.Inc()
		l.m.flushTotal.Inc()
		return nil
	}
	return fmt.Errorf("wal: unknown sync mode %d", l.mode)
}

// Flush forces buffered records to the OS (and to disk under SyncFull).
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// SyncCount returns how many fsyncs the log has performed since Open
// (always zero outside SyncFull). The group committer's amortization is
// measured as SyncCount growth per committed transaction. It is a shim
// over the sqlledger_wal_fsync_total registry counter.
func (l *Log) SyncCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m.fsyncTotal.Value()
}

// Size returns the current end-of-log offset (the LSN the next record
// will receive).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// ErrCorrupt reports a CRC mismatch while reading the log.
var ErrCorrupt = errors.New("wal: corrupt record")

// Reader iterates over log records starting at a given LSN. It reads a
// private file handle, so it can run while the log is being appended to;
// it stops at the first torn or corrupt record.
type Reader struct {
	r   *bufio.Reader
	f   *os.File
	off int64
	end int64
}

// NewReader opens a reader over the log file at path starting at LSN
// start. end bounds the scan (use the log's Size, or -1 for the whole
// file).
func NewReader(path string, start, end int64) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open reader: %w", err)
	}
	if end < 0 {
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		end = st.Size()
	}
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Reader{r: bufio.NewReaderSize(f, 1<<20), f: f, off: start, end: end}, nil
}

// Next returns the next record, or io.EOF at the end of the scan range.
func (r *Reader) Next() (Record, error) {
	if r.off >= r.end {
		return Record{}, io.EOF
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if r.off+headerLen+int64(plen) > r.end {
		return Record{}, io.EOF
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return Record{}, io.EOF
	}
	sum := crc32.Update(0, castagnoli, hdr[8:])
	sum = crc32.Update(sum, castagnoli, payload)
	if sum != crc {
		return Record{}, ErrCorrupt
	}
	rec := Record{
		LSN:     r.off,
		Type:    RecordType(hdr[8]),
		TxID:    binary.LittleEndian.Uint64(hdr[9:]),
		Payload: payload,
	}
	r.off += headerLen + int64(plen)
	return rec, nil
}

// Close releases the reader's file handle.
func (r *Reader) Close() error { return r.f.Close() }
