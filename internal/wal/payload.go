package wal

import (
	"encoding/binary"
	"fmt"

	"sqlledger/internal/merkle"
	"sqlledger/internal/sqltypes"
)

// TableRoot records the Merkle root of the row versions a transaction
// updated in one ledger table (§3.2: tuples of the form
// (ledger_table_id, merkle_root_hash)).
type TableRoot struct {
	TableID uint32
	Root    merkle.Hash
}

// LedgerEntry is the database-ledger transaction entry built at commit
// time (§3.3). It is embedded in the COMMIT record so the in-memory
// ledger queue can be rebuilt during recovery, and later persisted to the
// sys_ledger_transactions system table at checkpoint.
type LedgerEntry struct {
	TxID     uint64
	BlockID  uint64
	Ordinal  uint32 // position of the transaction within its block
	CommitTS int64  // unix nanoseconds
	User     string
	Roots    []TableRoot
}

// Clone deep-copies the entry.
func (e *LedgerEntry) Clone() *LedgerEntry {
	if e == nil {
		return nil
	}
	out := *e
	out.Roots = append([]TableRoot(nil), e.Roots...)
	return &out
}

// appendEntry serializes a LedgerEntry.
func appendEntry(dst []byte, e *LedgerEntry) []byte {
	dst = binary.AppendUvarint(dst, e.TxID)
	dst = binary.AppendUvarint(dst, e.BlockID)
	dst = binary.AppendUvarint(dst, uint64(e.Ordinal))
	dst = binary.AppendVarint(dst, e.CommitTS)
	dst = binary.AppendUvarint(dst, uint64(len(e.User)))
	dst = append(dst, e.User...)
	dst = binary.AppendUvarint(dst, uint64(len(e.Roots)))
	for _, tr := range e.Roots {
		dst = binary.AppendUvarint(dst, uint64(tr.TableID))
		dst = append(dst, tr.Root[:]...)
	}
	return dst
}

func decodeEntry(b []byte) (*LedgerEntry, int, error) {
	e := &LedgerEntry{}
	pos := 0
	var err error
	if e.TxID, pos, err = getUvarint(b, pos); err != nil {
		return nil, 0, err
	}
	if e.BlockID, pos, err = getUvarint(b, pos); err != nil {
		return nil, 0, err
	}
	var u uint64
	if u, pos, err = getUvarint(b, pos); err != nil {
		return nil, 0, err
	}
	e.Ordinal = uint32(u)
	if e.CommitTS, pos, err = getVarint(b, pos); err != nil {
		return nil, 0, err
	}
	if u, pos, err = getUvarint(b, pos); err != nil {
		return nil, 0, err
	}
	if pos+int(u) > len(b) {
		return nil, 0, fmt.Errorf("wal: entry user truncated")
	}
	e.User = string(b[pos : pos+int(u)])
	pos += int(u)
	if u, pos, err = getUvarint(b, pos); err != nil {
		return nil, 0, err
	}
	e.Roots = make([]TableRoot, 0, u)
	for i := uint64(0); i < u; i++ {
		var tid uint64
		if tid, pos, err = getUvarint(b, pos); err != nil {
			return nil, 0, err
		}
		var tr TableRoot
		tr.TableID = uint32(tid)
		if pos+len(tr.Root) > len(b) {
			return nil, 0, fmt.Errorf("wal: entry root truncated")
		}
		copy(tr.Root[:], b[pos:])
		pos += len(tr.Root)
		e.Roots = append(e.Roots, tr)
	}
	return e, pos, nil
}

func getUvarint(b []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("wal: bad uvarint at %d", pos)
	}
	return v, pos + n, nil
}

func getVarint(b []byte, pos int) (int64, int, error) {
	v, n := binary.Varint(b[pos:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("wal: bad varint at %d", pos)
	}
	return v, pos + n, nil
}

func getBytes(b []byte, pos int) ([]byte, int, error) {
	l, pos, err := getUvarint(b, pos)
	if err != nil {
		return nil, 0, err
	}
	if pos+int(l) > len(b) {
		return nil, 0, fmt.Errorf("wal: bytes truncated at %d", pos)
	}
	return b[pos : pos+int(l)], pos + int(l), nil
}

// DMLPayload is the decoded payload of insert/delete/update records.
// Before is set for deletes and updates; After for inserts and updates.
type DMLPayload struct {
	TableID uint32
	Key     []byte
	Before  sqltypes.Row
	After   sqltypes.Row
}

// EncodeDML serializes a DML payload for the given record type.
func EncodeDML(t RecordType, p DMLPayload) []byte {
	return AppendDML(nil, t, p)
}

// AppendDML appends the serialized DML payload to dst. Commit encodes a
// transaction's payloads into one shared arena, so a bulk transaction
// costs one buffer instead of one per record.
func AppendDML(dst []byte, t RecordType, p DMLPayload) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.TableID))
	dst = binary.AppendUvarint(dst, uint64(len(p.Key)))
	dst = append(dst, p.Key...)
	switch t {
	case RecInsert:
		dst = sqltypes.EncodeRow(dst, p.After)
	case RecDelete:
		dst = sqltypes.EncodeRow(dst, p.Before)
	case RecUpdate:
		dst = sqltypes.EncodeRow(dst, p.Before)
		dst = sqltypes.EncodeRow(dst, p.After)
	}
	return dst
}

// DecodeDML decodes a DML payload.
func DecodeDML(t RecordType, b []byte) (DMLPayload, error) {
	var p DMLPayload
	tid, pos, err := getUvarint(b, 0)
	if err != nil {
		return p, err
	}
	p.TableID = uint32(tid)
	key, pos, err := getBytes(b, pos)
	if err != nil {
		return p, err
	}
	p.Key = append([]byte(nil), key...)
	switch t {
	case RecInsert:
		r, n, err := sqltypes.DecodeRow(b[pos:])
		if err != nil {
			return p, err
		}
		p.After = r
		pos += n
	case RecDelete:
		r, n, err := sqltypes.DecodeRow(b[pos:])
		if err != nil {
			return p, err
		}
		p.Before = r
		pos += n
	case RecUpdate:
		r, n, err := sqltypes.DecodeRow(b[pos:])
		if err != nil {
			return p, err
		}
		p.Before = r
		pos += n
		r, n, err = sqltypes.DecodeRow(b[pos:])
		if err != nil {
			return p, err
		}
		p.After = r
		pos += n
	default:
		return p, fmt.Errorf("wal: %s is not a DML record", t)
	}
	if pos != len(b) {
		return p, fmt.Errorf("wal: %d trailing bytes in %s payload", len(b)-pos, t)
	}
	return p, nil
}

// CommitPayload is the decoded payload of a COMMIT record.
type CommitPayload struct {
	CommitTS int64
	User     string
	// Entry is non-nil when the transaction touched ledger tables.
	Entry *LedgerEntry
}

// EncodeCommit serializes a commit payload.
func EncodeCommit(p CommitPayload) []byte {
	dst := binary.AppendVarint(nil, p.CommitTS)
	dst = binary.AppendUvarint(dst, uint64(len(p.User)))
	dst = append(dst, p.User...)
	if p.Entry == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return appendEntry(dst, p.Entry)
}

// DecodeCommit decodes a commit payload.
func DecodeCommit(b []byte) (CommitPayload, error) {
	var p CommitPayload
	var err error
	var pos int
	if p.CommitTS, pos, err = getVarint(b, 0); err != nil {
		return p, err
	}
	user, pos, err := getBytes(b, pos)
	if err != nil {
		return p, err
	}
	p.User = string(user)
	if pos >= len(b) {
		return p, fmt.Errorf("wal: commit payload truncated")
	}
	hasEntry := b[pos] == 1
	pos++
	if hasEntry {
		e, n, err := decodeEntry(b[pos:])
		if err != nil {
			return p, err
		}
		p.Entry = e
		pos += n
	}
	if pos != len(b) {
		return p, fmt.Errorf("wal: %d trailing bytes in commit payload", len(b)-pos)
	}
	return p, nil
}

// PreparePayload is the decoded payload of a PREPARE record. It carries
// everything phase 2 of a cross-shard commit needs to finish the
// transaction after a crash: the coordinator's global transaction id, the
// principal, and the per-table Merkle roots computed at prepare time (the
// block id, ordinal and commit timestamp are assigned when the decision
// is applied, exactly as for a single-shard commit).
type PreparePayload struct {
	Gid   uint64
	User  string
	Roots []TableRoot
}

// EncodePrepare serializes a prepare payload.
func EncodePrepare(p PreparePayload) []byte {
	dst := binary.AppendUvarint(nil, p.Gid)
	dst = binary.AppendUvarint(dst, uint64(len(p.User)))
	dst = append(dst, p.User...)
	dst = binary.AppendUvarint(dst, uint64(len(p.Roots)))
	for _, tr := range p.Roots {
		dst = binary.AppendUvarint(dst, uint64(tr.TableID))
		dst = append(dst, tr.Root[:]...)
	}
	return dst
}

// DecodePrepare decodes a prepare payload.
func DecodePrepare(b []byte) (PreparePayload, error) {
	var p PreparePayload
	gid, pos, err := getUvarint(b, 0)
	if err != nil {
		return p, err
	}
	p.Gid = gid
	user, pos, err := getBytes(b, pos)
	if err != nil {
		return p, err
	}
	p.User = string(user)
	n, pos, err := getUvarint(b, pos)
	if err != nil {
		return p, err
	}
	p.Roots = make([]TableRoot, 0, n)
	for i := uint64(0); i < n; i++ {
		var tid uint64
		if tid, pos, err = getUvarint(b, pos); err != nil {
			return p, err
		}
		var tr TableRoot
		tr.TableID = uint32(tid)
		if pos+len(tr.Root) > len(b) {
			return p, fmt.Errorf("wal: prepare root truncated")
		}
		copy(tr.Root[:], b[pos:])
		pos += len(tr.Root)
		p.Roots = append(p.Roots, tr)
	}
	if pos != len(b) {
		return p, fmt.Errorf("wal: %d trailing bytes in prepare payload", len(b)-pos)
	}
	return p, nil
}

// CheckpointPayload is the decoded payload of a CHECKPOINT record.
type CheckpointPayload struct {
	// SnapshotLSN is the LSN from which redo must begin when recovering
	// with the snapshot this checkpoint wrote.
	SnapshotLSN int64
	WallTS      int64
}

// EncodeCheckpoint serializes a checkpoint payload.
func EncodeCheckpoint(p CheckpointPayload) []byte {
	dst := binary.AppendVarint(nil, p.SnapshotLSN)
	return binary.AppendVarint(dst, p.WallTS)
}

// DecodeCheckpoint decodes a checkpoint payload.
func DecodeCheckpoint(b []byte) (CheckpointPayload, error) {
	var p CheckpointPayload
	var err error
	var pos int
	if p.SnapshotLSN, pos, err = getVarint(b, 0); err != nil {
		return p, err
	}
	if p.WallTS, _, err = getVarint(b, pos); err != nil {
		return p, err
	}
	return p, nil
}

// DDLPayload carries a serialized catalog mutation; the engine interprets
// the JSON body.
type DDLPayload struct {
	Kind string
	Body []byte
}

// EncodeDDL serializes a DDL payload.
func EncodeDDL(p DDLPayload) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(p.Kind)))
	dst = append(dst, p.Kind...)
	dst = binary.AppendUvarint(dst, uint64(len(p.Body)))
	return append(dst, p.Body...)
}

// DecodeDDL decodes a DDL payload.
func DecodeDDL(b []byte) (DDLPayload, error) {
	var p DDLPayload
	kind, pos, err := getBytes(b, 0)
	if err != nil {
		return p, err
	}
	p.Kind = string(kind)
	body, _, err := getBytes(b, pos)
	if err != nil {
		return p, err
	}
	p.Body = append([]byte(nil), body...)
	return p, nil
}
