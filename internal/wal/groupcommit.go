package wal

import (
	"errors"
	"sync"
	"time"
)

// ErrCommitterClosed is returned to commits enqueued after Close.
var ErrCommitterClosed = errors.New("wal: group committer closed")

// GroupConfig tunes the group committer. The zero value enables group
// commit with defaults.
type GroupConfig struct {
	// MaxBatch caps how many commit batches one write group may absorb
	// (default 64). Larger groups amortize one flush over more commits.
	MaxBatch int
	// MaxDelay is how long the flusher lingers after waking, waiting for
	// more commits to join the group (default 0: write as soon as the
	// flusher is free). Batching still happens with MaxDelay 0 — commits
	// arriving while a previous group is being flushed pile up and share
	// the next flush — so the knob only matters when flushes are cheaper
	// than the inter-arrival gap.
	MaxDelay time.Duration
	// Disabled reverts to the serialized commit path: every commit
	// appends and flushes the log itself, inside the engine's commit
	// critical section. Kept as the ablation baseline for benchmarks.
	Disabled bool
}

const defaultMaxBatch = 64

// GroupStats counts group committer activity since open.
type GroupStats struct {
	Commits int64 // commit batches enqueued
	Groups  int64 // write groups flushed (one log flush each)
	Records int64 // records appended through the committer
}

type commitReq struct {
	recs []Record
	lsn  int64
	err  error
	done chan struct{}

	// Group timing breadcrumbs for traced commits. enqueuedAt is stamped
	// by EnqueueTraced only; the flusher stamps the rest before closing
	// done, so Wait-side reads need no synchronization beyond the channel.
	enqueuedAt time.Time
	flushStart time.Time
	flushDur   time.Duration
	groupSize  int
	groupRecs  int
}

// Ticket is a pending group commit returned by Enqueue.
type Ticket struct{ req *commitReq }

// Wait blocks until the commit's write group has been appended and
// flushed per the log's SyncMode, returning the LSN of the commit's
// first record.
func (t *Ticket) Wait() (int64, error) {
	<-t.req.done
	return t.req.lsn, t.req.err
}

// GroupTimings reports, after Wait returns, where the group-commit time
// went: when the request was enqueued (zero unless EnqueueTraced was
// used), when its group's flush started, how long the flush (append +
// fsync) took, and the group's size in commits and records.
func (t *Ticket) GroupTimings() (enqueuedAt, flushStart time.Time, flushDur time.Duration, groupSize, groupRecords int) {
	r := t.req
	return r.enqueuedAt, r.flushStart, r.flushDur, r.groupSize, r.groupRecs
}

// GroupCommitter batches concurrent commit appends into write groups that
// share one log flush (one fsync under SyncFull). Enqueue order equals
// log order, so a caller that sequences commits before enqueueing keeps
// its ordering invariants in the log — the engine relies on this to keep
// WAL commit-record order identical to ledger ordinal order.
type GroupCommitter struct {
	log *Log
	cfg GroupConfig

	mu      sync.Mutex
	pending []*commitReq
	closed  bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	// Metric handles inherited from the log's registry at construction;
	// GroupStats is a shim reading them back.
	m logMetrics
}

// NewGroupCommitter starts a group committer (and its flusher goroutine)
// over l.
func NewGroupCommitter(l *Log, cfg GroupConfig) *GroupCommitter {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	l.mu.Lock()
	m := l.m
	l.mu.Unlock()
	g := &GroupCommitter{
		log:  l,
		cfg:  cfg,
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		m:    m,
	}
	go g.run()
	return g
}

// Enqueue submits one commit's records for group durability and returns
// immediately; the caller Waits on the ticket outside its critical
// section. Requests are written in enqueue order.
func (g *GroupCommitter) Enqueue(recs []Record) *Ticket {
	return g.enqueue(&commitReq{recs: recs, done: make(chan struct{})})
}

// EnqueueTraced is Enqueue plus an enqueue timestamp, so a traced commit
// can split its durability wait into group formation vs. flush time. It
// costs one extra clock read over Enqueue.
func (g *GroupCommitter) EnqueueTraced(recs []Record) *Ticket {
	return g.enqueue(&commitReq{recs: recs, done: make(chan struct{}), enqueuedAt: time.Now()})
}

func (g *GroupCommitter) enqueue(req *commitReq) *Ticket {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		req.err = ErrCommitterClosed
		close(req.done)
		return &Ticket{req: req}
	}
	g.pending = append(g.pending, req)
	g.mu.Unlock()
	g.m.groupCommits.Inc()
	select {
	case g.wake <- struct{}{}:
	default:
	}
	return &Ticket{req: req}
}

// Stats returns activity counters. It is a shim over the registry's
// sqlledger_wal_group_* counters.
func (g *GroupCommitter) Stats() GroupStats {
	return GroupStats{
		Commits: g.m.groupCommits.Value(),
		Groups:  g.m.groups.Value(),
		Records: g.m.groupRecords.Value(),
	}
}

// Close flushes all pending commits and stops the flusher. Enqueues after
// Close fail with ErrCommitterClosed. Safe to call more than once.
func (g *GroupCommitter) Close() error {
	g.mu.Lock()
	already := g.closed
	g.closed = true
	g.mu.Unlock()
	if !already {
		close(g.stop)
	}
	<-g.done
	return nil
}

func (g *GroupCommitter) run() {
	defer close(g.done)
	for {
		select {
		case <-g.stop:
			for g.flushGroup() {
			}
			return
		case <-g.wake:
		}
		if g.cfg.MaxDelay > 0 {
			g.linger()
		}
		for g.flushGroup() {
		}
	}
}

// linger waits up to MaxDelay for the pending queue to reach MaxBatch,
// letting slightly staggered commits join the same group.
func (g *GroupCommitter) linger() {
	timer := time.NewTimer(g.cfg.MaxDelay)
	defer timer.Stop()
	for {
		g.mu.Lock()
		n := len(g.pending)
		g.mu.Unlock()
		if n >= g.cfg.MaxBatch {
			return
		}
		select {
		case <-timer.C:
			return
		case <-g.stop:
			return
		case <-g.wake:
		}
	}
}

// flushGroup writes one group (up to MaxBatch pending commits) with a
// single flush, wakes its waiters, and reports whether any work was done.
func (g *GroupCommitter) flushGroup() bool {
	g.mu.Lock()
	n := len(g.pending)
	if n == 0 {
		g.mu.Unlock()
		return false
	}
	if n > g.cfg.MaxBatch {
		n = g.cfg.MaxBatch
	}
	group := g.pending[:n:n]
	g.pending = append([]*commitReq(nil), g.pending[n:]...)
	g.mu.Unlock()

	batches := make([][]Record, len(group))
	nrec := 0
	for i, req := range group {
		batches[i] = req.recs
		nrec += len(req.recs)
	}
	flushStart := time.Now()
	lsns, err := g.log.AppendGroup(batches)
	flushDur := time.Since(flushStart)
	g.m.groupFlushSeconds.Observe(flushDur.Seconds())
	for i, req := range group {
		if err == nil {
			req.lsn = lsns[i]
		}
		req.err = err
		req.flushStart = flushStart
		req.flushDur = flushDur
		req.groupSize = len(group)
		req.groupRecs = nrec
		close(req.done)
	}
	g.m.groups.Inc()
	g.m.groupRecords.Add(int64(nrec))
	g.m.groupSize.Observe(float64(len(group)))
	return true
}
