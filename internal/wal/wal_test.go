package wal

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"sqlledger/internal/merkle"
	"sqlledger/internal/sqltypes"
)

func openTestLog(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, SyncBuffered)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, path
}

func readAll(t *testing.T, path string) []Record {
	t.Helper()
	r, err := NewReader(path, 0, -1)
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	defer r.Close()
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		out = append(out, rec)
	}
}

func TestAppendAndRead(t *testing.T) {
	l, path := openTestLog(t)
	lsn1, err := l.Append(RecBegin, 7, []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append(RecCommit, 7, []byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn1 >= lsn2 {
		t.Fatalf("LSNs not increasing: %d %d", lsn1, lsn2)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, path)
	if len(recs) != 2 {
		t.Fatalf("read %d records", len(recs))
	}
	if recs[0].Type != RecBegin || recs[0].TxID != 7 || string(recs[0].Payload) != "one" {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if recs[1].LSN != lsn2 {
		t.Fatalf("record 1 LSN = %d, want %d", recs[1].LSN, lsn2)
	}
}

func TestReaderFromOffset(t *testing.T) {
	l, path := openTestLog(t)
	l.Append(RecBegin, 1, []byte("a"))
	mid, _ := l.Append(RecBegin, 2, []byte("b"))
	l.Append(RecCommit, 2, []byte("c"))
	l.Flush()
	r, err := NewReader(path, mid, l.Size())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec, err := r.Next()
	if err != nil || rec.TxID != 2 || string(rec.Payload) != "b" {
		t.Fatalf("offset read = %+v, %v", rec, err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	l, path := openTestLog(t)
	l.Append(RecCommit, 1, []byte("good"))
	l.Flush()
	goodSize := l.Size()
	l.Close()
	// Simulate a crash mid-append: write half a record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xFF, 0x01, 0x02})
	f.Close()

	l2, err := Open(path, SyncBuffered)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if l2.Size() != goodSize {
		t.Fatalf("size after reopen = %d, want %d", l2.Size(), goodSize)
	}
	// New appends land after the valid prefix and read back fine.
	l2.Append(RecCommit, 2, []byte("after"))
	l2.Flush()
	recs := readAll(t, path)
	if len(recs) != 2 || string(recs[1].Payload) != "after" {
		t.Fatalf("records after torn-tail recovery: %+v", recs)
	}
}

func TestCorruptionDetected(t *testing.T) {
	l, path := openTestLog(t)
	l.Append(RecCommit, 1, []byte("payload-payload"))
	l.Flush()
	l.Close()
	b, _ := os.ReadFile(path)
	b[len(b)-3] ^= 0xFF // flip a payload byte
	os.WriteFile(path, b, 0o644)
	r, err := NewReader(path, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err != ErrCorrupt {
		t.Fatalf("expected ErrCorrupt, got %v", err)
	}
}

func TestAppendBatchContiguous(t *testing.T) {
	l, path := openTestLog(t)
	first, err := l.AppendBatch([]Record{
		{Type: RecInsert, TxID: 5, Payload: []byte("i1")},
		{Type: RecInsert, TxID: 5, Payload: []byte("i2")},
		{Type: RecCommit, TxID: 5, Payload: []byte("c")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("first lsn = %d", first)
	}
	l.Flush()
	recs := readAll(t, path)
	if len(recs) != 3 || recs[2].Type != RecCommit {
		t.Fatalf("batch read: %+v", recs)
	}
}

func TestEmptyPayload(t *testing.T) {
	l, path := openTestLog(t)
	l.Append(RecAbort, 3, nil)
	l.Flush()
	recs := readAll(t, path)
	if len(recs) != 1 || len(recs[0].Payload) != 0 {
		t.Fatalf("empty payload roundtrip: %+v", recs)
	}
}

func TestSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncNone, SyncBuffered, SyncFull} {
		path := filepath.Join(t.TempDir(), "wal.log")
		l, err := Open(path, mode)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(RecCommit, 1, []byte("x")); err != nil {
			t.Fatalf("mode %d append: %v", mode, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("mode %d close: %v", mode, err)
		}
		l2, err := Open(path, mode)
		if err != nil {
			t.Fatal(err)
		}
		if l2.Size() == 0 {
			t.Fatalf("mode %d lost the record", mode)
		}
		l2.Close()
	}
}

func TestRecordTypeString(t *testing.T) {
	names := map[RecordType]string{
		RecBegin: "BEGIN", RecInsert: "INSERT", RecDelete: "DELETE",
		RecUpdate: "UPDATE", RecCommit: "COMMIT", RecAbort: "ABORT",
		RecCheckpoint: "CHECKPOINT", RecDDL: "DDL", RecordType(99): "REC(99)",
	}
	for rt, want := range names {
		if rt.String() != want {
			t.Errorf("%d.String() = %q, want %q", rt, rt.String(), want)
		}
	}
}

// --- payload codecs -----------------------------------------------------

func sampleEntry() *LedgerEntry {
	var h1, h2 merkle.Hash
	h1[0], h2[31] = 0xAB, 0xCD
	return &LedgerEntry{
		TxID: 42, BlockID: 3, Ordinal: 17, CommitTS: 1234567890123,
		User: "alice", Roots: []TableRoot{{TableID: 9, Root: h1}, {TableID: 12, Root: h2}},
	}
}

func TestCommitPayloadRoundtrip(t *testing.T) {
	p := CommitPayload{CommitTS: 999, User: "bob", Entry: sampleEntry()}
	back, err := DecodeCommit(EncodeCommit(p))
	if err != nil {
		t.Fatal(err)
	}
	if back.CommitTS != p.CommitTS || back.User != p.User {
		t.Fatalf("roundtrip = %+v", back)
	}
	e, want := back.Entry, p.Entry
	if e.TxID != want.TxID || e.BlockID != want.BlockID || e.Ordinal != want.Ordinal ||
		e.CommitTS != want.CommitTS || e.User != want.User || len(e.Roots) != 2 ||
		e.Roots[0] != want.Roots[0] || e.Roots[1] != want.Roots[1] {
		t.Fatalf("entry roundtrip = %+v", e)
	}
}

func TestCommitPayloadWithoutEntry(t *testing.T) {
	back, err := DecodeCommit(EncodeCommit(CommitPayload{CommitTS: 5, User: "u"}))
	if err != nil || back.Entry != nil {
		t.Fatalf("no-entry roundtrip: %+v, %v", back, err)
	}
}

func TestCommitPayloadErrors(t *testing.T) {
	enc := EncodeCommit(CommitPayload{CommitTS: 5, User: "u", Entry: sampleEntry()})
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeCommit(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeCommit(append(enc, 0xEE)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDMLPayloadRoundtrip(t *testing.T) {
	before := sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewVarChar("old")}
	after := sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewVarChar("new")}
	cases := []struct {
		typ RecordType
		p   DMLPayload
	}{
		{RecInsert, DMLPayload{TableID: 4, Key: []byte{1, 2}, After: after}},
		{RecDelete, DMLPayload{TableID: 4, Key: []byte{1, 2}, Before: before}},
		{RecUpdate, DMLPayload{TableID: 4, Key: []byte{1, 2}, Before: before, After: after}},
	}
	for _, c := range cases {
		back, err := DecodeDML(c.typ, EncodeDML(c.typ, c.p))
		if err != nil {
			t.Fatalf("%s: %v", c.typ, err)
		}
		if back.TableID != c.p.TableID || string(back.Key) != string(c.p.Key) {
			t.Fatalf("%s header roundtrip: %+v", c.typ, back)
		}
		if (c.p.Before == nil) != (back.Before == nil) || (c.p.After == nil) != (back.After == nil) {
			t.Fatalf("%s row presence: %+v", c.typ, back)
		}
		if c.p.Before != nil && !back.Before.Equal(c.p.Before) {
			t.Fatalf("%s before mismatch", c.typ)
		}
		if c.p.After != nil && !back.After.Equal(c.p.After) {
			t.Fatalf("%s after mismatch", c.typ)
		}
	}
	if _, err := DecodeDML(RecCommit, nil); err == nil {
		t.Fatal("non-DML record accepted")
	}
}

func TestCheckpointAndDDLRoundtrip(t *testing.T) {
	cp, err := DecodeCheckpoint(EncodeCheckpoint(CheckpointPayload{SnapshotLSN: 12345, WallTS: 67890}))
	if err != nil || cp.SnapshotLSN != 12345 || cp.WallTS != 67890 {
		t.Fatalf("checkpoint roundtrip: %+v, %v", cp, err)
	}
	dp, err := DecodeDDL(EncodeDDL(DDLPayload{Kind: "create_table", Body: []byte(`{"x":1}`)}))
	if err != nil || dp.Kind != "create_table" || string(dp.Body) != `{"x":1}` {
		t.Fatalf("ddl roundtrip: %+v, %v", dp, err)
	}
}

func TestEntryClone(t *testing.T) {
	e := sampleEntry()
	c := e.Clone()
	c.Roots[0].TableID = 99
	if e.Roots[0].TableID == 99 {
		t.Fatal("Clone shares roots")
	}
	var nilE *LedgerEntry
	if nilE.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}
