// Package btree implements an in-memory B+tree with []byte keys, used by
// the engine for clustered table storage and nonclustered indexes. Keys
// compare bytewise (the engine encodes keys with the order-preserving
// encoding from internal/sqltypes). Leaves are linked for fast ordered
// range scans.
package btree

import "bytes"

const (
	// degree is the maximum number of keys per node; nodes split when
	// they would exceed it and merge/borrow when they fall below half.
	degree = 64
	minLen = degree / 2
)

// Tree is a B+tree mapping []byte keys to values of type V. The zero Tree
// is not ready for use; call New.
type Tree[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	// keys holds the separator keys (interior) or entry keys (leaf).
	keys [][]byte
	// children is populated for interior nodes: len(children) == len(keys)+1.
	children []*node[V]
	// vals is populated for leaves, parallel to keys.
	vals []V
	// next links leaves in ascending key order.
	next *node[V]
	leaf bool
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	return &Tree[V]{root: &node[V]{leaf: true}}
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

// Get returns the value for key.
func (t *Tree[V]) Get(key []byte) (V, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i, found := search(n.keys, key)
	if !found {
		var zero V
		return zero, false
	}
	return n.vals[i], true
}

// search returns the index of the first key >= target and whether it is an
// exact match.
func search(keys [][]byte, target []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], target) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && bytes.Equal(keys[lo], target)
}

// childIndex returns which child of an interior node covers key. Separator
// semantics: child[i] holds keys < keys[i]; child[i] keys are >= keys[i-1].
func childIndex(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, keys[mid]) >= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Put inserts or replaces the value for key, returning the previous value
// if one existed. The key slice is retained; callers must not mutate it.
func (t *Tree[V]) Put(key []byte, val V) (old V, replaced bool) {
	old, replaced, split, sepKey, right := t.insert(t.root, key, val)
	if split {
		t.root = &node[V]{
			keys:     [][]byte{sepKey},
			children: []*node[V]{t.root, right},
		}
	}
	if !replaced {
		t.size++
	}
	return old, replaced
}

func (t *Tree[V]) insert(n *node[V], key []byte, val V) (old V, replaced, split bool, sepKey []byte, right *node[V]) {
	if n.leaf {
		i, found := search(n.keys, key)
		if found {
			old, n.vals[i] = n.vals[i], val
			return old, true, false, nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		var zero V
		n.vals = append(n.vals, zero)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		if len(n.keys) > degree {
			sepKey, right = t.splitLeaf(n)
			return old, false, true, sepKey, right
		}
		return old, false, false, nil, nil
	}
	ci := childIndex(n.keys, key)
	old, replaced, childSplit, childSep, childRight := t.insert(n.children[ci], key, val)
	if childSplit {
		n.keys = append(n.keys, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = childSep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = childRight
		if len(n.keys) > degree {
			sepKey, right = t.splitInterior(n)
			return old, replaced, true, sepKey, right
		}
	}
	return old, replaced, false, nil, nil
}

func (t *Tree[V]) splitLeaf(n *node[V]) ([]byte, *node[V]) {
	mid := len(n.keys) / 2
	right := &node[V]{
		leaf: true,
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([]V(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right.keys[0], right
}

func (t *Tree[V]) splitInterior(n *node[V]) ([]byte, *node[V]) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node[V]{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node[V](nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// buildFill is how full BuildSorted packs each node: 3/4 of degree, so a
// freshly bulk-loaded tree absorbs trickle inserts without immediately
// splitting every leaf, while staying comfortably above minLen.
const buildFill = degree * 3 / 4

// BuildSorted constructs a tree from keys already in strictly ascending
// order, with vals parallel to keys. It packs leaves bottom-up in O(n)
// instead of O(n log n) Put calls — the fast path for snapshot load and
// parallel WAL replay, where rows arrive pre-sorted per table. Key slices
// are retained; callers must not mutate them. Behavior is undefined if
// keys are unsorted or contain duplicates.
func BuildSorted[V any](keys [][]byte, vals []V) *Tree[V] {
	if len(keys) == 0 {
		return New[V]()
	}
	// Leaf level: pack keys into leaves of buildFill entries, linked in
	// ascending order. The final leaf keeps the remainder (>= 1 entry);
	// underfull nodes are legal here — rebalance only runs after deletes,
	// and a merge of two nodes at or below minLen still fits in degree.
	var leaves []*node[V]
	for i := 0; i < len(keys); i += buildFill {
		j := i + buildFill
		if j > len(keys) {
			j = len(keys)
		}
		n := &node[V]{
			leaf: true,
			keys: append([][]byte(nil), keys[i:j]...),
			vals: append([]V(nil), vals[i:j]...),
		}
		if len(leaves) > 0 {
			leaves[len(leaves)-1].next = n
		}
		leaves = append(leaves, n)
	}
	// Interior levels: group children buildFill+1 at a time; the separator
	// before child c is the smallest key in c's subtree. Never leave a
	// trailing group of one child (an interior node needs >= 1 separator),
	// so a would-be singleton steals a child from the previous group.
	level := leaves
	first := make([][]byte, len(level))
	for i, n := range level {
		first[i] = n.keys[0]
	}
	for len(level) > 1 {
		var parents []*node[V]
		var parentFirst [][]byte
		for i := 0; i < len(level); {
			take := buildFill + 1
			if rem := len(level) - i; take > rem {
				take = rem
			} else if len(level)-(i+take) == 1 {
				take--
			}
			p := &node[V]{
				children: append([]*node[V](nil), level[i:i+take]...),
				keys:     append([][]byte(nil), first[i+1:i+take]...),
			}
			parents = append(parents, p)
			parentFirst = append(parentFirst, first[i])
			i += take
		}
		level, first = parents, parentFirst
	}
	return &Tree[V]{root: level[0], size: len(keys)}
}

// Delete removes key, returning its value if present.
func (t *Tree[V]) Delete(key []byte) (V, bool) {
	old, found := t.remove(t.root, key)
	if found {
		t.size--
		if !t.root.leaf && len(t.root.children) == 1 {
			t.root = t.root.children[0]
		}
	}
	return old, found
}

func (t *Tree[V]) remove(n *node[V], key []byte) (V, bool) {
	if n.leaf {
		i, found := search(n.keys, key)
		if !found {
			var zero V
			return zero, false
		}
		old := n.vals[i]
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return old, true
	}
	ci := childIndex(n.keys, key)
	old, found := t.remove(n.children[ci], key)
	if found && len(n.children[ci].keys) < minLen {
		t.rebalance(n, ci)
	}
	return old, found
}

// rebalance fixes up child ci of n after a deletion left it underfull.
func (t *Tree[V]) rebalance(n *node[V], ci int) {
	child := n.children[ci]
	// Try borrowing from the left sibling.
	if ci > 0 {
		left := n.children[ci-1]
		if len(left.keys) > minLen {
			if child.leaf {
				k := left.keys[len(left.keys)-1]
				v := left.vals[len(left.vals)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.vals = left.vals[:len(left.vals)-1]
				child.keys = append([][]byte{k}, child.keys...)
				child.vals = append([]V{v}, child.vals...)
				n.keys[ci-1] = child.keys[0]
			} else {
				k := left.keys[len(left.keys)-1]
				c := left.children[len(left.children)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.children = left.children[:len(left.children)-1]
				child.keys = append([][]byte{n.keys[ci-1]}, child.keys...)
				child.children = append([]*node[V]{c}, child.children...)
				n.keys[ci-1] = k
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(n.children)-1 {
		rightSib := n.children[ci+1]
		if len(rightSib.keys) > minLen {
			if child.leaf {
				child.keys = append(child.keys, rightSib.keys[0])
				child.vals = append(child.vals, rightSib.vals[0])
				rightSib.keys = rightSib.keys[1:]
				rightSib.vals = rightSib.vals[1:]
				n.keys[ci] = rightSib.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[ci])
				child.children = append(child.children, rightSib.children[0])
				n.keys[ci] = rightSib.keys[0]
				rightSib.keys = rightSib.keys[1:]
				rightSib.children = rightSib.children[1:]
			}
			return
		}
	}
	// Merge with a sibling.
	if ci > 0 {
		t.merge(n, ci-1)
	} else {
		t.merge(n, ci)
	}
}

// merge folds child i+1 of n into child i.
func (t *Tree[V]) merge(n *node[V], i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// AscendRange calls fn for every entry with start <= key < end, in key
// order. A nil start begins at the smallest key; a nil end scans to the
// largest. fn returning false stops the scan.
func (t *Tree[V]) AscendRange(start, end []byte, fn func(key []byte, val V) bool) {
	n := t.root
	for !n.leaf {
		if start == nil {
			n = n.children[0]
		} else {
			n = n.children[childIndex(n.keys, start)]
		}
	}
	i := 0
	if start != nil {
		i, _ = search(n.keys, start)
	}
	for n != nil {
		for ; i < len(n.keys); i++ {
			if end != nil && bytes.Compare(n.keys[i], end) >= 0 {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Ascend scans all entries in key order.
func (t *Tree[V]) Ascend(fn func(key []byte, val V) bool) {
	t.AscendRange(nil, nil, fn)
}

// height returns the number of interior levels above the leaf level.
func (t *Tree[V]) height() int {
	h := 0
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// separators appends, in ascending key order, every separator key stored
// in interior nodes of the subtree rooted at nd, descending at most depth
// levels. An in-order walk of the interior levels yields the separators
// sorted, so the result needs no post-sort.
func separators[V any](nd *node[V], depth int, out [][]byte) [][]byte {
	if nd.leaf || depth <= 0 {
		return out
	}
	for i, k := range nd.keys {
		out = separators(nd.children[i], depth-1, out)
		out = append(out, k)
	}
	return separators(nd.children[len(nd.children)-1], depth-1, out)
}

// ShardBoundaries returns up to n-1 separator keys, in ascending order,
// that partition the key space into roughly equal contiguous ranges for
// parallel scans: [nil, b0), [b0, b1), ..., [bk, nil). The boundaries are
// real separator keys from the tree, so the ranges track the actual key
// distribution; they need not currently exist as entries. A small or
// single-level tree may yield fewer than n-1 boundaries (possibly none).
func (t *Tree[V]) ShardBoundaries(n int) [][]byte {
	if n <= 1 || t.root.leaf {
		return nil
	}
	height := t.height()
	var seps [][]byte
	for depth := 1; ; depth++ {
		seps = separators(t.root, depth, seps[:0])
		if len(seps) >= n-1 || depth >= height {
			break
		}
	}
	if len(seps) <= n-1 {
		return seps
	}
	// Sample n-1 evenly spaced boundaries; separator counts per subtree
	// are balanced, so even index spacing approximates even row spacing.
	out := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, seps[i*len(seps)/n])
	}
	return out
}

// Min returns the smallest key and its value.
func (t *Tree[V]) Min() ([]byte, V, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		var zero V
		return nil, zero, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key and its value.
func (t *Tree[V]) Max() ([]byte, V, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		var zero V
		return nil, zero, false
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
}
