package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestBasicCRUD(t *testing.T) {
	tr := New[int]()
	if _, ok := tr.Get([]byte("a")); ok {
		t.Fatal("empty tree returned a value")
	}
	if _, replaced := tr.Put([]byte("a"), 1); replaced {
		t.Fatal("fresh put reported replace")
	}
	if old, replaced := tr.Put([]byte("a"), 2); !replaced || old != 1 {
		t.Fatalf("replace returned (%d,%v)", old, replaced)
	}
	if v, ok := tr.Get([]byte("a")); !ok || v != 2 {
		t.Fatalf("get = (%d,%v)", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	if old, ok := tr.Delete([]byte("a")); !ok || old != 2 {
		t.Fatalf("delete = (%d,%v)", old, ok)
	}
	if _, ok := tr.Delete([]byte("a")); ok {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 0 {
		t.Fatalf("len after delete = %d", tr.Len())
	}
}

func TestLargeSequentialAndReverse(t *testing.T) {
	for _, reverse := range []bool{false, true} {
		tr := New[int]()
		n := 10000
		for i := 0; i < n; i++ {
			k := i
			if reverse {
				k = n - 1 - i
			}
			tr.Put(key(k), k)
		}
		if tr.Len() != n {
			t.Fatalf("len = %d, want %d", tr.Len(), n)
		}
		for i := 0; i < n; i++ {
			if v, ok := tr.Get(key(i)); !ok || v != i {
				t.Fatalf("get(%d) = (%d,%v)", i, v, ok)
			}
		}
		// Ordered iteration.
		i := 0
		tr.Ascend(func(k []byte, v int) bool {
			if !bytes.Equal(k, key(i)) || v != i {
				t.Fatalf("iteration out of order at %d: %s", i, k)
			}
			i++
			return true
		})
		if i != n {
			t.Fatalf("iterated %d of %d", i, n)
		}
	}
}

func TestDeleteEverythingInRandomOrder(t *testing.T) {
	tr := New[int]()
	n := 5000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for i := 0; i < n; i++ {
		tr.Put(key(i), i)
	}
	for _, i := range perm {
		if _, ok := tr.Delete(key(i)); !ok {
			t.Fatalf("delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.Len())
	}
	count := 0
	tr.Ascend(func([]byte, int) bool { count++; return true })
	if count != 0 {
		t.Fatalf("iterated %d entries in empty tree", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), i)
	}
	var got []int
	tr.AscendRange(key(10), key(20), func(_ []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range scan = %v", got)
	}
	// Early stop.
	got = got[:0]
	tr.AscendRange(key(0), nil, func(_ []byte, v int) bool {
		got = append(got, v)
		return v < 4
	})
	if len(got) != 5 {
		t.Fatalf("early stop scan = %v", got)
	}
	// Range start not present.
	got = got[:0]
	tr.AscendRange([]byte("key-00000010x"), key(13), func(_ []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != 11 {
		t.Fatalf("mid-start scan = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int]()
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	for i := 5; i < 50; i++ {
		tr.Put(key(i), i)
	}
	if k, v, ok := tr.Min(); !ok || !bytes.Equal(k, key(5)) || v != 5 {
		t.Fatalf("Min = %s,%d,%v", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || !bytes.Equal(k, key(49)) || v != 49 {
		t.Fatalf("Max = %s,%d,%v", k, v, ok)
	}
}

// TestAgainstModel drives random operations against a map+sorted-slice
// model and checks full equivalence after every batch.
func TestAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New[int]()
	model := make(map[string]int)
	for round := 0; round < 200; round++ {
		for op := 0; op < 100; op++ {
			k := key(rng.Intn(800))
			switch rng.Intn(3) {
			case 0, 1:
				v := rng.Int()
				_, replaced := tr.Put(k, v)
				if _, inModel := model[string(k)]; inModel != replaced {
					t.Fatalf("replace mismatch for %s", k)
				}
				model[string(k)] = v
			case 2:
				_, ok := tr.Delete(k)
				if _, inModel := model[string(k)]; inModel != ok {
					t.Fatalf("delete mismatch for %s", k)
				}
				delete(model, string(k))
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("len %d != model %d", tr.Len(), len(model))
		}
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		tr.Ascend(func(k []byte, v int) bool {
			if string(k) != keys[i] || v != model[keys[i]] {
				t.Fatalf("round %d: entry %d mismatch: %s", round, i, k)
			}
			i++
			return true
		})
		if i != len(keys) {
			t.Fatalf("iterated %d, model has %d", i, len(keys))
		}
	}
}

func TestQuickRandomKeys(t *testing.T) {
	f := func(keys [][]byte) bool {
		tr := New[int]()
		model := make(map[string]int)
		for i, k := range keys {
			tr.Put(append([]byte(nil), k...), i)
			model[string(k)] = i
		}
		if tr.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := tr.Get([]byte(k))
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndZeroLengthKeys(t *testing.T) {
	tr := New[string]()
	tr.Put([]byte{}, "empty")
	tr.Put([]byte{0}, "zero")
	if v, ok := tr.Get([]byte{}); !ok || v != "empty" {
		t.Fatal("empty key lookup failed")
	}
	if v, ok := tr.Get([]byte{0}); !ok || v != "zero" {
		t.Fatal("zero-byte key lookup failed")
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New[int]()
	for i := 0; i < 100000; i++ {
		tr.Put(key(i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % 100000))
	}
}

// TestShardBoundariesPartition is the sharded-scan property test: for any
// tree size and shard count, the boundaries are strictly ascending and the
// union of range scans over the derived ranges reproduces a full serial
// Ascend exactly — no overlap, no gap, no reordering.
func TestShardBoundariesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{0, 1, 2, 63, 64, 65, 200, 1000, 5000} {
		tr := New[int]()
		perm := rng.Perm(size * 2)
		for i := 0; i < size; i++ {
			tr.Put(key(perm[i]), perm[i])
		}
		var want [][]byte
		tr.Ascend(func(k []byte, _ int) bool {
			want = append(want, k)
			return true
		})
		for _, n := range []int{1, 2, 3, 7, 16, 100} {
			bounds := tr.ShardBoundaries(n)
			if len(bounds) > n-1 && n > 1 {
				t.Fatalf("size=%d n=%d: %d boundaries, want <= %d", size, n, len(bounds), n-1)
			}
			for i := 1; i < len(bounds); i++ {
				if bytes.Compare(bounds[i-1], bounds[i]) >= 0 {
					t.Fatalf("size=%d n=%d: boundaries not strictly ascending at %d", size, n, i)
				}
			}
			var got [][]byte
			var start []byte
			scan := func(lo, hi []byte) {
				tr.AscendRange(lo, hi, func(k []byte, _ int) bool {
					got = append(got, k)
					return true
				})
			}
			for _, b := range bounds {
				scan(start, b)
				start = b
			}
			scan(start, nil)
			if len(got) != len(want) {
				t.Fatalf("size=%d n=%d: sharded scan saw %d keys, want %d", size, n, len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("size=%d n=%d: key %d mismatch: %q != %q", size, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardBoundariesAfterDeletes checks that boundaries remain a valid
// partition when separator keys may no longer exist as entries.
func TestShardBoundariesAfterDeletes(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 2000; i++ {
		tr.Put(key(i), i)
	}
	for i := 0; i < 2000; i += 2 {
		tr.Delete(key(i))
	}
	bounds := tr.ShardBoundaries(8)
	seen := 0
	var start []byte
	scan := func(lo, hi []byte) {
		tr.AscendRange(lo, hi, func([]byte, int) bool {
			seen++
			return true
		})
	}
	for _, b := range bounds {
		scan(start, b)
		start = b
	}
	scan(start, nil)
	if seen != tr.Len() {
		t.Fatalf("sharded scan saw %d keys, want %d", seen, tr.Len())
	}
}

// TestBuildSorted proves bulk loading at awkward sizes produces a tree
// indistinguishable from one built with Put: same entries in order, Get
// hits everything, and subsequent mutations (Put splits, Delete
// rebalances down to empty) behave.
func TestBuildSorted(t *testing.T) {
	sizes := []int{0, 1, 2, buildFill - 1, buildFill, buildFill + 1,
		buildFill*buildFill + 1, 10000, 50001}
	for _, n := range sizes {
		keys := make([][]byte, n)
		vals := make([]int, n)
		for i := range keys {
			keys[i], vals[i] = key(i), i
		}
		tr := BuildSorted(keys, vals)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		i := 0
		tr.Ascend(func(k []byte, v int) bool {
			if !bytes.Equal(k, keys[i]) || v != i {
				t.Fatalf("n=%d: entry %d = (%q,%d)", n, i, k, v)
			}
			i++
			return true
		})
		if i != n {
			t.Fatalf("n=%d: ascend visited %d entries", n, i)
		}
		for _, probe := range []int{0, n / 3, n - 1} {
			if n == 0 {
				break
			}
			if v, ok := tr.Get(key(probe)); !ok || v != probe {
				t.Fatalf("n=%d: Get(%d) = (%d,%v)", n, probe, v, ok)
			}
		}
		// Mutate: interleave new keys (forcing splits), then delete
		// everything (forcing borrows and merges through underfull
		// bulk-loaded nodes).
		if n > 0 && n <= 10000 {
			for j := 0; j < n; j++ {
				tr.Put([]byte(fmt.Sprintf("key-%08d-x", j)), -j)
			}
			if tr.Len() != 2*n {
				t.Fatalf("n=%d: Len after interleave = %d", n, tr.Len())
			}
			perm := rand.New(rand.NewSource(int64(n))).Perm(n)
			for _, j := range perm {
				if _, ok := tr.Delete(key(j)); !ok {
					t.Fatalf("n=%d: delete %d missed", n, j)
				}
				if _, ok := tr.Delete([]byte(fmt.Sprintf("key-%08d-x", j))); !ok {
					t.Fatalf("n=%d: delete %d-x missed", n, j)
				}
			}
			if tr.Len() != 0 {
				t.Fatalf("n=%d: Len after drain = %d", n, tr.Len())
			}
		}
	}
}
