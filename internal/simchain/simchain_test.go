package simchain

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func fastConfig() Config {
	return Config{
		Nodes:              4,
		EndorsementLatency: 100 * time.Microsecond,
		ConsensusLatency:   2 * time.Millisecond,
		ValidationPerTx:    10 * time.Microsecond,
		BlockCutSize:       10,
		BlockCutInterval:   5 * time.Millisecond,
	}
}

func TestSubmitCommits(t *testing.T) {
	c := New(fastConfig())
	defer c.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 25; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Submit([]byte(fmt.Sprintf("tx-%d", i))); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	blocks := c.Blocks()
	total := 0
	for _, b := range blocks {
		total += b.TxCount
	}
	if total != 25 {
		t.Fatalf("committed %d txs, want 25", total)
	}
	if !c.VerifyChain() {
		t.Fatal("chain does not verify")
	}
}

func TestChainLinks(t *testing.T) {
	c := New(fastConfig())
	defer c.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Submit([]byte{byte(i)})
		}(i)
	}
	wg.Wait()
	blocks := c.Blocks()
	if len(blocks) < 2 {
		t.Skipf("only %d blocks; need 2+ to check links", len(blocks))
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].PrevHash != blocks[i-1].Hash {
			t.Fatalf("link broken at block %d", i)
		}
		if blocks[i].Number != blocks[i-1].Number+1 {
			t.Fatalf("numbering broken at block %d", i)
		}
	}
}

func TestLatencyReflectsConsensus(t *testing.T) {
	cfg := fastConfig()
	cfg.ConsensusLatency = 30 * time.Millisecond
	cfg.BlockCutInterval = 10 * time.Millisecond
	c := New(cfg)
	defer c.Stop()
	start := time.Now()
	if err := c.Submit([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < cfg.ConsensusLatency {
		t.Fatalf("end-to-end latency %v below consensus latency %v", d, cfg.ConsensusLatency)
	}
}

func TestStopRejectsNewWork(t *testing.T) {
	c := New(fastConfig())
	c.Stop()
	time.Sleep(10 * time.Millisecond)
	if err := c.Submit([]byte("late")); err != ErrClosed {
		t.Fatalf("submit after stop: %v", err)
	}
	c.Stop() // idempotent
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes < 2 || cfg.BlockCutSize < 1 || cfg.ConsensusLatency <= 0 {
		t.Fatalf("default config degenerate: %+v", cfg)
	}
}
