// Package simchain is a simulated permissioned blockchain used as the
// paper's comparison point (§4.1.1 compares SQL Ledger against Hyperledger
// Fabric: ">20x higher throughput ... latency in the order of 100s of ms").
//
// Running Fabric itself is out of scope for an offline reproduction, so
// this package models the cost structure that dominates such systems: an
// endorsement phase, an ordering service that batches transactions into
// blocks, a consensus round whose latency is paid per block, and a
// validation phase paid per transaction. Blocks are SHA-256 chained like a
// real ledger. The defaults are calibrated to published Fabric numbers
// (block cut ~500ms or ~500 txs, consensus ~100ms, endorsement ~2ms).
package simchain

import (
	"crypto/sha256"
	"errors"
	"sync"
	"time"
)

// Config models the latency structure of the decentralized ledger.
type Config struct {
	// Nodes is the number of consensus participants (affects consensus
	// latency: one round trip per log2(nodes) hop group, a rough model).
	Nodes int
	// EndorsementLatency is paid once per transaction at submission.
	EndorsementLatency time.Duration
	// ConsensusLatency is paid once per block.
	ConsensusLatency time.Duration
	// ValidationPerTx is paid per transaction at block commit.
	ValidationPerTx time.Duration
	// BlockCutSize closes a block when it holds this many transactions.
	BlockCutSize int
	// BlockCutInterval closes a (non-empty) block after this long even if
	// it is not full.
	BlockCutInterval time.Duration
}

// DefaultConfig returns parameters calibrated to published Hyperledger
// Fabric behaviour.
func DefaultConfig() Config {
	return Config{
		Nodes:              4,
		EndorsementLatency: 2 * time.Millisecond,
		ConsensusLatency:   100 * time.Millisecond,
		ValidationPerTx:    200 * time.Microsecond,
		BlockCutSize:       500,
		BlockCutInterval:   500 * time.Millisecond,
	}
}

// Block is one committed block of the simulated chain.
type Block struct {
	Number   uint64
	PrevHash [sha256.Size]byte
	TxCount  int
	Hash     [sha256.Size]byte
	// CommitTime is when consensus completed for the block.
	CommitTime time.Time
}

type pendingTx struct {
	payload []byte
	done    chan struct{}
}

// Chain is a running simulated blockchain network.
type Chain struct {
	cfg Config

	mu      sync.Mutex
	pending []pendingTx
	blocks  []Block
	closed  bool
	kick    chan struct{}
	doneCh  chan struct{}
}

// ErrClosed is returned when submitting to a stopped chain.
var ErrClosed = errors.New("simchain: chain stopped")

// New starts a simulated chain.
func New(cfg Config) *Chain {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.BlockCutSize <= 0 {
		cfg.BlockCutSize = 500
	}
	if cfg.BlockCutInterval <= 0 {
		cfg.BlockCutInterval = 500 * time.Millisecond
	}
	c := &Chain{cfg: cfg, kick: make(chan struct{}, 1), doneCh: make(chan struct{})}
	go c.orderer()
	return c
}

// Submit endorses a transaction, hands it to the ordering service, and
// blocks until its block commits — the end-to-end latency an application
// observes on such systems.
func (c *Chain) Submit(payload []byte) error {
	time.Sleep(c.cfg.EndorsementLatency)
	done := make(chan struct{})
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.pending = append(c.pending, pendingTx{payload: payload, done: done})
	full := len(c.pending) >= c.cfg.BlockCutSize
	c.mu.Unlock()
	if full {
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
	<-done
	return nil
}

// orderer cuts blocks by size or timeout and runs the consensus round.
func (c *Chain) orderer() {
	ticker := time.NewTicker(c.cfg.BlockCutInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.doneCh:
			c.cutBlock() // flush what is left
			return
		case <-c.kick:
			c.cutBlock()
		case <-ticker.C:
			c.cutBlock()
		}
	}
}

func (c *Chain) cutBlock() {
	c.mu.Lock()
	batch := c.pending
	c.pending = nil
	prev := [sha256.Size]byte{}
	num := uint64(len(c.blocks))
	if num > 0 {
		prev = c.blocks[num-1].Hash
	}
	c.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	// Consensus: a latency proportional to the (modeled) communication
	// rounds, then per-transaction validation on every node (paid once in
	// wall-clock terms since nodes validate in parallel).
	rounds := 1
	for n := c.cfg.Nodes; n > 2; n /= 2 {
		rounds++
	}
	time.Sleep(time.Duration(rounds) * c.cfg.ConsensusLatency / 2)
	time.Sleep(time.Duration(len(batch)) * c.cfg.ValidationPerTx)

	h := sha256.New()
	h.Write(prev[:])
	for _, tx := range batch {
		th := sha256.Sum256(tx.payload)
		h.Write(th[:])
	}
	var blk Block
	blk.Number = num
	blk.PrevHash = prev
	blk.TxCount = len(batch)
	copy(blk.Hash[:], h.Sum(nil))
	blk.CommitTime = time.Now()

	c.mu.Lock()
	c.blocks = append(c.blocks, blk)
	c.mu.Unlock()
	for _, tx := range batch {
		close(tx.done)
	}
}

// Blocks returns the committed blocks.
func (c *Chain) Blocks() []Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Block(nil), c.blocks...)
}

// VerifyChain checks the hash links of the committed chain.
func (c *Chain) VerifyChain() bool {
	blocks := c.Blocks()
	var prev [sha256.Size]byte
	for _, b := range blocks {
		if b.PrevHash != prev {
			return false
		}
		prev = b.Hash
	}
	return true
}

// Stop shuts the chain down, failing any unsubmitted work.
func (c *Chain) Stop() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.doneCh)
}
