// Package serial implements the canonical row serialization format that
// feeds SHA-256 row hashing (§3.2 of the SQL Ledger paper).
//
// The format deliberately includes column *metadata* — the number of
// non-NULL columns, and for each one its catalog ordinal, type id and
// declared length/precision/scale — alongside the value bytes. As the
// paper explains with its INT/SMALLINT example, hashing values alone would
// let an attacker tamper with table metadata and change how the stored
// bytes are interpreted without changing the hash; binding the metadata
// into the hash closes that attack.
//
// NULL values are skipped entirely (their ordinals simply do not appear),
// which is what makes adding a nullable column hash-compatible with rows
// written before the column existed (§3.5.1); explicit ordinals for the
// non-NULL columns prevent the NULL-remapping attack described there.
package serial

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"sqlledger/internal/merkle"
	"sqlledger/internal/sqltypes"
)

// Version identifies the serialization format version and is bound into
// every serialized row.
const Version byte = 1

// OpType tags which ledger operation a serialized row version represents.
// The tag domain-separates the two hashes a row version can produce: the
// hash recorded when the version is created (insert) and the hash recorded
// when it is deleted (delete / the "before" half of an update).
type OpType byte

// Operation types.
const (
	OpInsert OpType = 1
	OpDelete OpType = 2
)

// String names the operation the way ledger views report it.
func (o OpType) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	}
	return fmt.Sprintf("OP(%d)", byte(o))
}

// SerializeRow appends the canonical serialization of row r under schema s
// to dst. skip, if non-nil, excludes columns by ordinal: the ledger core
// uses it to exclude the end-transaction system columns when computing a
// version's insert-time hash (they were NULL when the version was
// created). Columns whose value is NULL are always excluded.
func SerializeRow(dst []byte, s *sqltypes.Schema, r sqltypes.Row, op OpType, skip func(ordinal int) bool) []byte {
	dst = append(dst, Version, byte(op))
	// Count the columns that participate.
	n := 0
	for i, v := range r {
		if v.Null || (skip != nil && skip(i)) {
			continue
		}
		n++
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	for i, v := range r {
		if v.Null || (skip != nil && skip(i)) {
			continue
		}
		c := s.Columns[i]
		dst = binary.AppendUvarint(dst, uint64(c.Ordinal))
		dst = append(dst, byte(c.Type))
		dst = binary.AppendUvarint(dst, uint64(c.Len))
		dst = binary.AppendUvarint(dst, uint64(c.Prec))
		dst = binary.AppendUvarint(dst, uint64(c.Scale))
		dst = appendValue(dst, v)
	}
	return dst
}

func appendValue(dst []byte, v sqltypes.Value) []byte {
	switch {
	case v.Type == sqltypes.TypeFloat:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v.F64))
		dst = binary.AppendUvarint(dst, 8)
		return append(dst, b[:]...)
	case v.Type.IsString():
		dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
		return append(dst, v.Str...)
	case v.Type.IsBytes():
		dst = binary.AppendUvarint(dst, uint64(len(v.Bytes)))
		return append(dst, v.Bytes...)
	default:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I64))
		dst = binary.AppendUvarint(dst, 8)
		return append(dst, b[:]...)
	}
}

// bufPool recycles serialization buffers: HashRow sits on the hot path of
// every ledger DML operation.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// HashRow is the LEDGERHASH analogue: it serializes the row and returns
// its SHA-256 hash.
func HashRow(s *sqltypes.Schema, r sqltypes.Row, op OpType, skip func(ordinal int) bool) merkle.Hash {
	bp := bufPool.Get().(*[]byte)
	buf := SerializeRow((*bp)[:0], s, r, op, skip)
	h := merkle.HashLeaf(buf)
	*bp = buf
	bufPool.Put(bp)
	return h
}

// HashBytes hashes an arbitrary canonical byte string (used for block
// headers and transaction entries, which have their own fixed layouts).
func HashBytes(parts ...[]byte) merkle.Hash {
	var buf []byte
	for _, p := range parts {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	return merkle.HashLeaf(buf)
}
