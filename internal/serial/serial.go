// Package serial implements the canonical row serialization format that
// feeds SHA-256 row hashing (§3.2 of the SQL Ledger paper).
//
// The format deliberately includes column *metadata* — the number of
// non-NULL columns, and for each one its catalog ordinal, type id and
// declared length/precision/scale — alongside the value bytes. As the
// paper explains with its INT/SMALLINT example, hashing values alone would
// let an attacker tamper with table metadata and change how the stored
// bytes are interpreted without changing the hash; binding the metadata
// into the hash closes that attack.
//
// NULL values are skipped entirely (their ordinals simply do not appear),
// which is what makes adding a nullable column hash-compatible with rows
// written before the column existed (§3.5.1); explicit ordinals for the
// non-NULL columns prevent the NULL-remapping attack described there.
package serial

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"sqlledger/internal/merkle"
	"sqlledger/internal/sqltypes"
)

// Version identifies the serialization format version and is bound into
// every serialized row.
const Version byte = 1

// OpType tags which ledger operation a serialized row version represents.
// The tag domain-separates the two hashes a row version can produce: the
// hash recorded when the version is created (insert) and the hash recorded
// when it is deleted (delete / the "before" half of an update).
type OpType byte

// Operation types.
const (
	OpInsert OpType = 1
	OpDelete OpType = 2
)

// String names the operation the way ledger views report it.
func (o OpType) String() string {
	switch o {
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	}
	return fmt.Sprintf("OP(%d)", byte(o))
}

// SkipMask marks column ordinals to exclude from serialization. The nil
// mask excludes nothing. Masks are precomputed once per table (the ledger
// core builds one for the end-transaction system columns) so the per-row
// hot path tests a bit instead of calling through a closure.
type SkipMask []uint64

// NewSkipMask builds a mask excluding the given column ordinals.
func NewSkipMask(ordinals ...int) SkipMask {
	var m SkipMask
	for _, ord := range ordinals {
		w := ord >> 6
		for len(m) <= w {
			m = append(m, 0)
		}
		m[w] |= 1 << (uint(ord) & 63)
	}
	return m
}

// Has reports whether ordinal ord is excluded.
func (m SkipMask) Has(ord int) bool {
	w := ord >> 6
	return w < len(m) && m[w]&(1<<(uint(ord)&63)) != 0
}

// SerializeRow appends the canonical serialization of row r under schema s
// to dst. skip, if non-nil, excludes columns by ordinal: the ledger core
// uses it to exclude the end-transaction system columns when computing a
// version's insert-time hash (they were NULL when the version was
// created). Columns whose value is NULL are always excluded.
//
// The encoding is produced in a single pass: a one-byte varint slot is
// reserved for the participating-column count and patched after the column
// loop. Counts of 128+ columns need a wider varint and shift the payload
// right by the difference — rare, and byte-for-byte identical to the
// original two-pass encoding (pinned by TestSerializeSinglePassCompat).
func SerializeRow(dst []byte, s *sqltypes.Schema, r sqltypes.Row, op OpType, skip SkipMask) []byte {
	dst = append(dst, Version, byte(op))
	countAt := len(dst)
	dst = append(dst, 0) // varint slot for the column count, patched below
	n := 0
	for i, v := range r {
		if v.Null || skip.Has(i) {
			continue
		}
		n++
		c := s.Columns[i]
		dst = binary.AppendUvarint(dst, uint64(c.Ordinal))
		dst = append(dst, byte(c.Type))
		dst = binary.AppendUvarint(dst, uint64(c.Len))
		dst = binary.AppendUvarint(dst, uint64(c.Prec))
		dst = binary.AppendUvarint(dst, uint64(c.Scale))
		dst = appendValue(dst, v)
	}
	if n < 0x80 {
		dst[countAt] = byte(n)
		return dst
	}
	// Wide count: grow by the extra varint bytes and slide the payload.
	var vbuf [binary.MaxVarintLen64]byte
	vn := binary.PutUvarint(vbuf[:], uint64(n))
	payloadEnd := len(dst)
	for j := 1; j < vn; j++ {
		dst = append(dst, 0)
	}
	copy(dst[countAt+vn:], dst[countAt+1:payloadEnd])
	copy(dst[countAt:], vbuf[:vn])
	return dst
}

func appendValue(dst []byte, v sqltypes.Value) []byte {
	switch {
	case v.Type == sqltypes.TypeFloat:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], math.Float64bits(v.F64))
		dst = binary.AppendUvarint(dst, 8)
		return append(dst, b[:]...)
	case v.Type.IsString():
		dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
		return append(dst, v.Str...)
	case v.Type.IsBytes():
		dst = binary.AppendUvarint(dst, uint64(len(v.Bytes)))
		return append(dst, v.Bytes...)
	default:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I64))
		dst = binary.AppendUvarint(dst, 8)
		return append(dst, b[:]...)
	}
}

// bufPool recycles serialization buffers: HashRow and HashBytes sit on the
// hot path of every ledger DML operation and block/entry hash.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// HashRow is the LEDGERHASH analogue: it serializes the row and returns
// its SHA-256 hash. Steady-state it allocates nothing: the serialization
// buffer is pooled and the skip mask is a precomputed bitmask.
func HashRow(s *sqltypes.Schema, r sqltypes.Row, op OpType, skip SkipMask) merkle.Hash {
	bp := bufPool.Get().(*[]byte)
	buf := SerializeRow((*bp)[:0], s, r, op, skip)
	h := merkle.HashLeaf(buf)
	*bp = buf
	bufPool.Put(bp)
	return h
}

// HashBytes hashes an arbitrary canonical byte string (used for block
// headers and transaction entries, which have their own fixed layouts).
// The length-prefixed concatenation is built in a pooled buffer pre-sized
// from the summed part lengths, so no per-call allocation survives warmup.
func HashBytes(parts ...[]byte) merkle.Hash {
	total := 0
	for _, p := range parts {
		total += len(p) + binary.MaxVarintLen64
	}
	bp := bufPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < total {
		buf = make([]byte, 0, total)
	}
	buf = buf[:0]
	for _, p := range parts {
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		buf = append(buf, p...)
	}
	h := merkle.HashLeaf(buf)
	*bp = buf
	bufPool.Put(bp)
	return h
}
