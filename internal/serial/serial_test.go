package serial

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"sqlledger/internal/sqltypes"
)

func twoColSchema(t1, t2 sqltypes.TypeID) *sqltypes.Schema {
	return sqltypes.MustSchema([]sqltypes.Column{
		{Name: "Column1", Type: t1, Nullable: true},
		{Name: "Column2", Type: t2, Nullable: true},
	})
}

// TestMetadataAttackDetected reproduces the paper's §3.2 example: a table
// with Column1 INT and Column2 SMALLINT where the attacker redeclares the
// types. Hashing values alone would not change; hashing with metadata must.
func TestMetadataAttackDetected(t *testing.T) {
	honest := twoColSchema(sqltypes.TypeInt, sqltypes.TypeSmallInt)
	tampered := twoColSchema(sqltypes.TypeSmallInt, sqltypes.TypeInt)
	row1 := sqltypes.Row{sqltypes.NewInt(0x12), sqltypes.NewSmallInt(0x34)}
	row2 := sqltypes.Row{sqltypes.NewSmallInt(0x12), sqltypes.NewInt(0x34)}
	h1 := HashRow(honest, row1, OpInsert, nil)
	h2 := HashRow(tampered, row2, OpInsert, nil)
	if h1 == h2 {
		t.Fatal("type-swap attack produced the same hash")
	}
}

func TestDeclaredLengthAffectsHash(t *testing.T) {
	a := sqltypes.MustSchema([]sqltypes.Column{sqltypes.VarCol("c", sqltypes.TypeVarChar, 10)})
	b := sqltypes.MustSchema([]sqltypes.Column{sqltypes.VarCol("c", sqltypes.TypeVarChar, 20)})
	row := sqltypes.Row{sqltypes.NewVarChar("x")}
	if HashRow(a, row, OpInsert, nil) == HashRow(b, row, OpInsert, nil) {
		t.Fatal("declared length not bound into hash")
	}
}

func TestDecimalPrecisionScaleAffectsHash(t *testing.T) {
	a := sqltypes.MustSchema([]sqltypes.Column{sqltypes.DecimalCol("c", 10, 2)})
	b := sqltypes.MustSchema([]sqltypes.Column{sqltypes.DecimalCol("c", 10, 3)})
	row := sqltypes.Row{sqltypes.NewDecimal(12345)}
	if HashRow(a, row, OpInsert, nil) == HashRow(b, row, OpInsert, nil) {
		t.Fatal("decimal scale not bound into hash")
	}
}

// TestNullSkipAddColumnCompatibility checks §3.5.1: a row hashed before a
// nullable column existed hashes identically afterwards (NULL for the new
// column), so old digests stay valid.
func TestNullSkipAddColumnCompatibility(t *testing.T) {
	before := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("a", sqltypes.TypeBigInt),
		sqltypes.Col("b", sqltypes.TypeVarChar),
	})
	after := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("a", sqltypes.TypeBigInt),
		sqltypes.Col("b", sqltypes.TypeVarChar),
		sqltypes.NullableCol("c", sqltypes.TypeInt),
	})
	rowBefore := sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewVarChar("x")}
	rowAfter := sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewVarChar("x"), sqltypes.NewNull(sqltypes.TypeInt)}
	if HashRow(before, rowBefore, OpInsert, nil) != HashRow(after, rowAfter, OpInsert, nil) {
		t.Fatal("adding a nullable column changed existing row hashes")
	}
}

// TestNullRemapAttackDetected checks the attack §3.5.1 warns about: an
// attacker cannot shift a value from one nullable column to another,
// because ordinals of non-NULL columns are serialized.
func TestNullRemapAttackDetected(t *testing.T) {
	s := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.NullableCol("a", sqltypes.TypeInt),
		sqltypes.NullableCol("b", sqltypes.TypeInt),
	})
	r1 := sqltypes.Row{sqltypes.NewInt(7), sqltypes.NewNull(sqltypes.TypeInt)}
	r2 := sqltypes.Row{sqltypes.NewNull(sqltypes.TypeInt), sqltypes.NewInt(7)}
	if HashRow(s, r1, OpInsert, nil) == HashRow(s, r2, OpInsert, nil) {
		t.Fatal("NULL remap attack produced the same hash")
	}
}

func TestOpTypeDomainSeparation(t *testing.T) {
	s := sqltypes.MustSchema([]sqltypes.Column{sqltypes.Col("a", sqltypes.TypeInt)})
	r := sqltypes.Row{sqltypes.NewInt(1)}
	if HashRow(s, r, OpInsert, nil) == HashRow(s, r, OpDelete, nil) {
		t.Fatal("insert and delete hashes must differ")
	}
}

func TestSkipMask(t *testing.T) {
	s := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("a", sqltypes.TypeInt),
		sqltypes.NullableCol("end_tx", sqltypes.TypeBigInt),
	})
	withEnd := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewBigInt(99)}
	withoutEnd := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewNull(sqltypes.TypeBigInt)}
	skip := NewSkipMask(1)
	// Hash of the populated row with column 1 skipped must equal the hash
	// of the row where it was NULL — the history-table recomputation case.
	if HashRow(s, withEnd, OpInsert, skip) != HashRow(s, withoutEnd, OpInsert, nil) {
		t.Fatal("skip mask does not reproduce the pre-delete hash")
	}
	if HashRow(s, withEnd, OpInsert, nil) == HashRow(s, withoutEnd, OpInsert, nil) {
		t.Fatal("end column should affect the unskipped hash")
	}
}

func TestSkipMaskBits(t *testing.T) {
	m := NewSkipMask(0, 63, 64, 130)
	for _, ord := range []int{0, 63, 64, 130} {
		if !m.Has(ord) {
			t.Fatalf("ordinal %d should be set", ord)
		}
	}
	for _, ord := range []int{1, 62, 65, 129, 131, 1000} {
		if m.Has(ord) {
			t.Fatalf("ordinal %d should not be set", ord)
		}
	}
	var none SkipMask
	if none.Has(0) || none.Has(64) {
		t.Fatal("nil mask must exclude nothing")
	}
}

// referenceSerializeRow is the original two-pass encoding (count columns,
// then serialize). The single-pass encoder must stay byte-for-byte
// compatible with it: existing digests and receipts depend on these bytes.
func referenceSerializeRow(dst []byte, s *sqltypes.Schema, r sqltypes.Row, op OpType, skip SkipMask) []byte {
	dst = append(dst, Version, byte(op))
	n := 0
	for i, v := range r {
		if v.Null || skip.Has(i) {
			continue
		}
		n++
	}
	dst = binary.AppendUvarint(dst, uint64(n))
	for i, v := range r {
		if v.Null || skip.Has(i) {
			continue
		}
		c := s.Columns[i]
		dst = binary.AppendUvarint(dst, uint64(c.Ordinal))
		dst = append(dst, byte(c.Type))
		dst = binary.AppendUvarint(dst, uint64(c.Len))
		dst = binary.AppendUvarint(dst, uint64(c.Prec))
		dst = binary.AppendUvarint(dst, uint64(c.Scale))
		dst = appendValue(dst, v)
	}
	return dst
}

func TestSerializeSinglePassCompat(t *testing.T) {
	// Wide schema so the participating-column count crosses the one-byte
	// varint boundary (128+) and exercises the payload slide.
	for _, ncols := range []int{0, 1, 2, 5, 127, 128, 129, 200, 300} {
		cols := make([]sqltypes.Column, ncols)
		row := make(sqltypes.Row, ncols)
		for i := range cols {
			switch i % 3 {
			case 0:
				cols[i] = sqltypes.NullableCol(fmt.Sprintf("c%d", i), sqltypes.TypeBigInt)
				row[i] = sqltypes.NewBigInt(int64(i * 17))
			case 1:
				cols[i] = sqltypes.NullableCol(fmt.Sprintf("c%d", i), sqltypes.TypeVarChar)
				row[i] = sqltypes.NewVarChar(fmt.Sprintf("value-%d", i))
			default:
				cols[i] = sqltypes.NullableCol(fmt.Sprintf("c%d", i), sqltypes.TypeFloat)
				row[i] = sqltypes.NewFloat(float64(i) * 1.5)
			}
			if i%7 == 3 {
				row[i] = sqltypes.NewNull(cols[i].Type)
			}
		}
		s := sqltypes.MustSchema(cols)
		for _, skip := range []SkipMask{nil, NewSkipMask(0), NewSkipMask(1, 64, 129)} {
			got := SerializeRow(nil, s, row, OpInsert, skip)
			want := referenceSerializeRow(nil, s, row, OpInsert, skip)
			if !bytes.Equal(got, want) {
				t.Fatalf("ncols=%d skip=%v: single-pass encoding diverged\n got %x\nwant %x", ncols, skip, got, want)
			}
			// Appending onto a non-empty dst must also match.
			prefix := []byte{0xde, 0xad}
			got = SerializeRow(prefix, s, row, OpDelete, skip)
			want = referenceSerializeRow(prefix, s, row, OpDelete, skip)
			if !bytes.Equal(got, want) {
				t.Fatalf("ncols=%d skip=%v: single-pass encoding diverged with prefix", ncols, skip)
			}
		}
	}
}

// The allocation gates below pin the zero-allocation ingest path
// (ISSUE 5): HashRow and HashBytes must not allocate once the buffer pool
// is warm. The race detector instruments allocations, so the gates only
// run race-free (see race_off_test.go / race_on_test.go).
func TestHashRowAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	s := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("id", sqltypes.TypeBigInt),
		sqltypes.Col("payload", sqltypes.TypeVarChar),
		sqltypes.NullableCol("end_tx", sqltypes.TypeBigInt),
	})
	r := sqltypes.Row{
		sqltypes.NewBigInt(42),
		sqltypes.NewVarChar("some moderately sized payload string"),
		sqltypes.NewBigInt(7),
	}
	skip := NewSkipMask(2)
	HashRow(s, r, OpInsert, skip) // warm the pool
	if n := testing.AllocsPerRun(100, func() {
		HashRow(s, r, OpInsert, skip)
	}); n > 1 {
		t.Fatalf("HashRow allocates %.1f times per call, want <= 1", n)
	}
}

func TestHashBytesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	a, b, c := []byte("block-header"), make([]byte, 32), make([]byte, 64)
	HashBytes(a, b, c) // warm the pool
	if n := testing.AllocsPerRun(100, func() {
		HashBytes(a, b, c)
	}); n > 1 {
		t.Fatalf("HashBytes allocates %.1f times per call, want <= 1", n)
	}
}

func TestSerializeDeterministic(t *testing.T) {
	s := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("a", sqltypes.TypeBigInt),
		sqltypes.Col("b", sqltypes.TypeFloat),
		sqltypes.Col("c", sqltypes.TypeVarBinary),
		sqltypes.Col("d", sqltypes.TypeDateTime),
	})
	r := sqltypes.Row{
		sqltypes.NewBigInt(-5),
		sqltypes.NewFloat(3.14),
		sqltypes.NewVarBinary([]byte{1, 2, 3}),
		sqltypes.Value{Type: sqltypes.TypeDateTime, I64: 1234567890},
	}
	a := SerializeRow(nil, s, r, OpInsert, nil)
	b := SerializeRow(nil, s, r, OpInsert, nil)
	if !bytes.Equal(a, b) {
		t.Fatal("serialization not deterministic")
	}
	if a[0] != Version {
		t.Fatal("missing version byte")
	}
}

func TestValueChangesChangeHash(t *testing.T) {
	s := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("a", sqltypes.TypeBigInt),
		sqltypes.Col("b", sqltypes.TypeNVarChar),
	})
	base := HashRow(s, sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewNVarChar("x")}, OpInsert, nil)
	if HashRow(s, sqltypes.Row{sqltypes.NewBigInt(2), sqltypes.NewNVarChar("x")}, OpInsert, nil) == base {
		t.Fatal("integer change not reflected")
	}
	if HashRow(s, sqltypes.Row{sqltypes.NewBigInt(1), sqltypes.NewNVarChar("y")}, OpInsert, nil) == base {
		t.Fatal("string change not reflected")
	}
}

func TestHashBytesBoundaries(t *testing.T) {
	// Length-prefixing must prevent boundary-shifting collisions.
	if HashBytes([]byte("ab"), []byte("c")) == HashBytes([]byte("a"), []byte("bc")) {
		t.Fatal("HashBytes boundary collision")
	}
	if HashBytes() == HashBytes([]byte{}) {
		t.Fatal("zero-part and one-empty-part must differ")
	}
}

func TestOpTypeString(t *testing.T) {
	if OpInsert.String() != "INSERT" || OpDelete.String() != "DELETE" {
		t.Fatal("op names wrong")
	}
	if OpType(9).String() != "OP(9)" {
		t.Fatal("unknown op rendering wrong")
	}
}

func BenchmarkHashRow260B(b *testing.B) {
	s := sqltypes.MustSchema([]sqltypes.Column{
		sqltypes.Col("id", sqltypes.TypeBigInt),
		sqltypes.Col("filler", sqltypes.TypeVarChar),
	})
	pad := make([]byte, 240)
	for i := range pad {
		pad[i] = 'a'
	}
	r := sqltypes.Row{sqltypes.NewBigInt(12345), sqltypes.NewVarChar(string(pad))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HashRow(s, r, OpInsert, nil)
	}
}
