//go:build !race

package serial

// raceEnabled gates the AllocsPerRun regression tests: the race detector
// instruments allocations and would trip them spuriously.
const raceEnabled = false
