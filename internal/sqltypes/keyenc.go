package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Order-preserving ("memcomparable") key encoding. Encoded composite keys
// compare bytewise in the same order that Value.Compare orders the
// underlying values, which lets B+tree indexes store plain []byte keys.
//
// Layout per value: a one-byte tag (0x00 = NULL, 0x01 = value) followed by
// the type-specific payload:
//   - integers/decimal/datetime: 8 bytes big-endian with the sign bit
//     flipped so negative numbers sort first;
//   - float: IEEE-754 bits transformed to sort order;
//   - strings/bytes: escaped terminator encoding (0x00 -> 0x00 0xFF,
//     terminated by 0x00 0x00) so that prefixes sort correctly.
//
// NULL sorts before every non-NULL value, matching Value.Compare.

// EncodeKey appends the order-preserving encoding of the values to dst and
// returns the extended slice.
func EncodeKey(dst []byte, vals ...Value) []byte {
	for _, v := range vals {
		if v.Null {
			dst = append(dst, 0x00)
			continue
		}
		dst = append(dst, 0x01)
		switch {
		case v.Type == TypeFloat:
			dst = appendUint64(dst, floatToOrdered(v.F64))
		case v.Type.IsString():
			dst = appendEscaped(dst, []byte(v.Str))
		case v.Type.IsBytes():
			dst = appendEscaped(dst, v.Bytes)
		default:
			dst = appendUint64(dst, uint64(v.I64)^(1<<63))
		}
	}
	return dst
}

// EncodeRowKey encodes the primary-key columns of row r per schema s.
func EncodeRowKey(s *Schema, r Row) []byte {
	vals := make([]Value, len(s.Key))
	for i, ord := range s.Key {
		vals[i] = r[ord]
	}
	return EncodeKey(nil, vals...)
}

func appendUint64(dst []byte, u uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], u)
	return append(dst, b[:]...)
}

func floatToOrdered(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u // negative: flip all bits
	}
	return u | (1 << 63) // positive: flip sign bit
}

func orderedToFloat(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x00)
}

// DecodeKey decodes a key encoded by EncodeKey given the column types of
// its components. It is the inverse of EncodeKey and is used by index scans
// that must recover key values.
func DecodeKey(key []byte, types []TypeID) ([]Value, error) {
	out := make([]Value, 0, len(types))
	pos := 0
	for _, t := range types {
		if pos >= len(key) {
			return nil, fmt.Errorf("sqltypes: key truncated at component %d", len(out))
		}
		tag := key[pos]
		pos++
		if tag == 0x00 {
			out = append(out, NewNull(t))
			continue
		}
		if tag != 0x01 {
			return nil, fmt.Errorf("sqltypes: bad key tag 0x%02x", tag)
		}
		switch {
		case t == TypeFloat:
			if pos+8 > len(key) {
				return nil, fmt.Errorf("sqltypes: key truncated in float")
			}
			out = append(out, NewFloat(orderedToFloat(binary.BigEndian.Uint64(key[pos:]))))
			pos += 8
		case t.IsString() || t.IsBytes():
			raw, n, err := decodeEscaped(key[pos:])
			if err != nil {
				return nil, err
			}
			pos += n
			v := Value{Type: t}
			if t.IsString() {
				v.Str = string(raw)
			} else {
				v.Bytes = raw
			}
			out = append(out, v)
		default:
			if pos+8 > len(key) {
				return nil, fmt.Errorf("sqltypes: key truncated in integer")
			}
			u := binary.BigEndian.Uint64(key[pos:])
			pos += 8
			out = append(out, Value{Type: t, I64: int64(u ^ (1 << 63))})
		}
	}
	if pos != len(key) {
		return nil, fmt.Errorf("sqltypes: %d trailing key bytes", len(key)-pos)
	}
	return out, nil
}

func decodeEscaped(b []byte) (raw []byte, n int, err error) {
	out := make([]byte, 0, len(b))
	i := 0
	for {
		if i+1 >= len(b) {
			return nil, 0, fmt.Errorf("sqltypes: unterminated escaped key component")
		}
		if b[i] == 0x00 {
			switch b[i+1] {
			case 0x00:
				return out, i + 2, nil
			case 0xFF:
				out = append(out, 0x00)
				i += 2
				continue
			default:
				return nil, 0, fmt.Errorf("sqltypes: bad escape 0x00 0x%02x", b[i+1])
			}
		}
		out = append(out, b[i])
		i++
	}
}
