// Package sqltypes defines the SQL type system used throughout the engine:
// column types, typed values, rows, schemas and the order-preserving key
// encoding used by B+tree indexes.
//
// The type system intentionally mirrors the subset of SQL Server types that
// the SQL Ledger paper's serialization format (§3.2) must cover: fixed-width
// integers of several sizes (so that the metadata-tampering attack described
// in the paper — redeclaring an INT as SMALLINT — is expressible), variable
// length character and binary data, and a few scalar types common in
// Systems-of-Record schemas.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// TypeID identifies a SQL column type.
type TypeID uint8

// Supported column types.
const (
	TypeInvalid   TypeID = iota
	TypeBit              // bool, 1 byte
	TypeTinyInt          // uint8
	TypeSmallInt         // int16
	TypeInt              // int32
	TypeBigInt           // int64
	TypeFloat            // float64
	TypeDecimal          // fixed precision/scale, stored as scaled int64
	TypeChar             // fixed-length string
	TypeVarChar          // variable-length string
	TypeNVarChar         // variable-length unicode string
	TypeBinary           // fixed-length bytes
	TypeVarBinary        // variable-length bytes
	TypeDateTime         // time, stored as unix nanoseconds (UTC)
	TypeUniqueID         // 16-byte identifier
)

// String returns the SQL-ish name of the type.
func (t TypeID) String() string {
	switch t {
	case TypeBit:
		return "BIT"
	case TypeTinyInt:
		return "TINYINT"
	case TypeSmallInt:
		return "SMALLINT"
	case TypeInt:
		return "INT"
	case TypeBigInt:
		return "BIGINT"
	case TypeFloat:
		return "FLOAT"
	case TypeDecimal:
		return "DECIMAL"
	case TypeChar:
		return "CHAR"
	case TypeVarChar:
		return "VARCHAR"
	case TypeNVarChar:
		return "NVARCHAR"
	case TypeBinary:
		return "BINARY"
	case TypeVarBinary:
		return "VARBINARY"
	case TypeDateTime:
		return "DATETIME"
	case TypeUniqueID:
		return "UNIQUEIDENTIFIER"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// IsInteger reports whether t is one of the integer types.
func (t TypeID) IsInteger() bool {
	switch t {
	case TypeBit, TypeTinyInt, TypeSmallInt, TypeInt, TypeBigInt:
		return true
	}
	return false
}

// IsString reports whether t holds character data.
func (t TypeID) IsString() bool {
	switch t {
	case TypeChar, TypeVarChar, TypeNVarChar:
		return true
	}
	return false
}

// IsBytes reports whether t holds raw binary data.
func (t TypeID) IsBytes() bool {
	return t == TypeBinary || t == TypeVarBinary || t == TypeUniqueID
}

// FixedWidth returns the storage width of fixed-width types and 0 for
// variable-width ones.
func (t TypeID) FixedWidth() int {
	switch t {
	case TypeBit, TypeTinyInt:
		return 1
	case TypeSmallInt:
		return 2
	case TypeInt:
		return 4
	case TypeBigInt, TypeFloat, TypeDateTime, TypeDecimal:
		return 8
	case TypeUniqueID:
		return 16
	}
	return 0
}

// Value is a typed, nullable SQL value. The zero Value is the SQL NULL of
// an invalid type; use the constructor helpers to build typed values.
type Value struct {
	Type TypeID
	Null bool
	// I64 holds integers, the scaled decimal value, and DateTime unix
	// nanoseconds. F64 holds floats. Str holds character data. Bytes holds
	// binary data.
	I64   int64
	F64   float64
	Str   string
	Bytes []byte
}

// Null values and constructors.

// NewNull returns the NULL value of type t.
func NewNull(t TypeID) Value { return Value{Type: t, Null: true} }

// NewBit returns a BIT value.
func NewBit(b bool) Value {
	v := Value{Type: TypeBit}
	if b {
		v.I64 = 1
	}
	return v
}

// NewTinyInt returns a TINYINT value.
func NewTinyInt(i uint8) Value { return Value{Type: TypeTinyInt, I64: int64(i)} }

// NewSmallInt returns a SMALLINT value.
func NewSmallInt(i int16) Value { return Value{Type: TypeSmallInt, I64: int64(i)} }

// NewInt returns an INT value.
func NewInt(i int32) Value { return Value{Type: TypeInt, I64: int64(i)} }

// NewBigInt returns a BIGINT value.
func NewBigInt(i int64) Value { return Value{Type: TypeBigInt, I64: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{Type: TypeFloat, F64: f} }

// NewDecimal returns a DECIMAL value holding the already-scaled integer
// representation (e.g. 12345 with scale 2 represents 123.45).
func NewDecimal(scaled int64) Value { return Value{Type: TypeDecimal, I64: scaled} }

// NewChar returns a CHAR value.
func NewChar(s string) Value { return Value{Type: TypeChar, Str: s} }

// NewVarChar returns a VARCHAR value.
func NewVarChar(s string) Value { return Value{Type: TypeVarChar, Str: s} }

// NewNVarChar returns an NVARCHAR value.
func NewNVarChar(s string) Value { return Value{Type: TypeNVarChar, Str: s} }

// NewBinary returns a BINARY value. The slice is not copied.
func NewBinary(b []byte) Value { return Value{Type: TypeBinary, Bytes: b} }

// NewVarBinary returns a VARBINARY value. The slice is not copied.
func NewVarBinary(b []byte) Value { return Value{Type: TypeVarBinary, Bytes: b} }

// NewDateTime returns a DATETIME value. Sub-nanosecond precision is lost;
// the value is normalized to UTC.
func NewDateTime(t time.Time) Value {
	return Value{Type: TypeDateTime, I64: t.UTC().UnixNano()}
}

// NewUniqueID returns a UNIQUEIDENTIFIER value from a 16-byte id.
func NewUniqueID(id [16]byte) Value {
	b := make([]byte, 16)
	copy(b, id[:])
	return Value{Type: TypeUniqueID, Bytes: b}
}

// Bool returns the BIT value as a bool.
func (v Value) Bool() bool { return v.I64 != 0 }

// Int returns the integer value (valid for integer and decimal types).
func (v Value) Int() int64 { return v.I64 }

// Float returns the FLOAT value.
func (v Value) Float() float64 { return v.F64 }

// String returns a human-readable rendering of the value.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Type {
	case TypeBit:
		if v.I64 != 0 {
			return "1"
		}
		return "0"
	case TypeTinyInt, TypeSmallInt, TypeInt, TypeBigInt, TypeDecimal:
		return strconv.FormatInt(v.I64, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F64, 'g', -1, 64)
	case TypeChar, TypeVarChar, TypeNVarChar:
		return v.Str
	case TypeBinary, TypeVarBinary, TypeUniqueID:
		return fmt.Sprintf("0x%x", v.Bytes)
	case TypeDateTime:
		return time.Unix(0, v.I64).UTC().Format(time.RFC3339Nano)
	}
	return "<invalid>"
}

// Time returns the DATETIME value.
func (v Value) Time() time.Time { return time.Unix(0, v.I64).UTC() }

// Clone returns a deep copy of the value (its byte slice, if any, is copied).
func (v Value) Clone() Value {
	if v.Bytes != nil {
		b := make([]byte, len(v.Bytes))
		copy(b, v.Bytes)
		v.Bytes = b
	}
	return v
}

// Equal reports deep equality between two values, including type identity.
// Two NULLs of the same type compare equal here (this is storage equality,
// not SQL ternary logic).
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type || v.Null != o.Null {
		return false
	}
	if v.Null {
		return true
	}
	switch {
	case v.Type == TypeFloat:
		return v.F64 == o.F64 || (math.IsNaN(v.F64) && math.IsNaN(o.F64))
	case v.Type.IsString():
		return v.Str == o.Str
	case v.Type.IsBytes():
		return string(v.Bytes) == string(o.Bytes)
	default:
		return v.I64 == o.I64
	}
}

// Compare orders two values of the same type. NULL sorts before any
// non-NULL value. Panics if the types differ.
func (v Value) Compare(o Value) int {
	if v.Type != o.Type {
		panic(fmt.Sprintf("sqltypes: comparing %s with %s", v.Type, o.Type))
	}
	switch {
	case v.Null && o.Null:
		return 0
	case v.Null:
		return -1
	case o.Null:
		return 1
	}
	switch {
	case v.Type == TypeFloat:
		switch {
		case v.F64 < o.F64:
			return -1
		case v.F64 > o.F64:
			return 1
		}
		return 0
	case v.Type.IsString():
		return strings.Compare(v.Str, o.Str)
	case v.Type.IsBytes():
		return strings.Compare(string(v.Bytes), string(o.Bytes))
	default:
		switch {
		case v.I64 < o.I64:
			return -1
		case v.I64 > o.I64:
			return 1
		}
		return 0
	}
}

// Row is an ordered tuple of values, positionally matching a Schema.
type Row []Value

// Clone deep-copies a row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		out[i] = v.Clone()
	}
	return out
}

// Equal reports whether two rows are deeply equal.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// String renders the row for diagnostics.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
