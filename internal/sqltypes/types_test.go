package sqltypes

import (
	"math"
	"testing"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v   Value
		typ TypeID
		str string
	}{
		{NewBit(true), TypeBit, "1"},
		{NewBit(false), TypeBit, "0"},
		{NewTinyInt(255), TypeTinyInt, "255"},
		{NewSmallInt(-5), TypeSmallInt, "-5"},
		{NewInt(42), TypeInt, "42"},
		{NewBigInt(-1 << 40), TypeBigInt, "-1099511627776"},
		{NewFloat(1.5), TypeFloat, "1.5"},
		{NewDecimal(12345), TypeDecimal, "12345"},
		{NewChar("ab"), TypeChar, "ab"},
		{NewVarChar("x"), TypeVarChar, "x"},
		{NewNVarChar("Ω"), TypeNVarChar, "Ω"},
		{NewBinary([]byte{0xde, 0xad}), TypeBinary, "0xdead"},
		{NewVarBinary([]byte{1}), TypeVarBinary, "0x01"},
	}
	for _, c := range cases {
		if c.v.Type != c.typ {
			t.Errorf("type = %v, want %v", c.v.Type, c.typ)
		}
		if c.v.Null {
			t.Errorf("%v unexpectedly NULL", c.v)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
	if got := NewNull(TypeInt).String(); got != "NULL" {
		t.Errorf("NULL renders as %q", got)
	}
}

func TestDateTimeRoundtrip(t *testing.T) {
	now := time.Date(2026, 7, 5, 12, 30, 0, 123456789, time.UTC)
	v := NewDateTime(now)
	if !v.Time().Equal(now) {
		t.Fatalf("DateTime roundtrip: got %v want %v", v.Time(), now)
	}
}

func TestValueEqual(t *testing.T) {
	if !NewInt(5).Equal(NewInt(5)) {
		t.Error("equal ints not equal")
	}
	if NewInt(5).Equal(NewBigInt(5)) {
		t.Error("different types must not be equal")
	}
	if NewInt(5).Equal(NewNull(TypeInt)) {
		t.Error("value equal to NULL")
	}
	if !NewNull(TypeInt).Equal(NewNull(TypeInt)) {
		t.Error("storage NULLs of same type should be equal")
	}
	if !NewFloat(math.NaN()).Equal(NewFloat(math.NaN())) {
		t.Error("NaN storage equality should hold")
	}
	if !NewVarBinary([]byte{1, 2}).Equal(NewVarBinary([]byte{1, 2})) {
		t.Error("equal bytes not equal")
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{
		NewNull(TypeBigInt), NewBigInt(-10), NewBigInt(0), NewBigInt(7),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
	if NewVarChar("a").Compare(NewVarChar("b")) != -1 {
		t.Error("string compare broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("comparing different types should panic")
		}
	}()
	NewInt(1).Compare(NewBigInt(1))
}

func TestValueClone(t *testing.T) {
	b := []byte{1, 2, 3}
	v := NewVarBinary(b)
	c := v.Clone()
	b[0] = 9
	if c.Bytes[0] != 1 {
		t.Fatal("clone shares backing array")
	}
}

func TestRowCloneAndEqual(t *testing.T) {
	r := Row{NewInt(1), NewVarChar("x"), NewVarBinary([]byte{7})}
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[2].Bytes[0] = 8
	if r.Equal(c) {
		t.Fatal("deep copy failed")
	}
	if r.Equal(r[:2]) {
		t.Fatal("different arity rows equal")
	}
	if got := r.String(); got != "(1, x, 0x07)" {
		t.Fatalf("Row.String() = %q", got)
	}
}

func TestTypePredicates(t *testing.T) {
	if !TypeInt.IsInteger() || TypeFloat.IsInteger() {
		t.Error("IsInteger wrong")
	}
	if !TypeNVarChar.IsString() || TypeBinary.IsString() {
		t.Error("IsString wrong")
	}
	if !TypeVarBinary.IsBytes() || !TypeUniqueID.IsBytes() || TypeChar.IsBytes() {
		t.Error("IsBytes wrong")
	}
	if TypeInt.FixedWidth() != 4 || TypeSmallInt.FixedWidth() != 2 || TypeVarChar.FixedWidth() != 0 {
		t.Error("FixedWidth wrong")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := MustSchema([]Column{
		Col("id", TypeBigInt),
		VarCol("name", TypeVarChar, 5),
		NullableCol("note", TypeNVarChar),
		Col("small", TypeSmallInt),
		Col("tiny", TypeTinyInt),
		Col("i", TypeInt),
	}, "id")

	good := Row{NewBigInt(1), NewVarChar("abc"), NewNull(TypeNVarChar), NewSmallInt(5), NewTinyInt(1), NewInt(1)}
	if err := s.Validate(good); err != nil {
		t.Fatalf("valid row rejected: %v", err)
	}
	bad := []Row{
		{NewBigInt(1), NewVarChar("abc"), NewNull(TypeNVarChar), NewSmallInt(5), NewTinyInt(1)},                                // arity
		{NewBigInt(1), NewVarChar("toolong"), NewNull(TypeNVarChar), NewSmallInt(5), NewTinyInt(1), NewInt(1)},                 // length
		{NewBigInt(1), NewNull(TypeVarChar), NewNull(TypeNVarChar), NewSmallInt(5), NewTinyInt(1), NewInt(1)},                  // null in non-nullable
		{NewInt(1), NewVarChar("abc"), NewNull(TypeNVarChar), NewSmallInt(5), NewTinyInt(1), NewInt(1)},                        // wrong type
		{NewBigInt(1), NewVarChar("abc"), NewNull(TypeNVarChar), {Type: TypeSmallInt, I64: 40000}, NewTinyInt(1), NewInt(1)},   // smallint range
		{NewBigInt(1), NewVarChar("abc"), NewNull(TypeNVarChar), NewSmallInt(5), {Type: TypeTinyInt, I64: 300}, NewInt(1)},     // tinyint range
		{NewBigInt(1), NewVarChar("abc"), NewNull(TypeNVarChar), NewSmallInt(5), NewTinyInt(1), {Type: TypeInt, I64: 1 << 40}}, // int range
	}
	for i, r := range bad {
		if err := s.Validate(r); err == nil {
			t.Errorf("bad row %d accepted", i)
		}
	}
}

func TestSchemaConstruction(t *testing.T) {
	if _, err := NewSchema([]Column{Col("a", TypeInt), Col("A", TypeInt)}); err == nil {
		t.Error("duplicate (case-insensitive) columns accepted")
	}
	if _, err := NewSchema([]Column{Col("", TypeInt)}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema([]Column{Col("a", TypeInt)}, "b"); err == nil {
		t.Error("unknown key column accepted")
	}
	if _, err := NewSchema([]Column{NullableCol("a", TypeInt)}, "a"); err == nil {
		t.Error("nullable key column accepted")
	}
	if _, err := NewSchema([]Column{{Name: "a"}}); err == nil {
		t.Error("invalid type accepted")
	}
	s := MustSchema([]Column{Col("a", TypeInt), Col("b", TypeInt)}, "b", "a")
	if len(s.Key) != 2 || s.Key[0] != 1 || s.Key[1] != 0 {
		t.Errorf("key ordinals = %v", s.Key)
	}
	if s.OrdinalOf("B") != 1 || s.OrdinalOf("nope") != -1 {
		t.Error("OrdinalOf wrong")
	}
}

func TestSchemaVisibleColumnsAndKeyOf(t *testing.T) {
	s := MustSchema([]Column{
		Col("a", TypeInt),
		{Name: "h", Type: TypeBigInt, Hidden: true},
		{Name: "d", Type: TypeInt, Dropped: true, Nullable: true},
		Col("b", TypeInt),
	}, "a")
	vis := s.VisibleColumns()
	if len(vis) != 2 || vis[0].Name != "a" || vis[1].Name != "b" {
		t.Fatalf("visible = %+v", vis)
	}
	r := Row{NewInt(7), NewBigInt(1), NewNull(TypeInt), NewInt(8)}
	k := s.KeyOf(r)
	if len(k) != 1 || k[0].Int() != 7 {
		t.Fatalf("KeyOf = %v", k)
	}
	clone := s.Clone()
	clone.Columns[0].Name = "zzz"
	if s.Columns[0].Name != "a" {
		t.Fatal("Clone shares columns")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema([]Column{
		VarCol("v", TypeVarChar, 10),
		DecimalCol("d", 10, 2),
		NullableCol("n", TypeInt),
	})
	got := s.String()
	want := "v VARCHAR(10), d DECIMAL(10,2), n INT NULL"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
