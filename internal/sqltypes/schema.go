package sqltypes

import (
	"fmt"
	"strings"
)

// Column describes one column of a table schema.
type Column struct {
	Name     string
	Type     TypeID
	Len      int // declared length for (var)char/(var)binary; 0 = unbounded
	Prec     int // precision for DECIMAL
	Scale    int // scale for DECIMAL
	Nullable bool
	// Hidden marks system columns (the four ledger columns) that are not
	// visible to applications but are exposed through ledger views.
	Hidden bool
	// Dropped marks columns that were logically dropped but physically
	// retained for ledger verification (§3.5.2 of the paper).
	Dropped bool
	// Ordinal is the immutable, catalog-assigned position of the column.
	// It is included in the row serialization format so that an attacker
	// cannot re-map values to different columns (§3.2, §3.5.1).
	Ordinal int
}

// Col is a convenience constructor for a non-nullable column.
func Col(name string, t TypeID) Column { return Column{Name: name, Type: t} }

// NullableCol is a convenience constructor for a nullable column.
func NullableCol(name string, t TypeID) Column {
	return Column{Name: name, Type: t, Nullable: true}
}

// VarCol constructs a variable-length column with a declared length.
func VarCol(name string, t TypeID, length int) Column {
	return Column{Name: name, Type: t, Len: length}
}

// DecimalCol constructs a DECIMAL column.
func DecimalCol(name string, prec, scale int) Column {
	return Column{Name: name, Type: TypeDecimal, Prec: prec, Scale: scale}
}

// Schema is an ordered set of columns.
type Schema struct {
	Columns []Column
	// Key holds the ordinals of the primary-key columns, in key order.
	// Empty means the table is a heap (rows addressed by RID).
	Key []int
}

// NewSchema builds a schema from columns and primary-key column names,
// assigning ordinals positionally.
func NewSchema(cols []Column, keyNames ...string) (*Schema, error) {
	s := &Schema{Columns: make([]Column, len(cols))}
	seen := make(map[string]bool, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("sqltypes: column %d has empty name", i)
		}
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return nil, fmt.Errorf("sqltypes: duplicate column %q", c.Name)
		}
		seen[lower] = true
		if c.Type == TypeInvalid {
			return nil, fmt.Errorf("sqltypes: column %q has invalid type", c.Name)
		}
		c.Ordinal = i
		s.Columns[i] = c
	}
	for _, kn := range keyNames {
		ord := s.OrdinalOf(kn)
		if ord < 0 {
			return nil, fmt.Errorf("sqltypes: key column %q not found", kn)
		}
		if s.Columns[ord].Nullable {
			return nil, fmt.Errorf("sqltypes: key column %q must not be nullable", kn)
		}
		s.Key = append(s.Key, ord)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically-known schemas.
func MustSchema(cols []Column, keyNames ...string) *Schema {
	s, err := NewSchema(cols, keyNames...)
	if err != nil {
		panic(err)
	}
	return s
}

// OrdinalOf returns the ordinal of the named column (case-insensitive),
// or -1 if not present or dropped.
func (s *Schema) OrdinalOf(name string) int {
	for i, c := range s.Columns {
		if !c.Dropped && strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// VisibleColumns returns the application-visible columns (neither hidden
// nor dropped), in ordinal order.
func (s *Schema) VisibleColumns() []Column {
	out := make([]Column, 0, len(s.Columns))
	for _, c := range s.Columns {
		if !c.Hidden && !c.Dropped {
			out = append(out, c)
		}
	}
	return out
}

// Clone deep-copies the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{
		Columns: append([]Column(nil), s.Columns...),
		Key:     append([]int(nil), s.Key...),
	}
	return out
}

// Validate checks a row against the schema: arity, type identity per
// column, NULL constraints and declared lengths.
func (s *Schema) Validate(r Row) error {
	if len(r) != len(s.Columns) {
		return fmt.Errorf("sqltypes: row has %d values, schema has %d columns", len(r), len(s.Columns))
	}
	for i, v := range r {
		c := s.Columns[i]
		if v.Null {
			if !c.Nullable && !c.Dropped {
				return fmt.Errorf("sqltypes: column %q does not allow NULL", c.Name)
			}
			continue
		}
		if v.Type != c.Type {
			return fmt.Errorf("sqltypes: column %q expects %s, got %s", c.Name, c.Type, v.Type)
		}
		if c.Len > 0 {
			switch {
			case c.Type.IsString() && len(v.Str) > c.Len:
				return fmt.Errorf("sqltypes: column %q value length %d exceeds declared %d", c.Name, len(v.Str), c.Len)
			case c.Type.IsBytes() && len(v.Bytes) > c.Len:
				return fmt.Errorf("sqltypes: column %q value length %d exceeds declared %d", c.Name, len(v.Bytes), c.Len)
			}
		}
		switch c.Type {
		case TypeTinyInt:
			if v.I64 < 0 || v.I64 > 255 {
				return fmt.Errorf("sqltypes: column %q TINYINT out of range: %d", c.Name, v.I64)
			}
		case TypeSmallInt:
			if v.I64 < -32768 || v.I64 > 32767 {
				return fmt.Errorf("sqltypes: column %q SMALLINT out of range: %d", c.Name, v.I64)
			}
		case TypeInt:
			if v.I64 < -2147483648 || v.I64 > 2147483647 {
				return fmt.Errorf("sqltypes: column %q INT out of range: %d", c.Name, v.I64)
			}
		}
	}
	return nil
}

// KeyOf extracts the primary-key values of a row, in key order.
func (s *Schema) KeyOf(r Row) Row {
	k := make(Row, len(s.Key))
	for i, ord := range s.Key {
		k[i] = r[ord]
	}
	return k
}

// String renders the schema as a CREATE TABLE-ish description.
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
		if c.Len > 0 {
			fmt.Fprintf(&b, "(%d)", c.Len)
		}
		if c.Type == TypeDecimal {
			fmt.Fprintf(&b, "(%d,%d)", c.Prec, c.Scale)
		}
		if c.Nullable {
			b.WriteString(" NULL")
		}
		if c.Hidden {
			b.WriteString(" HIDDEN")
		}
		if c.Dropped {
			b.WriteString(" DROPPED")
		}
	}
	return b.String()
}
