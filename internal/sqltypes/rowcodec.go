package sqltypes

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Self-describing binary row codec used by the WAL and snapshot files.
// Unlike the ledger serialization format in internal/serial (which is
// canonical and feeds SHA-256), this codec just needs to round-trip rows
// compactly; it carries the type of every value so that log replay does
// not depend on the catalog state at replay time.

// EncodeRow appends the binary encoding of r to dst.
func EncodeRow(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = append(dst, byte(v.Type))
		if v.Null {
			dst = append(dst, 1)
			continue
		}
		dst = append(dst, 0)
		switch {
		case v.Type == TypeFloat:
			dst = binary.AppendUvarint(dst, math.Float64bits(v.F64))
		case v.Type.IsString():
			dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
			dst = append(dst, v.Str...)
		case v.Type.IsBytes():
			dst = binary.AppendUvarint(dst, uint64(len(v.Bytes)))
			dst = append(dst, v.Bytes...)
		default:
			dst = binary.AppendVarint(dst, v.I64)
		}
	}
	return dst
}

// DecodeRow decodes a row encoded by EncodeRow from b, returning the row
// and the number of bytes consumed.
func DecodeRow(b []byte) (Row, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("sqltypes: bad row header")
	}
	pos := sz
	if n > uint64(len(b)) { // cheap sanity bound: a value takes >= 2 bytes
		return nil, 0, fmt.Errorf("sqltypes: row claims %d values in %d bytes", n, len(b))
	}
	r := make(Row, 0, n)
	for i := uint64(0); i < n; i++ {
		if pos+2 > len(b) {
			return nil, 0, fmt.Errorf("sqltypes: row truncated at value %d", i)
		}
		t := TypeID(b[pos])
		null := b[pos+1] == 1
		pos += 2
		if null {
			r = append(r, NewNull(t))
			continue
		}
		v := Value{Type: t}
		switch {
		case t == TypeFloat:
			u, sz := binary.Uvarint(b[pos:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("sqltypes: bad float at value %d", i)
			}
			pos += sz
			v.F64 = math.Float64frombits(u)
		case t.IsString(), t.IsBytes():
			l, sz := binary.Uvarint(b[pos:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("sqltypes: bad length at value %d", i)
			}
			pos += sz
			if pos+int(l) > len(b) {
				return nil, 0, fmt.Errorf("sqltypes: value %d truncated", i)
			}
			if t.IsString() {
				v.Str = string(b[pos : pos+int(l)])
			} else {
				v.Bytes = append([]byte(nil), b[pos:pos+int(l)]...)
			}
			pos += int(l)
		default:
			x, sz := binary.Varint(b[pos:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("sqltypes: bad integer at value %d", i)
			}
			pos += sz
			v.I64 = x
		}
		r = append(r, v)
	}
	return r, pos, nil
}
