package sqltypes

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randValue produces a random value of a random key-compatible type.
func randValue(rng *rand.Rand) Value {
	switch rng.Intn(7) {
	case 0:
		return NewBigInt(rng.Int63() - rng.Int63())
	case 1:
		return NewInt(int32(rng.Int31() - rng.Int31()))
	case 2:
		return NewFloat(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10)))
	case 3:
		b := make([]byte, rng.Intn(12))
		rng.Read(b)
		return NewVarBinary(b)
	case 4:
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte(rng.Intn(128))
		}
		return NewVarChar(string(b))
	case 5:
		return NewSmallInt(int16(rng.Int31()))
	default:
		return NewNull(TypeBigInt)
	}
}

// sameKind returns a pair of random values of the same type for ordering
// checks.
func sameKindPair(rng *rand.Rand) (Value, Value) {
	for {
		a, b := randValue(rng), randValue(rng)
		if a.Type == b.Type {
			return a, b
		}
	}
}

func TestKeyEncodingPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		a, b := sameKindPair(rng)
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		cmpVals := a.Compare(b)
		cmpKeys := bytes.Compare(ka, kb)
		if sign(cmpVals) != sign(cmpKeys) {
			t.Fatalf("order broken: %v vs %v -> vals %d keys %d (%x vs %x)", a, b, cmpVals, cmpKeys, ka, kb)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompositeKeyOrder(t *testing.T) {
	// (1, "b") < (2, "a") and (1, "a") < (1, "b").
	k1 := EncodeKey(nil, NewBigInt(1), NewVarChar("b"))
	k2 := EncodeKey(nil, NewBigInt(2), NewVarChar("a"))
	k3 := EncodeKey(nil, NewBigInt(1), NewVarChar("a"))
	if bytes.Compare(k1, k2) >= 0 || bytes.Compare(k3, k1) >= 0 {
		t.Fatal("composite ordering broken")
	}
}

func TestStringPrefixOrdering(t *testing.T) {
	// "ab" < "ab\x00" < "abc": terminator escaping must keep prefix order.
	ks := [][]byte{
		EncodeKey(nil, NewVarChar("ab")),
		EncodeKey(nil, NewVarChar("ab\x00")),
		EncodeKey(nil, NewVarChar("abc")),
	}
	for i := 0; i < len(ks)-1; i++ {
		if bytes.Compare(ks[i], ks[i+1]) >= 0 {
			t.Fatalf("prefix ordering broken at %d", i)
		}
	}
}

func TestKeyRoundtripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		n := rng.Intn(4) + 1
		vals := make([]Value, n)
		types := make([]TypeID, n)
		for i := range vals {
			vals[i] = randValue(rng)
			types[i] = vals[i].Type
		}
		key := EncodeKey(nil, vals...)
		back, err := DecodeKey(key, types)
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		for i := range vals {
			if !vals[i].Equal(back[i]) {
				t.Logf("value %d: %v != %v", i, vals[i], back[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatKeyOrderSpecials(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -math.SmallestNonzeroFloat64, 0, math.SmallestNonzeroFloat64, 1, 1e300, math.Inf(1)}
	var prev []byte
	for i, f := range vals {
		k := EncodeKey(nil, NewFloat(f))
		if i > 0 && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("float ordering broken at %v", f)
		}
		prev = k
	}
}

func TestNullSortsFirst(t *testing.T) {
	kn := EncodeKey(nil, NewNull(TypeBigInt))
	kv := EncodeKey(nil, NewBigInt(math.MinInt64))
	if bytes.Compare(kn, kv) >= 0 {
		t.Fatal("NULL must sort before the smallest value")
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	if _, err := DecodeKey([]byte{0x01}, []TypeID{TypeBigInt}); err == nil {
		t.Error("truncated integer accepted")
	}
	if _, err := DecodeKey([]byte{0x07, 0, 0, 0, 0, 0, 0, 0, 0}, []TypeID{TypeBigInt}); err == nil {
		t.Error("bad tag accepted")
	}
	if _, err := DecodeKey([]byte{0x01, 'a'}, []TypeID{TypeVarChar}); err == nil {
		t.Error("unterminated string accepted")
	}
	good := EncodeKey(nil, NewBigInt(1))
	if _, err := DecodeKey(append(good, 0x00), []TypeID{TypeBigInt}); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeKey(good[:4], []TypeID{TypeBigInt, TypeBigInt}); err == nil {
		t.Error("missing component accepted")
	}
}

func TestRowCodecRoundtripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func() bool {
		n := rng.Intn(8)
		row := make(Row, n)
		for i := range row {
			row[i] = randValue(rng)
		}
		enc := EncodeRow(nil, row)
		back, used, err := DecodeRow(enc)
		if err != nil || used != len(enc) {
			return false
		}
		return row.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRowCodecAppendsAfterPrefix(t *testing.T) {
	row := Row{NewInt(1), NewVarChar("x")}
	buf := EncodeRow([]byte{0xAA}, row)
	back, used, err := DecodeRow(buf[1:])
	if err != nil || used != len(buf)-1 || !row.Equal(back) {
		t.Fatalf("decode after prefix failed: %v", err)
	}
}

func TestRowCodecErrors(t *testing.T) {
	if _, _, err := DecodeRow(nil); err == nil {
		t.Error("empty input accepted")
	}
	enc := EncodeRow(nil, Row{NewVarChar("hello")})
	if _, _, err := DecodeRow(enc[:len(enc)-2]); err == nil {
		t.Error("truncated string accepted")
	}
	if _, _, err := DecodeRow([]byte{200}); err == nil {
		t.Error("absurd column count accepted")
	}
}
