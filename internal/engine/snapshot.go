package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Snapshot file layout (all integers little-endian):
//
//	magic "SQLLSNP1"
//	u64 lastCommitTS
//	section catalog-JSON
//	section ledger-state-blob
//	u32 tableCount, then per table:
//	    u32 tableID, u64 rowCount, then per row: section key, section row
//	u32 CRC32C of everything before it
//
// where section = u32 length + bytes. Snapshots are written to a temp file
// and renamed into place, so a crash mid-checkpoint leaves the previous
// snapshot intact.

const snapMagic = "SQLLSNP1"

// Checkpoint quiesces the database, lets the ledger hook drain its queue
// into the system tables, writes a transaction-consistent snapshot, and
// appends a CHECKPOINT record (§3.3.2). It returns the LSN the snapshot
// covers. Old snapshots and the WAL are retained to support point-in-time
// restore.
func (db *DB) Checkpoint() (int64, error) {
	db.quiesce.Lock()
	defer db.quiesce.Unlock()
	if db.closed {
		return 0, fmt.Errorf("engine: database closed")
	}
	// A prepared-but-undecided transaction lives only in the WAL: a
	// snapshot taken now would move the redo start past its PREPARE and
	// DML records and lose it. The window is the few microseconds between
	// the 2PC phases, so refusing (rather than waiting) keeps this simple.
	if n := db.preparedCount.Load(); n > 0 {
		return 0, fmt.Errorf("engine: checkpoint refused: %d prepared transaction(s) outstanding", n)
	}
	if db.opts.Hook != nil {
		db.opts.Hook.BeforeSnapshot()
	}
	if err := db.log.Flush(); err != nil {
		return 0, err
	}
	snapLSN := db.log.Size()

	var blob []byte
	if db.opts.Hook != nil {
		blob = db.opts.Hook.StateBlob()
	}
	if err := db.writeSnapshot(snapLSN, blob); err != nil {
		return 0, err
	}
	_, err := db.log.Append(wal.RecCheckpoint, 0, wal.EncodeCheckpoint(wal.CheckpointPayload{
		SnapshotLSN: snapLSN,
		WallTS:      time.Now().UnixNano(),
	}))
	if err != nil {
		return 0, err
	}
	if err := db.log.Flush(); err != nil {
		return 0, err
	}
	db.checkpointLSN = snapLSN
	db.obs.Events().Info(obs.EventWALCheckpoint, "snapshot_lsn", snapLSN)
	return snapLSN, nil
}

func snapPath(dir string, lsn int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", lsn))
}

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoliSnap, p)
	return cw.w.Write(p)
}

var castagnoliSnap = crc32.MakeTable(crc32.Castagnoli)

func writeSection(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func (db *DB) writeSnapshot(lsn int64, ledgerBlob []byte) error {
	tmp := snapPath(db.opts.Dir, lsn) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: snapshot create: %w", err)
	}
	defer func() {
		f.Close()
		os.Remove(tmp)
	}()
	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<20)}
	if _, err := cw.Write([]byte(snapMagic)); err != nil {
		return err
	}
	var tsBuf [8]byte
	binary.LittleEndian.PutUint64(tsBuf[:], uint64(db.lastCommitTS.Load()))
	if _, err := cw.Write(tsBuf[:]); err != nil {
		return err
	}
	db.mu.RLock()
	catJSON, err := db.cat.marshal()
	ids := make([]uint32, 0, len(db.tables))
	for id := range db.tables {
		ids = append(ids, id)
	}
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	if err := writeSection(cw, catJSON); err != nil {
		return err
	}
	if err := writeSection(cw, ledgerBlob); err != nil {
		return err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(ids)))
	if _, err := cw.Write(cnt[:]); err != nil {
		return err
	}
	rowBuf := make([]byte, 0, 1024)
	for _, id := range ids {
		db.mu.RLock()
		t := db.tables[id]
		db.mu.RUnlock()
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:4], id)
		binary.LittleEndian.PutUint64(hdr[4:12], uint64(t.RowCount()))
		if _, err := cw.Write(hdr[:]); err != nil {
			return err
		}
		var scanErr error
		t.Scan(func(k []byte, r sqltypes.Row) bool {
			if scanErr = writeSection(cw, k); scanErr != nil {
				return false
			}
			rowBuf = sqltypes.EncodeRow(rowBuf[:0], r)
			if scanErr = writeSection(cw, rowBuf); scanErr != nil {
				return false
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := cw.w.Write(crcBuf[:]); err != nil {
		return err
	}
	if err := cw.w.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, snapPath(db.opts.Dir, lsn))
}

// loadLatestSnapshot finds and loads the newest valid snapshot, returning
// the LSN recovery should replay from (0 when starting empty). A corrupt
// newest snapshot falls back to the next older one.
func (db *DB) loadLatestSnapshot() (int64, error) {
	matches, err := filepath.Glob(filepath.Join(db.opts.Dir, "snap-*.snap"))
	if err != nil {
		return 0, err
	}
	type cand struct {
		path string
		lsn  int64
	}
	var cands []cand
	for _, m := range matches {
		var lsn int64
		if _, err := fmt.Sscanf(filepath.Base(m), "snap-%016x.snap", &lsn); err == nil {
			cands = append(cands, cand{m, lsn})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lsn > cands[j].lsn })
	for _, c := range cands {
		if err := db.loadSnapshot(c.path); err != nil {
			// Fall back to an older snapshot; replay covers the gap.
			continue
		}
		return c.lsn, nil
	}
	// No usable snapshot: start from an empty catalog.
	db.cat = newCatalog()
	db.tables = make(map[uint32]*Table)
	if db.opts.Hook != nil {
		if err := db.opts.Hook.LoadState(nil); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

func readSection(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func (db *DB) loadSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < len(snapMagic)+12 || string(raw[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("engine: bad snapshot header in %s", path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoliSnap) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("engine: snapshot CRC mismatch in %s", path)
	}
	r := bufio.NewReader(bytes.NewReader(body[len(snapMagic):]))
	var tsBuf [8]byte
	if _, err := io.ReadFull(r, tsBuf[:]); err != nil {
		return err
	}
	lastTS := int64(binary.LittleEndian.Uint64(tsBuf[:]))
	catJSON, err := readSection(r)
	if err != nil {
		return err
	}
	blob, err := readSection(r)
	if err != nil {
		return err
	}
	cat, err := unmarshalCatalog(catJSON)
	if err != nil {
		return err
	}
	tables := make(map[uint32]*Table, len(cat.Tables))
	for id, meta := range cat.Tables {
		tables[id] = newTable(meta)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return err
	}
	nTables := binary.LittleEndian.Uint32(cnt[:])
	loaded := 0
	for i := uint32(0); i < nTables; i++ {
		var hdr [12]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return err
		}
		id := binary.LittleEndian.Uint32(hdr[0:4])
		rows := binary.LittleEndian.Uint64(hdr[4:12])
		t, ok := tables[id]
		if !ok {
			return fmt.Errorf("engine: snapshot has rows for unknown table %d", id)
		}
		for j := uint64(0); j < rows; j++ {
			key, err := readSection(r)
			if err != nil {
				return err
			}
			rowb, err := readSection(r)
			if err != nil {
				return err
			}
			row, _, err := sqltypes.DecodeRow(rowb)
			if err != nil {
				return err
			}
			// Snapshot rows load as a single version at timestamp 0,
			// visible to every snapshot read.
			t.loadRowLocked(key, row)
			loaded++
		}
	}
	// Rebuild nonclustered indexes from base data.
	for _, im := range cat.Indexes {
		t, ok := tables[im.TableID]
		if !ok {
			return fmt.Errorf("engine: index %d references unknown table %d", im.ID, im.TableID)
		}
		ix := &Index{meta: im}
		t.buildIndexLocked(ix)
		t.indexes = append(t.indexes, ix)
	}
	if db.opts.Hook != nil {
		if err := db.opts.Hook.LoadState(blob); err != nil {
			return err
		}
	}
	db.cat = cat
	db.tables = tables
	db.lastCommitTS.Store(lastTS)
	db.m.versionsLive.Set(float64(loaded))
	return nil
}
