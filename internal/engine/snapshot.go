package engine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sqlledger/internal/btree"
	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Snapshot file layouts (all integers little-endian).
//
// v1 ("SQLLSNP1") — serial, whole-file checksum:
//
//	magic "SQLLSNP1"
//	u64 lastCommitTS
//	section catalog-JSON
//	section ledger-state-blob
//	u32 tableCount, then per table:
//	    u32 tableID, u64 rowCount, then per row: section key, section row
//	u32 CRC32C of everything before it
//
// v2 ("SQLLSNP2") — per-table sections with an offset index, written and
// loaded by per-table workers:
//
//	magic "SQLLSNP2"
//	u64 cutTS
//	section catalog-JSON
//	section ledger-state-blob
//	u32 tableCount, then per table:
//	    u32 tableID, u64 rowCount, u64 offset, u64 length, u32 sectionCRC32C
//	u32 CRC32C of the header (everything before it)
//	table sections at the recorded absolute offsets, each a row stream:
//	    per row: section key, section row
//
// where section = u32 length + bytes. The per-section CRCs let the loader
// verify tables in parallel and localize corruption; a snapshot that
// fails any check is skipped and recovery falls back to the next older
// one. Snapshots are written to a temp file and renamed into place, so a
// crash mid-checkpoint leaves the previous snapshot intact.

const (
	snapMagicV1 = "SQLLSNP1"
	snapMagicV2 = "SQLLSNP2"

	// checkpointPreparedWait bounds how long Checkpoint waits for
	// outstanding prepared 2PC transactions to resolve before refusing.
	// The prepare→decide window is normally microseconds, so a short wait
	// turns most would-be refusals into successes without stalling the
	// caller behind a crashed coordinator.
	checkpointPreparedWait = 250 * time.Millisecond

	// snapshotScanChunk is how many version chains a checkpoint scan
	// visits per table-lock acquisition; between chunks the lock is
	// released so committers on the same table make progress while the
	// snapshot streams.
	snapshotScanChunk = 1024
)

// Checkpoint writes a transaction-consistent snapshot and appends a
// CHECKPOINT record (§3.3.2), returning the LSN the snapshot covers. Old
// snapshots and the WAL are retained to support point-in-time restore.
//
// The checkpoint is non-quiescing: the global quiesce lock is held only
// long enough to drain the ledger queue and pin a consistent cut — the
// (flushed) WAL position and the matching commit timestamp. The snapshot
// itself then streams from the MVCC version chains at the cut timestamp
// while writers keep committing; transactions that commit during the
// write get timestamps above the cut and WAL positions after snapLSN, so
// replay re-applies exactly them.
func (db *DB) Checkpoint() (int64, error) {
	db.checkpointMu.Lock()
	defer db.checkpointMu.Unlock()
	start := time.Now()

	// A prepared-but-undecided transaction lives only in the WAL: a
	// snapshot taken now would move the redo start past its PREPARE and
	// DML records and lose it. Give the coordinator a bounded window to
	// decide, then refuse rather than wait forever.
	if db.preparedCount.Load() > 0 {
		deadline := time.Now().Add(checkpointPreparedWait)
		for db.preparedCount.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	quiesceStart := time.Now()
	db.quiesce.Lock()
	if db.closed {
		db.quiesce.Unlock()
		return 0, fmt.Errorf("engine: database closed")
	}
	if n := db.preparedCount.Load(); n > 0 {
		db.quiesce.Unlock()
		return 0, fmt.Errorf("engine: checkpoint refused: %d prepared transaction(s) outstanding", n)
	}
	if db.opts.Hook != nil {
		// Drained queue rows are applied at LastCommitTS, i.e. exactly at
		// the cut, so the snapshot captures them.
		db.opts.Hook.BeforeSnapshot()
	}
	if err := db.log.Flush(); err != nil {
		db.quiesce.Unlock()
		return 0, err
	}
	snapLSN := db.log.Size()
	// Under full quiescence nothing is in flight: every commit at or
	// below cutTS is applied, and everything after will log past snapLSN.
	cutTS := db.lastCommitTS.Load()
	var blob []byte
	if db.opts.Hook != nil {
		blob = db.opts.Hook.StateBlob()
	}
	db.mu.RLock()
	catJSON, catErr := db.cat.marshal()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	if catErr != nil {
		db.quiesce.Unlock()
		return 0, catErr
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].meta.ID < tables[j].meta.ID })
	// Pin the cut in the snapshot registry so version GC cannot reclaim
	// the versions the stream is about to read.
	db.snapMu.Lock()
	pinID := db.nextSnapID
	db.nextSnapID++
	db.snaps[pinID] = cutTS
	db.snapMu.Unlock()
	db.quiesce.Unlock()
	quiesced := time.Since(quiesceStart)
	db.obs.Histogram(obs.CheckpointQuiesceSeconds, nil).Observe(quiesced.Seconds())

	defer func() {
		db.snapMu.Lock()
		delete(db.snaps, pinID)
		db.snapMu.Unlock()
	}()
	if db.snapshotWriteHook != nil {
		db.snapshotWriteHook()
	}
	if err := db.writeSnapshotV2(snapLSN, cutTS, blob, catJSON, tables); err != nil {
		return 0, err
	}

	// The checkpoint record itself is appended like any other writer:
	// under the read side of quiesce, after re-checking for close.
	db.quiesce.RLock()
	if db.closed {
		db.quiesce.RUnlock()
		return 0, fmt.Errorf("engine: database closed")
	}
	_, err := db.log.Append(wal.RecCheckpoint, 0, wal.EncodeCheckpoint(wal.CheckpointPayload{
		SnapshotLSN: snapLSN,
		WallTS:      time.Now().UnixNano(),
	}))
	if err == nil {
		err = db.log.Flush()
	}
	db.checkpointLSN = snapLSN
	db.quiesce.RUnlock()
	if err != nil {
		return 0, err
	}
	db.obs.Histogram(obs.CheckpointSeconds, nil).ObserveSince(start)
	db.obs.Events().Info(obs.EventWALCheckpoint, "snapshot_lsn", snapLSN,
		"quiesce_seconds", quiesced.Seconds(), "duration_seconds", time.Since(start).Seconds())
	return snapLSN, nil
}

func snapPath(dir string, lsn int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", lsn))
}

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoliSnap, p)
	return cw.w.Write(p)
}

var castagnoliSnap = crc32.MakeTable(crc32.Castagnoli)

func writeSection(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// appendSection is writeSection into a byte slice.
func appendSection(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// snapshotTableAt encodes one table's row stream as visible at cutTS,
// releasing the table lock between chunks so concurrent committers are
// never blocked for the duration of the scan. Returns the encoded
// section and the number of rows it holds.
func snapshotTableAt(t *Table, cutTS int64) ([]byte, uint64) {
	var buf []byte
	var rows uint64
	rowBuf := make([]byte, 0, 1024)
	var resume []byte
	for {
		visited := 0
		t.mu.RLock()
		t.rows.AscendRange(resume, nil, func(k []byte, c *versionChain) bool {
			if visited >= snapshotScanChunk {
				// Resume strictly after the last visited key next round.
				return false
			}
			visited++
			resume = append(append(resume[:0], k...), 0x00)
			if row, ok := c.at(cutTS); ok {
				buf = appendSection(buf, k)
				rowBuf = sqltypes.EncodeRow(rowBuf[:0], row)
				buf = appendSection(buf, rowBuf)
				rows++
			}
			return true
		})
		t.mu.RUnlock()
		if visited < snapshotScanChunk {
			return buf, rows
		}
	}
}

// snapSection is one encoded per-table section headed for the v2 file.
type snapSection struct {
	id   uint32
	rows uint64
	data []byte
	crc  uint32
}

// writeSnapshotV2 writes the v2 snapshot file: table sections encoded by
// per-table workers from the MVCC cut at cutTS, then laid out behind an
// offset index with per-section CRCs.
func (db *DB) writeSnapshotV2(lsn, cutTS int64, ledgerBlob, catJSON []byte, tables []*Table) error {
	secs := make([]snapSection, len(tables))
	workers := db.recoveryWorkers()
	if workers > len(tables) {
		workers = len(tables)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, len(tables))
	for i := range tables {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t := tables[i]
				data, rows := snapshotTableAt(t, cutTS)
				secs[i] = snapSection{
					id:   t.meta.ID,
					rows: rows,
					data: data,
					crc:  crc32.Checksum(data, castagnoliSnap),
				}
			}
		}()
	}
	wg.Wait()

	headerLen := len(snapMagicV2) + 8 + // magic, cutTS
		4 + len(catJSON) + 4 + len(ledgerBlob) + // sections
		4 + len(secs)*(4+8+8+8+4) + // count + index entries
		4 // header CRC
	tmp := snapPath(db.opts.Dir, lsn) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: snapshot create: %w", err)
	}
	defer func() {
		f.Close()
		os.Remove(tmp)
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(snapMagicV2)); err != nil {
		return err
	}
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(cutTS))
	if _, err := cw.Write(u64[:]); err != nil {
		return err
	}
	if err := writeSection(cw, catJSON); err != nil {
		return err
	}
	if err := writeSection(cw, ledgerBlob); err != nil {
		return err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(secs)))
	if _, err := cw.Write(u32[:]); err != nil {
		return err
	}
	offset := uint64(headerLen)
	for _, s := range secs {
		var ent [32]byte
		binary.LittleEndian.PutUint32(ent[0:4], s.id)
		binary.LittleEndian.PutUint64(ent[4:12], s.rows)
		binary.LittleEndian.PutUint64(ent[12:20], offset)
		binary.LittleEndian.PutUint64(ent[20:28], uint64(len(s.data)))
		binary.LittleEndian.PutUint32(ent[28:32], s.crc)
		if _, err := cw.Write(ent[:]); err != nil {
			return err
		}
		offset += uint64(len(s.data))
	}
	binary.LittleEndian.PutUint32(u32[:], cw.crc)
	if _, err := bw.Write(u32[:]); err != nil {
		return err
	}
	for _, s := range secs {
		if _, err := bw.Write(s.data); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, snapPath(db.opts.Dir, lsn))
}

// writeSnapshotV1 writes the legacy v1 snapshot format. Kept so the
// format-compat test can produce v1 images the way old code did; the
// engine itself always writes v2 now.
func (db *DB) writeSnapshotV1(lsn int64, ledgerBlob []byte) error {
	tmp := snapPath(db.opts.Dir, lsn) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("engine: snapshot create: %w", err)
	}
	defer func() {
		f.Close()
		os.Remove(tmp)
	}()
	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<20)}
	if _, err := cw.Write([]byte(snapMagicV1)); err != nil {
		return err
	}
	var tsBuf [8]byte
	binary.LittleEndian.PutUint64(tsBuf[:], uint64(db.lastCommitTS.Load()))
	if _, err := cw.Write(tsBuf[:]); err != nil {
		return err
	}
	db.mu.RLock()
	catJSON, err := db.cat.marshal()
	ids := make([]uint32, 0, len(db.tables))
	for id := range db.tables {
		ids = append(ids, id)
	}
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	if err := writeSection(cw, catJSON); err != nil {
		return err
	}
	if err := writeSection(cw, ledgerBlob); err != nil {
		return err
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(ids)))
	if _, err := cw.Write(cnt[:]); err != nil {
		return err
	}
	rowBuf := make([]byte, 0, 1024)
	for _, id := range ids {
		db.mu.RLock()
		t := db.tables[id]
		db.mu.RUnlock()
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:4], id)
		binary.LittleEndian.PutUint64(hdr[4:12], uint64(t.RowCount()))
		if _, err := cw.Write(hdr[:]); err != nil {
			return err
		}
		var scanErr error
		t.Scan(func(k []byte, r sqltypes.Row) bool {
			if scanErr = writeSection(cw, k); scanErr != nil {
				return false
			}
			rowBuf = sqltypes.EncodeRow(rowBuf[:0], r)
			if scanErr = writeSection(cw, rowBuf); scanErr != nil {
				return false
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := cw.w.Write(crcBuf[:]); err != nil {
		return err
	}
	if err := cw.w.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, snapPath(db.opts.Dir, lsn))
}

// loadLatestSnapshot finds and loads the newest valid snapshot, returning
// the LSN recovery should replay from (0 when starting empty). A corrupt
// newest snapshot falls back to the next older one.
func (db *DB) loadLatestSnapshot() (int64, error) {
	matches, err := filepath.Glob(filepath.Join(db.opts.Dir, "snap-*.snap"))
	if err != nil {
		return 0, err
	}
	type cand struct {
		path string
		lsn  int64
	}
	var cands []cand
	for _, m := range matches {
		var lsn int64
		if _, err := fmt.Sscanf(filepath.Base(m), "snap-%016x.snap", &lsn); err == nil {
			cands = append(cands, cand{m, lsn})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lsn > cands[j].lsn })
	for _, c := range cands {
		if err := db.loadSnapshot(c.path); err != nil {
			// Fall back to an older snapshot; replay covers the gap.
			continue
		}
		return c.lsn, nil
	}
	// No usable snapshot: start from an empty catalog.
	db.cat = newCatalog()
	db.tables = make(map[uint32]*Table)
	if db.opts.Hook != nil {
		if err := db.opts.Hook.LoadState(nil); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

func readSection(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// loadSnapshot dispatches on the snapshot magic; both loaders mutate db
// only after the whole file validated, so a failure leaves the database
// ready to try an older snapshot.
func (db *DB) loadSnapshot(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch {
	case len(raw) >= len(snapMagicV2) && string(raw[:len(snapMagicV2)]) == snapMagicV2:
		return db.loadSnapshotV2(path, raw)
	case len(raw) >= len(snapMagicV1) && string(raw[:len(snapMagicV1)]) == snapMagicV1:
		return db.loadSnapshotV1(path, raw)
	default:
		return fmt.Errorf("engine: bad snapshot header in %s", path)
	}
}

func (db *DB) loadSnapshotV1(path string, raw []byte) error {
	if len(raw) < len(snapMagicV1)+12 {
		return fmt.Errorf("engine: bad snapshot header in %s", path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoliSnap) != binary.LittleEndian.Uint32(tail) {
		return fmt.Errorf("engine: snapshot CRC mismatch in %s", path)
	}
	r := bufio.NewReader(bytes.NewReader(body[len(snapMagicV1):]))
	var tsBuf [8]byte
	if _, err := io.ReadFull(r, tsBuf[:]); err != nil {
		return err
	}
	lastTS := int64(binary.LittleEndian.Uint64(tsBuf[:]))
	catJSON, err := readSection(r)
	if err != nil {
		return err
	}
	blob, err := readSection(r)
	if err != nil {
		return err
	}
	cat, err := unmarshalCatalog(catJSON)
	if err != nil {
		return err
	}
	tables := make(map[uint32]*Table, len(cat.Tables))
	for id, meta := range cat.Tables {
		tables[id] = newTable(meta)
	}
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return err
	}
	nTables := binary.LittleEndian.Uint32(cnt[:])
	loaded := 0
	for i := uint32(0); i < nTables; i++ {
		var hdr [12]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return err
		}
		id := binary.LittleEndian.Uint32(hdr[0:4])
		rows := binary.LittleEndian.Uint64(hdr[4:12])
		t, ok := tables[id]
		if !ok {
			return fmt.Errorf("engine: snapshot has rows for unknown table %d", id)
		}
		for j := uint64(0); j < rows; j++ {
			key, err := readSection(r)
			if err != nil {
				return err
			}
			rowb, err := readSection(r)
			if err != nil {
				return err
			}
			row, _, err := sqltypes.DecodeRow(rowb)
			if err != nil {
				return err
			}
			// Snapshot rows load as a single version at timestamp 0,
			// visible to every snapshot read.
			t.loadRowLocked(key, row)
			loaded++
		}
	}
	// Rebuild nonclustered indexes from base data.
	for _, im := range cat.Indexes {
		t, ok := tables[im.TableID]
		if !ok {
			return fmt.Errorf("engine: index %d references unknown table %d", im.ID, im.TableID)
		}
		ix := &Index{meta: im}
		t.buildIndexLocked(ix)
		t.indexes = append(t.indexes, ix)
	}
	if db.opts.Hook != nil {
		if err := db.opts.Hook.LoadState(blob); err != nil {
			return err
		}
	}
	db.cat = cat
	db.tables = tables
	db.lastCommitTS.Store(lastTS)
	db.m.versionsLive.Set(float64(loaded))
	return nil
}

// loadSnapshotV2 validates and loads a v2 snapshot: header CRC first,
// then per-table workers each verify their section CRC, decode the row
// stream into a freshly built table (btree.BuildSorted — rows were
// written in key order), and rebuild its indexes.
func (db *DB) loadSnapshotV2(path string, raw []byte) error {
	pos := len(snapMagicV2)
	if len(raw) < pos+8 {
		return fmt.Errorf("engine: bad snapshot header in %s", path)
	}
	cutTS := int64(binary.LittleEndian.Uint64(raw[pos : pos+8]))
	pos += 8
	takeSection := func() ([]byte, error) {
		if pos+4 > len(raw) {
			return nil, fmt.Errorf("engine: snapshot truncated in %s", path)
		}
		n := int(binary.LittleEndian.Uint32(raw[pos : pos+4]))
		pos += 4
		if pos+n > len(raw) {
			return nil, fmt.Errorf("engine: snapshot truncated in %s", path)
		}
		b := raw[pos : pos+n]
		pos += n
		return b, nil
	}
	catJSON, err := takeSection()
	if err != nil {
		return err
	}
	blob, err := takeSection()
	if err != nil {
		return err
	}
	if pos+4 > len(raw) {
		return fmt.Errorf("engine: snapshot truncated in %s", path)
	}
	nTables := int(binary.LittleEndian.Uint32(raw[pos : pos+4]))
	pos += 4
	type secRef struct {
		id      uint32
		rows    uint64
		off, ln uint64
		crc     uint32
	}
	if pos+nTables*32+4 > len(raw) {
		return fmt.Errorf("engine: snapshot truncated in %s", path)
	}
	refs := make([]secRef, nTables)
	for i := range refs {
		ent := raw[pos : pos+32]
		refs[i] = secRef{
			id:   binary.LittleEndian.Uint32(ent[0:4]),
			rows: binary.LittleEndian.Uint64(ent[4:12]),
			off:  binary.LittleEndian.Uint64(ent[12:20]),
			ln:   binary.LittleEndian.Uint64(ent[20:28]),
			crc:  binary.LittleEndian.Uint32(ent[28:32]),
		}
		pos += 32
	}
	if crc32.Checksum(raw[:pos], castagnoliSnap) != binary.LittleEndian.Uint32(raw[pos:pos+4]) {
		return fmt.Errorf("engine: snapshot header CRC mismatch in %s", path)
	}
	cat, err := unmarshalCatalog(catJSON)
	if err != nil {
		return err
	}
	tables := make(map[uint32]*Table, len(cat.Tables))
	for id, meta := range cat.Tables {
		tables[id] = newTable(meta)
	}

	workers := db.recoveryWorkers()
	if workers > nTables {
		workers = nTables
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, nTables)
	loadedPer := make([]int, nTables)
	var wg sync.WaitGroup
	next := make(chan int, nTables)
	for i := 0; i < nTables; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ref := refs[i]
				t, ok := tables[ref.id]
				if !ok {
					errs[i] = fmt.Errorf("engine: snapshot has rows for unknown table %d", ref.id)
					continue
				}
				end := ref.off + ref.ln
				if ref.off > uint64(len(raw)) || end > uint64(len(raw)) || ref.off > end {
					errs[i] = fmt.Errorf("engine: snapshot section out of bounds for table %d", ref.id)
					continue
				}
				data := raw[ref.off:end]
				if crc32.Checksum(data, castagnoliSnap) != ref.crc {
					errs[i] = fmt.Errorf("engine: snapshot section CRC mismatch for table %d in %s", ref.id, path)
					continue
				}
				errs[i] = loadTableSection(t, data, ref.rows)
				loadedPer[i] = int(ref.rows)
			}
		}()
	}
	wg.Wait()
	loaded := 0
	for i, e := range errs {
		if e != nil {
			return e
		}
		loaded += loadedPer[i]
	}
	// Rebuild nonclustered indexes from base data.
	for _, im := range cat.Indexes {
		t, ok := tables[im.TableID]
		if !ok {
			return fmt.Errorf("engine: index %d references unknown table %d", im.ID, im.TableID)
		}
		ix := &Index{meta: im}
		t.buildIndexLocked(ix)
		t.indexes = append(t.indexes, ix)
	}
	if db.opts.Hook != nil {
		if err := db.opts.Hook.LoadState(blob); err != nil {
			return err
		}
	}
	db.cat = cat
	db.tables = tables
	db.lastCommitTS.Store(cutTS)
	db.m.versionsLive.Set(float64(loaded))
	return nil
}

// loadTableSection decodes one v2 row stream into a fresh table. Rows
// were streamed in key order, so the clustered btree bulk-loads in O(n).
func loadTableSection(t *Table, data []byte, rows uint64) error {
	keys := make([][]byte, 0, rows)
	chains := make([]*versionChain, 0, rows)
	pos := 0
	take := func() ([]byte, error) {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("engine: snapshot section truncated for table %s", t.meta.Name)
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		pos += 4
		if pos+n > len(data) {
			return nil, fmt.Errorf("engine: snapshot section truncated for table %s", t.meta.Name)
		}
		b := data[pos : pos+n]
		pos += n
		return b, nil
	}
	for j := uint64(0); j < rows; j++ {
		key, err := take()
		if err != nil {
			return err
		}
		rowb, err := take()
		if err != nil {
			return err
		}
		row, _, err := sqltypes.DecodeRow(rowb)
		if err != nil {
			return err
		}
		// Copy the key out of the mmap-like raw buffer: chains outlive it.
		k := append([]byte(nil), key...)
		// Snapshot rows load as a single version at timestamp 0, visible
		// to every snapshot read.
		keys = append(keys, k)
		chains = append(chains, newChain(0, row))
	}
	if pos != len(data) {
		return fmt.Errorf("engine: snapshot section has %d trailing bytes for table %s", len(data)-pos, t.meta.Name)
	}
	t.rows = btree.BuildSorted(keys, chains)
	t.liveRows = len(keys)
	for _, k := range keys {
		t.noteRIDLocked(k)
	}
	return nil
}
