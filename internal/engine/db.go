package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// LedgerHook is how internal/core attaches ledger processing to the
// engine's commit path, checkpointer and recovery, mirroring the
// extension points the paper describes in §3.3.2.
type LedgerHook interface {
	// OnCommit runs inside the commit critical section for transactions
	// that updated ledger tables. It must assign the transaction to a
	// block and return its block id and ordinal; the engine embeds the
	// resulting entry in the COMMIT log record.
	OnCommit(txID uint64, commitTS int64, user string, roots []wal.TableRoot) (blockID uint64, ordinal uint32)
	// BeforeSnapshot runs under full quiescence just before a snapshot is
	// written; the core drains the in-memory ledger queue into the system
	// tables here so the snapshot captures it.
	BeforeSnapshot()
	// StateBlob returns opaque ledger state persisted inside snapshots.
	StateBlob() []byte
	// LoadState hands back the blob from the snapshot being recovered
	// (nil when recovering without a snapshot).
	LoadState(blob []byte) error
	// Recovered delivers the ledger entries of all committed transactions
	// replayed from the log, in commit order, for queue reconstruction.
	Recovered(entries []*wal.LedgerEntry)
}

// Options configures Open.
type Options struct {
	// Dir is the database directory (WAL + snapshots).
	Dir string
	// Sync selects the WAL durability mode.
	Sync wal.SyncMode
	// LockTimeout bounds row-lock waits (deadlock resolution); default 2s.
	LockTimeout time.Duration
	// Hook, if set, receives ledger callbacks.
	Hook LedgerHook
	// GroupCommit tunes WAL group commit (the zero value enables it with
	// defaults; set Disabled for the serialized ablation path).
	GroupCommit wal.GroupConfig
	// Obs receives metrics and spans from every layer of this database
	// (WAL, commit pipeline, locks). nil creates a private enabled
	// registry; pass obs.Disabled() to turn recording off.
	Obs *obs.Registry
	// Clock, if set, supplies commit timestamps (unix nanoseconds) in
	// place of time.Now. A logical clock here makes every ledger
	// artifact — entries, block hashes, digests — byte-for-byte
	// reproducible across runs, which equivalence tests and benchmarks
	// rely on. nil uses the wall clock.
	Clock func() int64
	// VersionGCInterval paces the background sweep that reclaims row
	// versions older than the oldest active snapshot; zero keeps the
	// default (250ms). Sharded deployments stagger this so N engine
	// instances on one box don't all tick in lockstep.
	VersionGCInterval time.Duration
	// RecoveryWorkers sets the parallelism of crash recovery: the WAL
	// payload-decode pool and the redo apply pool both use this many
	// workers. 0 means one per CPU; 1 forces the fully serial replay
	// path (the baseline the recovery scaling gate measures against).
	RecoveryWorkers int
}

// DB is an embedded relational database.
type DB struct {
	opts Options

	mu     sync.RWMutex // guards catalog and tables map
	cat    *catalog
	tables map[uint32]*Table

	log   *wal.Log
	locks *lockTable
	// committer batches concurrent commits into shared-flush write groups;
	// nil when Options.GroupCommit.Disabled.
	committer *wal.GroupCommitter

	// commitMu serializes only the sequencing stage of the commit pipeline:
	// monotonic timestamp assignment, ledger block/ordinal assignment, and
	// publication to the group committer (so WAL order matches ordinal
	// order). Durability and apply happen outside it.
	commitMu     sync.Mutex
	lastCommitTS atomic.Int64

	// appliedTS is the applied-through watermark: the largest timestamp T
	// such that every commit with ts <= T has installed its writes into
	// shared storage (stage 4 of the pipeline). lastCommitTS is published
	// in stage 1, before the durability wait and apply, so snapshot reads
	// pin appliedTS instead — pinning lastCommitTS would let a reader
	// observe a cut whose transactions are not all applied yet (missing
	// T while seeing a younger T', non-repeatable reads within one
	// snapshot). Advanced only by markApplied, monotonically.
	appliedTS atomic.Int64
	// inflightMu guards inflight — the set of sequenced-but-unapplied
	// commit timestamps — and makes lastCommitTS publication atomic with
	// in-flight registration, so markApplied always sees every timestamp
	// that may still be unapplied.
	inflightMu sync.Mutex
	inflight   map[int64]struct{}

	// quiesce: commits and DDL hold RLock; checkpoint/restore hold Lock.
	// Since the online checkpoint, Checkpoint holds Lock only for the
	// microseconds needed to pin a transaction-consistent cut; the
	// snapshot itself streams from MVCC version chains while committers
	// run.
	quiesce sync.RWMutex
	// checkpointMu serializes whole checkpoints against each other (the
	// snapshot write no longer runs under quiesce, so two concurrent
	// Checkpoint calls would otherwise race on snapshot ids and the
	// checkpoint record).
	checkpointMu sync.Mutex
	// snapshotWriteHook, when non-nil, runs once at the start of the
	// checkpoint's snapshot streaming phase — after quiesce is released.
	// Tests use it to prove committers make progress while the write is
	// in flight.
	snapshotWriteHook func()

	// snapMu guards the active-snapshot registry used by read-only
	// transactions (readtx.go) and version GC.
	snapMu     sync.Mutex
	snaps      map[uint64]int64 // read-tx id -> pinned snapshot TS
	nextSnapID uint64

	gcStop     chan struct{}
	gcDone     chan struct{}
	gcStopOnce sync.Once

	// inDoubt holds transactions that were prepared (RecPrepare durable)
	// but neither committed nor aborted when the log ends — the 2PC
	// coordinator above resolves them via PreparedTxs + CommitPrepared /
	// AbortPrepared after recovery. Keyed by global transaction id.
	inDoubt map[uint64]*Tx
	// preparedCount tracks live prepared transactions (in-doubt ones
	// included); Checkpoint refuses while any exist, because a snapshot
	// would strand their PREPARE records behind the checkpoint LSN.
	preparedCount atomic.Int64

	checkpointLSN int64
	closed        bool

	obs *obs.Registry
	m   dbMetrics
}

// dbMetrics holds the engine's metric handles, resolved once at Open.
type dbMetrics struct {
	commits       *obs.Counter
	rollbacks     *obs.Counter
	stageEncode   *obs.Histogram
	stageSequence *obs.Histogram
	stagePublish  *obs.Histogram
	stageWait     *obs.Histogram
	stageApply    *obs.Histogram
	snapshotReads *obs.Counter
	versionsLive  *obs.Gauge
	gcReclaimed   *obs.Counter
	snapshotLag   *obs.Histogram
}

func bindDBMetrics(reg *obs.Registry) dbMetrics {
	return dbMetrics{
		commits:       reg.Counter(obs.EngineCommitTotal),
		rollbacks:     reg.Counter(obs.EngineRollbackTotal),
		stageEncode:   reg.Histogram(obs.CommitStageSeconds, nil, obs.L("stage", "encode")),
		stageSequence: reg.Histogram(obs.CommitStageSeconds, nil, obs.L("stage", "sequence")),
		stagePublish:  reg.Histogram(obs.CommitStageSeconds, nil, obs.L("stage", "publish")),
		stageWait:     reg.Histogram(obs.CommitStageSeconds, nil, obs.L("stage", "wait")),
		stageApply:    reg.Histogram(obs.CommitStageSeconds, nil, obs.L("stage", "apply")),
		snapshotReads: reg.Counter(obs.SnapshotReadsTotal),
		versionsLive:  reg.Gauge(obs.VersionsLive),
		gcReclaimed:   reg.Counter(obs.VersionGCReclaimedTotal),
		snapshotLag:   reg.Histogram(obs.ReadSnapshotLagSeconds, nil),
	}
}

const walFileName = "wal.log"

// Open opens (creating if necessary) the database in opts.Dir, running
// crash recovery: load the latest snapshot, then redo committed
// transactions from the WAL, then hand recovered ledger entries to the
// hook for queue reconstruction.
func Open(opts Options) (*DB, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("engine: Options.Dir is required")
	}
	if opts.LockTimeout == 0 {
		opts.LockTimeout = 2 * time.Second
	}
	if opts.VersionGCInterval == 0 {
		opts.VersionGCInterval = versionGCInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: mkdir: %w", err)
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	log, err := wal.Open(filepath.Join(opts.Dir, walFileName), opts.Sync)
	if err != nil {
		return nil, err
	}
	// Rebind before recovery so everything the database ever fsyncs is
	// counted on the shared registry.
	log.Instrument(opts.Obs)
	db := &DB{
		opts:     opts,
		cat:      newCatalog(),
		tables:   make(map[uint32]*Table),
		log:      log,
		locks:    newLockTable(opts.Obs),
		snaps:    make(map[uint64]int64),
		inflight: make(map[int64]struct{}),
		inDoubt:  make(map[uint64]*Tx),
		gcStop:   make(chan struct{}),
		gcDone:   make(chan struct{}),
		obs:      opts.Obs,
		m:        bindDBMetrics(opts.Obs),
	}
	if err := db.recover(); err != nil {
		log.Close()
		return nil, err
	}
	if !opts.GroupCommit.Disabled {
		db.committer = wal.NewGroupCommitter(log, opts.GroupCommit)
	}
	go db.versionGCLoop()
	return db, nil
}

// Close flushes and closes the database. In-flight transactions must be
// finished first.
func (db *DB) Close() error {
	// Stop the version-GC sweeper before quiescing: its sweeps take
	// quiesce.RLock, so stopping it afterwards would deadlock.
	db.stopVersionGC()
	db.quiesce.Lock()
	defer db.quiesce.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.committer != nil {
		if err := db.committer.Close(); err != nil {
			return err
		}
	}
	return db.log.Close()
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.opts.Dir }

// LogSize returns the current WAL size in bytes.
func (db *DB) LogSize() int64 { return db.log.Size() }

// rowEncSizeHint over-approximates sqltypes.EncodeRow's output size for
// arena pre-sizing (strings and byte values plus fixed per-value space).
func rowEncSizeHint(r sqltypes.Row) int {
	n := 10
	for _, v := range r {
		n += 12 + len(v.Str) + len(v.Bytes)
	}
	return n
}

// nowNanos returns the current time from Options.Clock, or the wall
// clock when none is configured.
func (db *DB) nowNanos() int64 {
	if db.opts.Clock != nil {
		return db.opts.Clock()
	}
	return time.Now().UnixNano()
}

// LastCommitTS returns the commit timestamp (unix nanoseconds) of the most
// recently committed transaction. It reads an atomic, so read-only commits
// and digest generation never contend on the commit critical section.
func (db *DB) LastCommitTS() int64 {
	return db.lastCommitTS.Load()
}

// Obs returns the database's metrics registry.
func (db *DB) Obs() *obs.Registry { return db.obs }

// FsyncCount returns how many WAL fsyncs have been performed since open
// (nonzero only under wal.SyncFull). Shim over the registry's
// sqlledger_wal_fsync_total counter.
func (db *DB) FsyncCount() int64 { return db.log.SyncCount() }

// GroupCommitStats returns the WAL group committer's counters (all zero
// when group commit is disabled).
func (db *DB) GroupCommitStats() wal.GroupStats {
	if db.committer == nil {
		return wal.GroupStats{}
	}
	return db.committer.Stats()
}

// Table returns the runtime table for a (non-dropped) name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := db.cat.tableByName(name)
	if m == nil {
		return nil, fmt.Errorf("engine: table %q not found", name)
	}
	return db.tables[m.ID], nil
}

// TableByID returns the runtime table for an id, including dropped tables
// (verification still processes them, §3.5.2).
func (db *DB) TableByID(id uint32) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[id]
	if !ok {
		return nil, fmt.Errorf("engine: table id %d not found", id)
	}
	return t, nil
}

// Tables returns all runtime tables (including dropped and system tables),
// ordered by id.
func (db *DB) Tables() []*Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].meta.ID < out[j].meta.ID })
	return out
}

// Begin starts a transaction on behalf of user.
func (db *DB) Begin(user string) *Tx {
	db.mu.Lock()
	id := db.cat.NextTxID
	db.cat.NextTxID++
	db.mu.Unlock()
	return &Tx{
		db:       db,
		id:       id,
		user:     user,
		overlays: make(map[uint32]*overlay),
		locks:    make(map[lockKey]struct{}),
	}
}

// Commit atomically applies and durably logs the transaction through a
// staged pipeline: sequence (commit timestamp and, for ledger
// transactions, block/ordinal assignment under commitMu, §3.3.2) →
// publish (hand the WAL batch to the group committer while still holding
// commitMu, so WAL commit-record order equals ledger ordinal order) →
// wait (durability, amortized across the write group — one fsync per
// group under SyncFull) → apply (install writes and release row locks).
// Row locks stay held until apply, so isolation is exactly what the
// fully serialized path provided. Returns the commit timestamp.
func (db *DB) Commit(tx *Tx) (int64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if len(tx.writes) == 0 {
		// Read-only: nothing to log or apply.
		tx.done = true
		tx.releaseLocks()
		return db.LastCommitTS(), nil
	}
	db.quiesce.RLock()
	defer db.quiesce.RUnlock()

	// The lap timer reads the clock only when the registry is enabled, so
	// the metrics-off ablation skips all stage observations. When the
	// transaction carries a trace, every lap also lands as a top-level
	// child span — the commit waterfall — from the same clock reads.
	tr := tx.trace
	lap := db.obs.Timer()

	// Build the WAL batch outside the critical section. All DML payloads
	// are encoded into one shared arena sized from a per-row hint; a
	// record's payload slice stays valid even if a later append grows the
	// arena, because the old backing array is left intact.
	recs := make([]wal.Record, 0, len(tx.writes)+1)
	size := 0
	for _, w := range tx.writes {
		if w.enc == nil {
			size += len(w.key) + rowEncSizeHint(w.before) + rowEncSizeHint(w.after) + 10
		}
	}
	arena := make([]byte, 0, size)
	for _, w := range tx.writes {
		payload := w.enc
		if payload == nil {
			start := len(arena)
			arena = wal.AppendDML(arena, w.typ, wal.DMLPayload{TableID: w.tableID, Key: w.key, Before: w.before, After: w.after})
			payload = arena[start:len(arena):len(arena)]
		}
		recs = append(recs, wal.Record{
			Type:    w.typ,
			TxID:    tx.id,
			Payload: payload,
		})
	}

	lap.LapSpan(db.m.stageEncode, tr, obs.SpanWALEncode)

	// Stage 1 — sequence. Publishing lastCommitTS and registering the
	// timestamp as in-flight happen under one inflightMu critical section
	// so the applied-through watermark (markApplied) can never observe a
	// published timestamp that is missing from the in-flight set.
	db.commitMu.Lock()
	now := db.nowNanos()
	if last := db.lastCommitTS.Load(); now <= last {
		now = last + 1
	}
	db.inflightMu.Lock()
	db.lastCommitTS.Store(now)
	db.inflight[now] = struct{}{}
	db.inflightMu.Unlock()

	var entry *wal.LedgerEntry
	if len(tx.Roots) > 0 && db.opts.Hook != nil {
		blockID, ordinal := db.opts.Hook.OnCommit(tx.id, now, tx.user, tx.Roots)
		entry = &wal.LedgerEntry{
			TxID:     tx.id,
			BlockID:  blockID,
			Ordinal:  ordinal,
			CommitTS: now,
			User:     tx.user,
			Roots:    tx.Roots,
		}
	}
	recs = append(recs, wal.Record{
		Type:    wal.RecCommit,
		TxID:    tx.id,
		Payload: wal.EncodeCommit(wal.CommitPayload{CommitTS: now, User: tx.user, Entry: entry}),
	})

	// Stages 2 and 3 — publish, then wait for durability off the
	// critical section. The serialized path (GroupCommit.Disabled) keeps
	// the append inside commitMu like the pre-pipeline engine did.
	lap.LapSpan(db.m.stageSequence, tr, obs.SpanCommitSequence)
	var err error
	if db.committer != nil {
		var ticket *wal.Ticket
		if tr != nil {
			ticket = db.committer.EnqueueTraced(recs)
		} else {
			ticket = db.committer.Enqueue(recs)
		}
		db.commitMu.Unlock()
		lap.LapSpan(db.m.stagePublish, tr, obs.SpanCommitPublish)
		_, err = ticket.Wait()
		waitID := lap.LapSpan(db.m.stageWait, tr, obs.SpanCommitWait)
		if tr != nil {
			// Split the durability wait into its two legs: waiting for the
			// group to form (enqueue → flush start) and the group's shared
			// append+fsync, annotated with how many commits amortized it.
			enq, fs, fd, gsize, grecs := ticket.GroupTimings()
			if !fs.IsZero() {
				if !enq.IsZero() && fs.After(enq) {
					tr.Record(obs.SpanWALGroupForm, waitID, enq, fs.Sub(enq))
				}
				tr.Record(obs.SpanWALFlush, waitID, fs, fd,
					obs.L("group_size", strconv.Itoa(gsize)),
					obs.L("group_records", strconv.Itoa(grecs)))
			}
		}
	} else {
		// Serialized path: the append is both publish and wait.
		_, err = db.log.AppendBatch(recs)
		db.commitMu.Unlock()
		lap.LapSpan(db.m.stagePublish, tr, obs.SpanCommitPublish)
	}
	if err != nil {
		// Known limitation: if the log write fails (disk full, I/O error)
		// after the ledger hook assigned a block position, that ordinal
		// is burned; the block will fail to close and verification will
		// flag the gap. This mirrors the paper's stance that the ledger
		// surfaces inconsistencies rather than papering over them — a
		// real deployment treats log-write failure as fail-stop. The
		// burned timestamp is retired too: its writes will never apply,
		// so it must not hold the applied-through watermark back forever.
		db.markApplied(now)
		return 0, fmt.Errorf("engine: commit log: %w", err)
	}

	// Stage 4 — apply to shared storage while still holding row locks, so
	// conflicting transactions observe this one fully. Each write appends
	// a version stamped with the commit timestamp; snapshot readers pinned
	// earlier keep seeing the previous versions.
	db.applyWrites(tx.writes, now)
	db.markApplied(now)
	tx.done = true
	tx.releaseLocks()
	lap.LapSpan(db.m.stageApply, tr, obs.SpanCommitApply)
	db.m.commits.Inc()
	return now, nil
}

// markApplied retires a sequenced commit timestamp after its writes are
// installed (or abandoned on a log-write failure) and advances the
// applied-through watermark to the largest timestamp with no unapplied
// commit at or below it: lastCommitTS when nothing is in flight, otherwise
// one below the oldest in-flight commit. appliedTS is only written here,
// under inflightMu, so the monotonicity check is race-free.
func (db *DB) markApplied(ts int64) {
	db.inflightMu.Lock()
	delete(db.inflight, ts)
	applied := db.lastCommitTS.Load()
	for pending := range db.inflight {
		if pending-1 < applied {
			applied = pending - 1
		}
	}
	if applied > db.appliedTS.Load() {
		db.appliedTS.Store(applied)
	}
	db.inflightMu.Unlock()
}

// applyWrites installs a committed write set into the tables as versions
// stamped with commitTS, grouping consecutive ops per table to amortize
// locking.
func (db *DB) applyWrites(writes []writeOp, commitTS int64) {
	i := 0
	for i < len(writes) {
		tid := writes[i].tableID
		j := i
		for j < len(writes) && writes[j].tableID == tid {
			j++
		}
		db.mu.RLock()
		t := db.tables[tid]
		db.mu.RUnlock()
		t.mu.Lock()
		for _, w := range writes[i:j] {
			var err error
			switch w.typ {
			case wal.RecInsert:
				err = t.applyInsertLocked(w.key, w.after, commitTS)
			case wal.RecDelete:
				err = t.applyDeleteLocked(w.key, commitTS)
			case wal.RecUpdate:
				err = t.applyUpdateLocked(w.key, w.after, commitTS)
			}
			if err != nil {
				// Row locks make apply conflicts impossible; a failure here
				// means engine-internal corruption.
				t.mu.Unlock()
				panic(fmt.Sprintf("engine: apply failed: %v", err))
			}
		}
		t.mu.Unlock()
		i = j
	}
	// Every applied op adds exactly one version (insert, replacement or
	// tombstone); GC subtracts as it reclaims.
	db.m.versionsLive.Add(float64(len(writes)))
}

// --- DDL -------------------------------------------------------------

// CreateTableSpec describes a new table.
type CreateTableSpec struct {
	Name   string
	Schema *sqltypes.Schema
	System bool
	Ledger LedgerKind
}

// CreateTable creates a table and logs the DDL.
func (db *DB) CreateTable(spec CreateTableSpec) (*Table, error) {
	db.quiesce.RLock()
	defer db.quiesce.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.cat.tableByName(spec.Name) != nil {
		return nil, fmt.Errorf("engine: table %q already exists", spec.Name)
	}
	meta := &TableMeta{
		ID:     db.cat.NextTableID,
		Name:   spec.Name,
		Schema: spec.Schema.Clone(),
		Heap:   len(spec.Schema.Key) == 0,
		System: spec.System,
		Ledger: spec.Ledger,
	}
	db.cat.NextTableID++
	db.cat.Tables[meta.ID] = meta
	t := newTable(meta)
	db.tables[meta.ID] = t
	if err := db.logDDL(ddlOp{Kind: "create_table", Meta: meta}); err != nil {
		return nil, err
	}
	return t, nil
}

// AlterTableMeta applies an arbitrary catalog mutation to a table and logs
// the resulting metadata. If the schema gained columns, existing rows are
// widened with NULLs. Used by the ledger core for add/drop column, drop
// table (rename) and history-table linkage.
func (db *DB) AlterTableMeta(tableID uint32, mutate func(*TableMeta) error) error {
	db.quiesce.RLock()
	defer db.quiesce.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableID]
	if !ok {
		return fmt.Errorf("engine: table id %d not found", tableID)
	}
	if err := mutate(t.meta); err != nil {
		return err
	}
	t.mu.Lock()
	t.widenRowsLocked()
	t.mu.Unlock()
	return db.logDDL(ddlOp{Kind: "alter_table", Meta: t.meta})
}

// CreateIndex creates a nonclustered index over the named columns and
// builds it from the current table contents.
func (db *DB) CreateIndex(tableName, indexName string, colNames ...string) (*Index, error) {
	db.quiesce.RLock()
	defer db.quiesce.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	m := db.cat.tableByName(tableName)
	if m == nil {
		return nil, fmt.Errorf("engine: table %q not found", tableName)
	}
	for _, im := range db.cat.Indexes {
		if strings.EqualFold(im.Name, indexName) {
			return nil, fmt.Errorf("engine: index %q already exists", indexName)
		}
	}
	cols := make([]int, len(colNames))
	for i, cn := range colNames {
		ord := m.Schema.OrdinalOf(cn)
		if ord < 0 {
			return nil, fmt.Errorf("engine: column %q not found in %s", cn, tableName)
		}
		cols[i] = ord
	}
	im := &IndexMeta{ID: db.cat.NextIndexID, Name: indexName, TableID: m.ID, Cols: cols}
	db.cat.NextIndexID++
	db.cat.Indexes[im.ID] = im
	t := db.tables[m.ID]
	ix := &Index{meta: im}
	t.mu.Lock()
	t.buildIndexLocked(ix)
	t.indexes = append(t.indexes, ix)
	t.mu.Unlock()
	if err := db.logDDL(ddlOp{Kind: "create_index", Index: im}); err != nil {
		return nil, err
	}
	return ix, nil
}

// DropIndex removes a nonclustered index. Index drops are physical schema
// changes and do not affect ledger hashes (§3.5).
func (db *DB) DropIndex(indexName string) error {
	db.quiesce.RLock()
	defer db.quiesce.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	var im *IndexMeta
	for _, cand := range db.cat.Indexes {
		if strings.EqualFold(cand.Name, indexName) {
			im = cand
			break
		}
	}
	if im == nil {
		return fmt.Errorf("engine: index %q not found", indexName)
	}
	delete(db.cat.Indexes, im.ID)
	t := db.tables[im.TableID]
	t.mu.Lock()
	for i, ix := range t.indexes {
		if ix.meta.ID == im.ID {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			break
		}
	}
	t.mu.Unlock()
	return db.logDDL(ddlOp{Kind: "drop_index", Index: im})
}

// logDDL appends a DDL record. Caller holds db.mu.
func (db *DB) logDDL(op ddlOp) error {
	_, err := db.log.Append(wal.RecDDL, 0, wal.EncodeDDL(wal.DDLPayload{Kind: op.Kind, Body: op.marshal()}))
	if err != nil {
		return fmt.Errorf("engine: log ddl: %w", err)
	}
	return db.log.Flush()
}

// --- Recovery ---------------------------------------------------------
// (see recover.go: pipelined parallel WAL replay)
