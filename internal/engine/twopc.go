package engine

import (
	"fmt"
	"sort"

	"sqlledger/internal/wal"
)

// Two-phase commit participant API. A cross-shard transaction is one
// engine.Tx per participating shard; the coordinator (internal/core's
// sharded path) drives each participant through Prepare and then, once its
// commit decision is durable, CommitPrepared — or AbortPrepared when the
// decision is (or is presumed to be) abort.
//
// Prepare makes the transaction's writes durable without deciding them:
// the DML records plus a PREPARE record are flushed to the WAL, and the
// row locks stay held, so the write set can survive a crash and still
// commit or vanish atomically with the coordinator's decision. Recovery
// rebuilds undecided prepared transactions as in-doubt (db.inDoubt) for
// the coordinator to resolve — nothing in-doubt is visible to readers or
// writers because the locks conceptually persist (recovery is
// single-threaded) and the writes were never applied.

// Prepare runs phase 1 for this participant: durably log the write set
// and a PREPARE record carrying the coordinator's global transaction id,
// the principal, and the per-table Merkle roots (so phase 2 after a crash
// can still build the ledger entry). The transaction stays open with its
// row locks held. A read-only participant prepares trivially.
func (db *DB) Prepare(tx *Tx, gid uint64) error {
	if tx.done {
		return ErrTxDone
	}
	if tx.prepared {
		return fmt.Errorf("engine: transaction %d already prepared", tx.id)
	}
	if len(tx.writes) == 0 {
		tx.prepared = true
		tx.gid = gid
		db.preparedCount.Add(1)
		return nil
	}
	db.quiesce.RLock()
	defer db.quiesce.RUnlock()

	// Encode the DML batch exactly like Commit does (shared arena), then
	// terminate it with the PREPARE record; appendLocked flushes on
	// RecPrepare, so the whole batch is durable when AppendBatch returns.
	recs := make([]wal.Record, 0, len(tx.writes)+1)
	size := 0
	for _, w := range tx.writes {
		if w.enc == nil {
			size += len(w.key) + rowEncSizeHint(w.before) + rowEncSizeHint(w.after) + 10
		}
	}
	arena := make([]byte, 0, size)
	for _, w := range tx.writes {
		payload := w.enc
		if payload == nil {
			start := len(arena)
			arena = wal.AppendDML(arena, w.typ, wal.DMLPayload{TableID: w.tableID, Key: w.key, Before: w.before, After: w.after})
			payload = arena[start:len(arena):len(arena)]
		}
		recs = append(recs, wal.Record{Type: w.typ, TxID: tx.id, Payload: payload})
	}
	recs = append(recs, wal.Record{
		Type:    wal.RecPrepare,
		TxID:    tx.id,
		Payload: wal.EncodePrepare(wal.PreparePayload{Gid: gid, User: tx.user, Roots: tx.Roots}),
	})
	if _, err := db.log.AppendBatch(recs); err != nil {
		return fmt.Errorf("engine: prepare log: %w", err)
	}
	tx.prepared = true
	tx.gid = gid
	db.preparedCount.Add(1)
	return nil
}

// CommitPrepared runs phase 2 (commit) for a prepared participant. It is
// the tail of the regular commit pipeline — sequence a commit timestamp,
// assign the ledger block/ordinal via the hook, log the COMMIT record,
// apply the writes, release the locks — except the DML records were
// already logged at prepare time. Returns the commit timestamp.
func (db *DB) CommitPrepared(tx *Tx) (int64, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	if !tx.prepared {
		return 0, fmt.Errorf("engine: transaction %d is not prepared", tx.id)
	}
	if tx.inDoubt {
		delete(db.inDoubt, tx.gid)
	}
	if len(tx.writes) == 0 {
		tx.done = true
		tx.releaseLocks()
		db.preparedCount.Add(-1)
		return db.LastCommitTS(), nil
	}
	db.quiesce.RLock()
	defer db.quiesce.RUnlock()

	lap := db.obs.Timer()

	// Stage 1 — sequence (identical to Commit's).
	db.commitMu.Lock()
	now := db.nowNanos()
	if last := db.lastCommitTS.Load(); now <= last {
		now = last + 1
	}
	db.inflightMu.Lock()
	db.lastCommitTS.Store(now)
	db.inflight[now] = struct{}{}
	db.inflightMu.Unlock()

	var entry *wal.LedgerEntry
	if len(tx.Roots) > 0 && db.opts.Hook != nil {
		blockID, ordinal := db.opts.Hook.OnCommit(tx.id, now, tx.user, tx.Roots)
		entry = &wal.LedgerEntry{
			TxID:     tx.id,
			BlockID:  blockID,
			Ordinal:  ordinal,
			CommitTS: now,
			User:     tx.user,
			Roots:    tx.Roots,
		}
	}
	recs := []wal.Record{{
		Type:    wal.RecCommit,
		TxID:    tx.id,
		Payload: wal.EncodeCommit(wal.CommitPayload{CommitTS: now, User: tx.user, Entry: entry}),
	}}

	// Stages 2 and 3 — publish + durability wait.
	lap.Lap(db.m.stageSequence)
	var err error
	if db.committer != nil {
		ticket := db.committer.Enqueue(recs)
		db.commitMu.Unlock()
		lap.Lap(db.m.stagePublish)
		_, err = ticket.Wait()
		lap.Lap(db.m.stageWait)
	} else {
		_, err = db.log.AppendBatch(recs)
		db.commitMu.Unlock()
		lap.Lap(db.m.stagePublish)
	}
	if err != nil {
		// Same fail-stop stance as Commit: a burned ordinal surfaces in
		// verification; the timestamp is retired so the watermark moves on.
		db.markApplied(now)
		return 0, fmt.Errorf("engine: commit-prepared log: %w", err)
	}

	// Stage 4 — apply while still holding row locks.
	db.applyWrites(tx.writes, now)
	db.markApplied(now)
	tx.done = true
	tx.releaseLocks()
	db.preparedCount.Add(-1)
	lap.Lap(db.m.stageApply)
	db.m.commits.Inc()
	return now, nil
}

// AbortPrepared runs phase 2 (abort) for a prepared participant: log an
// ABORT record so future recoveries drop the write set immediately, then
// discard the buffered writes and release the locks. Losing the abort
// record to a crash is harmless — the coordinator's presumed-abort rule
// reaches the same decision again.
func (db *DB) AbortPrepared(tx *Tx) error {
	if tx.done {
		return ErrTxDone
	}
	if !tx.prepared {
		return fmt.Errorf("engine: transaction %d is not prepared", tx.id)
	}
	if tx.inDoubt {
		delete(db.inDoubt, tx.gid)
	}
	if len(tx.writes) > 0 {
		db.quiesce.RLock()
		_, err := db.log.Append(wal.RecAbort, tx.id, nil)
		if err == nil {
			err = db.log.Flush()
		}
		db.quiesce.RUnlock()
		if err != nil {
			return fmt.Errorf("engine: abort-prepared log: %w", err)
		}
	}
	tx.done = true
	tx.releaseLocks()
	db.preparedCount.Add(-1)
	tx.writes = nil
	tx.overlays = nil
	db.m.rollbacks.Inc()
	return nil
}

// Gid returns the global transaction id assigned at Prepare (zero before).
func (tx *Tx) Gid() uint64 { return tx.gid }

// PreparedTxs returns the in-doubt transactions recovery reconstructed
// from the WAL — prepared but undecided when the log ended — ordered by
// global transaction id. The coordinator must resolve each with
// CommitPrepared or AbortPrepared before user traffic starts; until then
// Checkpoint refuses.
func (db *DB) PreparedTxs() []*Tx {
	out := make([]*Tx, 0, len(db.inDoubt))
	for _, tx := range db.inDoubt {
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gid < out[j].gid })
	return out
}
