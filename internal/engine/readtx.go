package engine

import (
	"fmt"
	"strconv"
	"time"

	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
)

// ReadTx is a snapshot-isolated read-only transaction. It pins a snapshot
// timestamp from the appliedTS watermark at Begin and reads the newest row
// version at or below that timestamp, so it never touches the lock table
// and never blocks a writer (writers keep strict 2PL + group commit). The
// snapshot stays registered until Close so version GC cannot reclaim the
// versions it may still read.
//
// ReadTx is not safe for concurrent use by multiple goroutines.
type ReadTx struct {
	db   *DB
	id   uint64
	ts   int64
	done bool
}

// BeginReadOnly starts a snapshot read transaction pinned at the current
// applied-through watermark: the newest timestamp whose commit — and every
// older commit — has fully installed its writes. Pinning lastCommitTS
// instead would be wrong: the commit pipeline publishes lastCommitTS in
// its sequencing stage, before the group-commit durability wait and the
// apply stage, so a snapshot pinned there could miss versions it is
// entitled to see (and then find them on a re-read — a torn, non-stable
// cut). appliedTS only covers fully applied prefixes, and no later commit
// can ever install a version at or below it, so the cut is immutable.
func (db *DB) BeginReadOnly() *ReadTx {
	db.snapMu.Lock()
	db.nextSnapID++
	id := db.nextSnapID
	ts := db.appliedTS.Load()
	db.snaps[id] = ts
	db.snapMu.Unlock()
	return &ReadTx{db: db, id: id, ts: ts}
}

// TS returns the pinned snapshot timestamp (unix nanoseconds).
func (rtx *ReadTx) TS() int64 { return rtx.ts }

// Get returns the row visible at the snapshot under the given primary-key
// values.
func (rtx *ReadTx) Get(t *Table, keyVals ...sqltypes.Value) (sqltypes.Row, bool, error) {
	if rtx.done {
		return nil, false, ErrTxDone
	}
	if t.meta.Heap {
		return nil, false, fmt.Errorf("engine: Get on heap table %s requires a RID key", t.meta.Name)
	}
	return rtx.GetByKey(t, sqltypes.EncodeKey(nil, keyVals...))
}

// GetByKey returns the row visible at the snapshot under raw clustered-key
// bytes.
func (rtx *ReadTx) GetByKey(t *Table, key []byte) (sqltypes.Row, bool, error) {
	if rtx.done {
		return nil, false, ErrTxDone
	}
	row, ok := t.getAt(key, rtx.ts)
	if ok {
		rtx.db.m.snapshotReads.Inc()
	}
	return row, ok, nil
}

// Scan iterates the rows visible at the snapshot in clustered-key order.
func (rtx *ReadTx) Scan(t *Table, fn func(key []byte, row sqltypes.Row) bool) error {
	return rtx.ScanRange(t, nil, nil, fn)
}

// ScanRange is Scan bounded to start <= key < end (nil = unbounded).
func (rtx *ReadTx) ScanRange(t *Table, start, end []byte, fn func(key []byte, row sqltypes.Row) bool) error {
	if rtx.done {
		return ErrTxDone
	}
	read := rtx.db.m.snapshotReads
	t.scanRangeAt(start, end, rtx.ts, func(k []byte, row sqltypes.Row) bool {
		read.Inc()
		return fn(k, row)
	})
	return nil
}

// Close unpins the snapshot, letting version GC advance past it, and
// observes how far the database moved while the snapshot was held: the
// advance of the applied-through watermark between pin and close (zero on
// an idle database, however long the snapshot was open). Close is
// idempotent.
func (rtx *ReadTx) Close() {
	if rtx.done {
		return
	}
	rtx.done = true
	db := rtx.db
	db.snapMu.Lock()
	delete(db.snaps, rtx.id)
	db.snapMu.Unlock()
	if lag := db.appliedTS.Load() - rtx.ts; lag > 0 {
		db.m.snapshotLag.Observe(float64(lag) / 1e9)
	} else {
		db.m.snapshotLag.Observe(0)
	}
}

// --- Version GC --------------------------------------------------------

// versionGCInterval is the default pace of the background sweep that
// reclaims row versions older than the oldest active snapshot; override
// it per instance with Options.VersionGCInterval.
const versionGCInterval = 250 * time.Millisecond

// gcHorizon returns the timestamp below which superseded versions are
// unreachable: the oldest active snapshot, or the applied-through
// watermark when no snapshot is pinned (NOT lastCommitTS — a snapshot
// pinned just after this computation pins appliedTS, which may trail
// lastCommitTS, and the horizon must never exceed any future pin).
// Computed under snapMu so it serializes with BeginReadOnly's
// pin-and-register.
func (db *DB) gcHorizon() int64 {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if len(db.snaps) == 0 {
		return db.appliedTS.Load()
	}
	min := int64(0)
	first := true
	for _, ts := range db.snaps {
		if first || ts < min {
			min = ts
			first = false
		}
	}
	return min
}

// GCVersions runs one synchronous version-GC sweep over every table,
// returning the number of versions reclaimed. The background loop calls it
// on a ticker; tests call it directly. A sweep is skipped (returns 0) when
// a checkpoint or restore holds the database quiescent.
func (db *DB) GCVersions() int {
	if !db.quiesce.TryRLock() {
		return 0
	}
	defer db.quiesce.RUnlock()
	sp := db.obs.Tracer().Start("version_gc")
	horizon := db.gcHorizon()
	reclaimed := 0
	for _, t := range db.Tables() {
		reclaimed += t.gcVersions(horizon)
	}
	if reclaimed > 0 {
		db.m.gcReclaimed.Add(int64(reclaimed))
		db.m.versionsLive.Add(-float64(reclaimed))
		sp.Annotate(obs.L("reclaimed", strconv.Itoa(reclaimed)))
		sp.Finish(nil)
	}
	// An idle sweep (nothing reclaimed) records no span: at 4 sweeps/s it
	// would otherwise dominate the ring within seconds.
	return reclaimed
}

// versionGCLoop is the background sweeper started by Open and stopped by
// Close (before Close quiesces, to avoid a lock cycle).
func (db *DB) versionGCLoop() {
	defer close(db.gcDone)
	tick := time.NewTicker(db.opts.VersionGCInterval)
	defer tick.Stop()
	for {
		select {
		case <-db.gcStop:
			return
		case <-tick.C:
			db.GCVersions()
		}
	}
}

// stopVersionGC halts the background sweeper and waits for it to exit.
func (db *DB) stopVersionGC() {
	db.gcStopOnce.Do(func() {
		close(db.gcStop)
		<-db.gcDone
	})
}
