package engine

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sqlledger/internal/btree"
	"sqlledger/internal/sqltypes"
)

// Table is the runtime state of one table: clustered row storage plus any
// nonclustered indexes. mu guards the trees; DML goes through transactions
// (tx.go) which apply at commit, while system operations (ledger queue
// drain, recovery redo, tamper simulation) use the applyDirect path.
type Table struct {
	meta *TableMeta

	mu      sync.RWMutex
	rows    *btree.Tree[sqltypes.Row]
	indexes []*Index
	nextRID uint64 // heap row-id allocator; guarded by mu
}

// Index is the runtime state of a nonclustered index. Entries map the
// encoded index key (index columns followed by the clustered key, making
// every entry unique) to the clustered key of the base row.
type Index struct {
	meta *IndexMeta
	tree *btree.Tree[[]byte]
}

// Meta returns the index metadata.
func (ix *Index) Meta() IndexMeta { return *ix.meta }

func newTable(meta *TableMeta) *Table {
	return &Table{meta: meta, rows: btree.New[sqltypes.Row]()}
}

// Meta returns a copy of the table's catalog entry.
func (t *Table) Meta() TableMeta { return *t.meta }

// ID returns the table id.
func (t *Table) ID() uint32 { return t.meta.ID }

// Name returns the current table name.
func (t *Table) Name() string { return t.meta.Name }

// Schema returns the table schema (shared; callers must not mutate).
func (t *Table) Schema() *sqltypes.Schema { return t.meta.Schema }

// RowCount returns the number of rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows.Len()
}

// keyFor computes the clustered key bytes of a row; for heaps the caller
// must have assigned a RID (allocRID).
func (t *Table) keyFor(r sqltypes.Row) []byte {
	return sqltypes.EncodeRowKey(t.meta.Schema, r)
}

// KeyFor computes the clustered key bytes Insert would assign to row. Not
// valid for heap tables, whose keys are allocated at insert time. Batched
// ingest uses it to encode keys on worker goroutines before handing rows
// to Tx.InsertPrepared.
func (t *Table) KeyFor(r sqltypes.Row) []byte { return t.keyFor(r) }

// allocRID returns the next heap row identifier as key bytes.
func (t *Table) allocRID() []byte {
	t.mu.Lock()
	t.nextRID++
	rid := t.nextRID
	t.mu.Unlock()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rid)
	return b[:]
}

// noteRID advances the RID allocator past a key observed during recovery
// or snapshot load. Caller holds mu.
func (t *Table) noteRIDLocked(key []byte) {
	if !t.meta.Heap || len(key) != 8 {
		return
	}
	rid := binary.BigEndian.Uint64(key)
	if rid > t.nextRID {
		t.nextRID = rid
	}
}

// get returns the committed row stored under key.
func (t *Table) get(key []byte) (sqltypes.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows.Get(key)
}

// Lookup returns the committed row stored under key, outside any
// transaction (read-committed point read).
func (t *Table) Lookup(key []byte) (sqltypes.Row, bool) {
	return t.get(key)
}

// applyInsert installs a row under key, maintaining indexes. Caller must
// hold mu. Returns an error if the key already exists.
func (t *Table) applyInsertLocked(key []byte, row sqltypes.Row) error {
	if _, exists := t.rows.Get(key); exists {
		return fmt.Errorf("%w: table %s", ErrDuplicateKey, t.meta.Name)
	}
	t.rows.Put(key, row)
	t.noteRIDLocked(key)
	for _, ix := range t.indexes {
		ix.tree.Put(ix.entryKey(key, row), key)
	}
	return nil
}

// applyDeleteLocked removes the row under key. Caller must hold mu.
func (t *Table) applyDeleteLocked(key []byte) error {
	old, ok := t.rows.Delete(key)
	if !ok {
		return fmt.Errorf("%w: table %s", ErrNotFound, t.meta.Name)
	}
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.entryKey(key, old))
	}
	return nil
}

// applyUpdateLocked replaces the row under key. Caller must hold mu.
func (t *Table) applyUpdateLocked(key []byte, row sqltypes.Row) error {
	old, replaced := t.rows.Put(key, row)
	if !replaced {
		t.rows.Delete(key)
		return fmt.Errorf("%w: table %s", ErrNotFound, t.meta.Name)
	}
	for _, ix := range t.indexes {
		oldEnt := ix.entryKey(key, old)
		newEnt := ix.entryKey(key, row)
		if string(oldEnt) != string(newEnt) {
			ix.tree.Delete(oldEnt)
			ix.tree.Put(newEnt, key)
		}
	}
	return nil
}

// EntryKey recomputes the entry key an index should hold for a base-table
// row; verification uses it to check index/base equivalence (invariant 5).
func (ix *Index) EntryKey(clusteredKey []byte, row sqltypes.Row) []byte {
	return ix.entryKey(clusteredKey, row)
}

// entryKey builds the index entry key: indexed column values followed by
// the clustered key for uniqueness.
func (ix *Index) entryKey(clusteredKey []byte, row sqltypes.Row) []byte {
	vals := make([]sqltypes.Value, len(ix.meta.Cols))
	for i, ord := range ix.meta.Cols {
		vals[i] = row[ord]
	}
	key := sqltypes.EncodeKey(make([]byte, 0, 64), vals...)
	return append(key, clusteredKey...)
}

// Scan iterates committed rows in clustered-key order while holding the
// table read lock. fn returning false stops the scan.
func (t *Table) Scan(fn func(key []byte, row sqltypes.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.rows.Ascend(fn)
}

// ScanRange iterates committed rows with start <= key < end.
func (t *Table) ScanRange(start, end []byte, fn func(key []byte, row sqltypes.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.rows.AscendRange(start, end, fn)
}

// KeyRange is a half-open range [Start, End) of encoded keys. A nil Start
// begins at the smallest key; a nil End runs to the largest.
type KeyRange struct {
	Start, End []byte
}

// ScanShards partitions the clustered key space into up to n contiguous,
// non-overlapping ranges that together cover every row, sized by the
// B+tree's separator keys so parallel verification scans stay balanced.
// It always returns at least one range; small tables may yield fewer than
// n. Feed each range to ScanRange.
func (t *Table) ScanShards(n int) []KeyRange {
	t.mu.RLock()
	bounds := t.rows.ShardBoundaries(n)
	t.mu.RUnlock()
	return rangesFrom(bounds)
}

// ScanIndexShards partitions an index's entry-key space the way ScanShards
// partitions the clustered keys. Feed each range to ScanIndexRange.
func (t *Table) ScanIndexShards(ix *Index, n int) []KeyRange {
	t.mu.RLock()
	bounds := ix.tree.ShardBoundaries(n)
	t.mu.RUnlock()
	return rangesFrom(bounds)
}

// rangesFrom turns sorted shard boundaries into covering key ranges.
func rangesFrom(bounds [][]byte) []KeyRange {
	ranges := make([]KeyRange, 0, len(bounds)+1)
	var start []byte
	for _, b := range bounds {
		ranges = append(ranges, KeyRange{Start: start, End: b})
		start = b
	}
	return append(ranges, KeyRange{Start: start})
}

// Indexes returns the table's nonclustered indexes.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Index(nil), t.indexes...)
}

// ScanIndex iterates an index in index-key order, passing the base-table
// clustered key of each entry.
func (t *Table) ScanIndex(ix *Index, fn func(entryKey, clusteredKey []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix.tree.Ascend(fn)
}

// ScanIndexRange iterates index entries with start <= entryKey < end, in
// index-key order, passing the base-table clustered key of each entry.
func (t *Table) ScanIndexRange(ix *Index, start, end []byte, fn func(entryKey, clusteredKey []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix.tree.AscendRange(start, end, fn)
}

// LookupIndexPrefix iterates base-table rows whose indexed columns equal
// the given values (an index point lookup).
func (t *Table) LookupIndexPrefix(ix *Index, vals []sqltypes.Value, fn func(key []byte, row sqltypes.Row) bool) {
	prefix := sqltypes.EncodeKey(nil, vals...)
	end := prefixEnd(prefix)
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix.tree.AscendRange(prefix, end, func(_ []byte, ck []byte) bool {
		row, ok := t.rows.Get(ck)
		if !ok {
			return true // index/base divergence is surfaced by verification
		}
		return fn(ck, row)
	})
}

// PrefixRange returns the clustered-key range [start, end) covering every
// key whose leading components equal vals (end nil = to the maximum key).
func PrefixRange(vals ...sqltypes.Value) (start, end []byte) {
	start = sqltypes.EncodeKey(nil, vals...)
	return start, prefixEnd(start)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if none exists.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// widenRowsLocked extends stored rows with NULLs when the schema gains
// columns (add-column DDL). Caller must hold mu and have updated meta.
func (t *Table) widenRowsLocked() {
	want := len(t.meta.Schema.Columns)
	var keys [][]byte
	var rows []sqltypes.Row
	t.rows.Ascend(func(k []byte, r sqltypes.Row) bool {
		if len(r) < want {
			keys = append(keys, k)
			nr := make(sqltypes.Row, want)
			copy(nr, r)
			for i := len(r); i < want; i++ {
				nr[i] = sqltypes.NewNull(t.meta.Schema.Columns[i].Type)
			}
			rows = append(rows, nr)
		}
		return true
	})
	for i, k := range keys {
		t.rows.Put(k, rows[i])
	}
}

// buildIndexLocked (re)builds an index from the base table. Caller holds mu.
func (t *Table) buildIndexLocked(ix *Index) {
	ix.tree = btree.New[[]byte]()
	t.rows.Ascend(func(k []byte, r sqltypes.Row) bool {
		ix.tree.Put(ix.entryKey(k, r), k)
		return true
	})
}
