package engine

import (
	"encoding/binary"
	"fmt"
	"sync"

	"sqlledger/internal/btree"
	"sqlledger/internal/sqltypes"
)

// Table is the runtime state of one table: clustered multi-version row
// storage plus any nonclustered indexes. mu guards the trees; DML goes
// through transactions (tx.go) which apply at commit, while system
// operations (ledger queue drain, recovery redo, tamper simulation) use
// the applyDirect path. Each clustered key maps to a versionChain
// (versions.go): committed writes append versions, snapshot readers
// (readtx.go) pick the newest version at or below their snapshot
// timestamp, and everything else sees the newest version. Nonclustered
// indexes track the latest state only — snapshot reads go through the
// clustered tree.
type Table struct {
	meta *TableMeta

	mu       sync.RWMutex
	rows     *btree.Tree[*versionChain]
	indexes  []*Index
	nextRID  uint64 // heap row-id allocator; guarded by mu
	liveRows int    // keys whose newest version is not a tombstone; guarded by mu
}

// Index is the runtime state of a nonclustered index. Entries map the
// encoded index key (index columns followed by the clustered key, making
// every entry unique) to the clustered key of the base row.
type Index struct {
	meta *IndexMeta
	tree *btree.Tree[[]byte]
}

// Meta returns the index metadata.
func (ix *Index) Meta() IndexMeta { return *ix.meta }

func newTable(meta *TableMeta) *Table {
	return &Table{meta: meta, rows: btree.New[*versionChain]()}
}

// Meta returns a copy of the table's catalog entry.
func (t *Table) Meta() TableMeta { return *t.meta }

// ID returns the table id.
func (t *Table) ID() uint32 { return t.meta.ID }

// Name returns the current table name.
func (t *Table) Name() string { return t.meta.Name }

// Schema returns the table schema (shared; callers must not mutate).
func (t *Table) Schema() *sqltypes.Schema { return t.meta.Schema }

// RowCount returns the number of live rows (newest version not a
// tombstone).
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.liveRows
}

// VersionCount returns the total number of stored row versions, live and
// superseded (GC observability).
func (t *Table) VersionCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	t.rows.Ascend(func(_ []byte, c *versionChain) bool {
		n += c.versionCount()
		return true
	})
	return n
}

// keyFor computes the clustered key bytes of a row; for heaps the caller
// must have assigned a RID (allocRID).
func (t *Table) keyFor(r sqltypes.Row) []byte {
	return sqltypes.EncodeRowKey(t.meta.Schema, r)
}

// KeyFor computes the clustered key bytes Insert would assign to row. Not
// valid for heap tables, whose keys are allocated at insert time. Batched
// ingest uses it to encode keys on worker goroutines before handing rows
// to Tx.InsertPrepared.
func (t *Table) KeyFor(r sqltypes.Row) []byte { return t.keyFor(r) }

// allocRID returns the next heap row identifier as key bytes.
func (t *Table) allocRID() []byte {
	t.mu.Lock()
	t.nextRID++
	rid := t.nextRID
	t.mu.Unlock()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rid)
	return b[:]
}

// noteRID advances the RID allocator past a key observed during recovery
// or snapshot load. Caller holds mu.
func (t *Table) noteRIDLocked(key []byte) {
	if !t.meta.Heap || len(key) != 8 {
		return
	}
	rid := binary.BigEndian.Uint64(key)
	if rid > t.nextRID {
		t.nextRID = rid
	}
}

// get returns the latest committed row stored under key.
func (t *Table) get(key []byte) (sqltypes.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.rows.Get(key)
	if !ok {
		return nil, false
	}
	return c.latestLive()
}

// getAt returns the row under key visible to a snapshot pinned at ts.
func (t *Table) getAt(key []byte, ts int64) (sqltypes.Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.rows.Get(key)
	if !ok {
		return nil, false
	}
	return c.at(ts)
}

// Lookup returns the committed row stored under key, outside any
// transaction (read-committed point read).
func (t *Table) Lookup(key []byte) (sqltypes.Row, bool) {
	return t.get(key)
}

// applyInsert installs a row version under key, maintaining indexes.
// Caller must hold mu. Returns an error if the key holds a live row.
func (t *Table) applyInsertLocked(key []byte, row sqltypes.Row, ts int64) error {
	if c, exists := t.rows.Get(key); exists {
		if _, live := c.latestLive(); live {
			return fmt.Errorf("%w: table %s", ErrDuplicateKey, t.meta.Name)
		}
		c.appendVersion(ts, row) // re-insert over a tombstone
	} else {
		t.rows.Put(key, newChain(ts, row))
	}
	t.liveRows++
	t.noteRIDLocked(key)
	for _, ix := range t.indexes {
		ix.tree.Put(ix.entryKey(key, row), key)
	}
	return nil
}

// applyDeleteLocked appends a tombstone version under key. Caller must
// hold mu.
func (t *Table) applyDeleteLocked(key []byte, ts int64) error {
	c, ok := t.rows.Get(key)
	if !ok {
		return fmt.Errorf("%w: table %s", ErrNotFound, t.meta.Name)
	}
	old, live := c.latestLive()
	if !live {
		return fmt.Errorf("%w: table %s", ErrNotFound, t.meta.Name)
	}
	c.appendVersion(ts, nil)
	t.liveRows--
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.entryKey(key, old))
	}
	return nil
}

// applyUpdateLocked appends a replacement version under key. Caller must
// hold mu.
func (t *Table) applyUpdateLocked(key []byte, row sqltypes.Row, ts int64) error {
	c, ok := t.rows.Get(key)
	if !ok {
		return fmt.Errorf("%w: table %s", ErrNotFound, t.meta.Name)
	}
	old, live := c.latestLive()
	if !live {
		return fmt.Errorf("%w: table %s", ErrNotFound, t.meta.Name)
	}
	c.appendVersion(ts, row)
	for _, ix := range t.indexes {
		oldEnt := ix.entryKey(key, old)
		newEnt := ix.entryKey(key, row)
		if string(oldEnt) != string(newEnt) {
			ix.tree.Delete(oldEnt)
			ix.tree.Put(newEnt, key)
		}
	}
	return nil
}

// gcVersions prunes versions no snapshot at or after horizon can read and
// removes chains reduced to a dead tombstone. Returns the number of
// versions reclaimed.
func (t *Table) gcVersions(horizon int64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	reclaimed := 0
	var dead [][]byte
	t.rows.Ascend(func(k []byte, c *versionChain) bool {
		dropped, rm := c.prune(horizon)
		reclaimed += dropped
		if rm {
			dead = append(dead, append([]byte(nil), k...))
		}
		return true
	})
	for _, k := range dead {
		t.rows.Delete(k)
		reclaimed++ // the tombstone itself
	}
	return reclaimed
}

// EntryKey recomputes the entry key an index should hold for a base-table
// row; verification uses it to check index/base equivalence (invariant 5).
func (ix *Index) EntryKey(clusteredKey []byte, row sqltypes.Row) []byte {
	return ix.entryKey(clusteredKey, row)
}

// entryKey builds the index entry key: indexed column values followed by
// the clustered key for uniqueness.
func (ix *Index) entryKey(clusteredKey []byte, row sqltypes.Row) []byte {
	vals := make([]sqltypes.Value, len(ix.meta.Cols))
	for i, ord := range ix.meta.Cols {
		vals[i] = row[ord]
	}
	key := sqltypes.EncodeKey(make([]byte, 0, 64), vals...)
	return append(key, clusteredKey...)
}

// Scan iterates the latest committed rows in clustered-key order while
// holding the table read lock. fn returning false stops the scan.
func (t *Table) Scan(fn func(key []byte, row sqltypes.Row) bool) {
	t.ScanRange(nil, nil, fn)
}

// ScanRange iterates the latest committed rows with start <= key < end.
func (t *Table) ScanRange(start, end []byte, fn func(key []byte, row sqltypes.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.rows.AscendRange(start, end, func(k []byte, c *versionChain) bool {
		row, live := c.latestLive()
		if !live {
			return true
		}
		return fn(k, row)
	})
}

// scanRangeAt iterates the rows visible to a snapshot pinned at ts with
// start <= key < end.
func (t *Table) scanRangeAt(start, end []byte, ts int64, fn func(key []byte, row sqltypes.Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.rows.AscendRange(start, end, func(k []byte, c *versionChain) bool {
		row, ok := c.at(ts)
		if !ok {
			return true
		}
		return fn(k, row)
	})
}

// KeyRange is a half-open range [Start, End) of encoded keys. A nil Start
// begins at the smallest key; a nil End runs to the largest.
type KeyRange struct {
	Start, End []byte
}

// ScanShards partitions the clustered key space into up to n contiguous,
// non-overlapping ranges that together cover every row, sized by the
// B+tree's separator keys so parallel verification scans stay balanced.
// It always returns at least one range; small tables may yield fewer than
// n. Feed each range to ScanRange.
func (t *Table) ScanShards(n int) []KeyRange {
	t.mu.RLock()
	bounds := t.rows.ShardBoundaries(n)
	t.mu.RUnlock()
	return rangesFrom(bounds)
}

// ScanIndexShards partitions an index's entry-key space the way ScanShards
// partitions the clustered keys. Feed each range to ScanIndexRange.
func (t *Table) ScanIndexShards(ix *Index, n int) []KeyRange {
	t.mu.RLock()
	bounds := ix.tree.ShardBoundaries(n)
	t.mu.RUnlock()
	return rangesFrom(bounds)
}

// rangesFrom turns sorted shard boundaries into covering key ranges.
func rangesFrom(bounds [][]byte) []KeyRange {
	ranges := make([]KeyRange, 0, len(bounds)+1)
	var start []byte
	for _, b := range bounds {
		ranges = append(ranges, KeyRange{Start: start, End: b})
		start = b
	}
	return append(ranges, KeyRange{Start: start})
}

// Indexes returns the table's nonclustered indexes.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Index(nil), t.indexes...)
}

// ScanIndex iterates an index in index-key order, passing the base-table
// clustered key of each entry.
func (t *Table) ScanIndex(ix *Index, fn func(entryKey, clusteredKey []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix.tree.Ascend(fn)
}

// ScanIndexRange iterates index entries with start <= entryKey < end, in
// index-key order, passing the base-table clustered key of each entry.
func (t *Table) ScanIndexRange(ix *Index, start, end []byte, fn func(entryKey, clusteredKey []byte) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix.tree.AscendRange(start, end, fn)
}

// LookupIndexPrefix iterates base-table rows whose indexed columns equal
// the given values (an index point lookup).
func (t *Table) LookupIndexPrefix(ix *Index, vals []sqltypes.Value, fn func(key []byte, row sqltypes.Row) bool) {
	prefix := sqltypes.EncodeKey(nil, vals...)
	end := prefixEnd(prefix)
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix.tree.AscendRange(prefix, end, func(_ []byte, ck []byte) bool {
		c, ok := t.rows.Get(ck)
		if !ok {
			return true // index/base divergence is surfaced by verification
		}
		row, live := c.latestLive()
		if !live {
			return true
		}
		return fn(ck, row)
	})
}

// PrefixRange returns the clustered-key range [start, end) covering every
// key whose leading components equal vals (end nil = to the maximum key).
func PrefixRange(vals ...sqltypes.Value) (start, end []byte) {
	start = sqltypes.EncodeKey(nil, vals...)
	return start, prefixEnd(start)
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix, or nil if none exists.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// widenRowsLocked extends stored rows with NULLs when the schema gains
// columns (add-column DDL). Every version is widened, not just the newest,
// so snapshot reads pinned before the DDL still see schema-length rows.
// Caller must hold mu and have updated meta.
func (t *Table) widenRowsLocked() {
	want := len(t.meta.Schema.Columns)
	t.rows.Ascend(func(_ []byte, c *versionChain) bool {
		for i, v := range c.vs {
			if v.row == nil || len(v.row) >= want {
				continue
			}
			nr := make(sqltypes.Row, want)
			copy(nr, v.row)
			for j := len(v.row); j < want; j++ {
				nr[j] = sqltypes.NewNull(t.meta.Schema.Columns[j].Type)
			}
			c.vs[i].row = nr
		}
		return true
	})
}

// buildIndexLocked (re)builds an index from the latest live rows of the
// base table. Caller holds mu.
func (t *Table) buildIndexLocked(ix *Index) {
	ix.tree = btree.New[[]byte]()
	t.rows.Ascend(func(k []byte, c *versionChain) bool {
		if row, live := c.latestLive(); live {
			ix.tree.Put(ix.entryKey(k, row), k)
		}
		return true
	})
}

// loadRowLocked installs a row loaded from a snapshot file as a single
// version at timestamp 0, visible to every snapshot. Caller holds mu (or
// owns the table exclusively, as during recovery).
func (t *Table) loadRowLocked(key []byte, row sqltypes.Row) {
	t.rows.Put(key, newChain(0, row))
	t.liveRows++
	t.noteRIDLocked(key)
}
