package engine

import (
	"strings"
	"testing"
	"time"

	"sqlledger/internal/sqltypes"
)

// TestPrepareCommitPrepared drives one participant through the happy 2PC
// path: prepared writes are invisible and locked, Checkpoint refuses
// while anything is prepared, and CommitPrepared applies the writes
// through the ordinary pipeline tail.
func TestPrepareCommitPrepared(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())

	tx := db.Begin("u")
	if _, err := tx.Insert(tab, kv(1, "staged")); err != nil {
		t.Fatal(err)
	}
	if err := db.Prepare(tx, 42); err != nil {
		t.Fatal(err)
	}
	if got := tx.Gid(); got != 42 {
		t.Fatalf("Gid = %d, want 42", got)
	}
	if err := db.Prepare(tx, 43); err == nil {
		t.Fatal("double prepare succeeded")
	}

	// Prepared but undecided: not visible to other transactions, and the
	// row lock is still held.
	other := db.Begin("v")
	if _, ok, _ := other.Get(tab, sqltypes.NewBigInt(1)); ok {
		t.Fatal("prepared write visible before decision")
	}
	if _, err := other.Insert(tab, kv(1, "conflict")); err == nil {
		t.Fatal("conflicting insert acquired a prepared row's lock")
	}
	other.Rollback()

	// A snapshot between the phases would strand the PREPARE record.
	if _, err := db.Checkpoint(); err == nil || !strings.Contains(err.Error(), "prepared") {
		t.Fatalf("Checkpoint during prepare = %v, want refusal", err)
	}

	ts, err := db.CommitPrepared(tx)
	if err != nil {
		t.Fatal(err)
	}
	if ts <= 0 {
		t.Fatalf("commit ts = %d", ts)
	}
	reader := db.Begin("v")
	if v, ok := getVal(t, reader, tab, 1); !ok || v != "staged" {
		t.Fatalf("after CommitPrepared: (%q, %v)", v, ok)
	}
	reader.Rollback()
	if _, err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after decision: %v", err)
	}
}

func getVal(t *testing.T, tx *Tx, tab *Table, k int64) (string, bool) {
	t.Helper()
	row, ok, err := tx.Get(tab, sqltypes.NewBigInt(k))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		return "", false
	}
	return row[1].Str, true
}

// TestPrepareAbortPrepared: an abort decision discards the write set and
// releases the locks.
func TestPrepareAbortPrepared(t *testing.T) {
	db := openTestDB(t)
	tab := mustCreate(t, db, "t", kvSchema())

	tx := db.Begin("u")
	if _, err := tx.Insert(tab, kv(7, "doomed")); err != nil {
		t.Fatal(err)
	}
	if err := db.Prepare(tx, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.AbortPrepared(tx); err != nil {
		t.Fatal(err)
	}
	// The write is gone and the lock is free.
	w := db.Begin("v")
	if _, ok, _ := w.Get(tab, sqltypes.NewBigInt(7)); ok {
		t.Fatal("aborted prepared write visible")
	}
	if _, err := w.Insert(tab, kv(7, "winner")); err != nil {
		t.Fatalf("lock not released after AbortPrepared: %v", err)
	}
	commit(t, db, w)
}

// TestPreparedRecoversInDoubt: a prepared-but-undecided transaction
// survives a restart as an in-doubt transaction, invisible until the
// coordinator resolves it; both resolutions work after recovery.
func TestPreparedRecoversInDoubt(t *testing.T) {
	for _, decide := range []string{"commit", "abort"} {
		t.Run(decide, func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(Options{Dir: dir, LockTimeout: 250 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			tab := mustCreate(t, db, "t", kvSchema())
			tx := db.Begin("u")
			if _, err := tx.Insert(tab, kv(5, "indoubt")); err != nil {
				t.Fatal(err)
			}
			if err := db.Prepare(tx, 99); err != nil {
				t.Fatal(err)
			}
			// Crash with the decision unmade.
			db.Close()

			db2 := openDBAt(t, dir)
			tab2, err := db2.Table("t")
			if err != nil {
				t.Fatal(err)
			}
			prepared := db2.PreparedTxs()
			if len(prepared) != 1 || prepared[0].Gid() != 99 {
				t.Fatalf("PreparedTxs after recovery = %v", prepared)
			}
			// In-doubt writes stay invisible.
			r := db2.Begin("v")
			if _, ok, _ := r.Get(tab2, sqltypes.NewBigInt(5)); ok {
				t.Fatal("in-doubt write visible after recovery")
			}
			r.Rollback()
			if _, err := db2.Checkpoint(); err == nil {
				t.Fatal("Checkpoint allowed with in-doubt transactions outstanding")
			}

			itx := prepared[0]
			if decide == "commit" {
				if _, err := db2.CommitPrepared(itx); err != nil {
					t.Fatal(err)
				}
				r := db2.Begin("v")
				if v, ok := getVal(t, r, tab2, 5); !ok || v != "indoubt" {
					t.Fatalf("after recovered commit: (%q, %v)", v, ok)
				}
				r.Rollback()
			} else {
				if err := db2.AbortPrepared(itx); err != nil {
					t.Fatal(err)
				}
				r := db2.Begin("v")
				if _, ok, _ := r.Get(tab2, sqltypes.NewBigInt(5)); ok {
					t.Fatal("aborted in-doubt write visible")
				}
				r.Rollback()
			}
			if len(db2.PreparedTxs()) != 0 {
				t.Fatal("in-doubt set not drained after resolution")
			}
			if _, err := db2.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint after resolution: %v", err)
			}

			// The decision itself must survive another restart.
			db2.Close()
			db3 := openDBAt(t, dir)
			tab3, err := db3.Table("t")
			if err != nil {
				t.Fatal(err)
			}
			r = db3.Begin("v")
			_, ok, _ := r.Get(tab3, sqltypes.NewBigInt(5))
			r.Rollback()
			if want := decide == "commit"; ok != want {
				t.Fatalf("after second restart, row present=%v, want %v", ok, want)
			}
		})
	}
}

// TestReadOnlyPrepare: a participant with no writes prepares and decides
// trivially, logging nothing.
func TestReadOnlyPrepare(t *testing.T) {
	db := openTestDB(t)
	before := db.LogSize()
	tx := db.Begin("u")
	if err := db.Prepare(tx, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CommitPrepared(tx); err != nil {
		t.Fatal(err)
	}
	if after := db.LogSize(); after != before {
		t.Fatalf("read-only prepare grew the WAL by %d bytes", after-before)
	}
}

// TestVersionGCIntervalOption pins the Options.VersionGCInterval knob: a
// fast custom interval reclaims superseded versions in the background
// without any explicit GC call, while an effectively-infinite interval
// leaves them in place over the same window.
func TestVersionGCIntervalOption(t *testing.T) {
	makeGarbage := func(db *DB) *Table {
		tab := mustCreate(t, db, "t", kvSchema())
		tx := db.Begin("u")
		if _, err := tx.Insert(tab, kv(1, "v0")); err != nil {
			t.Fatal(err)
		}
		commit(t, db, tx)
		for i := 0; i < 5; i++ {
			tx := db.Begin("u")
			if _, err := tx.Update(tab, kv(1, "v")); err != nil {
				t.Fatal(err)
			}
			commit(t, db, tx)
		}
		return tab
	}

	fast, err := Open(Options{Dir: t.TempDir(), VersionGCInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	tab := makeGarbage(fast)
	deadline := time.Now().Add(5 * time.Second)
	for tab.VersionCount() > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("background GC at 2ms interval left %d versions after 5s", tab.VersionCount())
		}
		time.Sleep(time.Millisecond)
	}

	slow, err := Open(Options{Dir: t.TempDir(), VersionGCInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	tab = makeGarbage(slow)
	// Give a would-be default sweeper (250ms) ample time to fire.
	time.Sleep(400 * time.Millisecond)
	if n := tab.VersionCount(); n != 6 {
		t.Fatalf("1h-interval sweeper reclaimed early: %d versions, want 6", n)
	}
	if slow.opts.VersionGCInterval != time.Hour {
		t.Fatalf("interval not honored: %v", slow.opts.VersionGCInterval)
	}
}
