package engine

import (
	"sqlledger/internal/sqltypes"
)

// Multi-version row storage. Each clustered key maps to a versionChain:
// the committed row versions in commit-timestamp order, newest last. A
// committed write appends a (commitTS, value) version instead of
// overwriting in place, so read-only transactions can read the newest
// version at or below their snapshot timestamp without touching the lock
// table (writers keep strict 2PL; see readtx.go). A nil row marks a
// tombstone: the row was deleted at that timestamp.
//
// Chains are only ever mutated under the owning Table's mu write lock, and
// commit timestamps are strictly monotonic (db.Commit's sequencing stage),
// so versions within a chain have strictly ascending timestamps.

// rowVersion is one committed state of a row. row == nil is a tombstone.
type rowVersion struct {
	ts  int64
	row sqltypes.Row
}

// versionChain holds the versions of one clustered key, oldest first.
type versionChain struct {
	vs []rowVersion
}

func newChain(ts int64, row sqltypes.Row) *versionChain {
	return &versionChain{vs: []rowVersion{{ts: ts, row: row}}}
}

// latest returns the newest version.
func (c *versionChain) latest() rowVersion { return c.vs[len(c.vs)-1] }

// latestLive returns the newest version's row if it is not a tombstone.
func (c *versionChain) latestLive() (sqltypes.Row, bool) {
	v := c.latest()
	return v.row, v.row != nil
}

// at returns the row visible to a snapshot pinned at ts: the newest
// version with version.ts <= ts. A tombstone or the absence of any such
// version means the key is invisible to the snapshot.
func (c *versionChain) at(ts int64) (sqltypes.Row, bool) {
	for i := len(c.vs) - 1; i >= 0; i-- {
		if c.vs[i].ts <= ts {
			return c.vs[i].row, c.vs[i].row != nil
		}
	}
	return nil, false
}

// appendVersion adds a new newest version.
func (c *versionChain) appendVersion(ts int64, row sqltypes.Row) {
	c.vs = append(c.vs, rowVersion{ts: ts, row: row})
}

// prune drops versions no snapshot at or after horizon can reach: every
// version older than the newest version with ts <= horizon. It returns the
// number of versions dropped and whether the whole chain is dead (reduced
// to a single tombstone at or below the horizon) and can be removed from
// the tree by the caller.
func (c *versionChain) prune(horizon int64) (dropped int, dead bool) {
	keep := -1
	for i := len(c.vs) - 1; i >= 0; i-- {
		if c.vs[i].ts <= horizon {
			keep = i
			break
		}
	}
	if keep > 0 {
		c.vs = append(c.vs[:0], c.vs[keep:]...)
		dropped = keep
	}
	dead = len(c.vs) == 1 && c.vs[0].row == nil && c.vs[0].ts <= horizon
	return dropped, dead
}

// versionCount returns the number of versions in the chain.
func (c *versionChain) versionCount() int { return len(c.vs) }
