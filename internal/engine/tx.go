package engine

import (
	"errors"
	"fmt"
	"sort"

	"sqlledger/internal/obs"
	"sqlledger/internal/sqltypes"
	"sqlledger/internal/wal"
)

// Engine errors.
var (
	ErrNotFound     = errors.New("engine: row not found")
	ErrDuplicateKey = errors.New("engine: duplicate key")
	ErrTxDone       = errors.New("engine: transaction already finished")
	ErrReadOnly     = errors.New("engine: table is not writable in this context")
)

// Tx is a read-committed transaction with row-level write locks.
// Writes are buffered in per-table overlays and applied to shared storage
// atomically at commit; the buffered operations become the transaction's
// WAL records. Savepoints capture positions in the write buffer and can be
// rolled back to (partial rollback, §3.2.1).
//
// Tx is not safe for concurrent use by multiple goroutines.
type Tx struct {
	db   *DB
	id   uint64
	user string
	done bool

	writes   []writeOp
	overlays map[uint32]*overlay
	locks    map[lockKey]struct{}
	seq      uint32 // ledger operation sequence counter

	savepoints []savepoint

	// prepared marks the transaction as phase-1 complete in a cross-shard
	// two-phase commit: its DML and PREPARE records are durable, its row
	// locks stay held, and only CommitPrepared or AbortPrepared may finish
	// it (twopc.go). gid is the coordinator's global transaction id.
	prepared bool
	gid      uint64
	// inDoubt marks a transaction reconstructed by recovery; resolving it
	// removes it from db.inDoubt (single-threaded, during open).
	inDoubt bool

	// trace is the transaction's end-to-end trace (nil when tracing is
	// off). The engine contributes lock-wait, WAL-encode and commit-stage
	// spans; owners (the ledger core) create and finish it.
	trace *obs.Trace

	// Roots is filled by the ledger core before commit with the per-table
	// Merkle roots of the row versions this transaction updated.
	Roots []wal.TableRoot
	// OnRollbackTo, when set, is invoked after a savepoint rollback with
	// the savepoint token, letting the ledger core restore its Merkle
	// state alongside (§3.2.1 savepoint support).
	OnRollbackTo func(token int)
}

// savepoint captures the rollback position: the write-buffer length and
// the ledger sequence counter at creation time.
type savepoint struct {
	nwrites int
	seq     uint32
}

type writeOp struct {
	typ     wal.RecordType
	tableID uint32
	key     []byte
	before  sqltypes.Row
	after   sqltypes.Row
	// enc, if non-nil, is the pre-encoded WAL payload for this op.
	// Batched ingest encodes payloads on worker goroutines; Commit
	// encodes the rest itself.
	enc []byte
}

type overlay struct {
	m map[string]overlayEntry
}

type overlayEntry struct {
	deleted bool
	row     sqltypes.Row
}

// ID returns the transaction id.
func (tx *Tx) ID() uint64 { return tx.id }

// User returns the identity that started the transaction.
func (tx *Tx) User() string { return tx.user }

// NextSeq returns the next ledger operation sequence number within the
// transaction, starting at 1.
func (tx *Tx) NextSeq() uint32 {
	tx.seq++
	return tx.seq
}

// CurrentSeq returns the last sequence number handed out.
func (tx *Tx) CurrentSeq() uint32 { return tx.seq }

// SetTrace attaches the transaction's trace (nil is fine). The caller
// that sets it owns Finish; the engine only records spans into it.
func (tx *Tx) SetTrace(tr *obs.Trace) { tx.trace = tr }

// Trace returns the transaction's trace (nil when tracing is off).
func (tx *Tx) Trace() *obs.Trace { return tx.trace }

func (tx *Tx) overlayFor(tableID uint32) *overlay {
	ov := tx.overlays[tableID]
	if ov == nil {
		ov = &overlay{m: make(map[string]overlayEntry)}
		tx.overlays[tableID] = ov
	}
	return ov
}

func (tx *Tx) lock(t *Table, key []byte) error {
	lk := lockKey{table: t.meta.ID, key: string(key)}
	if _, held := tx.locks[lk]; held {
		return nil
	}
	wait, start, err := tx.db.locks.acquireTraced(tx.id, t.meta.ID, key, tx.db.opts.LockTimeout, tx.trace.ID())
	if wait > 0 {
		// Contended only: the trace accumulates every lock wait in the
		// transaction into one span; the uncontended path records nothing.
		tx.trace.AddTimed(obs.SpanLockWait, start, wait)
	}
	if err != nil {
		return fmt.Errorf("%w (table %s)", err, t.meta.Name)
	}
	tx.locks[lk] = struct{}{}
	return nil
}

// read returns the row visible to this transaction under key: its own
// uncommitted write if any, otherwise the committed row.
func (tx *Tx) read(t *Table, key []byte) (sqltypes.Row, bool) {
	if ov := tx.overlays[t.meta.ID]; ov != nil {
		if e, ok := ov.m[string(key)]; ok {
			return e.row, !e.deleted
		}
	}
	return t.get(key)
}

// Get returns the row under the given primary-key values.
func (tx *Tx) Get(t *Table, keyVals ...sqltypes.Value) (sqltypes.Row, bool, error) {
	if tx.done {
		return nil, false, ErrTxDone
	}
	if t.meta.Heap {
		return nil, false, fmt.Errorf("engine: Get on heap table %s requires a RID key", t.meta.Name)
	}
	key := sqltypes.EncodeKey(nil, keyVals...)
	r, ok := tx.read(t, key)
	return r, ok, nil
}

// GetByKey returns the row under raw clustered-key bytes.
func (tx *Tx) GetByKey(t *Table, key []byte) (sqltypes.Row, bool, error) {
	if tx.done {
		return nil, false, ErrTxDone
	}
	r, ok := tx.read(t, key)
	return r, ok, nil
}

// Insert adds a row, returning its clustered key. For heap tables a fresh
// RID is assigned.
func (tx *Tx) Insert(t *Table, row sqltypes.Row) ([]byte, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if err := t.meta.Schema.Validate(row); err != nil {
		return nil, err
	}
	var key []byte
	if t.meta.Heap {
		key = t.allocRID()
	} else {
		key = t.keyFor(row)
	}
	if err := tx.lock(t, key); err != nil {
		return nil, err
	}
	if !t.meta.Heap {
		if _, exists := tx.read(t, key); exists {
			return nil, fmt.Errorf("%w: table %s key %s", ErrDuplicateKey, t.meta.Name, t.meta.Schema.KeyOf(row))
		}
	}
	tx.writes = append(tx.writes, writeOp{typ: wal.RecInsert, tableID: t.meta.ID, key: key, after: row})
	tx.overlayFor(t.meta.ID).m[string(key)] = overlayEntry{row: row}
	return key, nil
}

// ReserveWrites pre-grows the transaction's write buffer, lock set and
// the table's overlay for n upcoming writes, so a known-size batch
// appends without incremental reallocation.
func (tx *Tx) ReserveWrites(t *Table, n int) {
	if need := len(tx.writes) + n; cap(tx.writes) < need {
		ws := make([]writeOp, len(tx.writes), need)
		copy(ws, tx.writes)
		tx.writes = ws
	}
	if len(tx.locks) == 0 {
		tx.locks = make(map[lockKey]struct{}, n)
	}
	if tx.overlays[t.meta.ID] == nil {
		tx.overlays[t.meta.ID] = &overlay{m: make(map[string]overlayEntry, n)}
	}
}

// InsertPrepared adds a pre-validated row under a pre-computed clustered
// key. It is the batched-ingest half of Insert: callers (the ledger core's
// InsertBatch) validate the row, compute key = t.KeyFor(row) and optionally
// pre-encode the WAL payload (enc; nil lets Commit encode it) on worker
// goroutines, then call InsertPrepared serially to preserve write order.
// Not valid for heap tables.
func (tx *Tx) InsertPrepared(t *Table, key []byte, row sqltypes.Row, enc []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if t.meta.Heap {
		return fmt.Errorf("engine: InsertPrepared on heap table %s", t.meta.Name)
	}
	if err := tx.lock(t, key); err != nil {
		return err
	}
	if _, exists := tx.read(t, key); exists {
		return fmt.Errorf("%w: table %s key %s", ErrDuplicateKey, t.meta.Name, t.meta.Schema.KeyOf(row))
	}
	tx.writes = append(tx.writes, writeOp{typ: wal.RecInsert, tableID: t.meta.ID, key: key, after: row, enc: enc})
	tx.overlayFor(t.meta.ID).m[string(key)] = overlayEntry{row: row}
	return nil
}

// DeleteByKey removes the row under raw clustered-key bytes, returning the
// deleted row.
func (tx *Tx) DeleteByKey(t *Table, key []byte) (sqltypes.Row, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if err := tx.lock(t, key); err != nil {
		return nil, err
	}
	before, ok := tx.read(t, key)
	if !ok {
		return nil, fmt.Errorf("%w: table %s", ErrNotFound, t.meta.Name)
	}
	tx.writes = append(tx.writes, writeOp{typ: wal.RecDelete, tableID: t.meta.ID, key: key, before: before})
	tx.overlayFor(t.meta.ID).m[string(key)] = overlayEntry{deleted: true}
	return before, nil
}

// Delete removes the row under the given primary-key values.
func (tx *Tx) Delete(t *Table, keyVals ...sqltypes.Value) (sqltypes.Row, error) {
	return tx.DeleteByKey(t, sqltypes.EncodeKey(nil, keyVals...))
}

// UpdateByKey replaces the row under raw clustered-key bytes, returning
// the previous version. The new row must keep the same primary key.
func (tx *Tx) UpdateByKey(t *Table, key []byte, row sqltypes.Row) (sqltypes.Row, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if err := t.meta.Schema.Validate(row); err != nil {
		return nil, err
	}
	if !t.meta.Heap {
		if nk := t.keyFor(row); string(nk) != string(key) {
			return nil, fmt.Errorf("engine: update must not change the primary key of %s (delete+insert instead)", t.meta.Name)
		}
	}
	if err := tx.lock(t, key); err != nil {
		return nil, err
	}
	before, ok := tx.read(t, key)
	if !ok {
		return nil, fmt.Errorf("%w: table %s", ErrNotFound, t.meta.Name)
	}
	tx.writes = append(tx.writes, writeOp{typ: wal.RecUpdate, tableID: t.meta.ID, key: key, before: before, after: row})
	tx.overlayFor(t.meta.ID).m[string(key)] = overlayEntry{row: row}
	return before, nil
}

// Update replaces the row under the given primary-key values.
func (tx *Tx) Update(t *Table, row sqltypes.Row) (sqltypes.Row, error) {
	if t.meta.Heap {
		return nil, fmt.Errorf("engine: Update on heap table %s requires a RID key", t.meta.Name)
	}
	return tx.UpdateByKey(t, t.keyFor(row), row)
}

// Scan iterates the rows visible to this transaction (committed rows
// merged with the transaction's own writes) in clustered-key order.
func (tx *Tx) Scan(t *Table, fn func(key []byte, row sqltypes.Row) bool) error {
	return tx.ScanRange(t, nil, nil, fn)
}

// ScanRange is Scan bounded to start <= key < end (nil = unbounded).
func (tx *Tx) ScanRange(t *Table, start, end []byte, fn func(key []byte, row sqltypes.Row) bool) error {
	if tx.done {
		return ErrTxDone
	}
	ov := tx.overlays[t.meta.ID]
	if ov == nil || len(ov.m) == 0 {
		t.ScanRange(start, end, fn)
		return nil
	}
	// Merge: collect in-range overlay keys sorted, walk both sequences.
	keys := make([]string, 0, len(ov.m))
	for k := range ov.m {
		if start != nil && k < string(start) {
			continue
		}
		if end != nil && k >= string(end) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	stopped := false
	t.ScanRange(start, end, func(k []byte, row sqltypes.Row) bool {
		ks := string(k)
		for i < len(keys) && keys[i] < ks {
			e := ov.m[keys[i]]
			if !e.deleted {
				if !fn([]byte(keys[i]), e.row) {
					stopped = true
					return false
				}
			}
			i++
		}
		if i < len(keys) && keys[i] == ks {
			e := ov.m[keys[i]]
			i++
			if e.deleted {
				return true
			}
			if !fn(k, e.row) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(k, row) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return nil
	}
	for ; i < len(keys); i++ {
		e := ov.m[keys[i]]
		if !e.deleted {
			if !fn([]byte(keys[i]), e.row) {
				return nil
			}
		}
	}
	return nil
}

// Savepoint records the current write position and ledger sequence
// counter, returning a token for RollbackTo. The ledger core snapshots its
// Merkle trees alongside under the same token.
func (tx *Tx) Savepoint() int {
	tx.savepoints = append(tx.savepoints, savepoint{nwrites: len(tx.writes), seq: tx.seq})
	return len(tx.savepoints) - 1
}

// RollbackTo undoes all writes made after the savepoint token. The token
// stays valid for repeated rollbacks; savepoints created after it are
// discarded. Locks acquired since the savepoint remain held (as in SQL
// Server).
func (tx *Tx) RollbackTo(token int) error {
	if tx.done {
		return ErrTxDone
	}
	if token < 0 || token >= len(tx.savepoints) {
		return fmt.Errorf("engine: invalid savepoint %d", token)
	}
	sp := tx.savepoints[token]
	tx.savepoints = tx.savepoints[:token+1]
	tx.writes = tx.writes[:sp.nwrites]
	tx.seq = sp.seq
	// Rebuild overlays from the surviving writes; the write list is the
	// source of truth.
	tx.overlays = make(map[uint32]*overlay)
	for _, w := range tx.writes {
		ov := tx.overlayFor(w.tableID)
		switch w.typ {
		case wal.RecInsert, wal.RecUpdate:
			ov.m[string(w.key)] = overlayEntry{row: w.after}
		case wal.RecDelete:
			ov.m[string(w.key)] = overlayEntry{deleted: true}
		}
	}
	if tx.OnRollbackTo != nil {
		tx.OnRollbackTo(token)
	}
	return nil
}

// WriteCount returns the number of buffered write operations.
func (tx *Tx) WriteCount() int { return len(tx.writes) }

func (tx *Tx) releaseLocks() {
	for lk := range tx.locks {
		tx.db.locks.release(tx.id, lk.table, lk.key)
	}
	tx.locks = nil
}

// Rollback abandons the transaction, releasing its locks. Rollback after
// Commit is a no-op returning ErrTxDone.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.releaseLocks()
	tx.db.m.rollbacks.Inc()
	// Abort records are informational; buffered writes were never logged.
	tx.writes = nil
	tx.overlays = nil
	return nil
}
